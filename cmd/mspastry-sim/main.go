// Command mspastry-sim runs one MSPastry simulation experiment and prints
// the windowed evaluation metrics (§5.2 of the paper): relative delay
// penalty, control traffic per node, lookup loss rate and incorrect
// delivery rate.
//
// Examples:
//
//	mspastry-sim -trace gnutella -trace-div 16 -max-dur 2h
//	mspastry-sim -trace poisson -session 30m -nodes 500 -duration 2h
//	mspastry-sim -trace overnet -topo mercator -loss 0.05
//	mspastry-sim -trace gnutella -no-acks -no-probing   # the ablation
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"mspastry/internal/harness"
	"mspastry/internal/pastry"
	"mspastry/internal/trace"
)

func main() {
	log.SetFlags(0)
	var (
		topoName = flag.String("topo", "gatech", "topology: gatech, mercator, corpnet")
		topoDiv  = flag.Int("topo-div", 8, "topology scale divisor (1 = paper size)")
		traceSel = flag.String("trace", "gnutella", "churn trace: gnutella, overnet, microsoft, poisson")
		traceDiv = flag.Int("trace-div", 16, "trace population divisor (1 = paper size)")
		maxDur   = flag.Duration("max-dur", 2*time.Hour, "cap on trace duration (0 = full trace)")
		session  = flag.Duration("session", 30*time.Minute, "poisson trace: mean session time")
		nodes    = flag.Int("nodes", 500, "poisson trace: average active nodes")
		duration = flag.Duration("duration", 2*time.Hour, "poisson trace: duration")
		loss     = flag.Float64("loss", 0, "uniform network message loss rate [0,1)")
		lookups  = flag.Float64("lookups", 0.01, "lookups per second per node")
		window   = flag.Duration("window", 10*time.Minute, "metric averaging window")
		ramp     = flag.Duration("ramp", 5*time.Minute, "setup ramp for the warm start")
		seed     = flag.Int64("seed", 1, "random seed")

		b        = flag.Int("b", 4, "identifier digit bits")
		l        = flag.Int("l", 32, "leaf set size")
		noAcks   = flag.Bool("no-acks", false, "disable per-hop acks")
		noProbes = flag.Bool("no-probing", false, "disable routing-table liveness probing")
		noTune   = flag.Bool("no-selftune", false, "disable self-tuning (use -trt)")
		fixedTrt = flag.Duration("trt", time.Minute, "fixed probing period with -no-selftune")
		targetLr = flag.Float64("target-lr", 0.05, "self-tuning raw loss-rate target")
		noPNS    = flag.Bool("no-pns", false, "disable proximity neighbour selection")
	)
	flag.Parse()

	topo, err := harness.BuildTopology(*topoName, *topoDiv, *seed)
	if err != nil {
		log.Fatal(err)
	}

	var tr *trace.Trace
	switch *traceSel {
	case "gnutella":
		tr = trace.Generate(trace.Gnutella().Scaled(*traceDiv, *maxDur))
	case "overnet":
		tr = trace.Generate(trace.OverNet().Scaled(*traceDiv, *maxDur))
	case "microsoft":
		tr = trace.Generate(trace.Microsoft().Scaled(*traceDiv, *maxDur))
	case "poisson":
		tr = trace.Generate(trace.Poisson(*session, *nodes, *duration))
	default:
		log.Fatalf("unknown trace %q", *traceSel)
	}

	pcfg := pastry.DefaultConfig()
	pcfg.B = *b
	pcfg.L = *l
	pcfg.PerHopAcks = !*noAcks
	pcfg.ActiveProbing = !*noProbes
	pcfg.SelfTune = !*noTune
	pcfg.FixedTrt = *fixedTrt
	pcfg.TargetRawLoss = *targetLr
	pcfg.PNS = !*noPNS

	cfg := harness.DefaultConfig(topo, tr)
	cfg.Pastry = pcfg
	cfg.NetworkLoss = *loss
	cfg.LookupRate = *lookups
	cfg.Window = *window
	cfg.SetupRamp = *ramp
	cfg.Seed = *seed

	fmt.Printf("# topology=%s (routers=%d) trace=%s (nodes=%d, %v) loss=%.1f%% lookups=%g/s\n",
		topo.Name(), topo.NumRouters(), tr.Name, tr.Nodes, tr.Duration, *loss*100, *lookups)

	start := time.Now()
	res := harness.Run(cfg)
	elapsed := time.Since(start)

	fmt.Printf("\n%-10s %8s %8s %8s %10s %10s %10s\n",
		"window", "active", "rdp", "hops", "ctrl/n/s", "loss", "incorrect")
	for _, w := range res.Windows {
		fmt.Printf("%-10s %8.0f %8.2f %8.2f %10.3f %10.2e %10.2e\n",
			w.Start.Round(time.Second), w.Active, w.RDP, w.MeanHops,
			w.ControlPerNodeSec, w.LossRate, w.IncorrectRate)
	}
	t := res.Totals
	fmt.Printf("\nTOTALS  %s\n", t)
	fmt.Printf("control breakdown (msg/s/node):")
	for cat, v := range t.ByCategory {
		fmt.Printf("  %s=%.4f", cat, v)
	}
	fmt.Println()
	fmt.Printf("self-tuned Trt (median of live nodes): %v\n", res.TrtMedian.Round(time.Second))
	fmt.Printf("joins=%d medianJoinLatency=%v retransmits=%d suppressedProbes=%d\n",
		t.Joins, t.MedianJoinLatency.Round(time.Millisecond),
		res.Counters.Retransmits, res.Counters.SuppressedProbes)
	fmt.Printf("simulated %v in %v (%d events, %.0f events/s)\n",
		tr.Duration, elapsed.Round(time.Millisecond), res.SimEvents,
		float64(res.SimEvents)/elapsed.Seconds())
	if t.IncorrectRate > 0 {
		fmt.Fprintf(os.Stderr, "note: incorrect deliveries observed (expected only with link loss)\n")
	}
}
