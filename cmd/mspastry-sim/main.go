// Command mspastry-sim runs one MSPastry simulation experiment and prints
// the windowed evaluation metrics (§5.2 of the paper): relative delay
// penalty, control traffic per node, lookup loss rate and incorrect
// delivery rate.
//
// Examples:
//
//	mspastry-sim -trace gnutella -trace-div 16 -max-dur 2h
//	mspastry-sim -trace poisson -session 30m -nodes 500 -duration 2h
//	mspastry-sim -trace overnet -topo mercator -loss 0.05
//	mspastry-sim -trace gnutella -no-acks -no-probing   # the ablation
//	mspastry-sim -trace poisson -malicious-frac 0.1 -secure-routing
//
// Fault injection (all faults share the -fault-at/-fault-dur window,
// measured from the end of the setup ramp):
//
//	mspastry-sim -fault-at 30m -fault-dur 2m -partition-frac 0.5
//	mspastry-sim -fault-at 30m -fault-dur 1m -spike 1s -dup 0.05
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"mspastry/internal/harness"
	"mspastry/internal/netmodel"
	"mspastry/internal/overload"
	"mspastry/internal/pastry"
	"mspastry/internal/stats"
	"mspastry/internal/telemetry"
	"mspastry/internal/trace"
)

func main() {
	log.SetFlags(0)
	var (
		topoName  = flag.String("topo", "gatech", "topology: gatech, mercator, corpnet")
		topoDiv   = flag.Int("topo-div", 8, "topology scale divisor (1 = paper size)")
		traceSel  = flag.String("trace", "gnutella", "churn trace: gnutella, overnet, microsoft, poisson")
		traceDiv  = flag.Int("trace-div", 16, "trace population divisor (1 = paper size)")
		maxDur    = flag.Duration("max-dur", 2*time.Hour, "cap on trace duration (0 = full trace)")
		session   = flag.Duration("session", 30*time.Minute, "poisson trace: mean session time")
		nodes     = flag.Int("nodes", 500, "poisson trace: average active nodes")
		duration  = flag.Duration("duration", 2*time.Hour, "poisson trace: duration")
		loss      = flag.Float64("loss", 0, "uniform network message loss rate [0,1)")
		coalesce  = flag.Duration("coalesce", 0, "control-message coalescing window (0 = one message per datagram)")
		coalesceL = flag.Duration("coalesce-long", 0, "extended coalescing window for delay-tolerant messages (heartbeats, gossip); keep below the probe timeout")
		lookups   = flag.Float64("lookups", 0.01, "lookups per second per node")
		workload  = flag.String("workload", "uniform", "lookup key distribution: uniform, zipf")
		zipfS     = flag.Float64("zipf-s", 1.0, "zipf exponent for -workload zipf")
		zipfKeys  = flag.Int("zipf-keys", 1024, "popular key set size for -workload zipf")
		window    = flag.Duration("window", 10*time.Minute, "metric averaging window")
		ramp      = flag.Duration("ramp", 5*time.Minute, "setup ramp for the warm start")
		seed      = flag.Int64("seed", 1, "random seed")

		b        = flag.Int("b", 4, "identifier digit bits")
		l        = flag.Int("l", 32, "leaf set size")
		tls      = flag.Duration("tls", 0, "override the leaf-set heartbeat period Tls (0 = default)")
		to       = flag.Duration("to", 0, "override the probe timeout To (0 = default)")
		noAcks   = flag.Bool("no-acks", false, "disable per-hop acks")
		noProbes = flag.Bool("no-probing", false, "disable routing-table liveness probing")
		noTune   = flag.Bool("no-selftune", false, "disable self-tuning (use -trt)")
		fixedTrt = flag.Duration("trt", time.Minute, "fixed probing period with -no-selftune")
		targetLr = flag.Float64("target-lr", 0.05, "self-tuning raw loss-rate target")
		noPNS    = flag.Bool("no-pns", false, "disable proximity neighbour selection")

		faultAt    = flag.Duration("fault-at", 0, "fault window start, measured from the end of the ramp (0 = no faults)")
		faultDur   = flag.Duration("fault-dur", time.Minute, "fault window duration")
		partFrac   = flag.Float64("partition-frac", 0, "partition this fraction of nodes away from the rest (0 = none)")
		jitter     = flag.Duration("jitter", 0, "uniform extra delay in [0,jitter] during the fault window")
		spike      = flag.Duration("spike", 0, "fixed extra delay during the fault window")
		dup        = flag.Float64("dup", 0, "message duplication probability during the fault window")
		reorder    = flag.Float64("reorder", 0, "message holdback (reordering) probability during the fault window")
		reorderMax = flag.Duration("reorder-max", 100*time.Millisecond, "maximum holdback for reordered messages")

		svcQueue = flag.Int("svc-queue", 0, "per-node service-capacity model: bounded receive queue length (0 = unbounded)")
		svcRate  = flag.Float64("svc-rate", 0, "per-node service-capacity model: messages processed per second (0 = infinite)")

		malFrac   = flag.Float64("malicious-frac", 0, "fraction of nodes that behave maliciously [0,1)")
		malBhv    = flag.String("malicious-behaviors", "all", "comma list of adversary behaviors: drop, misroute, poison, forgeack (or all, none)")
		secRoute  = flag.Bool("secure-routing", false, "enable the routing failure test and redundant diverse-path lookups")
		secFanout = flag.Int("secure-fanout", 0, "override diverse first hops per redundant round (0 = default)")
		secRounds = flag.Int("secure-rounds", 0, "override redundant rounds per lookup (0 = default)")

		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile  = flag.String("memprofile", "", "write a heap profile to this file at exit")
		metricsDump = flag.String("metrics-dump", "", "write the telemetry registry in Prometheus text format at exit (\"-\" for stdout)")
		traceLook   = flag.Bool("trace-lookups", false, "record per-lookup hop traces and print route statistics")
	)
	flag.Parse()

	// Reject nonsense before it turns into a wedged run: a negative
	// window silently disables coalescing flushes, a zero To makes every
	// probe time out instantly, and a lone -svc-queue or -svc-rate gives
	// a capacity model with either no bound or no drain.
	switch {
	case *topoDiv < 1 || *traceDiv < 1:
		log.Fatalf("-topo-div and -trace-div must be >= 1")
	case *maxDur < 0:
		log.Fatalf("-max-dur must be >= 0, got %v", *maxDur)
	case *session <= 0 || *duration <= 0 || *nodes < 1:
		log.Fatalf("-session and -duration must be positive and -nodes >= 1")
	case *loss < 0 || *loss >= 1:
		log.Fatalf("-loss %g outside [0,1)", *loss)
	case *coalesce < 0:
		log.Fatalf("-coalesce must be >= 0, got %v", *coalesce)
	case *coalesceL < 0:
		log.Fatalf("-coalesce-long must be >= 0, got %v", *coalesceL)
	case *coalesceL > 0 && *coalesceL < *coalesce:
		log.Fatalf("-coalesce-long (%v) must be >= -coalesce (%v)", *coalesceL, *coalesce)
	case *lookups < 0:
		log.Fatalf("-lookups must be >= 0, got %g", *lookups)
	case *workload != harness.WorkloadUniform && *workload != harness.WorkloadZipf:
		log.Fatalf("-workload must be uniform or zipf, got %q", *workload)
	case *zipfS <= 0:
		log.Fatalf("-zipf-s must be > 0, got %g", *zipfS)
	case *zipfKeys < 1:
		log.Fatalf("-zipf-keys must be >= 1, got %d", *zipfKeys)
	case *window <= 0:
		log.Fatalf("-window must be positive, got %v", *window)
	case *ramp < 0:
		log.Fatalf("-ramp must be >= 0, got %v", *ramp)
	case *tls < 0 || *to < 0:
		log.Fatalf("-tls and -to overrides must be positive (0 = keep default)")
	case *noTune && *fixedTrt <= 0:
		log.Fatalf("-trt must be positive with -no-selftune, got %v", *fixedTrt)
	case *targetLr <= 0 || *targetLr >= 1:
		log.Fatalf("-target-lr %g outside (0,1)", *targetLr)
	case (*svcQueue > 0) != (*svcRate > 0):
		log.Fatalf("-svc-queue and -svc-rate must be set together (got queue=%d rate=%g)", *svcQueue, *svcRate)
	case *svcQueue < 0 || *svcRate < 0:
		log.Fatalf("-svc-queue and -svc-rate must be >= 0")
	case *malFrac < 0 || *malFrac >= 1:
		log.Fatalf("-malicious-frac %g outside [0,1)", *malFrac)
	case *secFanout < 0 || *secRounds < 0:
		log.Fatalf("-secure-fanout and -secure-rounds must be >= 0 (0 = default)")
	}
	behaviors, err := netmodel.ParseBehaviors(*malBhv)
	if err != nil {
		log.Fatalf("-malicious-behaviors: %v", err)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	topo, err := harness.BuildTopology(*topoName, *topoDiv, *seed)
	if err != nil {
		log.Fatal(err)
	}

	var tr *trace.Trace
	switch *traceSel {
	case "gnutella":
		tr = trace.Generate(trace.Gnutella().Scaled(*traceDiv, *maxDur))
	case "overnet":
		tr = trace.Generate(trace.OverNet().Scaled(*traceDiv, *maxDur))
	case "microsoft":
		tr = trace.Generate(trace.Microsoft().Scaled(*traceDiv, *maxDur))
	case "poisson":
		tr = trace.Generate(trace.Poisson(*session, *nodes, *duration))
	default:
		log.Fatalf("unknown trace %q", *traceSel)
	}

	pcfg := pastry.DefaultConfig()
	pcfg.B = *b
	pcfg.L = *l
	pcfg.PerHopAcks = !*noAcks
	pcfg.ActiveProbing = !*noProbes
	pcfg.SelfTune = !*noTune
	pcfg.FixedTrt = *fixedTrt
	pcfg.TargetRawLoss = *targetLr
	pcfg.PNS = !*noPNS
	pcfg.SecureRouting = *secRoute
	if *secFanout > 0 {
		pcfg.SecureFanout = *secFanout
	}
	if *secRounds > 0 {
		pcfg.SecureMaxRounds = *secRounds
	}
	if *tls > 0 {
		pcfg.Tls = *tls
	}
	if *to > 0 {
		pcfg.To = *to
	}

	cfg := harness.DefaultConfig(topo, tr)
	cfg.Pastry = pcfg
	cfg.NetworkLoss = *loss
	if *svcQueue > 0 {
		cfg.Service = netmodel.ServiceModel{QueueLimit: *svcQueue, Rate: *svcRate}
	}
	cfg.CoalesceWindow = *coalesce
	cfg.CoalesceLongWindow = *coalesceL
	cfg.LookupRate = *lookups
	cfg.Workload = *workload
	cfg.ZipfS = *zipfS
	cfg.ZipfKeys = *zipfKeys
	cfg.Window = *window
	cfg.SetupRamp = *ramp
	cfg.Seed = *seed
	cfg.MaliciousFraction = *malFrac
	cfg.MaliciousBehaviors = behaviors
	if *metricsDump != "" || *traceLook {
		cfg.Telemetry = telemetry.NewRegistry()
		cfg.TraceLookups = *traceLook
	}

	if *faultAt > 0 {
		switch {
		case *partFrac < 0 || *partFrac >= 1:
			log.Fatalf("-partition-frac %g outside [0,1)", *partFrac)
		case *dup < 0 || *dup >= 1:
			log.Fatalf("-dup %g outside [0,1)", *dup)
		case *reorder < 0 || *reorder >= 1:
			log.Fatalf("-reorder %g outside [0,1)", *reorder)
		case *jitter < 0 || *spike < 0 || *reorderMax < 0:
			log.Fatalf("-jitter, -spike and -reorder-max must be non-negative")
		case *faultDur <= 0:
			log.Fatalf("-fault-dur must be positive")
		}
		script := new(harness.FaultScript)
		if *partFrac > 0 {
			script.Partition(*faultAt, *faultDur, *partFrac)
		}
		if *jitter > 0 {
			script.Jitter(*faultAt, *faultDur, *jitter)
		}
		if *spike > 0 {
			script.DelaySpike(*faultAt, *faultDur, *spike)
		}
		if *dup > 0 {
			script.Duplicate(*faultAt, *faultDur, *dup)
		}
		if *reorder > 0 {
			script.Reorder(*faultAt, *faultDur, *reorder, *reorderMax)
		}
		cfg.Faults = script
	}

	fmt.Printf("# topology=%s (routers=%d) trace=%s (nodes=%d, %v) loss=%.1f%% lookups=%g/s\n",
		topo.Name(), topo.NumRouters(), tr.Name, tr.Nodes, tr.Duration, *loss*100, *lookups)
	if *workload == harness.WorkloadZipf {
		fmt.Printf("# workload=zipf s=%g keys=%d\n", *zipfS, *zipfKeys)
	}
	if *malFrac > 0 {
		fmt.Printf("# adversary: frac=%.2f behaviors=%s secure-routing=%v\n",
			*malFrac, behaviors, *secRoute)
	}

	start := time.Now()
	res := harness.Run(cfg)
	elapsed := time.Since(start)

	fmt.Printf("\n%-10s %8s %8s %8s %10s %10s %10s\n",
		"window", "active", "rdp", "hops", "ctrl/n/s", "loss", "incorrect")
	for _, w := range res.Windows {
		fmt.Printf("%-10s %8.0f %8.2f %8.2f %10.3f %10.2e %10.2e\n",
			w.Start.Round(time.Second), w.Active, w.RDP, w.MeanHops,
			w.ControlPerNodeSec, w.LossRate, w.IncorrectRate)
	}
	t := res.Totals
	fmt.Printf("\nTOTALS  %s\n", t)
	fmt.Printf("control breakdown (msg/s/node):")
	cats := make([]pastry.Category, 0, len(t.ByCategory))
	for cat := range t.ByCategory {
		cats = append(cats, cat)
	}
	sort.Slice(cats, func(i, j int) bool { return cats[i] < cats[j] })
	for _, cat := range cats {
		fmt.Printf("  %s=%.4f", cat, t.ByCategory[cat])
	}
	fmt.Println()
	fmt.Printf("wire: datagrams/n/s=%.4f control-datagrams/n/s=%.4f control-bytes/n/s=%.1f coalesced-saved=%dB\n",
		t.DatagramsPerNodeSec, t.ControlDatagramsPerNodeSec,
		t.ControlBytesPerNodeSec, t.CoalescedSavedBytes)
	fmt.Printf("self-tuned Trt (median of live nodes): %v\n", res.TrtMedian.Round(time.Second))
	fmt.Printf("joins=%d medianJoinLatency=%v retransmits=%d suppressedProbes=%d\n",
		t.Joins, t.MedianJoinLatency.Round(time.Millisecond),
		res.Counters.Retransmits, res.Counters.SuppressedProbes)
	fmt.Printf("drops by cause:")
	for c := netmodel.DropCause(0); c < netmodel.NumDropCauses; c++ {
		fmt.Printf("  %s=%d", c, res.DropsByCause[c])
	}
	fmt.Println()
	if cfg.Service.QueueLimit > 0 {
		fmt.Printf("service sheds by lane:")
		for l := overload.Lane(0); l < overload.NumLanes; l++ {
			fmt.Printf("  %s=%d", l, res.ShedByLane[l])
		}
		fmt.Printf("  budget_dry=%d breaker_opens=%d breaker_reopens=%d breaker_closes=%d\n",
			res.Counters.RetryBudgetExhausted, res.Counters.BreakerOpens,
			res.Counters.BreakerReopens, res.Counters.BreakerCloses)
	}
	if *malFrac > 0 {
		a := res.Adversary
		fmt.Printf("adversary: marked=%d dropped=%d misrouted=%d rootClaims=%d reportsForged=%d acksForged=%d poisoned=%d\n",
			int(*malFrac*float64(tr.Nodes)+0.5), a.LookupsDropped, a.LookupsMisrouted,
			a.RootClaims, a.ReportsForged, a.AcksForged, a.MessagesPoisoned)
	}
	if *secRoute {
		c := res.Counters
		fmt.Printf("secure routing: reports=%d pass=%d fail=%d rounds=%d sends=%d distrusted=%d giveups=%d\n",
			c.SecureReports, c.SecureTestPass, c.SecureTestFail,
			c.SecureRedundantRounds, c.SecureRedundantSends, c.SecureDistrusted, c.SecureGiveUps)
	}
	if cfg.Faults != nil {
		fmt.Printf("fault counters: duplicated=%d reordered=%d peakRetx=%.4f/node/s\n",
			res.FaultCounts.Duplicated, res.FaultCounts.Reordered, t.PeakRetxPerNodeSec)
		fmt.Printf("%-18s %8s %10s %10s %8s\n", "phase", "issued", "delivered", "incorrect", "lost")
		for _, p := range []struct {
			name  string
			count stats.PhaseCount
		}{
			{"before-fault", res.Phases.Before},
			{"during-fault", res.Phases.During},
			{"after-fault", res.Phases.After},
		} {
			fmt.Printf("%-18s %8d %10d %10d %8d\n", p.name,
				p.count.Issued, p.count.Delivered, p.count.Incorrect, p.count.Lost)
		}
		for _, rec := range res.Recovery {
			fmt.Printf("recovery: healed at %v, repaired=%v, time-to-repair=%v\n",
				rec.HealAt.Round(time.Second), rec.Repaired, rec.TimeToRepair().Round(time.Second))
		}
	}
	if *traceLook {
		ts := res.TraceStats
		fmt.Printf("hop traces: delivered=%d dropped=%d outstanding=%d reconstructed=%d (%.2f%%)\n",
			ts.Delivered, ts.Dropped, ts.Outstanding, ts.Reconstructed,
			ts.ReconstructionRate()*100)
	}
	fmt.Printf("simulated %v in %v (%d events, %.0f events/s)\n",
		tr.Duration, elapsed.Round(time.Millisecond), res.SimEvents,
		float64(res.SimEvents)/elapsed.Seconds())
	if t.IncorrectRate > 0 {
		fmt.Fprintf(os.Stderr, "note: incorrect deliveries observed (expected only with link loss)\n")
	}

	if *metricsDump != "" {
		out := os.Stdout
		if *metricsDump != "-" {
			f, err := os.Create(*metricsDump)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			out = f
		}
		if err := cfg.Telemetry.WritePrometheus(out); err != nil {
			log.Fatal(err)
		}
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
	}
}
