// Command mspastry-node runs one live MSPastry node over UDP, optionally
// with the replicated key-value store on top, and takes commands on stdin.
// It is the deployment counterpart of the simulator: the same protocol
// code, real sockets — and the same telemetry, so the metric names on
// /metrics match what the simulator emits.
//
// Start a two-node overlay on one machine:
//
//	mspastry-node -listen 127.0.0.1:7001 -admin 127.0.0.1:8081 -bootstrap
//	# note the printed "id=<hex>" line, then in another terminal:
//	mspastry-node -listen 127.0.0.1:7002 -seed-addr 127.0.0.1:7001 -seed-id <hex>
//
// The admin listener serves /metrics (Prometheus text), /status (JSON leaf
// set, routing table and counters), /traces (recent lookup hop traces) and
// /debug/pprof. The stdout status command, /status and /metrics all read
// from the same telemetry registry, so they cannot disagree.
//
// Commands on stdin:
//
//	put <key> <value...>   store a value in the DHT
//	get <key>              fetch a value
//	del <key>              delete a value (tombstoned, propagates)
//	lookup <key>           route a bare lookup (delivery logged at the root)
//	slookup <key>          route a secure lookup (with -secure-routing: the
//	                       root's completion report runs the failure test)
//	status                 print leaf set, routing table and counters
//	quit                   leave (crash-stop) and exit
//
// With -data-dir the DHT store is disk-backed: every write lands in a
// CRC-framed write-ahead log before it is acknowledged, so objects this
// node holds survive a restart and re-enter replication through the
// anti-entropy sweeps.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"mspastry/internal/admin"
	"mspastry/internal/dht"
	"mspastry/internal/id"
	"mspastry/internal/overload"
	"mspastry/internal/pastry"
	"mspastry/internal/peer"
	objstore "mspastry/internal/store"
	"mspastry/internal/telemetry"
	"mspastry/internal/transport"
)

func main() {
	log.SetFlags(0)
	var (
		listen    = flag.String("listen", "127.0.0.1:0", "UDP listen address")
		adminAddr = flag.String("admin", "", "HTTP admin listen address for /metrics, /status, /traces and /debug/pprof (empty = off)")
		bootstrap = flag.Bool("bootstrap", false, "start a new overlay instead of joining")
		seedAddr  = flag.String("seed-addr", "", "seed node address (host:port)")
		seedID    = flag.String("seed-id", "", "seed node identifier (32 hex digits)")
		nodeID    = flag.String("id", "", "this node's identifier (default: random)")
		seed      = flag.Int64("seed", time.Now().UnixNano(), "random seed")
		coalesce  = flag.Duration("coalesce", 2*time.Millisecond, "control-message coalescing window (0 = one message per datagram)")
		coalesceL = flag.Duration("coalesce-long", 0, "extended coalescing window for delay-tolerant messages (heartbeats, gossip); keep below the probe timeout")
		status    = flag.Duration("status", 0, "print a status line at this interval (0 = off)")
		dataDir   = flag.String("data-dir", "", "directory for the durable object store (empty = in-memory)")
		inQueue   = flag.Int("inbound-queue", 0, "bound inbound work at this many messages, shedding lowest-priority-first (0 = unbounded)")
		secRoute  = flag.Bool("secure-routing", false, "run the routing failure test on lookups issued with slookup, with redundant diverse-path retries")
		secWrites = flag.Bool("secure-writes", false, "route DHT puts and deletes as secure lookups (requires -secure-routing)")
		cacheEnt  = flag.Int("cache-entries", 0, "hotspot read-cache capacity in entries (0 = caching off)")
		cacheHot  = flag.Int("cache-hot-threshold", 0, "popularity estimate at which a key's root deposits cache entries on route hops (0 = default)")
	)
	flag.Parse()

	// A typo'd flag must die here with a clear message, not surface later
	// as a wedged coalescer or a panicking queue constructor.
	switch {
	case *coalesce < 0:
		log.Fatalf("-coalesce must be >= 0, got %v", *coalesce)
	case *coalesceL < 0:
		log.Fatalf("-coalesce-long must be >= 0, got %v", *coalesceL)
	case *coalesceL > 0 && *coalesceL < *coalesce:
		log.Fatalf("-coalesce-long (%v) must be >= -coalesce (%v)", *coalesceL, *coalesce)
	case *status < 0:
		log.Fatalf("-status must be >= 0, got %v", *status)
	case *inQueue < 0:
		log.Fatalf("-inbound-queue must be >= 0, got %d", *inQueue)
	case *secWrites && !*secRoute:
		log.Fatalf("-secure-writes requires -secure-routing")
	case *cacheEnt < 0:
		log.Fatalf("-cache-entries must be >= 0, got %d", *cacheEnt)
	case *cacheHot < 0:
		log.Fatalf("-cache-hot-threshold must be >= 0, got %d", *cacheHot)
	case *cacheHot > 0 && *cacheEnt == 0:
		log.Fatalf("-cache-hot-threshold requires -cache-entries > 0")
	}

	tr, err := transport.Listen(*listen, *seed)
	if err != nil {
		log.Fatal(err)
	}
	defer tr.Close()
	tr.SetCoalesceWindow(*coalesce)
	tr.SetCoalesceLongWindow(*coalesceL)
	tr.SetInboundQueue(*inQueue)

	// One registry backs every view of this node: the Prometheus endpoint,
	// the JSON status and the stdout status command.
	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(256)
	obs := telemetry.NewOverlay(reg, tracer, telemetry.OverlayOptions{Inner: logObserver{}})
	tr.SetMetricsSink(telemetry.NewTransportMetrics(reg))

	var self id.ID
	if *nodeID != "" {
		if self, err = id.Parse(*nodeID); err != nil {
			log.Fatal(err)
		}
	}
	cfg := pastry.DefaultConfig()
	cfg.SecureRouting = *secRoute
	node, err := tr.CreateNode(self, cfg, obs)
	if err != nil {
		log.Fatal(err)
	}
	dhtCfg := dht.DefaultConfig()
	dhtCfg.SecureWrites = *secWrites
	dhtCfg.CacheEntries = *cacheEnt
	dhtCfg.CacheHotThreshold = *cacheHot
	if *dataDir != "" {
		// SyncEvery 1 fsyncs each write before the put is acknowledged:
		// the node is a durability demo first, a throughput demo second.
		backend, err := objstore.Open(*dataDir, objstore.DiskOptions{SyncEvery: 1})
		if err != nil {
			log.Fatal(err)
		}
		if replayed := backend.Stats().Replayed; replayed > 0 {
			fmt.Printf("recovered %d records from %s (%d live objects)\n",
				replayed, *dataDir, backend.Len())
		}
		dhtCfg.Backend = backend
	}
	var store *dht.Store
	tr.DoSync(func(n *pastry.Node) {
		store = dht.New(n, tr.Env(), dhtCfg)
	})

	// Scrape-time snapshot: copy the protocol and DHT tallies into gauges
	// on the event loop, so every Snapshot/WritePrometheus sees values that
	// are mutually consistent. Collect hooks only run from HTTP handlers
	// and the stdin loop, never from the event loop itself.
	trtGauge := reg.Gauge("mspastry_trt_seconds",
		"Most recent self-tuned routing-table probing period Trt.")
	reg.OnCollect(func() {
		tr.DoSync(func(n *pastry.Node) {
			if n == nil {
				return
			}
			telemetry.RecordNodeCounters(reg, n.Stats())
			telemetry.RecordPeerStats(reg, n.PeerStats())
			telemetry.RecordDHTCounters(reg, store.Counters(), store.LocalObjects())
			telemetry.RecordStoreStats(reg, store.StoreStats())
			if *cacheEnt > 0 {
				telemetry.RecordHotspotStats(reg, store.CacheStats())
			}
			trtGauge.Set(n.Trt().Seconds())
		})
	})

	fmt.Printf("node up: addr=%s id=%s\n", tr.Addr(), node.Ref().ID)

	var adm *admin.Server
	if *adminAddr != "" {
		adm, err = admin.Serve(*adminAddr, reg, admin.Options{
			Status: func() any { return statusSnapshot(tr, store, *dataDir != "") },
			Tracer: tracer,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer adm.Close()
		fmt.Printf("admin endpoint: http://%s/metrics /status /traces /debug/pprof\n", adm.Addr())
	}

	switch {
	case *bootstrap:
		tr.DoSync(func(n *pastry.Node) { n.Bootstrap() })
		fmt.Println("bootstrapped a new overlay")
	case *seedAddr != "" && *seedID != "":
		sid, err := id.Parse(*seedID)
		if err != nil {
			log.Fatal(err)
		}
		ref := pastry.NodeRef{ID: sid, Addr: *seedAddr}
		tr.DoSync(func(n *pastry.Node) { n.Join(ref) })
		fmt.Printf("joining via %s...\n", *seedAddr)
	default:
		log.Fatal("need -bootstrap, or -seed-addr and -seed-id")
	}

	stopStatus := make(chan struct{})
	defer close(stopStatus)
	if *status > 0 {
		go statusLoop(reg, tr, store, *dataDir != "", *status, stopStatus)
	}

	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
loop:
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			fmt.Print("> ")
			continue
		}
		switch fields[0] {
		case "put":
			if len(fields) < 3 {
				fmt.Println("usage: put <key> <value...>")
				break
			}
			key := id.FromKey(fields[1])
			value := []byte(strings.Join(fields[2:], " "))
			done := make(chan error, 1)
			tr.Do(func(*pastry.Node) {
				store.Put(key, value, func(err error) { done <- err })
			})
			if err := <-done; err != nil {
				fmt.Printf("put failed: %v\n", err)
			} else {
				fmt.Printf("stored %q (key %s)\n", fields[1], key)
			}
		case "get":
			if len(fields) != 2 {
				fmt.Println("usage: get <key>")
				break
			}
			key := id.FromKey(fields[1])
			type result struct {
				v   []byte
				err error
			}
			done := make(chan result, 1)
			tr.Do(func(*pastry.Node) {
				store.Get(key, func(v []byte, err error) { done <- result{v, err} })
			})
			res := <-done
			if res.err != nil {
				fmt.Printf("get failed: %v\n", res.err)
			} else {
				fmt.Printf("%s\n", res.v)
			}
		case "del":
			if len(fields) != 2 {
				fmt.Println("usage: del <key>")
				break
			}
			key := id.FromKey(fields[1])
			done := make(chan error, 1)
			tr.Do(func(*pastry.Node) {
				store.Delete(key, func(err error) { done <- err })
			})
			if err := <-done; err != nil {
				fmt.Printf("del failed: %v\n", err)
			} else {
				fmt.Printf("deleted %q (key %s)\n", fields[1], key)
			}
		case "lookup":
			if len(fields) != 2 {
				fmt.Println("usage: lookup <key>")
				break
			}
			key := id.FromKey(fields[1])
			tr.Do(func(n *pastry.Node) { n.Lookup(key, nil) })
			fmt.Printf("lookup for %s routed (the root logs the delivery)\n", key)
		case "slookup":
			if len(fields) != 2 {
				fmt.Println("usage: slookup <key>")
				break
			}
			if !*secRoute {
				fmt.Println("slookup needs -secure-routing")
				break
			}
			key := id.FromKey(fields[1])
			tr.Do(func(n *pastry.Node) { n.LookupSecure(key, nil) })
			fmt.Printf("secure lookup for %s routed (root report checked on arrival)\n", key)
		case "status":
			printStatus(reg, tr, store, *dataDir != "")
		case "quit", "exit":
			fmt.Println("leaving the overlay")
			break loop
		default:
			fmt.Println("commands: put, get, del, lookup, slookup, status, quit")
		}
		fmt.Print("> ")
	}
	// Flush the store from the event loop before the deferred cleanup
	// (stop the status ticker, shut the admin listener, close the
	// transport) runs, so a disk-backed WAL is complete on exit.
	tr.DoSync(func(*pastry.Node) { store.Close() })
}

func statusLoop(reg *telemetry.Registry, tr *transport.UDP, store *dht.Store, durable bool, every time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			printStatus(reg, tr, store, durable)
		case <-stop:
			return
		}
	}
}

// nodeStatus is the /status JSON shape (also behind the stdout command).
type nodeStatus struct {
	ID             string         `json:"id"`
	Addr           string         `json:"addr"`
	Active         bool           `json:"active"`
	TrtSeconds     float64        `json:"trt_seconds"`
	LeafLeft       []string       `json:"leaf_left"`
	LeafRight      []string       `json:"leaf_right"`
	RoutingEntries int            `json:"routing_entries"`
	RoutingRows    [][]string     `json:"routing_rows"`
	LocalObjects   int            `json:"local_objects"`
	Store          storeStatus    `json:"store"`
	Overload       overloadStatus `json:"overload"`
	// Peers is the per-peer state registry's cardinality and prune
	// economics: live record count by lifecycle class, sweep/eviction
	// counters, and the per-component slot breakdown.
	Peers peer.Stats `json:"peers"`
}

// overloadStatus reports the overload-protection layer on /status: the
// inbound queue's per-lane shed counts, contained handler panics, and
// the per-peer circuit breakers.
type overloadStatus struct {
	ShedByLane    map[string]uint64     `json:"shed_by_lane"`
	HandlerPanics uint64                `json:"handler_panics"`
	LoadFactor    float64               `json:"load_factor"`
	Breakers      pastry.BreakerSummary `json:"breakers"`
}

// storeStatus reports the object-store backend on /status.
type storeStatus struct {
	Durable       bool   `json:"durable"`
	Objects       int    `json:"objects"`
	Tombstones    int    `json:"tombstones"`
	WALBytes      int64  `json:"wal_bytes"`
	SnapshotBytes int64  `json:"snapshot_bytes"`
	Compactions   uint64 `json:"compactions"`
}

func statusSnapshot(tr *transport.UDP, store *dht.Store, durable bool) nodeStatus {
	var s nodeStatus
	tr.DoSync(func(n *pastry.Node) {
		if n == nil {
			return
		}
		s.ID = n.Ref().ID.String()
		s.Addr = n.Ref().Addr
		s.Active = n.Active()
		s.TrtSeconds = n.Trt().Seconds()
		for _, ref := range n.Leaf().Left() {
			s.LeafLeft = append(s.LeafLeft, ref.ID.String())
		}
		for _, ref := range n.Leaf().Right() {
			s.LeafRight = append(s.LeafRight, ref.ID.String())
		}
		rt := n.Table()
		s.RoutingEntries = rt.Count()
		for r := 0; r < rt.NumRows(); r++ {
			row := rt.Row(r)
			if len(row) == 0 {
				continue
			}
			ids := make([]string, 0, len(row))
			for _, ref := range row {
				ids = append(ids, ref.ID.String())
			}
			s.RoutingRows = append(s.RoutingRows, ids)
		}
		s.LocalObjects = store.LocalObjects()
		s.Peers = n.PeerStats()
		shed, panics := tr.OverloadStats()
		s.Overload = overloadStatus{
			ShedByLane:    make(map[string]uint64, len(shed)),
			HandlerPanics: panics,
			LoadFactor:    n.LoadFactor(),
			Breakers:      n.Breakers(),
		}
		for lane, count := range shed {
			s.Overload.ShedByLane[overload.Lane(lane).String()] = count
		}
		st := store.StoreStats()
		s.Store = storeStatus{
			Durable:       durable,
			Objects:       st.Objects,
			Tombstones:    st.Tombstones,
			WALBytes:      st.WALBytes,
			SnapshotBytes: st.SnapshotBytes,
			Compactions:   st.Compactions,
		}
	})
	return s
}

// printStatus renders the same data the admin endpoint serves: the node
// snapshot plus counters read back from the telemetry registry.
func printStatus(reg *telemetry.Registry, tr *transport.UDP, store *dht.Store, durable bool) {
	s := statusSnapshot(tr, store, durable)
	snap := reg.Snapshot()
	m := make(map[string]float64)
	for _, mv := range snap {
		key := mv.Name
		if mv.Label != "" {
			key += "{" + mv.Label + "}"
		}
		if mv.Quantiles != nil {
			m[key+":count"] = float64(mv.Count)
		} else {
			m[key] = mv.Value
		}
	}
	fmt.Printf("status: active=%v leaf=%d rt=%d trt=%s objects=%d\n",
		s.Active, len(s.LeafLeft)+len(s.LeafRight), s.RoutingEntries,
		time.Duration(s.TrtSeconds*float64(time.Second)).Round(time.Second), s.LocalObjects)
	if len(s.LeafLeft) > 0 {
		fmt.Printf("  left  neighbour: %s\n", s.LeafLeft[0])
	}
	if len(s.LeafRight) > 0 {
		fmt.Printf("  right neighbour: %s\n", s.LeafRight[0])
	}
	fmt.Printf("  lookups: issued=%.0f delivered=%.0f  acks=%.0f  retransmits=%.0f\n",
		m["mspastry_lookups_issued_total"], m["mspastry_lookups_delivered_total"],
		m["mspastry_ack_rtt_seconds:count"], m["mspastry_node_retransmits"])
	fmt.Printf("  transport: sent=%.0f recv=%.0f datagrams_out=%.0f bytes_out=%.0f bytes_in=%.0f saved=%.0f\n",
		sumByName(snap, "mspastry_transport_msgs_sent_total"),
		sumByName(snap, "mspastry_transport_msgs_received_total"),
		m["mspastry_transport_datagrams_sent_total"],
		m["mspastry_transport_bytes_sent_total"], m["mspastry_transport_bytes_received_total"],
		m["mspastry_transport_coalesced_bytes_saved_total"])
	fmt.Printf("  dht: puts=%.0f gets=%.0f dels=%.0f retries=%.0f replicas=%.0f syncs=%.0f repaired=%.0f\n",
		m["mspastry_dht_puts"], m["mspastry_dht_gets"], m["mspastry_dht_deletes"],
		m["mspastry_dht_retries"], m["mspastry_dht_replicas_pushed"],
		m["mspastry_dht_sync_rounds"], m["mspastry_dht_sync_keys_repaired"])
	var shedTotal uint64
	for _, c := range s.Overload.ShedByLane {
		shedTotal += c
	}
	fmt.Printf("  overload: load=%.2f shed=%d panics=%d breakers open=%d half-open=%d tripping=%d budget_dry=%.0f\n",
		s.Overload.LoadFactor, shedTotal, s.Overload.HandlerPanics,
		s.Overload.Breakers.Open, s.Overload.Breakers.HalfOpen, s.Overload.Breakers.Tripping,
		m["mspastry_node_retry_budget_exhausted"])
	fmt.Printf("  peers: live=%d (admitted=%d strangers=%d doomed=%d) sweeps=%d evicted=%d expelled=%d\n",
		s.Peers.Live, s.Peers.Admitted, s.Peers.Strangers, s.Peers.Doomed,
		s.Peers.Sweeps, s.Peers.EvictedStrangers+s.Peers.EvictedAdmitted, s.Peers.Expelled)
	if s.Store.Durable {
		fmt.Printf("  store: objects=%d tombstones=%d wal=%dB snapshot=%dB compactions=%d\n",
			s.Store.Objects, s.Store.Tombstones, s.Store.WALBytes,
			s.Store.SnapshotBytes, s.Store.Compactions)
	}
}

// sumByName totals every labelled child of one metric family.
func sumByName(snap []telemetry.MetricValue, name string) float64 {
	var total float64
	for _, mv := range snap {
		if mv.Name == name {
			total += mv.Value
		}
	}
	return total
}

// logObserver prints protocol events.
type logObserver struct{}

func (logObserver) Activated(n *pastry.Node, lat time.Duration) {
	fmt.Printf("\nactive after %v (leaf set size %d)\n> ", lat.Round(time.Millisecond), n.Leaf().Size())
}

func (logObserver) Delivered(n *pastry.Node, lk *pastry.Lookup) {
	if len(lk.Payload) == 0 {
		fmt.Printf("\ndelivered lookup for %s (from %s, %d hops)\n> ", lk.Key, lk.Origin.Addr, lk.Hops)
	}
}

func (logObserver) LookupDropped(n *pastry.Node, lk *pastry.Lookup, reason pastry.DropReason) {
	fmt.Printf("\ndropped lookup for %s: %s\n> ", lk.Key, reason)
}
