// Command mspastry-node runs one live MSPastry node over UDP, optionally
// with the replicated key-value store on top, and takes commands on stdin.
// It is the deployment counterpart of the simulator: the same protocol
// code, real sockets.
//
// Start a two-node overlay on one machine:
//
//	mspastry-node -listen 127.0.0.1:7001 -bootstrap
//	# note the printed "id=<hex>" line, then in another terminal:
//	mspastry-node -listen 127.0.0.1:7002 -seed-addr 127.0.0.1:7001 -seed-id <hex>
//
// Commands on stdin:
//
//	put <key> <value...>   store a value in the DHT
//	get <key>              fetch a value
//	lookup <key>           route a bare lookup (delivery logged at the root)
//	status                 print leaf set, routing table and counters
//	quit                   leave (crash-stop) and exit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"mspastry/internal/dht"
	"mspastry/internal/id"
	"mspastry/internal/pastry"
	"mspastry/internal/transport"
)

func main() {
	log.SetFlags(0)
	var (
		listen    = flag.String("listen", "127.0.0.1:0", "UDP listen address")
		bootstrap = flag.Bool("bootstrap", false, "start a new overlay instead of joining")
		seedAddr  = flag.String("seed-addr", "", "seed node address (host:port)")
		seedID    = flag.String("seed-id", "", "seed node identifier (32 hex digits)")
		nodeID    = flag.String("id", "", "this node's identifier (default: random)")
		seed      = flag.Int64("seed", time.Now().UnixNano(), "random seed")
		status    = flag.Duration("status", 0, "print a status line at this interval (0 = off)")
	)
	flag.Parse()

	tr, err := transport.Listen(*listen, *seed)
	if err != nil {
		log.Fatal(err)
	}
	defer tr.Close()

	var self id.ID
	if *nodeID != "" {
		if self, err = id.Parse(*nodeID); err != nil {
			log.Fatal(err)
		}
	}
	cfg := pastry.DefaultConfig()
	node, err := tr.CreateNode(self, cfg, logObserver{})
	if err != nil {
		log.Fatal(err)
	}
	var store *dht.Store
	tr.DoSync(func(n *pastry.Node) {
		store = dht.New(n, tr.Env(), dht.DefaultConfig())
	})

	fmt.Printf("node up: addr=%s id=%s\n", tr.Addr(), node.Ref().ID)

	switch {
	case *bootstrap:
		tr.DoSync(func(n *pastry.Node) { n.Bootstrap() })
		fmt.Println("bootstrapped a new overlay")
	case *seedAddr != "" && *seedID != "":
		sid, err := id.Parse(*seedID)
		if err != nil {
			log.Fatal(err)
		}
		ref := pastry.NodeRef{ID: sid, Addr: *seedAddr}
		tr.DoSync(func(n *pastry.Node) { n.Join(ref) })
		fmt.Printf("joining via %s...\n", *seedAddr)
	default:
		log.Fatal("need -bootstrap, or -seed-addr and -seed-id")
	}

	if *status > 0 {
		go statusLoop(tr, *status)
	}

	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			fmt.Print("> ")
			continue
		}
		switch fields[0] {
		case "put":
			if len(fields) < 3 {
				fmt.Println("usage: put <key> <value...>")
				break
			}
			key := id.FromKey(fields[1])
			value := []byte(strings.Join(fields[2:], " "))
			done := make(chan error, 1)
			tr.Do(func(*pastry.Node) {
				store.Put(key, value, func(err error) { done <- err })
			})
			if err := <-done; err != nil {
				fmt.Printf("put failed: %v\n", err)
			} else {
				fmt.Printf("stored %q (key %s)\n", fields[1], key)
			}
		case "get":
			if len(fields) != 2 {
				fmt.Println("usage: get <key>")
				break
			}
			key := id.FromKey(fields[1])
			type result struct {
				v   []byte
				err error
			}
			done := make(chan result, 1)
			tr.Do(func(*pastry.Node) {
				store.Get(key, func(v []byte, err error) { done <- result{v, err} })
			})
			res := <-done
			if res.err != nil {
				fmt.Printf("get failed: %v\n", res.err)
			} else {
				fmt.Printf("%s\n", res.v)
			}
		case "lookup":
			if len(fields) != 2 {
				fmt.Println("usage: lookup <key>")
				break
			}
			key := id.FromKey(fields[1])
			tr.Do(func(n *pastry.Node) { n.Lookup(key, nil) })
			fmt.Printf("lookup for %s routed (the root logs the delivery)\n", key)
		case "status":
			printStatus(tr)
		case "quit", "exit":
			fmt.Println("leaving the overlay")
			return
		default:
			fmt.Println("commands: put, get, lookup, status, quit")
		}
		fmt.Print("> ")
	}
}

func statusLoop(tr *transport.UDP, every time.Duration) {
	for range time.Tick(every) {
		printStatus(tr)
	}
}

func printStatus(tr *transport.UDP) {
	tr.DoSync(func(n *pastry.Node) {
		if n == nil {
			return
		}
		fmt.Printf("status: active=%v leaf=%d rt=%d trt=%v\n",
			n.Active(), n.Leaf().Size(), n.Table().Count(), n.Trt().Round(time.Second))
		if left, ok := n.Leaf().LeftNeighbour(); ok {
			fmt.Printf("  left  neighbour: %s\n", left.ID)
		}
		if right, ok := n.Leaf().RightNeighbour(); ok {
			fmt.Printf("  right neighbour: %s\n", right.ID)
		}
		sent, recv := tr.Counters()
		fmt.Printf("  messages: sent=%d received=%d\n", sent, recv)
	})
}

// logObserver prints protocol events.
type logObserver struct{}

func (logObserver) Activated(n *pastry.Node, lat time.Duration) {
	fmt.Printf("\nactive after %v (leaf set size %d)\n> ", lat.Round(time.Millisecond), n.Leaf().Size())
}

func (logObserver) Delivered(n *pastry.Node, lk *pastry.Lookup) {
	if len(lk.Payload) == 0 {
		fmt.Printf("\ndelivered lookup for %s (from %s, %d hops)\n> ", lk.Key, lk.Origin.Addr, lk.Hops)
	}
}

func (logObserver) LookupDropped(n *pastry.Node, lk *pastry.Lookup, reason pastry.DropReason) {
	fmt.Printf("\ndropped lookup for %s: %s\n> ", lk.Key, reason)
}
