// Command tracegen generates and analyses churn traces. It can write a
// trace in the text format of internal/trace, or print the Figure 3
// failure-rate series for a generated or existing trace file.
//
// Examples:
//
//	tracegen -trace gnutella -trace-div 4 -o gnutella.trace
//	tracegen -trace poisson -session 30m -nodes 1000 -duration 4h -o p.trace
//	tracegen -analyze gnutella.trace -window 10m
//	tracegen -trace microsoft -stats
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"mspastry/internal/trace"
)

func main() {
	log.SetFlags(0)
	var (
		sel      = flag.String("trace", "gnutella", "trace family: gnutella, overnet, microsoft, poisson")
		traceDiv = flag.Int("trace-div", 1, "population divisor (1 = paper size)")
		maxDur   = flag.Duration("max-dur", 0, "cap on duration (0 = full)")
		session  = flag.Duration("session", 30*time.Minute, "poisson: mean session")
		nodes    = flag.Int("nodes", 10000, "poisson: average nodes")
		duration = flag.Duration("duration", 4*time.Hour, "poisson: duration")
		seed     = flag.Int64("seed", 0, "override seed (0 = family default)")
		out      = flag.String("o", "", "write the trace to this file")
		analyze  = flag.String("analyze", "", "analyse an existing trace file instead of generating")
		window   = flag.Duration("window", 10*time.Minute, "analysis window")
		stats    = flag.Bool("stats", false, "print summary statistics")
	)
	flag.Parse()

	var tr *trace.Trace
	if *analyze != "" {
		f, err := os.Open(*analyze)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		tr, err = trace.Decode(f)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		var cfg trace.Config
		switch *sel {
		case "gnutella":
			cfg = trace.Gnutella()
		case "overnet":
			cfg = trace.OverNet()
		case "microsoft":
			cfg = trace.Microsoft()
		case "poisson":
			cfg = trace.Poisson(*session, *nodes, *duration)
		default:
			log.Fatalf("unknown trace family %q", *sel)
		}
		cfg = cfg.Scaled(*traceDiv, *maxDur)
		if *seed != 0 {
			cfg.Seed = *seed
		}
		tr = trace.Generate(cfg)
	}

	if err := tr.Validate(); err != nil {
		log.Fatalf("trace invalid: %v", err)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := trace.Encode(f, tr); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s: %d nodes, %d events, %v\n", *out, tr.Nodes, len(tr.Events), tr.Duration)
	}

	if *stats || *out == "" {
		lo, hi := tr.ActiveBounds()
		fmt.Printf("trace %s: %d node slots, %d events over %v\n", tr.Name, tr.Nodes, len(tr.Events), tr.Duration)
		fmt.Printf("active nodes: %d..%d (initial %d)\n", lo, hi, len(tr.Initial))
		fmt.Printf("mean completed session: %v\n", tr.MeanSessionObserved().Round(time.Second))
		fmt.Printf("\n%-10s %10s %8s %8s %14s\n", "window", "active", "joins", "leaves", "failures/n/s")
		for _, w := range tr.Windows(*window) {
			fmt.Printf("%-10s %10.0f %8d %8d %14.3e\n",
				w.Start.Round(time.Second), w.Active, w.Joins, w.Leaves, w.FailureRate)
		}
	}
}
