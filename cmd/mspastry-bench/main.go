// Command mspastry-bench reproduces the tables and figures of the paper's
// evaluation (§5). Each experiment prints the rows or series the paper
// plots; EXPERIMENTS.md maps every output to its figure and records the
// paper's values next to measured ones.
//
// With -json it instead runs the deterministic perfbench macro-benchmark
// suite and emits one machine-readable BENCH_<scenario>.json per canonical
// scenario — the repo's performance-trajectory format (see DESIGN.md
// "Performance methodology").
//
// Examples:
//
//	mspastry-bench -experiment all
//	mspastry-bench -experiment fig6 -trace-div 8 -max-dur 3h
//	mspastry-bench -experiment fig8validate -validate-dur 20s
//	mspastry-bench -json -out . -scenario all
//	mspastry-bench -json -scenario steady -bench-div 4
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"mspastry/internal/experiments"
	"mspastry/internal/perfbench"
)

func main() {
	log.SetFlags(0)
	var (
		which       = flag.String("experiment", "all", "experiment: all, fig3, topo, fig4, fig5, fig5join, fig6, fig7l, fig7b, ablation, selftune, suppression, heartbeat, consistency, massfailure, partitionheal, jitterfp, antientropy, batching, overload, secure, hotspot, fig8, fig8validate")
		topoDiv     = flag.Int("topo-div", 8, "topology scale divisor (1 = paper size)")
		traceDiv    = flag.Int("trace-div", 16, "trace population divisor (1 = paper size)")
		maxDur      = flag.Duration("max-dur", 90*time.Minute, "cap on trace duration (0 = full traces; full Gnutella is 60h)")
		poisson     = flag.Int("poisson-nodes", 250, "average nodes in the artificial traces (paper: 10000)")
		poissonDur  = flag.Duration("poisson-dur", time.Hour, "artificial trace duration")
		ramp        = flag.Duration("ramp", 5*time.Minute, "setup ramp")
		seed        = flag.Int64("seed", 1, "random seed")
		partFor     = flag.Duration("partition-for", 90*time.Second, "partitionheal: partition duration")
		fig8Days    = flag.Int("fig8-days", 6, "Squirrel replay length in days")
		coWin       = flag.Duration("coalesce", 30*time.Millisecond, "batching: base coalescing window")
		coLong      = flag.Duration("coalesce-long", 2500*time.Millisecond, "batching: delay-tolerant coalescing window (keep < probe timeout To)")
		aeNodes     = flag.Int("ae-nodes", 100, "antientropy: cluster size")
		aeObjects   = flag.Int("ae-objects", 1000, "antientropy: stored objects")
		hsNodes     = flag.Int("hotspot-nodes", 0, "hotspot: cluster size (0 = scale default)")
		hsDur       = flag.Duration("hotspot-dur", 0, "hotspot: measurement window (0 = scale default)")
		validateN   = flag.Int("validate-nodes", 8, "fig8validate: overlay size")
		validateDur = flag.Duration("validate-dur", 15*time.Second, "fig8validate: wall-clock workload duration")
		jsonMode    = flag.Bool("json", false, "run the perfbench macro suite and write BENCH_<scenario>.json reports")
		outDir      = flag.String("out", ".", "json: output directory for BENCH_*.json")
		scenario    = flag.String("scenario", "all", "json: scenario to run (all, steady, churn, overload5x, secure, hotspot)")
		benchDiv    = flag.Int("bench-div", 1, "json: scenario scale divisor (1 = canonical scale)")
	)
	flag.Parse()

	if *jsonMode {
		if err := runJSON(*outDir, *scenario, *benchDiv); err != nil {
			log.Fatal(err)
		}
		return
	}

	scale := experiments.Scale{
		TopoDiv:         *topoDiv,
		TraceDiv:        *traceDiv,
		MaxDuration:     *maxDur,
		PoissonNodes:    *poisson,
		PoissonDuration: *poissonDur,
		SetupRamp:       *ramp,
		Seed:            *seed,
	}

	run := func(name string) bool { return *which == "all" || *which == name }
	out := os.Stdout
	start := time.Now()

	if run("fig3") {
		r := experiments.Fig3FailureRates(scale)
		experiments.PrintRows(out, "Figure 3: node failure rates (per node per second)",
			[]string{"meanRate", "peakToTrough"}, r.Rows())
		fmt.Fprintln(out, "paper: Gnutella/OverNet peak ~3e-4, Microsoft ~1.5e-5; clear daily waves")
	}
	if run("topo") {
		r := experiments.TopologyComparison(scale)
		experiments.PrintRows(out, "§5.3 Network topology (Gnutella trace)",
			experiments.TotalsCols(), r.Rows())
		fmt.Fprintf(out, "paper: RDP 1.45/1.80/2.12 (corpnet/gatech/mercator); ctrl 0.239/0.245/0.256; ordering holds here: %v\n",
			r.RDPOrderingHolds())
	}
	if run("fig4") {
		r := experiments.Fig4Traces(scale)
		experiments.PrintRows(out, "Figure 4: real-world traces", experiments.TotalsCols(), r.Rows())
		experiments.PrintRows(out, "Figure 4 (right): Gnutella control breakdown",
			[]string{"msgsPerNodeSec"}, r.BreakdownRows())
		fmt.Fprintf(out, "paper: RDP ~flat per trace (self-tuning); Microsoft control ~3x lower.\n")
		fmt.Fprintf(out, "gnutella RDP peak/trough across windows: %.2f\n", r.RDPFlatness("gnutella"))
	}
	if run("fig5") {
		r := experiments.Fig5SessionTimes(scale)
		experiments.PrintRows(out, "Figure 5 (left/centre): Poisson session-time sweep",
			experiments.TotalsCols(), r.Rows())
		fmt.Fprintf(out, "paper: control 22x higher at 15min vs 600min (here %.1fx); RDP +40%% from 600m to 15m; RDP jumps at 5m\n",
			r.ControlRatio(15*time.Minute, 600*time.Minute))
	}
	if run("fig5join") {
		r := experiments.Fig5JoinLatency(scale)
		experiments.PrintRows(out, "Figure 5 (right): join latency CDF", []string{"p50sec", "p90sec", "p99sec"},
			[]experiments.Row{
				cdfRow("session=5m", r, 5*time.Minute),
				cdfRow("session=30m", r, 30*time.Minute),
			})
		fmt.Fprintln(out, "paper: nodes join within tens of seconds")
	}
	if run("fig6") {
		r := experiments.Fig6NetworkLoss(scale)
		experiments.PrintRows(out, "Figure 6: network loss sweep (Gnutella/GATech)",
			experiments.TotalsCols(), r.Rows())
		fmt.Fprintln(out, "paper: lookup loss 1.5e-5 -> 3.3e-5 from 0% to 5%; incorrect 0 at <=1%, 1.6e-5 at 5%")
	}
	if run("fig7l") {
		r := experiments.Fig7LeafSet(scale)
		experiments.PrintRows(out, "Figure 7 (left/centre): leaf set size sweep",
			experiments.TotalsCols(), r.Rows())
		fmt.Fprintln(out, "paper: control +7% from l=16 to l=32 (structured heartbeats); RDP falls with l")
	}
	if run("fig7b") {
		r := experiments.Fig7Digits(scale)
		experiments.PrintRows(out, "Figure 7 (right): digit bits sweep",
			experiments.TotalsCols(), r.Rows())
		fmt.Fprintln(out, "paper: RDP ~3.1 at b=1 falling to ~1.8 at b=4; control nearly flat")
	}
	if run("ablation") {
		r := experiments.AblationProbingAcks(scale)
		experiments.PrintRows(out, "§5.3 probing/acks ablation (Gnutella)",
			experiments.TotalsCols(), r.Rows())
		fmt.Fprintln(out, "paper: loss 32% with neither; 2.8e-5 acks-only; 1.6e-5 both; probing-only cannot reach 1e-5")
	}
	if run("selftune") {
		r := experiments.SelfTuning(scale)
		experiments.PrintRows(out, "§5.3 self-tuning to target raw loss (acks off)",
			append(experiments.TotalsCols(), "target"), r.Rows())
		fmt.Fprintln(out, "paper: measured 5.3% at 5% target, 1.2% at 1%; 2.6x control from 5%->1%")
	}
	if run("suppression") {
		r := experiments.Suppression(scale)
		experiments.PrintRows(out, "§5.3 probe suppression vs lookup rate",
			append(experiments.TotalsCols(), "suppressed"), r.Rows())
		fmt.Fprintln(out, "paper: >70% of probes suppressed at 1 lookup/s/node")
	}
	if run("heartbeat") {
		r := experiments.HeartbeatAblation(scale)
		experiments.PrintRows(out, "§4.1 structured vs all-pairs heartbeats",
			experiments.TotalsCols(), r.Rows())
		fmt.Fprintln(out, "design claim: structured heartbeats make leaf-set maintenance independent of l")
	}
	if run("massfailure") {
		cfg := experiments.DefaultMassFailureConfig()
		cfg.Seed = *seed
		r := experiments.MassFailure(cfg)
		fmt.Fprintf(out, "\n== §3.1 generalised repair: massive correlated failure ==\n")
		fmt.Fprintf(out, "killed %d of %d nodes at one instant; recovered=%v in %v; %d leaf msgs (%d per survivor)\n",
			r.Killed, r.Nodes, r.Recovered, r.RecoveryTime, r.ProbeMessages, r.ProbeMessages/(r.Nodes-r.Killed))
		fmt.Fprintln(out, "paper claim: repair converges in O(log N) iterations even when a large")
		fmt.Fprintln(out, "fraction of overlay nodes fails simultaneously")
	}
	if run("partitionheal") {
		r := experiments.PartitionHeal(scale, *partFor)
		experiments.PrintRows(out, fmt.Sprintf("fault injection: 50/50 partition for %v", *partFor),
			experiments.PhaseCols(), r.Rows())
		fmt.Fprintf(out, "(recovery row: issued=repaired flag, delivered=time-to-repair sec, incorrect=partition drops)\n")
		fmt.Fprintf(out, "repaired=%v time-to-repair=%v\n", r.Recovery.Repaired, r.Recovery.TimeToRepair().Round(time.Second))
		fmt.Fprintln(out, "claim: lookups misdeliver only while the overlay is split or repairing;")
		fmt.Fprintln(out, "after repair, incorrect deliveries return to zero")
	}
	if run("jitterfp") {
		r := experiments.JitterFalsePositives(scale, nil)
		experiments.PrintRows(out, "fault injection: delay-spike false positives (hold-on-suspect vs naive)",
			append(experiments.TotalsCols(), "gapOrders"), r.Rows())
		fmt.Fprintln(out, "claim: delay spikes above the retransmission timeout make live nodes look")
		fmt.Fprintln(out, "dead; the hold-on-suspect rule keeps incorrect deliveries >=3 orders of")
		fmt.Fprintln(out, "magnitude below naive immediate delivery")
	}
	if run("consistency") {
		r := experiments.ConsistencyRule(scale)
		experiments.PrintRows(out, "§3.2 consistency rule under 5% link loss",
			experiments.TotalsCols(), r.Rows())
		fmt.Fprintln(out, "claim: holding delivery while a closer node is suspected keeps")
		fmt.Fprintln(out, "incorrect deliveries at the 1e-5 scale; delivering immediately does not")
	}
	if run("antientropy") {
		r := experiments.AntiEntropy(scale, *aeNodes, *aeObjects)
		experiments.PrintRows(out,
			fmt.Sprintf("Anti-entropy vs full-push sweep maintenance (%d nodes, %d objects, %v window)",
				r.Nodes, r.Objects, r.Window.Round(time.Second)),
			experiments.AntiEntropyCols(), r.Rows())
		fmt.Fprintf(out, "maintenance bytes reduced %.1fx by Merkle reconciliation (bar: >= 5x)\n", r.Reduction())
		fmt.Fprintln(out, "claim: sweeps cost one digest exchange per replica pair when converged,")
		fmt.Fprintln(out, "full values move only for keys that actually diverged")
	}
	if run("batching") {
		r := experiments.Batching(scale, *coWin, *coLong)
		experiments.PrintRows(out,
			fmt.Sprintf("wire coalescing A/B (Tls=%v, window=%v, long=%v)",
				experiments.BatchingTls, r.Window, r.Long),
			append(experiments.TotalsCols(), "datagrams", "ctrlDgrams", "ctrlBytes", "savedB"),
			r.Rows())
		fmt.Fprintf(out, "control datagrams reduced %.1f%% (bar: >= 25%%) with lookup success and hops unchanged\n",
			r.ControlDatagramReduction()*100)
		fmt.Fprintln(out, "claim: under aggressive failure detection, heartbeats to the ring")
		fmt.Fprintln(out, "neighbour batch under the long window — the paper's suppression rule")
		fmt.Fprintln(out, "extended to piggybacking — without touching routing behaviour")
	}
	if run("overload") {
		cfg := experiments.DefaultOverloadConfig(scale)
		r := experiments.Overload(cfg)
		experiments.PrintRows(out,
			fmt.Sprintf("Overload & graceful degradation (%d nodes, capacity %d msgs @ %.0f/s, %v churn burst)",
				cfg.Nodes, cfg.Service.QueueLimit, cfg.Service.Rate, time.Duration(float64(cfg.Duration)*cfg.BurstFraction).Round(time.Minute)),
			experiments.OverloadCols(), r.Rows())
		fmt.Fprintf(out, "success at 5x load = %.2f of the 1x baseline (bar: >= 0.80)\n",
			r.DegradationRatio(1, 5))
		fmt.Fprintln(out, "claim: bounded lane queues shed bulk and lookups before liveness traffic,")
		fmt.Fprintln(out, "retry budgets cap the per-peer retransmission rate, and circuit breakers")
		fmt.Fprintln(out, "route around saturated peers — so load past capacity degrades throughput")
		fmt.Fprintln(out, "smoothly instead of collapsing the failure detector")
	}
	if run("secure") {
		cfg := experiments.DefaultSecureConfig(scale)
		r := experiments.Secure(cfg)
		experiments.PrintRows(out,
			fmt.Sprintf("Secure routing under Byzantine peers (%d nodes, %v, lookups %g/s)",
				cfg.Nodes, cfg.Duration, cfg.LookupRate),
			experiments.SecureCols(), r.Rows())
		fmt.Fprintf(out, "defended success at f=0.1 = %.4f of the f=0 baseline (bar: >= 0.99); failure-test false positives at f=0: %.2e\n",
			r.RestorationRatio(0.1), r.FalsePositiveRate())
		fmt.Fprintln(out, "claim: the routing failure test (leaf-set density vs the origin's own")
		fmt.Fprintln(out, "estimate) flags forged root claims, redundant neighbour-diverse rounds")
		fmt.Fprintln(out, "route around the colluders, and confirmed liars feed the breakers")
	}
	if run("hotspot") {
		cfg := experiments.DefaultHotspotConfig(scale)
		if *hsNodes > 0 {
			cfg.Nodes = *hsNodes
		}
		if *hsDur > 0 {
			cfg.Duration = *hsDur
		}
		r := experiments.Hotspot(scale, cfg)
		experiments.PrintRows(out,
			fmt.Sprintf("Hotspot mitigation: path caching under zipf(%.1f) (%d nodes, %d keys, %v window)",
				r.ZipfS, r.Nodes, r.Keys, r.Window.Round(time.Second)),
			experiments.HotspotCols(), r.Rows())
		fmt.Fprintf(out, "hot root load factor relieved %.1fx by path caching (bar: >= 2x)\n", r.Relief())
		fmt.Fprintln(out, "claim: Get replies deposited on the first and penultimate route hops")
		fmt.Fprintln(out, "short-circuit hot-key lookups before they converge on the key's root,")
		fmt.Fprintln(out, "version supersession plus the sweep backstop bound staleness to one")
		fmt.Fprintln(out, "sweep interval, and read floors keep per-client reads monotonic")
	}
	if run("fig8") {
		cfg := experiments.DefaultFig8Config()
		cfg.Days = *fig8Days
		cfg.Seed = *seed
		r := experiments.Fig8Squirrel(cfg)
		fmt.Fprintf(out, "\n== Figure 8: Squirrel total traffic per node (52 machines, %d days) ==\n", cfg.Days)
		fmt.Fprintf(out, "%-10s %10s %8s %10s\n", "window", "msgs/n/s", "active", "requests")
		for _, w := range r.Windows {
			fmt.Fprintf(out, "%-10s %10.4f %8.1f %10d\n",
				w.Start.Round(time.Minute), w.TotalPerNodeSec, w.Active, w.Requests)
		}
		fmt.Fprintf(out, "requests=%d originFetches=%d\n", r.Requests, r.OriginFetches)
		fmt.Fprintln(out, "paper: clear weekday/weekend pattern in total traffic; sim matches deployment")
	}
	if run("fig8validate") {
		r, err := experiments.Fig8Validation(*validateN, *validateDur, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(out, "\n== Figure 8 validation: simulator vs real UDP deployment ==\n")
		fmt.Fprintf(out, "nodes=%d duration=%v sim=%d msgs live=%d msgs live/sim=%.2f\n",
			r.Nodes, r.Duration, r.SimMessages, r.LiveMessages, r.Ratio())
		fmt.Fprintln(out, "paper: 'the simulation results are very similar to the statistics")
		fmt.Fprintln(out, "obtained from the real deployment'")
	}

	if *which != "all" && !isKnown(*which) {
		log.Fatalf("unknown experiment %q", *which)
	}
	fmt.Fprintf(out, "\ncompleted in %v\n", time.Since(start).Round(time.Second))
}

// runJSON executes the perfbench macro suite and writes one
// BENCH_<scenario>.json per selected scenario into dir.
func runJSON(dir, which string, div int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var scs []perfbench.Scenario
	if which == "all" {
		scs = perfbench.Scenarios(div)
	} else {
		sc, err := perfbench.ByName(which, div)
		if err != nil {
			return err
		}
		scs = []perfbench.Scenario{sc}
	}
	for _, sc := range scs {
		rep := perfbench.Run(sc)
		path, err := rep.WriteFile(dir)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %s\n", sc.Name, path)
		fmt.Printf("  wall=%.2fs events/s=%.0f allocs=%d p50=%.1fms p99=%.1fms maint=%.3f msgs/n/s success=%.4f\n",
			float64(rep.WallNs)/1e9, rep.SimEventsPerSec, rep.AllocsPerOp,
			rep.LookupP50Ms, rep.LookupP99Ms, rep.MaintenanceMsgsPerNodeSec, rep.LookupSuccessRate)
	}
	return nil
}

func cdfRow(label string, r experiments.Fig5JoinCDF, session time.Duration) experiments.Row {
	return experiments.Row{Label: label, Values: map[string]float64{
		"p50sec": r.Percentile(session, 0.5).Seconds(),
		"p90sec": r.Percentile(session, 0.9).Seconds(),
		"p99sec": r.Percentile(session, 0.99).Seconds(),
	}}
}

func isKnown(name string) bool {
	known := "all fig3 topo fig4 fig5 fig5join fig6 fig7l fig7b ablation selftune suppression heartbeat consistency massfailure partitionheal jitterfp antientropy batching overload secure hotspot fig8 fig8validate"
	for _, k := range strings.Fields(known) {
		if k == name {
			return true
		}
	}
	return false
}
