// Command topogen generates the paper's simulated network topologies and
// prints their structural and delay statistics (useful for validating a
// scale factor before a long simulation).
//
// Examples:
//
//	topogen -topo gatech
//	topogen -topo mercator -scale 4 -samples 200
//	topogen -topo corpnet
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sort"
	"time"

	"mspastry/internal/harness"
)

func main() {
	log.SetFlags(0)
	var (
		name    = flag.String("topo", "gatech", "topology: gatech, mercator, corpnet")
		scale   = flag.Int("scale", 1, "scale divisor (1 = paper size)")
		samples = flag.Int("samples", 300, "end nodes to attach for delay sampling")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	topo, err := harness.BuildTopology(*name, *scale, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology %s: %d routers, metric=%s\n", topo.Name(), topo.NumRouters(), topo.Metric())

	rng := rand.New(rand.NewSource(*seed))
	first := topo.Attach(*samples, rng)
	var ds []time.Duration
	var sum time.Duration
	start := time.Now()
	for a := 0; a < *samples; a++ {
		for b := a + 1; b < *samples; b++ {
			d := topo.Delay(first+a, first+b)
			ds = append(ds, d)
			sum += d
		}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	n := len(ds)
	mean := sum / time.Duration(n)
	pct := func(p int) time.Duration { return ds[n*p/100] }
	fmt.Printf("pairwise one-way delays over %d samples (%d pairs, computed in %v):\n",
		*samples, n, time.Since(start).Round(time.Millisecond))
	fmt.Printf("  min=%v p1=%v p10=%v p50=%v p90=%v p99=%v max=%v mean=%v\n",
		ds[0], pct(1), pct(10), pct(50), pct(90), pct(99), ds[n-1], mean)
	fmt.Printf("  locality (p1/mean): %.3f — lower means deeper locality for PNS to exploit\n",
		float64(pct(1))/float64(mean))
}
