// Videostream: SplitStream-style striped broadcast over MSPastry — the
// paper's authors ran exactly this (a video broadcast on 108 desktops).
// A publisher streams frames split across 4 data stripes plus a parity
// stripe, each stripe on its own Scribe tree. Mid-broadcast, a stripe
// tree's interior node crashes; viewers keep reconstructing every frame
// from the surviving stripes until the soft state heals the tree.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"mspastry"
)

func main() {
	log.SetFlags(0)
	sim := mspastry.NewSimulator(33)
	topo := mspastry.NewGATechTopology(mspastry.DefaultGATechConfig(), rand.New(rand.NewSource(33)))
	net := mspastry.NewSimNetwork(sim, topo, 0)

	pcfg := mspastry.DefaultConfig()
	pcfg.L = 16

	const n = 40
	first := topo.Attach(n, sim.Rand())
	var engines []*mspastry.ScribeEngine
	var seed mspastry.NodeRef
	for i := 0; i < n; i++ {
		ep := net.NewEndpoint(first + i)
		ref := mspastry.NodeRef{ID: mspastry.RandomID(sim.Rand()), Addr: ep.Addr()}
		node, err := mspastry.NewNode(ref, pcfg, ep, nil)
		if err != nil {
			log.Fatalf("create node: %v", err)
		}
		ep.Bind(node)
		engines = append(engines, mspastry.NewScribe(node, ep, mspastry.DefaultScribeConfig()))
		if i == 0 {
			node.Bootstrap()
			seed = ref
		} else {
			node.Join(seed)
		}
		sim.RunUntil(sim.Now() + 2*time.Second)
	}
	sim.RunUntil(sim.Now() + time.Minute)
	log.Printf("overlay of %d nodes up", n)

	sscfg := mspastry.DefaultSplitStreamConfig()
	const viewers = 24
	frames := make([]int, n)
	var channels []*mspastry.SplitStreamChannel
	for i := 8; i < 8+viewers; i++ {
		i := i
		ch := mspastry.JoinSplitStream(engines[i], sscfg, "launch-keynote",
			func(seq uint64, payload []byte) { frames[i]++ })
		channels = append(channels, ch)
	}
	sim.RunUntil(sim.Now() + 20*time.Second)

	pub := mspastry.NewSplitStreamPublisher(engines[0], sscfg, "launch-keynote")
	const totalFrames = 40
	for f := 0; f < totalFrames; f++ {
		frame := make([]byte, 1200)
		for i := range frame {
			frame[i] = byte(f)
		}
		pub.Publish(frame)
		sim.RunUntil(sim.Now() + 2*time.Second)
		if f == totalFrames/2 {
			// Crash a viewer that likely forwards interior stripe traffic.
			victim := engines[14]
			if ep, ok := net.Endpoint(victim.Node().Ref().Addr); ok {
				ep.Fail()
				log.Printf("t=%v: interior node crashed mid-broadcast", sim.Now())
			}
		}
	}
	sim.RunUntil(sim.Now() + time.Minute)

	healthy, starved := 0, 0
	var viaParity uint64
	for idx, i := 0, 8; i < 8+viewers; i, idx = i+1, idx+1 {
		if i == 14 {
			continue // the crashed machine
		}
		if frames[i] >= totalFrames*9/10 {
			healthy++
		} else {
			starved++
			log.Printf("viewer %d only saw %d/%d frames", i, frames[i], totalFrames)
		}
		viaParity += channels[idx].Recovered
	}
	fmt.Printf("viewers with >=90%% of frames: %d/%d (crashed viewer excluded)\n", healthy, viewers-1)
	fmt.Printf("frames reconstructed via the parity stripe: %d\n", viaParity)
	if starved > 2 {
		log.Fatal("the stream did not survive the interior failure")
	}
	fmt.Println("striped broadcast survived an interior tree failure")
}
