// Livenet: a real MSPastry overlay over UDP sockets on the loopback
// interface — the same protocol code as the simulator, but on wall-clock
// time and real datagrams (the paper's "same code in the simulator and in
// the deployment" property). Forms a 8-node ring, issues lookups, prints
// each node's view of its neighbourhood.
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"mspastry"
)

func main() {
	log.SetFlags(0)
	const n = 8

	cfg := mspastry.DefaultConfig()
	cfg.L = 8
	cfg.Tls = 2 * time.Second
	cfg.To = time.Second
	cfg.TickInterval = time.Second
	cfg.DistProbeSpacing = 200 * time.Millisecond

	var mu sync.Mutex
	deliveries := map[string]string{} // key -> delivering node id

	obs := &observer{mu: &mu, deliveries: deliveries}

	var transports []*mspastry.UDPTransport
	defer func() {
		for _, tr := range transports {
			tr.Close()
		}
	}()
	for i := 0; i < n; i++ {
		tr, err := mspastry.ListenUDP("127.0.0.1:0", int64(i+1))
		if err != nil {
			log.Fatalf("listen: %v", err)
		}
		transports = append(transports, tr)
		if _, err := tr.CreateNode(mspastry.ID{}, cfg, obs); err != nil {
			log.Fatalf("create node: %v", err)
		}
	}

	transports[0].DoSync(func(node *mspastry.Node) { node.Bootstrap() })
	var seed mspastry.NodeRef
	transports[0].DoSync(func(node *mspastry.Node) { seed = node.Ref() })
	log.Printf("bootstrap node %s listening on %s", seed.ID, seed.Addr)

	for i := 1; i < n; i++ {
		transports[i].DoSync(func(node *mspastry.Node) { node.Join(seed) })
	}

	// Wait for the overlay to form.
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		active := 0
		for _, tr := range transports {
			tr.DoSync(func(node *mspastry.Node) {
				if node.Active() {
					active++
				}
			})
		}
		if active == n {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Print the ring as each node sees it.
	var ids []string
	for _, tr := range transports {
		tr.DoSync(func(node *mspastry.Node) {
			ids = append(ids, node.Ref().ID.String()[:8])
		})
	}
	sort.Strings(ids)
	fmt.Printf("ring members: %v\n", ids)

	// Issue lookups from node 0 for keys owned by each node.
	for i := 0; i < n; i++ {
		var target mspastry.ID
		transports[i].DoSync(func(node *mspastry.Node) { target = node.Ref().ID })
		transports[0].Do(func(node *mspastry.Node) {
			node.Lookup(target, []byte("hello"))
		})
	}
	time.Sleep(2 * time.Second)

	mu.Lock()
	count := len(deliveries)
	mu.Unlock()
	fmt.Printf("lookups delivered over real UDP: %d/%d\n", count, n)
	if count != n {
		log.Fatal("some lookups were not delivered")
	}
	fmt.Println("live UDP overlay verified")
}

type observer struct {
	mu         *sync.Mutex
	deliveries map[string]string
}

func (o *observer) Activated(*mspastry.Node, time.Duration) {}

func (o *observer) Delivered(n *mspastry.Node, lk *mspastry.Lookup) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.deliveries[lk.Key.String()] = n.Ref().ID.String()
}

func (o *observer) LookupDropped(*mspastry.Node, *mspastry.Lookup, mspastry.DropReason) {}
