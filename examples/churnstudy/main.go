// Churnstudy: the paper's headline experiment in miniature. Runs the
// MSPastry harness against scaled versions of the three real-world churn
// traces (Gnutella, OverNet, Microsoft) and prints the dependability and
// performance metrics of §5.2: lookup loss rate, incorrect delivery rate,
// RDP and control traffic.
package main

import (
	"fmt"
	"log"
	"time"

	"mspastry"
)

func main() {
	log.SetFlags(0)
	topo, err := mspastry.BuildTopology("gatech", 8, 1)
	if err != nil {
		log.Fatal(err)
	}

	traces := []mspastry.TraceConfig{
		mspastry.GnutellaTrace().Scaled(16, 2*time.Hour),
		mspastry.OverNetTrace().Scaled(4, 2*time.Hour),
		mspastry.MicrosoftTrace().Scaled(100, 2*time.Hour),
	}

	fmt.Printf("%-10s %8s %10s %10s %8s %10s %10s\n",
		"trace", "nodes", "loss", "incorrect", "RDP", "ctrl/n/s", "medianTrt")
	for _, tc := range traces {
		tr := mspastry.GenerateTrace(tc)
		cfg := mspastry.DefaultExperiment(topo, tr)
		cfg.SetupRamp = 5 * time.Minute
		res := mspastry.RunExperiment(cfg)
		t := res.Totals
		fmt.Printf("%-10s %8.0f %10.2e %10.2e %8.2f %10.3f %10s\n",
			tc.Name, t.MeanActive, t.LossRate, t.IncorrectRate, t.RDP,
			t.ControlPerNodeSec, res.TrtMedian.Round(time.Second))
	}
	fmt.Println()
	fmt.Println("Expected shape (paper §5.3): zero incorrect deliveries without link")
	fmt.Println("loss; loss rates in the 1e-5 regime; RDP roughly constant across")
	fmt.Println("traces thanks to self-tuning; Microsoft control traffic well below")
	fmt.Println("the open-Internet traces; self-tuned Trt longest for Microsoft.")
}
