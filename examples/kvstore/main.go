// Kvstore: a replicated key-value store over MSPastry (the PAST/CFS-style
// archival use the paper motivates). Values are stored at the key's root
// and replicated to its closest neighbours; the example crashes the root
// of a hot key and shows reads still succeed.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"mspastry"
)

func main() {
	log.SetFlags(0)
	sim := mspastry.NewSimulator(21)
	topo := mspastry.NewCorpNetTopology(mspastry.DefaultCorpNetConfig(), rand.New(rand.NewSource(21)))
	net := mspastry.NewSimNetwork(sim, topo, 0)

	pcfg := mspastry.DefaultConfig()
	pcfg.L = 16

	const n = 24
	first := topo.Attach(n, sim.Rand())
	var stores []*mspastry.DHTStore
	var seed mspastry.NodeRef
	for i := 0; i < n; i++ {
		ep := net.NewEndpoint(first + i)
		ref := mspastry.NodeRef{ID: mspastry.RandomID(sim.Rand()), Addr: ep.Addr()}
		node, err := mspastry.NewNode(ref, pcfg, ep, nil)
		if err != nil {
			log.Fatalf("create node: %v", err)
		}
		ep.Bind(node)
		stores = append(stores, mspastry.NewDHT(node, ep, mspastry.DefaultDHTConfig()))
		if i == 0 {
			node.Bootstrap()
			seed = ref
		} else {
			node.Join(seed)
		}
		sim.RunUntil(sim.Now() + 2*time.Second)
	}
	sim.RunUntil(sim.Now() + time.Minute)
	log.Printf("DHT of %d nodes up at t=%v (replication factor 3)", n, sim.Now())

	// Store 40 documents from random writers.
	keys := make([]mspastry.ID, 40)
	puts := 0
	for i := range keys {
		keys[i] = mspastry.KeyFromString(fmt.Sprintf("doc-%d", i))
		stores[sim.Rand().Intn(n)].Put(keys[i], []byte(fmt.Sprintf("contents of doc %d", i)), func(err error) {
			if err == nil {
				puts++
			}
		})
		sim.RunUntil(sim.Now() + time.Second)
	}
	sim.RunUntil(sim.Now() + 30*time.Second)
	log.Printf("stored %d/%d documents", puts, len(keys))

	// Crash the root of doc-0, wait for repair, then read everything back.
	var root *mspastry.DHTStore
	for _, s := range stores {
		if !s.HasLocal(keys[0]) {
			continue
		}
		if root == nil || keys[0].Distance(s.Node().Ref().ID).Cmp(keys[0].Distance(root.Node().Ref().ID)) < 0 {
			root = s
		}
	}
	if ep, ok := net.Endpoint(root.Node().Ref().Addr); ok {
		ep.Fail()
		log.Printf("t=%v: crashed the root of doc-0 (%s)", sim.Now(), root.Node().Ref().ID)
	}
	sim.RunUntil(sim.Now() + 3*time.Minute)

	gets, errs := 0, 0
	for i, key := range keys {
		want := fmt.Sprintf("contents of doc %d", i)
		reader := stores[sim.Rand().Intn(n)]
		if !reader.Node().Alive() {
			reader = stores[0]
		}
		reader.Get(key, func(v []byte, err error) {
			if err != nil || string(v) != want {
				errs++
				return
			}
			gets++
		})
		sim.RunUntil(sim.Now() + time.Second)
	}
	sim.RunUntil(sim.Now() + 30*time.Second)

	fmt.Printf("reads after root failure: %d ok, %d failed (of %d)\n", gets, errs, len(keys))
	if errs > 0 {
		log.Fatal("data lost despite replication")
	}
	fmt.Println("all documents survived the root failure via leaf-set replication")

	// Delete the first 5 documents. Deletes write tombstones that
	// replicate like values, so replicas that missed the delete cannot
	// resurrect a document through the anti-entropy sweeps.
	dels := 0
	for i := 0; i < 5; i++ {
		stores[sim.Rand().Intn(n)].Delete(keys[i], func(err error) {
			if err == nil {
				dels++
			}
		})
		sim.RunUntil(sim.Now() + time.Second)
	}
	// Several sweep cycles: time for a stale replica to try to push the
	// value back, and for the tombstone to win.
	sim.RunUntil(sim.Now() + 2*time.Minute)
	log.Printf("deleted %d/5 documents, waited out two sweep cycles", dels)

	stillDeleted, resurrected := 0, 0
	for i := 0; i < 5; i++ {
		reader := stores[sim.Rand().Intn(n)]
		if !reader.Node().Alive() {
			reader = stores[0]
		}
		reader.Get(keys[i], func(v []byte, err error) {
			if err == mspastry.ErrDHTNotFound {
				stillDeleted++
			} else {
				resurrected++
			}
		})
		sim.RunUntil(sim.Now() + time.Second)
	}
	sim.RunUntil(sim.Now() + 30*time.Second)
	fmt.Printf("deleted documents: %d stay deleted, %d resurrected\n", stillDeleted, resurrected)
	if resurrected > 0 {
		log.Fatal("a deleted document came back")
	}
	fmt.Println("tombstones held: deletes propagate instead of resurrecting")
}
