// Webcache: a Squirrel-style decentralized web cache on MSPastry, under
// churn. 40 desktop machines share their browser caches; popular pages are
// fetched from the origin once and then served by peer home nodes, even as
// machines crash and rejoin.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"mspastry"
)

func main() {
	log.SetFlags(0)
	sim := mspastry.NewSimulator(7)
	topo := mspastry.NewCorpNetTopology(mspastry.DefaultCorpNetConfig(), rand.New(rand.NewSource(7)))
	net := mspastry.NewSimNetwork(sim, topo, 0)

	cfg := mspastry.DefaultConfig()
	cfg.L = 16

	originFetches := 0
	origin := mspastry.SquirrelOriginFunc(func(url string) ([]byte, error) {
		originFetches++
		return []byte("<html>" + url + "</html>"), nil
	})

	const n = 40
	first := topo.Attach(n, sim.Rand())
	var proxies []*mspastry.SquirrelProxy
	var seed mspastry.NodeRef
	for i := 0; i < n; i++ {
		ep := net.NewEndpoint(first + i)
		ref := mspastry.NodeRef{ID: mspastry.RandomID(sim.Rand()), Addr: ep.Addr()}
		node, err := mspastry.NewNode(ref, cfg, ep, nil)
		if err != nil {
			log.Fatalf("create node: %v", err)
		}
		ep.Bind(node)
		proxies = append(proxies, mspastry.NewSquirrel(node, origin, mspastry.DefaultSquirrelConfig()))
		if i == 0 {
			node.Bootstrap()
			seed = ref
		} else {
			node.Join(seed)
		}
		sim.RunUntil(sim.Now() + 2*time.Second)
	}
	sim.RunUntil(sim.Now() + time.Minute)
	log.Printf("web cache overlay of %d machines up at t=%v", n, sim.Now())

	// Browse: a Zipf-ish workload over 50 pages from random machines.
	pages := make([]string, 50)
	for i := range pages {
		pages[i] = fmt.Sprintf("http://intranet.example/page-%02d", i)
	}
	requests, failures := 0, 0
	outcomes := map[mspastry.SquirrelOutcome]int{}
	zipf := rand.NewZipf(sim.Rand(), 1.2, 1.0, uint64(len(pages)-1))
	for r := 0; r < 600; r++ {
		page := pages[int(zipf.Uint64())]
		proxy := proxies[sim.Rand().Intn(len(proxies))]
		if !proxy.Node().Alive() {
			continue
		}
		requests++
		proxy.Get(page, func(body []byte, o mspastry.SquirrelOutcome) {
			outcomes[o]++
			if o == mspastry.SquirrelFailed {
				failures++
			}
		})
		sim.RunUntil(sim.Now() + time.Second)
		// Occasionally crash a machine mid-run (its cached objects move
		// to the next closest node on demand).
		if r == 300 {
			victim := proxies[13]
			if ep, ok := net.Endpoint(victim.Node().Ref().Addr); ok {
				ep.Fail()
				log.Printf("t=%v: machine %s crashed", sim.Now(), victim.Node().Ref().ID)
			}
		}
	}
	sim.RunUntil(sim.Now() + 30*time.Second)

	fmt.Printf("requests:      %d\n", requests)
	fmt.Printf("local hits:    %d\n", outcomes[mspastry.SquirrelHitLocal])
	fmt.Printf("remote hits:   %d\n", outcomes[mspastry.SquirrelHitRemote])
	fmt.Printf("origin misses: %d\n", outcomes[mspastry.SquirrelMissOrigin])
	fmt.Printf("failures:      %d\n", outcomes[mspastry.SquirrelFailed])
	fmt.Printf("origin fetches (vs %d requests): %d\n", requests, originFetches)
	hitRate := float64(outcomes[mspastry.SquirrelHitLocal]+outcomes[mspastry.SquirrelHitRemote]) / float64(requests)
	fmt.Printf("overall cache hit rate: %.0f%%\n", 100*hitRate)
}
