// Multicast: Scribe-style application-level multicast over MSPastry — the
// substrate of the paper's SplitStream video broadcast deployment. A
// publisher streams messages to two groups while subscribers come and go
// and an interior tree node crashes; the soft-state tree heals and
// delivery continues.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"mspastry"
)

func main() {
	log.SetFlags(0)
	sim := mspastry.NewSimulator(11)
	topo := mspastry.NewGATechTopology(mspastry.DefaultGATechConfig(), rand.New(rand.NewSource(11)))
	net := mspastry.NewSimNetwork(sim, topo, 0)

	cfg := mspastry.DefaultConfig()
	cfg.L = 16

	const n = 48
	first := topo.Attach(n, sim.Rand())
	var engines []*mspastry.ScribeEngine
	var seed mspastry.NodeRef
	for i := 0; i < n; i++ {
		ep := net.NewEndpoint(first + i)
		ref := mspastry.NodeRef{ID: mspastry.RandomID(sim.Rand()), Addr: ep.Addr()}
		node, err := mspastry.NewNode(ref, cfg, ep, nil)
		if err != nil {
			log.Fatalf("create node: %v", err)
		}
		ep.Bind(node)
		engines = append(engines, mspastry.NewScribe(node, ep, mspastry.DefaultScribeConfig()))
		if i == 0 {
			node.Bootstrap()
			seed = ref
		} else {
			node.Join(seed)
		}
		sim.RunUntil(sim.Now() + 2*time.Second)
	}
	sim.RunUntil(sim.Now() + time.Minute)
	log.Printf("overlay of %d nodes up at t=%v", n, sim.Now())

	sports := mspastry.KeyFromString("group:sports")
	news := mspastry.KeyFromString("group:news")

	counts := make([]int, n)
	for i := 8; i < 32; i++ {
		i := i
		engines[i].Subscribe(sports, func(_ mspastry.ID, payload []byte) { counts[i]++ })
	}
	for i := 24; i < 40; i++ {
		i := i
		engines[i].Subscribe(news, func(_ mspastry.ID, payload []byte) { counts[i]++ })
	}
	sim.RunUntil(sim.Now() + 15*time.Second)

	published := 0
	for round := 0; round < 30; round++ {
		engines[0].Publish(sports, []byte(fmt.Sprintf("sports-%d", round)))
		if round%3 == 0 {
			engines[1].Publish(news, []byte(fmt.Sprintf("news-%d", round)))
		}
		published++
		sim.RunUntil(sim.Now() + 5*time.Second)
		if round == 15 {
			// Crash a subscriber that is likely an interior tree node.
			if ep, ok := net.Endpoint(engines[20].Node().Ref().Addr); ok {
				ep.Fail()
				log.Printf("t=%v: interior node crashed; tree will heal via soft state", sim.Now())
			}
		}
	}
	// Allow a refresh cycle to heal, then publish a final round.
	sim.RunUntil(sim.Now() + 2*time.Minute)
	engines[0].Publish(sports, []byte("final"))
	sim.RunUntil(sim.Now() + 10*time.Second)

	healthy := 0
	for i := 8; i < 32; i++ {
		if i == 20 {
			continue
		}
		if counts[i] > 0 {
			healthy++
		}
	}
	fmt.Printf("sports subscribers that received traffic: %d/23\n", healthy)
	delivered, forwarded := uint64(0), uint64(0)
	for _, e := range engines {
		delivered += e.Delivered
		forwarded += e.Forwarded
	}
	fmt.Printf("multicast deliveries: %d, tree forwards: %d\n", delivered, forwarded)
	if healthy < 20 {
		log.Fatal("multicast tree failed to heal")
	}
	fmt.Println("multicast trees built, survived an interior failure, and healed")
}
