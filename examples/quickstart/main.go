// Quickstart: build a 64-node MSPastry overlay in the simulator, issue
// lookups, and verify that every lookup is delivered by the node whose
// identifier is closest to the key (consistent routing).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"mspastry"
)

func main() {
	log.SetFlags(0)
	sim := mspastry.NewSimulator(42)
	topo := mspastry.NewCorpNetTopology(mspastry.DefaultCorpNetConfig(), rand.New(rand.NewSource(42)))
	net := mspastry.NewSimNetwork(sim, topo, 0)

	cfg := mspastry.DefaultConfig()
	cfg.L = 16

	const n = 64
	first := topo.Attach(n, sim.Rand())
	obs := &observer{}

	var nodes []*mspastry.Node
	var seed mspastry.NodeRef
	for i := 0; i < n; i++ {
		ep := net.NewEndpoint(first + i)
		ref := mspastry.NodeRef{ID: mspastry.RandomID(sim.Rand()), Addr: ep.Addr()}
		node, err := mspastry.NewNode(ref, cfg, ep, obs)
		if err != nil {
			log.Fatalf("create node: %v", err)
		}
		ep.Bind(node)
		if i == 0 {
			node.Bootstrap()
			seed = ref
		} else {
			node.Join(seed)
		}
		nodes = append(nodes, node)
		sim.RunUntil(sim.Now() + 2*time.Second)
	}
	sim.RunUntil(sim.Now() + time.Minute)

	active := 0
	for _, node := range nodes {
		if node.Active() {
			active++
		}
	}
	log.Printf("overlay formed: %d/%d nodes active after %v of virtual time", active, n, sim.Now())

	// Issue lookups from random nodes to random keys and check each is
	// delivered at the true root.
	correct, total := 0, 0
	for i := 0; i < 200; i++ {
		key := mspastry.RandomID(sim.Rand())
		src := nodes[sim.Rand().Intn(len(nodes))]
		if _, ok := src.Lookup(key, nil); !ok {
			continue
		}
		sim.RunUntil(sim.Now() + 2*time.Second)
		root := trueRoot(nodes, key)
		if obs.last.ID == root.Ref().ID {
			correct++
		}
		total++
	}
	fmt.Printf("lookups: %d/%d delivered at the true root\n", correct, total)
	if correct != total {
		log.Fatal("routing inconsistency detected")
	}
	fmt.Println("consistent routing verified — no inconsistent deliveries")
}

type observer struct {
	last mspastry.NodeRef
}

func (o *observer) Activated(*mspastry.Node, time.Duration) {}

func (o *observer) Delivered(n *mspastry.Node, lk *mspastry.Lookup) {
	o.last = n.Ref()
}

func (o *observer) LookupDropped(*mspastry.Node, *mspastry.Lookup, mspastry.DropReason) {}

func trueRoot(nodes []*mspastry.Node, key mspastry.ID) *mspastry.Node {
	best := nodes[0]
	for _, n := range nodes[1:] {
		if !n.Active() {
			continue
		}
		d1 := key.Distance(n.Ref().ID)
		d2 := key.Distance(best.Ref().ID)
		if d1.Cmp(d2) < 0 {
			best = n
		}
	}
	return best
}
