// Package mspastry is a Go implementation of MSPastry — the dependable
// structured peer-to-peer overlay of Castro, Costa and Rowstron,
// "Performance and dependability of structured peer-to-peer overlays"
// (DSN 2004) — together with the full evaluation apparatus of the paper:
// a deterministic discrete-event network simulator, the GATech/Mercator/
// CorpNet topology models, churn-trace generators matching the Gnutella,
// OverNet and Microsoft measurement studies, an experiment harness with
// ground-truth delivery checking, a real-UDP transport running the same
// protocol code, and the Squirrel web cache and Scribe multicast
// applications.
//
// # Quick start
//
// Build an overlay in the simulator:
//
//	sim := mspastry.NewSimulator(1)
//	topo := mspastry.NewGATechTopology(mspastry.DefaultGATechConfig(), sim.Rand())
//	net := mspastry.NewSimNetwork(sim, topo, 0)
//	...
//
// or run a real node over UDP:
//
//	tr, _ := mspastry.ListenUDP("0.0.0.0:7001", 1)
//	node, _ := tr.CreateNode(mspastry.RandomID(tr.Rand()), mspastry.DefaultConfig(), nil)
//
// See examples/ for complete programs, and DESIGN.md / EXPERIMENTS.md for
// the paper-reproduction map.
package mspastry

import (
	"math/rand"
	"time"

	"mspastry/internal/dht"
	"mspastry/internal/eventsim"
	"mspastry/internal/harness"
	"mspastry/internal/id"
	"mspastry/internal/netmodel"
	"mspastry/internal/pastry"
	"mspastry/internal/scribe"
	"mspastry/internal/splitstream"
	"mspastry/internal/squirrel"
	"mspastry/internal/stats"
	"mspastry/internal/store"
	"mspastry/internal/topology"
	"mspastry/internal/trace"
	"mspastry/internal/transport"
)

// Core protocol types.
type (
	// ID is a 128-bit ring identifier.
	ID = id.ID
	// Node is one MSPastry overlay node.
	Node = pastry.Node
	// NodeRef identifies a node by ring id and transport address.
	NodeRef = pastry.NodeRef
	// Config holds the protocol parameters (paper defaults via DefaultConfig).
	Config = pastry.Config
	// Env abstracts clock, timers, randomness and transport.
	Env = pastry.Env
	// Observer receives protocol events for instrumentation.
	Observer = pastry.Observer
	// DropReason explains why the overlay dropped a lookup.
	DropReason = pastry.DropReason
	// App is the application layer interface (Squirrel, Scribe, yours).
	App = pastry.App
	// Lookup is an application lookup message.
	Lookup = pastry.Lookup
	// Message is any overlay protocol message.
	Message = pastry.Message
	// LeafSet is a node's ring neighbourhood.
	LeafSet = pastry.LeafSet
	// RoutingTable is a node's prefix-routing state.
	RoutingTable = pastry.RoutingTable
)

// Simulation types.
type (
	// Simulator is the deterministic discrete-event engine.
	Simulator = eventsim.Simulator
	// Topology is a generated router-level network.
	Topology = topology.Network
	// SimNetwork binds nodes to the simulator and a topology.
	SimNetwork = netmodel.Network
	// Endpoint is a node's attachment point in the simulated network.
	Endpoint = netmodel.Endpoint
	// Trace is a churn schedule.
	Trace = trace.Trace
	// TraceConfig parameterises the churn generator.
	TraceConfig = trace.Config
	// ExperimentConfig describes one harness experiment.
	ExperimentConfig = harness.Config
	// ExperimentResult carries an experiment's metrics.
	ExperimentResult = harness.Result
	// Totals summarises a run.
	Totals = stats.Totals
	// WindowStat is one metric window.
	WindowStat = stats.WindowStat
)

// Application and deployment types.
type (
	// UDPTransport hosts a node on a real UDP socket.
	UDPTransport = transport.UDP
	// SquirrelProxy is a decentralized web-cache instance.
	SquirrelProxy = squirrel.Proxy
	// SquirrelConfig sizes the web-cache proxies.
	SquirrelConfig = squirrel.Config
	// SquirrelOrigin abstracts the origin web server.
	SquirrelOrigin = squirrel.Origin
	// SquirrelOriginFunc adapts a function to SquirrelOrigin.
	SquirrelOriginFunc = squirrel.OriginFunc
	// SquirrelOutcome classifies how a request was satisfied.
	SquirrelOutcome = squirrel.Outcome
	// ScribeEngine is an application-level multicast instance.
	ScribeEngine = scribe.Scribe
	// ScribeConfig tunes the multicast soft-state timers.
	ScribeConfig = scribe.Config
	// DHTStore is a replicated key-value store instance.
	DHTStore = dht.Store
	// DHTConfig tunes replication and end-to-end retries.
	DHTConfig = dht.Config
	// StoreBackend is the object storage behind a DHT store: versioned
	// objects with tombstones, in memory or on disk.
	StoreBackend = store.Backend
	// StoreObject is one versioned object held by a backend.
	StoreObject = store.Object
	// StoreStats reports a backend's object counts and disk usage.
	StoreStats = store.Stats
	// DiskStoreOptions tunes the durable backend's WAL and compaction.
	DiskStoreOptions = store.DiskOptions
	// SplitStreamChannel is a striped multicast subscription.
	SplitStreamChannel = splitstream.Channel
	// SplitStreamPublisher publishes striped messages.
	SplitStreamPublisher = splitstream.Publisher
	// SplitStreamConfig sets the stripe count.
	SplitStreamConfig = splitstream.Config
	// GATechConfig parameterises the transit-stub topology.
	GATechConfig = topology.GATechConfig
	// MercatorConfig parameterises the AS-structured topology.
	MercatorConfig = topology.MercatorConfig
	// CorpNetConfig parameterises the corporate topology.
	CorpNetConfig = topology.CorpNetConfig
)

// NewNode creates an overlay node. See pastry.NewNode.
func NewNode(self NodeRef, cfg Config, env Env, obs Observer) (*Node, error) {
	return pastry.NewNode(self, cfg, env, obs)
}

// DefaultConfig returns the paper's base protocol configuration.
func DefaultConfig() Config { return pastry.DefaultConfig() }

// RandomID draws a uniform 128-bit identifier.
func RandomID(rng *rand.Rand) ID { return id.Random(rng) }

// KeyFromString hashes an application key (for example a URL) to an ID.
func KeyFromString(s string) ID { return id.FromKey(s) }

// NewSimulator creates a seeded discrete-event simulator.
func NewSimulator(seed int64) *Simulator { return eventsim.New(seed) }

// NewSimNetwork binds a simulator and topology into a message network with
// the given uniform loss rate.
func NewSimNetwork(sim *Simulator, topo *Topology, lossRate float64) *SimNetwork {
	return netmodel.New(sim, topo, lossRate)
}

// DefaultGATechConfig is the paper's 5050-router transit-stub size.
func DefaultGATechConfig() GATechConfig { return topology.DefaultGATech() }

// DefaultMercatorConfig is the scaled AS-structured topology.
func DefaultMercatorConfig() MercatorConfig { return topology.DefaultMercator() }

// DefaultCorpNetConfig is the paper's 298-router corporate network.
func DefaultCorpNetConfig() CorpNetConfig { return topology.DefaultCorpNet() }

// NewGATechTopology generates a transit-stub topology (paper: "GATech").
func NewGATechTopology(cfg GATechConfig, rng *rand.Rand) *Topology {
	return topology.GATech(cfg, rng)
}

// NewMercatorTopology generates an AS-structured topology routed
// AS-path-first with a hop-count metric (paper: "Mercator").
func NewMercatorTopology(cfg MercatorConfig, rng *rand.Rand) *Topology {
	return topology.Mercator(cfg, rng)
}

// NewCorpNetTopology generates a corporate network (paper: "CorpNet").
func NewCorpNetTopology(cfg CorpNetConfig, rng *rand.Rand) *Topology {
	return topology.CorpNet(cfg, rng)
}

// BuildTopology constructs one of the paper's topologies by name
// ("gatech", "mercator", "corpnet") with a scale divisor.
func BuildTopology(name string, scaleDiv int, seed int64) (*Topology, error) {
	return harness.BuildTopology(name, scaleDiv, seed)
}

// GnutellaTrace is the Gnutella measurement-study churn configuration.
func GnutellaTrace() TraceConfig { return trace.Gnutella() }

// OverNetTrace is the OverNet measurement-study churn configuration.
func OverNetTrace() TraceConfig { return trace.OverNet() }

// MicrosoftTrace is the corporate availability-study churn configuration.
func MicrosoftTrace() TraceConfig { return trace.Microsoft() }

// PoissonTrace is the artificial Poisson/exponential churn family
// (paper: session times of 5-600 minutes, 10,000 average nodes).
func PoissonTrace(session time.Duration, avgNodes int, duration time.Duration) TraceConfig {
	return trace.Poisson(session, avgNodes, duration)
}

// GenerateTrace renders a churn configuration into a concrete schedule.
func GenerateTrace(cfg TraceConfig) *Trace { return trace.Generate(cfg) }

// RunExperiment executes one simulation experiment with churn injection,
// lookup workload and ground-truth delivery checking.
func RunExperiment(cfg ExperimentConfig) ExperimentResult { return harness.Run(cfg) }

// DefaultExperiment returns the paper's base experimental configuration.
func DefaultExperiment(topo *Topology, tr *Trace) ExperimentConfig {
	return harness.DefaultConfig(topo, tr)
}

// ListenUDP opens a real-UDP transport for one node.
func ListenUDP(addr string, seed int64) (*UDPTransport, error) {
	return transport.Listen(addr, seed)
}

// NewSquirrel attaches a Squirrel web-cache proxy to a node.
func NewSquirrel(node *Node, origin SquirrelOrigin, cfg SquirrelConfig) *SquirrelProxy {
	return squirrel.New(node, origin, cfg)
}

// DefaultSquirrelConfig returns a modest cache sizing.
func DefaultSquirrelConfig() SquirrelConfig { return squirrel.DefaultConfig() }

// Squirrel request outcomes.
const (
	// SquirrelHitLocal means the local proxy cache had a fresh copy.
	SquirrelHitLocal = squirrel.HitLocal
	// SquirrelHitRemote means the home node had the object cached.
	SquirrelHitRemote = squirrel.HitRemote
	// SquirrelMissOrigin means the home node fetched from the origin.
	SquirrelMissOrigin = squirrel.MissOrigin
	// SquirrelFailed means the request errored or timed out.
	SquirrelFailed = squirrel.Failed
)

// NewScribe attaches a Scribe multicast engine to a node.
func NewScribe(node *Node, env Env, cfg ScribeConfig) *ScribeEngine {
	return scribe.New(node, env, cfg)
}

// DefaultScribeConfig returns the default multicast soft-state timers.
func DefaultScribeConfig() ScribeConfig { return scribe.DefaultConfig() }

// ErrDHTNotFound reports a Get for a key no responsible node holds (or a
// deleted key).
var ErrDHTNotFound = dht.ErrNotFound

// ErrDHTTimeout reports a DHT operation whose retries were exhausted.
var ErrDHTTimeout = dht.ErrTimeout

// NewDHT attaches a replicated key-value store to a node.
func NewDHT(node *Node, env Env, cfg DHTConfig) *DHTStore {
	return dht.New(node, env, cfg)
}

// DefaultDHTConfig returns k=3 replication with periodic anti-entropy
// sweeps.
func DefaultDHTConfig() DHTConfig { return dht.DefaultConfig() }

// NewMemoryBackend returns an in-memory object store (the DHT default).
func NewMemoryBackend() StoreBackend { return store.NewMemory() }

// OpenDiskStore opens (or creates) a durable object store in dir: writes
// land in a CRC-framed WAL before acknowledgement and the state is
// snapshot-compacted, so a node restarted with the same directory keeps
// its objects. Pass it via DHTConfig.Backend.
func OpenDiskStore(dir string, opts DiskStoreOptions) (StoreBackend, error) {
	return store.Open(dir, opts)
}

// JoinSplitStream subscribes a Scribe engine to all stripes of a striped
// multicast channel.
func JoinSplitStream(engine *ScribeEngine, cfg SplitStreamConfig, name string,
	handler func(seq uint64, payload []byte)) *SplitStreamChannel {
	return splitstream.Join(engine, cfg, name, handler)
}

// NewSplitStreamPublisher creates a publisher for a striped channel.
func NewSplitStreamPublisher(engine *ScribeEngine, cfg SplitStreamConfig, name string) *SplitStreamPublisher {
	return splitstream.NewPublisher(engine, cfg, name)
}

// DefaultSplitStreamConfig uses 4 data stripes plus one parity stripe.
func DefaultSplitStreamConfig() SplitStreamConfig { return splitstream.DefaultConfig() }
