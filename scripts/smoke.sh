#!/usr/bin/env bash
# Smoke test: boot a two-node live overlay on loopback, store and fetch a
# value through the DHT via the stdin interface, and assert both admin
# endpoints serve non-empty overlay counters in Prometheus text format.
set -euo pipefail

cd "$(dirname "$0")/.."

A_UDP=127.0.0.1:7401
B_UDP=127.0.0.1:7402
A_ADMIN=127.0.0.1:7481
B_ADMIN=127.0.0.1:7482

dir=$(mktemp -d)
cleanup() {
  # hold_pid may hold several pids; word-splitting is intentional.
  for p in ${a_pid:-} ${b_pid:-} ${hold_pid:-}; do
    kill "$p" 2>/dev/null || true
  done
  rm -rf "$dir"
}
trap cleanup EXIT

# CI builds all binaries once into a cached bin/ and points
# MSPASTRY_NODE_BIN at it; standalone runs still build their own copy.
bin="${MSPASTRY_NODE_BIN:-}"
if [[ -z "$bin" ]]; then
  bin="$dir/mspastry-node"
  go build -o "$bin" ./cmd/mspastry-node
fi

# The node reads commands from stdin and exits on EOF, so each process
# gets a fifo held open for the lifetime of the test.
mkfifo "$dir/a.in" "$dir/b.in"
sleep 600 > "$dir/a.in" &
hold_a=$!
sleep 600 > "$dir/b.in" &
hold_b=$!
hold_pid="$hold_a $hold_b"

"$bin" -listen "$A_UDP" -admin "$A_ADMIN" -bootstrap -data-dir "$dir/a-data" \
  < "$dir/a.in" > "$dir/a.log" 2>&1 &
a_pid=$!

wait_for() { # wait_for <file> <pattern> <what>
  for _ in $(seq 1 100); do
    grep -q "$2" "$1" 2>/dev/null && return 0
    sleep 0.1
  done
  echo "smoke: timed out waiting for $3" >&2
  echo "--- $1 ---" >&2; cat "$1" >&2
  exit 1
}

wait_for "$dir/a.log" "bootstrapped a new overlay" "node A bootstrap"
a_id=$(sed -n 's/^node up: addr=.* id=\([0-9a-fA-F]*\)$/\1/p' "$dir/a.log" | head -1)
[[ -n "$a_id" ]] || { echo "smoke: could not parse node A id" >&2; cat "$dir/a.log" >&2; exit 1; }

"$bin" -listen "$B_UDP" -admin "$B_ADMIN" -seed-addr "$A_UDP" -seed-id "$a_id" \
  < "$dir/b.in" > "$dir/b.log" 2>&1 &
b_pid=$!
wait_for "$dir/b.log" "^active after" "node B to join"

echo "put greeting hello" > "$dir/b.in"
wait_for "$dir/b.log" 'stored "greeting"' "DHT put"
echo "get greeting" > "$dir/b.in"
wait_for "$dir/b.log" "hello" "DHT get"
echo "status" > "$dir/b.in"
wait_for "$dir/b.log" "status: active=true" "status command"

check_metrics() { # check_metrics <admin-addr> <name>
  local out="$dir/metrics-$2.txt"
  curl -sf "http://$1/metrics" > "$out"
  grep -q "^# TYPE mspastry_lookups_issued_total counter$" "$out" ||
    { echo "smoke: $2 /metrics missing TYPE header" >&2; cat "$out" >&2; exit 1; }
  # Non-empty overlay counters: some traffic category must be non-zero.
  grep -E '^mspastry_transport_msgs_sent_total\{category="[a-z]+"\} [1-9]' "$out" > /dev/null ||
    { echo "smoke: $2 /metrics has no non-zero transport counters" >&2; cat "$out" >&2; exit 1; }
  local n
  n=$(grep -c '^mspastry_' "$out")
  echo "smoke: $2 /metrics OK ($n sample lines)"
}

check_metrics "$A_ADMIN" nodeA
check_metrics "$B_ADMIN" nodeB

# B joined A's overlay: its own join must be on its counters.
grep -q '^mspastry_joins_total 1$' "$dir/metrics-nodeB.txt" ||
  { echo "smoke: node B join not counted" >&2; exit 1; }

# Download to a file: under pipefail, `curl | grep -q` races — grep exits
# on the first match and curl fails with EPIPE on the rest of the body.
curl -sf "http://$A_ADMIN/status" > "$dir/status-a.json" ||
  { echo "smoke: /status request failed" >&2; exit 1; }
grep -q '"metrics"' "$dir/status-a.json" ||
  { echo "smoke: /status missing metrics snapshot" >&2; cat "$dir/status-a.json" >&2; exit 1; }

echo "quit" > "$dir/b.in"
echo "quit" > "$dir/a.in"
for _ in $(seq 1 50); do
  kill -0 "$a_pid" 2>/dev/null || kill -0 "$b_pid" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$a_pid" 2>/dev/null || kill -0 "$b_pid" 2>/dev/null; then
  echo "smoke: nodes did not exit on quit" >&2
  exit 1
fi
a_pid= b_pid=

# Restart durability: node A ran with -data-dir, so the value B stored
# (replicated to A at write time) must survive A's restart. Bring A back
# alone on the same directory and read it from the recovered store.
"$bin" -listen "$A_UDP" -admin "$A_ADMIN" -bootstrap -data-dir "$dir/a-data" \
  < "$dir/a.in" > "$dir/a2.log" 2>&1 &
a_pid=$!
wait_for "$dir/a2.log" "bootstrapped a new overlay" "node A restart"
grep -q "^recovered .* records" "$dir/a2.log" ||
  { echo "smoke: restart did not replay the store" >&2; cat "$dir/a2.log" >&2; exit 1; }
echo "get greeting" > "$dir/a.in"
wait_for "$dir/a2.log" "hello" "durable DHT get after restart"
echo "smoke: value survived node restart via -data-dir"

echo "quit" > "$dir/a.in"
for _ in $(seq 1 50); do
  kill -0 "$a_pid" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$a_pid" 2>/dev/null; then
  echo "smoke: restarted node did not exit on quit" >&2
  exit 1
fi
a_pid=

echo "smoke: OK"
