#!/usr/bin/env bash
# Run the tracked hot-path benchmarks and write one benchstat-compatible
# snapshot to the given file (default: stdout). The committed
# perf/BASELINE.txt and perf/AFTER.txt pairs are produced by this script,
# and the CI regression gate runs the same set on PR head and merge-base.
#
# Usage: perfsnapshot.sh [outfile] [count]
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-/dev/stdout}"
count="${2:-5}"

{
  # Macro scenarios: one full seeded simulation per iteration.
  go test -run '^$' -bench '^BenchmarkScenario$' -benchtime 1x -count "$count" \
    ./internal/perfbench
  # Micro hot paths: routing, member enumeration, wire-size accounting,
  # metric observation, digit arithmetic.
  go test -run '^$' \
    -bench '^(BenchmarkNodeNextHop|BenchmarkNodeReceiveLookupEnvelope|BenchmarkNodeHandleLSProbe|BenchmarkLeafSetMembers|BenchmarkMessageWireSize)$' \
    -benchtime 100000x -count "$count" ./internal/pastry
  go test -run '^$' -bench '^BenchmarkHistogramObserve' \
    -benchtime 1000000x -count "$count" ./internal/telemetry
  go test -run '^$' -bench '^(BenchmarkDigit|BenchmarkCommonPrefixLen)$' \
    -benchtime 1000000x -count "$count" ./internal/id
} > "$out"

echo "perfsnapshot: wrote $out" >&2
