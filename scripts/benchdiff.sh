#!/usr/bin/env bash
# Compare two benchmark snapshots (Go testing format, as written by
# perfsnapshot.sh) without external tools. Prints a per-benchmark table of
# median ns/op, B/op and allocs/op with the old→new delta.
#
# With --gate, exits non-zero if any benchmark matching the gate pattern
# regresses by more than the threshold in ns/op or allocs/op. This is the
# CI regression gate's decision logic; benchstat (when installed) is only
# used for the human-readable report.
#
# Usage: benchdiff.sh old.txt new.txt [--gate [pattern [threshold-pct]]]
set -euo pipefail

old="$1"
new="$2"
gate=0
pattern='^BenchmarkScenario/(steady|churn)$'
threshold=10
if [[ "${3:-}" == "--gate" ]]; then
  gate=1
  pattern="${4:-$pattern}"
  threshold="${5:-$threshold}"
fi

awk -v oldfile="$old" -v newfile="$new" -v gate="$gate" \
    -v pattern="$pattern" -v threshold="$threshold" '
function strip(name) {
  # Drop the -N GOMAXPROCS suffix so runs from hosts with different core
  # counts still line up.
  sub(/-[0-9]+$/, "", name)
  return name
}
function record(file, name, metric, v) {
  key = file SUBSEP name SUBSEP metric
  n = ++cnt[key]
  vals[key, n] = v
  seen[name] = 1
}
function median(file, name, metric,   key, n, i, j, tmp, a) {
  key = file SUBSEP name SUBSEP metric
  n = cnt[key]
  if (n == 0) return ""
  for (i = 1; i <= n; i++) a[i] = vals[key, i]
  for (i = 1; i <= n; i++)
    for (j = i + 1; j <= n; j++)
      if (a[j] < a[i]) { tmp = a[i]; a[i] = a[j]; a[j] = tmp }
  if (n % 2) return a[(n + 1) / 2]
  return (a[n / 2] + a[n / 2 + 1]) / 2
}
function fmtdelta(o, v) {
  if (o == "" || v == "" || o == 0) return "n/a"
  return sprintf("%+.1f%%", (v - o) / o * 100)
}
FNR == 1 { file = FILENAME }
/^Benchmark/ {
  name = strip($1)
  for (i = 2; i < NF; i++) {
    if ($(i + 1) == "ns/op")     record(file, name, "ns", $i + 0)
    if ($(i + 1) == "B/op")      record(file, name, "B", $i + 0)
    if ($(i + 1) == "allocs/op") record(file, name, "allocs", $i + 0)
  }
}
END {
  printf "%-55s %15s %15s %9s %11s %9s\n",
    "benchmark", "old ns/op", "new ns/op", "Δns", "Δallocs", "ΔB"
  bad = 0
  n = 0
  for (name in seen) order[++n] = name
  for (i = 1; i <= n; i++)
    for (j = i + 1; j <= n; j++)
      if (order[j] < order[i]) { tmp = order[i]; order[i] = order[j]; order[j] = tmp }
  for (i = 1; i <= n; i++) {
    name = order[i]
    ons = median(oldfile, name, "ns");     nns = median(newfile, name, "ns")
    oal = median(oldfile, name, "allocs"); nal = median(newfile, name, "allocs")
    ob  = median(oldfile, name, "B");      nb  = median(newfile, name, "B")
    printf "%-55s %15.1f %15.1f %9s %11s %9s\n",
      name, ons, nns, fmtdelta(ons, nns), fmtdelta(oal, nal), fmtdelta(ob, nb)
    short = name
    sub(/-[0-9]+$/, "", short)
    if (gate && short ~ pattern) {
      if (ons != "" && nns != "" && ons > 0 && (nns - ons) / ons * 100 > threshold) {
        printf "GATE FAIL: %s ns/op regressed %.1f%% (> %d%%)\n",
          name, (nns - ons) / ons * 100, threshold
        bad = 1
      }
      if (oal != "" && nal != "" && oal > 0 && (nal - oal) / oal * 100 > threshold) {
        printf "GATE FAIL: %s allocs/op regressed %.1f%% (> %d%%)\n",
          name, (nal - oal) / oal * 100, threshold
        bad = 1
      }
    }
  }
  exit bad
}
' "$old" "$new"
