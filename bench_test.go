package mspastry

// This file regenerates every table and figure of the paper's evaluation
// (§5) as Go benchmarks. Each benchmark runs the corresponding experiment
// at a reduced scale (a few hundred overlay nodes, tens of simulated
// minutes) and reports the headline quantities as custom benchmark metrics,
// so `go test -bench . -benchmem` doubles as a quick reproduction run.
// Full-scale runs (the paper's 2,000-20,000 node populations and multi-day
// traces) are driven by cmd/mspastry-bench.
//
// Figure map:
//
//	BenchmarkFig3FailureRates    — Figure 3 (trace failure-rate series)
//	BenchmarkTopologyComparison  — §5.3 "Network topology"
//	BenchmarkFig4Traces          — Figure 4 (per-trace RDP/control + breakdown)
//	BenchmarkFig5SessionTimes    — Figure 5 left/centre (session-time sweep)
//	BenchmarkFig5JoinLatency     — Figure 5 right (join-latency CDF)
//	BenchmarkFig6NetworkLoss     — Figure 6 (network-loss sweep)
//	BenchmarkFig7LeafSet         — Figure 7 left/centre (l sweep)
//	BenchmarkFig7Digits          — Figure 7 right (b sweep)
//	BenchmarkAblationProbingAcks — §5.3 "Active probing and per-hop acks"
//	BenchmarkSelfTuning          — §5.3 self-tuning to a target raw loss
//	BenchmarkSuppression         — §5.3 probe suppression
//	BenchmarkHeartbeatAblation   — §4.1 structured vs all-pairs heartbeats
//	BenchmarkConsistencyRule     — §3.2 consistency/latency trade-off under loss
//	BenchmarkMassFailureRecovery — §3.1 generalised repair after 50% correlated failure
//	BenchmarkPartitionHeal       — fault injection: 50/50 partition, heal, time-to-repair
//	BenchmarkJitterFalsePositives— fault injection: delay-spike false-positive gap
//	BenchmarkOverload            — overload sweep: graceful degradation past capacity
//	BenchmarkFig8Squirrel        — Figure 8 (Squirrel traffic series)

import (
	"testing"
	"time"

	"mspastry/internal/experiments"
)

// benchScale trims the Quick scale further so the whole suite completes in
// a few minutes.
func benchScale() experiments.Scale {
	s := experiments.Quick()
	s.TraceDiv = 24
	s.MaxDuration = 45 * time.Minute
	s.PoissonNodes = 150
	s.PoissonDuration = 40 * time.Minute
	s.SetupRamp = 4 * time.Minute
	return s
}

func BenchmarkFig3FailureRates(b *testing.B) {
	s := benchScale()
	var r experiments.Fig3Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig3FailureRates(s)
	}
	b.ReportMetric(r.MeanRate("gnutella"), "gnutella-failrate")
	b.ReportMetric(r.MeanRate("microsoft"), "microsoft-failrate")
	b.ReportMetric(r.PeakToTrough("gnutella"), "gnutella-peak/trough")
}

func BenchmarkTopologyComparison(b *testing.B) {
	s := benchScale()
	var r experiments.TopoCmpResult
	for i := 0; i < b.N; i++ {
		r = experiments.TopologyComparison(s)
	}
	b.ReportMetric(r.Results["corpnet"].Totals.RDP, "rdp-corpnet")
	b.ReportMetric(r.Results["gatech"].Totals.RDP, "rdp-gatech")
	b.ReportMetric(r.Results["mercator"].Totals.RDP, "rdp-mercator")
	b.ReportMetric(r.Results["gatech"].Totals.ControlPerNodeSec, "ctrl-gatech")
}

func BenchmarkFig4Traces(b *testing.B) {
	s := benchScale()
	var r experiments.Fig4Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig4Traces(s)
	}
	b.ReportMetric(r.Totals["gnutella"].Totals.RDP, "rdp-gnutella")
	b.ReportMetric(r.Totals["microsoft"].Totals.RDP, "rdp-microsoft")
	b.ReportMetric(r.Totals["gnutella"].Totals.ControlPerNodeSec, "ctrl-gnutella")
	b.ReportMetric(r.Totals["microsoft"].Totals.ControlPerNodeSec, "ctrl-microsoft")
}

func BenchmarkFig5SessionTimes(b *testing.B) {
	s := benchScale()
	var r experiments.Fig5SessionSweep
	for i := 0; i < b.N; i++ {
		r = experiments.Fig5SessionTimes(s)
	}
	b.ReportMetric(r.Results[15*time.Minute].Totals.ControlPerNodeSec, "ctrl-15m")
	b.ReportMetric(r.Results[600*time.Minute].Totals.ControlPerNodeSec, "ctrl-600m")
	b.ReportMetric(r.ControlRatio(15*time.Minute, 600*time.Minute), "ctrl-ratio-15/600")
	b.ReportMetric(r.Results[15*time.Minute].Totals.RDP, "rdp-15m")
}

func BenchmarkFig5JoinLatency(b *testing.B) {
	s := benchScale()
	var r experiments.Fig5JoinCDF
	for i := 0; i < b.N; i++ {
		r = experiments.Fig5JoinLatency(s)
	}
	b.ReportMetric(r.Percentile(30*time.Minute, 0.5).Seconds(), "join-p50-sec")
	b.ReportMetric(r.Percentile(30*time.Minute, 0.95).Seconds(), "join-p95-sec")
}

func BenchmarkFig6NetworkLoss(b *testing.B) {
	s := benchScale()
	var r experiments.Fig6Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig6NetworkLoss(s)
	}
	b.ReportMetric(r.Results[0].Totals.LossRate, "lookuploss-0%")
	b.ReportMetric(r.Results[0.05].Totals.LossRate, "lookuploss-5%")
	b.ReportMetric(r.Results[0.05].Totals.IncorrectRate, "incorrect-5%")
	b.ReportMetric(r.Results[0.05].Totals.RDP, "rdp-5%")
}

func BenchmarkFig7LeafSet(b *testing.B) {
	s := benchScale()
	var r experiments.Fig7LeafSetResult
	for i := 0; i < b.N; i++ {
		r = experiments.Fig7LeafSet(s)
	}
	b.ReportMetric(r.Results[16].Totals.ControlPerNodeSec, "ctrl-l16")
	b.ReportMetric(r.Results[32].Totals.ControlPerNodeSec, "ctrl-l32")
	b.ReportMetric(r.Results[8].Totals.RDP, "rdp-l8")
	b.ReportMetric(r.Results[64].Totals.RDP, "rdp-l64")
}

func BenchmarkFig7Digits(b *testing.B) {
	s := benchScale()
	var r experiments.Fig7DigitsResult
	for i := 0; i < b.N; i++ {
		r = experiments.Fig7Digits(s)
	}
	b.ReportMetric(r.Results[1].Totals.RDP, "rdp-b1")
	b.ReportMetric(r.Results[4].Totals.RDP, "rdp-b4")
	b.ReportMetric(r.Results[1].Totals.MeanHops, "hops-b1")
	b.ReportMetric(r.Results[4].Totals.MeanHops, "hops-b4")
}

func BenchmarkAblationProbingAcks(b *testing.B) {
	s := benchScale()
	var r experiments.AblationResult
	for i := 0; i < b.N; i++ {
		r = experiments.AblationProbingAcks(s)
	}
	b.ReportMetric(r.Results["neither"].Totals.LossRate, "loss-neither")
	b.ReportMetric(r.Results["acks-only"].Totals.LossRate, "loss-acks")
	b.ReportMetric(r.Results["probing-only"].Totals.LossRate, "loss-probing")
	b.ReportMetric(r.Results["both"].Totals.LossRate, "loss-both")
}

func BenchmarkSelfTuning(b *testing.B) {
	s := benchScale()
	var r experiments.SelfTuningResult
	for i := 0; i < b.N; i++ {
		r = experiments.SelfTuning(s)
	}
	b.ReportMetric(r.Results[0.05].Totals.LossRate, "rawloss-at-5%")
	b.ReportMetric(r.Results[0.01].Totals.LossRate, "rawloss-at-1%")
	c5 := r.Results[0.05].Totals.ControlPerNodeSec
	c1 := r.Results[0.01].Totals.ControlPerNodeSec
	if c5 > 0 {
		b.ReportMetric(c1/c5, "ctrl-ratio-1%/5%")
	}
}

func BenchmarkSuppression(b *testing.B) {
	s := benchScale()
	var r experiments.SuppressionResult
	for i := 0; i < b.N; i++ {
		r = experiments.Suppression(s)
	}
	b.ReportMetric(r.SuppressedFraction[0], "suppressed-idle")
	b.ReportMetric(r.SuppressedFraction[1], "suppressed-1lookup/s")
}

func BenchmarkHeartbeatAblation(b *testing.B) {
	s := benchScale()
	var r experiments.StructuredHeartbeatAblation
	for i := 0; i < b.N; i++ {
		r = experiments.HeartbeatAblation(s)
	}
	b.ReportMetric(r.Structured.Totals.ControlPerNodeSec, "ctrl-structured")
	b.ReportMetric(r.AllPairs.Totals.ControlPerNodeSec, "ctrl-allpairs")
}

func BenchmarkConsistencyRule(b *testing.B) {
	s := benchScale()
	var r experiments.ConsistencyRuleResult
	for i := 0; i < b.N; i++ {
		r = experiments.ConsistencyRule(s)
	}
	b.ReportMetric(r.WithRule.Totals.IncorrectRate, "incorrect-with-rule")
	b.ReportMetric(r.WithoutRule.Totals.IncorrectRate, "incorrect-without")
	b.ReportMetric(r.WithRule.Totals.RDP, "rdp-with-rule")
	b.ReportMetric(r.WithoutRule.Totals.RDP, "rdp-without")
}

func BenchmarkMassFailureRecovery(b *testing.B) {
	cfg := experiments.DefaultMassFailureConfig()
	cfg.Nodes = 100
	var r experiments.MassFailureResult
	for i := 0; i < b.N; i++ {
		r = experiments.MassFailure(cfg)
	}
	if !r.Recovered {
		b.Fatal("overlay did not recover")
	}
	b.ReportMetric(r.RecoveryTime.Seconds(), "recovery-sec")
	b.ReportMetric(float64(r.ProbeMessages)/float64(r.Nodes-r.Killed), "leafmsgs-per-survivor")
}

func BenchmarkPartitionHeal(b *testing.B) {
	s := benchScale()
	var r experiments.PartitionHealResult
	for i := 0; i < b.N; i++ {
		r = experiments.PartitionHeal(s, 90*time.Second)
	}
	if !r.Recovery.Repaired {
		b.Fatal("overlay did not repair after the partition healed")
	}
	b.ReportMetric(r.Recovery.TimeToRepair().Seconds(), "time-to-repair-sec")
	b.ReportMetric(r.Result.Phases.During.IncorrectRate(), "incorrect-during")
	b.ReportMetric(r.Result.Phases.After.IncorrectRate(), "incorrect-after")
}

func BenchmarkJitterFalsePositives(b *testing.B) {
	s := benchScale()
	spike := time.Second
	var r experiments.JitterFPResult
	for i := 0; i < b.N; i++ {
		r = experiments.JitterFalsePositives(s, []time.Duration{spike})
	}
	b.ReportMetric(r.Hold[spike].Totals.IncorrectRate, "incorrect-hold")
	b.ReportMetric(r.Naive[spike].Totals.IncorrectRate, "incorrect-naive")
	b.ReportMetric(r.GapOrders(spike), "gap-orders")
}

func BenchmarkOverload(b *testing.B) {
	cfg := experiments.DefaultOverloadConfig(benchScale())
	cfg.Nodes = 40
	cfg.Duration = 20 * time.Minute
	cfg.Multiples = []float64{1, 5}
	var r experiments.OverloadResult
	for i := 0; i < b.N; i++ {
		r = experiments.Overload(cfg)
	}
	b.ReportMetric(r.DegradationRatio(1, 5), "success-5x/1x")
	b.ReportMetric(float64(r.Points[1].Res.Counters.RetryBudgetExhausted), "budget-denials-5x")
	b.ReportMetric(float64(r.Points[1].Res.Counters.BreakerOpens), "breaker-opens-5x")
}

func BenchmarkFig8Squirrel(b *testing.B) {
	cfg := experiments.DefaultFig8Config()
	cfg.Days = 2 // bench scale: one weekday + part of the pattern
	var r experiments.Fig8Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig8Squirrel(cfg)
	}
	peak, trough := 0.0, 0.0
	for _, w := range r.Windows {
		if w.TotalPerNodeSec > peak {
			peak = w.TotalPerNodeSec
		}
		if trough == 0 || (w.TotalPerNodeSec > 0 && w.TotalPerNodeSec < trough) {
			trough = w.TotalPerNodeSec
		}
	}
	b.ReportMetric(peak, "traffic-peak")
	b.ReportMetric(trough, "traffic-trough")
	if r.Requests > 0 {
		b.ReportMetric(float64(r.OriginFetches)/float64(r.Requests), "origin-fetch-frac")
	}
}
