// Package transport runs MSPastry nodes over real UDP sockets. The same
// protocol code that drives the simulator drives a deployment: the
// transport implements pastry.Env with a wall-clock, real timers and the
// wire codec, and serialises all node callbacks on one event loop per node
// (the protocol code is single-threaded by design).
package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mspastry/internal/id"
	"mspastry/internal/pastry"
)

// maxPacket is the largest datagram the transport will send or accept.
// Join replies and leaf-set probes carry tens of node references; 64 KiB
// (the UDP maximum) leaves ample headroom.
const maxPacket = 64 * 1024

// UDP hosts one MSPastry node on a UDP socket.
type UDP struct {
	conn  *net.UDPConn
	start time.Time
	rng   *rand.Rand

	loop chan func()
	done chan struct{}

	mu            sync.Mutex
	closed        bool
	node          *pastry.Node
	onDecodeError func(remote net.Addr, err error)
	onSendError   func(to pastry.NodeRef, err error)
	sink          MetricsSink

	sent, received atomic.Uint64

	// addrs caches resolved destination addresses per overlay address.
	// It is confined to the event loop (Send runs there), so it needs no
	// lock; it grows to at most the number of distinct peers seen.
	addrs map[string]*net.UDPAddr
}

// OnDecodeError registers fn to observe malformed packets (for logging).
// Safe to call at any time; fn runs on the read loop.
func (t *UDP) OnDecodeError(fn func(remote net.Addr, err error)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.onDecodeError = fn
}

// OnSendError registers fn to observe failed sends: unresolvable
// addresses, oversized messages and socket write errors. Safe to call at
// any time; fn runs on the event loop.
func (t *UDP) OnSendError(fn func(to pastry.NodeRef, err error)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.onSendError = fn
}

func (t *UDP) decodeErrorHook() func(net.Addr, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.onDecodeError
}

func (t *UDP) sendErrorHook() func(pastry.NodeRef, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.onSendError
}

// MetricsSink observes the transport's packet-level activity. The
// telemetry package provides an implementation backed by its registry; the
// interface keeps this package free of any dependency on it. Sent/received
// callbacks run on the event loop and the read loop respectively, so
// implementations must be safe for concurrent use.
type MetricsSink interface {
	// PacketSent fires after a datagram is written, with the message's
	// traffic category and encoded size.
	PacketSent(cat pastry.Category, bytes int)
	// PacketReceived fires for every well-formed datagram.
	PacketReceived(cat pastry.Category, bytes int)
	// SendError fires when a send fails: unresolvable address, oversized
	// message or socket write error.
	SendError()
	// DecodeError fires for malformed packets.
	DecodeError()
}

// SetMetricsSink installs the packet-level metrics sink. Safe to call at
// any time; nil removes it.
func (t *UDP) SetMetricsSink(sink MetricsSink) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sink = sink
}

func (t *UDP) metricsSink() MetricsSink {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sink
}

// Listen opens a UDP socket on addr (for example "127.0.0.1:0") and starts
// the transport's event loop.
func Listen(addr string, seed int64) (*UDP, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %q: %w", addr, err)
	}
	t := &UDP{
		conn:  conn,
		start: time.Now(),
		rng:   rand.New(rand.NewSource(seed)),
		addrs: make(map[string]*net.UDPAddr),
		loop:  make(chan func(), 1024),
		done:  make(chan struct{}),
	}
	go t.runLoop()
	go t.readLoop()
	return t, nil
}

// Addr returns the transport's bound address, which is also the node's
// overlay address.
func (t *UDP) Addr() string { return t.conn.LocalAddr().String() }

// Counters returns the number of protocol messages sent and received by
// this transport (malformed packets are not counted as received).
func (t *UDP) Counters() (sent, received uint64) {
	return t.sent.Load(), t.received.Load()
}

// Env returns the transport's pastry.Env, so applications (Squirrel,
// Scribe, the DHT) can share the node's clock, timers and transport. Use
// it only from the event loop (inside Do/DoSync).
func (t *UDP) Env() pastry.Env { return (*udpEnv)(t) }

// CreateNode builds the node hosted by this transport. Call exactly once.
// The node's identifier is drawn from the transport's seeded random source
// unless nodeID is non-zero.
func (t *UDP) CreateNode(nodeID id.ID, cfg pastry.Config, obs pastry.Observer) (*pastry.Node, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.node != nil {
		return nil, errors.New("transport: node already created")
	}
	if nodeID.IsZero() {
		nodeID = id.Random(t.rng)
	}
	ref := pastry.NodeRef{ID: nodeID, Addr: t.Addr()}
	n, err := pastry.NewNode(ref, cfg, (*udpEnv)(t), obs)
	if err != nil {
		return nil, err
	}
	t.node = n
	return n, nil
}

// Do runs fn on the transport's event loop, serialised with message
// delivery and timers. Use it for every interaction with the node.
func (t *UDP) Do(fn func(n *pastry.Node)) {
	select {
	case t.loop <- func() { fn(t.node) }:
	case <-t.done:
	}
}

// DoSync runs fn on the event loop and waits for it to complete.
func (t *UDP) DoSync(fn func(n *pastry.Node)) {
	ch := make(chan struct{})
	t.Do(func(n *pastry.Node) {
		defer close(ch)
		fn(n)
	})
	select {
	case <-ch:
	case <-t.done:
	}
}

// Close shuts the transport down: the node crashes (fail-stop), the socket
// closes and the loops exit.
func (t *UDP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	t.DoSync(func(n *pastry.Node) {
		if n != nil {
			n.Fail()
		}
	})
	close(t.done)
	return t.conn.Close()
}

func (t *UDP) runLoop() {
	for {
		select {
		case fn := <-t.loop:
			fn()
		case <-t.done:
			return
		}
	}
}

func (t *UDP) readLoop() {
	buf := make([]byte, maxPacket)
	for {
		n, remote, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-t.done:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		msg, err := pastry.DecodeMessage(append([]byte(nil), buf[:n]...))
		if err != nil {
			if sink := t.metricsSink(); sink != nil {
				sink.DecodeError()
			}
			if fn := t.decodeErrorHook(); fn != nil {
				fn(remote, err)
			}
			continue
		}
		t.received.Add(1)
		if sink := t.metricsSink(); sink != nil {
			sink.PacketReceived(msg.Category(), n)
		}
		t.Do(func(node *pastry.Node) {
			if node != nil {
				node.Receive(msg)
			}
		})
	}
}

// udpEnv implements pastry.Env on top of the transport.
type udpEnv UDP

// Now returns the wall-clock time as a monotonic duration since the
// transport started.
func (e *udpEnv) Now() time.Duration { return time.Since(e.start) }

// Rand returns the transport's random source (only touched from the loop).
func (e *udpEnv) Rand() *rand.Rand { return e.rng }

// Send encodes and transmits a message. Delivery is best-effort UDP;
// failures are reported through OnSendError and otherwise dropped, like a
// lost datagram.
func (e *udpEnv) Send(to pastry.NodeRef, m pastry.Message) {
	dst, ok := e.addrs[to.Addr]
	if !ok {
		var err error
		dst, err = net.ResolveUDPAddr("udp", to.Addr)
		if err != nil {
			e.sendError(to, fmt.Errorf("transport: resolve %q: %w", to.Addr, err))
			return
		}
		e.addrs[to.Addr] = dst
	}
	buf := pastry.EncodeMessage(m)
	if len(buf) > maxPacket {
		e.sendError(to, fmt.Errorf("transport: message of %d bytes exceeds %d", len(buf), maxPacket))
		return
	}
	e.sent.Add(1)
	if _, err := e.conn.WriteToUDP(buf, dst); err != nil {
		e.sendError(to, err)
		return
	}
	if sink := (*UDP)(e).metricsSink(); sink != nil {
		sink.PacketSent(m.Category(), len(buf))
	}
}

func (e *udpEnv) sendError(to pastry.NodeRef, err error) {
	if sink := (*UDP)(e).metricsSink(); sink != nil {
		sink.SendError()
	}
	if fn := (*UDP)(e).sendErrorHook(); fn != nil {
		fn(to, err)
	}
}

// Schedule arms a real timer whose callback runs on the event loop.
func (e *udpEnv) Schedule(d time.Duration, fn func()) pastry.Timer {
	t := (*UDP)(e)
	ut := &udpTimer{}
	ut.timer = time.AfterFunc(d, func() {
		t.Do(func(*pastry.Node) {
			ut.mu.Lock()
			canceled := ut.canceled
			ut.mu.Unlock()
			if !canceled {
				fn()
			}
		})
	})
	return ut
}

type udpTimer struct {
	mu       sync.Mutex
	canceled bool
	timer    *time.Timer
}

// Cancel implements pastry.Timer. It is safe to call from the event loop;
// a callback already queued will observe the flag and do nothing.
func (ut *udpTimer) Cancel() {
	ut.mu.Lock()
	ut.canceled = true
	ut.mu.Unlock()
	ut.timer.Stop()
}
