// Package transport runs MSPastry nodes over real UDP sockets. The same
// protocol code that drives the simulator drives a deployment: the
// transport implements pastry.Env with a wall-clock, real timers and the
// wire codec, and serialises all node callbacks on one event loop per node
// (the protocol code is single-threaded by design).
//
// All traffic travels in wire frames. With a coalescing window set,
// control messages to the same peer queue briefly and share one datagram;
// latency-critical messages flush immediately and carry the pending batch
// with them. Incoming batch frames are decoded back into individual
// message deliveries.
package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mspastry/internal/id"
	"mspastry/internal/overload"
	"mspastry/internal/pastry"
	"mspastry/internal/wire"
)

// maxPacket is the largest datagram the transport will send or accept.
// Join replies and leaf-set probes carry tens of node references; 64 KiB
// (the UDP maximum) leaves ample headroom.
const maxPacket = wire.DefaultMaxPacket

// maxAddrCache bounds the resolved-address cache. The primary bound is
// the peer registry's eviction broadcast (entries are dropped when the
// node evicts the peer); the cap is a backstop against pathological churn
// with ephemeral ports, shedding an arbitrary entry (entries re-resolve
// on demand).
const maxAddrCache = 4096

// UDP hosts one MSPastry node on a UDP socket.
type UDP struct {
	conn  *net.UDPConn
	start time.Time
	rng   *rand.Rand

	loop chan func()
	done chan struct{}

	mu            sync.Mutex
	closed        bool
	node          *pastry.Node
	coWindow      time.Duration
	coLong        time.Duration
	onDecodeError func(remote net.Addr, err error)
	onSendError   func(to pastry.NodeRef, err error)
	sink          MetricsSink

	sent, received atomic.Uint64
	panics         atomic.Uint64

	// inQ, when set, bounds inbound work between the read loop and the
	// event loop, shedding lowest-priority-first. Shared by both loops.
	inMu sync.Mutex
	inQ  *overload.Queue

	// Event-loop-confined state (Send, flush timers and the registry's
	// eviction broadcast all run there): the per-peer resolved-address
	// cache and the coalescer.
	addrs map[string]*net.UDPAddr
	co    *wire.Coalescer
}

// OnDecodeError registers fn to observe malformed packets (for logging).
// Safe to call at any time; fn runs on the read loop.
func (t *UDP) OnDecodeError(fn func(remote net.Addr, err error)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.onDecodeError = fn
}

// OnSendError registers fn to observe failed sends: unresolvable
// addresses, oversized messages and socket write errors. Safe to call at
// any time; fn runs on the event loop.
func (t *UDP) OnSendError(fn func(to pastry.NodeRef, err error)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.onSendError = fn
}

func (t *UDP) decodeErrorHook() func(net.Addr, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.onDecodeError
}

func (t *UDP) sendErrorHook() func(pastry.NodeRef, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.onSendError
}

// MetricsSink observes the transport's traffic. The telemetry package
// provides an implementation backed by its registry; the interface keeps
// this package free of any dependency on it. Send-side callbacks run on
// the event loop and receive-side callbacks on the read loop, so
// implementations must be safe for concurrent use.
type MetricsSink interface {
	// MsgSent fires for every message accepted for transmission, with its
	// single-frame encoded size (what it would cost unbatched).
	MsgSent(cat pastry.Category, bytes int)
	// MsgReceived fires for every well-formed message decoded from a
	// frame, with its single-frame encoded size.
	MsgReceived(cat pastry.Category, bytes int)
	// DatagramSent fires after a frame is written: its on-wire size, how
	// many messages it carried, the bytes saved versus unbatched sends,
	// and how long its oldest message waited for the coalescing window.
	DatagramSent(bytes, msgs, savedBytes int, held time.Duration)
	// DatagramReceived fires for every structurally valid frame received.
	DatagramReceived(bytes, msgs int)
	// SendError fires when a send fails: unresolvable address, oversized
	// message or socket write error.
	SendError()
	// DecodeError fires for malformed frames and for each malformed
	// message inside an otherwise valid batch.
	DecodeError()
	// MsgShed fires when the bounded inbound queue sheds a message from
	// the given priority lane (the event loop fell behind the socket).
	MsgShed(lane overload.Lane)
	// HandlerPanic fires when a message handler panicked and was
	// contained; the node keeps serving.
	HandlerPanic()
}

// SetMetricsSink installs the traffic metrics sink. Safe to call at any
// time; nil removes it.
func (t *UDP) SetMetricsSink(sink MetricsSink) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sink = sink
}

func (t *UDP) metricsSink() MetricsSink {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sink
}

// SetCoalesceWindow sets how long coalescable control messages may wait to
// share a datagram with later traffic to the same peer. Zero (the
// default) sends every message as its own datagram. Set it before the
// node starts sending: the coalescer is built on first send.
func (t *UDP) SetCoalesceWindow(d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.coWindow = d
}

// SetCoalesceLongWindow sets the extended wait budget for delay-tolerant
// messages (heartbeats, distance reports, row announcements); see
// wire.Config.LongWindow. Keep it well below the probe timeout To.
func (t *UDP) SetCoalesceLongWindow(d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.coLong = d
}

func (t *UDP) coalesceWindows() (window, long time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.coWindow, t.coLong
}

// SetInboundQueue bounds inbound work between the socket read loop and
// the event loop at limit messages. Arrivals are classified into
// priority lanes; when the event loop falls behind, the queue sheds
// lowest-priority-first, so liveness traffic (acks, probes) survives
// overload at the expense of bulk transfer. Zero (the default) removes
// the bound. Set it before traffic arrives.
func (t *UDP) SetInboundQueue(limit int) {
	t.inMu.Lock()
	defer t.inMu.Unlock()
	if limit <= 0 {
		t.inQ = nil
		return
	}
	t.inQ = overload.NewQueue(limit)
}

// OverloadStats reports the inbound queue's per-lane shed counts (all
// zero without SetInboundQueue) and the number of contained handler
// panics.
func (t *UDP) OverloadStats() (shed [overload.NumLanes]uint64, panics uint64) {
	t.inMu.Lock()
	if t.inQ != nil {
		shed = t.inQ.Shed
	}
	t.inMu.Unlock()
	return shed, t.panics.Load()
}

// Listen opens a UDP socket on addr (for example "127.0.0.1:0") and starts
// the transport's event loop.
func Listen(addr string, seed int64) (*UDP, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %q: %w", addr, err)
	}
	t := &UDP{
		conn:  conn,
		start: time.Now(),
		rng:   rand.New(rand.NewSource(seed)),
		addrs: make(map[string]*net.UDPAddr),
		loop:  make(chan func(), 1024),
		done:  make(chan struct{}),
	}
	go t.runLoop()
	go t.readLoop()
	return t, nil
}

// Addr returns the transport's bound address, which is also the node's
// overlay address.
func (t *UDP) Addr() string { return t.conn.LocalAddr().String() }

// Counters returns the number of protocol messages sent and received by
// this transport (malformed packets are not counted as received; messages
// sharing a coalesced datagram each count once).
func (t *UDP) Counters() (sent, received uint64) {
	return t.sent.Load(), t.received.Load()
}

// Env returns the transport's pastry.Env, so applications (Squirrel,
// Scribe, the DHT) can share the node's clock, timers and transport. Use
// it only from the event loop (inside Do/DoSync).
func (t *UDP) Env() pastry.Env { return (*udpEnv)(t) }

// CreateNode builds the node hosted by this transport. Call exactly once.
// The node's identifier is drawn from the transport's seeded random source
// unless nodeID is non-zero.
func (t *UDP) CreateNode(nodeID id.ID, cfg pastry.Config, obs pastry.Observer) (*pastry.Node, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.node != nil {
		return nil, errors.New("transport: node already created")
	}
	if nodeID.IsZero() {
		nodeID = id.Random(t.rng)
	}
	ref := pastry.NodeRef{ID: nodeID, Addr: t.Addr()}
	n, err := pastry.NewNode(ref, cfg, (*udpEnv)(t), obs)
	if err != nil {
		return nil, err
	}
	// When the node's peer registry evicts a peer for good, release the
	// transport's per-peer state: flush (not drop) any held coalesced
	// frames while the resolved address is still cached, then forget the
	// address. The broadcast fires from node processing, which runs on
	// the event loop, so this touches loop-confined state safely.
	n.Peers().OnEvict(func(x id.ID, addr string) {
		if addr == "" {
			return
		}
		if t.co != nil {
			t.co.Evict(addr)
		}
		delete(t.addrs, addr)
	})
	t.node = n
	return n, nil
}

// Do runs fn on the transport's event loop, serialised with message
// delivery and timers. Use it for every interaction with the node.
func (t *UDP) Do(fn func(n *pastry.Node)) {
	select {
	case t.loop <- func() { fn(t.node) }:
	case <-t.done:
	}
}

// DoSync runs fn on the event loop and waits for it to complete.
func (t *UDP) DoSync(fn func(n *pastry.Node)) {
	ch := make(chan struct{})
	t.Do(func(n *pastry.Node) {
		defer close(ch)
		fn(n)
	})
	select {
	case <-ch:
	case <-t.done:
	}
}

// Close shuts the transport down: the node crashes (fail-stop), pending
// coalesced frames flush, the socket closes and the loops exit.
func (t *UDP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	t.DoSync(func(n *pastry.Node) {
		if n != nil {
			n.Fail()
		}
		if t.co != nil {
			t.co.FlushAll()
		}
	})
	close(t.done)
	return t.conn.Close()
}

func (t *UDP) runLoop() {
	for {
		select {
		case fn := <-t.loop:
			fn()
		case <-t.done:
			return
		}
	}
}

func (t *UDP) readLoop() {
	buf := make([]byte, maxPacket)
	for {
		n, remote, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-t.done:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		// The pastry decoder copies everything it retains, so the frame
		// can be decoded in place and buf reused for the next datagram.
		msgs, sizes, bad, decErr := wire.DecodeAll(buf[:n])
		if msgs == nil && decErr != nil {
			if sink := t.metricsSink(); sink != nil {
				sink.DecodeError()
			}
			if fn := t.decodeErrorHook(); fn != nil {
				fn(remote, decErr)
			}
			continue
		}
		sink := t.metricsSink()
		if bad > 0 {
			// A malformed message inside a batch drops only itself.
			if sink != nil {
				for i := 0; i < bad; i++ {
					sink.DecodeError()
				}
			}
			if fn := t.decodeErrorHook(); fn != nil {
				fn(remote, decErr)
			}
		}
		if len(msgs) == 0 {
			continue
		}
		t.received.Add(uint64(len(msgs)))
		if sink != nil {
			sink.DatagramReceived(n, len(msgs))
			for i, m := range msgs {
				sink.MsgReceived(m.Category(), wire.SingleSize(sizes[i]))
			}
		}
		t.inMu.Lock()
		q := t.inQ
		t.inMu.Unlock()
		if q == nil {
			t.Do(func(node *pastry.Node) {
				if node == nil {
					return
				}
				for _, m := range msgs {
					t.deliver(node, m)
				}
			})
			continue
		}
		t.inMu.Lock()
		var sheds []overload.Lane
		for _, m := range msgs {
			if shed := q.Push(pastry.LaneOf(m), m); shed >= 0 {
				sheds = append(sheds, shed)
			}
		}
		t.inMu.Unlock()
		if sink != nil {
			for _, l := range sheds {
				sink.MsgShed(l)
			}
		}
		t.Do(t.drainInbound)
	}
}

// drainInbound runs on the event loop, handing queued messages to the
// node in priority order. It re-reads the queue each iteration, so work
// enqueued while draining is picked up in the same pass.
func (t *UDP) drainInbound(node *pastry.Node) {
	for {
		t.inMu.Lock()
		if t.inQ == nil {
			t.inMu.Unlock()
			return
		}
		v, _, ok := t.inQ.Pop()
		t.inMu.Unlock()
		if !ok {
			return
		}
		if node != nil {
			t.deliver(node, v.(pastry.Message))
		}
	}
}

// deliver hands one message to the node, containing handler panics: a
// latent protocol bug triggered by one peer's message must not take the
// whole process down, so the panic is counted and the loop keeps
// serving. The node's state may be mid-transition, but every handler
// mutation is completed or abandoned wholesale (no partial locks), so
// continuing is safe.
func (t *UDP) deliver(node *pastry.Node, m pastry.Message) {
	defer func() {
		if r := recover(); r != nil {
			t.panics.Add(1)
			if sink := t.metricsSink(); sink != nil {
				sink.HandlerPanic()
			}
		}
	}()
	node.Receive(m)
}

// udpEnv implements pastry.Env on top of the transport.
type udpEnv UDP

// Now returns the wall-clock time as a monotonic duration since the
// transport started.
func (e *udpEnv) Now() time.Duration { return time.Since(e.start) }

// Rand returns the transport's random source (only touched from the loop).
func (e *udpEnv) Rand() *rand.Rand { return e.rng }

// Send frames and transmits a message, batching coalescable control
// messages within the configured window. Delivery is best-effort UDP;
// failures are reported through OnSendError and otherwise dropped, like a
// lost datagram.
func (e *udpEnv) Send(to pastry.NodeRef, m pastry.Message) {
	t := (*UDP)(e)
	// Resolve now so address errors surface synchronously, before the
	// message can enter a batch.
	if _, err := e.resolve(to.Addr); err != nil {
		e.sendError(to, fmt.Errorf("transport: resolve %q: %w", to.Addr, err))
		return
	}
	size, err := t.coalescer().Send(to.Addr, to, m)
	if err != nil {
		e.sendError(to, fmt.Errorf("transport: message of %d bytes exceeds %d: %w",
			wire.SingleSize(size), maxPacket, err))
		return
	}
	e.sent.Add(1)
	if sink := t.metricsSink(); sink != nil {
		sink.MsgSent(m.Category(), wire.SingleSize(size))
	}
}

// resolve returns the cached socket address for an overlay address,
// resolving and caching on miss. Event-loop confined.
func (e *udpEnv) resolve(addr string) (*net.UDPAddr, error) {
	if dst, ok := e.addrs[addr]; ok {
		return dst, nil
	}
	dst, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	if len(e.addrs) >= maxAddrCache {
		for victim := range e.addrs {
			delete(e.addrs, victim)
			break
		}
	}
	e.addrs[addr] = dst
	return dst, nil
}

// coalescer lazily builds the per-peer batching queues, so a
// SetCoalesceWindow call made between Listen and the first send takes
// effect.
func (t *UDP) coalescer() *wire.Coalescer {
	if t.co == nil {
		window, long := t.coalesceWindows()
		t.co = wire.NewCoalescer(wire.Config{
			Window:     window,
			LongWindow: long,
			MaxPacket:  maxPacket,
			MaxSingle:  maxPacket,
			Now:        (*udpEnv)(t).Now,
			After: func(d time.Duration, fn func()) {
				time.AfterFunc(d, func() {
					t.Do(func(*pastry.Node) { fn() })
				})
			},
			Emit: t.emitFrame,
		})
	}
	return t.co
}

// emitFrame writes one assembled frame to the socket. Runs on the event
// loop (synchronously from Send, or from a flush timer).
func (t *UDP) emitFrame(f wire.Flush) {
	e := (*udpEnv)(t)
	dst, err := e.resolve(f.To.Addr)
	if err != nil {
		// The cache entry was shed between enqueue and flush and the
		// re-resolve failed; the frame is lost like a dropped datagram.
		e.sendError(f.To, fmt.Errorf("transport: resolve %q: %w", f.To.Addr, err))
		return
	}
	if _, err := t.conn.WriteToUDP(f.Frame, dst); err != nil {
		e.sendError(f.To, err)
		return
	}
	if sink := t.metricsSink(); sink != nil {
		sink.DatagramSent(len(f.Frame), len(f.Msgs), f.SingleBytes-len(f.Frame), f.Held)
	}
}

func (e *udpEnv) sendError(to pastry.NodeRef, err error) {
	if sink := (*UDP)(e).metricsSink(); sink != nil {
		sink.SendError()
	}
	if fn := (*UDP)(e).sendErrorHook(); fn != nil {
		fn(to, err)
	}
}

// LoadFactor implements pastry.LoadSampler: current occupancy of the
// bounded inbound queue in [0,1], or 0 without one. Layers above (the
// DHT's sweep scheduler) use it to defer deferrable work under load.
func (e *udpEnv) LoadFactor() float64 {
	t := (*UDP)(e)
	t.inMu.Lock()
	defer t.inMu.Unlock()
	if t.inQ == nil {
		return 0
	}
	return t.inQ.LoadFactor()
}

// Schedule arms a real timer whose callback runs on the event loop.
func (e *udpEnv) Schedule(d time.Duration, fn func()) pastry.Timer {
	t := (*UDP)(e)
	ut := &udpTimer{}
	ut.timer = time.AfterFunc(d, func() {
		t.Do(func(*pastry.Node) {
			ut.mu.Lock()
			canceled := ut.canceled
			ut.mu.Unlock()
			if !canceled {
				fn()
			}
		})
	})
	return ut
}

type udpTimer struct {
	mu       sync.Mutex
	canceled bool
	timer    *time.Timer
}

// Cancel implements pastry.Timer. It is safe to call from the event loop;
// a callback already queued will observe the flag and do nothing.
func (ut *udpTimer) Cancel() {
	ut.mu.Lock()
	ut.canceled = true
	ut.mu.Unlock()
	ut.timer.Stop()
}
