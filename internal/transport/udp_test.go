package transport

import (
	"net"
	"sync"
	"testing"
	"time"

	"mspastry/internal/id"
	"mspastry/internal/pastry"
)

// liveConfig shortens protocol timers so loopback tests settle quickly.
func liveConfig() pastry.Config {
	cfg := pastry.DefaultConfig()
	cfg.L = 8
	cfg.Tls = time.Second
	cfg.To = 500 * time.Millisecond
	cfg.TickInterval = 500 * time.Millisecond
	cfg.DistProbeSpacing = 100 * time.Millisecond
	return cfg
}

type liveObserver struct {
	mu        sync.Mutex
	activated bool
	delivered []id.ID
}

func (o *liveObserver) Activated(*pastry.Node, time.Duration) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.activated = true
}

func (o *liveObserver) Delivered(n *pastry.Node, lk *pastry.Lookup) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.delivered = append(o.delivered, lk.Key)
}

func (o *liveObserver) LookupDropped(*pastry.Node, *pastry.Lookup, pastry.DropReason) {}

func (o *liveObserver) isActivated() bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.activated
}

func (o *liveObserver) deliveredCount() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.delivered)
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(20 * time.Millisecond)
	}
	return cond()
}

func TestUDPOverlayFormsOnLoopback(t *testing.T) {
	const n = 5
	transports := make([]*UDP, 0, n)
	observers := make([]*liveObserver, 0, n)
	defer func() {
		for _, tr := range transports {
			tr.Close()
		}
	}()
	for i := 0; i < n; i++ {
		tr, err := Listen("127.0.0.1:0", int64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		transports = append(transports, tr)
		obs := &liveObserver{}
		observers = append(observers, obs)
		if _, err := tr.CreateNode(id.Zero, liveConfig(), obs); err != nil {
			t.Fatal(err)
		}
	}
	// Bootstrap the first node; join the rest through it.
	transports[0].DoSync(func(node *pastry.Node) { node.Bootstrap() })
	var seed pastry.NodeRef
	transports[0].DoSync(func(node *pastry.Node) { seed = node.Ref() })
	for i := 1; i < n; i++ {
		i := i
		transports[i].DoSync(func(node *pastry.Node) { node.Join(seed) })
	}
	for i, obs := range observers {
		if !waitFor(t, 15*time.Second, obs.isActivated) {
			t.Fatalf("node %d never activated over UDP", i)
		}
	}
	// Every node should know every other in this small ring.
	for i, tr := range transports {
		var size int
		tr.DoSync(func(node *pastry.Node) { size = node.Leaf().Size() })
		if size != n-1 {
			t.Fatalf("node %d leaf size = %d, want %d", i, size, n-1)
		}
	}
}

func TestUDPLookupDelivery(t *testing.T) {
	trA, err := Listen("127.0.0.1:0", 10)
	if err != nil {
		t.Fatal(err)
	}
	defer trA.Close()
	trB, err := Listen("127.0.0.1:0", 11)
	if err != nil {
		t.Fatal(err)
	}
	defer trB.Close()
	obsA, obsB := &liveObserver{}, &liveObserver{}
	nodeA, err := trA.CreateNode(id.New(1, 0), liveConfig(), obsA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trB.CreateNode(id.New(1<<63, 0), liveConfig(), obsB); err != nil {
		t.Fatal(err)
	}
	trA.DoSync(func(n *pastry.Node) { n.Bootstrap() })
	refA := nodeA.Ref()
	trB.DoSync(func(n *pastry.Node) { n.Join(refA) })
	if !waitFor(t, 10*time.Second, obsB.isActivated) {
		t.Fatal("B never activated")
	}
	// A key adjacent to B's id must be delivered at B.
	trA.Do(func(n *pastry.Node) { n.Lookup(id.New(1<<63, 1), []byte("ping")) })
	if !waitFor(t, 10*time.Second, func() bool { return obsB.deliveredCount() > 0 }) {
		t.Fatal("lookup never delivered at B")
	}
}

func TestUDPCloseIsIdempotent(t *testing.T) {
	tr, err := Listen("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.CreateNode(id.Zero, liveConfig(), nil); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestUDPCreateNodeTwiceFails(t *testing.T) {
	tr, err := Listen("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, err := tr.CreateNode(id.Zero, liveConfig(), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.CreateNode(id.Zero, liveConfig(), nil); err == nil {
		t.Fatal("second CreateNode should fail")
	}
}

func TestUDPMalformedPacketIgnored(t *testing.T) {
	tr, err := Listen("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	sawErr := make(chan error, 4)
	tr.OnDecodeError(func(remote net.Addr, err error) {
		select {
		case sawErr <- err:
		default:
		}
	})
	if _, err := tr.CreateNode(id.Zero, liveConfig(), nil); err != nil {
		t.Fatal(err)
	}
	tr.DoSync(func(n *pastry.Node) { n.Bootstrap() })
	// Throw garbage at the socket; the node must survive.
	conn, err := net.Dial("udp", tr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{0xde, 0xad, 0xbe, 0xef}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-sawErr:
	case <-time.After(5 * time.Second):
		t.Fatal("decode error hook never fired")
	}
	alive := false
	tr.DoSync(func(n *pastry.Node) { alive = n.Alive() })
	if !alive {
		t.Fatal("node died on malformed packet")
	}
}

func TestUDPSendErrorHook(t *testing.T) {
	tr, err := Listen("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	errs := make(chan error, 4)
	tr.OnSendError(func(to pastry.NodeRef, err error) {
		select {
		case errs <- err:
		default:
		}
	})
	if _, err := tr.CreateNode(id.Zero, liveConfig(), nil); err != nil {
		t.Fatal(err)
	}
	tr.DoSync(func(n *pastry.Node) { n.Bootstrap() })
	// An unresolvable address must surface through the hook, not vanish.
	tr.DoSync(func(n *pastry.Node) {
		tr.Env().Send(pastry.NodeRef{Addr: "no-such-host-xyz:bogus"}, &pastry.Envelope{})
	})
	select {
	case <-errs:
	case <-time.After(5 * time.Second):
		t.Fatal("send error hook never fired for unresolvable address")
	}
	sent, _ := tr.Counters()
	if sent != 0 {
		t.Fatalf("failed send counted as sent: %d", sent)
	}
}

func TestUDPAddressCacheReused(t *testing.T) {
	tr, err := Listen("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	peer, err := Listen("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	if _, err := tr.CreateNode(id.Zero, liveConfig(), nil); err != nil {
		t.Fatal(err)
	}
	to := pastry.NodeRef{ID: id.New(1, 0), Addr: peer.Addr()}
	tr.DoSync(func(n *pastry.Node) {
		tr.Env().Send(to, &pastry.Envelope{})
		tr.Env().Send(to, &pastry.Envelope{})
	})
	var cached int
	tr.DoSync(func(n *pastry.Node) { cached = len(tr.addrs) })
	if cached != 1 {
		t.Fatalf("address cache holds %d entries, want 1", cached)
	}
	if sent, _ := tr.Counters(); sent != 2 {
		t.Fatalf("sent = %d, want 2", sent)
	}
}
