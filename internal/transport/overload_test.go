package transport

import (
	"runtime"
	"testing"
	"time"

	"mspastry/internal/id"
	"mspastry/internal/overload"
	"mspastry/internal/pastry"
)

// bombMessage is a Message the node has no handler for: Receive panics on
// it, standing in for a latent handler bug triggered by one peer.
type bombMessage struct{}

func (bombMessage) Category() pastry.Category { return pastry.CatApp }

// TestUDPHandlerPanicContained pins the containment property: a handler
// panic is counted, the node keeps serving, and later messages still get
// through.
func TestUDPHandlerPanicContained(t *testing.T) {
	tr, err := Listen("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, err := tr.CreateNode(id.Zero, liveConfig(), nil); err != nil {
		t.Fatal(err)
	}
	tr.DoSync(func(n *pastry.Node) { n.Bootstrap() })
	tr.DoSync(func(n *pastry.Node) { tr.deliver(n, bombMessage{}) })
	if _, panics := tr.OverloadStats(); panics != 1 {
		t.Fatalf("panics = %d, want 1", panics)
	}
	alive := false
	tr.DoSync(func(n *pastry.Node) {
		tr.deliver(n, &pastry.Heartbeat{From: pastry.NodeRef{ID: id.New(7, 0), Addr: "127.0.0.1:9"}})
		alive = n.Alive()
	})
	if !alive {
		t.Fatal("node died after contained panic")
	}
}

// TestUDPInboundQueueShedsLowestPriority stalls the event loop while bulk
// and liveness traffic arrives: the bounded inbound queue must shed from
// the bulk lane and keep every liveness message.
func TestUDPInboundQueueShedsLowestPriority(t *testing.T) {
	tr, err := Listen("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.SetInboundQueue(2)
	if _, err := tr.CreateNode(id.New(1, 0), liveConfig(), nil); err != nil {
		t.Fatal(err)
	}
	tr.DoSync(func(n *pastry.Node) { n.Bootstrap() })

	peer, err := Listen("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	peerNode, err := peer.CreateNode(id.New(1<<62, 0), liveConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	peerRef := peerNode.Ref()
	dst := pastry.NodeRef{ID: id.New(1, 0), Addr: tr.Addr()}

	// Stall the victim's event loop so arrivals pile up in the queue.
	gate := make(chan struct{})
	tr.Do(func(*pastry.Node) { <-gate })

	const bulk = 10
	peer.DoSync(func(*pastry.Node) {
		for i := 0; i < bulk; i++ {
			peer.Env().Send(dst, &pastry.AppDirect{From: peerRef, Payload: []byte{byte(i)}})
		}
		peer.Env().Send(dst, &pastry.Heartbeat{From: peerRef})
		peer.Env().Send(dst, &pastry.Heartbeat{From: peerRef})
	})
	if !waitFor(t, 5*time.Second, func() bool {
		_, received := tr.Counters()
		return received >= bulk+2
	}) {
		t.Fatal("victim never received the traffic")
	}
	close(gate)

	shed, _ := tr.OverloadStats()
	if shed[overload.LaneLiveness] != 0 {
		t.Fatalf("liveness messages shed: %d", shed[overload.LaneLiveness])
	}
	if shed[overload.LaneBulk] == 0 {
		t.Fatalf("no bulk sheds despite a full queue: %v", shed)
	}
}

// TestUDPCloseReleasesGoroutines pins the shutdown path: closing a fleet
// of transports must release their event-loop and read-loop goroutines.
func TestUDPCloseReleasesGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	var trs []*UDP
	for i := 0; i < 8; i++ {
		tr, err := Listen("127.0.0.1:0", int64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tr.CreateNode(id.Zero, liveConfig(), nil); err != nil {
			t.Fatal(err)
		}
		tr.SetInboundQueue(64)
		tr.DoSync(func(n *pastry.Node) { n.Bootstrap() })
		trs = append(trs, tr)
	}
	for _, tr := range trs {
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+1 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked on Close: before=%d after=%d", before, runtime.NumGoroutine())
}
