// Package topology builds the simulated network topologies used by the
// MSPastry evaluation (paper §5.1): GATech (a transit-stub topology in the
// style of the Georgia Tech topology generator), Mercator (an AS-level
// hierarchical topology routed AS-path-first with an IP-hop-count proximity
// metric) and CorpNet (a small corporate network with a minimum-RTT metric).
//
// The paper's Mercator and CorpNet graphs come from proprietary measurement
// data; we generate synthetic graphs with the same construction recipe and
// the same proximity metrics (see DESIGN.md for the substitution argument).
//
// A Network exposes one-way delays between attached end nodes. Delays are
// symmetric and shortest-path; the network does not model congestion, which
// matches the simulator described in the paper.
package topology

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Metric identifies the proximity metric a topology reports.
type Metric int

const (
	// MetricRTT means distances are round-trip delays.
	MetricRTT Metric = iota + 1
	// MetricHops means distances are IP hop counts mapped to delay at a
	// fixed per-hop cost (the ratio structure, which is what RDP measures,
	// is unchanged by the mapping).
	MetricHops
)

func (m Metric) String() string {
	switch m {
	case MetricRTT:
		return "rtt"
	case MetricHops:
		return "hops"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

type edge struct {
	to     int
	weight float64 // routing weight (policy)
	delay  float64 // milliseconds contributed to the path
}

// Network is a generated router-level topology with end-node attachment
// points. It memoises single-source shortest-path results, so Delay lookups
// after warm-up are O(1).
type Network struct {
	name    string
	metric  Metric
	adj     [][]edge
	attach  []int     // endpoint -> router
	lanMS   []float64 // endpoint -> LAN link one-way delay (ms)
	srcVecs map[int][]float32
}

// Name returns the topology's name (gatech, mercator, corpnet).
func (n *Network) Name() string { return n.name }

// Metric returns the proximity metric of the topology.
func (n *Network) Metric() Metric { return n.metric }

// NumRouters returns the number of routers in the topology.
func (n *Network) NumRouters() int { return len(n.adj) }

// NumEndpoints returns the number of attached end nodes.
func (n *Network) NumEndpoints() int { return len(n.attach) }

// Attach connects count end nodes to routers chosen by the topology's
// attachment rule and returns the index of the first new endpoint. GATech
// and CorpNet attach through a 1 ms LAN link (as in the paper); Mercator
// attaches end nodes directly to routers.
func (n *Network) Attach(count int, rng *rand.Rand) int {
	first := len(n.attach)
	for i := 0; i < count; i++ {
		r := rng.Intn(len(n.adj))
		n.attach = append(n.attach, r)
		lan := 1.0
		if n.metric == MetricHops {
			lan = 0 // direct attachment, hop metric
		}
		n.lanMS = append(n.lanMS, lan)
	}
	return first
}

// AttachTo connects one end node to a specific router with the given LAN
// delay, for tests and hand-built scenarios.
func (n *Network) AttachTo(router int, lanMS float64) int {
	if router < 0 || router >= len(n.adj) {
		panic(fmt.Sprintf("topology: router %d out of range", router))
	}
	n.attach = append(n.attach, router)
	n.lanMS = append(n.lanMS, lanMS)
	return len(n.attach) - 1
}

// Delay returns the one-way delay between endpoints a and b.
func (n *Network) Delay(a, b int) time.Duration {
	ms := n.delayMS(a, b)
	return time.Duration(ms * float64(time.Millisecond))
}

// RTT returns the round-trip delay between endpoints a and b, the proximity
// metric MSPastry uses.
func (n *Network) RTT(a, b int) time.Duration { return 2 * n.Delay(a, b) }

func (n *Network) delayMS(a, b int) float64 {
	if a == b {
		return 0
	}
	ra, rb := n.attach[a], n.attach[b]
	core := 0.0
	if ra != rb {
		core = float64(n.routerDelay(ra, rb))
	}
	return core + n.lanMS[a] + n.lanMS[b]
}

func (n *Network) routerDelay(src, dst int) float32 {
	vec, ok := n.srcVecs[src]
	if !ok {
		vec = n.dijkstra(src)
		n.srcVecs[src] = vec
	}
	return vec[dst]
}

// dijkstra computes shortest paths by routing weight from src and returns
// the accumulated *delay* along those routes, which is how policy-weighted
// routing (GATech) and AS-path-first routing (Mercator) are realised: the
// weight steers the route, the delay is what the route costs.
func (n *Network) dijkstra(src int) []float32 {
	const inf = float64(1e18)
	dist := make([]float64, len(n.adj))
	cost := make([]float64, len(n.adj))
	done := make([]bool, len(n.adj))
	for i := range cost {
		cost[i] = inf
		dist[i] = inf
	}
	cost[src] = 0
	dist[src] = 0
	pq := &pqueue{items: []pqItem{{node: src, cost: 0}}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(pqItem)
		if done[it.node] {
			continue
		}
		done[it.node] = true
		for _, e := range n.adj[it.node] {
			c := it.cost + e.weight
			if c < cost[e.to] {
				cost[e.to] = c
				dist[e.to] = dist[it.node] + e.delay
				heap.Push(pq, pqItem{node: e.to, cost: c})
			}
		}
	}
	out := make([]float32, len(n.adj))
	for i := range out {
		out[i] = float32(dist[i])
	}
	return out
}

type pqItem struct {
	node int
	cost float64
}

type pqueue struct{ items []pqItem }

func (p *pqueue) Len() int           { return len(p.items) }
func (p *pqueue) Less(i, j int) bool { return p.items[i].cost < p.items[j].cost }
func (p *pqueue) Swap(i, j int)      { p.items[i], p.items[j] = p.items[j], p.items[i] }
func (p *pqueue) Push(x any)         { p.items = append(p.items, x.(pqItem)) }
func (p *pqueue) Pop() any {
	old := p.items
	n := len(old)
	it := old[n-1]
	p.items = old[:n-1]
	return it
}

func newNetwork(name string, metric Metric, routers int) *Network {
	return &Network{
		name:    name,
		metric:  metric,
		adj:     make([][]edge, routers),
		srcVecs: make(map[int][]float32),
	}
}

func (n *Network) addEdge(a, b int, weight, delayMS float64) {
	n.adj[a] = append(n.adj[a], edge{to: b, weight: weight, delay: delayMS})
	n.adj[b] = append(n.adj[b], edge{to: a, weight: weight, delay: delayMS})
}

// connectRing ensures the routers in ids form a connected subgraph by
// linking them in a random ring, then adds extra random chords for the
// requested average degree.
func (n *Network) connectCluster(ids []int, extraEdges int, minDelay, maxDelay float64, rng *rand.Rand) {
	if len(ids) <= 1 {
		return
	}
	perm := rng.Perm(len(ids))
	for i := 1; i < len(perm); i++ {
		d := minDelay + rng.Float64()*(maxDelay-minDelay)
		n.addEdge(ids[perm[i-1]], ids[perm[i]], d, d)
	}
	for i := 0; i < extraEdges; i++ {
		a, b := ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]
		if a == b {
			continue
		}
		d := minDelay + rng.Float64()*(maxDelay-minDelay)
		n.addEdge(a, b, d, d)
	}
}
