package topology

import (
	"math/rand"
	"testing"
	"time"
)

func smallGATech(t *testing.T, seed int64) *Network {
	t.Helper()
	cfg := GATechConfig{TransitDomains: 4, RoutersPerTransit: 3, StubsPerRouter: 2, RoutersPerStub: 4}
	return GATech(cfg, rand.New(rand.NewSource(seed)))
}

func TestGATechSize(t *testing.T) {
	n := GATech(DefaultGATech(), rand.New(rand.NewSource(1)))
	if got := n.NumRouters(); got != 5050 {
		t.Fatalf("GATech routers = %d, want 5050 (paper size)", got)
	}
	if n.Metric() != MetricRTT {
		t.Fatalf("GATech metric = %v, want rtt", n.Metric())
	}
}

func TestCorpNetSize(t *testing.T) {
	n := CorpNet(DefaultCorpNet(), rand.New(rand.NewSource(1)))
	if got := n.NumRouters(); got != 298 {
		t.Fatalf("CorpNet routers = %d, want 298 (paper size)", got)
	}
}

func TestMercatorMetric(t *testing.T) {
	cfg := MercatorConfig{AS: 10, RoutersPerAS: 5, HopDelayMS: 5, InterASDegree: 2}
	n := Mercator(cfg, rand.New(rand.NewSource(1)))
	if n.Metric() != MetricHops {
		t.Fatalf("Mercator metric = %v, want hops", n.Metric())
	}
	if n.NumRouters() != 50 {
		t.Fatalf("routers = %d, want 50", n.NumRouters())
	}
}

func TestConnectivityAllPairsFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	nets := []*Network{
		smallGATech(t, 2),
		Mercator(MercatorConfig{AS: 8, RoutersPerAS: 4, HopDelayMS: 5, InterASDegree: 2}, rng),
		CorpNet(CorpNetConfig{Hubs: 5, EdgeRouters: 20}, rng),
	}
	for _, n := range nets {
		n.Attach(20, rng)
		for a := 0; a < n.NumEndpoints(); a++ {
			for b := 0; b < n.NumEndpoints(); b++ {
				d := n.Delay(a, b)
				if d < 0 || d > time.Minute {
					t.Fatalf("%s: delay(%d,%d) = %v not finite/sane", n.Name(), a, b, d)
				}
			}
		}
	}
}

func TestDelaySymmetricAndZeroOnSelf(t *testing.T) {
	n := smallGATech(t, 3)
	rng := rand.New(rand.NewSource(3))
	n.Attach(30, rng)
	for a := 0; a < 30; a++ {
		if d := n.Delay(a, a); d != 0 {
			t.Fatalf("self delay = %v", d)
		}
		for b := a + 1; b < 30; b++ {
			ab, ba := n.Delay(a, b), n.Delay(b, a)
			diff := ab - ba
			if diff < 0 {
				diff = -diff
			}
			if diff > time.Microsecond {
				t.Fatalf("asymmetric delay: %v vs %v", ab, ba)
			}
		}
	}
}

func TestTriangleInequalityMostlyHolds(t *testing.T) {
	// Shortest-path delays satisfy the triangle inequality exactly on the
	// router graph; LAN links can only add, so endpoint delays satisfy it
	// too (up to float noise).
	n := smallGATech(t, 4)
	rng := rand.New(rand.NewSource(4))
	n.Attach(15, rng)
	for a := 0; a < 15; a++ {
		for b := 0; b < 15; b++ {
			for c := 0; c < 15; c++ {
				direct := n.Delay(a, c)
				via := n.Delay(a, b) + n.Delay(b, c)
				if direct > via+2*time.Millisecond+time.Microsecond {
					// +2ms: the intermediate endpoint's LAN link is crossed
					// twice on the indirect path, which is extra delay, so
					// direct can never exceed via by more than float error;
					// allow tiny slack.
					t.Fatalf("triangle violated: d(%d,%d)=%v > %v", a, c, direct, via)
				}
			}
		}
	}
}

func TestRTTIsTwiceDelay(t *testing.T) {
	n := smallGATech(t, 5)
	rng := rand.New(rand.NewSource(5))
	n.Attach(10, rng)
	for a := 0; a < 10; a++ {
		for b := 0; b < 10; b++ {
			if n.RTT(a, b) != 2*n.Delay(a, b) {
				t.Fatalf("RTT != 2*Delay for (%d,%d)", a, b)
			}
		}
	}
}

func TestGATechDeterministicForSeed(t *testing.T) {
	a := smallGATech(t, 7)
	b := smallGATech(t, 7)
	rngA, rngB := rand.New(rand.NewSource(9)), rand.New(rand.NewSource(9))
	a.Attach(10, rngA)
	b.Attach(10, rngB)
	for x := 0; x < 10; x++ {
		for y := 0; y < 10; y++ {
			if a.Delay(x, y) != b.Delay(x, y) {
				t.Fatalf("same seed, different delays at (%d,%d)", x, y)
			}
		}
	}
}

func TestMercatorHopDelayQuantised(t *testing.T) {
	cfg := MercatorConfig{AS: 6, RoutersPerAS: 4, HopDelayMS: 5, InterASDegree: 2}
	n := Mercator(cfg, rand.New(rand.NewSource(8)))
	rng := rand.New(rand.NewSource(8))
	n.Attach(10, rng)
	for a := 0; a < 10; a++ {
		for b := 0; b < 10; b++ {
			d := n.Delay(a, b)
			ms := d / time.Millisecond
			if d != ms*time.Millisecond || ms%5 != 0 {
				t.Fatalf("Mercator delay %v not a multiple of 5ms hops", d)
			}
		}
	}
}

func TestMercatorPathsPreferFewASCrossings(t *testing.T) {
	// Two endpoints in the same AS must never route via another AS, so
	// their delay must be below the cost of even one AS crossing plus the
	// intra-AS diameter.
	cfg := MercatorConfig{AS: 5, RoutersPerAS: 6, HopDelayMS: 5, InterASDegree: 2}
	n := Mercator(cfg, rand.New(rand.NewSource(11)))
	// Endpoints 0 and 1 attach to routers 0 and 1, both in AS 0.
	a := n.AttachTo(0, 0)
	b := n.AttachTo(1, 0)
	d := n.Delay(a, b)
	maxIntra := time.Duration(cfg.RoutersPerAS) * 5 * time.Millisecond
	if d > maxIntra {
		t.Fatalf("intra-AS delay %v exceeds intra-AS diameter %v: route left the AS", d, maxIntra)
	}
}

func TestAttachToValidatesRouter(t *testing.T) {
	n := CorpNet(CorpNetConfig{Hubs: 3, EdgeRouters: 5}, rand.New(rand.NewSource(1)))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad router index")
		}
	}()
	n.AttachTo(9999, 1)
}

func TestLANLinkContributes(t *testing.T) {
	n := smallGATech(t, 12)
	a := n.AttachTo(0, 1) // 1 ms LAN
	b := n.AttachTo(0, 1) // same router
	if got, want := n.Delay(a, b), 2*time.Millisecond; got != want {
		t.Fatalf("same-router endpoint delay = %v, want %v (two LAN links)", got, want)
	}
}

func TestDelayCacheConsistency(t *testing.T) {
	n := smallGATech(t, 13)
	rng := rand.New(rand.NewSource(13))
	n.Attach(10, rng)
	first := n.Delay(2, 7)
	for i := 0; i < 5; i++ {
		if n.Delay(2, 7) != first {
			t.Fatal("cached delay changed between calls")
		}
	}
}

func TestCorpNetDeepLocality(t *testing.T) {
	// The paper's low CorpNet RDP rests on deep locality: same-site pairs
	// are dramatically closer than the average pair (short campus links
	// vs world-wide core delays). Check the min/mean delay ratio is far
	// smaller than GATech's.
	rng := rand.New(rand.NewSource(21))
	corp := CorpNet(DefaultCorpNet(), rng)
	ga := GATech(DefaultGATech(), rng)
	corp.Attach(60, rng)
	ga.Attach(60, rng)
	minMeanRatio := func(n *Network) float64 {
		var sum, min time.Duration
		count := 0
		for a := 0; a < 60; a++ {
			for b := a + 1; b < 60; b++ {
				d := n.Delay(a, b)
				sum += d
				if min == 0 || d < min {
					min = d
				}
				count++
			}
		}
		return float64(min) / (float64(sum) / float64(count))
	}
	rc, rg := minMeanRatio(corp), minMeanRatio(ga)
	if rc >= rg {
		t.Fatalf("CorpNet min/mean ratio %.4f >= GATech %.4f; expected deeper locality", rc, rg)
	}
}

func BenchmarkDelayColdCache(b *testing.B) {
	n := GATech(DefaultGATech(), rand.New(rand.NewSource(1)))
	rng := rand.New(rand.NewSource(1))
	n.Attach(512, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.srcVecs = make(map[int][]float32)
		for j := 0; j < 32; j++ {
			n.Delay(j, 511-j)
		}
	}
}

func BenchmarkDelayWarmCache(b *testing.B) {
	n := GATech(DefaultGATech(), rand.New(rand.NewSource(1)))
	rng := rand.New(rand.NewSource(1))
	n.Attach(512, rng)
	for j := 0; j < 512; j++ {
		n.Delay(j, 511-j)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Delay(i%512, (i*7)%512)
	}
}
