package topology

import (
	"math/rand"
)

// GATechConfig parameterises the transit-stub generator. The zero value is
// not useful; start from DefaultGATech. The paper's instance has 10 transit
// domains with an average of 5 routers each, 10 stub domains per transit
// router and an average of 10 routers per stub domain (5050 routers total).
type GATechConfig struct {
	TransitDomains    int
	RoutersPerTransit int
	StubsPerRouter    int
	RoutersPerStub    int
}

// DefaultGATech returns the paper's GATech configuration (5050 routers).
func DefaultGATech() GATechConfig {
	return GATechConfig{TransitDomains: 10, RoutersPerTransit: 5, StubsPerRouter: 10, RoutersPerStub: 10}
}

// Scaled shrinks the topology by roughly factor in router count while
// keeping its shape, for fast tests and benchmarks.
func (c GATechConfig) Scaled(factor int) GATechConfig {
	if factor <= 1 {
		return c
	}
	c.StubsPerRouter = max(1, c.StubsPerRouter/factor)
	c.RoutersPerStub = max(2, c.RoutersPerStub)
	return c
}

// GATech generates a transit-stub topology. Stub domains attach to exactly
// one transit router, so the routing hierarchy is enforced by construction:
// no stub domain can act as transit.
func GATech(cfg GATechConfig, rng *rand.Rand) *Network {
	transit := cfg.TransitDomains * cfg.RoutersPerTransit
	stubs := transit * cfg.StubsPerRouter
	total := transit + stubs*cfg.RoutersPerStub
	n := newNetwork("gatech", MetricRTT, total)

	// Transit domains: each is a well-connected cluster; domains are linked
	// by long core edges arranged in a ring plus random chords.
	domains := make([][]int, cfg.TransitDomains)
	next := 0
	for d := range domains {
		for r := 0; r < cfg.RoutersPerTransit; r++ {
			domains[d] = append(domains[d], next)
			next++
		}
		n.connectCluster(domains[d], cfg.RoutersPerTransit/2, 5, 20, rng)
	}
	for d := range domains {
		e := (d + 1) % len(domains)
		a := domains[d][rng.Intn(len(domains[d]))]
		b := domains[e][rng.Intn(len(domains[e]))]
		delay := 20 + rng.Float64()*40
		n.addEdge(a, b, delay, delay)
	}
	for i := 0; i < cfg.TransitDomains; i++ { // extra inter-domain chords
		d, e := rng.Intn(len(domains)), rng.Intn(len(domains))
		if d == e {
			continue
		}
		a := domains[d][rng.Intn(len(domains[d]))]
		b := domains[e][rng.Intn(len(domains[e]))]
		delay := 20 + rng.Float64()*40
		n.addEdge(a, b, delay, delay)
	}

	// Stub domains: a small cluster hanging off one transit router.
	for t := 0; t < transit; t++ {
		for s := 0; s < cfg.StubsPerRouter; s++ {
			ids := make([]int, cfg.RoutersPerStub)
			for r := range ids {
				ids[r] = next
				next++
			}
			n.connectCluster(ids, cfg.RoutersPerStub/3, 1, 5, rng)
			link := 2 + rng.Float64()*8
			n.addEdge(t, ids[rng.Intn(len(ids))], link, link)
		}
	}
	return n
}

// MercatorConfig parameterises the AS-level topology. The paper's Mercator
// graph has 102,639 routers in 2,662 autonomous systems; the default here is
// scaled down (the full size is reachable by setting the fields) because the
// relevant property for the evaluation is the flatter, hop-count-metric
// delay space, not the raw size.
type MercatorConfig struct {
	AS            int
	RoutersPerAS  int
	HopDelayMS    float64 // delay assigned to one IP hop
	InterASDegree int     // average extra inter-AS edges per AS
}

// DefaultMercator returns a 250-AS, ~5000-router instance.
func DefaultMercator() MercatorConfig {
	return MercatorConfig{AS: 250, RoutersPerAS: 20, HopDelayMS: 5, InterASDegree: 3}
}

// Mercator generates an AS-structured topology routed AS-path-first: inter-AS
// edges carry a large routing-weight penalty, so shortest-weight routes
// minimise the number of AS crossings before minimising router hops — the
// hierarchical routing policy described in the paper. The proximity metric
// is the IP hop count (every edge costs HopDelayMS of delay, so delay is
// proportional to hops).
func Mercator(cfg MercatorConfig, rng *rand.Rand) *Network {
	total := cfg.AS * cfg.RoutersPerAS
	n := newNetwork("mercator", MetricHops, total)

	routers := make([][]int, cfg.AS)
	next := 0
	for a := range routers {
		for r := 0; r < cfg.RoutersPerAS; r++ {
			routers[a] = append(routers[a], next)
			next++
		}
		// Intra-AS edges: weight 1 per hop. The sparse chord count keeps
		// intra-AS paths several hops long, as in the measured Internet.
		ids := routers[a]
		perm := rng.Perm(len(ids))
		for i := 1; i < len(perm); i++ {
			n.addEdge(ids[perm[i-1]], ids[perm[i]], 1, cfg.HopDelayMS)
		}
		for i := 0; i < len(ids)/8; i++ {
			x, y := ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]
			if x != y {
				n.addEdge(x, y, 1, cfg.HopDelayMS)
			}
		}
	}

	// AS-level overlay: preferential attachment for a power-law-ish degree
	// distribution, as observed in the real AS graph.
	targets := []int{0}
	for a := 1; a < cfg.AS; a++ {
		peer := targets[rng.Intn(len(targets))]
		connectAS(n, routers, a, peer, cfg, rng)
		targets = append(targets, a, peer)
		for extra := 0; extra < cfg.InterASDegree-1; extra++ {
			p := targets[rng.Intn(len(targets))]
			if p != a {
				connectAS(n, routers, a, p, cfg, rng)
			}
		}
	}
	return n
}

func connectAS(n *Network, routers [][]int, a, b int, cfg MercatorConfig, rng *rand.Rand) {
	const asPenalty = 1e6
	x := routers[a][rng.Intn(len(routers[a]))]
	y := routers[b][rng.Intn(len(routers[b]))]
	n.addEdge(x, y, 1+asPenalty, cfg.HopDelayMS)
}

// CorpNetConfig parameterises the corporate-network topology (298 routers in
// the paper, measured on the world-wide Microsoft corporate network).
type CorpNetConfig struct {
	Hubs        int // world-wide core sites
	EdgeRouters int // building/branch routers hanging off hubs
}

// DefaultCorpNet returns the paper's 298-router size.
func DefaultCorpNet() CorpNetConfig { return CorpNetConfig{Hubs: 30, EdgeRouters: 268} }

// CorpNet generates a small two-level corporate network: a well-connected
// core of world-wide hub sites with wide-area delays, and edge routers
// attached to hubs by short campus links. The proximity metric is minimum
// RTT. The wide core-to-edge delay ratio is what gives the paper its low
// CorpNet RDP: proximity-aware hops within a site are nearly free compared
// with the one long hop any route must take.
func CorpNet(cfg CorpNetConfig, rng *rand.Rand) *Network {
	total := cfg.Hubs + cfg.EdgeRouters
	n := newNetwork("corpnet", MetricRTT, total)
	hubs := make([]int, cfg.Hubs)
	for i := range hubs {
		hubs[i] = i
	}
	n.connectCluster(hubs, cfg.Hubs*2, 20, 150, rng)
	for e := 0; e < cfg.EdgeRouters; e++ {
		r := cfg.Hubs + e
		h := hubs[rng.Intn(len(hubs))]
		d := 2 + rng.Float64()*4
		n.addEdge(r, h, d, d)
	}
	return n
}
