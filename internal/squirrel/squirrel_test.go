package squirrel

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"mspastry/internal/eventsim"
	"mspastry/internal/hotspot"
	"mspastry/internal/id"
	"mspastry/internal/netmodel"
	"mspastry/internal/pastry"
	"mspastry/internal/topology"
)

// simCluster is a small simulated overlay with a Squirrel proxy per node.
type simCluster struct {
	sim     *eventsim.Simulator
	nw      *netmodel.Network
	proxies []*Proxy
	fetches int
}

func newCluster(t *testing.T, n int, seed int64) *simCluster {
	t.Helper()
	sim := eventsim.New(seed)
	topo := topology.CorpNet(topology.CorpNetConfig{Hubs: 6, EdgeRouters: 30}, rand.New(rand.NewSource(seed)))
	nw := netmodel.New(sim, topo, 0)
	c := &simCluster{sim: sim, nw: nw}
	origin := OriginFunc(func(url string) ([]byte, error) {
		c.fetches++
		return []byte("body-of-" + url), nil
	})
	cfg := pastry.DefaultConfig()
	cfg.L = 8
	cfg.PNS = false
	first := topo.Attach(n, sim.Rand())
	var seedRef pastry.NodeRef
	for i := 0; i < n; i++ {
		ep := nw.NewEndpoint(first + i)
		ref := pastry.NodeRef{ID: id.Random(sim.Rand()), Addr: ep.Addr()}
		node, err := pastry.NewNode(ref, cfg, ep, nil)
		if err != nil {
			t.Fatal(err)
		}
		ep.Bind(node)
		proxy := New(node, origin, DefaultConfig())
		c.proxies = append(c.proxies, proxy)
		if i == 0 {
			node.Bootstrap()
			seedRef = ref
		} else {
			node.Join(seedRef)
		}
		sim.RunUntil(sim.Now() + 5*time.Second)
	}
	sim.RunUntil(sim.Now() + time.Minute)
	for i, p := range c.proxies {
		if !p.Node().Active() {
			t.Fatalf("node %d not active", i)
		}
	}
	return c
}

func (c *simCluster) settle(d time.Duration) { c.sim.RunUntil(c.sim.Now() + d) }

func TestFirstRequestMissesThenRemoteHit(t *testing.T) {
	c := newCluster(t, 12, 1)
	var outcomes []Outcome
	record := func(body []byte, o Outcome) {
		if o != Failed && string(body) != "body-of-http://x.test/a" {
			t.Fatalf("wrong body %q", body)
		}
		outcomes = append(outcomes, o)
	}
	// First request from proxy 3: must go to the origin.
	c.proxies[3].Get("http://x.test/a", record)
	c.settle(10 * time.Second)
	// Second request from a different proxy: the home node has it now.
	c.proxies[7].Get("http://x.test/a", record)
	c.settle(10 * time.Second)
	// Third request from the same proxy: local cache.
	c.proxies[7].Get("http://x.test/a", record)
	c.settle(time.Second)
	want := []Outcome{MissOrigin, HitRemote, HitLocal}
	if len(outcomes) != len(want) {
		t.Fatalf("outcomes = %v, want %v", outcomes, want)
	}
	for i := range want {
		if outcomes[i] != want[i] {
			t.Fatalf("outcomes = %v, want %v", outcomes, want)
		}
	}
	if c.fetches != 1 {
		t.Fatalf("origin fetches = %d, want 1", c.fetches)
	}
}

func TestEveryURLHasOneHomeFetch(t *testing.T) {
	c := newCluster(t, 10, 2)
	rng := rand.New(rand.NewSource(7))
	const urls = 30
	done := 0
	for i := 0; i < urls; i++ {
		url := fmt.Sprintf("http://site%d.test/page", i)
		// Two requests per URL from random distinct proxies.
		for j := 0; j < 2; j++ {
			c.proxies[rng.Intn(len(c.proxies))].Get(url, func([]byte, Outcome) { done++ })
			c.settle(5 * time.Second)
		}
	}
	if done != urls*2 {
		t.Fatalf("completed %d of %d requests", done, urls*2)
	}
	// Each URL fetched from the origin at most... exactly once unless the
	// same proxy asked twice with a local hit; with distinct home nodes it
	// is exactly once per URL.
	if c.fetches != urls {
		t.Fatalf("origin fetches = %d, want %d (home-store dedup)", c.fetches, urls)
	}
}

func TestHomeNodeFailureRefetches(t *testing.T) {
	c := newCluster(t, 12, 3)
	url := "http://y.test/obj"
	key := id.FromKey(url)
	got := 0
	c.proxies[0].Get(url, func([]byte, Outcome) { got++ })
	c.settle(10 * time.Second)
	// Find and fail the home node.
	var home *Proxy
	for _, p := range c.proxies {
		if p.Stats().HomeFetches > 0 {
			home = p
			break
		}
	}
	if home == nil {
		t.Fatal("no home node recorded a fetch")
	}
	if ep, ok := c.nw.Endpoint(home.Node().Ref().Addr); ok {
		ep.Fail()
	}
	c.settle(3 * time.Minute) // let the overlay repair
	// The object must be re-fetchable through the new home node.
	c.proxies[5].Get(url, func(body []byte, o Outcome) {
		if o == Failed {
			t.Fatal("request failed after home node crash")
		}
		got++
	})
	c.settle(15 * time.Second)
	if got != 2 {
		t.Fatalf("completed %d of 2 requests", got)
	}
	if c.fetches != 2 {
		t.Fatalf("origin fetches = %d, want 2 (cache lost with home node)", c.fetches)
	}
	_ = key
}

func TestRequesterIsOwnHomeNode(t *testing.T) {
	c := newCluster(t, 6, 4)
	// Find a URL whose home node is proxy 0 by trying candidates.
	self := c.proxies[0].Node().Ref().ID
	var url string
	for i := 0; ; i++ {
		candidate := fmt.Sprintf("http://self.test/%d", i)
		key := id.FromKey(candidate)
		best := 0
		for j, p := range c.proxies {
			if id.CloserToKey(key, p.Node().Ref().ID, c.proxies[best].Node().Ref().ID) {
				best = j
			}
		}
		if c.proxies[best].Node().Ref().ID == self {
			url = candidate
			break
		}
		if i > 10000 {
			t.Fatal("no self-homed URL found")
		}
	}
	outcome := Outcome(0)
	c.proxies[0].Get(url, func(_ []byte, o Outcome) { outcome = o })
	c.settle(5 * time.Second)
	if outcome != MissOrigin {
		t.Fatalf("self-homed request outcome = %v, want miss-origin", outcome)
	}
	c.proxies[0].Get(url, func(_ []byte, o Outcome) { outcome = o })
	c.settle(5 * time.Second)
	if outcome != HitLocal && outcome != HitRemote {
		t.Fatalf("second self-homed request = %v, want a hit", outcome)
	}
}

func TestLRUEviction(t *testing.T) {
	c := newBodyCache(3)
	keys := make([]id.ID, 5)
	for i := range keys {
		keys[i] = id.New(0, uint64(i+1))
		c.Put(hotspot.Entry{Key: keys[i], Value: []byte{byte(i)}})
	}
	if c.Len() != 3 {
		t.Fatalf("lru len = %d, want 3", c.Len())
	}
	if _, ok := c.Get(keys[0]); ok {
		t.Fatal("oldest entry not evicted")
	}
	if _, ok := c.Get(keys[4]); !ok {
		t.Fatal("newest entry missing")
	}
	// Touch key 2 then insert: key 3 should be the eviction victim.
	c.Get(keys[2])
	c.Put(hotspot.Entry{Key: id.New(0, 99)})
	if _, ok := c.Get(keys[2]); !ok {
		t.Fatal("recently used entry evicted")
	}
	if _, ok := c.Get(keys[3]); ok {
		t.Fatal("LRU order not respected")
	}
}

func TestRequestCodecRoundTrip(t *testing.T) {
	buf := encodeRequest(42, "http://example.test/path?q=1")
	reqID, url, ok := decodeRequest(buf)
	if !ok || reqID != 42 || url != "http://example.test/path?q=1" {
		t.Fatalf("request round trip: %v %v %v", reqID, url, ok)
	}
	rbuf := encodeResponse(42, []byte("hello"), HitRemote)
	rid, body, outcome, ok := decodeResponse(rbuf)
	if !ok || rid != 42 || string(body) != "hello" || outcome != HitRemote {
		t.Fatalf("response round trip: %v %q %v %v", rid, body, outcome, ok)
	}
	if _, _, ok := decodeRequest([]byte{9, 9}); ok {
		t.Fatal("garbage request accepted")
	}
	if _, _, _, ok := decodeResponse([]byte{}); ok {
		t.Fatal("garbage response accepted")
	}
}

func TestStatsCounting(t *testing.T) {
	c := newCluster(t, 8, 5)
	c.proxies[1].Get("http://stats.test/x", func([]byte, Outcome) {})
	c.settle(10 * time.Second)
	s := c.proxies[1].Stats()
	if s.Requests != 1 {
		t.Fatalf("requests = %d", s.Requests)
	}
	total := s.LocalHits + s.RemoteHits + s.OriginMiss + s.Failures
	if total != 1 {
		t.Fatalf("outcome counters = %d, want 1", total)
	}
}
