// Package squirrel implements a decentralized peer-to-peer web cache in
// the style of Squirrel (Iyer, Rowstron, Druschel, PODC 2002), the
// application the paper uses to validate its simulator (Figure 8).
//
// Each participating machine runs a Squirrel proxy on an MSPastry node.
// Web object keys are the SHA-1 of the object's URL; the key's root node
// is the object's "home node" and caches it (the home-store model). A
// request is routed through the overlay to the home node, which answers
// from its cache or fetches from the origin server and then answers; the
// response travels back in a single direct message.
package squirrel

import (
	"encoding/binary"
	"fmt"

	"mspastry/internal/hotspot"
	"mspastry/internal/id"
	"mspastry/internal/pastry"
)

// Origin abstracts the origin web server: it produces the body for a URL.
// In the simulator this is synthetic; in a deployment it would issue a real
// HTTP request.
type Origin interface {
	Fetch(url string) ([]byte, error)
}

// OriginFunc adapts a function to the Origin interface.
type OriginFunc func(url string) ([]byte, error)

// Fetch implements Origin.
func (f OriginFunc) Fetch(url string) ([]byte, error) { return f(url) }

// Outcome classifies how a request was satisfied.
type Outcome int

const (
	// HitLocal means the local proxy cache had a fresh copy.
	HitLocal Outcome = iota + 1
	// HitRemote means the home node had the object cached.
	HitRemote
	// MissOrigin means the home node fetched the object from the origin.
	MissOrigin
	// Failed means the request errored or timed out.
	Failed
)

func (o Outcome) String() string {
	switch o {
	case HitLocal:
		return "hit-local"
	case HitRemote:
		return "hit-remote"
	case MissOrigin:
		return "miss-origin"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Stats counts cache activity on one proxy.
type Stats struct {
	Requests    uint64
	LocalHits   uint64
	RemoteHits  uint64
	OriginMiss  uint64
	Failures    uint64
	HomeServes  uint64 // requests served by this node as a home node
	HomeFetches uint64 // origin fetches performed as a home node
}

// Proxy is one Squirrel instance on an overlay node. It implements
// pastry.App. All methods must be called from the node's Env context.
type Proxy struct {
	node   *pastry.Node
	origin Origin

	// home cache: objects this node stores as home node.
	home *hotspot.Cache
	// local cache: objects this node requested recently (browser cache).
	local *hotspot.Cache

	nextReq uint64
	pending map[uint64]pendingReq

	stats Stats
}

// Config sizes the proxy caches.
type Config struct {
	HomeCacheEntries  int
	LocalCacheEntries int
}

// DefaultConfig returns a modest cache sizing.
func DefaultConfig() Config {
	return Config{HomeCacheEntries: 4096, LocalCacheEntries: 512}
}

// New attaches a Squirrel proxy to node. It registers itself as the node's
// application layer.
func New(node *pastry.Node, origin Origin, cfg Config) *Proxy {
	p := &Proxy{
		node:    node,
		origin:  origin,
		home:    newBodyCache(cfg.HomeCacheEntries),
		local:   newBodyCache(cfg.LocalCacheEntries),
		pending: make(map[uint64]pendingReq),
	}
	node.SetApp(p)
	return p
}

// Stats returns a snapshot of the proxy's counters.
func (p *Proxy) Stats() Stats { return p.stats }

// Node returns the underlying overlay node.
func (p *Proxy) Node() *pastry.Node { return p.node }

// Get requests a URL. done is invoked exactly once with the body and the
// outcome (from the node's Env context). Requests to a crashed node fail
// immediately.
func (p *Proxy) Get(url string, done func(body []byte, outcome Outcome)) {
	p.stats.Requests++
	key := id.FromKey(url)
	if e, ok := p.local.Get(key); ok {
		p.stats.LocalHits++
		done(e.Value, HitLocal)
		return
	}
	p.nextReq++
	reqID := p.nextReq
	p.pending[reqID] = pendingReq{key: key, done: done}
	payload := encodeRequest(reqID, url)
	if _, ok := p.node.Lookup(key, payload); !ok {
		delete(p.pending, reqID)
		p.stats.Failures++
		done(nil, Failed)
	}
}

// Deliver implements pastry.App: the node is the home node for the
// requested object.
func (p *Proxy) Deliver(lk *pastry.Lookup) {
	reqID, url, ok := decodeRequest(lk.Payload)
	if !ok {
		return // not a squirrel request (foreign traffic on a shared ring)
	}
	p.stats.HomeServes++
	e, hit := p.home.Get(lk.Key)
	body := e.Value
	if !hit {
		fetched, err := p.origin.Fetch(url)
		if err != nil {
			p.respond(lk.Origin, reqID, nil, Failed)
			return
		}
		p.stats.HomeFetches++
		body = fetched
		p.home.Put(hotspot.Entry{Key: lk.Key, Value: body})
	}
	outcome := HitRemote
	if !hit {
		outcome = MissOrigin
	}
	if lk.Origin.ID == p.node.Ref().ID {
		// The requester is its own home node: complete locally.
		p.complete(reqID, body, outcome)
		return
	}
	p.respond(lk.Origin, reqID, body, outcome)
}

// Forward implements pastry.App: Squirrel does not intercept routing.
func (p *Proxy) Forward(*pastry.Lookup) bool { return true }

// Direct implements pastry.App: a response from a home node.
func (p *Proxy) Direct(from pastry.NodeRef, payload []byte) {
	reqID, body, outcome, ok := decodeResponse(payload)
	if !ok {
		return
	}
	p.complete(reqID, body, outcome)
}

// pendingReq tracks one in-flight request.
type pendingReq struct {
	key  id.ID
	done func([]byte, Outcome)
}

func (p *Proxy) complete(reqID uint64, body []byte, outcome Outcome) {
	req, ok := p.pending[reqID]
	if !ok {
		return // duplicate or expired response
	}
	delete(p.pending, reqID)
	switch outcome {
	case HitRemote:
		p.stats.RemoteHits++
	case MissOrigin:
		p.stats.OriginMiss++
	case Failed:
		p.stats.Failures++
	}
	if outcome != Failed && body != nil {
		p.local.Put(hotspot.Entry{Key: req.key, Value: body})
	}
	req.done(body, outcome)
}

func (p *Proxy) respond(to pastry.NodeRef, reqID uint64, body []byte, outcome Outcome) {
	p.node.SendDirect(to, encodeResponse(reqID, body, outcome))
}

// Wire formats for the squirrel payloads: a 1-byte kind, then fields.
const (
	kindRequest byte = iota + 1
	kindResponse
)

func encodeRequest(reqID uint64, url string) []byte {
	buf := make([]byte, 0, 16+len(url))
	buf = append(buf, kindRequest)
	buf = binary.AppendUvarint(buf, reqID)
	return append(buf, url...)
}

func decodeRequest(buf []byte) (reqID uint64, url string, ok bool) {
	if len(buf) < 2 || buf[0] != kindRequest {
		return 0, "", false
	}
	v, n := binary.Uvarint(buf[1:])
	if n <= 0 {
		return 0, "", false
	}
	return v, string(buf[1+n:]), true
}

func encodeResponse(reqID uint64, body []byte, outcome Outcome) []byte {
	buf := make([]byte, 0, 16+len(body))
	buf = append(buf, kindResponse, byte(outcome))
	buf = binary.AppendUvarint(buf, reqID)
	return append(buf, body...)
}

func decodeResponse(buf []byte) (reqID uint64, body []byte, outcome Outcome, ok bool) {
	if len(buf) < 3 || buf[0] != kindResponse {
		return 0, nil, 0, false
	}
	outcome = Outcome(buf[1])
	v, n := binary.Uvarint(buf[2:])
	if n <= 0 {
		return 0, nil, 0, false
	}
	return v, buf[2+n:], outcome, true
}

// newBodyCache builds a proxy body cache on the shared hotspot cache:
// single shard, segmented-LRU eviction, no frequency admission (the
// Squirrel model is a plain bounded cache).
func newBodyCache(max int) *hotspot.Cache {
	return hotspot.New(hotspot.Config{Capacity: max, Shards: 1})
}
