package admin

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"mspastry/internal/dht"
	"mspastry/internal/id"
	"mspastry/internal/pastry"
	"mspastry/internal/telemetry"
	"mspastry/internal/transport"
)

// liveNode bundles one UDP transport, its node, DHT store and telemetry,
// the way cmd/mspastry-node wires them.
type liveNode struct {
	tr    *transport.UDP
	node  *pastry.Node
	store *dht.Store
	reg   *telemetry.Registry
}

func startLiveNode(t *testing.T, seed int64) *liveNode {
	t.Helper()
	tr, err := transport.Listen("127.0.0.1:0", seed)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })

	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(64)
	obs := telemetry.NewOverlay(reg, tracer, telemetry.OverlayOptions{})
	tr.SetMetricsSink(telemetry.NewTransportMetrics(reg))

	cfg := pastry.DefaultConfig()
	node, err := tr.CreateNode(id.ID{}, cfg, obs)
	if err != nil {
		t.Fatal(err)
	}
	ln := &liveNode{tr: tr, node: node, reg: reg}
	tr.DoSync(func(n *pastry.Node) {
		ln.store = dht.New(n, tr.Env(), dht.DefaultConfig())
	})
	reg.OnCollect(func() {
		tr.DoSync(func(n *pastry.Node) {
			if n == nil {
				return
			}
			telemetry.RecordNodeCounters(reg, n.Stats())
			telemetry.RecordDHTCounters(reg, ln.store.Counters(), ln.store.LocalObjects())
			telemetry.RecordStoreStats(reg, ln.store.StoreStats())
		})
	})
	return ln
}

func (ln *liveNode) waitActive(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var active bool
		ln.tr.DoSync(func(n *pastry.Node) { active = n.Active() })
		if active {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("node did not become active")
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestTwoNodeOverlayAdmin is the live end-to-end check: boot two nodes
// over real UDP sockets, store and fetch a value through the DHT, and
// assert the admin endpoint serves non-empty overlay counters with the
// same metric names the simulator emits.
func TestTwoNodeOverlayAdmin(t *testing.T) {
	a := startLiveNode(t, 1)
	a.tr.DoSync(func(n *pastry.Node) { n.Bootstrap() })
	a.waitActive(t)

	b := startLiveNode(t, 2)
	seedRef := pastry.NodeRef{ID: a.node.Ref().ID, Addr: a.tr.Addr()}
	b.tr.DoSync(func(n *pastry.Node) { n.Join(seedRef) })
	b.waitActive(t)

	srv, err := Serve("127.0.0.1:0", a.reg, Options{
		Status: func() any {
			var leaf int
			a.tr.DoSync(func(n *pastry.Node) { leaf = n.Leaf().Size() })
			return map[string]any{"id": a.node.Ref().ID.String(), "leaf": leaf}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Drive application traffic through node B so the overlay routes it.
	key := id.FromKey("greeting")
	putDone := make(chan error, 1)
	b.tr.Do(func(*pastry.Node) {
		b.store.Put(key, []byte("hello"), func(err error) { putDone <- err })
	})
	if err := <-putDone; err != nil {
		t.Fatalf("put: %v", err)
	}
	type result struct {
		v   []byte
		err error
	}
	getDone := make(chan result, 1)
	b.tr.Do(func(*pastry.Node) {
		b.store.Get(key, func(v []byte, err error) { getDone <- result{v, err} })
	})
	if res := <-getDone; res.err != nil || string(res.v) != "hello" {
		t.Fatalf("get: %q, %v", res.v, res.err)
	}

	base := "http://" + srv.Addr()
	code, metrics := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"# TYPE mspastry_joins_total counter",
		"mspastry_joins_total 1",
		"# TYPE mspastry_transport_msgs_sent_total counter",
		"mspastry_transport_msgs_sent_total{category=",
		"mspastry_transport_datagrams_sent_total",
		"mspastry_node_heartbeats_sent",
		"mspastry_dht_sync_rounds",
		"mspastry_store_objects",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if strings.Contains(metrics, "mspastry_transport_msgs_sent_total{category=\"leafset\"} 0\n") {
		t.Error("leafset message counter is zero on an active node")
	}

	code, status := get(t, base+"/status")
	if code != http.StatusOK {
		t.Fatalf("/status status %d", code)
	}
	var doc struct {
		Status  map[string]any          `json:"status"`
		Metrics []telemetry.MetricValue `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(status), &doc); err != nil {
		t.Fatalf("/status is not valid JSON: %v\n%s", err, status)
	}
	if doc.Status["id"] != a.node.Ref().ID.String() {
		t.Errorf("/status id = %v", doc.Status["id"])
	}
	if leaf, _ := doc.Status["leaf"].(float64); leaf < 1 {
		t.Errorf("/status leaf = %v, want >= 1", doc.Status["leaf"])
	}
	if len(doc.Metrics) == 0 {
		t.Error("/status metrics empty")
	}

	code, _ = get(t, base+"/debug/pprof/")
	if code != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", code)
	}

	// /traces 404s when no tracer was configured.
	if code, _ = get(t, base+"/traces"); code != http.StatusNotFound {
		t.Errorf("/traces without tracer: status %d, want 404", code)
	}
}

// TestTracesEndpoint serves a tracer that has recorded a synthetic
// delivered lookup and checks the JSON shape.
func TestTracesEndpoint(t *testing.T) {
	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(8)
	refs := make([]pastry.NodeRef, 3)
	for i := range refs {
		refs[i] = pastry.NodeRef{ID: id.FromKey(fmt.Sprint("n", i)), Addr: fmt.Sprintf("10.0.0.%d:1", i)}
	}
	lk := &pastry.Lookup{TraceID: 42, Key: id.FromKey("k"), Origin: refs[0]}
	tracer.Begin(lk, 0)
	tracer.Hop(lk, refs[0], refs[1], pastry.HopForward, time.Millisecond)
	tracer.Hop(lk, refs[1], refs[2], pastry.HopForward, 2*time.Millisecond)
	tracer.Deliver(lk, refs[2], 3*time.Millisecond)

	srv, err := Serve("127.0.0.1:0", reg, Options{Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, body := get(t, "http://"+srv.Addr()+"/traces")
	if code != http.StatusOK {
		t.Fatalf("/traces status %d", code)
	}
	var doc struct {
		Stats  telemetry.TraceStats `json:"stats"`
		Traces []lookupTraceJSON    `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/traces is not valid JSON: %v\n%s", err, body)
	}
	if doc.Stats.Delivered != 1 || doc.Stats.Reconstructed != 1 {
		t.Fatalf("trace stats = %+v", doc.Stats)
	}
	if len(doc.Traces) != 1 {
		t.Fatalf("got %d traces", len(doc.Traces))
	}
	tr0 := doc.Traces[0]
	if tr0.TraceID != 42 || !tr0.Delivered || len(tr0.Hops) != 2 {
		t.Fatalf("trace = %+v", tr0)
	}
	want := []string{refs[0].ID.String(), refs[1].ID.String(), refs[2].ID.String()}
	if len(tr0.Path) != 3 || tr0.Path[0] != want[0] || tr0.Path[2] != want[2] {
		t.Fatalf("path = %v, want %v", tr0.Path, want)
	}
}
