// Package admin serves a live node's observability surface over HTTP:
//
//	/metrics        telemetry registry in Prometheus text format
//	/status         JSON snapshot (leaf set, routing table, counters)
//	/traces         recently completed lookup hop traces, as JSON
//	/debug/pprof/   the standard net/http/pprof handlers
//
// The server is read-only and unauthenticated; bind it to loopback (the
// default in mspastry-node) unless the network is trusted.
package admin

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"mspastry/internal/telemetry"
)

// Options configures the optional endpoints.
type Options struct {
	// Status, when set, backs /status: it is called once per request and
	// its result is rendered as JSON. It runs on an HTTP goroutine, so it
	// must do its own synchronisation (e.g. transport.DoSync).
	Status func() any
	// Tracer, when set, backs /traces.
	Tracer *telemetry.Tracer
}

// Server is a running admin endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr (for example "127.0.0.1:0") and serves the registry
// until Close.
func Serve(addr string, reg *telemetry.Registry, opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("admin: listen %q: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		var status any
		if opts.Status != nil {
			status = opts.Status()
		}
		writeJSON(w, map[string]any{
			"status":  status,
			"metrics": reg.Snapshot(),
		})
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		if opts.Tracer == nil {
			http.Error(w, "hop tracing disabled", http.StatusNotFound)
			return
		}
		n := 50
		if s := r.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				n = v
			}
		}
		writeJSON(w, map[string]any{
			"stats":  opts.Tracer.Stats(),
			"traces": traceJSON(opts.Tracer.Recent(n)),
		})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address, e.g. "127.0.0.1:43125".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// hopJSON and lookupTraceJSON flatten the tracer's records into a stable,
// self-describing JSON shape (IDs as hex strings, durations in seconds).
type hopJSON struct {
	From  string  `json:"from"`
	To    string  `json:"to"`
	Index int     `json:"index"`
	At    float64 `json:"at_seconds"`
	Cause string  `json:"cause"`
	Retx  bool    `json:"retx"`
}

type lookupTraceJSON struct {
	TraceID   uint64    `json:"trace_id"`
	Key       string    `json:"key"`
	Origin    string    `json:"origin"`
	Delivered bool      `json:"delivered"`
	Root      string    `json:"root,omitempty"`
	DropCause string    `json:"drop_cause,omitempty"`
	Issued    float64   `json:"issued_seconds"`
	DoneAt    float64   `json:"done_seconds"`
	Retx      int       `json:"retx"`
	Path      []string  `json:"path,omitempty"`
	Hops      []hopJSON `json:"hops"`
}

func traceJSON(traces []*telemetry.LookupTrace) []lookupTraceJSON {
	out := make([]lookupTraceJSON, 0, len(traces))
	for _, t := range traces {
		j := lookupTraceJSON{
			TraceID:   t.TraceID,
			Key:       t.Key.String(),
			Origin:    t.Origin.ID.String(),
			Delivered: t.Delivered,
			DropCause: t.DropCause,
			Issued:    t.Issued.Seconds(),
			DoneAt:    t.DoneAt.Seconds(),
			Retx:      t.Retx,
		}
		if t.Delivered {
			j.Root = t.Root.ID.String()
		}
		if path, ok := t.Path(); ok {
			for _, ref := range path {
				j.Path = append(j.Path, ref.ID.String())
			}
		}
		for _, h := range t.Hops {
			j.Hops = append(j.Hops, hopJSON{
				From:  h.From.ID.String(),
				To:    h.To.ID.String(),
				Index: h.Index,
				At:    h.At.Seconds(),
				Cause: h.Cause,
				Retx:  h.Retx,
			})
		}
		out = append(out, j)
	}
	return out
}
