package hotspot

import (
	"container/list"
	"sync"
	"time"

	"mspastry/internal/id"
	"mspastry/internal/store"
)

// Entry is one cached versioned read: the value plus the version vector
// (Version, Origin) and digest the key's root assigned, so invalidation
// by supersession and anti-entropy purging can reason about freshness
// without re-fetching.
type Entry struct {
	Key     id.ID
	Version uint64
	Origin  uint64
	Dig     store.Digest
	Value   []byte
	// StoredAt is the (simulated or wall) time the entry was cached,
	// expressed as a duration since process start. Callers enforce any
	// TTL; the cache only uses it for PurgeOlderThan.
	StoredAt time.Duration
}

// Newer reports whether version vector (v, o) strictly supersedes
// (ev, eo), using the same version-then-origin total order as
// store.Object.Supersedes.
func Newer(v, o, ev, eo uint64) bool {
	if v != ev {
		return v > ev
	}
	return o > eo
}

// Config shapes a Cache.
type Config struct {
	// Capacity bounds the total entry count across all shards.
	Capacity int
	// Shards is the number of independently locked segments (rounded up
	// to a power of two, minimum 1).
	Shards int
	// Admission enables TinyLFU frequency admission: a full shard only
	// evicts its victim when the incoming key's sketch estimate exceeds
	// the victim's. When false the cache is a plain segmented LRU.
	Admission bool
}

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	Hits          uint64
	Misses        uint64
	Admitted      uint64
	Rejected      uint64
	Evictions     uint64
	Invalidations uint64
	Purged        uint64
	Entries       int
	Capacity      int
	// SketchOccupancy is the popularity sketch's non-zero fraction
	// (zero when admission is disabled).
	SketchOccupancy float64
}

// HitRatio returns hits / (hits + misses), or 0 with no traffic.
func (s Stats) HitRatio() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Cache is a sharded, size-bounded cache of versioned entries with
// segmented-LRU eviction (probation + protected segments, as in SLRU)
// and optional TinyLFU admission backed by the count-min Sketch.
type Cache struct {
	shards    []*shard
	shardMask uint64
	capacity  int

	mu     sync.Mutex // guards sketch
	sketch *Sketch
}

type shard struct {
	mu        sync.Mutex
	cap       int
	protCap   int
	items     map[id.ID]*list.Element
	probation *list.List // new arrivals; victims come from here first
	protected *list.List // re-referenced entries

	hits, misses, admitted, rejected, evictions, invalidations, purged uint64
}

type slot struct {
	entry     Entry
	protected bool
}

// New builds a cache from cfg, normalizing degenerate values (capacity
// and shard count are clamped to at least 1).
func New(cfg Config) *Cache {
	if cfg.Capacity < 1 {
		cfg.Capacity = 1
	}
	ns := 1
	for ns < cfg.Shards {
		ns <<= 1
	}
	c := &Cache{shardMask: uint64(ns - 1), capacity: cfg.Capacity}
	if cfg.Admission {
		c.sketch = NewSketch(cfg.Capacity, 4)
	}
	per := (cfg.Capacity + ns - 1) / ns
	for i := 0; i < ns; i++ {
		protCap := per * 4 / 5
		if protCap >= per {
			protCap = per - 1
		}
		c.shards = append(c.shards, &shard{
			cap:       per,
			protCap:   protCap,
			items:     make(map[id.ID]*list.Element),
			probation: list.New(),
			protected: list.New(),
		})
	}
	return c
}

func (c *Cache) shardFor(key id.ID) *shard {
	return c.shards[mix(key.Hi^key.Lo)&c.shardMask]
}

// Touch records one observation of key in the popularity sketch without
// touching the cache proper. No-op when admission is disabled.
func (c *Cache) Touch(key id.ID) {
	if c.sketch == nil {
		return
	}
	c.mu.Lock()
	c.sketch.Add(key)
	c.mu.Unlock()
}

// Estimate returns the popularity sketch's estimate for key (0 when
// admission is disabled).
func (c *Cache) Estimate(key id.ID) uint32 {
	if c.sketch == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sketch.Estimate(key)
}

// Get returns the cached entry for key, promoting it into the
// protected segment. Staleness (TTL) is the caller's concern.
func (c *Cache) Get(key id.ID) (Entry, bool) {
	c.Touch(key)
	sh := c.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.items[key]
	if !ok {
		sh.misses++
		return Entry{}, false
	}
	sh.hits++
	sh.promote(el)
	return el.Value.(*slot).entry, true
}

// promote moves a hit entry to the protected segment's front, demoting
// the protected LRU back to probation if the segment overflows.
func (sh *shard) promote(el *list.Element) {
	s := el.Value.(*slot)
	if s.protected {
		sh.protected.MoveToFront(el)
		return
	}
	sh.probation.Remove(el)
	s.protected = true
	sh.items[s.entry.Key] = sh.protected.PushFront(s)
	for sh.protected.Len() > sh.protCap {
		back := sh.protected.Back()
		bs := back.Value.(*slot)
		sh.protected.Remove(back)
		bs.protected = false
		sh.items[bs.entry.Key] = sh.probation.PushFront(bs)
	}
}

// Put inserts or refreshes an entry and reports whether it resides in
// the cache afterwards. An existing strictly-newer version is never
// downgraded; a full shard consults the admission sketch (when enabled)
// before evicting its victim.
func (c *Cache) Put(e Entry) bool {
	if c.sketch != nil {
		c.mu.Lock()
		c.sketch.Add(e.Key)
		c.mu.Unlock()
	}
	sh := c.shardFor(e.Key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.items[e.Key]; ok {
		s := el.Value.(*slot)
		if Newer(s.entry.Version, s.entry.Origin, e.Version, e.Origin) {
			return true // cached copy already supersedes the incoming one
		}
		s.entry = e
		if s.protected {
			sh.protected.MoveToFront(el)
		} else {
			sh.probation.MoveToFront(el)
		}
		return true
	}
	if sh.probation.Len()+sh.protected.Len() >= sh.cap {
		victim := sh.probation.Back()
		fromProbation := victim != nil
		if victim == nil {
			victim = sh.protected.Back()
		}
		if victim == nil {
			return false
		}
		vs := victim.Value.(*slot)
		if c.sketch != nil {
			c.mu.Lock()
			keep := c.sketch.Estimate(e.Key) <= c.sketch.Estimate(vs.entry.Key)
			c.mu.Unlock()
			if keep {
				sh.rejected++
				return false
			}
		}
		if fromProbation {
			sh.probation.Remove(victim)
		} else {
			sh.protected.Remove(victim)
		}
		delete(sh.items, vs.entry.Key)
		sh.evictions++
	}
	sh.items[e.Key] = sh.probation.PushFront(&slot{entry: e})
	sh.admitted++
	return true
}

// InvalidateUnder removes the cached entry for key if version vector
// (version, origin) strictly supersedes it, reporting whether an entry
// was dropped.
func (c *Cache) InvalidateUnder(key id.ID, version, origin uint64) bool {
	sh := c.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.items[key]
	if !ok {
		return false
	}
	s := el.Value.(*slot)
	if !Newer(version, origin, s.entry.Version, s.entry.Origin) {
		return false
	}
	sh.remove(el)
	sh.invalidations++
	return true
}

// Delete unconditionally removes key's entry.
func (c *Cache) Delete(key id.ID) {
	sh := c.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.items[key]; ok {
		sh.remove(el)
	}
}

func (sh *shard) remove(el *list.Element) {
	s := el.Value.(*slot)
	if s.protected {
		sh.protected.Remove(el)
	} else {
		sh.probation.Remove(el)
	}
	delete(sh.items, s.entry.Key)
}

// PurgeOlderThan drops every entry stored before cutoff and returns the
// number purged. This is the anti-entropy backstop: run once per sweep
// interval, no cached entry can outlive one interval.
func (c *Cache) PurgeOlderThan(cutoff time.Duration) int {
	total := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		var stale []*list.Element
		for _, el := range sh.items {
			if el.Value.(*slot).entry.StoredAt < cutoff {
				stale = append(stale, el)
			}
		}
		for _, el := range stale {
			sh.remove(el)
		}
		sh.purged += uint64(len(stale))
		total += len(stale)
		sh.mu.Unlock()
	}
	return total
}

// Len returns the current entry count.
func (c *Cache) Len() int {
	n := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += len(sh.items)
		sh.mu.Unlock()
	}
	return n
}

// Stats aggregates counters across shards.
func (c *Cache) Stats() Stats {
	st := Stats{Capacity: c.capacity}
	for _, sh := range c.shards {
		sh.mu.Lock()
		st.Hits += sh.hits
		st.Misses += sh.misses
		st.Admitted += sh.admitted
		st.Rejected += sh.rejected
		st.Evictions += sh.evictions
		st.Invalidations += sh.invalidations
		st.Purged += sh.purged
		st.Entries += len(sh.items)
		sh.mu.Unlock()
	}
	if c.sketch != nil {
		c.mu.Lock()
		st.SketchOccupancy = c.sketch.Occupancy()
		c.mu.Unlock()
	}
	return st
}
