package hotspot

import (
	"encoding/binary"

	"mspastry/internal/id"
	"mspastry/internal/store"
)

// Wire kinds for the path-caching protocol. They live above 0x40 so
// they can never collide with the dht request/response kinds (1..16);
// the dht dispatches any payload whose first byte is >= KindBase here.
const (
	// KindBase is the dispatch floor for hotspot messages.
	KindBase byte = 0x40

	// KindGetVia is a routed Get that accumulates caching hops: the
	// first hop and the (continually overwritten) most recent hop ride
	// along, so the root learns which nodes to deposit hot replies on.
	// Layout: kind | reqID uvarint | nvia 1 | nvia x (id 16 | addrLen
	// uvarint | addr).
	KindGetVia byte = 0x41

	// KindCachedReply answers a KindGetVia lookup, either from the root
	// (authoritative) or from a caching hop that short-circuited the
	// route. Layout: kind | flags 1 (bit0 found, bit1 fromCache) |
	// reqID uvarint | version uvarint | origin uvarint | digest 16 |
	// value.
	KindCachedReply byte = 0x42

	// KindDeposit pushes a versioned entry onto a caching hop.
	// Layout: kind | key 16 | version uvarint | origin uvarint |
	// digest 16 | value.
	KindDeposit byte = 0x43

	// KindInvalidate tells a caching hop that (version, origin) now
	// supersedes whatever it holds for key. Layout: kind | key 16 |
	// version uvarint | origin uvarint.
	KindInvalidate byte = 0x44
)

// MaxVia bounds the via list: slot 0 is the route's first hop, slot 1
// is overwritten at every later hop and so ends up the penultimate one.
const MaxVia = 2

// maxViaAddr bounds an encoded via address, keeping decode allocation
// proportional to sane inputs.
const maxViaAddr = 255

// Via identifies a caching hop accumulated along a lookup route.
type Via struct {
	ID   id.ID
	Addr string
}

const (
	flagFound     byte = 1 << 0
	flagFromCache byte = 1 << 1
)

// AppendGetVia encodes a KindGetVia request.
func AppendGetVia(dst []byte, reqID uint64, vias []Via) []byte {
	if len(vias) > MaxVia {
		vias = vias[:MaxVia]
	}
	dst = append(dst, KindGetVia)
	dst = binary.AppendUvarint(dst, reqID)
	dst = append(dst, byte(len(vias)))
	for _, v := range vias {
		dst = append(dst, v.ID.Bytes()...)
		addr := v.Addr
		if len(addr) > maxViaAddr {
			addr = addr[:maxViaAddr]
		}
		dst = binary.AppendUvarint(dst, uint64(len(addr)))
		dst = append(dst, addr...)
	}
	return dst
}

// EncodeGetVia allocates and encodes a KindGetVia request.
func EncodeGetVia(reqID uint64, vias []Via) []byte {
	return AppendGetVia(nil, reqID, vias)
}

// DecodeGetVia parses a KindGetVia payload.
func DecodeGetVia(buf []byte) (reqID uint64, vias []Via, ok bool) {
	if len(buf) < 3 || buf[0] != KindGetVia {
		return 0, nil, false
	}
	rest := buf[1:]
	reqID, n := binary.Uvarint(rest)
	if n <= 0 {
		return 0, nil, false
	}
	rest = rest[n:]
	if len(rest) < 1 {
		return 0, nil, false
	}
	count := int(rest[0])
	rest = rest[1:]
	if count > MaxVia {
		return 0, nil, false
	}
	for i := 0; i < count; i++ {
		if len(rest) < 16 {
			return 0, nil, false
		}
		var v Via
		v.ID = id.FromBytes(rest[:16])
		rest = rest[16:]
		alen, n := binary.Uvarint(rest)
		if n <= 0 || alen > maxViaAddr || uint64(len(rest[n:])) < alen {
			return 0, nil, false
		}
		rest = rest[n:]
		v.Addr = string(rest[:alen])
		rest = rest[alen:]
		vias = append(vias, v)
	}
	if len(rest) != 0 {
		return 0, nil, false
	}
	return reqID, vias, true
}

// AppendCachedReply encodes a KindCachedReply.
func AppendCachedReply(dst []byte, reqID uint64, found, fromCache bool, version, origin uint64, dig store.Digest, value []byte) []byte {
	dst = append(dst, KindCachedReply)
	var flags byte
	if found {
		flags |= flagFound
	}
	if fromCache {
		flags |= flagFromCache
	}
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, reqID)
	dst = binary.AppendUvarint(dst, version)
	dst = binary.AppendUvarint(dst, origin)
	dst = append(dst, dig[:]...)
	dst = append(dst, value...)
	return dst
}

// EncodeCachedReply allocates and encodes a KindCachedReply.
func EncodeCachedReply(reqID uint64, found, fromCache bool, version, origin uint64, dig store.Digest, value []byte) []byte {
	return AppendCachedReply(nil, reqID, found, fromCache, version, origin, dig, value)
}

// DecodeCachedReply parses a KindCachedReply payload. A not-found reply
// must carry an empty value.
func DecodeCachedReply(buf []byte) (reqID uint64, found, fromCache bool, version, origin uint64, dig store.Digest, value []byte, ok bool) {
	if len(buf) < 2 || buf[0] != KindCachedReply {
		return 0, false, false, 0, 0, store.Digest{}, nil, false
	}
	flags := buf[1]
	if flags&^(flagFound|flagFromCache) != 0 {
		return 0, false, false, 0, 0, store.Digest{}, nil, false
	}
	found = flags&flagFound != 0
	fromCache = flags&flagFromCache != 0
	rest := buf[2:]
	var n int
	reqID, n = binary.Uvarint(rest)
	if n <= 0 {
		return 0, false, false, 0, 0, store.Digest{}, nil, false
	}
	rest = rest[n:]
	version, n = binary.Uvarint(rest)
	if n <= 0 {
		return 0, false, false, 0, 0, store.Digest{}, nil, false
	}
	rest = rest[n:]
	origin, n = binary.Uvarint(rest)
	if n <= 0 || len(rest[n:]) < store.DigestLen {
		return 0, false, false, 0, 0, store.Digest{}, nil, false
	}
	rest = rest[n:]
	copy(dig[:], rest[:store.DigestLen])
	value = rest[store.DigestLen:]
	if !found && len(value) != 0 {
		return 0, false, false, 0, 0, store.Digest{}, nil, false
	}
	return reqID, found, fromCache, version, origin, dig, value, true
}

// AppendDeposit encodes a KindDeposit carrying entry e.
func AppendDeposit(dst []byte, e Entry) []byte {
	dst = append(dst, KindDeposit)
	dst = append(dst, e.Key.Bytes()...)
	dst = binary.AppendUvarint(dst, e.Version)
	dst = binary.AppendUvarint(dst, e.Origin)
	dst = append(dst, e.Dig[:]...)
	dst = append(dst, e.Value...)
	return dst
}

// EncodeDeposit allocates and encodes a KindDeposit.
func EncodeDeposit(e Entry) []byte { return AppendDeposit(nil, e) }

// DecodeDeposit parses a KindDeposit payload. Version 0 is invalid: a
// deposit always carries a root-assigned write.
func DecodeDeposit(buf []byte) (Entry, bool) {
	if len(buf) < 17 || buf[0] != KindDeposit {
		return Entry{}, false
	}
	var e Entry
	e.Key = id.FromBytes(buf[1:17])
	rest := buf[17:]
	var n int
	e.Version, n = binary.Uvarint(rest)
	if n <= 0 || e.Version == 0 {
		return Entry{}, false
	}
	rest = rest[n:]
	e.Origin, n = binary.Uvarint(rest)
	if n <= 0 || len(rest[n:]) < store.DigestLen {
		return Entry{}, false
	}
	rest = rest[n:]
	copy(e.Dig[:], rest[:store.DigestLen])
	e.Value = rest[store.DigestLen:]
	return e, true
}

// AppendInvalidate encodes a KindInvalidate.
func AppendInvalidate(dst []byte, key id.ID, version, origin uint64) []byte {
	dst = append(dst, KindInvalidate)
	dst = append(dst, key.Bytes()...)
	dst = binary.AppendUvarint(dst, version)
	dst = binary.AppendUvarint(dst, origin)
	return dst
}

// EncodeInvalidate allocates and encodes a KindInvalidate.
func EncodeInvalidate(key id.ID, version, origin uint64) []byte {
	return AppendInvalidate(nil, key, version, origin)
}

// DecodeInvalidate parses a KindInvalidate payload.
func DecodeInvalidate(buf []byte) (key id.ID, version, origin uint64, ok bool) {
	if len(buf) < 19 || buf[0] != KindInvalidate {
		return id.ID{}, 0, 0, false
	}
	key = id.FromBytes(buf[1:17])
	rest := buf[17:]
	var n int
	version, n = binary.Uvarint(rest)
	if n <= 0 {
		return id.ID{}, 0, 0, false
	}
	rest = rest[n:]
	origin, n = binary.Uvarint(rest)
	if n <= 0 || len(rest[n:]) != 0 {
		return id.ID{}, 0, 0, false
	}
	return key, version, origin, true
}
