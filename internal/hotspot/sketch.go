// Package hotspot provides popularity-aware read caching for hot keys:
// a count-min sketch popularity estimator, a sharded size-bounded cache
// with TinyLFU-style frequency admission and segmented-LRU eviction, and
// the wire codecs for the path-caching protocol (cached replies,
// deposits, and version-supersession invalidations).
//
// Everything in this package is deterministic: the sketch ages by
// operation count rather than wall clock, and no randomness is consumed
// anywhere, so enabling the subsystem in the simulator perturbs no
// existing rand streams.
package hotspot

import "mspastry/internal/id"

// Sketch is a count-min sketch over key IDs. Estimates are upper bounds
// on observed frequency; collisions only inflate, never deflate. To
// keep estimates fresh under shifting popularity, all counters are
// halved after a fixed number of increments (count-based aging, as in
// TinyLFU), which is deterministic across runs.
type Sketch struct {
	rows  [][]uint32
	mask  uint64
	adds  int
	limit int
}

// rowSeeds are arbitrary odd constants mixed into the per-row hash.
var rowSeeds = [...]uint64{
	0x9e3779b97f4a7c15,
	0xbf58476d1ce4e5b9,
	0x94d049bb133111eb,
	0xd6e8feb86659fd93,
}

// NewSketch builds a sketch with the given width (rounded up to a power
// of two, minimum 16) and depth (clamped to [1, 4]). The aging sample
// size is 8x the width: once that many Adds accumulate, every counter
// is halved.
func NewSketch(width, depth int) *Sketch {
	if depth < 1 {
		depth = 1
	}
	if depth > len(rowSeeds) {
		depth = len(rowSeeds)
	}
	w := 16
	for w < width {
		w <<= 1
	}
	s := &Sketch{mask: uint64(w - 1), limit: 8 * w}
	s.rows = make([][]uint32, depth)
	for i := range s.rows {
		s.rows[i] = make([]uint32, w)
	}
	return s
}

// mix is the splitmix64 finalizer; it decorrelates the per-row indices
// derived from the same 128-bit key.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (s *Sketch) index(row int, key id.ID) uint64 {
	return mix(key.Hi^mix(key.Lo^rowSeeds[row])) & s.mask
}

// Add records one observation of key.
func (s *Sketch) Add(key id.ID) {
	for r := range s.rows {
		c := &s.rows[r][s.index(r, key)]
		if *c < 1<<30 {
			*c++
		}
	}
	s.adds++
	if s.adds >= s.limit {
		s.age()
	}
}

// Estimate returns the sketch's frequency estimate for key (the minimum
// over rows).
func (s *Sketch) Estimate(key id.ID) uint32 {
	est := uint32(1<<31 - 1)
	for r := range s.rows {
		if c := s.rows[r][s.index(r, key)]; c < est {
			est = c
		}
	}
	return est
}

// age halves every counter, forgetting old popularity.
func (s *Sketch) age() {
	for r := range s.rows {
		for i := range s.rows[r] {
			s.rows[r][i] >>= 1
		}
	}
	s.adds = 0
}

// Occupancy reports the fraction of non-zero counters, a coarse gauge
// of how saturated (and thus collision-prone) the sketch is.
func (s *Sketch) Occupancy() float64 {
	var nz, total int
	for r := range s.rows {
		total += len(s.rows[r])
		for _, c := range s.rows[r] {
			if c != 0 {
				nz++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(nz) / float64(total)
}
