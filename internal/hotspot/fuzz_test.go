package hotspot

import (
	"bytes"
	"testing"

	"mspastry/internal/id"
	"mspastry/internal/store"
)

// FuzzDecodeHotspotMessage throws arbitrary bytes at every hotspot
// decoder. Decoders must never panic, and anything they accept must
// re-encode to a payload that decodes to the same values (value-level
// roundtrip: uvarints may be non-minimal in the input, so byte-level
// equality is only asserted on the second pass).
func FuzzDecodeHotspotMessage(f *testing.F) {
	k := id.New(0x1122334455667788, 0x99aabbccddeeff00)
	dig := store.Object{Key: k, Version: 1, Value: []byte("v")}.Digest()
	f.Add(EncodeGetVia(77, []Via{{ID: k, Addr: "host:1"}, {ID: k, Addr: "h2:2"}}))
	f.Add(EncodeCachedReply(12, true, true, 9, 4, dig, []byte("value")))
	f.Add(EncodeCachedReply(13, false, false, 0, 0, store.Digest{}, nil))
	f.Add(EncodeDeposit(Entry{Key: k, Version: 3, Origin: 2, Dig: dig, Value: []byte("vv")}))
	f.Add(EncodeInvalidate(k, 5, 6))
	f.Add([]byte{KindGetVia, 0x00, 0x02})
	f.Add([]byte{KindCachedReply, 0x04, 0x01})

	f.Fuzz(func(t *testing.T, buf []byte) {
		if reqID, vias, ok := DecodeGetVia(buf); ok {
			enc := EncodeGetVia(reqID, vias)
			r2, v2, ok2 := DecodeGetVia(enc)
			if !ok2 || r2 != reqID || len(v2) != len(vias) {
				t.Fatalf("GetVia re-decode mismatch: %v %d %v", ok2, r2, v2)
			}
			for i := range vias {
				if v2[i] != vias[i] {
					t.Fatalf("via %d changed: %+v -> %+v", i, vias[i], v2[i])
				}
			}
			if enc2 := EncodeGetVia(r2, v2); !bytes.Equal(enc, enc2) {
				t.Fatal("GetVia encoding not canonical on second pass")
			}
		}
		if reqID, found, fromCache, ver, org, dg, val, ok := DecodeCachedReply(buf); ok {
			enc := EncodeCachedReply(reqID, found, fromCache, ver, org, dg, val)
			r2, f2, c2, v2, o2, d2, val2, ok2 := DecodeCachedReply(enc)
			if !ok2 || r2 != reqID || f2 != found || c2 != fromCache ||
				v2 != ver || o2 != org || d2 != dg || !bytes.Equal(val2, val) {
				t.Fatal("CachedReply re-decode mismatch")
			}
		}
		if e, ok := DecodeDeposit(buf); ok {
			e2, ok2 := DecodeDeposit(EncodeDeposit(e))
			if !ok2 || e2.Key != e.Key || e2.Version != e.Version ||
				e2.Origin != e.Origin || e2.Dig != e.Dig || !bytes.Equal(e2.Value, e.Value) {
				t.Fatal("Deposit re-decode mismatch")
			}
		}
		if key, ver, org, ok := DecodeInvalidate(buf); ok {
			k2, v2, o2, ok2 := DecodeInvalidate(EncodeInvalidate(key, ver, org))
			if !ok2 || k2 != key || v2 != ver || o2 != org {
				t.Fatal("Invalidate re-decode mismatch")
			}
		}
	})
}
