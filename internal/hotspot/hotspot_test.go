package hotspot

import (
	"bytes"
	"testing"
	"time"

	"mspastry/internal/id"
	"mspastry/internal/store"
)

func key(i uint64) id.ID { return id.New(i, i*2654435761+1) }

func TestSketchCountsAndAges(t *testing.T) {
	s := NewSketch(64, 4)
	hot := key(1)
	for i := 0; i < 20; i++ {
		s.Add(hot)
	}
	if got := s.Estimate(hot); got < 20 {
		t.Fatalf("estimate for hot key = %d, want >= 20", got)
	}
	if got := s.Estimate(key(999)); got > 20 {
		t.Fatalf("cold key estimate = %d, should not exceed hot traffic", got)
	}
	// Drive past the aging sample size; the hot estimate must halve at
	// least once rather than grow without bound.
	for i := uint64(0); i < uint64(s.limit); i++ {
		s.Add(key(100 + i%50))
	}
	if got := s.Estimate(hot); got >= 20 {
		t.Fatalf("estimate after aging = %d, want < 20", got)
	}
	if occ := s.Occupancy(); occ <= 0 || occ > 1 {
		t.Fatalf("occupancy = %v, want in (0, 1]", occ)
	}
}

func TestSketchDeterministic(t *testing.T) {
	a, b := NewSketch(64, 4), NewSketch(64, 4)
	for i := uint64(0); i < 1000; i++ {
		k := key(i % 37)
		a.Add(k)
		b.Add(k)
	}
	for i := uint64(0); i < 37; i++ {
		if a.Estimate(key(i)) != b.Estimate(key(i)) {
			t.Fatalf("estimates diverged for key %d", i)
		}
	}
}

func TestCacheSegmentedLRU(t *testing.T) {
	c := New(Config{Capacity: 3, Shards: 1})
	for i := uint64(0); i < 3; i++ {
		c.Put(Entry{Key: key(i), Version: 1})
	}
	// Re-reference key 0: it moves to the protected segment and must
	// survive a stream of one-hit wonders that churn probation.
	if _, ok := c.Get(key(0)); !ok {
		t.Fatal("key 0 missing after insert")
	}
	for i := uint64(10); i < 20; i++ {
		c.Put(Entry{Key: key(i), Version: 1})
	}
	if _, ok := c.Get(key(0)); !ok {
		t.Fatal("protected key 0 was evicted by probation churn")
	}
	if got := c.Len(); got != 3 {
		t.Fatalf("len = %d, want 3", got)
	}
	st := c.Stats()
	if st.Evictions == 0 || st.Admitted == 0 {
		t.Fatalf("stats did not record churn: %+v", st)
	}
}

func TestCacheAdmissionFiltersOneHitWonders(t *testing.T) {
	c := New(Config{Capacity: 4, Shards: 1, Admission: true})
	hot := key(1)
	for i := 0; i < 10; i++ {
		c.Touch(hot)
	}
	c.Put(Entry{Key: hot, Version: 1})
	for i := uint64(100); i < 120; i++ {
		c.Put(Entry{Key: key(i), Version: 1})
	}
	if _, ok := c.Get(hot); !ok {
		t.Fatal("hot key evicted by cold scan despite admission filter")
	}
	if st := c.Stats(); st.Rejected == 0 {
		t.Fatalf("admission filter never rejected: %+v", st)
	}
	if c.Estimate(hot) == 0 {
		t.Fatal("estimate for touched key is zero")
	}
}

func TestCacheVersionSupersession(t *testing.T) {
	c := New(Config{Capacity: 8, Shards: 1})
	k := key(7)
	c.Put(Entry{Key: k, Version: 3, Origin: 9, Value: []byte("v3")})

	// An older deposit must not downgrade the cached version.
	c.Put(Entry{Key: k, Version: 2, Origin: 50, Value: []byte("v2")})
	if e, _ := c.Get(k); e.Version != 3 {
		t.Fatalf("cache downgraded to version %d", e.Version)
	}

	// Invalidation below or at the cached version is a no-op.
	if c.InvalidateUnder(k, 3, 9) {
		t.Fatal("invalidated by an equal version")
	}
	if c.InvalidateUnder(k, 2, 99) {
		t.Fatal("invalidated by an older version")
	}
	// Same version, higher origin wins (diverged-root tiebreak).
	if !c.InvalidateUnder(k, 3, 10) {
		t.Fatal("same-version higher-origin write did not invalidate")
	}
	if _, ok := c.Get(k); ok {
		t.Fatal("entry still cached after supersession")
	}
	if st := c.Stats(); st.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", st.Invalidations)
	}
}

func TestCachePurgeOlderThan(t *testing.T) {
	c := New(Config{Capacity: 8, Shards: 2})
	for i := uint64(0); i < 6; i++ {
		c.Put(Entry{Key: key(i), Version: 1, StoredAt: time.Duration(i) * time.Second})
	}
	if got := c.PurgeOlderThan(3 * time.Second); got != 3 {
		t.Fatalf("purged %d entries, want 3", got)
	}
	if _, ok := c.Get(key(2)); ok {
		t.Fatal("stale entry survived purge")
	}
	if _, ok := c.Get(key(4)); !ok {
		t.Fatal("fresh entry lost by purge")
	}
}

func TestCodecRoundTrips(t *testing.T) {
	vias := []Via{{ID: key(1), Addr: "10.0.0.1:9000"}, {ID: key(2), Addr: "10.0.0.2:9000"}}
	buf := EncodeGetVia(42, vias)
	reqID, got, ok := DecodeGetVia(buf)
	if !ok || reqID != 42 || len(got) != 2 || got[0] != vias[0] || got[1] != vias[1] {
		t.Fatalf("GetVia roundtrip: ok=%v reqID=%d vias=%v", ok, reqID, got)
	}

	dig := store.Object{Key: key(3), Version: 5, Value: []byte("x")}.Digest()
	buf = EncodeCachedReply(7, true, true, 5, 11, dig, []byte("hello"))
	reqID, found, fromCache, ver, org, gotDig, val, ok := DecodeCachedReply(buf)
	if !ok || reqID != 7 || !found || !fromCache || ver != 5 || org != 11 ||
		gotDig != dig || !bytes.Equal(val, []byte("hello")) {
		t.Fatalf("CachedReply roundtrip failed: %v %v %v %v %d %d", ok, reqID, found, fromCache, ver, org)
	}
	// Not-found replies must carry no value.
	if _, _, _, _, _, _, _, ok := DecodeCachedReply(EncodeCachedReply(7, false, false, 0, 0, store.Digest{}, []byte("x"))); ok {
		t.Fatal("accepted not-found reply with a value")
	}

	e := Entry{Key: key(4), Version: 9, Origin: 3, Dig: dig, Value: []byte("payload")}
	dec, ok := DecodeDeposit(EncodeDeposit(e))
	if !ok || dec.Key != e.Key || dec.Version != 9 || dec.Origin != 3 || dec.Dig != dig || !bytes.Equal(dec.Value, e.Value) {
		t.Fatalf("Deposit roundtrip failed: %+v", dec)
	}
	if _, ok := DecodeDeposit(EncodeDeposit(Entry{Key: key(4), Version: 0})); ok {
		t.Fatal("accepted version-0 deposit")
	}

	k, ver, org, ok := DecodeInvalidate(EncodeInvalidate(key(5), 6, 12))
	if !ok || k != key(5) || ver != 6 || org != 12 {
		t.Fatalf("Invalidate roundtrip: %v %v %d %d", ok, k, ver, org)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	bad := [][]byte{
		nil,
		{},
		{KindGetVia},
		{KindCachedReply, 0xff, 1},
		{KindDeposit, 1, 2, 3},
		{KindInvalidate, 0},
		append(EncodeInvalidate(key(1), 1, 1), 0xaa), // trailing byte
		EncodeGetVia(1, nil)[:2],
	}
	for i, buf := range bad {
		if _, _, ok := DecodeGetVia(buf); ok && len(buf) > 0 && buf[0] == KindGetVia {
			t.Errorf("case %d: DecodeGetVia accepted garbage", i)
		}
		if _, _, _, _, _, _, _, ok := DecodeCachedReply(buf); ok && len(buf) > 0 && buf[0] == KindCachedReply {
			t.Errorf("case %d: DecodeCachedReply accepted garbage", i)
		}
		if _, ok := DecodeDeposit(buf); ok && len(buf) > 0 && buf[0] == KindDeposit {
			t.Errorf("case %d: DecodeDeposit accepted garbage", i)
		}
		if _, _, _, ok := DecodeInvalidate(buf); ok && len(buf) > 0 && buf[0] == KindInvalidate {
			t.Errorf("case %d: DecodeInvalidate accepted garbage", i)
		}
	}
}
