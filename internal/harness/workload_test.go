package harness

import (
	"math/rand"
	"testing"
)

func TestZipfDeterministic(t *testing.T) {
	a := NewZipf(7, 64, 1.0)
	b := NewZipf(7, 64, 1.0)
	for i := 0; i < 64; i++ {
		if a.Key(i) != b.Key(i) {
			t.Fatalf("key set diverged at rank %d", i)
		}
	}
	ra, rb := rand.New(rand.NewSource(3)), rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		if a.Next(ra) != b.Next(rb) {
			t.Fatalf("sample sequence diverged at draw %d", i)
		}
	}
	if c := NewZipf(8, 64, 1.0); c.Key(0) == a.Key(0) {
		t.Fatal("different seeds produced the same key set")
	}
}

func TestZipfSkew(t *testing.T) {
	// s = 1.0 is the interesting exponent: math/rand's Zipf requires
	// s > 1, which is exactly why the harness rolls its own sampler.
	z := NewZipf(1, 100, 1.0)
	rng := rand.New(rand.NewSource(2))
	counts := make([]int, z.Len())
	const draws = 20000
	for i := 0; i < draws; i++ {
		counts[z.Rank(rng)]++
	}
	if counts[0] <= counts[1] || counts[1] <= counts[10] {
		t.Fatalf("popularity not monotone: rank0=%d rank1=%d rank10=%d",
			counts[0], counts[1], counts[10])
	}
	// Under zipf(1.0) over 100 keys, rank 0 carries ~19% of draws.
	if frac := float64(counts[0]) / draws; frac < 0.15 || frac > 0.25 {
		t.Fatalf("hottest key drew %.3f of traffic, want ~0.19", frac)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != draws {
		t.Fatalf("samples lost: %d of %d", total, draws)
	}
}
