// Package harness runs MSPastry evaluation experiments: it builds a
// topology, drives a churn trace through a simulated overlay with
// fault injection, generates lookup traffic, checks every delivery against
// the ground-truth root, and produces the windowed metrics the paper plots.
package harness

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"time"

	"mspastry/internal/eventsim"
	"mspastry/internal/id"
	"mspastry/internal/netmodel"
	"mspastry/internal/overload"
	"mspastry/internal/pastry"
	"mspastry/internal/stats"
	"mspastry/internal/telemetry"
	"mspastry/internal/topology"
	"mspastry/internal/trace"
)

// Config describes one simulation experiment.
type Config struct {
	// Topo is the network topology (required; see BuildTopology).
	Topo *topology.Network
	// Trace is the churn schedule (required).
	Trace *trace.Trace
	// Pastry is the protocol configuration.
	Pastry pastry.Config
	// LookupRate is application lookups per second per active node
	// (paper base: 0.01, Poisson, keys uniform).
	LookupRate float64
	// NetworkLoss is the uniform message loss probability.
	NetworkLoss float64
	// CoalesceWindow is how long coalescable control messages (acks,
	// heartbeats, probes) may wait to share a datagram with later traffic
	// to the same peer. Zero (the default) disables batching, reproducing
	// one-message-per-datagram behaviour exactly.
	CoalesceWindow time.Duration
	// CoalesceLongWindow is the extended wait budget for delay-tolerant
	// messages (heartbeats, distance reports, row announcements). Only
	// meaningful with a nonzero CoalesceWindow; keep it below the probe
	// timeout To so held heartbeats beat the Tls+To suspicion deadline.
	CoalesceLongWindow time.Duration
	// Window is the metric averaging window (paper: 10 min, or 1 h for
	// the Microsoft trace).
	Window time.Duration
	// SetupRamp spreads the trace's initially-active nodes' joins over
	// this interval before measurement starts.
	SetupRamp time.Duration
	// LossTimeout is how long a lookup may remain undelivered before it
	// counts as lost.
	LossTimeout time.Duration
	// Service bounds every endpoint's receive capacity (queue limit and
	// processing rate); see netmodel.ServiceModel. The zero value keeps
	// the classic infinite-capacity model.
	Service netmodel.ServiceModel
	// Faults is an optional scripted fault scenario (partitions, jitter,
	// delay spikes, duplication, reordering, per-link loss) applied on
	// top of the uniform loss model. Event times are measured times.
	Faults *FaultScript
	// Telemetry, when non-nil, receives the run's metrics under the same
	// metric names a live mspastry-node exports on /metrics, so sim
	// experiments and deployments feed identical dashboards.
	Telemetry *telemetry.Registry
	// TraceLookups records per-lookup hop traces (requires Telemetry);
	// the result carries the tracer and its route-reconstruction stats.
	TraceLookups bool
	// MaliciousFraction marks this fraction of slots Byzantine: their
	// nodes run the normal protocol but attack routing with
	// MaliciousBehaviors (see netmodel.Adversary). Zero disables the
	// adversary entirely and reproduces pre-adversary runs bit-for-bit.
	MaliciousFraction float64
	// MaliciousBehaviors selects the attacks mounted by malicious nodes;
	// zero defaults to netmodel.AdvAll when MaliciousFraction > 0.
	MaliciousBehaviors netmodel.Behavior
	// Workload selects the lookup key distribution: WorkloadUniform
	// (empty means uniform, the paper's model) or WorkloadZipf. The
	// uniform path is byte-for-byte the pre-workload behaviour.
	Workload string
	// ZipfS is the zipf exponent for WorkloadZipf; zero means 1.0
	// (classic web popularity).
	ZipfS float64
	// ZipfKeys is the popular key set size for WorkloadZipf; zero means
	// 1024.
	ZipfKeys int
	// Seed seeds all randomness (ids, lookup keys, loss, faults,
	// adversary selection).
	Seed int64
}

// DefaultConfig returns the paper's base experimental configuration for
// the given topology and trace.
func DefaultConfig(topo *topology.Network, tr *trace.Trace) Config {
	return Config{
		Topo:        topo,
		Trace:       tr,
		Pastry:      pastry.DefaultConfig(),
		LookupRate:  0.01,
		Window:      10 * time.Minute,
		SetupRamp:   2 * time.Minute,
		LossTimeout: time.Minute,
		Seed:        1,
	}
}

// Result carries everything an experiment produces.
type Result struct {
	Windows []stats.WindowStat
	Totals  stats.Totals
	JoinCDF []stats.CDFPoint
	// Aggregated protocol counters over all node instances.
	Counters pastry.Counters
	// NetworkDrops counts messages lost to injected faults (uniform loss,
	// per-link loss, partitions).
	NetworkDrops uint64
	// DropsByCause classifies every undelivered network message, telling
	// injected faults (loss, linkloss, partition) apart from churn
	// artifacts (unknown, dead or reincarnated destinations).
	DropsByCause [netmodel.NumDropCauses]uint64
	// FaultCounts tallies injected duplication and reordering.
	FaultCounts netmodel.FaultCounters
	// ShedByLane counts service-model queue sheds per priority lane (all
	// zero without Config.Service).
	ShedByLane [overload.NumLanes]uint64
	// Adversary tallies Byzantine attack activity (zero without
	// Config.MaliciousFraction).
	Adversary netmodel.AdversaryStats
	// Phases splits lookup outcomes into before/during/after the fault
	// window (zero value when no fault script was set).
	Phases stats.PhaseTotals
	// Recovery holds one entry per healed partition: the time from heal
	// to restored global ring consistency.
	Recovery []stats.RecoveryStat
	// SimEvents is the number of simulator events executed.
	SimEvents uint64
	// DropsByReason counts explicit lookup drops by protocol reason;
	// TimeoutLost counts lookups that silently never arrived.
	DropsByReason map[pastry.DropReason]int
	TimeoutLost   int
	// TrtMedian samples the self-tuned probing period at the end of the
	// run (median over live nodes).
	TrtMedian time.Duration
	// Tracer holds the per-lookup hop traces (nil unless TraceLookups was
	// set); TraceStats summarises route-path reconstruction.
	Tracer     *telemetry.Tracer
	TraceStats telemetry.TraceStats
}

// Run executes the experiment.
func Run(cfg Config) Result {
	r := newRun(cfg)
	return r.execute()
}

type run struct {
	cfg   Config
	sim   *eventsim.Simulator
	nw    *netmodel.Network
	col   *stats.Collector
	setup time.Duration

	slots  []*slot
	active *ring

	outstanding map[lookupKey]*outstandingLookup

	counters    pastry.Counters
	dropReasons map[pastry.DropReason]int
	timeoutLost int
	recovery    []stats.RecoveryStat

	// tel mirrors protocol events into the shared telemetry registry and
	// hop tracer (nil when cfg.Telemetry is unset).
	tel    *telemetry.Overlay
	tracer *telemetry.Tracer

	// adv is the configured Byzantine adversary (nil when
	// cfg.MaliciousFraction is zero).
	adv *netmodel.Adversary

	// zipf samples lookup keys when cfg.Workload is WorkloadZipf (nil
	// for the uniform workload).
	zipf *Zipf
}

type slot struct {
	ep   *netmodel.Endpoint
	node *pastry.Node
}

type lookupKey struct {
	origin string
	seq    uint64
}

type outstandingLookup struct {
	key     id.ID
	issued  time.Duration // measured-time (relative to setup end)
	originE int
}

func newRun(cfg Config) *run {
	if cfg.Topo == nil || cfg.Trace == nil {
		panic("harness: Topo and Trace are required")
	}
	if cfg.LossTimeout <= 0 {
		cfg.LossTimeout = time.Minute
	}
	if cfg.Window <= 0 {
		cfg.Window = 10 * time.Minute
	}
	sim := eventsim.New(cfg.Seed)
	nw := netmodel.New(sim, cfg.Topo, cfg.NetworkLoss)
	r := &run{
		cfg:         cfg,
		sim:         sim,
		nw:          nw,
		col:         stats.NewCollector(cfg.Trace.Duration, cfg.Window),
		setup:       cfg.SetupRamp,
		active:      &ring{},
		outstanding: make(map[lookupKey]*outstandingLookup),
		slots:       make([]*slot, cfg.Trace.Nodes),
		dropReasons: make(map[pastry.DropReason]int),
	}
	first := cfg.Topo.Attach(cfg.Trace.Nodes, sim.Rand())
	for i := range r.slots {
		r.slots[i] = &slot{ep: nw.NewEndpoint(first + i)}
	}
	switch cfg.Workload {
	case "", WorkloadUniform:
		// Uniform keys: the pre-workload behaviour, untouched.
	case WorkloadZipf:
		s := cfg.ZipfS
		if s == 0 {
			s = 1.0
		}
		n := cfg.ZipfKeys
		if n == 0 {
			n = 1024
		}
		// The popular key set comes from a dedicated stream keyed off
		// cfg.Seed, so zipf runs stay reproducible without perturbing
		// the simulator's other draws.
		r.zipf = NewZipf(cfg.Seed, n, s)
	default:
		panic("harness: unknown workload " + cfg.Workload)
	}
	if cfg.MaliciousFraction > 0 {
		if cfg.MaliciousFraction >= 1 {
			panic("harness: MaliciousFraction must be in [0,1)")
		}
		r.adv = nw.Adversary()
		b := cfg.MaliciousBehaviors
		if b == 0 {
			b = netmodel.AdvAll
		}
		r.adv.SetBehaviors(b)
		// Which slots are malicious is drawn from a dedicated stream so
		// the selection never perturbs the simulator's seeded randomness:
		// an f=0 run reproduces a no-adversary run bit-for-bit.
		sel := rand.New(rand.NewSource(cfg.Seed ^ 0x42d06c01))
		k := int(cfg.MaliciousFraction*float64(len(r.slots)) + 0.5)
		if k > len(r.slots) {
			k = len(r.slots)
		}
		for _, i := range sel.Perm(len(r.slots))[:k] {
			r.adv.Mark(r.slots[i].ep.Addr())
		}
	}
	if cfg.Telemetry != nil {
		if cfg.TraceLookups {
			r.tracer = telemetry.NewTracer(0)
		}
		r.tel = telemetry.NewOverlay(cfg.Telemetry, r.tracer,
			telemetry.OverlayOptions{SharedClock: true})
	}
	nw.SetCoalesceWindow(cfg.CoalesceWindow)
	nw.SetCoalesceLongWindow(cfg.CoalesceLongWindow)
	nw.SetServiceModel(cfg.Service)
	nw.OnSend(func(from *netmodel.Endpoint, to pastry.NodeRef, m pastry.Message, singleBytes int) {
		t := r.measured()
		r.col.MsgSent(t, m.Category(), singleBytes)
		if env, ok := m.(*pastry.Envelope); ok && env.Retx {
			r.col.Retransmit(t)
		}
	})
	nw.OnFrame(func(from *netmodel.Endpoint, f netmodel.FrameInfo) {
		r.col.DatagramSent(r.measured(), f.Control, f.Bytes, f.SingleBytes)
	})
	r.applyFaults()
	return r
}

// measured returns the current time relative to the start of measurement.
func (r *run) measured() time.Duration { return r.sim.Now() - r.setup }

func (r *run) execute() Result {
	cfg := r.cfg
	rng := r.sim.Rand()

	// Setup phase: the initially-active nodes join over the ramp.
	initial := append([]int(nil), cfg.Trace.Initial...)
	if len(initial) == 0 && len(cfg.Trace.Events) > 0 {
		// Open-world trace with no warm start: first join bootstraps.
	}
	for i, slotIdx := range initial {
		slotIdx := slotIdx
		if i == 0 {
			r.sim.At(0, func() { r.startNode(slotIdx, true) })
			continue
		}
		at := time.Duration(rng.Int63n(int64(r.setup)))
		r.sim.At(at, func() { r.startNode(slotIdx, false) })
	}

	// Churn injection: trace events shifted by the setup ramp.
	for _, ev := range cfg.Trace.Events {
		ev := ev
		at := r.setup + ev.At
		switch ev.Kind {
		case trace.Join:
			r.sim.At(at, func() { r.startNode(ev.Node, false) })
		case trace.Leave:
			r.sim.At(at, func() { r.failNode(ev.Node) })
		}
	}

	// Loss sweeper.
	var sweep func()
	sweep = func() {
		r.sweepLost()
		r.sim.After(cfg.LossTimeout/2, sweep)
	}
	r.sim.After(cfg.LossTimeout, sweep)

	r.sim.RunUntil(r.setup + cfg.Trace.Duration)

	// Final sweep: anything still outstanding past the timeout is lost.
	r.sweepLost()

	res := Result{
		Windows:       r.col.Finalize(),
		Totals:        r.col.Totals(),
		JoinCDF:       r.col.JoinLatencyCDF(),
		NetworkDrops:  r.nw.Drops,
		DropsByCause:  r.nw.DropsByCause,
		FaultCounts:   r.nw.FaultCounts,
		ShedByLane:    r.nw.ShedByLane,
		Phases:        r.col.Phases(),
		Recovery:      r.recovery,
		SimEvents:     r.sim.Steps(),
		DropsByReason: r.dropReasons,
		TimeoutLost:   r.timeoutLost,
	}
	if r.adv != nil {
		res.Adversary = r.adv.Stats
	}
	var trts []time.Duration
	for _, s := range r.slots {
		if s.node != nil && s.node.Alive() {
			r.absorbCounters(s.node)
			if s.node.Active() {
				trts = append(trts, s.node.Trt())
			}
		}
	}
	sort.Slice(trts, func(i, j int) bool { return trts[i] < trts[j] })
	if len(trts) > 0 {
		res.TrtMedian = trts[len(trts)/2]
	}
	res.Counters = r.counters
	if r.cfg.Telemetry != nil {
		// Mirror the run-aggregated node counters into the registry so a
		// metrics dump carries the same names a live node serves.
		telemetry.RecordNodeCounters(r.cfg.Telemetry, r.counters)
		r.cfg.Telemetry.Gauge("mspastry_trt_seconds",
			"Most recent self-tuned routing-table probing period Trt.").
			Set(res.TrtMedian.Seconds())
	}
	if r.tracer != nil {
		res.Tracer = r.tracer
		res.TraceStats = r.tracer.Stats()
	}
	return res
}

// startNode creates a fresh node instance on the slot's endpoint and joins
// it to the overlay (or bootstraps the very first overlay member).
func (r *run) startNode(slotIdx int, bootstrap bool) {
	s := r.slots[slotIdx]
	if s.node != nil && s.node.Alive() {
		return // duplicate join in trace; ignore
	}
	self := pastry.NodeRef{ID: id.Random(r.sim.Rand()), Addr: s.ep.Addr()}
	node, err := pastry.NewNode(self, r.cfg.Pastry, s.ep, (*runObserver)(r))
	if err != nil {
		panic(fmt.Sprintf("harness: %v", err))
	}
	node.SetSeedSource(func() (pastry.NodeRef, bool) { return r.randomActiveRef() })
	s.node = node
	s.ep.Bind(node)
	if bootstrap || r.active.len() == 0 {
		node.Bootstrap()
		return
	}
	if seed, ok := r.randomActiveRef(); ok {
		node.Join(seed)
	} else {
		node.Bootstrap()
	}
}

// failNode crashes the node currently bound to the slot.
func (r *run) failNode(slotIdx int) {
	s := r.slots[slotIdx]
	if s.node == nil || !s.node.Alive() {
		return
	}
	wasActive := s.node.Active()
	r.absorbCounters(s.node)
	s.ep.Fail()
	if wasActive {
		r.active.remove(s.node.Ref().ID)
		r.col.ActiveChanged(r.measured(), -1)
	}
}

func (r *run) absorbCounters(n *pastry.Node) {
	c := n.Stats()
	r.counters.SuppressedProbes += c.SuppressedProbes
	r.counters.SentRTProbes += c.SentRTProbes
	r.counters.SentReconnectProbes += c.SentReconnectProbes
	r.counters.SentHeartbeats += c.SentHeartbeats
	r.counters.Retransmits += c.Retransmits
	r.counters.FalsePositives += c.FalsePositives
	r.counters.DeliveredLookups += c.DeliveredLookups
	r.counters.RetryBudgetExhausted += c.RetryBudgetExhausted
	r.counters.BreakerOpens += c.BreakerOpens
	r.counters.BreakerReopens += c.BreakerReopens
	r.counters.BreakerCloses += c.BreakerCloses
	r.counters.SecureReports += c.SecureReports
	r.counters.SecureTestPass += c.SecureTestPass
	r.counters.SecureTestFail += c.SecureTestFail
	r.counters.SecureRedundantRounds += c.SecureRedundantRounds
	r.counters.SecureRedundantSends += c.SecureRedundantSends
	r.counters.SecureDistrusted += c.SecureDistrusted
	r.counters.SecureGiveUps += c.SecureGiveUps
}

func (r *run) randomActiveRef() (pastry.NodeRef, bool) {
	e, ok := r.active.random(r.sim.Rand())
	if !ok {
		return pastry.NodeRef{}, false
	}
	s := r.slots[e.slot]
	if s.node == nil {
		return pastry.NodeRef{}, false
	}
	return s.node.Ref(), true
}

// scheduleLookups runs the Poisson lookup generator for a node.
// nextKey draws one lookup key from the configured workload. The
// uniform branch is byte-identical to the pre-workload draw sequence.
func (r *run) nextKey() id.ID {
	if r.zipf != nil {
		return r.zipf.Next(r.sim.Rand())
	}
	return id.Random(r.sim.Rand())
}

func (r *run) scheduleLookups(n *pastry.Node) {
	if r.cfg.LookupRate <= 0 {
		return
	}
	mean := 1 / r.cfg.LookupRate
	var fire func()
	fire = func() {
		if !n.Alive() {
			return
		}
		key := r.nextKey()
		seq, ok := n.Lookup(key, nil)
		if ok {
			lk := lookupKey{origin: n.Ref().Addr, seq: seq}
			r.outstanding[lk] = &outstandingLookup{
				key:     key,
				issued:  r.measured(),
				originE: mustAtoi(n.Ref().Addr),
			}
			r.col.LookupIssued(r.measured())
		}
		r.sim.After(expDuration(r.sim, mean), fire)
	}
	r.sim.After(expDuration(r.sim, mean), fire)
}

func (r *run) slotBase() int { return r.slots[0].ep.Index() }

func mustAtoi(s string) int {
	v, err := strconv.Atoi(s)
	if err != nil {
		panic("harness: bad endpoint addr " + s)
	}
	return v
}

func expDuration(sim *eventsim.Simulator, meanSec float64) time.Duration {
	return time.Duration(sim.Rand().ExpFloat64() * meanSec * float64(time.Second))
}

// sweepLost marks outstanding lookups older than the loss timeout as lost.
func (r *run) sweepLost() {
	now := r.measured()
	for k, o := range r.outstanding {
		if now-o.issued >= r.cfg.LossTimeout {
			if o.issued >= 0 {
				r.col.LookupLost(o.issued)
				r.timeoutLost++
			}
			delete(r.outstanding, k)
		}
	}
}

// runObserver adapts *run to pastry.Observer (plus the TraceObserver and
// StatsObserver extensions, which it forwards to the telemetry overlay
// when one is configured).
type runObserver run

// Activated implements pastry.Observer: the node enters the ground-truth
// active set and starts generating lookups.
func (o *runObserver) Activated(n *pastry.Node, joinLatency time.Duration) {
	r := (*run)(o)
	slotIdx := mustAtoi(n.Ref().Addr) - r.slotBase()
	r.active.insert(n.Ref().ID, slotIdx)
	r.col.ActiveChanged(r.measured(), +1)
	if r.measured() >= 0 {
		r.col.JoinLatency(joinLatency)
	}
	if r.tel != nil {
		r.tel.Activated(n, joinLatency)
	}
	r.scheduleLookups(n)
}

// LookupIssued implements pastry.TraceObserver.
func (o *runObserver) LookupIssued(n *pastry.Node, lk *pastry.Lookup) {
	if r := (*run)(o); r.tel != nil {
		r.tel.LookupIssued(n, lk)
	}
}

// LookupHop implements pastry.TraceObserver.
func (o *runObserver) LookupHop(n *pastry.Node, lk *pastry.Lookup, to pastry.NodeRef, cause pastry.HopCause) {
	if r := (*run)(o); r.tel != nil {
		r.tel.LookupHop(n, lk, to, cause)
	}
}

// MessageSent implements pastry.StatsObserver.
func (o *runObserver) MessageSent(n *pastry.Node, cat pastry.Category, retx bool) {
	if r := (*run)(o); r.tel != nil {
		r.tel.MessageSent(n, cat, retx)
	}
}

// AckRTT implements pastry.StatsObserver.
func (o *runObserver) AckRTT(n *pastry.Node, to pastry.NodeRef, rtt time.Duration) {
	if r := (*run)(o); r.tel != nil {
		r.tel.AckRTT(n, to, rtt)
	}
}

// TrtTuned implements pastry.StatsObserver.
func (o *runObserver) TrtTuned(n *pastry.Node, trt time.Duration) {
	if r := (*run)(o); r.tel != nil {
		r.tel.TrtTuned(n, trt)
	}
}

// LeafSetRepair implements pastry.StatsObserver.
func (o *runObserver) LeafSetRepair(n *pastry.Node, cause string) {
	if r := (*run)(o); r.tel != nil {
		r.tel.LeafSetRepair(n, cause)
	}
}

// SecureVerdict implements pastry.SecureObserver.
func (o *runObserver) SecureVerdict(n *pastry.Node, verdict string) {
	if r := (*run)(o); r.tel != nil {
		r.tel.SecureVerdict(n, verdict)
	}
}

// SecureRedundant implements pastry.SecureObserver.
func (o *runObserver) SecureRedundant(n *pastry.Node, fanout int) {
	if r := (*run)(o); r.tel != nil {
		r.tel.SecureRedundant(n, fanout)
	}
}

// Delivered implements pastry.Observer: judge the delivery against the
// ground-truth root and record RDP.
func (o *runObserver) Delivered(n *pastry.Node, lk *pastry.Lookup) {
	r := (*run)(o)
	if r.tel != nil {
		r.tel.Delivered(n, lk)
	}
	k := lookupKey{origin: lk.Origin.Addr, seq: lk.Seq}
	out, ok := r.outstanding[k]
	if !ok {
		return // duplicate delivery, or issued before measurement
	}
	delete(r.outstanding, k)
	rootEntry, haveRoot := r.active.closest(out.key)
	correct := haveRoot && rootEntry.id == n.Ref().ID
	var netDelay time.Duration
	if haveRoot {
		rootEp := r.slots[rootEntry.slot].ep.Index()
		netDelay = r.cfg.Topo.Delay(out.originE, rootEp)
	}
	r.col.LookupDelivered(out.issued, correct, r.measured()-out.issued, netDelay, lk.Hops)
}

// LookupDropped implements pastry.Observer.
func (o *runObserver) LookupDropped(n *pastry.Node, lk *pastry.Lookup, reason pastry.DropReason) {
	r := (*run)(o)
	if r.tel != nil {
		r.tel.LookupDropped(n, lk, reason)
	}
	k := lookupKey{origin: lk.Origin.Addr, seq: lk.Seq}
	out, ok := r.outstanding[k]
	if !ok {
		return
	}
	delete(r.outstanding, k)
	if out.issued >= 0 {
		r.col.LookupLost(out.issued)
		r.dropReasons[reason]++
	}
}
