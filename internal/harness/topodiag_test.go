package harness

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestTopologyDelaySpaceShapes checks the property behind the paper's RDP
// ordering (CorpNet < GATech < Mercator): the ratio between the closest
// reachable distances and the mean distance grows from CorpNet (deep
// locality, nearly-free local hops) to Mercator (flat hop-count space
// where proximity selection barely helps).
func TestTopologyDelaySpaceShapes(t *testing.T) {
	ratio := make(map[string]float64)
	for _, name := range []string{"corpnet", "gatech", "mercator"} {
		topo, err := BuildTopology(name, 8, 1)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(2))
		first := topo.Attach(120, rng)
		var ds []time.Duration
		var sum time.Duration
		for a := 0; a < 120; a++ {
			for b := a + 1; b < 120; b++ {
				d := topo.Delay(first+a, first+b)
				ds = append(ds, d)
				sum += d
			}
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		mean := sum / time.Duration(len(ds))
		p10 := ds[len(ds)/10]
		ratio[name] = float64(p10) / float64(mean)
		t.Logf("%-9s p10=%v mean=%v p10/mean=%.3f", name, p10, mean, ratio[name])
	}
	if !(ratio["corpnet"] < ratio["gatech"] && ratio["gatech"] < ratio["mercator"]) {
		t.Fatalf("delay-space flatness ordering violated: %v", ratio)
	}
}
