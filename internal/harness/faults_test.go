package harness

import (
	"reflect"
	"testing"
	"time"

	"mspastry/internal/netmodel"
	"mspastry/internal/trace"
)

// stableTrace returns a churn-free trace: n nodes active for the whole
// run, so fault effects are not confounded with churn.
func stableTrace(n int, d time.Duration) *trace.Trace {
	tr := &trace.Trace{Name: "stable", Duration: d, Nodes: n}
	for i := 0; i < n; i++ {
		tr.Initial = append(tr.Initial, i)
	}
	return tr
}

func faultConfig(t *testing.T, n int, d time.Duration) Config {
	t.Helper()
	topo, err := BuildTopology("corpnet", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(topo, stableTrace(n, d))
	cfg.SetupRamp = 2 * time.Minute
	cfg.Window = 2 * time.Minute
	cfg.LookupRate = 0.05
	cfg.Seed = 1
	return cfg
}

func TestPartitionHealsAndRepairs(t *testing.T) {
	cfg := faultConfig(t, 40, 24*time.Minute)
	cfg.Faults = new(FaultScript).Partition(6*time.Minute, 90*time.Second, 0.5)
	res := Run(cfg)

	if len(res.Recovery) != 1 {
		t.Fatalf("recovery entries = %d, want 1", len(res.Recovery))
	}
	rec := res.Recovery[0]
	if !rec.Repaired {
		t.Fatal("overlay did not repair after the partition healed")
	}
	if ttr := rec.TimeToRepair(); ttr <= 0 || ttr > 10*time.Minute {
		t.Fatalf("time-to-repair = %v, want finite and < 10m", ttr)
	}
	if res.DropsByCause[netmodel.DropPartition] == 0 {
		t.Fatal("no partition drops accounted during the split")
	}
	ph := res.Phases
	if ph.Before.Issued == 0 || ph.During.Issued == 0 || ph.After.Issued == 0 {
		t.Fatalf("phase accounting incomplete: %+v", ph)
	}
	// The headline dependability number: after the heal (and repair) no
	// lookup may be delivered at a wrong root.
	if ph.Before.Incorrect != 0 {
		t.Fatalf("%d incorrect deliveries before the partition", ph.Before.Incorrect)
	}
}

func TestFaultScriptDeterministic(t *testing.T) {
	runOnce := func() Result {
		cfg := faultConfig(t, 30, 16*time.Minute)
		cfg.Faults = new(FaultScript).
			Partition(5*time.Minute, time.Minute, 0.5).
			Jitter(9*time.Minute, time.Minute, 50*time.Millisecond).
			Duplicate(11*time.Minute, time.Minute, 0.1)
		return Run(cfg)
	}
	a, b := runOnce(), runOnce()
	if !reflect.DeepEqual(a.Windows, b.Windows) {
		t.Fatal("windowed metrics diverged under the same seed")
	}
	if a.Phases != b.Phases {
		t.Fatalf("phase metrics diverged: %+v vs %+v", a.Phases, b.Phases)
	}
	if a.DropsByCause != b.DropsByCause {
		t.Fatalf("drop classification diverged: %v vs %v", a.DropsByCause, b.DropsByCause)
	}
	if !reflect.DeepEqual(a.Recovery, b.Recovery) {
		t.Fatalf("recovery diverged: %+v vs %+v", a.Recovery, b.Recovery)
	}
	if a.FaultCounts != b.FaultCounts {
		t.Fatalf("fault counters diverged: %+v vs %+v", a.FaultCounts, b.FaultCounts)
	}
}

func TestDelaySpikeCausesRetransmissionStorm(t *testing.T) {
	base := faultConfig(t, 30, 16*time.Minute)
	calm := Run(base)

	spiky := faultConfig(t, 30, 16*time.Minute)
	spiky.Faults = new(FaultScript).DelaySpike(6*time.Minute, 30*time.Second, time.Second)
	res := Run(spiky)

	if res.Totals.Retransmits <= calm.Totals.Retransmits {
		t.Fatalf("spike retransmits %d not above calm %d",
			res.Totals.Retransmits, calm.Totals.Retransmits)
	}
	if res.Totals.PeakRetxPerNodeSec <= calm.Totals.PeakRetxPerNodeSec {
		t.Fatalf("spike peak retx rate %.4f not above calm %.4f",
			res.Totals.PeakRetxPerNodeSec, calm.Totals.PeakRetxPerNodeSec)
	}
}
