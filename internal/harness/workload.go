package harness

import (
	"math"
	"math/rand"

	"mspastry/internal/id"
)

// Workload names for Config.Workload.
const (
	// WorkloadUniform draws lookup keys uniformly from the id space
	// (the paper's model, and the default).
	WorkloadUniform = "uniform"
	// WorkloadZipf draws lookup keys zipf-distributed over a fixed
	// popular key set, concentrating traffic on a few hot roots.
	WorkloadZipf = "zipf"
)

// Zipf is a seeded zipf(s) sampler over a fixed set of n keys: key rank
// i (1-based) is drawn with probability proportional to 1/i^s. Unlike
// math/rand's Zipf it accepts any s > 0 (the classic web measurements
// cluster around s ≈ 1, which rand.NewZipf excludes), using inverse-CDF
// sampling over the precomputed cumulative weights.
//
// The key set derives from its own seeded stream, so enabling the zipf
// workload never perturbs the simulator's other random draws.
type Zipf struct {
	keys []id.ID
	cum  []float64
}

// zipfKeyStream decorrelates the popular-key id stream from every other
// consumer of the run seed.
const zipfKeyStream = 0x5a1bfc0de

// NewZipf builds a sampler over n keys with exponent s. It panics on
// n < 1 or s <= 0: the caller validates user input.
func NewZipf(seed int64, n int, s float64) *Zipf {
	if n < 1 {
		panic("harness: zipf key count must be >= 1")
	}
	if s <= 0 {
		panic("harness: zipf exponent must be > 0")
	}
	keyRand := rand.New(rand.NewSource(seed ^ zipfKeyStream))
	z := &Zipf{keys: make([]id.ID, n), cum: make([]float64, n)}
	total := 0.0
	for i := 0; i < n; i++ {
		z.keys[i] = id.Random(keyRand)
		total += 1 / math.Pow(float64(i+1), s)
		z.cum[i] = total
	}
	for i := range z.cum {
		z.cum[i] /= total
	}
	return z
}

// Len returns the size of the popular key set.
func (z *Zipf) Len() int { return len(z.keys) }

// Key returns the key at popularity rank i (0 = hottest).
func (z *Zipf) Key(i int) id.ID { return z.keys[i] }

// Rank returns the next sampled popularity rank, consuming one Float64
// from rng.
func (z *Zipf) Rank(rng *rand.Rand) int {
	u := rng.Float64()
	// Binary search for the first cumulative weight >= u.
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Next returns the next sampled key.
func (z *Zipf) Next(rng *rand.Rand) id.ID { return z.keys[z.Rank(rng)] }
