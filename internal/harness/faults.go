package harness

import (
	"sort"
	"time"

	"mspastry/internal/netmodel"
	"mspastry/internal/stats"
)

// FaultScript is a scriptable fault scenario: a list of timed fault
// events (partitions, jitter windows, delay spikes, duplication,
// reordering, per-link loss) interleaved with the trace's churn. Event
// times are measured times — relative to the end of the setup ramp, like
// the trace's churn events — so a scenario is independent of the ramp
// length. Build one with the fluent methods and set it on Config.Faults.
type FaultScript struct {
	events []faultEvent
}

type faultEvent struct {
	at, dur time.Duration
	// partitionFrac > 0 marks a partition event (the recovery tracker
	// watches its heal); the other fault kinds are applied by apply.
	partitionFrac float64
	apply         func(r *run, f *netmodel.FaultSet, start time.Duration)
}

// Partition splits the overlay for dur starting at measured time at: the
// first fracA of the endpoint slots form side A, the rest side B. The
// harness tracks ring repair after the heal.
func (s *FaultScript) Partition(at, dur time.Duration, fracA float64) *FaultScript {
	if fracA <= 0 || fracA >= 1 {
		panic("harness: partition fraction must be in (0,1)")
	}
	s.events = append(s.events, faultEvent{at: at, dur: dur, partitionFrac: fracA})
	return s
}

// Jitter adds a uniform random extra delay in [0, max] to every message
// for dur starting at measured time at.
func (s *FaultScript) Jitter(at, dur, max time.Duration) *FaultScript {
	s.events = append(s.events, faultEvent{at: at, dur: dur,
		apply: func(r *run, f *netmodel.FaultSet, start time.Duration) {
			f.JitterAt(start, dur, max)
		}})
	return s
}

// DelaySpike adds a fixed extra delay to every message for dur starting
// at measured time at (the false-positive inducer for per-hop
// retransmission timers).
func (s *FaultScript) DelaySpike(at, dur, extra time.Duration) *FaultScript {
	s.events = append(s.events, faultEvent{at: at, dur: dur,
		apply: func(r *run, f *netmodel.FaultSet, start time.Duration) {
			f.DelaySpikeAt(start, dur, extra)
		}})
	return s
}

// Duplicate duplicates messages with probability p for dur starting at
// measured time at.
func (s *FaultScript) Duplicate(at, dur time.Duration, p float64) *FaultScript {
	s.events = append(s.events, faultEvent{at: at, dur: dur,
		apply: func(r *run, f *netmodel.FaultSet, start time.Duration) {
			f.DuplicationAt(start, dur, p)
		}})
	return s
}

// Reorder holds messages back by up to maxExtra with probability p for
// dur starting at measured time at.
func (s *FaultScript) Reorder(at, dur time.Duration, p float64, maxExtra time.Duration) *FaultScript {
	s.events = append(s.events, faultEvent{at: at, dur: dur,
		apply: func(r *run, f *netmodel.FaultSet, start time.Duration) {
			f.ReorderingAt(start, dur, p, maxExtra)
		}})
	return s
}

// LinkLoss injects asymmetric loss on the directed link between two
// endpoint slots for dur starting at measured time at.
func (s *FaultScript) LinkLoss(at, dur time.Duration, fromSlot, toSlot int, rate float64) *FaultScript {
	s.events = append(s.events, faultEvent{at: at, dur: dur,
		apply: func(r *run, f *netmodel.FaultSet, start time.Duration) {
			f.LinkLossAt(start, dur, r.slots[fromSlot].ep.Addr(), r.slots[toSlot].ep.Addr(), rate)
		}})
	return s
}

// window returns the measured interval spanned by the script's events.
func (s *FaultScript) window() (start, end time.Duration) {
	if len(s.events) == 0 {
		return 0, 0
	}
	start = s.events[0].at
	for _, ev := range s.events {
		if ev.at < start {
			start = ev.at
		}
		if e := ev.at + ev.dur; e > end {
			end = e
		}
	}
	return start, end
}

// recoveryPollInterval is the granularity at which the harness polls for
// global ring consistency after a fault heals.
const recoveryPollInterval = 2 * time.Second

// applyFaults schedules the script's events on the network (shifted by
// the setup ramp), declares the fault window to the collector, and arms
// recovery tracking after every partition heal.
func (r *run) applyFaults() {
	script := r.cfg.Faults
	if script == nil || len(script.events) == 0 {
		return
	}
	start, end := script.window()
	r.col.SetFaultWindow(start, end)
	f := r.nw.Faults()
	for _, ev := range script.events {
		at := r.setup + ev.at
		if ev.partitionFrac > 0 {
			cut := int(float64(len(r.slots)) * ev.partitionFrac)
			base := r.slotBase()
			sideA := func(addr string) bool { return mustAtoi(addr)-base < cut }
			f.PartitionAt(at, ev.dur, sideA)
			if ev.dur > 0 {
				r.trackRecovery(at + ev.dur)
			}
			continue
		}
		ev.apply(r, f, at)
	}
}

// trackRecovery polls for global ring consistency from the heal instant
// until the overlay repairs or the run ends, recording a RecoveryStat.
func (r *run) trackRecovery(healAt time.Duration) {
	idx := len(r.recovery)
	r.recovery = append(r.recovery, stats.RecoveryStat{HealAt: healAt - r.setup})
	var poll func()
	poll = func() {
		if r.ringConsistent() {
			r.recovery[idx].Repaired = true
			r.recovery[idx].RepairedAt = r.measured()
			return
		}
		// The outage lasts until the overlay has re-converged: keep the
		// "during" phase open (at poll granularity) so lookups issued while
		// the ring is still damaged are not attributed to "after".
		r.col.ExtendFaultWindow(r.measured() + recoveryPollInterval)
		r.sim.After(recoveryPollInterval, poll)
	}
	r.sim.At(healAt, poll)
}

// ringConsistent reports whether every ground-truth active node's leaf
// set is complete and its ring neighbours match the oracle. It mirrors
// the §3.1 mass-failure convergence criterion, applied to the harness's
// live overlay.
func (r *run) ringConsistent() bool {
	n := r.active.len()
	if n == 0 {
		return false
	}
	entries := append([]ringEntry(nil), r.active.entries...)
	sort.Slice(entries, func(i, j int) bool { return entries[i].id.Cmp(entries[j].id) < 0 })
	for i, e := range entries {
		node := r.slots[e.slot].node
		if node == nil || !node.Active() {
			return false
		}
		if n > 1 && !node.Leaf().Complete() {
			return false
		}
		wantRight := entries[(i+1)%n].id
		wantLeft := entries[(i-1+n)%n].id
		right, okR := node.Leaf().RightNeighbour()
		left, okL := node.Leaf().LeftNeighbour()
		if n == 1 {
			continue
		}
		if !okR || !okL || right.ID != wantRight || left.ID != wantLeft {
			return false
		}
	}
	return true
}
