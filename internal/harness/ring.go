package harness

import (
	"math/rand"
	"sort"

	"mspastry/internal/id"
)

// ring is the ground-truth membership oracle: the sorted set of currently
// active overlay nodes. The harness uses it to decide which node *should*
// deliver each lookup (the paper's incorrect-delivery metric) and to pick
// join seeds.
type ring struct {
	entries []ringEntry
}

type ringEntry struct {
	id   id.ID
	slot int
}

func (r *ring) len() int { return len(r.entries) }

func (r *ring) searchIdx(x id.ID) int {
	return sort.Search(len(r.entries), func(i int) bool {
		return r.entries[i].id.Cmp(x) >= 0
	})
}

// insert adds an active node. Inserting an id that is already present
// panics: identifiers are 128-bit random, so a collision is a bug.
func (r *ring) insert(x id.ID, slot int) {
	i := r.searchIdx(x)
	if i < len(r.entries) && r.entries[i].id == x {
		panic("harness: duplicate id in ground-truth ring")
	}
	r.entries = append(r.entries, ringEntry{})
	copy(r.entries[i+1:], r.entries[i:])
	r.entries[i] = ringEntry{id: x, slot: slot}
}

// remove deletes an active node; unknown ids are ignored (a node may fail
// before it ever activated).
func (r *ring) remove(x id.ID) {
	i := r.searchIdx(x)
	if i < len(r.entries) && r.entries[i].id == x {
		r.entries = append(r.entries[:i], r.entries[i+1:]...)
	}
}

// closest returns the active node whose id is closest to key on the ring
// (the key's root).
func (r *ring) closest(key id.ID) (ringEntry, bool) {
	n := len(r.entries)
	if n == 0 {
		return ringEntry{}, false
	}
	i := r.searchIdx(key) % n
	prev := (i - 1 + n) % n
	a, b := r.entries[i], r.entries[prev]
	if a.id == b.id {
		return a, true
	}
	if id.CloserToKey(key, a.id, b.id) {
		return a, true
	}
	return b, true
}

// random returns a uniformly random active node.
func (r *ring) random(rng *rand.Rand) (ringEntry, bool) {
	if len(r.entries) == 0 {
		return ringEntry{}, false
	}
	return r.entries[rng.Intn(len(r.entries))], true
}
