package harness

import (
	"testing"
	"time"

	"mspastry/internal/pastry"
	"mspastry/internal/trace"
)

func TestDropAccountingMatchesLossTotals(t *testing.T) {
	// Under heavy link loss with acks disabled, lost lookups must be
	// accounted either as explicit drops or timeout losses — and the sum
	// must equal the collector's Lost count.
	topo, err := BuildTopology("gatech", 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.Generate(trace.Poisson(time.Hour, 50, 30*time.Minute))
	cfg := DefaultConfig(topo, tr)
	cfg.SetupRamp = time.Minute
	cfg.NetworkLoss = 0.10
	cfg.Pastry.PerHopAcks = false
	res := Run(cfg)
	explicit := 0
	for _, v := range res.DropsByReason {
		explicit += v
	}
	if res.Totals.Lost != explicit+res.TimeoutLost {
		t.Fatalf("lost=%d but drops=%d + timeouts=%d", res.Totals.Lost, explicit, res.TimeoutLost)
	}
	if res.Totals.Lost == 0 {
		t.Fatal("10%% loss without acks should lose lookups")
	}
}

func TestWindowsSumToTotals(t *testing.T) {
	topo, err := BuildTopology("corpnet", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.Generate(trace.Poisson(time.Hour, 50, 30*time.Minute))
	cfg := DefaultConfig(topo, tr)
	cfg.SetupRamp = time.Minute
	cfg.Window = 5 * time.Minute
	res := Run(cfg)
	issued := 0
	for _, w := range res.Windows {
		issued += w.Issued
	}
	if issued != res.Totals.Issued {
		t.Fatalf("window issued sum %d != totals %d", issued, res.Totals.Issued)
	}
}

func TestNoLookupsZeroRate(t *testing.T) {
	topo, err := BuildTopology("corpnet", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.Generate(trace.Poisson(time.Hour, 40, 20*time.Minute))
	cfg := DefaultConfig(topo, tr)
	cfg.SetupRamp = time.Minute
	cfg.LookupRate = 0
	res := Run(cfg)
	if res.Totals.Issued != 0 {
		t.Fatalf("issued %d lookups at rate 0", res.Totals.Issued)
	}
	// Control traffic still flows (maintenance).
	if res.Totals.ControlPerNodeSec == 0 {
		t.Fatal("no control traffic with idle overlay")
	}
}

func TestAblationConfigsPropagate(t *testing.T) {
	// A run with acks and probing disabled must show zero acks and zero
	// RT probes in the traffic breakdown.
	topo, err := BuildTopology("corpnet", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.Generate(trace.Poisson(2*time.Hour, 40, 20*time.Minute))
	cfg := DefaultConfig(topo, tr)
	cfg.SetupRamp = time.Minute
	cfg.Pastry.PerHopAcks = false
	cfg.Pastry.ActiveProbing = false
	res := Run(cfg)
	// Join requests always use per-hop acks (a lost join is costly), so a
	// trickle of ack traffic remains; lookup acks must be gone.
	if got := res.Totals.ByCategory[pastry.CatAck]; got > 0.01 {
		t.Fatalf("ack traffic %v despite PerHopAcks=false (join acks alone should be tiny)", got)
	}
	if res.Counters.SentRTProbes != 0 {
		t.Fatalf("RT probes sent despite ActiveProbing=false: %d", res.Counters.SentRTProbes)
	}
}

func TestMeanHopsScalesWithPopulation(t *testing.T) {
	run := func(nodes int) float64 {
		topo, err := BuildTopology("gatech", 8, 1)
		if err != nil {
			t.Fatal(err)
		}
		tr := trace.Generate(trace.Poisson(10*time.Hour, nodes, 30*time.Minute))
		cfg := DefaultConfig(topo, tr)
		cfg.SetupRamp = 2 * time.Minute
		cfg.LookupRate = 0.05
		return Run(cfg).Totals.MeanHops
	}
	small, large := run(20), run(200)
	t.Logf("mean hops: N=20 %.2f, N=200 %.2f", small, large)
	if large <= small {
		t.Fatal("mean hops did not grow with overlay size")
	}
}

func TestTrtMedianReported(t *testing.T) {
	topo, err := BuildTopology("corpnet", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.Generate(trace.Poisson(30*time.Minute, 60, 40*time.Minute))
	cfg := DefaultConfig(topo, tr)
	cfg.SetupRamp = time.Minute
	res := Run(cfg)
	if res.TrtMedian <= 0 {
		t.Fatal("TrtMedian not reported")
	}
	if res.TrtMedian < cfg.Pastry.MinTrt() {
		t.Fatalf("TrtMedian %v below the protocol floor %v", res.TrtMedian, cfg.Pastry.MinTrt())
	}
}
