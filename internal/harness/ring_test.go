package harness

import (
	"math/rand"
	"testing"

	"mspastry/internal/id"
)

func TestRingInsertRemoveClosest(t *testing.T) {
	r := &ring{}
	if _, ok := r.closest(id.New(0, 1)); ok {
		t.Fatal("empty ring returned a root")
	}
	ids := []id.ID{id.New(0, 100), id.New(0, 200), id.New(0, 300)}
	for i, x := range ids {
		r.insert(x, i)
	}
	if r.len() != 3 {
		t.Fatalf("len = %d", r.len())
	}
	for _, c := range []struct {
		key  uint64
		want uint64
	}{
		{100, 100}, {149, 100}, {151, 200}, {250, 200 /* tie: cw prefers 300? */},
		{260, 300}, {1, 100},
	} {
		got, ok := r.closest(id.New(0, c.key))
		if !ok {
			t.Fatalf("no root for %d", c.key)
		}
		if c.key == 250 {
			// Tie between 200 and 300 at distance 50: CloserToKey breaks
			// ties clockwise, so 300 wins.
			if got.id.Lo != 300 {
				t.Fatalf("tie at 250 resolved to %d, want 300", got.id.Lo)
			}
			continue
		}
		if got.id.Lo != c.want {
			t.Fatalf("closest(%d) = %d, want %d", c.key, got.id.Lo, c.want)
		}
	}
	r.remove(id.New(0, 200))
	got, _ := r.closest(id.New(0, 201))
	if got.id.Lo != 100 && got.id.Lo != 300 {
		t.Fatalf("closest after removal = %d", got.id.Lo)
	}
	// Removing an absent id is a no-op.
	r.remove(id.New(0, 999))
	if r.len() != 2 {
		t.Fatalf("len = %d after removals", r.len())
	}
}

func TestRingWrapAround(t *testing.T) {
	r := &ring{}
	r.insert(id.New(0, 10), 0)
	r.insert(id.Max.Sub(id.New(0, 5)), 1)
	// A key just below Max is closest to the near-Max node.
	got, _ := r.closest(id.Max.Sub(id.New(0, 100)))
	if got.slot != 1 {
		t.Fatalf("wrap-around closest = slot %d, want 1", got.slot)
	}
	// A key at 0 wraps: distance to Max-5 is 6, to 10 is 10.
	got, _ = r.closest(id.New(0, 0))
	if got.slot != 1 {
		t.Fatalf("closest(0) = slot %d, want 1 (dist 6 vs 10)", got.slot)
	}
}

func TestRingClosestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	r := &ring{}
	var all []ringEntry
	for i := 0; i < 200; i++ {
		x := id.Random(rng)
		r.insert(x, i)
		all = append(all, ringEntry{id: x, slot: i})
	}
	for trial := 0; trial < 500; trial++ {
		key := id.Random(rng)
		got, ok := r.closest(key)
		if !ok {
			t.Fatal("no root")
		}
		best := all[0]
		for _, e := range all[1:] {
			if id.CloserToKey(key, e.id, best.id) {
				best = e
			}
		}
		if got.id != best.id {
			t.Fatalf("closest mismatch for %v: %v vs brute-force %v", key, got.id, best.id)
		}
	}
}

func TestRingDuplicateInsertPanics(t *testing.T) {
	r := &ring{}
	x := id.New(1, 2)
	r.insert(x, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate insert")
		}
	}()
	r.insert(x, 1)
}
