package harness

import (
	"testing"
	"time"

	"mspastry/internal/peer"
)

// TestPeerRegistryLeakBound is the cross-layer leak detector: it drives
// the pinned 200s seeded churn run with aggressive record lifetimes and
// checks, once per maintenance tick on every active node, that each
// registry record is accounted for — it is either current routing-state
// membership (leaf set, routing table, outstanding probe), vetoed by a
// component slot that still holds state (whose own pruners bound it), or
// inside the TTL grace since its last touch. Any record outside those
// classes is per-peer state that survived eviction from routing state:
// exactly the leak the unified lifecycle exists to prevent. The record
// count is therefore bounded by live routing-state size plus the two
// transient classes at every sweep.
func TestPeerRegistryLeakBound(t *testing.T) {
	if testing.Short() {
		t.Skip("200s churn sim: skipped in -short")
	}
	cfg := goldenChurnConfig(t)
	// Aggressive lifetimes so a leak cannot hide behind the production
	// TTLs (which exceed the run length).
	cfg.Pastry.PeerStrangerTTL = 20 * time.Second
	cfg.Pastry.PeerAdmittedTTL = 40 * time.Second

	r := newRun(cfg)
	tick := cfg.Pastry.TickInterval
	checks, worst := 0, 0
	var check func()
	check = func() {
		now := r.sim.Now()
		for si, s := range r.slots {
			n := s.node
			if n == nil || !n.Alive() || !n.Active() {
				continue
			}
			reg := n.Peers()
			members, vetoed, doomed, fresh := 0, 0, 0, 0
			reg.Each(func(rec *peer.Record) {
				ttl := cfg.Pastry.PeerStrangerTTL
				if rec.Admitted() {
					ttl = cfg.Pastry.PeerAdmittedTTL
				}
				switch {
				case n.PeerMember(rec.ID):
					members++
				case rec.Doomed():
					// Eviction already broadcast by an Expel; the empty
					// record is a tombstone the next sweep deletes.
					doomed++
				case reg.Busy(rec):
					vetoed++
				case now-rec.Touched() < ttl+2*tick:
					fresh++
				default:
					t.Errorf("t=%v slot %d: record %v leaked: not a member, no slot state, idle %v (ttl %v, admitted %v)",
						now, si, rec.ID, now-rec.Touched(), ttl, rec.Admitted())
				}
			})
			if got, bound := reg.Len(), members+vetoed+doomed+fresh; got > bound {
				t.Errorf("t=%v slot %d: %d records exceed bound %d (members %d, vetoed %d, doomed %d, in-grace %d)",
					now, si, got, bound, members, vetoed, doomed, fresh)
			}
			if reg.Len() > worst {
				worst = reg.Len()
			}
		}
		checks++
		r.sim.After(tick, check)
	}
	r.sim.After(cfg.SetupRamp, check)
	r.execute()
	if checks < 10 {
		t.Fatalf("leak detector ran only %d checks", checks)
	}

	// The lifecycle must actually be exercising evictions, not just
	// never creating records.
	var evicted uint64
	for _, s := range r.slots {
		if s.node != nil && s.node.Alive() {
			st := s.node.PeerStats()
			evicted += st.EvictedStrangers + st.EvictedAdmitted + st.Expelled
		}
	}
	if evicted == 0 {
		t.Fatal("no registry evictions over 200s of churn")
	}
	t.Logf("%d sweep checks, peak registry size %d, %d evictions on surviving nodes", checks, worst, evicted)
}
