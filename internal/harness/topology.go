package harness

import (
	"fmt"
	"math/rand"

	"mspastry/internal/topology"
)

// BuildTopology constructs one of the paper's three topologies by name
// ("gatech", "mercator", "corpnet"). scaleDiv > 1 shrinks the topology for
// fast runs (the paper's full sizes are scaleDiv = 1).
func BuildTopology(name string, scaleDiv int, seed int64) (*topology.Network, error) {
	rng := rand.New(rand.NewSource(seed))
	switch name {
	case "gatech":
		cfg := topology.DefaultGATech()
		if scaleDiv > 1 {
			cfg = cfg.Scaled(scaleDiv)
		}
		return topology.GATech(cfg, rng), nil
	case "mercator":
		cfg := topology.DefaultMercator()
		if scaleDiv > 1 {
			// Shrink the AS count but keep autonomous systems large: the
			// paper's Mercator regime has long intra-AS paths, so even the
			// closest reachable node is many IP hops away — the flat delay
			// space that starves proximity neighbour selection.
			cfg.AS = maxI(64, cfg.AS/scaleDiv)
		}
		return topology.Mercator(cfg, rng), nil
	case "corpnet":
		// CorpNet is small (298 routers) and is never scaled: shrinking it
		// would concentrate overlay nodes on few sites and flood the RDP
		// average with near-zero-denominator pairs.
		return topology.CorpNet(topology.DefaultCorpNet(), rng), nil
	default:
		return nil, fmt.Errorf("harness: unknown topology %q", name)
	}
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
