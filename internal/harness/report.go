package harness

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"mspastry/internal/pastry"
)

// ReportString renders a Result as a canonical, fully deterministic text
// report: every field is serialized with stable ordering (map keys
// sorted) and round-trip float formatting, so two runs produce the same
// string iff they produced the same numbers. The refactor-guard tests
// pin a fixed-seed churn run's report against a golden file to prove
// seeded simulations stay bit-identical across internal refactors.
func (r Result) ReportString() string {
	var b strings.Builder
	t := r.Totals
	fmt.Fprintf(&b, "totals issued=%d delivered=%d incorrect=%d lost=%d\n",
		t.Issued, t.Delivered, t.Incorrect, t.Lost)
	fmt.Fprintf(&b, "totals rdp=%s rdp_mor=%s hops=%s loss=%s incorrect_rate=%s\n",
		g(t.RDP), g(t.RDPMeanOfRatios), g(t.MeanHops), g(t.LossRate), g(t.IncorrectRate))
	fmt.Fprintf(&b, "totals control=%s total=%s control_bytes=%s dgrams=%s control_dgrams=%s saved_bytes=%d\n",
		g(t.ControlPerNodeSec), g(t.TotalPerNodeSec), g(t.ControlBytesPerNodeSec),
		g(t.DatagramsPerNodeSec), g(t.ControlDatagramsPerNodeSec), t.CoalescedSavedBytes)
	fmt.Fprintf(&b, "totals active=%s joins=%d median_join=%d retx=%d peak_retx=%s\n",
		g(t.MeanActive), t.Joins, int64(t.MedianJoinLatency), t.Retransmits, g(t.PeakRetxPerNodeSec))
	writeCategories(&b, "totals", t.ByCategory)

	for _, w := range r.Windows {
		fmt.Fprintf(&b, "window start=%d active=%s control=%s control_bytes=%s dgrams=%s control_dgrams=%s\n",
			int64(w.Start), g(w.Active), g(w.ControlPerNodeSec), g(w.ControlBytesPerNodeSec),
			g(w.DatagramsPerNodeSec), g(w.ControlDatagramsPerNodeSec))
		fmt.Fprintf(&b, "window start=%d rdp=%s rdp_mor=%s hops=%s loss=%s incorrect=%s issued=%d retx=%s\n",
			int64(w.Start), g(w.RDP), g(w.RDPMeanOfRatios), g(w.MeanHops), g(w.LossRate),
			g(w.IncorrectRate), w.Issued, g(w.RetxPerNodeSec))
		writeCategories(&b, fmt.Sprintf("window start=%d", int64(w.Start)), w.ByCategory)
	}

	for _, p := range r.JoinCDF {
		fmt.Fprintf(&b, "joincdf latency=%d fraction=%s\n", int64(p.Latency), g(p.Fraction))
	}

	fmt.Fprintf(&b, "counters %+v\n", r.Counters)
	fmt.Fprintf(&b, "network drops=%d by_cause=%v faults=%+v shed=%v\n",
		r.NetworkDrops, r.DropsByCause, r.FaultCounts, r.ShedByLane)
	fmt.Fprintf(&b, "adversary %+v\n", r.Adversary)
	fmt.Fprintf(&b, "phases before=%+v during=%+v after=%+v\n",
		r.Phases.Before, r.Phases.During, r.Phases.After)
	for _, rec := range r.Recovery {
		fmt.Fprintf(&b, "recovery heal=%d repaired_at=%d repaired=%t\n",
			int64(rec.HealAt), int64(rec.RepairedAt), rec.Repaired)
	}
	fmt.Fprintf(&b, "sim events=%d timeout_lost=%d trt_median=%d\n",
		r.SimEvents, r.TimeoutLost, int64(r.TrtMedian))

	reasons := make([]int, 0, len(r.DropsByReason))
	for reason := range r.DropsByReason {
		reasons = append(reasons, int(reason))
	}
	sort.Ints(reasons)
	for _, reason := range reasons {
		fmt.Fprintf(&b, "drop reason=%d count=%d\n", reason, r.DropsByReason[pastry.DropReason(reason)])
	}
	return b.String()
}

// writeCategories renders a per-category rate map in category order.
func writeCategories(b *strings.Builder, prefix string, m map[pastry.Category]float64) {
	cats := make([]int, 0, len(m))
	for c := range m {
		cats = append(cats, int(c))
	}
	sort.Ints(cats)
	for _, c := range cats {
		fmt.Fprintf(b, "%s cat=%s rate=%s\n", prefix, pastry.Category(c), g(m[pastry.Category(c)]))
	}
}

// g formats a float with the smallest representation that round-trips,
// so equal bits give equal strings and unequal bits give unequal ones.
func g(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
