package harness

import (
	"strings"
	"testing"
	"time"

	"mspastry/internal/telemetry"
)

// TestHopTraceReconstruction is the hop-tracing acceptance experiment: in
// a churn-free 100-node run, the recorded hop traces must reconstruct the
// complete route path for at least 99% of delivered lookups.
func TestHopTraceReconstruction(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute simulated run")
	}
	topo, err := BuildTopology("corpnet", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(topo, stableTrace(100, 20*time.Minute))
	cfg.SetupRamp = 2 * time.Minute
	cfg.Window = 5 * time.Minute
	cfg.LookupRate = 0.05
	cfg.Seed = 7
	cfg.Telemetry = telemetry.NewRegistry()
	cfg.TraceLookups = true

	res := Run(cfg)
	if res.Totals.Delivered == 0 {
		t.Fatal("no lookups delivered")
	}
	ts := res.TraceStats
	if ts.Delivered == 0 {
		t.Fatal("tracer saw no deliveries")
	}
	if rate := ts.ReconstructionRate(); rate < 0.99 {
		t.Errorf("route reconstruction rate %.4f < 0.99 (delivered=%d reconstructed=%d)",
			rate, ts.Delivered, ts.Reconstructed)
	}

	// Every reconstructed path must chain origin -> ... -> root, and its
	// per-link latencies must be non-negative (shared simulated clock).
	checked := 0
	for _, lt := range res.Tracer.Completed() {
		if !lt.Delivered {
			continue
		}
		path, ok := lt.Path()
		if !ok {
			continue
		}
		if path[0].ID != lt.Origin.ID || path[len(path)-1].ID != lt.Root.ID {
			t.Fatalf("path endpoints wrong: %v (origin %v root %v)", path, lt.Origin, lt.Root)
		}
		for _, d := range lt.HopLatencies() {
			if d < 0 {
				t.Fatalf("negative hop latency %v in trace %d", d, lt.TraceID)
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no complete paths checked")
	}
}

// TestSimMetricsMatchLiveNames verifies the harness registers the same
// metric names a live node serves on /metrics, so dashboards are
// interchangeable between simulator and deployment.
func TestSimMetricsMatchLiveNames(t *testing.T) {
	topo, err := BuildTopology("corpnet", 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(topo, stableTrace(20, 6*time.Minute))
	cfg.SetupRamp = time.Minute
	cfg.Window = 2 * time.Minute
	cfg.LookupRate = 0.05
	cfg.Telemetry = telemetry.NewRegistry()
	cfg.TraceLookups = true
	res := Run(cfg)
	if res.Totals.Delivered == 0 {
		t.Fatal("no lookups delivered")
	}

	var b strings.Builder
	if err := cfg.Telemetry.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, name := range []string{
		"mspastry_lookups_issued_total",
		"mspastry_lookups_delivered_total",
		"mspastry_lookup_hops_bucket",
		"mspastry_lookup_delay_seconds_count",
		"mspastry_messages_sent_total{category=\"leafset\"}",
		"mspastry_ack_rtt_seconds_count",
		"mspastry_trt_seconds",
		"mspastry_joins_total",
		"mspastry_node_heartbeats_sent",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("metrics dump missing %q", name)
		}
	}
}
