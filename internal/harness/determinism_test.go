package harness

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mspastry/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite golden report files")

// goldenChurnConfig is the fixed-seed churn run whose report is pinned
// bit-for-bit across refactors: 200s of heavy Poisson churn (mean
// session 2 minutes, ~48 nodes) with lookups and uniform loss, and
// coalescing off (the default) so held-frame flush ordering cannot
// enter the picture. Any change to the seeded draw sequence — message
// emission order, probe scheduling, eviction order — shows up here.
func goldenChurnConfig(t testing.TB) Config {
	topo, err := BuildTopology("gatech", 8, 1)
	if err != nil {
		t.Fatalf("topology: %v", err)
	}
	dur := 200 * time.Second
	tr := trace.Generate(trace.Poisson(2*time.Minute, 48, dur))
	cfg := DefaultConfig(topo, tr)
	cfg.LookupRate = 0.1
	cfg.NetworkLoss = 0.02
	cfg.Window = 50 * time.Second
	cfg.SetupRamp = time.Minute
	cfg.LossTimeout = 30 * time.Second
	cfg.Seed = 7
	return cfg
}

const goldenReportPath = "testdata/churn_seed7_report.golden"

// TestFixedSeedReportGolden runs the pinned churn config and compares
// its canonical report byte-for-byte against the committed golden.
// Regenerate with: go test ./internal/harness -run FixedSeedReport -update
func TestFixedSeedReportGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("200s churn sim: skipped in -short")
	}
	got := Run(goldenChurnConfig(t)).ReportString()
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenReportPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenReportPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenReportPath, len(got))
		return
	}
	want, err := os.ReadFile(goldenReportPath)
	if err != nil {
		t.Fatalf("missing golden (regenerate with -update): %v", err)
	}
	if string(want) != got {
		t.Fatalf("report diverged from golden %s.\nThe seeded simulation is no longer bit-identical; if the change is intentional, regenerate with -update.\n%s",
			goldenReportPath, firstDiff(string(want), got))
	}
}

// firstDiff locates the first differing line for a readable failure.
func firstDiff(want, got string) string {
	wl, gl := splitLines(want), splitLines(got)
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if wl[i] != gl[i] {
			return "line " + itoa(i+1) + ":\n  want: " + wl[i] + "\n  got:  " + gl[i]
		}
	}
	if len(wl) != len(gl) {
		return "line counts differ: want " + itoa(len(wl)) + ", got " + itoa(len(gl))
	}
	return "(no line diff found)"
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
