package harness

import (
	"testing"
	"time"

	"mspastry/internal/trace"
)

// smallConfig builds a fast experiment: ~60 nodes of Poisson churn on a
// scaled GATech topology.
func smallConfig(t *testing.T, session time.Duration, dur time.Duration) Config {
	t.Helper()
	topo, err := BuildTopology("gatech", 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.Generate(trace.Poisson(session, 60, dur))
	cfg := DefaultConfig(topo, tr)
	cfg.SetupRamp = time.Minute
	return cfg
}

func TestRunStableOverlay(t *testing.T) {
	// Long sessions: almost no churn during a 30-minute run.
	cfg := smallConfig(t, 10*time.Hour, 30*time.Minute)
	cfg.LookupRate = 0.05
	res := Run(cfg)
	if res.Totals.Issued < 1000 {
		t.Fatalf("too few lookups issued: %d", res.Totals.Issued)
	}
	if res.Totals.IncorrectRate != 0 {
		t.Fatalf("incorrect deliveries in a loss-free run: %v", res.Totals.IncorrectRate)
	}
	if res.Totals.LossRate > 0.001 {
		t.Fatalf("loss rate %v too high for stable overlay", res.Totals.LossRate)
	}
	if res.Totals.RDP < 1 || res.Totals.RDP > 6 {
		t.Fatalf("RDP %v implausible", res.Totals.RDP)
	}
	if res.Totals.MeanActive < 50 || res.Totals.MeanActive > 70 {
		t.Fatalf("mean active %v, want ~60", res.Totals.MeanActive)
	}
}

func TestRunUnderChurn(t *testing.T) {
	// 30-minute sessions: every node turns over about once during the run.
	cfg := smallConfig(t, 30*time.Minute, time.Hour)
	res := Run(cfg)
	if res.Totals.Issued == 0 {
		t.Fatal("no lookups issued")
	}
	if res.Totals.IncorrectRate != 0 {
		t.Fatalf("incorrect deliveries without link loss: %v (paper: zero)", res.Totals.IncorrectRate)
	}
	if res.Totals.LossRate > 0.01 {
		t.Fatalf("loss rate %v too high with per-hop acks", res.Totals.LossRate)
	}
	if res.Totals.ControlPerNodeSec <= 0 {
		t.Fatal("no control traffic measured")
	}
	if res.Totals.Joins == 0 {
		t.Fatal("no joins recorded under churn")
	}
}

func TestRunWithNetworkLoss(t *testing.T) {
	cfg := smallConfig(t, time.Hour, 30*time.Minute)
	cfg.NetworkLoss = 0.05
	res := Run(cfg)
	if res.NetworkDrops == 0 {
		t.Fatal("loss injection did not drop anything")
	}
	// Per-hop acks keep the loss rate low even at 5% link loss.
	if res.Totals.LossRate > 0.02 {
		t.Fatalf("lookup loss %v too high despite per-hop acks", res.Totals.LossRate)
	}
}

func TestRunWindowsCoverTrace(t *testing.T) {
	cfg := smallConfig(t, time.Hour, 30*time.Minute)
	cfg.Window = 10 * time.Minute
	res := Run(cfg)
	if len(res.Windows) != 3 {
		t.Fatalf("windows = %d, want 3", len(res.Windows))
	}
	for i, w := range res.Windows {
		if w.Active < 40 || w.Active > 80 {
			t.Fatalf("window %d active = %v, want ~60", i, w.Active)
		}
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	a := Run(smallConfig(t, time.Hour, 20*time.Minute))
	b := Run(smallConfig(t, time.Hour, 20*time.Minute))
	if a.Totals.Issued != b.Totals.Issued || a.SimEvents != b.SimEvents {
		t.Fatalf("same seed diverged: %+v vs %+v", a.Totals, b.Totals)
	}
}

func TestJoinLatencyCDFMonotone(t *testing.T) {
	cfg := smallConfig(t, 20*time.Minute, 40*time.Minute)
	res := Run(cfg)
	if len(res.JoinCDF) == 0 {
		t.Fatal("no join latencies under churn")
	}
	prev := 0.0
	for _, p := range res.JoinCDF {
		if p.Fraction < prev {
			t.Fatal("CDF not monotone")
		}
		prev = p.Fraction
		if p.Latency < 0 || p.Latency > 5*time.Minute {
			t.Fatalf("join latency %v implausible", p.Latency)
		}
	}
}
