package store

import (
	"os"
	"path/filepath"
	"testing"

	"mspastry/internal/id"
)

// FuzzDecodeObject asserts the object codec never panics and that every
// accepted input re-encodes to an equivalent object.
func FuzzDecodeObject(f *testing.F) {
	f.Add(EncodeObject(nil, obj(1, 2, 3, 4, "seed")))
	f.Add(EncodeObject(nil, Object{Key: id.New(5, 6), Version: 1, Tombstone: true}))
	f.Add([]byte{})
	f.Add([]byte{0x01, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		o, ok := DecodeObject(data)
		if !ok {
			return
		}
		if o.Version == 0 {
			t.Fatal("decoder accepted reserved version 0")
		}
		back, ok2 := DecodeObject(EncodeObject(nil, o))
		if !ok2 {
			t.Fatal("re-encode of accepted object rejected")
		}
		if back.Key != o.Key || back.Version != o.Version || back.Origin != o.Origin ||
			back.Tombstone != o.Tombstone || string(back.Value) != string(o.Value) {
			t.Fatalf("roundtrip mismatch: %+v vs %+v", o, back)
		}
	})
}

// FuzzWALOpen feeds arbitrary bytes to the WAL replayer: Open must never
// panic, must terminate, and the recovered store must accept new writes.
func FuzzWALOpen(f *testing.F) {
	valid := func() []byte {
		dir := f.TempDir()
		d, err := Open(dir, DiskOptions{})
		if err != nil {
			f.Fatal(err)
		}
		d.Apply(obj(1, 1, 1, 1, "seed"))
		d.Apply(Object{Key: id.New(2, 2), Version: 1, Tombstone: true})
		d.Drop(id.New(1, 1))
		d.Close()
		buf, err := os.ReadFile(filepath.Join(dir, walFile))
		if err != nil {
			f.Fatal(err)
		}
		return buf
	}()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walFile), data, 0o644); err != nil {
			t.Fatal(err)
		}
		d, err := Open(dir, DiskOptions{})
		if err != nil {
			t.Fatalf("Open on arbitrary WAL errored: %v", err)
		}
		if _, err := d.Apply(obj(9, 9, 1, 1, "post-recovery")); err != nil {
			t.Fatalf("recovered store rejected a write: %v", err)
		}
		if _, ok := d.Get(id.New(9, 9)); !ok {
			t.Fatal("recovered store lost a fresh write")
		}
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		// The recovered-and-extended log must reopen cleanly.
		d2, err := Open(dir, DiskOptions{})
		if err != nil {
			t.Fatalf("second Open: %v", err)
		}
		if _, ok := d2.Get(id.New(9, 9)); !ok {
			t.Fatal("write lost across reopen")
		}
		d2.Close()
	})
}
