package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"mspastry/internal/id"
)

func mustOpen(t *testing.T, dir string, opts DiskOptions) *Disk {
	t.Helper()
	d, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDiskRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, dir, DiskOptions{})
	want := make(map[id.ID]string)
	for i := 0; i < 50; i++ {
		o := obj(uint64(i), uint64(i), 1, 3, fmt.Sprintf("value-%d", i))
		want[o.Key] = string(o.Value)
		if _, err := d.Apply(o); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite a few, tombstone one, drop one.
	d.Apply(obj(1, 1, 2, 3, "updated"))
	want[id.New(1, 1)] = "updated"
	d.Apply(Object{Key: id.New(2, 2), Version: 2, Origin: 3, Tombstone: true})
	delete(want, id.New(2, 2))
	d.Drop(id.New(3, 3))
	delete(want, id.New(3, 3))
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2 := mustOpen(t, dir, DiskOptions{})
	defer d2.Close()
	if d2.Len() != len(want) {
		t.Fatalf("reopened len = %d, want %d", d2.Len(), len(want))
	}
	for k, v := range want {
		got, ok := d2.Get(k)
		if !ok || string(got.Value) != v {
			t.Fatalf("key %s: got %q/%v, want %q", k, got.Value, ok, v)
		}
	}
	// The tombstone survived the restart and still blocks resurrection.
	if tomb, ok := d2.Get(id.New(2, 2)); !ok || !tomb.Tombstone {
		t.Fatal("tombstone lost across reopen")
	}
	// The dropped key is gone for good.
	if _, ok := d2.Get(id.New(3, 3)); ok {
		t.Fatal("dropped key resurrected by replay")
	}
	if d2.Stats().Replayed == 0 {
		t.Fatal("reopen replayed nothing")
	}
}

func TestDiskCompaction(t *testing.T) {
	dir := t.TempDir()
	// Tiny threshold: compaction must trigger during the writes.
	d := mustOpen(t, dir, DiskOptions{CompactBytes: 512})
	for i := 0; i < 40; i++ {
		if _, err := d.Apply(obj(7, uint64(i), 1, 1, "padding-padding-padding")); err != nil {
			t.Fatal(err)
		}
	}
	st := d.Stats()
	if st.Compactions == 0 {
		t.Fatal("no compaction despite tiny threshold")
	}
	if st.WALBytes > 512+128 {
		t.Fatalf("wal not truncated: %d bytes", st.WALBytes)
	}
	if st.SnapshotBytes == 0 {
		t.Fatal("no snapshot written")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2 := mustOpen(t, dir, DiskOptions{CompactBytes: 512})
	defer d2.Close()
	if d2.Len() != 40 {
		t.Fatalf("post-compaction reopen len = %d, want 40", d2.Len())
	}
}

// TestDiskCrashRecovery kills a store mid-write: every fully-written
// record must survive, the torn tail must be discarded, and the reopened
// store must keep working.
func TestDiskCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, dir, DiskOptions{})
	for i := 0; i < 10; i++ {
		d.Apply(obj(9, uint64(i), 1, 1, "durable"))
	}
	// Simulate the crash: abandon the handle without Close (no final
	// sync), then tear the last record by truncating mid-body.
	d.wal.Sync()
	walPath := filepath.Join(dir, walFile)
	fi, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath, fi.Size()-5); err != nil {
		t.Fatal(err)
	}
	d.wal.Close()

	d2 := mustOpen(t, dir, DiskOptions{})
	if d2.Len() != 9 {
		t.Fatalf("after torn tail: len = %d, want 9 (one torn record dropped)", d2.Len())
	}
	for i := 0; i < 9; i++ {
		if _, ok := d2.Get(id.New(9, uint64(i))); !ok {
			t.Fatalf("intact record %d lost", i)
		}
	}
	// The reopened store appends over the torn bytes and stays consistent.
	if _, err := d2.Apply(obj(9, 99, 1, 1, "post-crash")); err != nil {
		t.Fatal(err)
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	d3 := mustOpen(t, dir, DiskOptions{})
	defer d3.Close()
	if d3.Len() != 10 {
		t.Fatalf("final reopen len = %d, want 10", d3.Len())
	}
	if _, ok := d3.Get(id.New(9, 99)); !ok {
		t.Fatal("post-crash write lost")
	}
}

// TestDiskCorruptMiddle flips a byte inside an early record: replay must
// stop at the damage (everything after is suspect) without crashing, and
// the next writes must land cleanly.
func TestDiskCorruptMiddle(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, dir, DiskOptions{})
	for i := 0; i < 5; i++ {
		d.Apply(obj(4, uint64(i), 1, 1, "x"))
	}
	d.Close()
	walPath := filepath.Join(dir, walFile)
	buf, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0xff
	if err := os.WriteFile(walPath, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	d2 := mustOpen(t, dir, DiskOptions{})
	defer d2.Close()
	if d2.Len() >= 5 {
		t.Fatalf("corrupt record replayed: len = %d", d2.Len())
	}
	if _, err := d2.Apply(obj(4, 100, 1, 1, "after-corruption")); err != nil {
		t.Fatal(err)
	}
}
