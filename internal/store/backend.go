package store

import "mspastry/internal/id"

// Stats is a backend's state snapshot for telemetry and status surfaces.
type Stats struct {
	// Objects counts live (non-tombstone) objects; Tombstones counts
	// retained deletion markers.
	Objects    int
	Tombstones int
	// WALBytes and SnapshotBytes are the on-disk sizes (zero for the
	// memory backend).
	WALBytes      int64
	SnapshotBytes int64
	// Compactions counts snapshot+truncate cycles; Replayed is how many
	// WAL records the last Open recovered.
	Compactions uint64
	Replayed    int
}

// Backend stores versioned objects for one DHT node. Implementations
// centralise the version rules: Apply merges under Object.Supersedes, so
// callers can feed writes, replica pushes and anti-entropy repairs
// through the same path in any order. All calls are serialised by the
// caller (the node's Env context; telemetry scrapes go through the same
// serialisation), so implementations need no locking of their own.
type Backend interface {
	// Get returns the current object under key (possibly a tombstone).
	Get(key id.ID) (Object, bool)
	// Apply merges o if it supersedes the current object (or the key is
	// absent) and reports whether state changed.
	Apply(o Object) (bool, error)
	// Drop removes the key locally without writing a tombstone. This is
	// the responsibility-handoff path: the object lives on elsewhere, it
	// just no longer belongs here.
	Drop(key id.ID) error
	// Range calls fn for every stored object (tombstones included) until
	// fn returns false. Mutating the backend during Range is undefined;
	// collect first, then write.
	Range(fn func(Object) bool)
	// Len counts live (non-tombstone) objects.
	Len() int
	// Stats snapshots the backend state.
	Stats() Stats
	// Close releases resources (flushes the WAL for the disk backend).
	Close() error
}

// Memory is the map-backed Backend used by simulations and tests.
type Memory struct {
	objects    map[id.ID]Object
	tombstones int
}

// NewMemory creates an empty in-memory backend.
func NewMemory() *Memory {
	return &Memory{objects: make(map[id.ID]Object)}
}

// Get implements Backend.
func (m *Memory) Get(key id.ID) (Object, bool) {
	o, ok := m.objects[key]
	return o, ok
}

// Apply implements Backend.
func (m *Memory) Apply(o Object) (bool, error) {
	cur, ok := m.objects[o.Key]
	if ok && !o.Supersedes(cur) {
		return false, nil
	}
	if ok && cur.Tombstone {
		m.tombstones--
	}
	if o.Tombstone {
		m.tombstones++
	}
	o.Value = append([]byte(nil), o.Value...) // own the bytes
	m.objects[o.Key] = o
	return true, nil
}

// Drop implements Backend.
func (m *Memory) Drop(key id.ID) error {
	if cur, ok := m.objects[key]; ok {
		if cur.Tombstone {
			m.tombstones--
		}
		delete(m.objects, key)
	}
	return nil
}

// Range implements Backend.
func (m *Memory) Range(fn func(Object) bool) {
	for _, o := range m.objects {
		if !fn(o) {
			return
		}
	}
}

// Len implements Backend.
func (m *Memory) Len() int { return len(m.objects) - m.tombstones }

// Stats implements Backend.
func (m *Memory) Stats() Stats {
	return Stats{Objects: m.Len(), Tombstones: m.tombstones}
}

// Close implements Backend.
func (m *Memory) Close() error { return nil }
