package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"mspastry/internal/id"
)

// Disk is the durable Backend: the full object set lives in memory (the
// DHT working set is bounded by the node's replica responsibility), every
// mutation is appended to a CRC-framed write-ahead log first, and when the
// log outgrows DiskOptions.CompactBytes the state is snapshotted and the
// log truncated. Open replays snapshot + log, discarding a torn tail, so
// a crash at any byte boundary recovers every fully-written record.
//
// Directory layout:
//
//	<dir>/snapshot.dat  last compaction's full state (record stream)
//	<dir>/wal.log       mutations since that snapshot (record stream)
//
// Record framing (both files):
//
//	length u32 BE | crc32(body) u32 BE | body = kind(1) | payload
//
// kind recPut carries EncodeObject; kind recDrop carries the bare 16-byte
// key (a local responsibility handoff, not a tombstone).
type Disk struct {
	dir  string
	opts DiskOptions

	objects    map[id.ID]Object
	tombstones int

	wal      *os.File
	walBytes int64

	snapshotBytes int64
	compactions   uint64
	replayed      int
	appends       int
}

// DiskOptions tunes the durable backend.
type DiskOptions struct {
	// CompactBytes triggers snapshot + WAL truncation when the log
	// exceeds it (default 1 MiB).
	CompactBytes int64
	// SyncEvery fsyncs the WAL after every N appends; 0 syncs only at
	// snapshot and Close, trading a crash window for throughput (the DHT
	// re-replicates lost tails via anti-entropy anyway).
	SyncEvery int
}

const (
	snapshotFile = "snapshot.dat"
	walFile      = "wal.log"

	recPut  = 1
	recDrop = 2

	recHeader = 8
	// maxRecord bounds one record so a corrupt length prefix cannot force
	// a huge allocation during replay.
	maxRecord = 64 << 20
)

// Open loads (or creates) a durable store in dir.
func Open(dir string, opts DiskOptions) (*Disk, error) {
	if opts.CompactBytes <= 0 {
		opts.CompactBytes = 1 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	d := &Disk{dir: dir, opts: opts, objects: make(map[id.ID]Object)}

	// Snapshot first, then the log on top: the log always post-dates the
	// snapshot it accompanies.
	snapN, err := d.replayFile(filepath.Join(dir, snapshotFile))
	if err != nil {
		return nil, err
	}
	if fi, err := os.Stat(filepath.Join(dir, snapshotFile)); err == nil {
		d.snapshotBytes = fi.Size()
	}
	walN, err := d.replayFile(filepath.Join(dir, walFile))
	if err != nil {
		return nil, err
	}
	d.replayed = snapN + walN

	wal, err := os.OpenFile(filepath.Join(dir, walFile), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	// Append after the last intact record: a torn tail found during
	// replay is overwritten, not preserved.
	if _, err := wal.Seek(d.walBytes, io.SeekStart); err != nil {
		wal.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := wal.Truncate(d.walBytes); err != nil {
		wal.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	d.wal = wal
	// A log that grew past the threshold while we were down compacts
	// immediately, so restart loops cannot grow it without bound.
	if d.walBytes > d.opts.CompactBytes {
		if err := d.compact(); err != nil {
			wal.Close()
			return nil, err
		}
	}
	return d, nil
}

// replayFile applies every intact record in path and returns how many it
// read. Missing files are fine (fresh store). For the WAL it also leaves
// d.walBytes at the offset of the first damaged byte.
func (d *Disk) replayFile(path string) (int, error) {
	buf, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	isWAL := filepath.Base(path) == walFile
	n := 0
	off := int64(0)
	for {
		body, next, ok := nextRecord(buf, off)
		if !ok {
			break // torn or corrupt tail: keep what we have
		}
		if !d.applyRecord(body) {
			break // undecodable body: treat like a torn tail
		}
		off = next
		n++
	}
	if isWAL {
		d.walBytes = off
	}
	return n, nil
}

// nextRecord frames one record out of buf at off. It returns the body
// and the offset just past the record, or ok=false when the remaining
// bytes do not form an intact record.
func nextRecord(buf []byte, off int64) (body []byte, next int64, ok bool) {
	rest := buf[off:]
	if len(rest) < recHeader {
		return nil, 0, false
	}
	length := binary.BigEndian.Uint32(rest[0:4])
	if length == 0 || length > maxRecord || int64(length) > int64(len(rest)-recHeader) {
		return nil, 0, false
	}
	sum := binary.BigEndian.Uint32(rest[4:8])
	body = rest[recHeader : recHeader+int(length)]
	if crc32.ChecksumIEEE(body) != sum {
		return nil, 0, false
	}
	return body, off + recHeader + int64(length), true
}

// applyRecord replays one record body into the in-memory state.
func (d *Disk) applyRecord(body []byte) bool {
	if len(body) < 1 {
		return false
	}
	switch body[0] {
	case recPut:
		o, ok := DecodeObject(body[1:])
		if !ok {
			return false
		}
		o.Value = append([]byte(nil), o.Value...) // buf is transient
		d.setObject(o)
		return true
	case recDrop:
		if len(body) != 17 {
			return false
		}
		d.dropObject(id.FromBytes(body[1:17]))
		return true
	default:
		return false
	}
}

// setObject installs o unconditionally (replay order is authoritative;
// Apply does the Supersedes check before logging).
func (d *Disk) setObject(o Object) {
	if cur, ok := d.objects[o.Key]; ok && cur.Tombstone {
		d.tombstones--
	}
	if o.Tombstone {
		d.tombstones++
	}
	d.objects[o.Key] = o
}

func (d *Disk) dropObject(key id.ID) {
	if cur, ok := d.objects[key]; ok {
		if cur.Tombstone {
			d.tombstones--
		}
		delete(d.objects, key)
	}
}

// append frames and writes one record to the WAL. The caller updates the
// in-memory state and then calls maybeCompact — in that order, so a
// threshold-triggered snapshot always includes the record it is about to
// truncate away.
func (d *Disk) append(body []byte) error {
	var hdr [recHeader]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(body)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(body))
	if _, err := d.wal.Write(hdr[:]); err != nil {
		return fmt.Errorf("store: wal append: %w", err)
	}
	if _, err := d.wal.Write(body); err != nil {
		return fmt.Errorf("store: wal append: %w", err)
	}
	d.walBytes += recHeader + int64(len(body))
	d.appends++
	if d.opts.SyncEvery > 0 && d.appends%d.opts.SyncEvery == 0 {
		if err := d.wal.Sync(); err != nil {
			return fmt.Errorf("store: wal sync: %w", err)
		}
	}
	return nil
}

// maybeCompact compacts when the WAL has outgrown its threshold.
func (d *Disk) maybeCompact() error {
	if d.walBytes > d.opts.CompactBytes {
		return d.compact()
	}
	return nil
}

// compact writes the full state to a fresh snapshot (atomic rename) and
// truncates the WAL, which it fsyncs first so the snapshot can never be
// older than a log it replaces.
func (d *Disk) compact() error {
	tmp := filepath.Join(d.dir, snapshotFile+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	var size int64
	var hdr [recHeader]byte
	body := make([]byte, 0, 4096)
	for _, o := range d.objects {
		body = append(body[:0], recPut)
		body = EncodeObject(body, o)
		binary.BigEndian.PutUint32(hdr[0:4], uint32(len(body)))
		binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(body))
		if _, err := f.Write(hdr[:]); err == nil {
			_, err = f.Write(body)
		}
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("store: compact: %w", err)
		}
		size += recHeader + int64(len(body))
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(d.dir, snapshotFile)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := d.wal.Truncate(0); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	if _, err := d.wal.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	d.walBytes = 0
	d.snapshotBytes = size
	d.compactions++
	return nil
}

// Get implements Backend.
func (d *Disk) Get(key id.ID) (Object, bool) {
	o, ok := d.objects[key]
	return o, ok
}

// Apply implements Backend: WAL first, then memory.
func (d *Disk) Apply(o Object) (bool, error) {
	if cur, ok := d.objects[o.Key]; ok && !o.Supersedes(cur) {
		return false, nil
	}
	body := make([]byte, 0, 40+len(o.Value))
	body = append(body, recPut)
	body = EncodeObject(body, o)
	if err := d.append(body); err != nil {
		return false, err
	}
	o.Value = append([]byte(nil), o.Value...)
	d.setObject(o)
	return true, d.maybeCompact()
}

// Drop implements Backend.
func (d *Disk) Drop(key id.ID) error {
	if _, ok := d.objects[key]; !ok {
		return nil
	}
	body := make([]byte, 0, 17)
	body = append(body, recDrop)
	body = append(body, key.Bytes()...)
	if err := d.append(body); err != nil {
		return err
	}
	d.dropObject(key)
	return d.maybeCompact()
}

// Range implements Backend.
func (d *Disk) Range(fn func(Object) bool) {
	for _, o := range d.objects {
		if !fn(o) {
			return
		}
	}
}

// Len implements Backend.
func (d *Disk) Len() int { return len(d.objects) - d.tombstones }

// Stats implements Backend.
func (d *Disk) Stats() Stats {
	return Stats{
		Objects:       d.Len(),
		Tombstones:    d.tombstones,
		WALBytes:      d.walBytes,
		SnapshotBytes: d.snapshotBytes,
		Compactions:   d.compactions,
		Replayed:      d.replayed,
	}
}

// Close flushes and closes the WAL.
func (d *Disk) Close() error {
	if d.wal == nil {
		return nil
	}
	err := d.wal.Sync()
	if cerr := d.wal.Close(); err == nil {
		err = cerr
	}
	d.wal = nil
	return err
}
