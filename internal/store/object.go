// Package store is the durable object layer under the DHT: versioned
// objects with tombstones, pluggable backends (a plain in-memory map for
// simulations, an append-only WAL with snapshot compaction for live
// nodes), and Merkle range summaries that let replicas reconcile with
// traffic proportional to their divergence instead of their data size.
//
// The version rules make replica merge deterministic and convergent:
// every write carries a per-key monotonic version assigned by the key's
// root, ties break on the writer's origin identifier, and residual ties
// (same version and origin, different bytes — possible only across
// pathological retries) break on the content digest, so any two replicas
// that have seen the same set of writes store identical bytes. Deletes
// are tombstones: a versioned object with no value that propagates
// through the same replication and anti-entropy paths as a write, so a
// deleted key cannot be resurrected by a stale replica.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"

	"mspastry/internal/id"
)

// Object is one versioned value under a key. The zero Object (version 0)
// is "never written": any real write supersedes it.
type Object struct {
	Key id.ID
	// Version is the per-key monotonic write counter, assigned by the
	// key's root at write time (previous version + 1).
	Version uint64
	// Origin identifies the assigning root (its ID's high 64 bits) and
	// breaks ties between concurrent same-version writes from diverged
	// roots.
	Origin uint64
	// Tombstone marks a deleted key. Tombstones replicate like writes so
	// deletion propagates instead of resurrecting.
	Tombstone bool
	Value     []byte
}

// DigestLen is the truncated SHA-256 length used throughout the Merkle
// summaries and key-summary wire entries.
const DigestLen = 16

// Digest is a truncated SHA-256 of an object's identity and content.
type Digest [DigestLen]byte

// Digest hashes the object's full identity (key, version, origin,
// tombstone flag and value). Two replicas hold bit-identical state for a
// key iff their digests match.
func (o Object) Digest() Digest {
	h := sha256.New()
	var hdr [34]byte
	copy(hdr[:16], o.Key.Bytes())
	binary.BigEndian.PutUint64(hdr[16:24], o.Version)
	binary.BigEndian.PutUint64(hdr[24:32], o.Origin)
	if o.Tombstone {
		hdr[32] = 1
	}
	hdr[33] = byte(len(o.Value)) // cheap length domain-separation
	h.Write(hdr[:])
	h.Write(o.Value)
	var d Digest
	copy(d[:], h.Sum(nil))
	return d
}

// Supersedes reports whether o must replace other when both claim the
// same key. The order is total and agreed by all nodes: higher version
// wins, then higher origin, then the larger content digest, so merging
// is commutative and replicas converge no matter the delivery order.
func (o Object) Supersedes(other Object) bool {
	if o.Version != other.Version {
		return o.Version > other.Version
	}
	if o.Origin != other.Origin {
		return o.Origin > other.Origin
	}
	if o.Tombstone != other.Tombstone || !bytes.Equal(o.Value, other.Value) {
		a, b := o.Digest(), other.Digest()
		return bytes.Compare(a[:], b[:]) > 0
	}
	return false
}

// Summary is the fixed-size comparison record exchanged during
// anti-entropy before any value moves: enough to decide which side's
// copy supersedes, at ~40 bytes per key instead of the value.
type Summary struct {
	Key       id.ID
	Version   uint64
	Origin    uint64
	Tombstone bool
	Dig       Digest
}

// Summarize extracts an object's comparison record.
func (o Object) Summarize() Summary {
	return Summary{Key: o.Key, Version: o.Version, Origin: o.Origin,
		Tombstone: o.Tombstone, Dig: o.Digest()}
}

// Supersedes reports whether the summarised remote object must replace
// the local one, under the same total order as Object.Supersedes.
func (s Summary) Supersedes(local Object) bool {
	if s.Version != local.Version {
		return s.Version > local.Version
	}
	if s.Origin != local.Origin {
		return s.Origin > local.Origin
	}
	ld := local.Digest()
	return bytes.Compare(s.Dig[:], ld[:]) > 0
}

// Object wire/WAL encoding:
//
//	flags(1) | key(16) | version uvarint | origin uvarint | value...
//
// The value runs to the end of the buffer, so batched streams must
// length-prefix each object themselves (the WAL frames records, the DHT
// wire carries one object per message).
const objFlagTombstone = 0x01

// EncodeObject appends o's canonical encoding to dst and returns the
// extended slice.
func EncodeObject(dst []byte, o Object) []byte {
	flags := byte(0)
	if o.Tombstone {
		flags |= objFlagTombstone
	}
	dst = append(dst, flags)
	dst = append(dst, o.Key.Bytes()...)
	dst = binary.AppendUvarint(dst, o.Version)
	dst = binary.AppendUvarint(dst, o.Origin)
	return append(dst, o.Value...)
}

// DecodeObject parses an object encoded by EncodeObject. The value
// aliases buf.
func DecodeObject(buf []byte) (Object, bool) {
	if len(buf) < 19 || buf[0]&^objFlagTombstone != 0 {
		return Object{}, false
	}
	o := Object{Tombstone: buf[0]&objFlagTombstone != 0, Key: id.FromBytes(buf[1:17])}
	rest := buf[17:]
	v, n := binary.Uvarint(rest)
	if n <= 0 {
		return Object{}, false
	}
	o.Version = v
	rest = rest[n:]
	v, n = binary.Uvarint(rest)
	if n <= 0 {
		return Object{}, false
	}
	o.Origin = v
	o.Value = rest[n:]
	if o.Tombstone && len(o.Value) != 0 {
		return Object{}, false
	}
	if o.Version == 0 {
		return Object{}, false // version 0 is reserved for "never written"
	}
	return o, true
}
