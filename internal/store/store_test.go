package store

import (
	"bytes"
	"math/rand"
	"testing"

	"mspastry/internal/id"
)

func obj(hi, lo uint64, ver, origin uint64, val string) Object {
	return Object{Key: id.New(hi, lo), Version: ver, Origin: origin, Value: []byte(val)}
}

func TestObjectCodecRoundTrip(t *testing.T) {
	cases := []Object{
		obj(1, 2, 1, 7, "hello"),
		obj(0, 0, 3, 0, ""),
		{Key: id.New(9, 9), Version: 5, Origin: 42, Tombstone: true},
		obj(^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0), "x"),
	}
	for _, want := range cases {
		got, ok := DecodeObject(EncodeObject(nil, want))
		if !ok {
			t.Fatalf("decode failed for %+v", want)
		}
		if got.Key != want.Key || got.Version != want.Version ||
			got.Origin != want.Origin || got.Tombstone != want.Tombstone ||
			!bytes.Equal(got.Value, want.Value) {
			t.Fatalf("roundtrip: got %+v want %+v", got, want)
		}
	}
	// Garbage rejection.
	for _, bad := range [][]byte{nil, {0}, {0xff, 1, 2}, make([]byte, 18)} {
		if _, ok := DecodeObject(bad); ok {
			t.Fatalf("accepted garbage %v", bad)
		}
	}
	// Version 0 is reserved.
	zero := EncodeObject(nil, Object{Key: id.New(1, 1), Version: 0})
	if _, ok := DecodeObject(zero); ok {
		t.Fatal("accepted version-0 object")
	}
}

func TestSupersedesTotalOrder(t *testing.T) {
	a := obj(1, 1, 2, 5, "a")
	b := obj(1, 1, 1, 9, "b")
	if !a.Supersedes(b) || b.Supersedes(a) {
		t.Fatal("higher version must win regardless of origin")
	}
	c, d := obj(1, 1, 3, 5, "c"), obj(1, 1, 3, 6, "d")
	if !d.Supersedes(c) || c.Supersedes(d) {
		t.Fatal("equal version: higher origin must win")
	}
	// Same version and origin, different bytes: exactly one side wins.
	e, f := obj(1, 1, 3, 5, "e"), obj(1, 1, 3, 5, "f")
	if e.Supersedes(f) == f.Supersedes(e) {
		t.Fatal("content tiebreak must pick exactly one winner")
	}
	// Identical objects: neither supersedes (Apply is idempotent).
	if a.Supersedes(a) {
		t.Fatal("object supersedes itself")
	}
	// Summary ordering agrees with the object ordering.
	if !d.Summarize().Supersedes(c) || c.Summarize().Supersedes(d) {
		t.Fatal("summary order disagrees with object order")
	}
}

func TestMemoryApplyMerge(t *testing.T) {
	m := NewMemory()
	v1 := obj(1, 1, 1, 5, "one")
	if applied, _ := m.Apply(v1); !applied {
		t.Fatal("first write not applied")
	}
	// Stale write ignored.
	if applied, _ := m.Apply(obj(1, 1, 1, 4, "stale")); applied {
		t.Fatal("stale write applied")
	}
	if got, _ := m.Get(id.New(1, 1)); string(got.Value) != "one" {
		t.Fatalf("value = %q", got.Value)
	}
	// Newer write replaces.
	if applied, _ := m.Apply(obj(1, 1, 2, 5, "two")); !applied {
		t.Fatal("newer write not applied")
	}
	if m.Len() != 1 {
		t.Fatalf("len = %d", m.Len())
	}
	// Tombstone hides the key from Len but stays retrievable.
	tomb := Object{Key: id.New(1, 1), Version: 3, Origin: 5, Tombstone: true}
	if applied, _ := m.Apply(tomb); !applied {
		t.Fatal("tombstone not applied")
	}
	if m.Len() != 0 || m.Stats().Tombstones != 1 {
		t.Fatalf("after tombstone: len=%d stats=%+v", m.Len(), m.Stats())
	}
	if got, ok := m.Get(id.New(1, 1)); !ok || !got.Tombstone {
		t.Fatal("tombstone not retrievable")
	}
	// A stale value cannot resurrect the deleted key.
	if applied, _ := m.Apply(obj(1, 1, 2, 9, "zombie")); applied {
		t.Fatal("stale write resurrected a tombstone")
	}
	// Drop removes entirely.
	if err := m.Drop(id.New(1, 1)); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Get(id.New(1, 1)); ok || m.Stats().Tombstones != 0 {
		t.Fatal("drop left state behind")
	}
}

func TestRangeDigestDetectsDivergence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a, b := NewMemory(), NewMemory()
	var keys []id.ID
	for i := 0; i < 200; i++ {
		o := Object{Key: id.Random(rng), Version: 1, Origin: 7, Value: []byte{byte(i)}}
		keys = append(keys, o.Key)
		a.Apply(o)
		b.Apply(o)
	}
	lo, hi, _ := MinimalArc(keys)
	da := SummarizeRange(a, lo, hi)
	db := SummarizeRange(b, lo, hi)
	if da.Root() != db.Root() {
		t.Fatal("identical state, divergent roots")
	}
	if diff := da.DiffBuckets(&db); len(diff) != 0 {
		t.Fatalf("identical state, %d divergent buckets", len(diff))
	}
	// Mutate one key on b: root and exactly that key's bucket diverge.
	mutated := keys[17]
	b.Apply(Object{Key: mutated, Version: 2, Origin: 7, Value: []byte("new")})
	db = SummarizeRange(b, lo, hi)
	if da.Root() == db.Root() {
		t.Fatal("divergent state, equal roots")
	}
	diff := da.DiffBuckets(&db)
	if len(diff) != 1 || diff[0] != BucketOf(mutated) {
		t.Fatalf("diff buckets = %v, want [%d]", diff, BucketOf(mutated))
	}
	// Keys outside the arc are invisible to the digest.
	outside := SummarizeRange(a, mutated, mutated)
	count := 0
	for i := range outside.Buckets {
		if outside.Buckets[i] != (Digest{}) {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("single-key arc digested %d buckets", count)
	}
}

func TestMinimalArc(t *testing.T) {
	if _, _, ok := MinimalArc(nil); ok {
		t.Fatal("empty set produced an arc")
	}
	one := id.New(5, 5)
	if lo, hi, ok := MinimalArc([]id.ID{one}); !ok || lo != one || hi != one {
		t.Fatal("singleton arc wrong")
	}
	// A cluster of nearby keys: the arc must span them and stay tight.
	keys := []id.ID{id.New(100, 0), id.New(101, 0), id.New(103, 0)}
	lo, hi, _ := MinimalArc(keys)
	if lo != id.New(100, 0) || hi != id.New(103, 0) {
		t.Fatalf("arc = [%s, %s]", lo, hi)
	}
	// A cluster straddling zero must wrap, not span almost the full ring.
	wrap := []id.ID{id.New(^uint64(0), 5), id.New(0, 3), id.New(1, 0)}
	lo, hi, _ = MinimalArc(wrap)
	if lo != id.New(^uint64(0), 5) || hi != id.New(1, 0) {
		t.Fatalf("wrapping arc = [%s, %s]", lo, hi)
	}
	for _, k := range wrap {
		if !id.InRangeCW(lo, hi, k) {
			t.Fatalf("key %s outside its arc", k)
		}
	}
}
