package store

import (
	"crypto/sha256"

	"mspastry/internal/id"
)

// Anti-entropy compares replica state cheapest-first: an 16-byte range
// root, then — only on mismatch — one digest per bucket, then — only for
// divergent buckets — per-key summaries, and values move last, one per
// truly divergent key. RangeDigest is that two-level Merkle tree over the
// objects whose keys fall on a clockwise ring arc.

// RangeBuckets is the fan-out of the bucket layer. Keys map to buckets by
// the low 6 bits of their Lo word: bucket membership is global, so both
// replicas agree on it without coordination, and — because an arc is a
// narrow slice of the ring whose keys share their *high* bits — low-bit
// bucketing spreads an arc's keys uniformly across all buckets instead of
// piling them into one. A single divergent key then dirties a bucket
// holding ~1/64th of the arc, keeping the per-key summary exchange small.
const RangeBuckets = 64

// BucketOf returns the bucket index of a key (low 6 bits of its Lo word).
func BucketOf(key id.ID) int { return int(key.Lo & (RangeBuckets - 1)) }

// RangeDigest summarises the objects of one backend within the clockwise
// arc [Lo, Hi] (inclusive). Each bucket digest is the XOR of its member
// objects' digests — order-independent, so replicas need not iterate in
// the same order — and Root hashes the arc bounds plus the bucket layer.
type RangeDigest struct {
	Lo, Hi  id.ID
	Buckets [RangeBuckets]Digest
}

// SummarizeRange builds the digest of b's objects (tombstones included)
// on the arc [lo, hi].
func SummarizeRange(b Backend, lo, hi id.ID) RangeDigest {
	rd := RangeDigest{Lo: lo, Hi: hi}
	b.Range(func(o Object) bool {
		if id.InRangeCW(lo, hi, o.Key) {
			rd.add(o)
		}
		return true
	})
	return rd
}

func (rd *RangeDigest) add(o Object) {
	d := o.Digest()
	bkt := &rd.Buckets[BucketOf(o.Key)]
	for i := range bkt {
		bkt[i] ^= d[i]
	}
}

// Root hashes the arc bounds and every bucket digest into the single
// comparison value exchanged first.
func (rd *RangeDigest) Root() Digest {
	h := sha256.New()
	h.Write(rd.Lo.Bytes())
	h.Write(rd.Hi.Bytes())
	for i := range rd.Buckets {
		h.Write(rd.Buckets[i][:])
	}
	var d Digest
	copy(d[:], h.Sum(nil))
	return d
}

// DiffBuckets lists the bucket indices where rd and other disagree.
func (rd *RangeDigest) DiffBuckets(other *RangeDigest) []int {
	var diff []int
	for i := range rd.Buckets {
		if rd.Buckets[i] != other.Buckets[i] {
			diff = append(diff, i)
		}
	}
	return diff
}

// MinimalArc returns the smallest clockwise arc [lo, hi] covering every
// key in keys: sort the ring positions, find the largest clockwise gap
// between cyclically consecutive keys, and span everything else. The
// result is exact for any key set; ok is false for an empty set.
func MinimalArc(keys []id.ID) (lo, hi id.ID, ok bool) {
	switch len(keys) {
	case 0:
		return id.ID{}, id.ID{}, false
	case 1:
		return keys[0], keys[0], true
	}
	sorted := append([]id.ID(nil), keys...)
	// Insertion sort by absolute ring position; key sets are per-neighbour
	// responsibility groups, small by construction.
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].Less(sorted[j-1]); j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	// The largest clockwise gap from sorted[i] to its cyclic successor is
	// the span the arc must exclude.
	bestGap := sorted[len(sorted)-1].Clockwise(sorted[0])
	bestIdx := len(sorted) - 1
	for i := 0; i < len(sorted)-1; i++ {
		gap := sorted[i].Clockwise(sorted[i+1])
		if bestGap.Less(gap) {
			bestGap = gap
			bestIdx = i
		}
	}
	hi = sorted[bestIdx]
	lo = sorted[(bestIdx+1)%len(sorted)]
	return lo, hi, true
}
