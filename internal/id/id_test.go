package id

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndHalves(t *testing.T) {
	x := New(0x0123456789abcdef, 0xfedcba9876543210)
	if x.Hi != 0x0123456789abcdef || x.Lo != 0xfedcba9876543210 {
		t.Fatalf("New halves mismatch: %v", x)
	}
}

func TestStringFormat(t *testing.T) {
	x := New(0x1, 0x2)
	want := "00000000000000010000000000000002"
	if got := x.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestParseRoundTrip(t *testing.T) {
	f := func(hi, lo uint64) bool {
		x := New(hi, lo)
		got, err := Parse(x.String())
		return err == nil && got == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "xyz", "0123", "zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted garbage", bad)
		}
	}
}

func TestBytesRoundTrip(t *testing.T) {
	f := func(hi, lo uint64) bool {
		x := New(hi, lo)
		return FromBytes(x.Bytes()) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFromKeyDeterministic(t *testing.T) {
	a := FromKey("http://example.com/")
	b := FromKey("http://example.com/")
	c := FromKey("http://example.org/")
	if a != b {
		t.Fatalf("FromKey not deterministic: %v vs %v", a, b)
	}
	if a == c {
		t.Fatalf("FromKey collision for distinct keys")
	}
}

func TestCmpOrdering(t *testing.T) {
	cases := []struct {
		x, y ID
		want int
	}{
		{Zero, Zero, 0},
		{Zero, Max, -1},
		{Max, Zero, 1},
		{New(1, 0), New(0, ^uint64(0)), 1},
		{New(0, 1), New(0, 2), -1},
		{New(5, 5), New(5, 5), 0},
	}
	for _, c := range cases {
		if got := c.x.Cmp(c.y); got != c.want {
			t.Errorf("Cmp(%v,%v) = %d, want %d", c.x, c.y, got, c.want)
		}
	}
}

func TestAddSubInverse(t *testing.T) {
	f := func(a, b, c, d uint64) bool {
		x, y := New(a, b), New(c, d)
		return x.Add(y).Sub(y) == x && x.Sub(y).Add(y) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddCarry(t *testing.T) {
	x := New(0, ^uint64(0))
	got := x.Add(New(0, 1))
	if got != New(1, 0) {
		t.Fatalf("carry not propagated: %v", got)
	}
	if Max.Add(New(0, 1)) != Zero {
		t.Fatalf("wrap-around at 2^128 failed")
	}
}

func TestSubBorrow(t *testing.T) {
	if got := Zero.Sub(New(0, 1)); got != Max {
		t.Fatalf("borrow: got %v, want Max", got)
	}
	if got := New(1, 0).Sub(New(0, 1)); got != New(0, ^uint64(0)) {
		t.Fatalf("borrow across halves: got %v", got)
	}
}

func TestClockwiseDistance(t *testing.T) {
	a, b := New(0, 10), New(0, 3)
	if got := b.Clockwise(a); got != New(0, 7) {
		t.Fatalf("Clockwise(3->10) = %v, want 7", got)
	}
	// Going the other way wraps around the ring.
	if got := a.Clockwise(b); got != Max.Sub(New(0, 6)) {
		t.Fatalf("Clockwise(10->3) = %v", got)
	}
}

func TestDistanceSymmetric(t *testing.T) {
	f := func(a, b, c, d uint64) bool {
		x, y := New(a, b), New(c, d)
		return x.Distance(y) == y.Distance(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceAtMostHalfRing(t *testing.T) {
	f := func(a, b, c, d uint64) bool {
		x, y := New(a, b), New(c, d)
		return x.Distance(y).Cmp(Half) <= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceZeroIffEqual(t *testing.T) {
	f := func(a, b uint64) bool {
		x := New(a, b)
		return x.Distance(x).IsZero()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if New(0, 1).Distance(New(0, 2)).IsZero() {
		t.Fatal("distinct ids at distance zero")
	}
}

func TestCloserToKey(t *testing.T) {
	k := New(0, 100)
	if !CloserToKey(k, New(0, 99), New(0, 90)) {
		t.Fatal("99 should be closer to 100 than 90")
	}
	if CloserToKey(k, New(0, 90), New(0, 99)) {
		t.Fatal("90 should not be closer to 100 than 99")
	}
	// Tie: 98 and 102 are both at distance 2; the clockwise one (102) wins.
	if !CloserToKey(k, New(0, 102), New(0, 98)) {
		t.Fatal("tie-break should prefer clockwise candidate")
	}
	if CloserToKey(k, New(0, 98), New(0, 102)) {
		t.Fatal("tie-break asymmetry violated")
	}
	// Irreflexive.
	if CloserToKey(k, New(0, 98), New(0, 98)) {
		t.Fatal("CloserToKey must be irreflexive")
	}
}

func TestCloserToKeyTotalOrder(t *testing.T) {
	// For any key, CloserToKey must impose a strict total order: exactly one
	// of CloserToKey(k,a,b) and CloserToKey(k,b,a) holds when a != b.
	f := func(k1, k2, a1, a2, b1, b2 uint64) bool {
		k, a, b := New(k1, k2), New(a1, a2), New(b1, b2)
		if a == b {
			return !CloserToKey(k, a, b) && !CloserToKey(k, b, a)
		}
		return CloserToKey(k, a, b) != CloserToKey(k, b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDigitB4(t *testing.T) {
	x := New(0x0123456789abcdef, 0xfedcba9876543210)
	wantHi := []int{0x0, 0x1, 0x2, 0x3, 0x4, 0x5, 0x6, 0x7, 0x8, 0x9, 0xa, 0xb, 0xc, 0xd, 0xe, 0xf}
	for i, want := range wantHi {
		if got := x.Digit(i, 4); got != want {
			t.Errorf("Digit(%d,4) = %x, want %x", i, got, want)
		}
	}
	if got := x.Digit(16, 4); got != 0xf {
		t.Errorf("Digit(16,4) = %x, want f", got)
	}
	if got := x.Digit(31, 4); got != 0x0 {
		t.Errorf("Digit(31,4) = %x, want 0", got)
	}
}

func TestDigitB1MatchesBits(t *testing.T) {
	f := func(hi, lo uint64) bool {
		x := New(hi, lo)
		for i := 0; i < 128; i++ {
			var bit uint64
			if i < 64 {
				bit = (hi >> (63 - i)) & 1
			} else {
				bit = (lo >> (127 - i)) & 1
			}
			if x.Digit(i, 1) != int(bit) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDigitStraddlesBoundary(t *testing.T) {
	// With b=3, digit 21 covers bits 63..65, straddling the hi/lo boundary.
	x := New(1, 0) // bit 63 set (0-based from MSB: bit index 63)
	if got := x.Digit(21, 3); got != 0b100 {
		t.Fatalf("straddling digit = %b, want 100", got)
	}
	y := New(0, 1<<63) // bit 64 set
	if got := y.Digit(21, 3); got != 0b010 {
		t.Fatalf("straddling digit = %b, want 010", got)
	}
}

func TestDigitReconstruction(t *testing.T) {
	// Reassembling all base-2^b digits must reproduce the identifier's
	// leading NumDigits(b)*b bits, for every supported b.
	rng := rand.New(rand.NewSource(42))
	for b := 1; b <= 8; b++ {
		for trial := 0; trial < 20; trial++ {
			x := Random(rng)
			var acc ID
			for i := 0; i < NumDigits(b); i++ {
				d := x.Digit(i, b)
				acc = shiftLeft(acc, b)
				acc = acc.Add(New(0, uint64(d)))
			}
			rem := Bits - NumDigits(b)*b
			want := shiftRightLogical(x, rem)
			if acc != want {
				t.Fatalf("b=%d: digit reconstruction mismatch: %v vs %v", b, acc, want)
			}
		}
	}
}

func shiftLeft(x ID, n int) ID {
	if n >= 64 {
		return ID{Hi: x.Lo << (n - 64)}
	}
	if n == 0 {
		return x
	}
	return ID{Hi: x.Hi<<n | x.Lo>>(64-n), Lo: x.Lo << n}
}

func shiftRightLogical(x ID, n int) ID {
	if n >= 64 {
		return ID{Lo: x.Hi >> (n - 64)}
	}
	if n == 0 {
		return x
	}
	return ID{Hi: x.Hi >> n, Lo: x.Lo>>n | x.Hi<<(64-n)}
}

func TestDigitPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range digit")
		}
	}()
	Zero.Digit(32, 4)
}

func TestCommonPrefixLen(t *testing.T) {
	x := New(0x0123456789abcdef, 0)
	if got := CommonPrefixLen(x, x, 4); got != 32 {
		t.Fatalf("self prefix = %d, want 32", got)
	}
	y := New(0x0123456789abcdee, 0) // differs in hex digit 15
	if got := CommonPrefixLen(x, y, 4); got != 15 {
		t.Fatalf("prefix = %d, want 15", got)
	}
	z := New(0x1123456789abcdef, 0) // differs in first digit
	if got := CommonPrefixLen(x, z, 4); got != 0 {
		t.Fatalf("prefix = %d, want 0", got)
	}
}

func TestCommonPrefixLenAgreesWithDigits(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for b := 1; b <= 8; b++ {
		for trial := 0; trial < 50; trial++ {
			x, y := Random(rng), Random(rng)
			// Force longer shared prefixes occasionally.
			if trial%3 == 0 {
				y = x
				y.Lo ^= 1 << uint(rng.Intn(40))
			}
			got := CommonPrefixLen(x, y, b)
			want := 0
			for i := 0; i < NumDigits(b); i++ {
				if x.Digit(i, b) != y.Digit(i, b) {
					break
				}
				want++
			}
			if got != want {
				t.Fatalf("b=%d: CommonPrefixLen=%d, digit scan=%d (x=%v y=%v)", b, got, want, x, y)
			}
		}
	}
}

func TestBetween(t *testing.T) {
	lo, hi := New(0, 10), New(0, 20)
	for _, c := range []struct {
		k    ID
		want bool
	}{
		{New(0, 10), true},
		{New(0, 15), true},
		{New(0, 20), true},
		{New(0, 9), false},
		{New(0, 21), false},
	} {
		if got := Between(lo, hi, c.k); got != c.want {
			t.Errorf("Between(10,20,%v) = %v, want %v", c.k, got, c.want)
		}
	}
	// Wrapped arc: from near-Max to small values.
	wlo, whi := Max.Sub(New(0, 5)), New(0, 5)
	if !Between(wlo, whi, Max) || !Between(wlo, whi, Zero) || !Between(wlo, whi, New(0, 5)) {
		t.Fatal("wrapped arc membership failed")
	}
	if Between(wlo, whi, New(0, 6)) || Between(wlo, whi, Max.Sub(New(0, 6))) {
		t.Fatal("wrapped arc should exclude points outside")
	}
}

func TestRandomUniformDigits(t *testing.T) {
	// Smoke test: first digits of random ids should hit all 16 values.
	rng := rand.New(rand.NewSource(1))
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		seen[Random(rng).Digit(0, 4)] = true
	}
	if len(seen) != 16 {
		t.Fatalf("first-digit coverage = %d/16", len(seen))
	}
}

func TestNumDigits(t *testing.T) {
	for _, c := range []struct{ b, want int }{{1, 128}, {2, 64}, {3, 42}, {4, 32}, {8, 16}} {
		if got := NumDigits(c.b); got != c.want {
			t.Errorf("NumDigits(%d) = %d, want %d", c.b, got, c.want)
		}
	}
}

// referenceDigit is the original shift-arithmetic implementation; the
// table-driven Digit must agree with it at every (b, i) position.
func referenceDigit(x ID, i, b int) int {
	shift := Bits - (i+1)*b
	mask := uint64(1)<<b - 1
	if shift >= 64 {
		return int((x.Hi >> (shift - 64)) & mask)
	}
	lopart := x.Lo >> shift
	if shift+b-64 > 0 {
		lopart |= x.Hi << (64 - shift)
	}
	return int(lopart & mask)
}

func TestDigitTableMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ids := []ID{Zero, Max, Half, {Hi: 1}, {Lo: 1}, {Hi: ^uint64(0)}, {Lo: ^uint64(0)}}
	for i := 0; i < 64; i++ {
		ids = append(ids, Random(rng))
	}
	for b := 1; b <= 8; b++ {
		for _, x := range ids {
			for i := 0; i < NumDigits(b); i++ {
				if got, want := x.Digit(i, b), referenceDigit(x, i, b); got != want {
					t.Fatalf("Digit(%d, %d) of %s = %d, want %d", i, b, x, got, want)
				}
			}
		}
	}
}

func TestCommonPrefixLenTableMatchesReference(t *testing.T) {
	ref := func(x, y ID, b int) int {
		xor := ID{Hi: x.Hi ^ y.Hi, Lo: x.Lo ^ y.Lo}
		lz := leadingZeros(xor)
		n := lz / b
		if nd := NumDigits(b); n > nd {
			n = nd
		}
		return n
	}
	rng := rand.New(rand.NewSource(43))
	for b := 1; b <= 8; b++ {
		for trial := 0; trial < 256; trial++ {
			x, y := Random(rng), Random(rng)
			// Force long shared prefixes for a fraction of trials.
			if trial%4 == 0 {
				y = x
				y.Lo ^= uint64(1) << uint(rng.Intn(64))
			}
			if trial%8 == 0 {
				y = x
			}
			if got, want := CommonPrefixLen(x, y, b), ref(x, y, b); got != want {
				t.Fatalf("CommonPrefixLen(%s, %s, %d) = %d, want %d", x, y, b, got, want)
			}
		}
	}
}
