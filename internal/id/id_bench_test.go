package id

import (
	"math/rand"
	"testing"
)

// BenchmarkDigit measures base-2^b digit extraction, which routing calls
// for every routing-table row selection and repair-slot computation.
func BenchmarkDigit(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ids := make([]ID, 1024)
	for i := range ids {
		ids[i] = Random(rng)
	}
	b.Run("b4", func(b *testing.B) {
		var sink int
		for i := 0; i < b.N; i++ {
			sink += ids[i%len(ids)].Digit(i%NumDigits(4), 4)
		}
		_ = sink
	})
	b.Run("b3-straddle", func(b *testing.B) {
		var sink int
		for i := 0; i < b.N; i++ {
			sink += ids[i%len(ids)].Digit(i%NumDigits(3), 3)
		}
		_ = sink
	})
}

// BenchmarkCommonPrefixLen measures shared-prefix computation, run on
// every next-hop decision and join-row contribution.
func BenchmarkCommonPrefixLen(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	ids := make([]ID, 1024)
	for i := range ids {
		ids[i] = Random(rng)
	}
	var sink int
	for i := 0; i < b.N; i++ {
		sink += CommonPrefixLen(ids[i%len(ids)], ids[(i+1)%len(ids)], 4)
	}
	_ = sink
}
