// Package id implements 128-bit ring identifiers for structured overlays.
//
// Pastry (and therefore MSPastry) selects nodeIds and object keys uniformly
// at random from the set of 128-bit unsigned integers and maps a key k to the
// active node whose identifier is numerically closest to k modulo 2^128.
// This package provides the arithmetic that the overlay needs: modular
// addition and subtraction, ring distance, base-2^b digit extraction, and
// shared-prefix computation.
package id

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"
	"math/bits"
	"math/rand"
	"strconv"
)

// Bits is the width of an identifier in bits.
const Bits = 128

// ID is a 128-bit unsigned integer identifying a node or an object key on
// the Pastry ring. The zero value is the identifier 0.
type ID struct {
	Hi, Lo uint64
}

// Zero is the identifier 0.
var Zero = ID{}

// Max is the largest identifier, 2^128 - 1.
var Max = ID{Hi: ^uint64(0), Lo: ^uint64(0)}

// New builds an ID from its high and low 64-bit halves.
func New(hi, lo uint64) ID { return ID{Hi: hi, Lo: lo} }

// FromBytes interprets the first 16 bytes of buf as a big-endian 128-bit
// integer. It panics if buf is shorter than 16 bytes.
func FromBytes(buf []byte) ID {
	return ID{
		Hi: binary.BigEndian.Uint64(buf[0:8]),
		Lo: binary.BigEndian.Uint64(buf[8:16]),
	}
}

// FromKey hashes an application-level key (for example a URL) to an ID using
// SHA-1, as the Squirrel web cache does in the paper.
func FromKey(key string) ID {
	sum := sha1.Sum([]byte(key))
	return FromBytes(sum[:])
}

// Random draws an identifier uniformly at random from rng.
func Random(rng *rand.Rand) ID {
	return ID{Hi: rng.Uint64(), Lo: rng.Uint64()}
}

// Parse decodes the 32-hex-digit form produced by String.
func Parse(s string) (ID, error) {
	if len(s) != 32 {
		return ID{}, fmt.Errorf("id: %q is not 32 hex digits", s)
	}
	var out ID
	for i, half := range []*uint64{&out.Hi, &out.Lo} {
		v, err := strconv.ParseUint(s[i*16:(i+1)*16], 16, 64)
		if err != nil {
			return ID{}, fmt.Errorf("id: parse %q: %w", s, err)
		}
		*half = v
	}
	return out, nil
}

// Bytes returns the big-endian 16-byte encoding of x.
func (x ID) Bytes() []byte {
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[0:8], x.Hi)
	binary.BigEndian.PutUint64(buf[8:16], x.Lo)
	return buf[:]
}

// String renders x as 32 lowercase hex digits.
func (x ID) String() string { return fmt.Sprintf("%016x%016x", x.Hi, x.Lo) }

// IsZero reports whether x is the identifier 0.
func (x ID) IsZero() bool { return x.Hi == 0 && x.Lo == 0 }

// Cmp compares x and y as plain 128-bit unsigned integers. It returns -1 if
// x < y, 0 if x == y and +1 if x > y.
func (x ID) Cmp(y ID) int {
	switch {
	case x.Hi < y.Hi:
		return -1
	case x.Hi > y.Hi:
		return 1
	case x.Lo < y.Lo:
		return -1
	case x.Lo > y.Lo:
		return 1
	default:
		return 0
	}
}

// Less reports whether x < y as plain 128-bit unsigned integers.
func (x ID) Less(y ID) bool { return x.Cmp(y) < 0 }

// Add returns x + y modulo 2^128.
func (x ID) Add(y ID) ID {
	lo := x.Lo + y.Lo
	carry := uint64(0)
	if lo < x.Lo {
		carry = 1
	}
	return ID{Hi: x.Hi + y.Hi + carry, Lo: lo}
}

// Sub returns x - y modulo 2^128.
func (x ID) Sub(y ID) ID {
	lo := x.Lo - y.Lo
	borrow := uint64(0)
	if x.Lo < y.Lo {
		borrow = 1
	}
	return ID{Hi: x.Hi - y.Hi - borrow, Lo: lo}
}

// Clockwise returns the clockwise (increasing-identifier) distance from x to
// y on the ring, that is (y - x) mod 2^128.
func (x ID) Clockwise(y ID) ID { return y.Sub(x) }

// Distance returns the ring distance between x and y: the minimum of the
// clockwise and counter-clockwise distances. This is the metric Pastry uses
// to define a key's root ("numerically closest modulo 2^128").
func (x ID) Distance(y ID) ID {
	cw := x.Clockwise(y)
	ccw := y.Clockwise(x)
	if cw.Cmp(ccw) <= 0 {
		return cw
	}
	return ccw
}

// Half is 2^127, the midpoint of the ring.
var Half = ID{Hi: 1 << 63}

// CloserToKey reports whether candidate a is strictly closer to key k than
// candidate b under the ring-distance metric, breaking exact ties in favour
// of the numerically smaller clockwise distance from k (so the tie-break is
// deterministic and agreed by all nodes).
func CloserToKey(k, a, b ID) bool {
	da, db := k.Distance(a), k.Distance(b)
	switch da.Cmp(db) {
	case -1:
		return true
	case 1:
		return false
	}
	// Equal ring distances. This happens either because a == b or because a
	// and b are diametrically placed around k; prefer the clockwise one.
	return k.Clockwise(a).Cmp(k.Clockwise(b)) < 0
}

// digitStep is the precomputed extraction plan for one (b, i) digit
// position: where the digit's least-significant bit sits and whether the
// digit straddles the Hi/Lo word boundary.
type digitStep struct {
	// shift is the right-shift inside the containing word: Hi when hi is
	// set, Lo otherwise.
	shift uint8
	// hi marks digits living entirely in the high word.
	hi bool
	// merge, when non-zero, is the left-shift applied to Hi to supply the
	// high bits of a digit that straddles the word boundary (b=3, 5, 6, 7).
	merge uint8
}

// digitPlans[b] holds one step per digit position; digitMasks[b] is the
// digit's value mask. Routing extracts a digit on every routing-table row
// selection and repair-slot computation, so the plans are built once at
// package init instead of re-deriving shift arithmetic per call.
var (
	digitPlans [9][]digitStep
	digitMasks [9]uint64
)

func init() {
	for b := 1; b <= 8; b++ {
		digitMasks[b] = uint64(1)<<b - 1
		nd := Bits / b
		digitPlans[b] = make([]digitStep, nd)
		for i := 0; i < nd; i++ {
			shift := Bits - (i+1)*b
			if shift >= 64 {
				digitPlans[b][i] = digitStep{shift: uint8(shift - 64), hi: true}
				continue
			}
			st := digitStep{shift: uint8(shift)}
			if shift+b > 64 {
				st.merge = uint8(64 - shift)
			}
			digitPlans[b][i] = st
		}
	}
}

// Digit returns the i-th digit of x (0-based from the most significant end)
// when x is written in base 2^b. It panics if the digit index is out of
// range for the given base.
func (x ID) Digit(i, b int) int {
	if b <= 0 || b > 8 {
		panic(fmt.Sprintf("id: digit base 2^%d out of range", b))
	}
	plan := digitPlans[b]
	if i < 0 || i >= len(plan) {
		panic(fmt.Sprintf("id: digit index %d out of range for b=%d", i, b))
	}
	st := plan[i]
	if st.hi {
		return int((x.Hi >> st.shift) & digitMasks[b])
	}
	// The digit may straddle the 64-bit boundary when 128 is not a multiple
	// of b (e.g. b=3). Reassemble it from both halves.
	v := x.Lo >> st.shift
	if st.merge != 0 {
		v |= x.Hi << st.merge
	}
	return int(v & digitMasks[b])
}

// NumDigits returns the number of base-2^b digits in an identifier,
// discarding any remainder bits at the least-significant end (relevant only
// when b does not divide 128, as for b=3).
func NumDigits(b int) int { return Bits / b }

// CommonPrefixLen returns the number of leading base-2^b digits shared by x
// and y. The arithmetic form stays within the compiler's inlining budget
// (unlike a lookup table), and the division strength-reduces to a shift at
// call sites where b is a power-of-two constant.
func CommonPrefixLen(x, y ID, b int) int {
	xor := ID{Hi: x.Hi ^ y.Hi, Lo: x.Lo ^ y.Lo}
	n := leadingZeros(xor) / b
	if nd := Bits / b; n > nd {
		n = nd
	}
	return n
}

func leadingZeros(x ID) int {
	if x.Hi != 0 {
		return bits.LeadingZeros64(x.Hi)
	}
	return 64 + bits.LeadingZeros64(x.Lo)
}

// InRangeCW reports whether m lies on the clockwise arc from a to b,
// inclusive of both endpoints. When a == b the arc is the single point a.
func InRangeCW(a, b, m ID) bool {
	return a.Clockwise(m).Cmp(a.Clockwise(b)) <= 0
}

// Between reports whether key k lies within the closed identifier arc
// spanned clockwise from lo to hi. This is the test routei uses against the
// leftmost and rightmost leaf-set members.
func Between(lo, hi, k ID) bool { return InRangeCW(lo, hi, k) }
