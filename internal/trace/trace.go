// Package trace models node arrival/departure (churn) traces.
//
// The paper drives its fault injection with three traces measured on
// deployed systems — Gnutella (Saroiu et al.), OverNet (Bhagwan et al.) and
// the Microsoft corporate network (Bolosky et al.) — plus artificial traces
// with Poisson arrivals and exponential session times. The measured traces
// are not publicly redistributable, so this package generates synthetic
// traces that match their published statistics: population, trace length,
// mean/median session time, active-node range, and the daily and weekly
// arrival patterns visible in the paper's Figure 3. See DESIGN.md for the
// substitution argument.
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// Kind distinguishes arrivals from departures.
type Kind int

const (
	// Join is a node arrival: the node starts its join protocol.
	Join Kind = iota + 1
	// Leave is a node departure. The paper injects departures as crash
	// failures: the node simply stops responding.
	Leave
)

func (k Kind) String() string {
	switch k {
	case Join:
		return "join"
	case Leave:
		return "leave"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one arrival or departure of a node slot.
type Event struct {
	At   time.Duration
	Node int
	Kind Kind
}

// Trace is a churn schedule: a set of nodes active at time zero and a
// time-ordered list of subsequent joins and leaves.
type Trace struct {
	Name     string
	Duration time.Duration
	// Nodes is the number of distinct node slots referenced by the trace.
	Nodes int
	// Initial lists the nodes active at time zero.
	Initial []int
	// Events are sorted by At (ties broken by insertion order) and occur
	// strictly after time zero.
	Events []Event
}

// Config parameterises the synthetic churn generator.
type Config struct {
	Name     string
	Duration time.Duration

	// Closed-world model (Gnutella/OverNet/Microsoft): Population node
	// slots cycle between online and offline.
	Population     int
	OnlineFraction float64

	// Open-world model (Poisson traces): fresh nodes arrive in a Poisson
	// process sized to keep TargetActive nodes alive on average. Set
	// Population to zero to select this model.
	TargetActive int

	// MeanSession is the mean session time. If MedianSession is non-zero
	// and below the mean, sessions are lognormal with that mean and median
	// (heavy-tailed, as measured in real systems); otherwise exponential.
	MeanSession   time.Duration
	MedianSession time.Duration

	// Diurnal and Weekly modulate arrival intensity: Diurnal is the
	// relative amplitude of a 24 h sine; Weekly scales weekend intensity
	// down. Zero disables the pattern.
	Diurnal float64
	Weekly  float64

	Seed int64
}

// Gnutella returns the configuration matching the paper's Gnutella trace:
// 17,000 unique nodes over 60 hours, average session 2.3 h, median 1 h,
// 1,300–2,700 nodes active at a time.
func Gnutella() Config {
	return Config{
		Name:           "gnutella",
		Duration:       60 * time.Hour,
		Population:     17000,
		OnlineFraction: 0.117, // ~2000 of 17000 active
		MeanSession:    138 * time.Minute,
		MedianSession:  60 * time.Minute,
		Diurnal:        0.45,
		Seed:           1,
	}
}

// OverNet returns the configuration matching the paper's OverNet trace:
// 1,468 unique nodes over 7 days, average session 134 min, median 79 min,
// 260–650 active.
func OverNet() Config {
	return Config{
		Name:           "overnet",
		Duration:       7 * 24 * time.Hour,
		Population:     1468,
		OnlineFraction: 0.31, // ~455 of 1468 active
		MeanSession:    134 * time.Minute,
		MedianSession:  79 * time.Minute,
		Diurnal:        0.4,
		Weekly:         0.25,
		Seed:           2,
	}
}

// Microsoft returns the configuration matching the paper's Microsoft trace:
// 20,000 machines (sampled from 65,000) over 37 days, average session
// 37.7 h, 14,700–15,600 active — an order of magnitude lower failure rate
// than the open-Internet traces.
func Microsoft() Config {
	return Config{
		Name:           "microsoft",
		Duration:       37 * 24 * time.Hour,
		Population:     20000,
		OnlineFraction: 0.7575,
		MeanSession:    37*time.Hour + 42*time.Minute,
		Diurnal:        0.25,
		Weekly:         0.15,
		Seed:           3,
	}
}

// Poisson returns the paper's artificial trace family: Poisson arrivals and
// exponential session times sized to keep avgNodes nodes active on average.
// The paper uses session times of 5, 15, 30, 60, 120 and 600 minutes with
// 10,000 average nodes.
func Poisson(session time.Duration, avgNodes int, duration time.Duration) Config {
	return Config{
		Name:         fmt.Sprintf("poisson-%dm", int(session.Minutes())),
		Duration:     duration,
		TargetActive: avgNodes,
		MeanSession:  session,
		Seed:         4,
	}
}

// Scaled shrinks the trace: population (or target active count) divided by
// div and duration capped at maxDur, preserving session-time distribution
// and therefore per-node churn rates. Used by tests and benchmarks.
func (c Config) Scaled(div int, maxDur time.Duration) Config {
	if div > 1 {
		c.Population /= div
		c.TargetActive /= div
	}
	if maxDur > 0 && c.Duration > maxDur {
		c.Duration = maxDur
	}
	return c
}

// Generate builds the trace for a configuration. Generation is
// deterministic for a given configuration (including Seed).
func Generate(cfg Config) *Trace {
	if cfg.MeanSession <= 0 {
		panic("trace: MeanSession must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Population > 0 {
		return generateClosed(cfg, rng)
	}
	if cfg.TargetActive > 0 {
		return generateOpen(cfg, rng)
	}
	panic("trace: need Population or TargetActive")
}

func generateClosed(cfg Config, rng *rand.Rand) *Trace {
	tr := &Trace{Name: cfg.Name, Duration: cfg.Duration, Nodes: cfg.Population}
	offMean := cfg.MeanSession.Seconds() * (1/cfg.OnlineFraction - 1)
	for node := 0; node < cfg.Population; node++ {
		t := 0.0
		if rng.Float64() < cfg.OnlineFraction {
			tr.Initial = append(tr.Initial, node)
			t = residualSession(cfg, rng)
			tr.appendEvent(t, node, Leave, cfg)
		}
		// The node is offline at time t; alternate off-period/session.
		for t < cfg.Duration.Seconds() {
			t = nextArrival(cfg, rng, t, 1/offMean)
			tr.appendEvent(t, node, Join, cfg)
			if t >= cfg.Duration.Seconds() {
				break
			}
			t += sampleSession(cfg, rng)
			tr.appendEvent(t, node, Leave, cfg)
		}
	}
	tr.finish()
	return tr
}

// nextArrival advances from time t to the next event of a non-homogeneous
// Poisson process with base rate baseHazard modulated by intensity(cfg, .),
// using Lewis-Shedler thinning. The base hazard is renormalised by the
// time-averaged intensity so that the long-run event rate stays baseHazard
// regardless of the daily/weekly pattern.
func nextArrival(cfg Config, rng *rand.Rand, t, baseHazard float64) float64 {
	avg := meanIntensity(cfg)
	maxI := 1 + cfg.Diurnal
	ceiling := baseHazard * maxI / avg
	for {
		t += rng.ExpFloat64() / ceiling
		if rng.Float64()*maxI <= intensity(cfg, t) {
			return t
		}
		if t > cfg.Duration.Seconds() {
			return t
		}
	}
}

// meanIntensity is the long-run time average of intensity(cfg, .): the
// diurnal sine averages out, the weekly dip removes Weekly on 2 of 7 days.
func meanIntensity(cfg Config) float64 {
	return 1 - 2*cfg.Weekly/7
}

func generateOpen(cfg Config, rng *rand.Rand) *Trace {
	tr := &Trace{Name: cfg.Name, Duration: cfg.Duration}
	next := 0
	// Warm start: TargetActive nodes alive at time zero; exponential
	// sessions are memoryless, so a fresh session is the correct residual.
	for i := 0; i < cfg.TargetActive; i++ {
		node := next
		next++
		tr.Initial = append(tr.Initial, node)
		tr.appendEvent(sampleSession(cfg, rng), node, Leave, cfg)
	}
	// Poisson arrivals at rate N/E[S] keep the population stationary.
	lambda := float64(cfg.TargetActive) / cfg.MeanSession.Seconds()
	t := 0.0
	for {
		t = nextArrival(cfg, rng, t, lambda)
		if t >= cfg.Duration.Seconds() {
			break
		}
		node := next
		next++
		tr.appendEvent(t, node, Join, cfg)
		tr.appendEvent(t+sampleSession(cfg, rng), node, Leave, cfg)
	}
	tr.Nodes = next
	tr.finish()
	return tr
}

func (tr *Trace) appendEvent(tSec float64, node int, kind Kind, cfg Config) {
	if tSec <= 0 || tSec >= cfg.Duration.Seconds() {
		return
	}
	tr.Events = append(tr.Events, Event{
		At:   time.Duration(tSec * float64(time.Second)),
		Node: node,
		Kind: kind,
	})
}

func (tr *Trace) finish() {
	sort.SliceStable(tr.Events, func(i, j int) bool { return tr.Events[i].At < tr.Events[j].At })
}

// sampleSession draws one session length in seconds.
func sampleSession(cfg Config, rng *rand.Rand) float64 {
	mean := cfg.MeanSession.Seconds()
	med := cfg.MedianSession.Seconds()
	if med <= 0 || med >= mean {
		return rng.ExpFloat64() * mean
	}
	// Lognormal with the requested mean and median:
	// median = e^mu, mean = e^(mu + sigma^2/2).
	mu := math.Log(med)
	sigma := math.Sqrt(2 * (math.Log(mean) - mu))
	return math.Exp(mu + sigma*rng.NormFloat64())
}

// residualSession draws the remaining session time of a node that is
// already online at time zero. For a stationary alternating renewal
// process the observed session is length-biased and the residual is a
// uniform fraction of it: exponential sessions are memoryless (fresh
// sample), and the length-biased version of lognormal(mu, sigma) is
// lognormal(mu+sigma^2, sigma).
func residualSession(cfg Config, rng *rand.Rand) float64 {
	mean := cfg.MeanSession.Seconds()
	med := cfg.MedianSession.Seconds()
	if med <= 0 || med >= mean {
		return rng.ExpFloat64() * mean
	}
	mu := math.Log(med)
	sigma := math.Sqrt(2 * (math.Log(mean) - mu))
	biased := math.Exp(mu + sigma*sigma + sigma*rng.NormFloat64())
	return biased * rng.Float64()
}

// intensity is the arrival-intensity multiplier at time t (seconds),
// combining the daily and weekly patterns.
func intensity(cfg Config, tSec float64) float64 {
	v := 1.0
	if cfg.Diurnal > 0 {
		v *= 1 + cfg.Diurnal*math.Sin(2*math.Pi*tSec/86400)
	}
	if cfg.Weekly > 0 {
		// Days 5 and 6 of each week are the weekend.
		day := int(tSec/86400) % 7
		if day >= 5 {
			v *= 1 - cfg.Weekly
		}
	}
	if v < 0.05 {
		v = 0.05
	}
	return v
}
