package trace

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// TestGeneratorPropertyClosedWorld: any plausible closed-world
// configuration generates a valid trace whose active population stays
// within [0, Population] and roughly around OnlineFraction*Population.
func TestGeneratorPropertyClosedWorld(t *testing.T) {
	f := func(popRaw uint16, fracRaw, sessRaw uint8, diurnalRaw, weeklyRaw uint8, seed int64) bool {
		cfg := Config{
			Name:           "prop",
			Duration:       6 * time.Hour,
			Population:     int(popRaw%400) + 50,
			OnlineFraction: 0.1 + float64(fracRaw%80)/100,
			MeanSession:    time.Duration(int(sessRaw%110)+10) * time.Minute,
			Diurnal:        float64(diurnalRaw%80) / 100,
			Weekly:         float64(weeklyRaw%50) / 100,
			Seed:           seed,
		}
		tr := Generate(cfg)
		if err := tr.Validate(); err != nil {
			t.Logf("config %+v invalid: %v", cfg, err)
			return false
		}
		lo, hi := tr.ActiveBounds()
		if lo < 0 || hi > cfg.Population {
			t.Logf("bounds [%d,%d] outside [0,%d]", lo, hi, cfg.Population)
			return false
		}
		expect := cfg.OnlineFraction * float64(cfg.Population)
		// Bounds must bracket a generous band around the expectation
		// (small populations are noisy; diurnal waves swing the count).
		if float64(hi) < expect*0.4 || float64(lo) > expect*2.2+10 {
			t.Logf("bounds [%d,%d] vs expected %.0f", lo, hi, expect)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}

// TestGeneratorPropertyOpenWorld: Poisson traces stay stationary for any
// session time.
func TestGeneratorPropertyOpenWorld(t *testing.T) {
	f := func(sessRaw uint8, nodesRaw uint16, seed int64) bool {
		session := time.Duration(int(sessRaw%115)+5) * time.Minute
		nodes := int(nodesRaw%300) + 100
		cfg := Poisson(session, nodes, 4*time.Hour)
		cfg.Seed = seed
		tr := Generate(cfg)
		if err := tr.Validate(); err != nil {
			t.Logf("poisson %v/%d invalid: %v", session, nodes, err)
			return false
		}
		lo, hi := tr.ActiveBounds()
		// Stationary within +-40% plus Poisson noise allowance.
		slack := 4.0 * float64(nodes) / 10
		if float64(lo) < float64(nodes)*0.6-slack || float64(hi) > float64(nodes)*1.4+slack {
			t.Logf("poisson bounds [%d,%d] for target %d", lo, hi, nodes)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(6))}); err != nil {
		t.Fatal(err)
	}
}

// TestCodecPropertyRoundTrip: encode/decode is the identity on structure
// for arbitrary generated traces.
func TestCodecPropertyRoundTrip(t *testing.T) {
	f := func(popRaw uint8, seed int64) bool {
		cfg := Config{
			Name:           "rt",
			Duration:       time.Hour,
			Population:     int(popRaw%100) + 10,
			OnlineFraction: 0.5,
			MeanSession:    20 * time.Minute,
			Seed:           seed,
		}
		tr := Generate(cfg)
		var buf bytes.Buffer
		if err := Encode(&buf, tr); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		if got.Nodes != tr.Nodes || len(got.Events) != len(tr.Events) || len(got.Initial) != len(tr.Initial) {
			return false
		}
		for i := range got.Events {
			if got.Events[i].Node != tr.Events[i].Node || got.Events[i].Kind != tr.Events[i].Kind {
				return false
			}
		}
		return got.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}

// TestWindowsPropertyConservation: over any trace, the sum of per-window
// joins equals the total join events, same for leaves, and the active
// count implied by events matches the integral's endpoints.
func TestWindowsPropertyConservation(t *testing.T) {
	f := func(popRaw uint8, winRaw uint8, seed int64) bool {
		cfg := Config{
			Name:           "cons",
			Duration:       3 * time.Hour,
			Population:     int(popRaw%150) + 20,
			OnlineFraction: 0.4,
			MeanSession:    25 * time.Minute,
			Diurnal:        0.3,
			Seed:           seed,
		}
		tr := Generate(cfg)
		window := time.Duration(int(winRaw%50)+5) * time.Minute
		wins := tr.Windows(window)
		joins, leaves := 0, 0
		for _, w := range wins {
			joins += w.Joins
			leaves += w.Leaves
		}
		wantJ, wantL := 0, 0
		for _, ev := range tr.Events {
			if ev.Kind == Join {
				wantJ++
			} else {
				wantL++
			}
		}
		return joins == wantJ && leaves == wantL
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(8))}); err != nil {
		t.Fatal(err)
	}
}
