package trace

import (
	"fmt"
	"time"
)

// WindowStat summarises one averaging window of a trace, as plotted in the
// paper's Figure 3 (node failures per node per second over time).
type WindowStat struct {
	Start time.Duration
	// Active is the mean number of active nodes during the window.
	Active float64
	// Joins and Leaves count events inside the window.
	Joins, Leaves int
	// FailureRate is leaves per active node per second.
	FailureRate float64
}

// Windows walks the trace and returns per-window statistics with the given
// window size. The paper uses 10-minute windows for Gnutella and OverNet
// and 1-hour windows for Microsoft.
func (tr *Trace) Windows(window time.Duration) []WindowStat {
	if window <= 0 {
		panic("trace: window must be positive")
	}
	nwin := int((tr.Duration + window - 1) / window)
	stats := make([]WindowStat, nwin)
	for i := range stats {
		stats[i].Start = time.Duration(i) * window
	}
	active := len(tr.Initial)
	// activeIntegral accumulates node-seconds per window.
	cursor := time.Duration(0)
	widx := 0
	var acc float64
	advance := func(to time.Duration) {
		for cursor < to {
			winEnd := time.Duration(widx+1) * window
			seg := to
			if winEnd < seg {
				seg = winEnd
			}
			acc += float64(active) * (seg - cursor).Seconds()
			cursor = seg
			if cursor == winEnd && widx < nwin-1 {
				stats[widx].Active = acc / window.Seconds()
				acc = 0
				widx++
			} else if cursor == to {
				break
			}
		}
	}
	for _, ev := range tr.Events {
		advance(ev.At)
		w := int(ev.At / window)
		if w >= nwin {
			w = nwin - 1
		}
		switch ev.Kind {
		case Join:
			stats[w].Joins++
			active++
		case Leave:
			stats[w].Leaves++
			active--
		}
	}
	advance(tr.Duration)
	if widx < nwin {
		lastLen := (tr.Duration - time.Duration(widx)*window).Seconds()
		if lastLen > 0 {
			stats[widx].Active = acc / lastLen
		}
	}
	for i := range stats {
		winLen := window.Seconds()
		if i == nwin-1 {
			if rem := (tr.Duration - stats[i].Start).Seconds(); rem > 0 {
				winLen = rem
			}
		}
		if stats[i].Active > 0 {
			stats[i].FailureRate = float64(stats[i].Leaves) / stats[i].Active / winLen
		}
	}
	return stats
}

// ActiveBounds returns the minimum and maximum number of concurrently
// active nodes over the trace.
func (tr *Trace) ActiveBounds() (lo, hi int) {
	active := len(tr.Initial)
	lo, hi = active, active
	for _, ev := range tr.Events {
		if ev.Kind == Join {
			active++
		} else {
			active--
		}
		if active < lo {
			lo = active
		}
		if active > hi {
			hi = active
		}
	}
	return lo, hi
}

// MeanSessionObserved computes the mean of completed sessions in the trace
// (sessions that both start and end inside the trace window).
func (tr *Trace) MeanSessionObserved() time.Duration {
	joined := make(map[int]time.Duration)
	var sum time.Duration
	n := 0
	for _, ev := range tr.Events {
		switch ev.Kind {
		case Join:
			joined[ev.Node] = ev.At
		case Leave:
			if start, ok := joined[ev.Node]; ok {
				sum += ev.At - start
				n++
				delete(joined, ev.Node)
			}
		}
	}
	if n == 0 {
		return 0
	}
	return sum / time.Duration(n)
}

// Validate checks trace invariants: events sorted by time, no event at or
// before time zero, and per-node alternation (a node joins only while
// offline and leaves only while online, with Initial nodes starting online).
func (tr *Trace) Validate() error {
	online := make(map[int]bool, len(tr.Initial))
	for _, n := range tr.Initial {
		if online[n] {
			return fmt.Errorf("node %d listed twice in Initial", n)
		}
		online[n] = true
	}
	var last time.Duration
	for i, ev := range tr.Events {
		if ev.At <= 0 {
			return fmt.Errorf("event %d at non-positive time %v", i, ev.At)
		}
		if ev.At < last {
			return fmt.Errorf("event %d out of order: %v after %v", i, ev.At, last)
		}
		last = ev.At
		if ev.At > tr.Duration {
			return fmt.Errorf("event %d beyond trace duration", i)
		}
		if ev.Node < 0 || ev.Node >= tr.Nodes {
			return fmt.Errorf("event %d references node %d outside [0,%d)", i, ev.Node, tr.Nodes)
		}
		switch ev.Kind {
		case Join:
			if online[ev.Node] {
				return fmt.Errorf("event %d: node %d joins while online", i, ev.Node)
			}
			online[ev.Node] = true
		case Leave:
			if !online[ev.Node] {
				return fmt.Errorf("event %d: node %d leaves while offline", i, ev.Node)
			}
			online[ev.Node] = false
		default:
			return fmt.Errorf("event %d: bad kind %v", i, ev.Kind)
		}
	}
	return nil
}
