package trace

import (
	"bytes"
	"math"
	"testing"
	"time"
)

func TestGnutellaStatistics(t *testing.T) {
	tr := Generate(Gnutella())
	if err := tr.Validate(); err != nil {
		t.Fatalf("invalid trace: %v", err)
	}
	lo, hi := tr.ActiveBounds()
	// Paper: active varies between 1300 and 2700. Allow generous slack for
	// the synthetic generator, but the band must be in the right regime.
	if lo < 800 || hi > 4000 {
		t.Fatalf("active bounds [%d,%d] outside plausible Gnutella regime", lo, hi)
	}
	mean := tr.MeanSessionObserved()
	// Completed-session mean is biased low (long sessions are censored by
	// the 60 h window), so accept a band around 2.3 h.
	if mean < 60*time.Minute || mean > 4*time.Hour {
		t.Fatalf("observed mean session %v implausible for Gnutella (2.3h)", mean)
	}
}

func TestOverNetStatistics(t *testing.T) {
	tr := Generate(OverNet())
	if err := tr.Validate(); err != nil {
		t.Fatalf("invalid trace: %v", err)
	}
	lo, hi := tr.ActiveBounds()
	if lo < 150 || hi > 900 {
		t.Fatalf("active bounds [%d,%d] outside OverNet regime (260-650)", lo, hi)
	}
}

func TestMicrosoftStatistics(t *testing.T) {
	tr := Generate(Microsoft())
	if err := tr.Validate(); err != nil {
		t.Fatalf("invalid trace: %v", err)
	}
	lo, hi := tr.ActiveBounds()
	if lo < 13800 || hi > 16400 {
		t.Fatalf("active bounds [%d,%d] outside Microsoft regime (14700-15600)", lo, hi)
	}
	// Failure rate an order of magnitude lower than Gnutella (paper Fig 3:
	// Gnutella peaks ~3e-4, Microsoft ~1.5e-5 failures/node/s).
	gn := meanFailureRate(Generate(Gnutella()), 10*time.Minute)
	ms := meanFailureRate(tr, time.Hour)
	if ms*5 > gn {
		t.Fatalf("Microsoft failure rate %.3g not well below Gnutella %.3g", ms, gn)
	}
}

func meanFailureRate(tr *Trace, window time.Duration) float64 {
	var sum float64
	var n int
	for _, w := range tr.Windows(window) {
		if w.Active > 0 {
			sum += w.FailureRate
			n++
		}
	}
	return sum / float64(n)
}

func TestFailureRateMagnitudes(t *testing.T) {
	// Figure 3 y-axis regimes: Gnutella/OverNet ~1e-4..3.5e-4, Microsoft
	// up to ~2e-5 failures per node per second.
	gn := meanFailureRate(Generate(Gnutella()), 10*time.Minute)
	if gn < 5e-5 || gn > 5e-4 {
		t.Errorf("Gnutella mean failure rate %.3g outside Fig 3 regime", gn)
	}
	on := meanFailureRate(Generate(OverNet()), 10*time.Minute)
	if on < 5e-5 || on > 5e-4 {
		t.Errorf("OverNet mean failure rate %.3g outside Fig 3 regime", on)
	}
	ms := meanFailureRate(Generate(Microsoft()), time.Hour)
	if ms < 1e-6 || ms > 3e-5 {
		t.Errorf("Microsoft mean failure rate %.3g outside Fig 3 regime", ms)
	}
}

func TestDiurnalPatternVisible(t *testing.T) {
	// The paper's Figure 3 shows clear daily waves. Check that the join
	// rate fluctuates substantially across 24h for the Gnutella config.
	tr := Generate(Gnutella())
	wins := tr.Windows(time.Hour)
	minJ, maxJ := math.MaxInt, 0
	for _, w := range wins[:len(wins)-1] {
		if w.Joins < minJ {
			minJ = w.Joins
		}
		if w.Joins > maxJ {
			maxJ = w.Joins
		}
	}
	if maxJ < minJ*2 {
		t.Fatalf("diurnal variation too weak: joins range [%d,%d]", minJ, maxJ)
	}
}

func TestPoissonTraceStationary(t *testing.T) {
	tr := Generate(Poisson(30*time.Minute, 1000, 6*time.Hour))
	if err := tr.Validate(); err != nil {
		t.Fatalf("invalid trace: %v", err)
	}
	lo, hi := tr.ActiveBounds()
	if lo < 800 || hi > 1200 {
		t.Fatalf("Poisson active bounds [%d,%d] drifted from 1000", lo, hi)
	}
	mean := tr.MeanSessionObserved()
	if mean < 20*time.Minute || mean > 40*time.Minute {
		t.Fatalf("Poisson observed mean session %v, want ~30m", mean)
	}
}

func TestPoissonSessionSweep(t *testing.T) {
	// The failure rate must scale inversely with session time: the 5-minute
	// trace has ~6x the per-node failure rate of the 30-minute trace.
	short := meanFailureRate(Generate(Poisson(5*time.Minute, 300, 2*time.Hour)), 10*time.Minute)
	long := meanFailureRate(Generate(Poisson(30*time.Minute, 300, 2*time.Hour)), 10*time.Minute)
	ratio := short / long
	if ratio < 3.5 || ratio > 10 {
		t.Fatalf("failure-rate ratio 5m/30m = %.2f, want ~6", ratio)
	}
}

func TestScaledConfig(t *testing.T) {
	cfg := Gnutella().Scaled(10, 2*time.Hour)
	if cfg.Population != 1700 {
		t.Fatalf("scaled population = %d", cfg.Population)
	}
	if cfg.Duration != 2*time.Hour {
		t.Fatalf("scaled duration = %v", cfg.Duration)
	}
	tr := Generate(cfg)
	if err := tr.Validate(); err != nil {
		t.Fatalf("invalid scaled trace: %v", err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Gnutella().Scaled(20, time.Hour))
	b := Generate(Gnutella().Scaled(20, time.Hour))
	if len(a.Events) != len(b.Events) || len(a.Initial) != len(b.Initial) {
		t.Fatal("same config produced different traces")
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestWindowsActiveIntegral(t *testing.T) {
	// Hand-built trace: 2 nodes initial; node 2 joins at 30s, node 0
	// leaves at 90s. Window = 60s over 120s.
	tr := &Trace{
		Name: "hand", Duration: 2 * time.Minute, Nodes: 3,
		Initial: []int{0, 1},
		Events: []Event{
			{At: 30 * time.Second, Node: 2, Kind: Join},
			{At: 90 * time.Second, Node: 0, Kind: Leave},
		},
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	wins := tr.Windows(time.Minute)
	if len(wins) != 2 {
		t.Fatalf("windows = %d, want 2", len(wins))
	}
	// Window 0: 2 active for 30s, 3 active for 30s -> mean 2.5.
	if math.Abs(wins[0].Active-2.5) > 1e-9 {
		t.Fatalf("window 0 active = %v, want 2.5", wins[0].Active)
	}
	// Window 1: 3 active for 30s, 2 for 30s -> 2.5; one leave.
	if math.Abs(wins[1].Active-2.5) > 1e-9 {
		t.Fatalf("window 1 active = %v, want 2.5", wins[1].Active)
	}
	if wins[1].Leaves != 1 || wins[0].Joins != 1 {
		t.Fatalf("event counts wrong: %+v", wins)
	}
	wantRate := 1.0 / 2.5 / 60
	if math.Abs(wins[1].FailureRate-wantRate) > 1e-12 {
		t.Fatalf("failure rate = %v, want %v", wins[1].FailureRate, wantRate)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	good := &Trace{
		Name: "x", Duration: time.Minute, Nodes: 2,
		Initial: []int{0},
		Events: []Event{
			{At: 10 * time.Second, Node: 1, Kind: Join},
			{At: 20 * time.Second, Node: 1, Kind: Leave},
		},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good trace rejected: %v", err)
	}
	cases := map[string]func(*Trace){
		"join while online":   func(tr *Trace) { tr.Events[0].Node = 0 },
		"leave while offline": func(tr *Trace) { tr.Events[0].Kind = Leave },
		"out of order":        func(tr *Trace) { tr.Events[0].At = 30 * time.Second },
		"beyond duration":     func(tr *Trace) { tr.Events[1].At = 2 * time.Minute },
		"bad node":            func(tr *Trace) { tr.Events[0].Node = 5 },
		"dup initial":         func(tr *Trace) { tr.Initial = []int{0, 0} },
	}
	for name, corrupt := range cases {
		tr := &Trace{
			Name: good.Name, Duration: good.Duration, Nodes: good.Nodes,
			Initial: append([]int(nil), good.Initial...),
			Events:  append([]Event(nil), good.Events...),
		}
		corrupt(tr)
		if err := tr.Validate(); err == nil {
			t.Errorf("%s: corruption not detected", name)
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	tr := Generate(OverNet().Scaled(4, 6*time.Hour))
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.Nodes != tr.Nodes || len(got.Events) != len(tr.Events) {
		t.Fatalf("round trip lost structure: %s/%d/%d vs %s/%d/%d",
			got.Name, got.Nodes, len(got.Events), tr.Name, tr.Nodes, len(tr.Events))
	}
	if d := got.Duration - tr.Duration; d < -time.Millisecond || d > time.Millisecond {
		t.Fatalf("duration drift %v", d)
	}
	for i := range got.Events {
		a, b := got.Events[i], tr.Events[i]
		if a.Node != b.Node || a.Kind != b.Kind {
			t.Fatalf("event %d mismatch", i)
		}
		if d := a.At - b.At; d < -time.Microsecond || d > time.Microsecond {
			t.Fatalf("event %d time drift %v", i, d)
		}
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("decoded trace invalid: %v", err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"",
		"not a trace\n",
		"trace x nan\n",
		"trace x 10 2\nZ 1 2\n",
		"trace x 10 2\nJ one 2\n",
		"trace x 10 2\nI zero\n",
	} {
		if _, err := Decode(bytes.NewReader([]byte(in))); err == nil {
			t.Errorf("Decode(%q) accepted garbage", in)
		}
	}
}

func TestLognormalSessionShape(t *testing.T) {
	// Gnutella sessions: mean 2.3h, median 1h. Sample directly and check
	// both moments come out near the targets.
	cfg := Gnutella()
	tr := Generate(Config{
		Name: "s", Duration: 1000 * time.Hour, Population: 1,
		OnlineFraction: 0.99, MeanSession: cfg.MeanSession,
		MedianSession: cfg.MedianSession, Seed: 5,
	})
	var sessions []float64
	joined := map[int]time.Duration{}
	for _, ev := range tr.Events {
		if ev.Kind == Join {
			joined[ev.Node] = ev.At
		} else if start, ok := joined[ev.Node]; ok {
			sessions = append(sessions, (ev.At - start).Hours())
		}
	}
	if len(sessions) < 50 {
		t.Skipf("only %d sessions sampled", len(sessions))
	}
	var sum float64
	for _, s := range sessions {
		sum += s
	}
	mean := sum / float64(len(sessions))
	if mean < 1.5 || mean > 3.5 {
		t.Errorf("sampled mean session %.2fh, want ~2.3h", mean)
	}
}
