package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Encode writes the trace in a line-oriented text format:
//
//	trace <name> <duration-seconds> <nodes>
//	I <node>            (one per initially-active node)
//	J <seconds> <node>  (join)
//	L <seconds> <node>  (leave)
func Encode(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "trace %s %g %d\n", tr.Name, tr.Duration.Seconds(), tr.Nodes)
	for _, n := range tr.Initial {
		fmt.Fprintf(bw, "I %d\n", n)
	}
	for _, ev := range tr.Events {
		tag := "J"
		if ev.Kind == Leave {
			tag = "L"
		}
		fmt.Fprintf(bw, "%s %.6f %d\n", tag, ev.At.Seconds(), ev.Node)
	}
	return bw.Flush()
}

// Decode reads a trace in the Encode format.
func Decode(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("trace: empty input")
	}
	header := strings.Fields(sc.Text())
	if len(header) != 4 || header[0] != "trace" {
		return nil, fmt.Errorf("trace: bad header %q", sc.Text())
	}
	durSec, err := strconv.ParseFloat(header[2], 64)
	if err != nil {
		return nil, fmt.Errorf("trace: bad duration: %w", err)
	}
	nodes, err := strconv.Atoi(header[3])
	if err != nil {
		return nil, fmt.Errorf("trace: bad node count: %w", err)
	}
	tr := &Trace{
		Name:     header[1],
		Duration: time.Duration(durSec * float64(time.Second)),
		Nodes:    nodes,
	}
	line := 1
	for sc.Scan() {
		line++
		f := strings.Fields(sc.Text())
		if len(f) == 0 {
			continue
		}
		switch f[0] {
		case "I":
			if len(f) != 2 {
				return nil, fmt.Errorf("trace: line %d: bad initial record", line)
			}
			n, err := strconv.Atoi(f[1])
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", line, err)
			}
			tr.Initial = append(tr.Initial, n)
		case "J", "L":
			if len(f) != 3 {
				return nil, fmt.Errorf("trace: line %d: bad event record", line)
			}
			sec, err := strconv.ParseFloat(f[1], 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", line, err)
			}
			n, err := strconv.Atoi(f[2])
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", line, err)
			}
			kind := Join
			if f[0] == "L" {
				kind = Leave
			}
			tr.Events = append(tr.Events, Event{
				At:   time.Duration(sec * float64(time.Second)),
				Node: n,
				Kind: kind,
			})
		default:
			return nil, fmt.Errorf("trace: line %d: unknown record %q", line, f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	return tr, nil
}
