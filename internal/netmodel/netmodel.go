// Package netmodel binds MSPastry nodes to the discrete-event simulator
// and a generated topology: it delivers messages with the topology's
// one-way delay, drops them with a configurable uniform loss probability
// (the paper's network-loss model; congestion is not modelled), and exposes
// traffic hooks for the metrics pipeline.
//
// Every send is charged its encoded wire-frame size — the same framing the
// UDP transport puts on the socket — so simulated byte and datagram counts
// are directly comparable to a live node's /metrics. With a coalescing
// window set, control messages to the same peer share one frame, and the
// whole frame is one loss/fault/delay roll: a batch is one packet.
package netmodel

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"mspastry/internal/eventsim"
	"mspastry/internal/id"
	"mspastry/internal/overload"
	"mspastry/internal/pastry"
	"mspastry/internal/topology"
	"mspastry/internal/wire"
)

// FrameInfo describes one frame (datagram) handed to the network, for
// traffic accounting.
type FrameInfo struct {
	To pastry.NodeRef
	// Msgs is how many messages the frame carries.
	Msgs int
	// Bytes is the encoded frame size: what the simulator charges and what
	// a live transport would write to the socket.
	Bytes int
	// SingleBytes is what the same messages would have cost as individual
	// single frames; SingleBytes - Bytes is the coalescing saving.
	SingleBytes int
	// Control reports whether every message in the frame is control
	// traffic (a frame carrying a lookup or application payload is not a
	// control datagram even when acks ride along).
	Control bool
	// Held is how long the oldest message waited for the coalescing
	// window.
	Held time.Duration
}

// Network is a simulated packet network connecting overlay endpoints.
type Network struct {
	sim      *eventsim.Simulator
	topo     *topology.Network
	lossRate float64
	coWindow time.Duration
	coLong   time.Duration
	eps      map[string]*Endpoint
	onSend   func(from *Endpoint, to pastry.NodeRef, m pastry.Message, singleBytes int)
	onFrame  func(from *Endpoint, f FrameInfo)
	faults   *FaultSet
	adv      *Adversary
	// Drops counts messages lost to injected faults (uniform loss,
	// per-link loss and partitions). Churn artifacts — unknown, dead or
	// reincarnated destinations — are accounted separately in
	// DropsByCause so experiments can tell injected faults apart.
	Drops uint64
	// DropsByCause classifies every undelivered message, indexed by
	// DropCause.
	DropsByCause [NumDropCauses]uint64
	// FaultCounts tallies duplication and reordering activity.
	FaultCounts FaultCounters
	// Frames counts frames (datagrams) handed to the network; FrameBytes
	// sums their encoded sizes — the bytes the network charges.
	// SingleBytes sums what the same messages would have cost unbatched,
	// so SingleBytes - FrameBytes is the coalescing saving.
	Frames      uint64
	FrameBytes  uint64
	SingleBytes uint64

	// svc bounds per-endpoint processing capacity; the zero value leaves
	// delivery unbounded (byte-for-byte the pre-overload behaviour).
	svc ServiceModel
	// ShedByLane counts messages shed by bounded service queues, by the
	// priority lane the shed message belonged to.
	ShedByLane [overload.NumLanes]uint64
}

// ServiceModel bounds each endpoint's message-processing capacity: at
// most QueueLimit messages wait in a per-node priority queue (shedding
// lowest-priority-first on overflow; see package overload) and the bound
// node consumes them at Rate messages per second. The zero value
// disables the model entirely — messages deliver the moment they arrive,
// exactly as before the model existed — so overload is opt-in and
// existing experiments reproduce bit-for-bit.
type ServiceModel struct {
	// QueueLimit is the receive-queue bound in messages; <= 0 disables
	// the model.
	QueueLimit int
	// Rate is the processing rate in messages per second; <= 0 disables
	// the model.
	Rate float64
}

func (sm ServiceModel) enabled() bool { return sm.QueueLimit > 0 && sm.Rate > 0 }

// SetServiceModel installs the per-node service-capacity model. Set it
// before traffic starts.
func (nw *Network) SetServiceModel(sm ServiceModel) { nw.svc = sm }

// New creates a network over the given simulator and topology with a
// uniform message loss probability in [0,1).
func New(sim *eventsim.Simulator, topo *topology.Network, lossRate float64) *Network {
	if lossRate < 0 || lossRate >= 1 {
		panic(fmt.Sprintf("netmodel: loss rate %v outside [0,1)", lossRate))
	}
	return &Network{sim: sim, topo: topo, lossRate: lossRate, eps: make(map[string]*Endpoint)}
}

// SetCoalesceWindow sets how long coalescable control messages may wait to
// share a frame with later traffic to the same peer. Zero (the default)
// sends every message as its own frame, byte-for-byte reproducing the
// pre-batching behaviour. Set it before traffic starts: endpoints build
// their coalescers on first send.
func (nw *Network) SetCoalesceWindow(d time.Duration) { nw.coWindow = d }

// SetCoalesceLongWindow sets the extended wait budget for delay-tolerant
// messages (heartbeats, distance reports, row announcements); see
// wire.Config.LongWindow. It only matters when a base window is also set.
func (nw *Network) SetCoalesceLongWindow(d time.Duration) { nw.coLong = d }

// OnSend registers a hook invoked for every message handed to the network
// (at enqueue, before loss is applied), with the message's single-frame
// encoded size for byte accounting.
func (nw *Network) OnSend(fn func(from *Endpoint, to pastry.NodeRef, m pastry.Message, singleBytes int)) {
	nw.onSend = fn
}

// OnFrame registers a hook invoked for every frame (datagram) the network
// accepts, after any coalescing and before loss is applied.
func (nw *Network) OnFrame(fn func(from *Endpoint, f FrameInfo)) {
	nw.onFrame = fn
}

// Sim returns the underlying simulator.
func (nw *Network) Sim() *eventsim.Simulator { return nw.sim }

// Topology returns the underlying topology.
func (nw *Network) Topology() *topology.Network { return nw.topo }

// Endpoint is an attachment point for one overlay node. It implements
// pastry.Env.
type Endpoint struct {
	nw    *Network
	index int
	addr  string
	node  *pastry.Node
	up    bool
	co    *wire.Coalescer

	// Service-capacity state (nil/false while the model is disabled):
	// the bounded inbound lane queue and whether a processing slot is
	// scheduled.
	svcQ    *overload.Queue
	svcBusy bool
}

// svcItem is one queued inbound message; to pins the destination
// incarnation so queue-time churn is detected at processing time.
type svcItem struct {
	to pastry.NodeRef
	m  pastry.Message
}

// NewEndpoint wires a new endpoint to topology attachment point index.
// Endpoint addresses are the decimal attachment index.
func (nw *Network) NewEndpoint(index int) *Endpoint {
	addr := strconv.Itoa(index)
	if _, dup := nw.eps[addr]; dup {
		panic("netmodel: endpoint already exists: " + addr)
	}
	ep := &Endpoint{nw: nw, index: index, addr: addr, up: true}
	nw.eps[addr] = ep
	return ep
}

// Endpoint returns the endpoint with the given address, if any.
func (nw *Network) Endpoint(addr string) (*Endpoint, bool) {
	ep, ok := nw.eps[addr]
	return ep, ok
}

// Addr returns the endpoint's transport address.
func (ep *Endpoint) Addr() string { return ep.addr }

// Index returns the topology attachment index.
func (ep *Endpoint) Index() int { return ep.index }

// Node returns the overlay node currently bound to the endpoint.
func (ep *Endpoint) Node() *pastry.Node { return ep.node }

// Bind attaches an overlay node to the endpoint and marks it up. A new
// node instance is bound for every session of a churning endpoint. The
// endpoint subscribes to the node's peer-eviction broadcast: when the
// registry evicts a peer, its coalescing queue is flushed (held
// delay-tolerant frames still go out) and released.
func (ep *Endpoint) Bind(n *pastry.Node) {
	ep.node = n
	ep.up = true
	n.Peers().OnEvict(func(x id.ID, addr string) {
		if ep.co != nil && ep.node == n {
			ep.co.Evict(queueKey(pastry.NodeRef{ID: x, Addr: addr}))
		}
	})
}

// Fail crashes the endpoint's node and stops delivery to it. Messages
// still waiting for the coalescing window are discarded: a crashed node
// sends nothing. Messages still waiting in the service queue die with
// the node.
func (ep *Endpoint) Fail() {
	ep.up = false
	if ep.node != nil {
		ep.node.Fail()
	}
	if ep.co != nil {
		ep.co.DiscardAll()
	}
	if ep.svcQ != nil {
		ep.nw.dropN(DropDeadEndpoint, ep.svcQ.Drain())
	}
}

// Up reports whether the endpoint currently hosts a live node.
func (ep *Endpoint) Up() bool { return ep.up && ep.node != nil }

// Now implements pastry.Env.
func (ep *Endpoint) Now() time.Duration { return ep.nw.sim.Now() }

// Rand implements pastry.Env.
func (ep *Endpoint) Rand() *rand.Rand { return ep.nw.sim.Rand() }

// Schedule implements pastry.Env.
func (ep *Endpoint) Schedule(d time.Duration, fn func()) pastry.Timer {
	return ep.nw.sim.After(d, fn)
}

// Send implements pastry.Env. With no coalescing window the message is
// framed and transmitted immediately, exactly as before batching existed:
// traffic hook, one loss roll, fault rolls, then delivery after the
// topology's one-way delay. With a window, coalescable control messages
// queue per destination and the whole batch later transmits as one frame.
func (ep *Endpoint) Send(to pastry.NodeRef, m pastry.Message) {
	nw := ep.nw
	if nw.adv != nil {
		m = nw.adv.rewriteOutbound(ep, to, m)
	}
	if nw.coWindow <= 0 {
		size := wire.SingleSize(pastry.MessageWireSize(m))
		if nw.onSend != nil {
			nw.onSend(ep, to, m, size)
		}
		nw.countFrame(ep, FrameInfo{
			To: to, Msgs: 1, Bytes: size, SingleBytes: size,
			Control: wire.Control(m.Category()),
		})
		ep.transmit(to, m, nil, 1)
		return
	}
	size, err := ep.coalescer().Send(queueKey(to), to, m)
	if err != nil {
		// The simulator does not bound single-message size.
		panic(fmt.Sprintf("netmodel: %v", err))
	}
	if nw.onSend != nil {
		nw.onSend(ep, to, m, wire.SingleSize(size))
	}
}

// coalescer lazily builds the endpoint's per-peer batching queues; lazily
// so that SetCoalesceWindow calls made after endpoint creation but before
// traffic starts still take effect.
func (ep *Endpoint) coalescer() *wire.Coalescer {
	if ep.co == nil {
		nw := ep.nw
		ep.co = wire.NewCoalescer(wire.Config{
			Window:     nw.coWindow,
			LongWindow: nw.coLong,
			Now:        nw.sim.Now,
			After:      func(d time.Duration, fn func()) { nw.sim.After(d, fn) },
			Emit: func(f wire.Flush) {
				control := true
				for _, m := range f.Msgs {
					if !wire.Control(m.Category()) {
						control = false
						break
					}
				}
				nw.countFrame(ep, FrameInfo{
					To: f.To, Msgs: len(f.Msgs), Bytes: len(f.Frame),
					SingleBytes: f.SingleBytes, Control: control, Held: f.Held,
				})
				ep.transmit(f.To, nil, f.Msgs, len(f.Msgs))
			},
		})
	}
	return ep.co
}

// queueKey identifies a coalescing queue by address and node identity, so
// messages addressed to a dead incarnation never share a frame with — and
// are never revived by — traffic to its reincarnation.
func queueKey(to pastry.NodeRef) string {
	var b [16]byte
	binary.BigEndian.PutUint64(b[:8], to.ID.Hi)
	binary.BigEndian.PutUint64(b[8:], to.ID.Lo)
	return to.Addr + string(b[:])
}

// countFrame accounts one accepted frame and fires the frame hook.
func (nw *Network) countFrame(from *Endpoint, f FrameInfo) {
	nw.Frames++
	nw.FrameBytes += uint64(f.Bytes)
	nw.SingleBytes += uint64(f.SingleBytes)
	if nw.onFrame != nil {
		nw.onFrame(from, f)
	}
}

// transmit carries one frame across the network: one loss roll, one fault
// roll and one delay for the whole frame — a batch is one packet, lost or
// delivered together. Exactly one of single (a frame of one) and batch is
// set; nmsgs is the message count for drop accounting.
func (ep *Endpoint) transmit(to pastry.NodeRef, single pastry.Message, batch []pastry.Message, nmsgs int) {
	nw := ep.nw
	if nw.lossRate > 0 && nw.sim.Rand().Float64() < nw.lossRate {
		nw.dropN(DropLoss, nmsgs)
		return
	}
	if nw.faults != nil {
		if cause, dropped := nw.faults.dropsMessage(nw.sim.Rand(), ep.addr, to.Addr); dropped {
			nw.dropN(cause, nmsgs)
			return
		}
	}
	dst, ok := nw.eps[to.Addr]
	if !ok {
		nw.dropN(DropUnknownEndpoint, nmsgs)
		return
	}
	delay := nw.topo.Delay(ep.index, dst.index)
	if nw.faults != nil {
		delay = nw.faults.perturbDelay(nw.sim.Rand(), delay)
		if nw.faults.duplicates(nw.sim.Rand()) {
			dup := nw.faults.perturbDelay(nw.sim.Rand(), nw.topo.Delay(ep.index, dst.index))
			nw.deliverAfter(dst, to, single, batch, nmsgs, dup)
		}
	}
	nw.deliverAfter(dst, to, single, batch, nmsgs, delay)
}

// dropN accounts n undelivered messages (a dropped frame drops everything
// inside it).
func (nw *Network) dropN(cause DropCause, n int) {
	nw.DropsByCause[cause] += uint64(n)
	if cause.injected() {
		nw.Drops += uint64(n)
	}
}

// deliverAfter schedules one delivery attempt for a frame; destination
// liveness and identity are re-checked at delivery time, once per frame
// (every message in a frame was addressed to the same incarnation).
func (nw *Network) deliverAfter(dst *Endpoint, to pastry.NodeRef, single pastry.Message, batch []pastry.Message, nmsgs int, delay time.Duration) {
	nw.sim.After(delay, func() {
		if !dst.up || dst.node == nil {
			nw.dropN(DropDeadEndpoint, nmsgs)
			return
		}
		if dst.node.Ref().ID != to.ID {
			// The endpoint was reincarnated with a new identity; the
			// frame was addressed to the dead instance.
			nw.dropN(DropStaleIdentity, nmsgs)
			return
		}
		if batch == nil {
			dst.accept(to, single)
			return
		}
		for _, m := range batch {
			if !dst.up || dst.node == nil || dst.node.Ref().ID != to.ID {
				// An earlier message in the frame killed or replaced the
				// node mid-delivery.
				nw.dropN(DropDeadEndpoint, 1)
				continue
			}
			dst.accept(to, m)
		}
	})
}

// accept hands one arrived message to the destination node: immediately
// when the service model is off, through the bounded priority queue and
// the node's processing rate when it is on.
func (ep *Endpoint) accept(to pastry.NodeRef, m pastry.Message) {
	nw := ep.nw
	if !nw.svc.enabled() {
		ep.deliverToNode(m)
		return
	}
	if ep.svcQ == nil {
		ep.svcQ = overload.NewQueue(nw.svc.QueueLimit)
	}
	if shed := ep.svcQ.Push(pastry.LaneOf(m), svcItem{to: to, m: m}); shed >= 0 {
		nw.ShedByLane[shed]++
		nw.dropN(DropOverload, 1)
	}
	ep.startService()
}

// startService arms the next processing slot if work is queued and none
// is scheduled. Each message occupies the node for 1/Rate seconds.
func (ep *Endpoint) startService() {
	if ep.svcBusy || ep.svcQ == nil || ep.svcQ.Len() == 0 {
		return
	}
	ep.svcBusy = true
	interval := time.Duration(float64(time.Second) / ep.nw.svc.Rate)
	ep.nw.sim.After(interval, ep.serviceOne)
}

// serviceOne completes one processing slot: the highest-priority queued
// message is delivered (churn between queueing and processing is
// re-checked) and the next slot is armed if work remains.
func (ep *Endpoint) serviceOne() {
	ep.svcBusy = false
	if ep.svcQ == nil {
		return
	}
	v, _, ok := ep.svcQ.Pop()
	if !ok {
		return
	}
	it := v.(svcItem)
	switch {
	case !ep.up || ep.node == nil:
		ep.nw.dropN(DropDeadEndpoint, 1)
	case ep.node.Ref().ID != it.to.ID:
		ep.nw.dropN(DropStaleIdentity, 1)
	default:
		ep.deliverToNode(it.m)
	}
	ep.startService()
}

// deliverToNode hands one arrived message to the bound node, giving a
// configured adversary the chance to consume it first (Byzantine nodes
// attack at delivery, after the network has faithfully carried the
// frame).
func (ep *Endpoint) deliverToNode(m pastry.Message) {
	if adv := ep.nw.adv; adv != nil && adv.interceptInbound(ep, m) {
		return
	}
	ep.node.Receive(copyForDelivery(m))
}

// LoadFactor implements pastry.LoadSampler: current service-queue
// occupancy in [0,1]; 0 while the service model is disabled.
func (ep *Endpoint) LoadFactor() float64 {
	if ep.svcQ == nil {
		return 0
	}
	return ep.svcQ.LoadFactor()
}

// copyForDelivery clones mutable routed payloads (lookup/join envelopes);
// all other message types are treated as immutable by receivers.
func copyForDelivery(m pastry.Message) pastry.Message {
	env, ok := m.(*pastry.Envelope)
	if !ok {
		return m
	}
	out := *env
	if env.Lookup != nil {
		lk := *env.Lookup
		out.Lookup = &lk
	}
	if env.Join != nil {
		jr := *env.Join
		jr.Rows = append([]pastry.NodeRef(nil), env.Join.Rows...)
		out.Join = &jr
	}
	return &out
}
