// Package netmodel binds MSPastry nodes to the discrete-event simulator
// and a generated topology: it delivers messages with the topology's
// one-way delay, drops them with a configurable uniform loss probability
// (the paper's network-loss model; congestion is not modelled), and exposes
// a traffic hook for the metrics pipeline.
package netmodel

import (
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"mspastry/internal/eventsim"
	"mspastry/internal/pastry"
	"mspastry/internal/topology"
)

// Network is a simulated packet network connecting overlay endpoints.
type Network struct {
	sim      *eventsim.Simulator
	topo     *topology.Network
	lossRate float64
	eps      map[string]*Endpoint
	onSend   func(from *Endpoint, to pastry.NodeRef, m pastry.Message)
	faults   *FaultSet
	// Drops counts messages lost to injected faults (uniform loss,
	// per-link loss and partitions). Churn artifacts — unknown, dead or
	// reincarnated destinations — are accounted separately in
	// DropsByCause so experiments can tell injected faults apart.
	Drops uint64
	// DropsByCause classifies every undelivered message, indexed by
	// DropCause.
	DropsByCause [NumDropCauses]uint64
	// FaultCounts tallies duplication and reordering activity.
	FaultCounts FaultCounters
}

// New creates a network over the given simulator and topology with a
// uniform message loss probability in [0,1).
func New(sim *eventsim.Simulator, topo *topology.Network, lossRate float64) *Network {
	if lossRate < 0 || lossRate >= 1 {
		panic(fmt.Sprintf("netmodel: loss rate %v outside [0,1)", lossRate))
	}
	return &Network{sim: sim, topo: topo, lossRate: lossRate, eps: make(map[string]*Endpoint)}
}

// OnSend registers a hook invoked for every message handed to the network
// (before loss is applied), for traffic accounting.
func (nw *Network) OnSend(fn func(from *Endpoint, to pastry.NodeRef, m pastry.Message)) {
	nw.onSend = fn
}

// Sim returns the underlying simulator.
func (nw *Network) Sim() *eventsim.Simulator { return nw.sim }

// Topology returns the underlying topology.
func (nw *Network) Topology() *topology.Network { return nw.topo }

// Endpoint is an attachment point for one overlay node. It implements
// pastry.Env.
type Endpoint struct {
	nw    *Network
	index int
	addr  string
	node  *pastry.Node
	up    bool
}

// NewEndpoint wires a new endpoint to topology attachment point index.
// Endpoint addresses are the decimal attachment index.
func (nw *Network) NewEndpoint(index int) *Endpoint {
	addr := strconv.Itoa(index)
	if _, dup := nw.eps[addr]; dup {
		panic("netmodel: endpoint already exists: " + addr)
	}
	ep := &Endpoint{nw: nw, index: index, addr: addr, up: true}
	nw.eps[addr] = ep
	return ep
}

// Endpoint returns the endpoint with the given address, if any.
func (nw *Network) Endpoint(addr string) (*Endpoint, bool) {
	ep, ok := nw.eps[addr]
	return ep, ok
}

// Addr returns the endpoint's transport address.
func (ep *Endpoint) Addr() string { return ep.addr }

// Index returns the topology attachment index.
func (ep *Endpoint) Index() int { return ep.index }

// Node returns the overlay node currently bound to the endpoint.
func (ep *Endpoint) Node() *pastry.Node { return ep.node }

// Bind attaches an overlay node to the endpoint and marks it up. A new
// node instance is bound for every session of a churning endpoint.
func (ep *Endpoint) Bind(n *pastry.Node) {
	ep.node = n
	ep.up = true
}

// Fail crashes the endpoint's node and stops delivery to it.
func (ep *Endpoint) Fail() {
	ep.up = false
	if ep.node != nil {
		ep.node.Fail()
	}
}

// Up reports whether the endpoint currently hosts a live node.
func (ep *Endpoint) Up() bool { return ep.up && ep.node != nil }

// Now implements pastry.Env.
func (ep *Endpoint) Now() time.Duration { return ep.nw.sim.Now() }

// Rand implements pastry.Env.
func (ep *Endpoint) Rand() *rand.Rand { return ep.nw.sim.Rand() }

// Schedule implements pastry.Env.
func (ep *Endpoint) Schedule(d time.Duration, fn func()) pastry.Timer {
	return ep.nw.sim.After(d, fn)
}

// Send implements pastry.Env: apply the traffic hook, roll for loss and
// the active fault set, then deliver after the topology's one-way delay
// (perturbed by any delay-shaped faults). Routed payloads are copied on
// delivery so retransmitted duplicates do not share mutable state.
func (ep *Endpoint) Send(to pastry.NodeRef, m pastry.Message) {
	nw := ep.nw
	if nw.onSend != nil {
		nw.onSend(ep, to, m)
	}
	if nw.lossRate > 0 && nw.sim.Rand().Float64() < nw.lossRate {
		nw.drop(DropLoss)
		return
	}
	if nw.faults != nil {
		if cause, dropped := nw.faults.dropsMessage(nw.sim.Rand(), ep.addr, to.Addr); dropped {
			nw.drop(cause)
			return
		}
	}
	dst, ok := nw.eps[to.Addr]
	if !ok {
		nw.drop(DropUnknownEndpoint)
		return
	}
	delay := nw.topo.Delay(ep.index, dst.index)
	if nw.faults != nil {
		delay = nw.faults.perturbDelay(nw.sim.Rand(), delay)
		if nw.faults.duplicates(nw.sim.Rand()) {
			dup := nw.faults.perturbDelay(nw.sim.Rand(), nw.topo.Delay(ep.index, dst.index))
			nw.deliverAfter(dst, to, m, dup)
		}
	}
	nw.deliverAfter(dst, to, m, delay)
}

// drop accounts one undelivered message.
func (nw *Network) drop(cause DropCause) {
	nw.DropsByCause[cause]++
	if cause.injected() {
		nw.Drops++
	}
}

// deliverAfter schedules one delivery attempt; destination liveness and
// identity are re-checked at delivery time.
func (nw *Network) deliverAfter(dst *Endpoint, to pastry.NodeRef, m pastry.Message, delay time.Duration) {
	nw.sim.After(delay, func() {
		if !dst.up || dst.node == nil {
			nw.drop(DropDeadEndpoint)
			return
		}
		if dst.node.Ref().ID != to.ID {
			// The endpoint was reincarnated with a new identity; the
			// message was addressed to the dead instance.
			nw.drop(DropStaleIdentity)
			return
		}
		dst.node.Receive(copyForDelivery(m))
	})
}

// copyForDelivery clones mutable routed payloads (lookup/join envelopes);
// all other message types are treated as immutable by receivers.
func copyForDelivery(m pastry.Message) pastry.Message {
	env, ok := m.(*pastry.Envelope)
	if !ok {
		return m
	}
	out := *env
	if env.Lookup != nil {
		lk := *env.Lookup
		out.Lookup = &lk
	}
	if env.Join != nil {
		jr := *env.Join
		jr.Rows = append([]pastry.NodeRef(nil), env.Join.Rows...)
		out.Join = &jr
	}
	return &out
}
