package netmodel

import (
	"testing"
	"time"

	"mspastry/internal/eventsim"
	"mspastry/internal/id"
	"mspastry/internal/pastry"
)

// deliveryLog records lookup deliveries at a node: sequence and time.
type deliveryLog struct {
	sim   *eventsim.Simulator
	seqs  []uint64
	times []time.Duration
}

func (o *deliveryLog) Activated(*pastry.Node, time.Duration) {}
func (o *deliveryLog) Delivered(n *pastry.Node, lk *pastry.Lookup) {
	o.seqs = append(o.seqs, lk.Seq)
	o.times = append(o.times, o.sim.Now())
}
func (o *deliveryLog) LookupDropped(*pastry.Node, *pastry.Lookup, pastry.DropReason) {}

// rootWithLog builds a two-endpoint net where b is a bootstrapped
// singleton (the root of every key) with a delivery log attached.
func rootWithLog(t *testing.T) (*eventsim.Simulator, *Network, *Endpoint, *Endpoint, *pastry.Node, *deliveryLog) {
	t.Helper()
	sim, nw := testNet(t, 0)
	a := nw.NewEndpoint(nw.Topology().Attach(2, sim.Rand()))
	b := nw.NewEndpoint(a.Index() + 1)
	makeNode(t, nw, a)
	log := &deliveryLog{sim: sim}
	nodeSalt++
	ref := pastry.NodeRef{ID: id.New(uint64(b.Index()+1), nodeSalt), Addr: b.Addr()}
	nb, err := pastry.NewNode(ref, pastry.DefaultConfig(), b, log)
	if err != nil {
		t.Fatal(err)
	}
	b.Bind(nb)
	nb.Bootstrap()
	return sim, nw, a, b, nb, log
}

func lookupEnvelope(from *pastry.Node, seq uint64) *pastry.Envelope {
	return &pastry.Envelope{
		Xfer: seq,
		From: from.Ref(),
		Lookup: &pastry.Lookup{
			Key:    id.New(42, seq),
			Seq:    seq,
			Origin: from.Ref(),
			NoAck:  true,
		},
	}
}

func TestPartitionDropsCrossSideAndHeals(t *testing.T) {
	sim, nw := testNet(t, 0)
	a := nw.NewEndpoint(nw.Topology().Attach(2, sim.Rand()))
	b := nw.NewEndpoint(a.Index() + 1)
	na := makeNode(t, nw, a)
	nb := makeNode(t, nw, b)
	sideA := func(addr string) bool { return addr == a.Addr() }
	nw.Faults().PartitionAt(0, time.Minute, sideA)

	// During the partition the probe (and any reply) is dropped.
	sim.RunUntil(time.Second)
	a.Send(nb.Ref(), &pastry.DistProbe{From: na.Ref(), Seq: 1})
	sim.RunUntil(30 * time.Second)
	if na.Table().Contains(nb.Ref().ID) {
		t.Fatal("message crossed an active partition")
	}
	if nw.DropsByCause[DropPartition] == 0 {
		t.Fatal("partition drop not accounted")
	}
	// After the heal the same probe goes through.
	sim.RunUntil(61 * time.Second)
	a.Send(nb.Ref(), &pastry.DistProbe{From: na.Ref(), Seq: 2})
	sim.RunUntil(90 * time.Second)
	if !na.Table().Contains(nb.Ref().ID) {
		t.Fatal("message dropped after the partition healed")
	}
}

func TestPartitionSameSideDelivers(t *testing.T) {
	sim, nw := testNet(t, 0)
	a := nw.NewEndpoint(nw.Topology().Attach(2, sim.Rand()))
	b := nw.NewEndpoint(a.Index() + 1)
	na := makeNode(t, nw, a)
	nb := makeNode(t, nw, b)
	// Both endpoints on side A: traffic between them is unaffected.
	nw.Faults().SetPartition(func(string) bool { return true })
	a.Send(nb.Ref(), &pastry.DistProbe{From: na.Ref(), Seq: 1})
	sim.RunUntil(10 * time.Second)
	if !na.Table().Contains(nb.Ref().ID) {
		t.Fatal("same-side message dropped")
	}
}

func TestAsymmetricLinkLoss(t *testing.T) {
	sim, nw := testNet(t, 0)
	a := nw.NewEndpoint(nw.Topology().Attach(2, sim.Rand()))
	b := nw.NewEndpoint(a.Index() + 1)
	na := makeNode(t, nw, a)
	nb := makeNode(t, nw, b)
	// Lose everything a→b; leave b→a untouched.
	nw.Faults().SetLinkLoss(a.Addr(), b.Addr(), 0.999999)
	for i := 0; i < 50; i++ {
		a.Send(nb.Ref(), &pastry.Heartbeat{From: na.Ref()})
	}
	for i := 0; i < 50; i++ {
		b.Send(na.Ref(), &pastry.Heartbeat{From: nb.Ref()})
	}
	sim.RunUntil(10 * time.Second)
	if got := nw.DropsByCause[DropLinkLoss]; got < 45 {
		t.Fatalf("a→b link loss dropped %d of 50", got)
	}
	// b→a heartbeats arrived: a noted contact from b.
	if !na.Table().Contains(nb.Ref().ID) {
		t.Fatal("reverse direction was lossy too (asymmetry broken)")
	}
	if nb.Table().Contains(na.Ref().ID) {
		t.Fatal("forward direction leaked messages")
	}
}

func TestDelaySpikeShiftsDelivery(t *testing.T) {
	sim, nw, a, b, _, log := rootWithLog(t)
	na := a.nw.eps[a.Addr()].node
	const extra = 5 * time.Second
	nw.Faults().SetDelaySpike(extra)
	a.Send(b.node.Ref(), lookupEnvelope(na, 1))
	base := nw.Topology().Delay(a.Index(), b.Index())
	sim.RunUntil(base + extra - time.Millisecond)
	if len(log.seqs) != 0 {
		t.Fatal("delivered before the spike delay elapsed")
	}
	sim.RunUntil(base + extra + time.Millisecond)
	if len(log.seqs) != 1 {
		t.Fatalf("delivered %d messages, want 1", len(log.seqs))
	}
}

func TestJitterBounded(t *testing.T) {
	sim, nw, a, b, nb, log := rootWithLog(t)
	na := a.nw.eps[a.Addr()].node
	const maxJitter = 2 * time.Second
	nw.Faults().SetJitter(maxJitter)
	const n = 200
	for i := uint64(1); i <= n; i++ {
		a.Send(nb.Ref(), lookupEnvelope(na, i))
	}
	sim.RunUntil(time.Minute)
	if len(log.seqs) != n {
		t.Fatalf("delivered %d of %d", len(log.seqs), n)
	}
	base := nw.Topology().Delay(a.Index(), b.Index())
	var sawDelayed bool
	for _, at := range log.times {
		if at < base || at > base+maxJitter {
			t.Fatalf("delivery at %v outside [%v, %v]", at, base, base+maxJitter)
		}
		if at > base+maxJitter/4 {
			sawDelayed = true
		}
	}
	if !sawDelayed {
		t.Fatal("jitter had no visible effect")
	}
}

func TestDuplicationDeliversCopies(t *testing.T) {
	sim, nw, a, _, nb, log := rootWithLog(t)
	na := a.nw.eps[a.Addr()].node
	nw.Faults().SetDuplication(0.5)
	const n = 200
	for i := uint64(1); i <= n; i++ {
		a.Send(nb.Ref(), lookupEnvelope(na, i))
	}
	sim.RunUntil(time.Minute)
	// Duplicated counts every duplicated message on the network (the
	// root's own probe traffic included), so it bounds the extra lookup
	// deliveries from above.
	dup := nw.FaultCounts.Duplicated
	if dup < 60 {
		t.Fatalf("duplicated only %d messages at p=0.5 over %d sends", dup, n)
	}
	extra := uint64(len(log.seqs)) - n
	if extra == 0 {
		t.Fatal("no duplicate lookup was delivered")
	}
	if extra > dup {
		t.Fatalf("delivered %d extra lookups but only %d duplications occurred", extra, dup)
	}
}

func TestReorderingOvertakes(t *testing.T) {
	sim, nw, a, _, nb, log := rootWithLog(t)
	na := a.nw.eps[a.Addr()].node
	// Near-certain holdback with a large bound: earlier messages routinely
	// land after later ones.
	nw.Faults().SetReordering(0.5, 3*time.Second)
	const n = 100
	for i := uint64(1); i <= n; i++ {
		a.Send(nb.Ref(), lookupEnvelope(na, i))
	}
	sim.RunUntil(time.Minute)
	if len(log.seqs) != n {
		t.Fatalf("delivered %d of %d (reordering must not lose messages)", len(log.seqs), n)
	}
	inverted := 0
	for i := 1; i < len(log.seqs); i++ {
		if log.seqs[i] < log.seqs[i-1] {
			inverted++
		}
	}
	if inverted == 0 {
		t.Fatal("no message overtook another")
	}
	if nw.FaultCounts.Reordered == 0 {
		t.Fatal("reordering not accounted")
	}
}

func TestDropClassificationChurnArtifacts(t *testing.T) {
	sim, nw := testNet(t, 0)
	a := nw.NewEndpoint(nw.Topology().Attach(2, sim.Rand()))
	b := nw.NewEndpoint(a.Index() + 1)
	na := makeNode(t, nw, a)
	nb := makeNode(t, nw, b)

	// Unknown endpoint.
	a.Send(pastry.NodeRef{ID: id.New(1, 99), Addr: "9999"}, &pastry.Heartbeat{From: na.Ref()})
	if nw.DropsByCause[DropUnknownEndpoint] != 1 {
		t.Fatalf("unknown-endpoint drops = %d, want 1", nw.DropsByCause[DropUnknownEndpoint])
	}

	// Dead endpoint: failed before delivery.
	oldRef := nb.Ref()
	a.Send(oldRef, &pastry.Heartbeat{From: na.Ref()})
	b.Fail()
	sim.RunUntil(10 * time.Second)
	if nw.DropsByCause[DropDeadEndpoint] != 1 {
		t.Fatalf("dead-endpoint drops = %d, want 1", nw.DropsByCause[DropDeadEndpoint])
	}

	// Stale identity: reincarnated with a new node.
	makeNode(t, nw, b)
	a.Send(oldRef, &pastry.Heartbeat{From: na.Ref()})
	sim.RunUntil(20 * time.Second)
	if nw.DropsByCause[DropStaleIdentity] != 1 {
		t.Fatalf("stale-identity drops = %d, want 1", nw.DropsByCause[DropStaleIdentity])
	}

	// Churn artifacts must not count as injected drops.
	if nw.Drops != 0 {
		t.Fatalf("injected Drops = %d, want 0 (only churn artifacts occurred)", nw.Drops)
	}
}

func TestUniformLossClassified(t *testing.T) {
	sim, nw := testNet(t, 0.5)
	a := nw.NewEndpoint(nw.Topology().Attach(2, sim.Rand()))
	b := nw.NewEndpoint(a.Index() + 1)
	na := makeNode(t, nw, a)
	nb := makeNode(t, nw, b)
	_ = sim
	for i := 0; i < 1000; i++ {
		a.Send(nb.Ref(), &pastry.Heartbeat{From: na.Ref()})
	}
	if nw.DropsByCause[DropLoss] != nw.Drops {
		t.Fatalf("uniform loss drops %d != Drops %d", nw.DropsByCause[DropLoss], nw.Drops)
	}
}

// TestFaultDeterminism replays an identical fault scenario under the same
// seed and demands identical packet fates.
func TestFaultDeterminism(t *testing.T) {
	runOnce := func() ([NumDropCauses]uint64, FaultCounters, []uint64) {
		sim, nw, a, _, nb, log := rootWithLog(t)
		na := a.nw.eps[a.Addr()].node
		f := nw.Faults()
		f.JitterAt(0, 30*time.Second, time.Second)
		f.DuplicationAt(0, 30*time.Second, 0.3)
		f.ReorderingAt(0, 30*time.Second, 0.3, 2*time.Second)
		f.LinkLossAt(0, 30*time.Second, a.Addr(), nb.Ref().Addr, 0.2)
		for i := uint64(1); i <= 300; i++ {
			a.Send(nb.Ref(), lookupEnvelope(na, i))
		}
		sim.RunUntil(time.Minute)
		return nw.DropsByCause, nw.FaultCounts, log.seqs
	}
	d1, f1, s1 := runOnce()
	nodeSalt -= 2 // same node ids on the replay
	d2, f2, s2 := runOnce()
	if d1 != d2 || f1 != f2 {
		t.Fatalf("counters diverged under the same seed: %v/%v vs %v/%v", d1, f1, d2, f2)
	}
	if len(s1) != len(s2) {
		t.Fatalf("delivery counts diverged: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("delivery order diverged at %d: %d vs %d", i, s1[i], s2[i])
		}
	}
}

// TestCopyForDeliveryNoAliasing is the regression guard for the
// copy-on-deliver contract: mutating a delivered Join.Rows or Lookup must
// not reach the sender's retransmission copy.
func TestCopyForDeliveryNoAliasing(t *testing.T) {
	orig := &pastry.Envelope{
		Xfer: 1,
		From: pastry.NodeRef{ID: id.New(1, 1), Addr: "1"},
		Lookup: &pastry.Lookup{
			Key:  id.New(2, 2),
			Seq:  7,
			Hops: 3,
		},
		Join: &pastry.JoinRequest{
			Joiner: pastry.NodeRef{ID: id.New(3, 3), Addr: "3"},
			Rows: []pastry.NodeRef{
				{ID: id.New(4, 4), Addr: "4"},
				{ID: id.New(5, 5), Addr: "5"},
			},
			Hops: 2,
		},
	}
	delivered, ok := copyForDelivery(orig).(*pastry.Envelope)
	if !ok {
		t.Fatal("copyForDelivery changed the message type")
	}
	if delivered == orig || delivered.Lookup == orig.Lookup || delivered.Join == orig.Join {
		t.Fatal("copyForDelivery returned aliased envelope or payloads")
	}
	// Receiver-style mutations on the delivered copy.
	delivered.Lookup.Hops = 99
	delivered.Join.Hops = 99
	delivered.Join.Rows[0] = pastry.NodeRef{ID: id.New(9, 9), Addr: "9"}
	delivered.Join.Rows = append(delivered.Join.Rows, pastry.NodeRef{ID: id.New(8, 8), Addr: "8"})
	if orig.Lookup.Hops != 3 {
		t.Fatalf("sender's Lookup.Hops mutated to %d", orig.Lookup.Hops)
	}
	if orig.Join.Hops != 2 {
		t.Fatalf("sender's Join.Hops mutated to %d", orig.Join.Hops)
	}
	if got := orig.Join.Rows[0]; got.Addr != "4" {
		t.Fatalf("sender's Join.Rows[0] mutated to %v", got)
	}
	if len(orig.Join.Rows) != 2 {
		t.Fatalf("sender's Join.Rows length mutated to %d", len(orig.Join.Rows))
	}
	// Non-envelope messages pass through unchanged.
	hb := &pastry.Heartbeat{From: orig.From}
	if copyForDelivery(hb) != pastry.Message(hb) {
		t.Fatal("non-envelope message was copied")
	}
}
