package netmodel

import (
	"math/rand"
	"testing"
	"time"

	"mspastry/internal/eventsim"
	"mspastry/internal/id"
	"mspastry/internal/pastry"
	"mspastry/internal/topology"
	"mspastry/internal/wire"
)

func testNet(t *testing.T, loss float64) (*eventsim.Simulator, *Network) {
	t.Helper()
	sim := eventsim.New(1)
	topo := topology.CorpNet(topology.CorpNetConfig{Hubs: 4, EdgeRouters: 8}, rand.New(rand.NewSource(1)))
	return sim, New(sim, topo, loss)
}

var nodeSalt uint64

func makeNode(t *testing.T, nw *Network, ep *Endpoint) *pastry.Node {
	t.Helper()
	nodeSalt++
	cfg := pastry.DefaultConfig()
	ref := pastry.NodeRef{ID: id.New(uint64(ep.Index()+1), nodeSalt), Addr: ep.Addr()}
	n, err := pastry.NewNode(ref, cfg, ep, nil)
	if err != nil {
		t.Fatal(err)
	}
	ep.Bind(n)
	return n
}

func TestDeliveryWithDelay(t *testing.T) {
	sim, nw := testNet(t, 0)
	a := nw.NewEndpoint(nw.Topology().Attach(2, sim.Rand()))
	b := nw.NewEndpoint(a.Index() + 1)
	na := makeNode(t, nw, a)
	nb := makeNode(t, nw, b)
	na.Bootstrap()
	nb.Bootstrap()
	// Send a heartbeat from a to b and check it arrives after the
	// topology delay (b records the contact by replying nothing, so use
	// a dist probe which triggers a reply).
	a.Send(nb.Ref(), &pastry.DistProbe{From: na.Ref(), Seq: 7})
	delay := nw.Topology().Delay(a.Index(), b.Index())
	sim.RunUntil(delay - time.Nanosecond)
	// Reply cannot have been sent yet (message not yet delivered).
	sim.RunUntil(10 * time.Second)
	// After full run, the probe reply must have come back (check via the
	// estimator state indirectly: a's routing table gained b on contact).
	if !na.Table().Contains(nb.Ref().ID) {
		t.Fatal("probe reply never arrived")
	}
}

func TestLossDropsMessages(t *testing.T) {
	sim, nw := testNet(t, 0.5)
	a := nw.NewEndpoint(nw.Topology().Attach(2, sim.Rand()))
	b := nw.NewEndpoint(a.Index() + 1)
	na := makeNode(t, nw, a)
	nb := makeNode(t, nw, b)
	_ = nb
	for i := 0; i < 1000; i++ {
		a.Send(nb.Ref(), &pastry.Heartbeat{From: na.Ref()})
	}
	if nw.Drops < 350 || nw.Drops > 650 {
		t.Fatalf("drops = %d, want ~500 of 1000", nw.Drops)
	}
}

func TestNoDeliveryToFailedEndpoint(t *testing.T) {
	sim, nw := testNet(t, 0)
	a := nw.NewEndpoint(nw.Topology().Attach(2, sim.Rand()))
	b := nw.NewEndpoint(a.Index() + 1)
	na := makeNode(t, nw, a)
	nb := makeNode(t, nw, b)
	b.Fail()
	a.Send(nb.Ref(), &pastry.DistProbe{From: na.Ref(), Seq: 1})
	sim.RunUntil(10 * time.Second)
	if na.Table().Contains(nb.Ref().ID) {
		t.Fatal("failed endpoint replied")
	}
}

func TestNoDeliveryToReincarnatedIdentity(t *testing.T) {
	sim, nw := testNet(t, 0)
	a := nw.NewEndpoint(nw.Topology().Attach(2, sim.Rand()))
	b := nw.NewEndpoint(a.Index() + 1)
	na := makeNode(t, nw, a)
	oldRef := makeNode(t, nw, b).Ref()
	// Reincarnate b with a new identity.
	b.Fail()
	nb2 := makeNode(t, nw, b)
	// A message addressed to the old identity must not reach the new one.
	a.Send(oldRef, &pastry.DistProbe{From: na.Ref(), Seq: 2})
	sim.RunUntil(10 * time.Second)
	if na.Table().Contains(oldRef.ID) || na.Table().Contains(nb2.Ref().ID) {
		t.Fatal("stale-identity message was delivered")
	}
}

func TestOnSendHookSeesEverything(t *testing.T) {
	sim, nw := testNet(t, 0.9)
	a := nw.NewEndpoint(nw.Topology().Attach(2, sim.Rand()))
	b := nw.NewEndpoint(a.Index() + 1)
	na := makeNode(t, nw, a)
	nb := makeNode(t, nw, b)
	count := 0
	nw.OnSend(func(from *Endpoint, to pastry.NodeRef, m pastry.Message, singleBytes int) { count++ })
	for i := 0; i < 100; i++ {
		a.Send(nb.Ref(), &pastry.Heartbeat{From: na.Ref()})
	}
	if count != 100 {
		t.Fatalf("hook saw %d of 100 sends (must count before loss)", count)
	}
}

func TestEnvelopeCopiedOnDelivery(t *testing.T) {
	sim, nw := testNet(t, 0)
	a := nw.NewEndpoint(nw.Topology().Attach(2, sim.Rand()))
	b := nw.NewEndpoint(a.Index() + 1)
	na := makeNode(t, nw, a)
	nb := makeNode(t, nw, b)
	nb.Bootstrap()
	lk := &pastry.Lookup{Key: id.New(9, 9), Seq: 1, Origin: na.Ref(), Hops: 0}
	env := &pastry.Envelope{Xfer: 1, From: na.Ref(), Lookup: lk}
	a.Send(nb.Ref(), env)
	sim.RunUntil(10 * time.Second)
	if lk.Hops != 0 {
		t.Fatal("receiver mutated the sender's buffered lookup (no copy on delivery)")
	}
}

func TestBadLossRatePanics(t *testing.T) {
	sim := eventsim.New(1)
	topo := topology.CorpNet(topology.CorpNetConfig{Hubs: 2, EdgeRouters: 2}, rand.New(rand.NewSource(1)))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for loss rate 1.0")
		}
	}()
	New(sim, topo, 1.0)
}

// The simulator must charge exactly the bytes the wire layer would put on
// a real socket — that equality is what makes simulated overhead numbers
// comparable to a live node's /metrics.
func TestChargedBytesMatchWireEncoder(t *testing.T) {
	// Without coalescing, every message is charged its single-frame
	// encoding, byte for byte.
	sim, nw := testNet(t, 0)
	a := nw.NewEndpoint(nw.Topology().Attach(2, sim.Rand()))
	b := nw.NewEndpoint(a.Index() + 1)
	na := makeNode(t, nw, a)
	nb := makeNode(t, nw, b)
	msgs := []pastry.Message{
		&pastry.Heartbeat{From: na.Ref(), TrtHint: 30 * time.Second},
		&pastry.Ack{Xfer: 3, From: na.Ref()},
		&pastry.LSProbe{From: na.Ref(), Leaves: []pastry.NodeRef{nb.Ref()}, NeedNear: true},
		&pastry.Envelope{Xfer: 1, From: na.Ref(), Lookup: &pastry.Lookup{Key: id.New(5, 5), Seq: 1, Origin: na.Ref()}},
	}
	var charged []int
	nw.OnFrame(func(from *Endpoint, f FrameInfo) {
		if from == a {
			charged = append(charged, f.Bytes)
		}
	})
	for _, m := range msgs {
		a.Send(nb.Ref(), m)
	}
	if len(charged) != len(msgs) {
		t.Fatalf("charged %d frames for %d sends", len(charged), len(msgs))
	}
	total := 0
	for i, m := range msgs {
		want := len(wire.EncodeSingle(m))
		if charged[i] != want {
			t.Errorf("message %d (%T): charged %d bytes, wire encoder produces %d", i, m, charged[i], want)
		}
		total += want
	}

	// With a window, the batch is charged exactly what an independent wire
	// coalescer assembles for the same message sequence.
	sim2, nw2 := testNet(t, 0)
	nw2.SetCoalesceWindow(5 * time.Millisecond)
	c := nw2.NewEndpoint(nw2.Topology().Attach(2, sim2.Rand()))
	d := nw2.NewEndpoint(c.Index() + 1)
	nc := makeNode(t, nw2, c)
	nd := makeNode(t, nw2, d)
	batch := []pastry.Message{
		&pastry.Heartbeat{From: nc.Ref(), TrtHint: 30 * time.Second},
		&pastry.Ack{Xfer: 9, From: nc.Ref()},
		&pastry.Heartbeat{From: nc.Ref(), TrtHint: time.Second},
	}
	var batchCharged []int
	nw2.OnFrame(func(from *Endpoint, f FrameInfo) {
		if from == c {
			batchCharged = append(batchCharged, f.Bytes)
		}
	})
	for _, m := range batch {
		c.Send(nd.Ref(), m)
	}
	sim2.RunUntil(6 * time.Millisecond) // past the window: one flush

	want := 0
	ref := wire.NewCoalescer(wire.Config{
		Window: 5 * time.Millisecond,
		Now:    func() time.Duration { return 0 },
		After:  func(time.Duration, func()) {},
		Emit:   func(f wire.Flush) { want += len(f.Frame) },
	})
	for _, m := range batch {
		ref.Send("peer", nd.Ref(), m)
	}
	ref.FlushAll()
	if len(batchCharged) != 1 || batchCharged[0] != want {
		t.Fatalf("batch charged %v, wire coalescer assembles %d bytes", batchCharged, want)
	}
	if got := int(nw2.FrameBytes); got != want {
		t.Fatalf("network charged %d total bytes, wire output is %d", got, want)
	}
}
