package netmodel

import (
	"testing"
	"time"

	"mspastry/internal/overload"
	"mspastry/internal/pastry"
)

// TestServiceModelBoundsRate checks that a bound endpoint consumes
// messages at the configured rate rather than instantaneously: 10
// arrivals at a 2/s service rate take ~5 simulated seconds to process.
func TestServiceModelBoundsRate(t *testing.T) {
	sim, nw := testNet(t, 0)
	nw.SetServiceModel(ServiceModel{QueueLimit: 64, Rate: 2})
	a := nw.NewEndpoint(nw.Topology().Attach(2, sim.Rand()))
	b := nw.NewEndpoint(a.Index() + 1)
	na := makeNode(t, nw, a)
	nb := makeNode(t, nw, b)
	// Neither node is bootstrapped: heartbeats generate no replies, so
	// the only traffic is the one-way burst below.
	for i := 0; i < 10; i++ {
		a.Send(nb.Ref(), &pastry.Heartbeat{From: na.Ref()})
	}
	delay := nw.Topology().Delay(a.Index(), b.Index())

	// After the propagation delay plus 4 service slots, at most 4 of the
	// 10 heartbeats can have been processed.
	sim.RunUntil(delay + 4*500*time.Millisecond + time.Millisecond)
	if b.LoadFactor() == 0 {
		t.Fatal("service queue drained faster than the configured rate")
	}
	// Ten slots in, everything has been processed.
	sim.RunUntil(delay + 10*500*time.Millisecond + time.Millisecond)
	if b.LoadFactor() != 0 {
		t.Fatalf("service queue not drained: load=%v", b.LoadFactor())
	}
	if !nb.Alive() {
		t.Fatal("receiver died")
	}
	if got := nw.DropsByCause[DropOverload]; got != 0 {
		t.Fatalf("unexpected overload drops: %d", got)
	}
}

// TestServiceModelShedsLowestPriorityFirst floods an endpoint past its
// queue bound with bulk traffic, then delivers liveness traffic: the
// liveness messages must displace bulk ones, never be shed themselves.
func TestServiceModelShedsLowestPriorityFirst(t *testing.T) {
	sim, nw := testNet(t, 0)
	nw.SetServiceModel(ServiceModel{QueueLimit: 8, Rate: 1})
	a := nw.NewEndpoint(nw.Topology().Attach(2, sim.Rand()))
	b := nw.NewEndpoint(a.Index() + 1)
	na := makeNode(t, nw, a)
	nb := makeNode(t, nw, b)
	na.Bootstrap()
	nb.Bootstrap()

	// 12 bulk messages against a queue of 8: 4 shed as bulk.
	for i := 0; i < 12; i++ {
		a.Send(nb.Ref(), &pastry.AppDirect{From: na.Ref(), Payload: []byte{1}})
	}
	// 4 heartbeats displace 4 more bulk messages.
	for i := 0; i < 4; i++ {
		a.Send(nb.Ref(), &pastry.Heartbeat{From: na.Ref()})
	}
	delay := nw.Topology().Delay(a.Index(), b.Index())
	sim.RunUntil(delay + time.Millisecond)

	if got := nw.ShedByLane[overload.LaneBulk]; got != 8 {
		t.Fatalf("bulk sheds = %d, want 8", got)
	}
	if got := nw.ShedByLane[overload.LaneLiveness]; got != 0 {
		t.Fatalf("liveness sheds = %d, want 0", got)
	}
	if got := nw.DropsByCause[DropOverload]; got != 8 {
		t.Fatalf("overload drops = %d, want 8", got)
	}
	// Injected-fault accounting must not count overload sheds.
	if nw.Drops != 0 {
		t.Fatalf("Drops = %d, want 0 (overload is not an injected fault)", nw.Drops)
	}
}

// TestServiceQueueDiesWithEndpoint checks that queued work is discarded
// when the endpoint fails, and accounted as dead-endpoint drops.
func TestServiceQueueDiesWithEndpoint(t *testing.T) {
	sim, nw := testNet(t, 0)
	nw.SetServiceModel(ServiceModel{QueueLimit: 16, Rate: 1})
	a := nw.NewEndpoint(nw.Topology().Attach(2, sim.Rand()))
	b := nw.NewEndpoint(a.Index() + 1)
	na := makeNode(t, nw, a)
	nb := makeNode(t, nw, b)
	na.Bootstrap()
	nb.Bootstrap()

	for i := 0; i < 6; i++ {
		a.Send(nb.Ref(), &pastry.AppDirect{From: na.Ref(), Payload: []byte{1}})
	}
	delay := nw.Topology().Delay(a.Index(), b.Index())
	sim.RunUntil(delay + time.Millisecond)
	if b.LoadFactor() == 0 {
		t.Fatal("no work queued before failure")
	}
	before := nw.DropsByCause[DropDeadEndpoint]
	b.Fail()
	if b.LoadFactor() != 0 {
		t.Fatal("queue survived endpoint failure")
	}
	if got := nw.DropsByCause[DropDeadEndpoint] - before; got == 0 {
		t.Fatal("drained queue not accounted as dead-endpoint drops")
	}
	// The pending service timer must be harmless after the failure.
	sim.RunUntil(sim.Now() + 5*time.Second)
}
