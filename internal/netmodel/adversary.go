// Byzantine adversary model: a configurable fraction of endpoints is
// marked malicious and attacks the routing layer with composable
// behaviours, injected at the same two points the fault set uses — the
// send path (poisoned advertisements) and the delivery path (dropped,
// misrouted or captured lookups). Malicious nodes run the unmodified
// node code for everything else: they join, probe, heartbeat and answer
// honestly except where a behaviour says otherwise, which is exactly the
// adversary the routing failure test is designed to catch — one that
// looks healthy to crash-fault machinery.
//
// The model is deterministic without a random stream of its own: which
// nodes are malicious is the caller's choice (the harness draws it from
// a dedicated seeded stream), and every attack decision below is a pure
// function of message and colluder state, with colluder sets reduced by
// strict ring-distance comparison so map iteration order never leaks
// into delivery order.
package netmodel

import (
	"fmt"
	"sort"
	"strings"

	"mspastry/internal/id"
	"mspastry/internal/pastry"
)

// Behavior is a bit set of adversarial behaviours.
type Behavior uint

const (
	// AdvDrop silently discards lookups in transit (the node still acks
	// them when AdvForgeAck is set, so per-hop machinery sees a healthy
	// hop).
	AdvDrop Behavior = 1 << iota
	// AdvMisroute forwards transit lookups toward the colluder closest to
	// the key instead of the true next hop; the closest colluder claims
	// to be the root and, if a report was requested, forges one with a
	// colluder-only leaf set.
	AdvMisroute
	// AdvPoison rewrites outgoing routing-table advertisements (row
	// replies and announcements, repair replies, join-state rows,
	// nearest-neighbour candidates) to point at colluders.
	AdvPoison
	// AdvForgeAck acknowledges consumed lookups so the sender's per-hop
	// retransmission never fires; without it, crash-fault rerouting
	// already recovers most attacks.
	AdvForgeAck

	// AdvAll composes every behaviour.
	AdvAll = AdvDrop | AdvMisroute | AdvPoison | AdvForgeAck
)

// String renders the set as a comma-joined flag list.
func (b Behavior) String() string {
	if b == 0 {
		return "none"
	}
	var parts []string
	for _, f := range []struct {
		bit  Behavior
		name string
	}{
		{AdvDrop, "drop"},
		{AdvMisroute, "misroute"},
		{AdvPoison, "poison"},
		{AdvForgeAck, "forgeack"},
	} {
		if b&f.bit != 0 {
			parts = append(parts, f.name)
		}
	}
	return strings.Join(parts, ",")
}

// ParseBehaviors parses a comma-separated behaviour list
// ("drop,misroute,poison,forgeack"), or "all" / "none".
func ParseBehaviors(s string) (Behavior, error) {
	switch strings.TrimSpace(s) {
	case "", "all":
		return AdvAll, nil
	case "none":
		return 0, nil
	}
	var b Behavior
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "drop":
			b |= AdvDrop
		case "misroute":
			b |= AdvMisroute
		case "poison":
			b |= AdvPoison
		case "forgeack":
			b |= AdvForgeAck
		default:
			return 0, fmt.Errorf("unknown adversary behaviour %q", part)
		}
	}
	return b, nil
}

// AdversaryStats tallies attack activity.
type AdversaryStats struct {
	// LookupsDropped counts transit lookups silently consumed.
	LookupsDropped uint64
	// LookupsMisrouted counts transit lookups diverted to a colluder.
	LookupsMisrouted uint64
	// RootClaims counts lookups captured by a colluder posing as the
	// key's root.
	RootClaims uint64
	// ReportsForged counts forged RootReports sent for captured lookups.
	ReportsForged uint64
	// AcksForged counts per-hop acks forged for consumed lookups.
	AcksForged uint64
	// MessagesPoisoned counts outgoing advertisements rewritten to point
	// at colluders.
	MessagesPoisoned uint64
}

// Adversary is the network's Byzantine fault state. The zero state marks
// nobody; obtain one with Network.Adversary. All mutation must happen
// inside simulator events.
type Adversary struct {
	nw        *Network
	behaviors Behavior
	malicious map[string]bool
	// Stats tallies attack activity for experiment output.
	Stats AdversaryStats
}

// Adversary returns the network's adversary, creating it on first use.
func (nw *Network) Adversary() *Adversary {
	if nw.adv == nil {
		nw.adv = &Adversary{nw: nw, malicious: make(map[string]bool)}
	}
	return nw.adv
}

// SetBehaviors selects which attacks marked nodes mount.
func (a *Adversary) SetBehaviors(b Behavior) { a.behaviors = b }

// Behaviors returns the active behaviour set.
func (a *Adversary) Behaviors() Behavior { return a.behaviors }

// Mark turns the endpoint with the given address malicious (across
// reincarnations: the address stays marked).
func (a *Adversary) Mark(addr string) { a.malicious[addr] = true }

// Marked reports whether the address is malicious.
func (a *Adversary) Marked(addr string) bool { return a.malicious[addr] }

// Count returns how many addresses are marked.
func (a *Adversary) Count() int { return len(a.malicious) }

// misrouteTTL bounds colluder-to-colluder forwarding so a (buggy) cycle
// cannot loop forever; generously above any honest route length.
const misrouteTTL = 64

// interceptInbound runs when a message arrives at endpoint dst, before
// the node sees it. It returns true when the adversary consumed the
// message. Only transit lookups are attacked — maintenance traffic is
// answered honestly (a node that eats probes gets evicted by the
// crash-fault machinery and loses its attack position) — and a malicious
// node that is itself the key's root delivers honestly: dropping at the
// root is a replication problem, not a routing one, and no routing
// defense can recover a key whose only root is hostile.
func (a *Adversary) interceptInbound(dst *Endpoint, m pastry.Message) bool {
	if a.behaviors&(AdvDrop|AdvMisroute) == 0 || !a.malicious[dst.addr] {
		return false
	}
	env, ok := m.(*pastry.Envelope)
	if !ok || env.Lookup == nil {
		return false
	}
	node := dst.node
	if node.IsRootFor(env.Lookup.Key) {
		return false
	}
	// The lookup is being consumed. Forge the per-hop ack first so the
	// sender's retransmission machinery sees a healthy hop.
	if a.behaviors&AdvForgeAck != 0 && env.NeedAck {
		a.Stats.AcksForged++
		dst.Send(env.From, &pastry.Ack{Xfer: env.Xfer, From: node.Ref()})
	}
	if a.behaviors&AdvMisroute != 0 {
		a.misroute(dst, env.Lookup)
	} else {
		a.Stats.LookupsDropped++
		a.nw.dropN(DropAdversary, 1)
	}
	return true
}

// misroute diverts a captured lookup toward the live colluder closest to
// the key; when this node is already the closest colluder it claims the
// root, forging a completion report from colluder leaves when the origin
// asked for one.
func (a *Adversary) misroute(dst *Endpoint, lk *pastry.Lookup) {
	self := dst.node.Ref()
	key := lk.Key
	best, found := a.closestColluder(key, dst.addr)
	if found && id.CloserToKey(key, best.ID, self.ID) && lk.Hops < misrouteTTL {
		cp := *lk
		cp.Hops++
		a.Stats.LookupsMisrouted++
		dst.Send(best, &pastry.Envelope{From: self, Lookup: &cp})
		return
	}
	// Capture: the lookup dies here, posing as delivered.
	a.Stats.RootClaims++
	a.nw.dropN(DropAdversary, 1)
	if lk.WantReport && lk.Origin.ID != self.ID {
		a.Stats.ReportsForged++
		dst.Send(lk.Origin, &pastry.RootReport{
			From:   self,
			Seq:    lk.Seq,
			Key:    lk.Key,
			Leaves: a.colludersNear(self.ID, dst.addr, 16),
		})
	}
}

// rewriteOutbound applies AdvPoison on the send path: routing-table
// advertisements leaving a malicious node are rewritten to point at
// colluders near the receiver's identifier, maximising the chance the
// receiver installs them. Leaf-set membership messages (probes,
// heartbeats, join-reply leaves) are deliberately left honest: leaf-set
// lies attack ring maintenance itself, which no lookup-level defense can
// repair, and MSPastry's probe-before-insert discipline already forces a
// poisoned entry to answer probes — which colluders do — so routing-table
// poison is the attack that matters for routing.
func (a *Adversary) rewriteOutbound(src *Endpoint, to pastry.NodeRef, m pastry.Message) pastry.Message {
	if a.behaviors&AdvPoison == 0 || !a.malicious[src.addr] {
		return m
	}
	poison := func(orig []pastry.NodeRef) ([]pastry.NodeRef, bool) {
		if len(orig) == 0 {
			return nil, false
		}
		sub := a.colludersNear(to.ID, src.addr, len(orig))
		if len(sub) == 0 {
			return nil, false
		}
		a.Stats.MessagesPoisoned++
		return sub, true
	}
	switch msg := m.(type) {
	case *pastry.RowReply:
		if sub, ok := poison(msg.Entries); ok {
			cp := *msg
			cp.Entries = sub
			return &cp
		}
	case *pastry.RowAnnounce:
		if sub, ok := poison(msg.Entries); ok {
			cp := *msg
			cp.Entries = sub
			return &cp
		}
	case *pastry.RepairReply:
		if sub, ok := poison(msg.Entries); ok {
			cp := *msg
			cp.Entries = sub
			return &cp
		}
	case *pastry.NNStateReply:
		if sub, ok := poison(msg.Entries); ok {
			cp := *msg
			cp.Entries = sub
			return &cp
		}
	case *pastry.LSProbeReply:
		if sub, ok := poison(msg.Near); ok {
			cp := *msg
			cp.Near = sub
			return &cp
		}
	case *pastry.JoinReply:
		if len(msg.Rows) > 0 {
			if sub, ok := poison(msg.Rows); ok {
				cp := *msg
				cp.Rows = sub
				return &cp
			}
		}
	}
	return m
}

// liveColluders returns the refs of all live, active marked nodes except
// the given one. Order is map order — callers must reduce or sort.
func (a *Adversary) liveColluders(exclude string) []pastry.NodeRef {
	var out []pastry.NodeRef
	for addr := range a.malicious {
		if addr == exclude {
			continue
		}
		ep, ok := a.nw.eps[addr]
		if !ok || !ep.Up() || !ep.node.Active() {
			continue
		}
		out = append(out, ep.node.Ref())
	}
	return out
}

// closestColluder finds the live colluder closest to the key. Reduction
// by strict CloserToKey comparison makes the result independent of map
// iteration order.
func (a *Adversary) closestColluder(key id.ID, exclude string) (pastry.NodeRef, bool) {
	var best pastry.NodeRef
	found := false
	for _, c := range a.liveColluders(exclude) {
		if !found || id.CloserToKey(key, c.ID, best.ID) {
			best, found = c, true
		}
	}
	return best, found
}

// colludersNear returns up to max live colluders sorted by closeness to
// the target identifier (sorted, so the result is deterministic).
func (a *Adversary) colludersNear(target id.ID, exclude string, max int) []pastry.NodeRef {
	out := a.liveColluders(exclude)
	sort.Slice(out, func(i, j int) bool {
		if id.CloserToKey(target, out[i].ID, out[j].ID) {
			return true
		}
		if id.CloserToKey(target, out[j].ID, out[i].ID) {
			return false
		}
		return out[i].Addr < out[j].Addr
	})
	if len(out) > max {
		out = out[:max]
	}
	return out
}
