// Fault injection: scheduled adversarial network conditions composed on
// top of the base delay/loss pipeline. The paper's dependability claim
// ("never deliver at a wrong root ... provided there are no false
// positives") is only testable under the conditions that *cause* false
// positives — delay spikes, partitions, reordered and duplicated packets —
// none of which uniform i.i.d. loss can produce. Every fault draws its
// randomness from the simulator's seeded source, so scenarios are fully
// deterministic: the same seed yields the same packet fates.
package netmodel

import (
	"fmt"
	"math/rand"
	"time"
)

// DropCause classifies why the network did not deliver a message.
type DropCause int

const (
	// DropLoss is the base uniform injected loss.
	DropLoss DropCause = iota
	// DropLinkLoss is injected per-link (asymmetric) loss.
	DropLinkLoss
	// DropPartition means sender and destination were on opposite sides of
	// an active network partition.
	DropPartition
	// DropUnknownEndpoint means no endpoint exists with the destination
	// address.
	DropUnknownEndpoint
	// DropDeadEndpoint means the destination endpoint had failed by
	// delivery time.
	DropDeadEndpoint
	// DropStaleIdentity means the destination endpoint was reincarnated
	// with a new node identity; the message was addressed to the dead
	// instance.
	DropStaleIdentity
	// DropOverload means the destination's bounded service queue shed the
	// message (or a lower-priority one to admit it); see ServiceModel.
	DropOverload
	// DropAdversary means a malicious node consumed the message: a
	// Byzantine peer dropped a transit lookup or captured it with a
	// forged root claim (see Adversary).
	DropAdversary
	// NumDropCauses sizes dense per-cause arrays.
	NumDropCauses
)

func (c DropCause) String() string {
	switch c {
	case DropLoss:
		return "loss"
	case DropLinkLoss:
		return "linkloss"
	case DropPartition:
		return "partition"
	case DropUnknownEndpoint:
		return "unknown-endpoint"
	case DropDeadEndpoint:
		return "dead-endpoint"
	case DropStaleIdentity:
		return "stale-identity"
	case DropOverload:
		return "overload"
	case DropAdversary:
		return "adversary"
	default:
		return fmt.Sprintf("DropCause(%d)", int(c))
	}
}

// injected reports whether the cause is an injected fault (as opposed to a
// churn artifact: the destination being unknown, dead or reincarnated).
// Adversarial consumption is injected: the experiment configured it.
func (c DropCause) injected() bool {
	return c == DropLoss || c == DropLinkLoss || c == DropPartition || c == DropAdversary
}

// FaultCounters tallies fault-injection activity on a Network.
type FaultCounters struct {
	// Duplicated counts extra copies injected by message duplication.
	Duplicated uint64
	// Reordered counts messages that were held back past their natural
	// delivery time by the reordering fault.
	Reordered uint64
}

// linkKey identifies a directed endpoint pair for per-link loss.
type linkKey struct{ from, to string }

// FaultSet is the mutable fault state of a Network plus schedulers that
// arm and disarm faults at virtual times. The zero state injects nothing;
// obtain one with Network.Faults. All mutation must happen inside
// simulator events (the simulator is single-threaded).
type FaultSet struct {
	nw *Network

	// partition, when non-nil, splits endpoints into two sides; messages
	// whose endpoints map to different sides are dropped. The predicate is
	// evaluated per message, so endpoints created mid-partition are
	// covered.
	partition func(addr string) bool

	// linkLoss holds per-directed-link injected loss probabilities.
	linkLoss map[linkKey]float64

	// jitterMax adds a uniform random extra delay in [0, jitterMax] to
	// every delivered message.
	jitterMax time.Duration

	// spikeExtra adds a fixed extra delay to every delivered message (a
	// delay spike: the false-positive inducer for aggressive
	// retransmission timers).
	spikeExtra time.Duration

	// dupProb duplicates a delivered message with this probability; the
	// copy takes an independently perturbed delay.
	dupProb float64

	// reorderProb holds a delivered message back by a uniform random extra
	// delay in (0, reorderMax] with this probability, letting
	// later-sent messages overtake it (bounded reordering).
	reorderProb float64
	reorderMax  time.Duration
}

// Faults returns the network's fault set, creating it on first use.
func (nw *Network) Faults() *FaultSet {
	if nw.faults == nil {
		nw.faults = &FaultSet{nw: nw}
	}
	return nw.faults
}

// ---- immediate setters ----

// SetPartition splits the network: endpoints for which sideA returns true
// cannot exchange messages with the rest. Passing nil heals the partition.
// Only one partition is active at a time; setting a new one replaces the
// old.
func (f *FaultSet) SetPartition(sideA func(addr string) bool) {
	f.partition = sideA
}

// Partitioned reports whether a partition is currently active.
func (f *FaultSet) Partitioned() bool { return f.partition != nil }

// SetLinkLoss injects loss probability rate on the directed link from →
// to (endpoint addresses). Rate 0 removes the rule. Asymmetric loss is
// expressed by setting only one direction.
func (f *FaultSet) SetLinkLoss(from, to string, rate float64) {
	if rate < 0 || rate >= 1 {
		panic(fmt.Sprintf("netmodel: link loss rate %v outside [0,1)", rate))
	}
	if rate == 0 {
		delete(f.linkLoss, linkKey{from, to})
		return
	}
	if f.linkLoss == nil {
		f.linkLoss = make(map[linkKey]float64)
	}
	f.linkLoss[linkKey{from, to}] = rate
}

// SetJitter adds a uniform random extra delay in [0, max] to every
// message. Zero disables jitter.
func (f *FaultSet) SetJitter(max time.Duration) {
	if max < 0 {
		panic("netmodel: negative jitter")
	}
	f.jitterMax = max
}

// SetDelaySpike adds a fixed extra delay to every message. Zero ends the
// spike.
func (f *FaultSet) SetDelaySpike(extra time.Duration) {
	if extra < 0 {
		panic("netmodel: negative delay spike")
	}
	f.spikeExtra = extra
}

// SetDuplication duplicates each delivered message with probability p.
func (f *FaultSet) SetDuplication(p float64) {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("netmodel: duplication probability %v outside [0,1)", p))
	}
	f.dupProb = p
}

// SetReordering holds each delivered message back by a random extra delay
// in (0, maxExtra] with probability p, so later messages can overtake it.
func (f *FaultSet) SetReordering(p float64, maxExtra time.Duration) {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("netmodel: reordering probability %v outside [0,1)", p))
	}
	if p > 0 && maxExtra <= 0 {
		panic("netmodel: reordering needs a positive maxExtra")
	}
	f.reorderProb = p
	f.reorderMax = maxExtra
}

// ---- timed schedulers ----
// Each arms the fault at virtual time start and disarms it duration
// later (duration <= 0 leaves the fault active until cleared manually).

// PartitionAt schedules a partition with a timed heal.
func (f *FaultSet) PartitionAt(start, duration time.Duration, sideA func(addr string) bool) {
	f.at(start, duration,
		func() { f.SetPartition(sideA) },
		func() { f.SetPartition(nil) })
}

// LinkLossAt schedules per-link loss on from → to.
func (f *FaultSet) LinkLossAt(start, duration time.Duration, from, to string, rate float64) {
	f.at(start, duration,
		func() { f.SetLinkLoss(from, to, rate) },
		func() { f.SetLinkLoss(from, to, 0) })
}

// JitterAt schedules a jitter window.
func (f *FaultSet) JitterAt(start, duration, max time.Duration) {
	f.at(start, duration,
		func() { f.SetJitter(max) },
		func() { f.SetJitter(0) })
}

// DelaySpikeAt schedules a delay-spike window.
func (f *FaultSet) DelaySpikeAt(start, duration, extra time.Duration) {
	f.at(start, duration,
		func() { f.SetDelaySpike(extra) },
		func() { f.SetDelaySpike(0) })
}

// DuplicationAt schedules a duplication window.
func (f *FaultSet) DuplicationAt(start, duration time.Duration, p float64) {
	f.at(start, duration,
		func() { f.SetDuplication(p) },
		func() { f.SetDuplication(0) })
}

// ReorderingAt schedules a reordering window.
func (f *FaultSet) ReorderingAt(start, duration time.Duration, p float64, maxExtra time.Duration) {
	f.at(start, duration,
		func() { f.SetReordering(p, maxExtra) },
		func() { f.SetReordering(0, 0) })
}

func (f *FaultSet) at(start, duration time.Duration, arm, disarm func()) {
	f.nw.sim.At(start, arm)
	if duration > 0 {
		f.nw.sim.At(start+duration, disarm)
	}
}

// ---- send-path hooks ----

// dropsMessage rolls the loss-like faults for one message and returns the
// cause if it must be dropped.
func (f *FaultSet) dropsMessage(rng *rand.Rand, from, to string) (DropCause, bool) {
	if f.partition != nil && f.partition(from) != f.partition(to) {
		return DropPartition, true
	}
	if p, ok := f.linkLoss[linkKey{from, to}]; ok && rng.Float64() < p {
		return DropLinkLoss, true
	}
	return 0, false
}

// perturbDelay applies the delay-shaped faults (spike, jitter, reordering)
// to a message's one-way delay.
func (f *FaultSet) perturbDelay(rng *rand.Rand, delay time.Duration) time.Duration {
	delay += f.spikeExtra
	if f.jitterMax > 0 {
		delay += time.Duration(rng.Int63n(int64(f.jitterMax) + 1))
	}
	if f.reorderProb > 0 && rng.Float64() < f.reorderProb {
		f.nw.FaultCounts.Reordered++
		delay += 1 + time.Duration(rng.Int63n(int64(f.reorderMax)))
	}
	return delay
}

// duplicates rolls the duplication fault.
func (f *FaultSet) duplicates(rng *rand.Rand) bool {
	if f.dupProb > 0 && rng.Float64() < f.dupProb {
		f.nw.FaultCounts.Duplicated++
		return true
	}
	return false
}
