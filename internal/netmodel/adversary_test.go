package netmodel

import (
	"testing"
	"time"

	"mspastry/internal/pastry"
)

// buildTriangle wires three bootstrapped-and-joined nodes a, b, c and
// runs the sim until they know each other.
func buildTriangle(t *testing.T) (*Network, []*Endpoint, []*pastry.Node) {
	t.Helper()
	sim, nw := testNet(t, 0)
	base := nw.Topology().Attach(3, sim.Rand())
	var eps []*Endpoint
	var nodes []*pastry.Node
	for i := 0; i < 3; i++ {
		ep := nw.NewEndpoint(base + i)
		eps = append(eps, ep)
		nodes = append(nodes, makeNode(t, nw, ep))
	}
	nodes[0].Bootstrap()
	nodes[1].Join(nodes[0].Ref())
	sim.RunUntil(30 * time.Second)
	nodes[2].Join(nodes[0].Ref())
	sim.RunUntil(90 * time.Second)
	for i, n := range nodes {
		if !n.Active() {
			t.Fatalf("node %d not active", i)
		}
	}
	return nw, eps, nodes
}

func TestParseBehaviors(t *testing.T) {
	cases := []struct {
		in   string
		want Behavior
		err  bool
	}{
		{"all", AdvAll, false},
		{"", AdvAll, false},
		{"none", 0, false},
		{"drop", AdvDrop, false},
		{"drop,forgeack", AdvDrop | AdvForgeAck, false},
		{" misroute , poison ", AdvMisroute | AdvPoison, false},
		{"bogus", 0, true},
	}
	for _, tc := range cases {
		got, err := ParseBehaviors(tc.in)
		if (err != nil) != tc.err || got != tc.want {
			t.Fatalf("ParseBehaviors(%q) = %v, %v; want %v err=%v", tc.in, got, err, tc.want, tc.err)
		}
	}
	if s := (AdvDrop | AdvForgeAck).String(); s != "drop,forgeack" {
		t.Fatalf("String = %q", s)
	}
	if s := Behavior(0).String(); s != "none" {
		t.Fatalf("String(0) = %q", s)
	}
}

// TestAdversaryDropsTransitLookups checks the core interception: a
// malicious transit hop consumes lookups (counted under DropAdversary)
// and forges the per-hop ack so the sender never reroutes, while a
// malicious node that is itself the key's root delivers honestly.
func TestAdversaryDropsTransitLookups(t *testing.T) {
	nw, eps, nodes := buildTriangle(t)
	sim := nw.Sim()
	adv := nw.Adversary()
	adv.SetBehaviors(AdvDrop | AdvForgeAck)
	adv.Mark(eps[1].Addr())
	if !adv.Marked(eps[1].Addr()) || adv.Count() != 1 {
		t.Fatal("marking not recorded")
	}

	// A lookup for node 1's own id roots at node 1: the malicious node
	// must deliver it honestly (the at-root exemption).
	delivered := 0
	nodes[1].SetApp(appFunc(func(lk *pastry.Lookup) { delivered++ }))
	nodes[0].Lookup(nodes[1].Ref().ID, nil)
	sim.RunUntil(sim.Now() + 20*time.Second)
	if delivered != 1 {
		t.Fatalf("at-root lookup delivered %d times, want 1 (exemption)", delivered)
	}
	if adv.Stats.LookupsDropped != 0 {
		t.Fatalf("at-root lookup dropped: %+v", adv.Stats)
	}

	// A routed envelope through node 1 for a key rooting elsewhere is
	// consumed and acked.
	before := nw.DropsByCause[DropAdversary]
	lk := &pastry.Lookup{Key: nodes[2].Ref().ID, Seq: 99, Origin: nodes[0].Ref()}
	eps[0].Send(nodes[1].Ref(), &pastry.Envelope{Xfer: 7, NeedAck: true, From: nodes[0].Ref(), Lookup: lk})
	sim.RunUntil(sim.Now() + 20*time.Second)
	if got := nw.DropsByCause[DropAdversary] - before; got != 1 {
		t.Fatalf("adversary drops = %d, want 1", got)
	}
	if adv.Stats.LookupsDropped != 1 || adv.Stats.AcksForged != 1 {
		t.Fatalf("stats = %+v, want 1 drop and 1 forged ack", adv.Stats)
	}
}

// TestAdversaryMisroutesToColluder checks colluder forwarding: with two
// marked nodes, a lookup intercepted by the farther colluder is passed
// to the one closer to the key, which claims the root and forges a
// completion report to the origin.
func TestAdversaryMisroutesToColluder(t *testing.T) {
	nw, eps, nodes := buildTriangle(t)
	sim := nw.Sim()
	adv := nw.Adversary()
	adv.SetBehaviors(AdvMisroute)
	adv.Mark(eps[1].Addr())
	adv.Mark(eps[2].Addr())

	// Key = colluder 2's id, origin node 0: whichever colluder
	// intercepts, colluder 2 is the closest colluder... but it is also
	// the true root, so use a key rooted at node 0 instead and inject
	// the envelope at colluder 1 directly.
	key := nodes[0].Ref().ID
	lk := &pastry.Lookup{Key: key, Seq: 5, Origin: nodes[2].Ref(), WantReport: true}
	eps[0].Send(nodes[1].Ref(), &pastry.Envelope{From: nodes[0].Ref(), Lookup: lk})
	sim.RunUntil(sim.Now() + 20*time.Second)

	// Node 1 is not the root for key (node 0 is) and is malicious: it
	// either forwarded to a closer colluder or claimed the root itself.
	if adv.Stats.LookupsMisrouted+adv.Stats.RootClaims == 0 {
		t.Fatalf("no misroute activity: %+v", adv.Stats)
	}
	if adv.Stats.RootClaims == 0 {
		t.Fatalf("capture never terminated in a root claim: %+v", adv.Stats)
	}
	if adv.Stats.ReportsForged == 0 {
		t.Fatalf("WantReport capture forged no report: %+v", adv.Stats)
	}
}

// TestAdversaryPoisonsAdvertisements checks the outbound rewrite: row
// replies leaving a malicious node advertise colluders instead of its
// real routing entries, while leaf-set membership stays honest.
func TestAdversaryPoisonsAdvertisements(t *testing.T) {
	nw, eps, nodes := buildTriangle(t)
	adv := nw.Adversary()
	adv.SetBehaviors(AdvPoison)
	adv.Mark(eps[1].Addr())
	adv.Mark(eps[2].Addr())

	reply := &pastry.RowReply{From: nodes[1].Ref(), Row: 0,
		Entries: []pastry.NodeRef{nodes[0].Ref()}}
	out := adv.rewriteOutbound(eps[1], nodes[0].Ref(), reply)
	rr, ok := out.(*pastry.RowReply)
	if !ok {
		t.Fatalf("rewrite changed type: %T", out)
	}
	if rr == reply {
		t.Fatal("poisoned reply must be a copy, not a mutation")
	}
	for _, e := range rr.Entries {
		if !adv.Marked(e.Addr) {
			t.Fatalf("poisoned entry %v is not a colluder", e)
		}
		if e.ID == nodes[1].Ref().ID {
			t.Fatal("poisoned entries must not include the sender itself")
		}
	}
	if adv.Stats.MessagesPoisoned != 1 {
		t.Fatalf("MessagesPoisoned = %d", adv.Stats.MessagesPoisoned)
	}

	// Leaf-set membership is not rewritten.
	probe := &pastry.LSProbe{From: nodes[1].Ref(), Leaves: []pastry.NodeRef{nodes[0].Ref()}}
	if out := adv.rewriteOutbound(eps[1], nodes[0].Ref(), probe); out != probe {
		t.Fatal("LSProbe membership must stay honest")
	}
	// Honest senders are never rewritten.
	if out := adv.rewriteOutbound(eps[0], nodes[1].Ref(), reply); out != reply {
		t.Fatal("honest sender's reply was rewritten")
	}
}

// appFunc adapts a delivery closure to pastry.App.
type appFunc func(lk *pastry.Lookup)

func (f appFunc) Deliver(lk *pastry.Lookup)                { f(lk) }
func (appFunc) Forward(*pastry.Lookup) bool                { return true }
func (appFunc) Direct(from pastry.NodeRef, payload []byte) {}
