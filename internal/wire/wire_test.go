package wire

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"mspastry/internal/id"
	"mspastry/internal/pastry"
)

func ref(n uint64) pastry.NodeRef {
	return pastry.NodeRef{ID: id.New(n, n), Addr: "node-1:4000"}
}

func hb(n uint64) pastry.Message {
	return &pastry.Heartbeat{From: ref(n), TrtHint: 30 * time.Second}
}

// testClock drives a coalescer without real time: After captures pending
// timers with their due times and fire advances the clock through them in
// due order (timer callbacks only act once the queue deadline arrives).
type testClock struct {
	now    time.Duration
	timers []testTimer
}

type testTimer struct {
	at time.Duration
	fn func()
}

func (c *testClock) Now() time.Duration { return c.now }

func (c *testClock) After(d time.Duration, fn func()) {
	c.timers = append(c.timers, testTimer{at: c.now + d, fn: fn})
}

func (c *testClock) fire() {
	for len(c.timers) > 0 {
		idx := 0
		for i, tm := range c.timers {
			if tm.at < c.timers[idx].at {
				idx = i
			}
		}
		tm := c.timers[idx]
		c.timers = append(c.timers[:idx], c.timers[idx+1:]...)
		if tm.at > c.now {
			c.now = tm.at
		}
		tm.fn()
	}
}

func newTestCoalescer(window time.Duration, maxPacket, maxSingle int) (*Coalescer, *testClock, *[]Flush) {
	clk := &testClock{}
	flushes := new([]Flush)
	co := NewCoalescer(Config{
		Window:    window,
		MaxPacket: maxPacket,
		MaxSingle: maxSingle,
		Now:       clk.Now,
		After:     clk.After,
		Emit: func(f Flush) {
			f.Frame = append([]byte(nil), f.Frame...) // Frame is pooled; keep a copy
			*flushes = append(*flushes, f)
		},
	})
	return co, clk, flushes
}

func TestSingleRoundTrip(t *testing.T) {
	m := hb(7)
	frame := EncodeSingle(m)
	if len(frame) != SingleSize(len(pastry.AppendMessage(nil, m))) {
		t.Fatalf("frame is %d bytes, want SingleSize", len(frame))
	}
	msgs, sizes, bad, err := DecodeAll(frame)
	if err != nil || bad != 0 || len(msgs) != 1 {
		t.Fatalf("DecodeAll: %d msgs, bad=%d, err=%v", len(msgs), bad, err)
	}
	got, ok := msgs[0].(*pastry.Heartbeat)
	if !ok || got.From != ref(7) || got.TrtHint != 30*time.Second {
		t.Fatalf("decoded %#v", msgs[0])
	}
	if SingleSize(sizes[0]) != len(frame) {
		t.Fatalf("size %d does not account for frame of %d bytes", sizes[0], len(frame))
	}
}

func TestBatchRoundTrip(t *testing.T) {
	co, clk, flushes := newTestCoalescer(time.Millisecond, 0, 0)
	var single int
	for i := uint64(1); i <= 3; i++ {
		n, err := co.Send("peer", ref(9), hb(i))
		if err != nil {
			t.Fatal(err)
		}
		single += SingleSize(n)
	}
	if len(*flushes) != 0 || co.Pending("peer") != 3 {
		t.Fatalf("flushed early: %d flushes, %d pending", len(*flushes), co.Pending("peer"))
	}
	clk.now = time.Millisecond
	clk.fire()
	if len(*flushes) != 1 {
		t.Fatalf("%d flushes after window", len(*flushes))
	}
	f := (*flushes)[0]
	if f.To != ref(9) || len(f.Msgs) != 3 || f.SingleBytes != single || f.Held != time.Millisecond {
		t.Fatalf("flush %+v (want 3 msgs, single=%d, held=1ms)", f, single)
	}
	if len(f.Frame) >= f.SingleBytes {
		t.Fatalf("batch of %d bytes saves nothing over %d single bytes", len(f.Frame), f.SingleBytes)
	}
	msgs, _, bad, err := DecodeAll(f.Frame)
	if err != nil || bad != 0 || len(msgs) != 3 {
		t.Fatalf("DecodeAll: %d msgs, bad=%d, err=%v", len(msgs), bad, err)
	}
	for i, m := range msgs {
		if m.(*pastry.Heartbeat).From != ref(uint64(i+1)) {
			t.Fatalf("message %d out of order: %#v", i, m)
		}
	}
}

// A batch that lands exactly on MaxPacket is allowed to stand; one byte
// more forces the pending batch out first.
func TestBatchAtMaxPacketBoundary(t *testing.T) {
	plen := len(pastry.AppendMessage(nil, hb(1)))
	exact := HeaderLen + 2*entrySize(plen)

	co, clk, flushes := newTestCoalescer(time.Millisecond, exact, 0)
	co.Send("p", ref(1), hb(1))
	co.Send("p", ref(1), hb(2))
	if len(*flushes) != 0 || co.Pending("p") != 2 {
		t.Fatalf("exact-fit batch flushed early (%d flushes, %d pending)", len(*flushes), co.Pending("p"))
	}
	clk.fire()
	if len(*flushes) != 1 || len((*flushes)[0].Frame) != exact {
		t.Fatalf("want one frame of exactly %d bytes, got %+v", exact, *flushes)
	}

	co, clk, flushes = newTestCoalescer(time.Millisecond, exact-1, 0)
	co.Send("p", ref(1), hb(1))
	co.Send("p", ref(1), hb(2)) // would exceed MaxPacket: first message flushes alone
	if len(*flushes) != 1 || len((*flushes)[0].Msgs) != 1 || co.Pending("p") != 1 {
		t.Fatalf("overflow did not flush the pending batch: %d flushes, %d pending",
			len(*flushes), co.Pending("p"))
	}
	clk.fire()
	if len(*flushes) != 2 || len((*flushes)[1].Msgs) != 1 {
		t.Fatalf("second message did not flush on the window: %+v", *flushes)
	}
}

func TestOversizeSingleRejected(t *testing.T) {
	co, clk, flushes := newTestCoalescer(time.Millisecond, 0, 48)
	big := &pastry.AppDirect{From: ref(1), Payload: bytes.Repeat([]byte("x"), 64)}
	if _, err := co.Send("p", ref(2), big); !errors.Is(err, ErrOversize) {
		t.Fatalf("oversize send: %v, want ErrOversize", err)
	}
	if len(*flushes) != 0 || co.Pending("p") != 0 {
		t.Fatal("oversize message was queued or emitted")
	}
	// A message that fits still goes through on the same queue.
	if _, err := co.Send("p", ref(2), &pastry.Ack{Xfer: 1, From: ref(1)}); err != nil {
		t.Fatal(err)
	}
	clk.fire()
	if len(*flushes) != 1 || len((*flushes)[0].Msgs) != 1 {
		t.Fatalf("%d flushes after the window", len(*flushes))
	}
}

// Window zero degenerates to one message per datagram: every send emits
// immediately, and the frame is byte-identical to EncodeSingle.
func TestWindowZeroDegeneratesToSingles(t *testing.T) {
	co, _, flushes := newTestCoalescer(0, 0, 0)
	for i := uint64(1); i <= 3; i++ {
		if _, err := co.Send("p", ref(9), hb(i)); err != nil {
			t.Fatal(err)
		}
	}
	if len(*flushes) != 3 {
		t.Fatalf("%d flushes, want one per message", len(*flushes))
	}
	for i, f := range *flushes {
		want := EncodeSingle(hb(uint64(i + 1)))
		if !bytes.Equal(f.Frame, want) {
			t.Fatalf("flush %d frame %x, want EncodeSingle %x", i, f.Frame, want)
		}
		if f.SingleBytes != len(f.Frame) || f.Held != 0 {
			t.Fatalf("flush %d: single=%d frame=%d held=%v", i, f.SingleBytes, len(f.Frame), f.Held)
		}
	}
}

// A latency-critical message flushes immediately and carries the pending
// batch for the same peer with it.
func TestUrgentPiggybacksPendingBatch(t *testing.T) {
	co, _, flushes := newTestCoalescer(time.Millisecond, 0, 0)
	co.Send("p", ref(9), hb(1))
	co.Send("p", ref(9), hb(2))
	urgent := &pastry.AppDirect{From: ref(1), Payload: []byte("now")}
	co.Send("p", ref(9), urgent)
	if len(*flushes) != 1 {
		t.Fatalf("%d flushes, want immediate flush on urgent send", len(*flushes))
	}
	f := (*flushes)[0]
	if len(f.Msgs) != 3 || f.Msgs[2] != pastry.Message(urgent) {
		t.Fatalf("urgent flush carried %d messages", len(f.Msgs))
	}
	if co.Pending("p") != 0 {
		t.Fatal("queue not drained")
	}
}

// Delay-tolerant messages alone wait the long window; a short-budget
// message joining the queue pulls the deadline in to its own window.
func TestLongWindowForDelayTolerant(t *testing.T) {
	newCo := func() (*Coalescer, *testClock, *[]Flush) {
		clk := &testClock{}
		flushes := new([]Flush)
		co := NewCoalescer(Config{
			Window:     10 * time.Millisecond,
			LongWindow: 100 * time.Millisecond,
			Now:        clk.Now,
			After:      clk.After,
			Emit: func(f Flush) {
				f.Frame = append([]byte(nil), f.Frame...)
				*flushes = append(*flushes, f)
			},
		})
		return co, clk, flushes
	}

	// A lone heartbeat waits the full long window.
	co, clk, flushes := newCo()
	co.Send("p", ref(9), hb(1))
	clk.fire()
	if len(*flushes) != 1 || (*flushes)[0].Held != 100*time.Millisecond {
		t.Fatalf("lone heartbeat: %+v, want one flush held 100ms", *flushes)
	}

	// An ack arriving mid-wait shrinks the deadline to its short window
	// and both leave together; the stale long timer finds an empty queue.
	co, clk, flushes = newCo()
	co.Send("p", ref(9), hb(1))
	clk.now = 50 * time.Millisecond
	co.Send("p", ref(9), &pastry.Ack{Xfer: 1, From: ref(1)})
	clk.fire()
	if len(*flushes) != 1 {
		t.Fatalf("%d flushes, want the shrunk deadline to flush once", len(*flushes))
	}
	f := (*flushes)[0]
	if len(f.Msgs) != 2 || f.Held != 60*time.Millisecond {
		t.Fatalf("flush %+v, want 2 msgs held 60ms (heartbeat from t=0, ack deadline t=60ms)", f)
	}

	// Classification: heartbeats and informational gossip tolerate delay,
	// probes and acks do not (their timers arm at protocol send).
	for _, m := range []pastry.Message{hb(1), &pastry.DistReport{}, &pastry.RowAnnounce{}} {
		if !DelayTolerant(m) {
			t.Fatalf("%T should be delay-tolerant", m)
		}
	}
	for _, m := range []pastry.Message{&pastry.Ack{}, &pastry.LSProbe{}, &pastry.RTProbe{}} {
		if DelayTolerant(m) {
			t.Fatalf("%T must not be delay-tolerant", m)
		}
	}
}

// A batch with one malformed inner message drops only that message.
func TestBatchDropsOnlyMalformedEntry(t *testing.T) {
	good1 := pastry.AppendMessage(nil, hb(1))
	junk := []byte{0xff, 0x00, 0x01} // no such message tag
	good2 := pastry.AppendMessage(nil, hb(2))

	frame := []byte{Version, frameBatch}
	for _, p := range [][]byte{good1, junk, good2} {
		frame = appendUvarint(frame, uint64(len(p)))
		frame = append(frame, p...)
	}
	msgs, sizes, bad, err := DecodeAll(frame)
	if bad != 1 || err == nil {
		t.Fatalf("bad=%d err=%v, want one dropped message with its error", bad, err)
	}
	if len(msgs) != 2 || len(sizes) != 2 {
		t.Fatalf("%d messages survived, want 2", len(msgs))
	}
	if msgs[0].(*pastry.Heartbeat).From != ref(1) || msgs[1].(*pastry.Heartbeat).From != ref(2) {
		t.Fatalf("surviving messages wrong: %#v", msgs)
	}
}

func TestStructuralFrameErrors(t *testing.T) {
	good := pastry.AppendMessage(nil, hb(1))
	cases := map[string][]byte{
		"empty":            {},
		"short":            {Version},
		"bad version":      append([]byte{Version + 1, frameSingle}, good...),
		"unknown kind":     append([]byte{Version, 9}, good...),
		"empty single":     {Version, frameSingle},
		"empty batch":      {Version, frameBatch},
		"zero-len entry":   {Version, frameBatch, 0x00},
		"entry overrun":    {Version, frameBatch, 0x7f, 0x01},
		"truncated prefix": {Version, frameBatch, 0x80},
	}
	for name, frame := range cases {
		if _, err := Payloads(frame); err == nil {
			t.Errorf("%s: no error for %x", name, frame)
		}
		if msgs, _, _, err := DecodeAll(frame); err == nil || msgs != nil {
			t.Errorf("%s: DecodeAll returned %d msgs, err=%v", name, len(msgs), err)
		}
	}
}

func TestDiscardAllAndDrop(t *testing.T) {
	co, clk, flushes := newTestCoalescer(time.Millisecond, 0, 0)
	co.Send("a", ref(1), hb(1))
	co.Send("b", ref(2), hb(2))
	co.DiscardAll()
	clk.fire()
	if len(*flushes) != 0 {
		t.Fatalf("discarded messages were emitted: %+v", *flushes)
	}
	if co.Peers() != 2 {
		t.Fatalf("DiscardAll removed queues: %d peers", co.Peers())
	}
	co.Send("a", ref(1), hb(3))
	co.Drop("a")
	co.Drop("never-seen") // no-op
	clk.fire()
	if len(*flushes) != 0 || co.Peers() != 1 || co.Pending("a") != 0 {
		t.Fatalf("Drop left state behind: %d flushes, %d peers", len(*flushes), co.Peers())
	}
}

func TestFlushAll(t *testing.T) {
	co, _, flushes := newTestCoalescer(time.Minute, 0, 0)
	co.Send("a", ref(1), hb(1))
	co.Send("b", ref(2), hb(2))
	co.FlushAll()
	if len(*flushes) != 2 {
		t.Fatalf("%d flushes, want both queues drained", len(*flushes))
	}
	co.FlushAll() // empty queues flush nothing
	if len(*flushes) != 2 {
		t.Fatal("empty FlushAll emitted frames")
	}
}

func TestControlClassification(t *testing.T) {
	if Control(pastry.CatLookup) || Control(pastry.CatApp) {
		t.Fatal("lookups and app traffic are not control")
	}
	for _, cat := range []pastry.Category{
		pastry.CatJoin, pastry.CatDistance, pastry.CatLeafSet,
		pastry.CatRTProbe, pastry.CatAck,
	} {
		if !Control(cat) {
			t.Fatalf("%v should be control", cat)
		}
	}
	if Coalescable(&pastry.Envelope{}) || Coalescable(&pastry.AppDirect{}) {
		t.Fatal("latency-critical messages must not wait for the window")
	}
	if !Coalescable(hb(1)) || !Coalescable(&pastry.Ack{}) {
		t.Fatal("heartbeats and acks should coalesce")
	}
}

func BenchmarkEncodeSingle(b *testing.B) {
	m := hb(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := GetBuf()
		*buf = AppendSingle(*buf, pastry.AppendMessage((*buf)[:0], m))
		PutBuf(buf)
	}
}

func BenchmarkCoalescerSendWindowZero(b *testing.B) {
	co, _, _ := newTestCoalescer(0, 0, 0)
	co.cfg.Emit = func(Flush) {}
	m := hb(1)
	to := ref(9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		co.Send("p", to, m)
	}
}

func BenchmarkCoalescerBatch8(b *testing.B) {
	clk := &testClock{}
	co := NewCoalescer(Config{
		Window: time.Millisecond,
		Now:    clk.Now,
		After:  clk.After,
		Emit:   func(Flush) {},
	})
	m := hb(1)
	to := ref(9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		co.Send("p", to, m)
		if (i+1)%8 == 0 {
			clk.fire()
		}
	}
}

func BenchmarkDecodeAllBatch8(b *testing.B) {
	co, clk, flushes := newTestCoalescer(time.Millisecond, 0, 0)
	for i := uint64(0); i < 8; i++ {
		co.Send("p", ref(9), hb(i+1))
	}
	clk.fire()
	frame := (*flushes)[0].Frame
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := DecodeAll(frame); err != nil {
			b.Fatal(err)
		}
	}
}
