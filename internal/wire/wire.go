// Package wire is the unified encoding layer between the protocol code
// and both transports (the simulator's netmodel and the real UDP
// transport): a length-prefixed, version-tagged frame format with a batch
// frame that packs several control messages bound for the same peer into
// one datagram, pooled encode buffers, and a per-peer coalescer that
// implements the batching policy. Both transports charging byte counts
// from the same encoders is what makes sim-reported overhead and live
// /metrics overhead directly comparable.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"mspastry/internal/pastry"
)

// Version is the wire-format version carried in every frame header. A
// node drops frames with a version it does not understand, which is the
// hook a future rolling upgrade needs: new binaries can speak old frames
// to old peers and flip the version only once the deployment has turned
// over.
const Version = 1

// HeaderLen is the fixed frame header: version byte + frame kind byte.
const HeaderLen = 2

// Frame kinds. A Single frame carries exactly one message as its raw
// payload (the datagram boundary delimits it). A Batch frame carries one
// or more length-prefixed messages.
const (
	frameSingle byte = 1
	frameBatch  byte = 2
)

// DefaultMaxPacket bounds assembled frames: the UDP maximum, matching the
// live transport's datagram limit so sim and live batches cut over at the
// same size.
const DefaultMaxPacket = 64 * 1024

// ErrOversize reports a single message whose frame exceeds the transport's
// maximum packet size; senders surface it as a send error rather than
// truncating.
var ErrOversize = errors.New("wire: message exceeds max packet size")

// bufPool recycles frame-encoding buffers across sends.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 2048)
		return &b
	},
}

// GetBuf borrows a zero-length encode buffer from the pool.
func GetBuf() *[]byte {
	return bufPool.Get().(*[]byte)
}

// PutBuf returns a buffer to the pool.
func PutBuf(b *[]byte) {
	*b = (*b)[:0]
	bufPool.Put(b)
}

// SingleSize is the frame size of one message sent alone.
func SingleSize(payloadLen int) int { return HeaderLen + payloadLen }

// entrySize is the cost of one message inside a batch frame.
func entrySize(payloadLen int) int {
	return uvarintLen(uint64(payloadLen)) + payloadLen
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// AppendSingle wraps payload in a single-message frame.
func AppendSingle(dst, payload []byte) []byte {
	dst = append(dst, Version, frameSingle)
	return append(dst, payload...)
}

// EncodeSingle is a convenience for tests and size accounting: one message
// as it would travel alone on the wire.
func EncodeSingle(m pastry.Message) []byte {
	return AppendSingle(make([]byte, 0, 256), pastry.AppendMessage(nil, m))
}

// Payloads splits a frame into its message payloads without copying (the
// returned slices alias frame). Structural errors — empty or truncated
// frames, unknown versions or kinds, bad length prefixes — fail the whole
// frame; whether an individual payload parses as a message is the caller's
// (or DecodeAll's) concern.
func Payloads(frame []byte) ([][]byte, error) {
	if len(frame) < HeaderLen {
		return nil, fmt.Errorf("wire: frame of %d bytes is shorter than the header", len(frame))
	}
	if frame[0] != Version {
		return nil, fmt.Errorf("wire: unsupported frame version %d (want %d)", frame[0], Version)
	}
	body := frame[HeaderLen:]
	switch frame[1] {
	case frameSingle:
		if len(body) == 0 {
			return nil, errors.New("wire: empty single frame")
		}
		return [][]byte{body}, nil
	case frameBatch:
		var out [][]byte
		for len(body) > 0 {
			plen, n := binary.Uvarint(body)
			if n <= 0 {
				return nil, errors.New("wire: bad batch entry length")
			}
			body = body[n:]
			if plen == 0 || plen > uint64(len(body)) {
				return nil, fmt.Errorf("wire: batch entry of %d bytes overruns frame", plen)
			}
			out = append(out, body[:plen])
			body = body[plen:]
		}
		if len(out) == 0 {
			return nil, errors.New("wire: empty batch frame")
		}
		return out, nil
	default:
		return nil, fmt.Errorf("wire: unknown frame kind %d", frame[1])
	}
}

// DecodeAll parses every message in a frame. A malformed inner message
// drops only that message: decoding continues with the rest, the bad count
// reports how many were dropped and firstErr carries the first failure.
// Structural frame errors return a nil message slice and the error.
// Returned messages own their memory; frame may be reused afterwards.
func DecodeAll(frame []byte) (msgs []pastry.Message, sizes []int, bad int, firstErr error) {
	payloads, err := Payloads(frame)
	if err != nil {
		return nil, nil, 0, err
	}
	msgs = make([]pastry.Message, 0, len(payloads))
	sizes = make([]int, 0, len(payloads))
	for _, p := range payloads {
		m, err := pastry.DecodeMessage(p)
		if err != nil {
			bad++
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		msgs = append(msgs, m)
		sizes = append(sizes, len(p))
	}
	return msgs, sizes, bad, firstErr
}

// Coalescable reports whether a message may wait in a batch for the
// coalescing window. Routed envelopes, join replies, nearest-neighbour
// state exchanges and direct application traffic are latency-critical and
// flush immediately (carrying any batch already pending for the peer with
// them); pure control messages — acks, heartbeats, leaf-set, routing-table
// and distance probes and replies, row and repair maintenance — may wait.
func Coalescable(m pastry.Message) bool {
	switch m.(type) {
	case *pastry.Envelope, *pastry.JoinReply, *pastry.NNStateRequest,
		*pastry.NNStateReply, *pastry.AppDirect:
		return false
	default:
		return true
	}
}

// DelayTolerant reports whether a coalescable message may wait the long
// coalescing window rather than the short one. These are messages with no
// timer waiting on them and deadlines measured in seconds: heartbeats (the
// receiver suspects its neighbour only after Tls+To without one), distance
// reports (informational — the symmetric-probing result the peer would
// otherwise have measured itself) and row announcements (routing-table
// gossip). Probes and their replies never qualify: probe timers arm at
// protocol send time, so wire delay eats straight into the To budget.
func DelayTolerant(m pastry.Message) bool {
	switch m.(type) {
	case *pastry.Heartbeat, *pastry.DistReport, *pastry.RowAnnounce:
		return true
	default:
		return false
	}
}

// Control reports whether a category counts as control traffic (everything
// except lookups and direct application traffic, as in the paper's §5.2).
func Control(cat pastry.Category) bool {
	return cat != pastry.CatLookup && cat != pastry.CatApp
}
