package wire

import (
	"bytes"
	"testing"

	"mspastry/internal/pastry"
)

// FuzzFrameRoundTrip asserts the frame layer is total (arbitrary bytes
// either split into payloads or return an error, never panic) and
// canonical: payloads extracted from an accepted frame re-frame into a
// frame that yields the same payloads.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(EncodeSingle(hb(1)))
	batch := []byte{Version, frameBatch}
	for _, m := range []pastry.Message{hb(1), &pastry.Ack{Xfer: 9, From: ref(2)}} {
		p := pastry.AppendMessage(nil, m)
		batch = appendUvarint(batch, uint64(len(p)))
		batch = append(batch, p...)
	}
	f.Add(batch)
	f.Add([]byte{})
	f.Add([]byte{Version, frameBatch, 0x80})
	f.Fuzz(func(t *testing.T, data []byte) {
		payloads, err := Payloads(data)
		if err != nil {
			return
		}
		if len(payloads) == 0 {
			t.Fatalf("accepted frame %x with no payloads", data)
		}
		// Re-frame what we extracted and extract again: the payload
		// sequence must survive (uvarint prefixes admit non-minimal
		// encodings, so the frame image itself need not be identical).
		reframed := []byte{Version, frameBatch}
		for _, p := range payloads {
			reframed = appendUvarint(reframed, uint64(len(p)))
			reframed = append(reframed, p...)
		}
		back, err := Payloads(reframed)
		if err != nil || len(back) != len(payloads) {
			t.Fatalf("re-framed %x: %d payloads, err=%v", data, len(back), err)
		}
		for i := range back {
			if !bytes.Equal(back[i], payloads[i]) {
				t.Fatalf("payload %d changed across re-framing of %x", i, data)
			}
		}
		// A lone payload must also survive the single-frame path.
		single := AppendSingle(nil, payloads[0])
		back, err = Payloads(single)
		if err != nil || len(back) != 1 || !bytes.Equal(back[0], payloads[0]) {
			t.Fatalf("single re-framing of %x failed: %v", payloads[0], err)
		}
		// DecodeAll on the original frame must never panic either.
		DecodeAll(data)
	})
}
