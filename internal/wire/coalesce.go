package wire

import (
	"time"

	"mspastry/internal/pastry"
)

// Flush is one assembled frame handed to Config.Emit. Frame is pooled
// memory valid only for the duration of the Emit call (write or measure it
// synchronously; copy it to keep it). Msgs and Sizes are freshly allocated
// and pass to the receiver, which the simulator relies on to deliver the
// decoded messages later without re-parsing the frame.
type Flush struct {
	To    pastry.NodeRef
	Frame []byte           // encoded frame as it travels on the wire
	Msgs  []pastry.Message // the messages inside, in send order
	Sizes []int            // encoded payload bytes per message

	// SingleBytes is what the same messages would have cost as individual
	// single frames; SingleBytes - len(Frame) is the coalescing saving
	// (negative for a batch of one is impossible: a lone message always
	// flushes as a single frame).
	SingleBytes int

	// Held is how long the oldest message in the frame waited for the
	// coalescing window.
	Held time.Duration
}

// Config parameterises a Coalescer. The Coalescer is not safe for
// concurrent use: both transports confine it to their event loop, and
// After must run its callback on that same loop.
type Config struct {
	// Window is how long a coalescable control message may wait for
	// company. Zero disables coalescing: every message flushes
	// synchronously as its own single frame, reproducing the pre-batching
	// one-message-per-datagram behaviour exactly.
	Window time.Duration

	// LongWindow, when greater than Window, is the wait budget for
	// DelayTolerant messages (heartbeats and informational gossip, whose
	// protocol deadlines are measured in seconds). A queue holding only
	// delay-tolerant traffic waits up to LongWindow; the moment a
	// short-budget message joins, the queue's deadline shrinks to that
	// message's Window. Zero or <= Window means delay-tolerant messages
	// get no extra budget. It must stay below the probe timeout To, or
	// held heartbeats arrive after the receiver's Tls+To suspicion
	// deadline and trigger spurious repair.
	LongWindow time.Duration

	// MaxPacket bounds assembled frames; a message that would push the
	// pending batch past it forces a flush first. Zero means
	// DefaultMaxPacket.
	MaxPacket int

	// MaxSingle, when positive, rejects any message whose single-frame
	// size exceeds it with ErrOversize before queueing. The UDP transport
	// sets it to the datagram limit; the simulator leaves it unbounded.
	MaxSingle int

	// Now is the owner's monotonic clock (pastry.Env time); After runs fn
	// on the owner's event loop after d; Emit receives assembled frames.
	Now   func() time.Duration
	After func(d time.Duration, fn func())
	Emit  func(f Flush)
}

// Coalescer batches control messages per destination peer. Latency-
// critical messages flush immediately and carry any pending batch for the
// same peer with them (piggybacking); coalescable ones wait up to Window.
type Coalescer struct {
	cfg    Config
	queues map[string]*peerQueue
}

type peerQueue struct {
	to   pastry.NodeRef
	msgs []pastry.Message
	// buf is the batch frame under construction: two reserved header
	// bytes, then one uvarint-length-prefixed payload per message. For a
	// batch of one the payload is re-framed as a single frame in place.
	buf       *[]byte
	sizes     []int
	firstPlen int // uvarint prefix length of the first entry
	single    int // sum of SingleSize over queued messages
	oldest    time.Duration
	// deadline is when the pending batch must flush: the earliest
	// (enqueue time + wait budget) over the queued messages. Each message
	// that starts a queue or shrinks the deadline arms a timer for its own
	// budget; a firing timer flushes only if the queue's deadline has
	// actually arrived, so stale timers from earlier fills are harmless.
	deadline time.Duration
}

// NewCoalescer builds a coalescer; Now, After, and Emit are required.
func NewCoalescer(cfg Config) *Coalescer {
	if cfg.MaxPacket <= 0 {
		cfg.MaxPacket = DefaultMaxPacket
	}
	return &Coalescer{cfg: cfg, queues: make(map[string]*peerQueue)}
}

// Send encodes m for the peer identified by key and either queues it for
// the coalescing window or flushes immediately. It returns the encoded
// payload size (what the message costs before framing) so callers can do
// per-message accounting, or ErrOversize if the message alone cannot fit a
// frame.
func (c *Coalescer) Send(key string, to pastry.NodeRef, m pastry.Message) (int, error) {
	scratch := GetBuf()
	payload := pastry.AppendMessage(*scratch, m)
	*scratch = payload
	defer PutBuf(scratch)

	plen := len(payload)
	if c.cfg.MaxSingle > 0 && SingleSize(plen) > c.cfg.MaxSingle {
		return plen, ErrOversize
	}

	q := c.queues[key]
	if q == nil {
		q = &peerQueue{buf: GetBuf()}
		c.queues[key] = q
	}
	// A message that will not fit alongside the pending batch flushes the
	// batch first; the exact-MaxPacket boundary is allowed to stand. buf
	// already includes the frame header, so len(buf) is the frame size.
	if len(q.msgs) > 0 && len(*q.buf)+entrySize(plen) > c.cfg.MaxPacket {
		c.flush(q)
	}
	if len(q.msgs) == 0 {
		*q.buf = append((*q.buf)[:0], Version, frameBatch)
		q.to = to
		q.sizes = q.sizes[:0]
		q.single = 0
		q.oldest = c.cfg.Now()
		q.firstPlen = uvarintLen(uint64(plen))
	}
	*q.buf = appendUvarint(*q.buf, uint64(plen))
	*q.buf = append(*q.buf, payload...)
	q.msgs = append(q.msgs, m)
	q.sizes = append(q.sizes, plen)
	q.single += SingleSize(plen)

	if c.cfg.Window <= 0 || !Coalescable(m) {
		c.flush(q)
		return plen, nil
	}
	budget := c.cfg.Window
	if c.cfg.LongWindow > budget && DelayTolerant(m) {
		budget = c.cfg.LongWindow
	}
	deadline := c.cfg.Now() + budget
	if len(q.msgs) == 1 || deadline < q.deadline {
		q.deadline = deadline
		c.cfg.After(budget, func() {
			if len(q.msgs) > 0 && c.cfg.Now() >= q.deadline {
				c.flush(q)
			}
		})
	}
	return plen, nil
}

func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// flush assembles the queue's frame and emits it. A batch of one is
// re-framed in place as a single frame so lone messages never pay the
// batch length prefix.
func (c *Coalescer) flush(q *peerQueue) {
	n := len(q.msgs)
	if n == 0 {
		return
	}
	var frame []byte
	if n == 1 {
		// Overwrite the last two bytes of the unused prefix region with a
		// single-frame header: payload starts at HeaderLen+firstPlen, and
		// firstPlen >= 1, so the header fits at firstPlen-1..firstPlen.
		b := *q.buf
		b[q.firstPlen] = Version
		b[q.firstPlen+1] = frameSingle
		frame = b[q.firstPlen:]
	} else {
		frame = *q.buf
	}
	f := Flush{
		To:          q.to,
		Frame:       frame,
		Msgs:        q.msgs,
		Sizes:       q.sizes,
		SingleBytes: q.single,
		Held:        c.cfg.Now() - q.oldest,
	}
	// Reset before Emit: the msgs/sizes slices pass to the receiver, and a
	// re-entrant Send from inside Emit must see an empty queue.
	q.msgs = nil
	q.sizes = nil
	q.single = 0
	c.cfg.Emit(f)
	*q.buf = (*q.buf)[:0]
}

// FlushAll drains every pending queue, emitting each as a frame. Call it
// on shutdown so delayed acks are not silently lost.
func (c *Coalescer) FlushAll() {
	for _, q := range c.queues {
		c.flush(q)
	}
}

// DiscardAll empties every queue without emitting anything; queues and
// their buffers remain usable. The simulator calls it when an endpoint
// crashes — a dead node sends nothing, not even its pending acks.
func (c *Coalescer) DiscardAll() {
	for _, q := range c.queues {
		q.msgs = q.msgs[:0]
		q.sizes = q.sizes[:0]
		q.single = 0
		*q.buf = (*q.buf)[:0]
	}
}

// Evict releases the peer's queue for good, flushing any held messages
// first: eviction is a lifecycle decision about the *peer*, not a crash
// of the *sender*, so delay-tolerant frames already accepted for
// transmission (heartbeats, informational gossip) still go out on the
// wire instead of silently vanishing with the queue. Transports call it
// from the peer registry's eviction broadcast.
func (c *Coalescer) Evict(key string) {
	q := c.queues[key]
	if q == nil {
		return
	}
	c.flush(q)
	c.Drop(key)
}

// Drop discards the peer's queue, including any pending messages, and
// releases its buffer. Use Evict for lifecycle eviction — Drop loses
// held messages and is only right when they must not be sent.
func (c *Coalescer) Drop(key string) {
	q := c.queues[key]
	if q == nil {
		return
	}
	delete(c.queues, key)
	q.msgs = nil
	q.sizes = nil
	PutBuf(q.buf)
	q.buf = nil
}

// Pending reports how many messages are queued for the peer (tests).
func (c *Coalescer) Pending(key string) int {
	if q := c.queues[key]; q != nil {
		return len(q.msgs)
	}
	return 0
}

// Peers reports how many peer queues exist (tests and cache-bound checks).
func (c *Coalescer) Peers() int { return len(c.queues) }
