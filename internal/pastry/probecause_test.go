package pastry

import (
	"math/rand"
	"testing"
	"time"

	"mspastry/internal/id"
)

// TestChurnEventProbeCost bounds the leaf-set maintenance cost of churn:
// one failure or join must not trigger more than ~l^2 leaf-set messages
// (the candidate-probe memory prevents nomination storms), and failure
// announcements must happen exactly once per failure.
func TestChurnEventProbeCost(t *testing.T) {
	causes := map[string]int{}
	probeCauseHook = func(cause string) { causes[cause]++ }
	defer func() { probeCauseHook = nil }()

	net := newTestNet(t, 99)
	cfg := testConfig()
	cfg.L = 32
	nodes := buildOverlay(t, net, 100, cfg)
	net.run(5 * time.Minute)
	for k := range causes {
		delete(causes, k)
	}
	before := net.sent[CatLeafSet]

	rng := rand.New(rand.NewSource(5))
	alive := append([]*Node(nil), nodes...)
	const churnEvents = 40 // 20 failures + 20 joins
	for round := 0; round < churnEvents/2; round++ {
		v := alive[rng.Intn(len(alive))]
		v.Fail()
		for i, n := range alive {
			if n == v {
				alive = append(alive[:i], alive[i+1:]...)
				break
			}
		}
		j := net.addNode(id.Random(rng), cfg, nil)
		j.SetSeedSource(func() (NodeRef, bool) { return alive[rng.Intn(len(alive))].Ref(), true })
		j.Join(alive[rng.Intn(len(alive))].Ref())
		alive = append(alive, j)
		net.run(2 * time.Minute)
	}

	perEvent := (net.sent[CatLeafSet] - before) / churnEvents
	t.Logf("leafset msgs per churn event: %d; causes: %v", perEvent, causes)
	if perEvent > cfg.L*cfg.L {
		t.Fatalf("leaf-set maintenance cost %d msgs/event exceeds l^2=%d", perEvent, cfg.L*cfg.L)
	}
	// Exactly one announcement wave per failure: the wave probes ~l
	// members, so the announce cause count stays near l per failure.
	if got := causes["announce"]; got > churnEvents/2*cfg.L*2 {
		t.Fatalf("announcement cascade detected: %d announce probes for %d failures", got, churnEvents/2)
	}
	for _, n := range alive {
		if !n.Active() {
			t.Fatal("node inactive after churn")
		}
	}
}
