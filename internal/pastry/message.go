// Package pastry implements MSPastry: a Pastry structured overlay with the
// dependability and performance techniques of Castro, Costa and Rowstron,
// "Performance and dependability of structured peer-to-peer overlays"
// (DSN 2004): consistent routing via leaf-set probing, reliable routing via
// per-hop acks and active probing, self-tuned probing periods, structured
// failure detection, probe suppression, and low-overhead proximity
// neighbour selection.
//
// A Node is driven entirely by an Env (clock, timers, message transport),
// so the same protocol code runs in the discrete-event simulator and over
// real UDP sockets, mirroring the paper's "the code that runs in the
// simulator and in the real deployment is the same" property.
package pastry

import (
	"fmt"
	"time"

	"mspastry/internal/id"
)

// NodeRef identifies a node: its ring identifier plus a transport address.
type NodeRef struct {
	ID   id.ID
	Addr string
}

// IsZero reports whether the reference is unset.
func (r NodeRef) IsZero() bool { return r.ID.IsZero() && r.Addr == "" }

func (r NodeRef) String() string { return fmt.Sprintf("%s@%s", r.ID, r.Addr) }

// Category classifies control traffic the way the paper's Figure 4 does.
type Category int

const (
	// CatLookup is application lookup traffic (not control traffic).
	CatLookup Category = iota + 1
	// CatJoin covers join requests/replies and nearest-neighbour queries.
	CatJoin
	// CatDistance covers PNS distance probes, replies and symmetric reports.
	CatDistance
	// CatLeafSet covers leaf-set heartbeats and probes.
	CatLeafSet
	// CatRTProbe covers routing-table liveness probes and maintenance.
	CatRTProbe
	// CatAck covers per-hop acks and retransmissions.
	CatAck
	// CatApp is direct application traffic (for example Squirrel
	// responses); like lookups it is not control traffic.
	CatApp
	// CatSecure covers the secure-routing defenses: root completion
	// reports for the routing failure test. Control traffic, so the
	// defenses' byte overhead shows up in the paper-style accounting.
	CatSecure
)

// CategoryCount is the number of categories plus one (categories are
// 1-based), sized for dense per-category arrays.
const CategoryCount = int(CatSecure) + 1

func (c Category) String() string {
	switch c {
	case CatLookup:
		return "lookup"
	case CatJoin:
		return "join"
	case CatDistance:
		return "distance"
	case CatLeafSet:
		return "leafset"
	case CatRTProbe:
		return "rtprobe"
	case CatAck:
		return "ack"
	case CatApp:
		return "app"
	case CatSecure:
		return "secure"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Message is anything a node can send to another node.
type Message interface {
	// Category classifies the message for control-traffic accounting.
	Category() Category
}

// routed messages travel hop by hop through the overlay inside an Envelope.

// Lookup is an application lookup routed to the root of Key.
type Lookup struct {
	Key    id.ID
	Seq    uint64
	Origin NodeRef
	// TraceID identifies the lookup end to end for hop tracing: it is
	// carried across hops so every forwarding node's trace events can be
	// reassembled into the full route path. Derived deterministically
	// from (origin, seq, issue time), so tracing never perturbs the
	// seeded random streams of a simulation.
	TraceID uint64
	// Issued is the origin's clock when the lookup entered the overlay,
	// used by the metrics pipeline to compute delay.
	Issued time.Duration
	Hops   int
	// NoAck disables per-hop acknowledgements for this message
	// (applications that do not need reliable routing set it).
	NoAck bool
	// WantReport asks the root to report its leaf set back to Origin on
	// delivery, so the origin can run the secure-routing failure test.
	WantReport bool
	// Payload is opaque application data (used by Squirrel and Scribe).
	Payload []byte
}

// Category implements Message.
func (*Lookup) Category() Category { return CatLookup }

// JoinRequest is routed towards the joining node's identifier. Nodes along
// the route append their routing-table rows.
type JoinRequest struct {
	Joiner NodeRef
	Rows   []NodeRef
	Hops   int
}

// Category implements Message.
func (*JoinRequest) Category() Category { return CatJoin }

// JoinReply carries the accumulated routing rows and the root's leaf set
// back to the joining node.
type JoinReply struct {
	Rows   []NodeRef
	Leaves []NodeRef
}

// Category implements Message.
func (*JoinReply) Category() Category { return CatJoin }

// Envelope is one overlay hop of a routed message, carrying the per-hop
// acknowledgement transfer identifier.
type Envelope struct {
	Xfer    uint64
	NeedAck bool
	// Retx marks retransmissions so they are accounted as control traffic.
	Retx    bool
	From    NodeRef
	Lookup  *Lookup
	Join    *JoinRequest
	TrtHint time.Duration
}

// Category implements Message.
func (e *Envelope) Category() Category {
	switch {
	case e.Retx:
		return CatAck
	case e.Lookup != nil:
		return CatLookup
	default:
		return CatJoin
	}
}

// Ack acknowledges receipt of one Envelope hop.
type Ack struct {
	Xfer    uint64
	From    NodeRef
	TrtHint time.Duration
}

// Category implements Message.
func (*Ack) Category() Category { return CatAck }

// LSProbe is a leaf-set probe: it carries the sender's leaf set and failed
// set (Figure 2 of the paper).
type LSProbe struct {
	From   NodeRef
	Leaves []NodeRef
	Failed []NodeRef
	// NeedNear asks the responder to include its nearest known nodes to
	// the sender (set while the sender's leaf set is incomplete, i.e.
	// during joins and repair).
	NeedNear bool
	TrtHint  time.Duration
}

// Category implements Message.
func (*LSProbe) Category() Category { return CatLeafSet }

// LSProbeReply answers an LSProbe with the same information, plus Near: the
// responder's closest known nodes to the requester, which implements the
// paper's generalised leaf-set repair (repair converges in O(log N) rounds
// even after massive correlated failures).
type LSProbeReply struct {
	From    NodeRef
	Leaves  []NodeRef
	Failed  []NodeRef
	Near    []NodeRef
	TrtHint time.Duration
}

// Category implements Message.
func (*LSProbeReply) Category() Category { return CatLeafSet }

// Heartbeat is the periodic liveness message each node sends to its left
// ring neighbour (paper §4.1, "exploiting overlay structure").
type Heartbeat struct {
	From    NodeRef
	TrtHint time.Duration
}

// Category implements Message.
func (*Heartbeat) Category() Category { return CatLeafSet }

// RTProbe is a liveness probe for a routing-table entry.
type RTProbe struct {
	From    NodeRef
	TrtHint time.Duration
}

// Category implements Message.
func (*RTProbe) Category() Category { return CatRTProbe }

// RTProbeReply answers an RTProbe.
type RTProbeReply struct {
	From    NodeRef
	TrtHint time.Duration
}

// Category implements Message.
func (*RTProbeReply) Category() Category { return CatRTProbe }

// DistProbe measures round-trip delay for proximity neighbour selection.
type DistProbe struct {
	From NodeRef
	Seq  uint64
}

// Category implements Message.
func (*DistProbe) Category() Category { return CatDistance }

// DistProbeReply echoes a DistProbe.
type DistProbeReply struct {
	From NodeRef
	Seq  uint64
}

// Category implements Message.
func (*DistProbeReply) Category() Category { return CatDistance }

// DistReport implements symmetric distance probing: after measuring the
// round-trip delay to a peer, a node reports the value so the peer can
// consider the sender for its own routing table without probing again.
type DistReport struct {
	From NodeRef
	RTT  time.Duration
}

// Category implements Message.
func (*DistReport) Category() Category { return CatDistance }

// RowRequest asks a peer for routing-table row Row (periodic routing-table
// maintenance, every 20 minutes in the paper).
type RowRequest struct {
	From NodeRef
	Row  int
}

// Category implements Message.
func (*RowRequest) Category() Category { return CatRTProbe }

// RowReply returns the entries of the requested row.
type RowReply struct {
	From    NodeRef
	Row     int
	Entries []NodeRef
}

// Category implements Message.
func (*RowReply) Category() Category { return CatRTProbe }

// RowAnnounce is the constrained-gossip announcement a freshly joined node
// sends to every member of each of its routing-table rows.
type RowAnnounce struct {
	From    NodeRef
	Row     int
	Entries []NodeRef
}

// Category implements Message.
func (*RowAnnounce) Category() Category { return CatJoin }

// RepairRequest implements passive routing-table repair: when a routing
// slot is found empty while routing, the next-hop node is asked for any
// entry it has for that slot.
type RepairRequest struct {
	From     NodeRef
	Row, Col int
}

// Category implements Message.
func (*RepairRequest) Category() Category { return CatRTProbe }

// RepairReply answers a RepairRequest with candidate entries.
type RepairReply struct {
	From     NodeRef
	Row, Col int
	Entries  []NodeRef
}

// Category implements Message.
func (*RepairReply) Category() Category { return CatRTProbe }

// NNStateRequest asks a node for its leaf set and routing-table entries;
// the nearest-neighbour algorithm uses it while locating a nearby node to
// seed the join.
type NNStateRequest struct {
	From NodeRef
}

// Category implements Message.
func (*NNStateRequest) Category() Category { return CatJoin }

// AppDirect is a point-to-point application message (not routed through
// the overlay): Squirrel responses, Scribe multicast dissemination.
type AppDirect struct {
	From    NodeRef
	Payload []byte
}

// Category implements Message.
func (*AppDirect) Category() Category { return CatApp }

// RootReport is the root's completion report for a secure lookup: sent
// directly to the lookup's origin after delivery, carrying the
// responder's leaf set so the origin can compare the reported id-space
// density against its own and flag implausible (misrouted) results.
type RootReport struct {
	From NodeRef
	// Seq echoes the lookup's origin-local sequence number.
	Seq uint64
	// Key echoes the looked-up key, guarding against stale sequence reuse.
	Key id.ID
	// Leaves is the responder's leaf set at delivery time.
	Leaves  []NodeRef
	TrtHint time.Duration
}

// Category implements Message.
func (*RootReport) Category() Category { return CatSecure }

// NNStateReply returns the node's leaf set and routing-table entries.
type NNStateReply struct {
	From    NodeRef
	Leaves  []NodeRef
	Entries []NodeRef
}

// Category implements Message.
func (*NNStateReply) Category() Category { return CatJoin }
