package pastry

import (
	"math/rand"
	"testing"
	"time"

	"mspastry/internal/id"
)

func TestRoutingTableSlot(t *testing.T) {
	self := id.New(0x0123456789abcdef, 0)
	rt := NewRoutingTable(self, 4)
	// A node differing in the first digit lands in row 0, col = its first
	// digit.
	other := id.New(0x5123456789abcdef, 0)
	row, col, ok := rt.Slot(other)
	if !ok || row != 0 || col != 5 {
		t.Fatalf("slot = (%d,%d,%v), want (0,5,true)", row, col, ok)
	}
	// Same first 3 digits, differs at digit 3 (value 0xf).
	o2 := id.New(0x012f456789abcdef, 0)
	row, col, ok = rt.Slot(o2)
	if !ok || row != 3 || col != 0xf {
		t.Fatalf("slot = (%d,%d,%v), want (3,15,true)", row, col, ok)
	}
	if _, _, ok := rt.Slot(self); ok {
		t.Fatal("self must not have a slot")
	}
}

func TestRoutingTableAddOnlyFillsEmpty(t *testing.T) {
	self := id.New(0, 0)
	rt := NewRoutingTable(self, 4)
	a := refID(id.New(0x1000000000000000, 1))
	b := refID(id.New(0x1000000000000000, 2)) // same slot as a (row 0, col 1)
	if !rt.Add(a) {
		t.Fatal("add into empty slot failed")
	}
	if rt.Add(b) {
		t.Fatal("unmeasured add must not evict an occupant")
	}
	if !rt.Contains(a.ID) || rt.Contains(b.ID) {
		t.Fatal("wrong occupant after adds")
	}
	if rt.Count() != 1 {
		t.Fatalf("count = %d, want 1", rt.Count())
	}
}

func TestRoutingTablePNSReplacement(t *testing.T) {
	self := id.New(0, 0)
	rt := NewRoutingTable(self, 4)
	a := refID(id.New(0x2000000000000000, 1))
	b := refID(id.New(0x2000000000000000, 2))
	rt.AddWithRTT(a, 50*time.Millisecond)
	// Farther candidate must not replace.
	if rt.AddWithRTT(b, 80*time.Millisecond) {
		t.Fatal("farther candidate replaced occupant")
	}
	// Closer candidate must replace.
	if !rt.AddWithRTT(b, 20*time.Millisecond) {
		t.Fatal("closer candidate did not replace")
	}
	if !rt.Contains(b.ID) {
		t.Fatal("table should now hold b")
	}
	got, ok := rt.RTT(b.ID)
	if !ok || got != 20*time.Millisecond {
		t.Fatalf("rtt = %v/%v", got, ok)
	}
	// Measured entry replaces an unmeasured occupant.
	c := refID(id.New(0x3000000000000000, 1))
	d := refID(id.New(0x3000000000000000, 2))
	rt.Add(c)
	if !rt.AddWithRTT(d, time.Second) {
		t.Fatal("measured candidate should replace unmeasured occupant")
	}
}

func TestRoutingTableUpdateSameNodeRTT(t *testing.T) {
	rt := NewRoutingTable(id.New(0, 0), 4)
	a := refID(id.New(0x4000000000000000, 1))
	rt.AddWithRTT(a, 50*time.Millisecond)
	if rt.AddWithRTT(a, 30*time.Millisecond) {
		t.Fatal("re-measuring same node should not report a change")
	}
	got, _ := rt.RTT(a.ID)
	if got != 30*time.Millisecond {
		t.Fatalf("rtt not updated: %v", got)
	}
}

func TestRoutingTableRemove(t *testing.T) {
	rt := NewRoutingTable(id.New(0, 0), 4)
	a := refID(id.New(0x5000000000000000, 1))
	rt.Add(a)
	if !rt.Remove(a.ID) {
		t.Fatal("remove failed")
	}
	if rt.Contains(a.ID) || rt.Count() != 0 {
		t.Fatal("entry still present after remove")
	}
	if rt.Remove(a.ID) {
		t.Fatal("double remove reported true")
	}
	// Removing a node that hashes to an occupied slot but is not the
	// occupant must not clear the slot.
	b := refID(id.New(0x5000000000000000, 2))
	rt.Add(a)
	if rt.Remove(b.ID) {
		t.Fatal("removed wrong node")
	}
	if !rt.Contains(a.ID) {
		t.Fatal("occupant lost")
	}
}

func TestRoutingTableBestForKey(t *testing.T) {
	self := id.New(0, 0) // all digits 0
	rt := NewRoutingTable(self, 4)
	// Key starting with digit 7: slot (0,7).
	key := id.New(0x7abc000000000000, 99)
	hop := refID(id.New(0x7111000000000000, 1))
	rt.Add(hop)
	got, ok := rt.BestForKey(key, nil)
	if !ok || got.ID != hop.ID {
		t.Fatalf("BestForKey = %v/%v, want %v", got, ok, hop.ID)
	}
	// Excluded: not returned.
	_, ok = rt.BestForKey(key, func(x id.ID) bool { return x == hop.ID })
	if ok {
		t.Fatal("excluded entry returned")
	}
	// Empty slot: not found.
	_, ok = rt.BestForKey(id.New(0x8000000000000000, 0), nil)
	if ok {
		t.Fatal("empty slot returned an entry")
	}
}

func TestRoutingTableAnyCloser(t *testing.T) {
	self := id.New(0, 0)
	rt := NewRoutingTable(self, 4)
	key := id.New(0x7abc000000000000, 0)
	// Candidate shares 1 digit with key (7...) and is much closer to it
	// than self.
	cand := refID(id.New(0x7a00000000000000, 5))
	rt.Add(cand)
	got, ok := rt.AnyCloser(key, 0, nil)
	if !ok || got.ID != cand.ID {
		t.Fatalf("AnyCloser = %v/%v", got, ok)
	}
	// Require longer prefix than the candidate has: no match.
	if _, ok := rt.AnyCloser(key, 3, nil); ok {
		t.Fatal("AnyCloser ignored the prefix constraint")
	}
}

func TestRoutingTableRowsAndEntries(t *testing.T) {
	self := id.New(0, 0)
	rt := NewRoutingTable(self, 4)
	refs := []NodeRef{
		refID(id.New(0x1000000000000000, 0)),
		refID(id.New(0x2000000000000000, 0)),
		refID(id.New(0x0100000000000000, 0)), // row 1
		refID(id.New(0x0010000000000000, 0)), // row 2
	}
	for _, r := range refs {
		rt.Add(r)
	}
	if got := len(rt.Row(0)); got != 2 {
		t.Fatalf("row 0 size = %d, want 2", got)
	}
	if got := len(rt.Row(1)); got != 1 {
		t.Fatalf("row 1 size = %d, want 1", got)
	}
	if got := len(rt.Entries()); got != 4 {
		t.Fatalf("entries = %d, want 4", got)
	}
	if got := len(rt.RowsUpTo(1)); got != 3 {
		t.Fatalf("RowsUpTo(1) = %d, want 3", got)
	}
	if got := len(rt.RowsUpTo(999)); got != 4 {
		t.Fatalf("RowsUpTo(big) = %d, want 4", got)
	}
}

func TestRoutingTableRandomisedInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	self := id.Random(rng)
	rt := NewRoutingTable(self, 4)
	inTable := map[id.ID]bool{}
	for step := 0; step < 3000; step++ {
		if rng.Intn(4) > 0 {
			ref := refID(id.Random(rng))
			rtt := time.Duration(rng.Intn(200)) * time.Millisecond
			rt.AddWithRTT(ref, rtt)
		} else if len(inTable) > 0 {
			for x := range inTable {
				rt.Remove(x)
				break
			}
		}
		inTable = map[id.ID]bool{}
		count := 0
		for _, e := range rt.Entries() {
			inTable[e.ID] = true
			count++
			row, col, ok := rt.Slot(e.ID)
			if !ok {
				t.Fatal("entry without slot")
			}
			occ, used := rt.Get(row, col)
			if !used || occ.ID != e.ID {
				t.Fatal("entry not in its own slot")
			}
			if got := id.CommonPrefixLen(self, e.ID, 4); got != row {
				t.Fatalf("entry in row %d but prefix %d", row, got)
			}
			if e.ID.Digit(row, 4) != col {
				t.Fatal("entry in wrong column")
			}
		}
		if count != rt.Count() {
			t.Fatalf("Count=%d but %d entries", rt.Count(), count)
		}
	}
}

func BenchmarkRoutingTableBestForKey(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	self := id.Random(rng)
	rt := NewRoutingTable(self, 4)
	for i := 0; i < 5000; i++ {
		rt.AddWithRTT(refID(id.Random(rng)), time.Duration(rng.Intn(100))*time.Millisecond)
	}
	keys := make([]id.ID, 1024)
	for i := range keys {
		keys[i] = id.Random(rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.BestForKey(keys[i%len(keys)], nil)
	}
}
