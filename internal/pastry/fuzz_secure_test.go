package pastry

import (
	"reflect"
	"testing"
	"time"

	"mspastry/internal/id"
)

// FuzzDecodeSecureMessage drives the secure-routing wire surface — the
// RootReport codec and the Lookup WantReport bit — with arbitrary peer
// bytes: the decoder must be total (parse or error, never panic or
// over-allocate) and accepted messages must survive an encode/decode
// round trip exactly. Root reports cross trust boundaries by design (a
// colluder forges them), so this surface sees hostile input in normal
// operation, not just from bugs.
func FuzzDecodeSecureMessage(f *testing.F) {
	from := NodeRef{ID: id.New(1, 2), Addr: "127.0.0.1:9000"}
	leaf := NodeRef{ID: id.New(3, 4), Addr: "127.0.0.1:9001"}
	seeds := []Message{
		&RootReport{From: from, Seq: 42, Key: id.New(5, 6),
			Leaves: []NodeRef{leaf, from}, TrtHint: 30 * time.Second},
		&RootReport{From: from, Seq: 0, Key: id.ID{}},
		&Envelope{Xfer: 9, NeedAck: true, From: from, Lookup: &Lookup{
			Key: id.New(7, 8), Seq: 3, Origin: leaf, WantReport: true,
			Payload: []byte("p")}},
	}
	for _, m := range seeds {
		f.Add(EncodeMessage(m))
	}
	f.Add([]byte{})
	f.Add([]byte{20})
	f.Add([]byte{20, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMessage(data)
		if err != nil {
			return
		}
		back := AppendMessage(nil, m)
		m2, err := DecodeMessage(back)
		if err != nil {
			t.Fatalf("re-encoding of accepted %x does not decode: %v", data, err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("round trip changed message for %x: %#v != %#v", data, m, m2)
		}
		if rr, ok := m.(*RootReport); ok && len(rr.Leaves) > maxWireSlice {
			t.Fatalf("decoder accepted %d leaves (cap %d)", len(rr.Leaves), maxWireSlice)
		}
	})
}
