package pastry

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"mspastry/internal/id"
)

func ref(lo uint64) NodeRef {
	return NodeRef{ID: id.New(0, lo), Addr: fmt.Sprintf("n%d", lo)}
}

func refID(x id.ID) NodeRef {
	return NodeRef{ID: x, Addr: x.String()[:12]}
}

func TestLeafSetAddOrdering(t *testing.T) {
	ls := NewLeafSet(id.New(0, 1000), 8)
	for _, v := range []uint64{1010, 990, 1020, 980, 1005, 995} {
		ls.Add(ref(v))
	}
	right := ls.Right()
	if len(right) != 4 {
		t.Fatalf("right size = %d, want 4", len(right))
	}
	// Clockwise distances from 1000: 1005->5, 1010->10, 1020->20, then the
	// smaller identifiers wrap nearly the whole ring; among them 980 has
	// the smallest clockwise distance (2^128-20).
	wantR := []uint64{1005, 1010, 1020, 980}
	for i, w := range wantR {
		if right[i].ID.Lo != w {
			t.Fatalf("right[%d] = %d, want %d (full: %v)", i, right[i].ID.Lo, w, right)
		}
	}
	left := ls.Left()
	wantL := []uint64{995, 990, 980, 1020}
	for i, w := range wantL {
		if left[i].ID.Lo != w {
			t.Fatalf("left[%d] = %d, want %d", i, left[i].ID.Lo, w)
		}
	}
}

func TestLeafSetCapacityTruncation(t *testing.T) {
	ls := NewLeafSet(id.New(0, 0), 4)
	for v := uint64(1); v <= 10; v++ {
		ls.Add(ref(v))
	}
	right := ls.Right()
	if len(right) != 2 {
		t.Fatalf("right size = %d, want 2", len(right))
	}
	if right[0].ID.Lo != 1 || right[1].ID.Lo != 2 {
		t.Fatalf("right = %v, want 1,2", right)
	}
}

func TestLeafSetAddSelfAndDup(t *testing.T) {
	self := id.New(0, 5)
	ls := NewLeafSet(self, 4)
	if ls.Add(NodeRef{ID: self, Addr: "x"}) {
		t.Fatal("adding self should not change the set")
	}
	if !ls.Add(ref(6)) {
		t.Fatal("first add should change")
	}
	if ls.Add(ref(6)) {
		t.Fatal("duplicate add should not change")
	}
}

func TestLeafSetRemove(t *testing.T) {
	ls := NewLeafSet(id.New(0, 100), 4)
	ls.Add(ref(101))
	ls.Add(ref(99))
	if !ls.Remove(id.New(0, 101)) {
		t.Fatal("remove existing failed")
	}
	if ls.Contains(id.New(0, 101)) {
		t.Fatal("removed node still present")
	}
	if ls.Remove(id.New(0, 101)) {
		t.Fatal("double remove reported true")
	}
}

func TestLeafSetWrappedSmallRing(t *testing.T) {
	// 5 nodes, l=8: everyone knows everyone; the set must wrap and report
	// complete even though sides are not full.
	ls := NewLeafSet(id.New(0, 0), 8)
	for _, v := range []uint64{100, 200, 300, 400} {
		ls.Add(ref(v))
	}
	if !ls.Wrapped() {
		t.Fatal("small ring should wrap")
	}
	if !ls.Complete() {
		t.Fatal("wrapped set should be complete")
	}
}

func TestLeafSetIncompleteAfterMemberFailure(t *testing.T) {
	// Full leaf set on a large ring; removing a left member must make the
	// set incomplete (triggering eager repair) rather than wrapping.
	self := id.New(1<<60, 0)
	ls := NewLeafSet(self, 4)
	ls.Add(refID(self.Add(id.New(0, 1))))
	ls.Add(refID(self.Add(id.New(0, 2))))
	ls.Add(refID(self.Sub(id.New(0, 1))))
	ls.Add(refID(self.Sub(id.New(0, 2))))
	if !ls.Complete() {
		t.Fatal("both sides full should be complete")
	}
	ls.Remove(self.Sub(id.New(0, 1)))
	if ls.Wrapped() {
		t.Fatal("post-failure set must not count as wrapped")
	}
	if ls.Complete() {
		t.Fatal("set with a short left side must be incomplete")
	}
}

func TestLeafSetEmpty(t *testing.T) {
	ls := NewLeafSet(id.New(0, 1), 8)
	if !ls.Empty() {
		t.Fatal("fresh set should be empty")
	}
	if _, ok := ls.LeftNeighbour(); ok {
		t.Fatal("empty set has no left neighbour")
	}
	if _, ok := ls.Rightmost(); ok {
		t.Fatal("empty set has no rightmost")
	}
}

func TestLeafSetClosest(t *testing.T) {
	ls := NewLeafSet(id.New(0, 1000), 8)
	for _, v := range []uint64{900, 950, 1050, 1100} {
		ls.Add(ref(v))
	}
	got, other := ls.Closest(id.New(0, 1060), nil)
	if !other || got.ID.Lo != 1050 {
		t.Fatalf("closest to 1060 = %v (other=%v), want 1050", got, other)
	}
	// Key closest to self.
	got, other = ls.Closest(id.New(0, 1001), nil)
	if other {
		t.Fatalf("closest to 1001 should be self, got %v", got)
	}
	// Exclusion forces the next best.
	ex := func(x id.ID) bool { return x.Lo == 1050 }
	got, other = ls.Closest(id.New(0, 1060), ex)
	if !other || got.ID.Lo != 1100 {
		t.Fatalf("excluded closest = %v, want 1100", got)
	}
}

func TestLeafSetInRange(t *testing.T) {
	ls := NewLeafSet(id.New(0, 1000), 4)
	for _, v := range []uint64{900, 950, 1050, 1100} {
		ls.Add(ref(v))
	}
	for _, c := range []struct {
		k    uint64
		want bool
	}{
		{1000, true}, {900, true}, {1100, true}, {950, true},
		{899, false}, {1101, false}, {5000, false},
	} {
		if got := ls.InRange(id.New(0, c.k)); got != c.want {
			t.Errorf("InRange(%d) = %v, want %v", c.k, got, c.want)
		}
	}
}

func TestLeafSetInRangeWrappedAlwaysTrue(t *testing.T) {
	ls := NewLeafSet(id.New(0, 0), 8)
	ls.Add(ref(1))
	ls.Add(ref(2))
	if !ls.InRange(id.New(1<<50, 12345)) {
		t.Fatal("wrapped leaf set covers whole ring")
	}
}

func TestLeafSetMembersUnique(t *testing.T) {
	ls := NewLeafSet(id.New(0, 0), 8)
	for _, v := range []uint64{10, 20, 30} {
		ls.Add(ref(v)) // small ring: members appear on both sides
	}
	m := ls.Members()
	if len(m) != 3 {
		t.Fatalf("members = %d, want 3 unique", len(m))
	}
}

func TestLeafSetSpanFraction(t *testing.T) {
	self := id.New(1<<62, 0)
	ls := NewLeafSet(self, 4)
	// Four members at +/-2^119 and +/-2^120: span = 2^121 of 2^128.
	a := id.New(1<<55, 0)
	for _, m := range []id.ID{self.Add(a), self.Add(a.Add(a)), self.Sub(a), self.Sub(a.Add(a))} {
		ls.Add(refID(m))
	}
	if ls.Wrapped() {
		t.Fatal("test setup should not wrap")
	}
	got := ls.SpanFraction()
	want := 1.0 / 128
	if got < want*0.99 || got > want*1.01 {
		t.Fatalf("span fraction = %v, want ~%v", got, want)
	}
}

func TestLeafSetSpanFractionWrapped(t *testing.T) {
	ls := NewLeafSet(id.New(0, 0), 8)
	ls.Add(ref(100))
	ls.Add(ref(200))
	if got := ls.SpanFraction(); got != 1 {
		t.Fatalf("wrapped span fraction = %v, want 1", got)
	}
}

func TestLeafSetAddOnlyMatchesClosestK(t *testing.T) {
	// Property: with insertions only, each side holds exactly the l/2
	// closest inserted nodes on that side, sorted.
	rng := rand.New(rand.NewSource(77))
	self := id.Random(rng)
	const l = 8
	ls := NewLeafSet(self, l)
	live := map[id.ID]NodeRef{}
	for step := 0; step < 500; step++ {
		r := refID(id.Random(rng))
		live[r.ID] = r
		ls.Add(r)
		checkSideExact(t, self, live, ls.Right(), l/2, false)
		checkSideExact(t, self, live, ls.Left(), l/2, true)
	}
}

func TestLeafSetRemovalKeepsInvariants(t *testing.T) {
	// After removals, a side may be smaller than the closest-k of all
	// nodes ever seen (dropped candidates are not remembered — repair
	// refills via probing), but must stay sorted, bounded, and must never
	// contain a removed node.
	rng := rand.New(rand.NewSource(78))
	self := id.Random(rng)
	const l = 8
	ls := NewLeafSet(self, l)
	removed := map[id.ID]bool{}
	var inserted []NodeRef
	for step := 0; step < 2000; step++ {
		if rng.Intn(3) > 0 || len(inserted) == 0 {
			r := refID(id.Random(rng))
			inserted = append(inserted, r)
			delete(removed, r.ID)
			ls.Add(r)
		} else {
			victim := inserted[rng.Intn(len(inserted))]
			removed[victim.ID] = true
			ls.Remove(victim.ID)
		}
		for _, side := range [][]NodeRef{ls.Left(), ls.Right()} {
			if len(side) > l/2 {
				t.Fatalf("side overflow: %d", len(side))
			}
			for _, m := range side {
				if removed[m.ID] {
					t.Fatalf("removed node %v still in side", m.ID)
				}
			}
		}
		checkSorted(t, self, ls.Right(), false)
		checkSorted(t, self, ls.Left(), true)
	}
}

func sideDist(self id.ID, leftSide bool) func(id.ID) id.ID {
	return func(x id.ID) id.ID {
		if leftSide {
			return x.Clockwise(self)
		}
		return self.Clockwise(x)
	}
}

func checkSorted(t *testing.T, self id.ID, side []NodeRef, leftSide bool) {
	t.Helper()
	dist := sideDist(self, leftSide)
	for i := 1; i < len(side); i++ {
		if dist(side[i-1].ID).Cmp(dist(side[i].ID)) >= 0 {
			t.Fatalf("side not strictly sorted at %d", i)
		}
	}
}

func checkSideExact(t *testing.T, self id.ID, live map[id.ID]NodeRef, side []NodeRef, half int, leftSide bool) {
	t.Helper()
	checkSorted(t, self, side, leftSide)
	dist := sideDist(self, leftSide)
	var all []id.ID
	for k := range live {
		all = append(all, k)
	}
	sort.Slice(all, func(i, j int) bool { return dist(all[i]).Cmp(dist(all[j])) < 0 })
	want := half
	if len(all) < want {
		want = len(all)
	}
	if len(side) != want {
		t.Fatalf("side size = %d, want %d", len(side), want)
	}
	for i := 0; i < want; i++ {
		if side[i].ID != all[i] {
			t.Fatalf("side[%d] = %v, want %v", i, side[i].ID, all[i])
		}
	}
}
