package pastry

import (
	"time"

	"mspastry/internal/id"
)

const maxTrt = time.Hour

// triedSet records the next hops already attempted for one routed message.
// A message tries at most MaxRouteAttempts hops, so membership is a linear
// scan over a few entries backed by a small inline array — no per-hop map
// allocation, and reroutes beyond the inline capacity (rare) spill to a
// heap slice. The zero value is empty; a nil *triedSet is a valid empty
// set for reads.
type triedSet struct {
	ids []id.ID
	buf [4]id.ID
}

func newTriedSet(x id.ID) *triedSet {
	t := new(triedSet)
	t.add(x)
	return t
}

func (t *triedSet) add(x id.ID) {
	if t.has(x) {
		return
	}
	if t.ids == nil {
		t.ids = t.buf[:0]
	}
	t.ids = append(t.ids, x)
}

func (t *triedSet) has(x id.ID) bool {
	if t == nil {
		return false
	}
	for _, e := range t.ids {
		if e == x {
			return true
		}
	}
	return false
}

// isExcluded reports whether a node must be routed around: it has been
// marked faulty, or it is temporarily excluded after a missed per-hop ack,
// or its circuit breaker is open (fast-fail: consecutive missed acks mean
// the peer is overloaded or dead, so traffic reroutes immediately instead
// of paying a retransmission timeout per message), or it was already
// tried for this particular message.
func (n *Node) isExcluded(tried *triedSet) func(id.ID) bool {
	return func(x id.ID) bool {
		if n.excluded[x] {
			return true
		}
		if _, bad := n.failed[x]; bad {
			return true
		}
		if n.breakerDenies(x) {
			return true
		}
		return tried.has(x)
	}
}

// nextHop implements the route function of Figure 2: leaf set first, then
// the routing-table slot for the key's prefix, then any known node closer
// to the key that keeps the prefix invariant (routing around failures).
// It returns the local node with self=true when the message has arrived.
func (n *Node) nextHop(k id.ID, tried *triedSet) (ref NodeRef, self bool, emptySlot bool) {
	excl := n.isExcluded(tried)
	if n.ls.InRange(k) {
		best, other := n.ls.Closest(k, excl)
		if !other {
			return n.self, true, false
		}
		return best, false, false
	}
	r := id.CommonPrefixLen(k, n.self.ID, n.cfg.B)
	if ref, ok := n.rt.BestForKey(k, excl); ok {
		return ref, false, false
	}
	// The slot is empty (or excluded): fall back to any strictly closer
	// node with a prefix match of at least r, in the routing table or the
	// leaf set, and remember to trigger passive repair for the slot.
	if ref, ok := n.rt.AnyCloser(k, r, excl); ok {
		return ref, false, true
	}
	var best NodeRef
	found := false
	for _, m := range n.ls.Members() {
		if excl(m.ID) {
			continue
		}
		if id.CommonPrefixLen(k, m.ID, n.cfg.B) >= r && id.CloserToKey(k, m.ID, n.self.ID) {
			if !found || id.CloserToKey(k, m.ID, best.ID) {
				best, found = m, true
			}
		}
	}
	if found {
		return best, false, true
	}
	return n.self, true, false
}

// routeLookup advances a lookup one overlay hop (or delivers it). The
// application's Forward hook can consume the message instead.
func (n *Node) routeLookup(lk *Lookup, tried *triedSet) {
	next, self, emptySlot := n.nextHop(lk.Key, tried)
	if self {
		n.receiveRootLookup(lk)
		return
	}
	if n.app != nil && !n.app.Forward(lk) {
		return
	}
	if emptySlot {
		n.requestPassiveRepair(lk.Key, next)
	}
	n.sendHop(lk, nil, lk.Key, next, tried, !lk.NoAck)
}

// routeJoin advances a join request one hop towards the joiner's id. The
// joiner itself is excluded from next-hop selection: it may already appear
// in routing state (opportunistic insertion on direct contact), but the
// join must terminate at the existing node closest to the joiner's id.
func (n *Node) routeJoin(jr *JoinRequest, tried *triedSet) {
	if tried == nil {
		tried = new(triedSet)
	}
	tried.add(jr.Joiner.ID)
	next, self, emptySlot := n.nextHop(jr.Joiner.ID, tried)
	if self {
		n.receiveRootJoin(jr)
		return
	}
	if emptySlot {
		n.requestPassiveRepair(jr.Joiner.ID, next)
	}
	n.sendHop(nil, jr, jr.Joiner.ID, next, tried, true)
}

// sendHop transmits one overlay hop inside an Envelope, arming the per-hop
// retransmission timer when acks are in use.
func (n *Node) sendHop(lk *Lookup, jr *JoinRequest, key id.ID, to NodeRef, tried *triedSet, needAck bool) {
	n.nextXfer++
	xfer := n.nextXfer
	env := &Envelope{
		Xfer:    xfer,
		NeedAck: needAck,
		From:    n.self,
		Lookup:  lk,
		Join:    jr,
		TrtHint: n.trtLocal,
	}
	if tried == nil {
		// Unacked hops never reroute, so the set only matters when a
		// pendingHop will carry it forward.
		if !needAck {
			n.finishHop(lk, to, env)
			return
		}
		tried = new(triedSet)
	}
	tried.add(to.ID)
	if needAck {
		ph := &pendingHop{
			lookup:  lk,
			join:    jr,
			key:     key,
			to:      to,
			tried:   tried,
			sentAt:  n.env.Now(),
			needAck: true,
		}
		n.pending[xfer] = ph
		ph.timer = n.schedule(n.rtoFor(to), func() { n.hopTimeout(xfer) })
	}
	n.finishHop(lk, to, env)
}

func (n *Node) finishHop(lk *Lookup, to NodeRef, env *Envelope) {
	if lk != nil && n.tobs != nil {
		n.tobs.LookupHop(n, lk, to, HopForward)
	}
	n.send(to, env)
}

// rtoFor computes the per-hop retransmission timeout for a destination,
// seeded from the routing table's measured distance when no ack samples
// exist yet.
func (n *Node) rtoFor(to NodeRef) time.Duration {
	var est *rttEstimator
	if rec := n.peers.Lookup(to.ID); rec != nil {
		est, _ = rec.Get(n.slotRTT).(*rttEstimator)
	}
	fallback := 500 * time.Millisecond
	if rtt, ok := n.rt.RTT(to.ID); ok {
		fallback = 2 * rtt
	}
	if est == nil {
		return clampDuration(fallback, n.cfg.MinRTO, n.cfg.MaxRTO)
	}
	return est.rto(fallback, n.cfg.MinRTO, n.cfg.MaxRTO)
}

// hopTimeout fires when a per-hop ack was not received in time: the next
// hop is temporarily excluded from routing, probed (it is only marked
// faulty if the probe times out — aggressive retransmission must not cause
// false positives), and the message is rerouted to an alternative node.
func (n *Node) hopTimeout(xfer uint64) {
	ph, ok := n.pending[xfer]
	if !ok {
		return
	}
	delete(n.pending, xfer)
	n.counters.Retransmits++
	n.excluded[ph.to.ID] = true
	n.breakerFailure(ph.to)
	n.suspect(ph.to)
	ph.attempts++
	if ph.attempts >= n.cfg.MaxRouteAttempts {
		if ph.lookup != nil {
			n.obs.LookupDropped(n, ph.lookup, DropRetries)
		}
		return
	}
	n.reroute(ph)
}

// reroute re-sends a timed-out hop to an alternative next hop, marking the
// retransmission for traffic accounting. When no alternative exists but a
// closer excluded node remains (typically the key's root whose ack was
// lost), the hop is retransmitted to it with exponential backoff rather
// than mis-delivered locally — the suspect's probe resolves the situation
// either way (reply clears the exclusion; timeout removes the node).
func (n *Node) reroute(ph *pendingHop) {
	next, self, emptySlot := n.nextHop(ph.key, ph.tried)
	if self && n.closerExcludedExists(ph.key, ph.tried) {
		n.retransmitSame(ph)
		return
	}
	if self {
		if ph.lookup != nil {
			n.receiveRootLookup(ph.lookup)
		} else if ph.join != nil {
			n.receiveRootJoin(ph.join)
		}
		return
	}
	if emptySlot {
		n.requestPassiveRepair(ph.key, next)
	}
	n.nextXfer++
	xfer := n.nextXfer
	env := &Envelope{
		Xfer:    xfer,
		NeedAck: true,
		Retx:    true,
		From:    n.self,
		Lookup:  ph.lookup,
		Join:    ph.join,
		TrtHint: n.trtLocal,
	}
	ph.tried.add(next.ID)
	ph.to = next
	ph.sentAt = n.env.Now()
	ph.retx = true
	n.pending[xfer] = ph
	ph.timer = n.schedule(n.rtoFor(next), func() { n.hopTimeout(xfer) })
	if ph.lookup != nil && n.tobs != nil {
		n.tobs.LookupHop(n, ph.lookup, next, HopReroute)
	}
	n.send(next, env)
}

// retransmitSame re-sends the hop to its previous destination with an
// exponentially backed-off timeout, charged against the destination's
// retry budget: once the budget runs dry the lookup is parked in the
// hold buffer instead (released when the suspect's probe resolves), so
// a struggling peer sees a bounded retransmission rate rather than an
// exponential storm of backoff copies from every held message.
func (n *Node) retransmitSame(ph *pendingHop) {
	if !n.retryAllowed(ph.to) {
		if ph.lookup != nil {
			n.holdLookup(ph.lookup)
		}
		return
	}
	n.nextXfer++
	xfer := n.nextXfer
	env := &Envelope{
		Xfer:    xfer,
		NeedAck: true,
		Retx:    true,
		From:    n.self,
		Lookup:  ph.lookup,
		Join:    ph.join,
		TrtHint: n.trtLocal,
	}
	ph.sentAt = n.env.Now()
	ph.retx = true
	n.pending[xfer] = ph
	rto := n.rtoFor(ph.to) << uint(ph.attempts)
	rto = clampDuration(rto, n.cfg.MinRTO, n.cfg.MaxRTO)
	ph.timer = n.schedule(rto, func() { n.hopTimeout(xfer) })
	if ph.lookup != nil && n.tobs != nil {
		n.tobs.LookupHop(n, ph.lookup, ph.to, HopBackoff)
	}
	n.send(ph.to, env)
}

// handleEnvelope processes one received overlay hop: acknowledge, then
// route the payload onwards.
func (n *Node) handleEnvelope(env *Envelope) {
	if env.NeedAck {
		n.send(env.From, &Ack{Xfer: env.Xfer, From: n.self, TrtHint: n.trtLocal})
	}
	switch {
	case env.Lookup != nil:
		lk := env.Lookup
		lk.Hops++
		if lk.Hops > n.cfg.LookupTTL {
			n.obs.LookupDropped(n, lk, DropTTL)
			return
		}
		n.routeLookup(lk, nil)
	case env.Join != nil:
		jr := env.Join
		jr.Hops++
		// Joins use their own generous hop bound: LookupTTL is an
		// application-facing knob and must not break the join protocol.
		const joinTTL = 128
		if jr.Hops > joinTTL {
			return
		}
		// Nodes along the join route contribute the routing-table rows
		// that match the joiner's prefix, plus themselves.
		shared := id.CommonPrefixLen(n.self.ID, jr.Joiner.ID, n.cfg.B)
		jr.Rows = append(jr.Rows, n.rt.RowsUpTo(shared)...)
		jr.Rows = append(jr.Rows, n.self)
		n.routeJoin(jr, nil)
	}
}

// handleAck completes a per-hop transfer and feeds the RTT sample to the
// estimator (first transmissions only — Karn's rule).
func (n *Node) handleAck(ack *Ack) {
	ph, ok := n.pending[ack.Xfer]
	if !ok {
		return
	}
	delete(n.pending, ack.Xfer)
	if ph.timer != nil {
		ph.timer.Cancel()
	}
	n.breakerSuccess(ph.to.ID, ph.sentAt)
	if !ph.retx {
		rec := n.peers.Obtain(ph.to.ID, ph.to.Addr, n.env.Now())
		est, _ := rec.Get(n.slotRTT).(*rttEstimator)
		if est == nil {
			est = &rttEstimator{}
			n.peers.Put(rec, n.slotRTT, est)
		}
		rtt := n.env.Now() - ph.sentAt
		est.observe(rtt)
		if n.sobs != nil {
			n.sobs.AckRTT(n, ph.to, rtt)
		}
	}
}

// closerExcludedExists reports whether some node currently excluded from
// routing (suspected after a missed ack, or already tried for this
// message) is closer to the key than the local node. Delivering while such
// a node exists would violate consistency: the suspect is probably alive
// (aggressive retransmission timeouts are prone to false positives), and
// it — not us — is the key's root.
func (n *Node) closerExcludedExists(k id.ID, tried *triedSet) bool {
	if !n.cfg.HoldOnSuspect {
		return false
	}
	for _, m := range n.ls.Members() {
		if !n.excluded[m.ID] && !tried.has(m.ID) && !n.breakerDenies(m.ID) {
			continue
		}
		if _, bad := n.failed[m.ID]; bad {
			continue
		}
		if id.CloserToKey(k, m.ID, n.self.ID) {
			return true
		}
	}
	return false
}

// receiveRootLookup is Figure 2's receive-root for lookups: deliver only
// when active, never while a leaf-set side is empty (unless the ring is a
// believed singleton), and never while a closer suspected-but-unconfirmed
// node exists — the message is held until the suspect's probe resolves.
func (n *Node) receiveRootLookup(lk *Lookup) {
	if !n.active || !n.canDeliver() || n.closerExcludedExists(lk.Key, nil) {
		n.holdLookup(lk)
		return
	}
	n.counters.DeliveredLookups++
	n.obs.Delivered(n, lk)
	if n.app != nil {
		n.app.Deliver(lk)
	}
	if lk.WantReport {
		if !lk.Origin.IsZero() && lk.Origin.ID != n.self.ID {
			n.send(lk.Origin, &RootReport{
				From:    n.self,
				Seq:     lk.Seq,
				Key:     lk.Key,
				Leaves:  n.ls.Members(),
				TrtHint: n.trtLocal,
			})
		} else {
			// The origin is its own root: no report crosses the wire, the
			// session resolves locally (trivially a pass — we trust our own
			// leaf set).
			n.secureSelfDelivered(lk.Seq)
		}
	}
}

// IsRootFor reports whether this node would deliver a lookup for key
// right now (it considers itself the key's root). Exported for the
// simulator's adversary model: a malicious node that actually owns the
// key delivers honestly — dropping root-owned traffic is a replication
// problem, not a routing problem, and no routing defense can recover a
// lookup whose true destination is the attacker.
func (n *Node) IsRootFor(key id.ID) bool {
	if !n.active {
		return false
	}
	_, self, _ := n.nextHop(key, nil)
	return self
}

// canDeliver implements the paper's guard: no delivery while Li.left or
// Li.right is empty — except in a singleton overlay where both are empty.
func (n *Node) canDeliver() bool {
	lEmpty := len(n.ls.Left()) == 0
	rEmpty := len(n.ls.Right()) == 0
	if lEmpty && rEmpty {
		return true
	}
	return !lEmpty && !rEmpty
}

// receiveRootJoin answers a join request that reached the joiner's root.
func (n *Node) receiveRootJoin(jr *JoinRequest) {
	if !n.active {
		// The paper buffers and replays; a join request is retried by the
		// joiner anyway, so dropping is acceptable here — but replaying is
		// cheap and faster, so hold it via re-route after activation.
		return
	}
	rows := append(append([]NodeRef(nil), jr.Rows...), n.self)
	shared := id.CommonPrefixLen(n.self.ID, jr.Joiner.ID, n.cfg.B)
	rows = append(rows, n.rt.RowsUpTo(shared)...)
	n.send(jr.Joiner, &JoinReply{Rows: rows, Leaves: n.ls.Members()})
}

// requestPassiveRepair asks the chosen next hop for an entry to fill the
// empty routing slot that was discovered while routing key.
func (n *Node) requestPassiveRepair(k id.ID, nextHop NodeRef) {
	row := id.CommonPrefixLen(k, n.self.ID, n.cfg.B)
	if row >= n.rt.NumRows() {
		return
	}
	col := k.Digit(row, n.cfg.B)
	n.send(nextHop, &RepairRequest{From: n.self, Row: row, Col: col})
}

// handleRepairRequest returns candidates for the requester's empty slot:
// nodes (possibly ourselves) whose identifiers match the requester's
// prefix of length Row and have digit Col at position Row.
func (n *Node) handleRepairRequest(req *RepairRequest) {
	matches := func(x id.ID) bool {
		return id.CommonPrefixLen(x, req.From.ID, n.cfg.B) >= req.Row &&
			x.Digit(req.Row, n.cfg.B) == req.Col
	}
	var out []NodeRef
	if matches(n.self.ID) {
		out = append(out, n.self)
	}
	for _, e := range n.rt.Entries() {
		if matches(e.ID) {
			out = append(out, e)
		}
	}
	for _, e := range n.ls.Members() {
		if matches(e.ID) {
			out = append(out, e)
		}
	}
	if len(out) == 0 {
		return
	}
	if len(out) > 4 {
		out = out[:4]
	}
	n.send(req.From, &RepairReply{From: n.self, Row: req.Row, Col: req.Col, Entries: out})
}
