package pastry

import (
	"time"
)

// Reconnect cache: markFaulty purges a peer from all routing state, and
// once every node on one side of a network partition has purged every
// node on the other side, no message ever crosses the cut again — the
// overlay stays split forever after the partition heals. To degrade
// gracefully, each node remembers recently purged peers and re-probes one
// of them at a slow, bounded rate. Crash-failed peers cost a few extra
// pings before their record expires; partitioned peers answer once the
// network heals, and the normal direct-contact re-admission path merges
// the rings back together.

// graveRecord remembers one purged peer.
type graveRecord struct {
	ref     NodeRef
	lastTry time.Duration
	tries   int
}

// rememberFailed adds ref to the reconnect cache unless it is already
// there; when the cache is full, the most-retried record (the one closest
// to expiry) is evicted.
func (n *Node) rememberFailed(ref NodeRef) {
	if n.cfg.ReconnectInterval <= 0 {
		// No reconnect cache: the purge is final right away.
		n.evictPeer(ref)
		return
	}
	if _, ok := n.graveyard[ref.ID]; ok {
		return
	}
	if len(n.graveyard) >= n.cfg.ReconnectCacheSize {
		var victim *graveRecord
		for _, rec := range n.graveyard {
			if victim == nil || rec.tries > victim.tries ||
				(rec.tries == victim.tries && rec.ref.ID.Cmp(victim.ref.ID) > 0) {
				victim = rec
			}
		}
		delete(n.graveyard, victim.ref.ID)
		n.evictPeer(victim.ref)
	}
	n.graveyard[ref.ID] = &graveRecord{ref: ref, lastTry: n.env.Now()}
}

// evictPeer tells a PeerEvictor transport that ref is purged for good and
// its per-peer transport state (resolved address, coalescing queue) can be
// released.
func (n *Node) evictPeer(ref NodeRef) {
	if ev, ok := n.env.(PeerEvictor); ok {
		ev.EvictPeer(ref)
	}
}

// forgetFailed drops ref's reconnect record (direct contact proved it
// alive, or it re-entered routing state).
func (n *Node) forgetFailed(ref NodeRef) {
	delete(n.graveyard, ref.ID)
}

// retryReconnect probes the least-recently-tried cache record, expiring
// records that have exhausted their retry budget. Ties break on the
// identifier so replays are deterministic despite map iteration order.
func (n *Node) retryReconnect(now time.Duration) {
	var rec *graveRecord
	for _, r := range n.graveyard {
		if rec == nil || r.lastTry < rec.lastTry ||
			(r.lastTry == rec.lastTry && r.ref.ID.Cmp(rec.ref.ID) < 0) {
			rec = r
		}
	}
	if rec == nil {
		return
	}
	if rec.tries >= n.cfg.ReconnectRetries {
		delete(n.graveyard, rec.ref.ID)
		n.evictPeer(rec.ref)
		return
	}
	rec.tries++
	rec.lastTry = now
	n.probeReconnect(rec.ref)
}

// probeReconnect pings a peer previously marked faulty. The failure
// record is lifted so the probe is not suppressed; if the probe times
// out it is restored without re-counting the failure (the peer was
// counted when first marked faulty) and without an announcement.
func (n *Node) probeReconnect(ref NodeRef) {
	if _, ok := n.probing[ref.ID]; ok {
		return
	}
	delete(n.failed, ref.ID)
	noteProbeCause("reconnect")
	ps := &probeState{ref: ref, reconnect: true}
	n.probing[ref.ID] = ps
	n.sendProbeMsg(ps)
	n.armProbeTimer(ps)
}
