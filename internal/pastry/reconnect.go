package pastry

import (
	"time"

	"mspastry/internal/id"
	"mspastry/internal/peer"
)

// Reconnect cache: markFaulty purges a peer from all routing state, and
// once every node on one side of a network partition has purged every
// node on the other side, no message ever crosses the cut again — the
// overlay stays split forever after the partition heals. To degrade
// gracefully, each node remembers recently purged peers and re-probes one
// of them at a slow, bounded rate. Crash-failed peers cost a few extra
// pings before their record expires; partitioned peers answer once the
// network heals, and the normal direct-contact re-admission path merges
// the rings back together.
//
// The cache lives in the peer registry's graveyard slot: one graveRecord
// per remembered peer, kept alive (the slot vetoes record eviction) until
// the peer answers a reconnect probe or exhausts its retries. Expiry goes
// through Registry.Expel, which broadcasts the final eviction to every
// registered component — transports drop resolved addresses, coalescers
// flush held frames — in place of the old point-to-point PeerEvictor hook.

// graveRecord remembers one purged peer.
type graveRecord struct {
	ref     NodeRef
	lastTry time.Duration
	tries   int
}

// rememberFailed adds ref to the reconnect cache unless it is already
// there; when the cache is full, the most-retried record (the one closest
// to expiry) is evicted.
func (n *Node) rememberFailed(ref NodeRef) {
	if n.cfg.ReconnectInterval <= 0 {
		// No reconnect cache: the purge is final right away.
		n.peers.Expel(ref.ID, ref.Addr)
		return
	}
	now := n.env.Now()
	rec := n.peers.Obtain(ref.ID, ref.Addr, now)
	if rec.Get(n.slotGrave) != nil {
		return
	}
	if n.peers.SlotCount(n.slotGrave) >= n.cfg.ReconnectCacheSize {
		var victim *graveRecord
		var victimRec *peer.Record
		n.peers.Each(func(r *peer.Record) {
			g, _ := r.Get(n.slotGrave).(*graveRecord)
			if g == nil {
				return
			}
			if victim == nil || g.tries > victim.tries ||
				(g.tries == victim.tries && g.ref.ID.Cmp(victim.ref.ID) > 0) {
				victim, victimRec = g, r
			}
		})
		n.peers.Put(victimRec, n.slotGrave, nil)
		n.peers.Expel(victim.ref.ID, victim.ref.Addr)
	}
	n.peers.Put(rec, n.slotGrave, &graveRecord{ref: ref, lastTry: now})
}

// graveFor returns the peer's reconnect record, nil when none (exposed
// for tests and status reporting).
func (n *Node) graveFor(x id.ID) *graveRecord {
	rec := n.peers.Lookup(x)
	if rec == nil {
		return nil
	}
	g, _ := rec.Get(n.slotGrave).(*graveRecord)
	return g
}

// forgetFailed drops ref's reconnect record (direct contact proved it
// alive, or it re-entered routing state).
func (n *Node) forgetFailed(ref NodeRef) {
	n.clearSlot(ref.ID, n.slotGrave)
}

// retryReconnect probes the least-recently-tried cache record, expiring
// records that have exhausted their retry budget. Ties break on the
// identifier so replays are deterministic despite map iteration order.
func (n *Node) retryReconnect(now time.Duration) {
	var rec *graveRecord
	n.peers.Each(func(r *peer.Record) {
		g, _ := r.Get(n.slotGrave).(*graveRecord)
		if g == nil {
			return
		}
		if rec == nil || g.lastTry < rec.lastTry ||
			(g.lastTry == rec.lastTry && g.ref.ID.Cmp(rec.ref.ID) < 0) {
			rec = g
		}
	})
	if rec == nil {
		return
	}
	if rec.tries >= n.cfg.ReconnectRetries {
		n.clearSlot(rec.ref.ID, n.slotGrave)
		n.peers.Expel(rec.ref.ID, rec.ref.Addr)
		return
	}
	rec.tries++
	rec.lastTry = now
	n.probeReconnect(rec.ref)
}

// probeReconnect pings a peer previously marked faulty. The failure
// record is lifted so the probe is not suppressed; if the probe times
// out it is restored without re-counting the failure (the peer was
// counted when first marked faulty) and without an announcement.
func (n *Node) probeReconnect(ref NodeRef) {
	if _, ok := n.probing[ref.ID]; ok {
		return
	}
	delete(n.failed, ref.ID)
	noteProbeCause("reconnect")
	ps := &probeState{ref: ref, reconnect: true}
	n.probing[ref.ID] = ps
	n.sendProbeMsg(ps)
	n.armProbeTimer(ps)
}
