package pastry

import (
	"math/rand"
	"strconv"
	"testing"
	"time"

	"mspastry/internal/id"
)

// clusteredDelay places nodes in numbered "sites": same-site pairs are
// 2 ms apart, cross-site pairs 100 ms. Site is derived from the node's
// address ordinal so tests can control placement.
func clusteredDelay(sites int) func(from, to NodeRef) time.Duration {
	site := func(r NodeRef) int {
		v, err := strconv.Atoi(r.Addr[1:]) // addresses are "t<N>"
		if err != nil {
			return 0
		}
		return v % sites
	}
	return func(from, to NodeRef) time.Duration {
		if site(from) == site(to) {
			return 2 * time.Millisecond
		}
		return 100 * time.Millisecond
	}
}

// buildPNSOverlay creates an overlay on a clustered delay space with PNS
// on or off, returning the nodes.
func buildPNSOverlay(t *testing.T, seed int64, n int, pns bool) (*testNet, []*Node) {
	t.Helper()
	net := newTestNet(t, seed)
	net.delayFn = clusteredDelay(4)
	cfg := testConfig()
	cfg.PNS = pns
	cfg.L = 8
	// b=2 gives 4 columns per row, so each slot has several candidates —
	// the regime where proximity selection actually has choices to make.
	cfg.B = 2
	rng := rand.New(rand.NewSource(seed))
	var nodes []*Node
	first := net.addNode(id.Random(rng), cfg, nil)
	first.Bootstrap()
	nodes = append(nodes, first)
	for i := 1; i < n; i++ {
		node := net.addNode(id.Random(rng), cfg, nil)
		node.Join(nodes[net.sim.Rand().Intn(len(nodes))].Ref())
		nodes = append(nodes, node)
		net.run(15 * time.Second)
	}
	net.run(2 * time.Minute)
	for i, node := range nodes {
		if !node.Active() {
			t.Fatalf("node %d never activated (pns=%v)", i, pns)
		}
	}
	return net, nodes
}

// meanMeasuredRTT averages the measured routing-table entry distances
// across nodes (entries without a measurement are skipped).
func meanMeasuredRTT(nodes []*Node) (time.Duration, int) {
	var sum time.Duration
	count := 0
	for _, n := range nodes {
		for _, e := range n.Table().Entries() {
			if rtt, ok := n.Table().RTT(e.ID); ok {
				sum += rtt
				count++
			}
		}
	}
	if count == 0 {
		return 0, 0
	}
	return sum / time.Duration(count), count
}

func TestPNSPrefersNearbyEntries(t *testing.T) {
	// Compare the achieved routing-table proximity against the best and
	// the average candidate per slot: PNS must capture a substantial part
	// of the available improvement (random selection captures none in
	// expectation).
	net, nodes := buildPNSOverlay(t, 61, 24, true)
	// Let maintenance run a couple of cycles (20-minute period).
	net.run(45 * time.Minute)
	delay := net.delayFn
	var achieved, optimal, random float64
	entries := 0
	for _, n := range nodes {
		for _, e := range n.Table().Entries() {
			row, col, _ := n.Table().Slot(e.ID)
			var best, sum time.Duration
			cands := 0
			for _, other := range nodes {
				if other == n {
					continue
				}
				r2, c2, ok := n.Table().Slot(other.Ref().ID)
				if !ok || r2 != row || c2 != col {
					continue
				}
				d := 2 * delay(n.Ref(), other.Ref())
				sum += d
				if cands == 0 || d < best {
					best = d
				}
				cands++
			}
			if cands < 2 {
				continue // no choice to make in this slot
			}
			achieved += float64(2 * delay(n.Ref(), e))
			optimal += float64(best)
			random += float64(sum) / float64(cands)
			entries++
		}
	}
	if entries == 0 {
		t.Fatal("no multi-candidate slots — test setup too small")
	}
	t.Logf("per-slot RTT over %d entries: achieved=%.1fms optimal=%.1fms random=%.1fms",
		entries, achieved/float64(entries)/1e6, optimal/float64(entries)/1e6, random/float64(entries)/1e6)
	if random <= optimal {
		t.Skip("no improvement available")
	}
	captured := (random - achieved) / (random - optimal)
	t.Logf("PNS captured %.0f%% of the available proximity improvement", captured*100)
	if captured < 0.4 {
		t.Fatalf("PNS captured only %.0f%% of the available improvement", captured*100)
	}
}

func TestSymmetricProbesShareMeasurement(t *testing.T) {
	// When a measures the round-trip delay to b, the symmetric report must
	// give b a measured entry for a without b probing at all.
	net := newTestNet(t, 62)
	cfg := testConfig()
	cfg.PNS = true
	cfg.SymmetricProbes = true
	a := net.addNode(id.New(0x1111000000000000, 1), cfg, nil)
	b := net.addNode(id.New(0x9999000000000000, 1), cfg, nil)
	a.Bootstrap()
	b.Bootstrap()
	a.measureDistance(b.Ref(), 3, func(time.Duration, bool) {})
	net.run(30 * time.Second)
	rtt, ok := b.Table().RTT(a.Ref().ID)
	if !ok {
		t.Fatal("symmetric report did not populate the peer's table")
	}
	if rtt != 2*net.delay {
		t.Fatalf("reported RTT %v, want %v", rtt, 2*net.delay)
	}
}

func TestSymmetricProbesDisabled(t *testing.T) {
	net := newTestNet(t, 71)
	cfg := testConfig()
	cfg.SymmetricProbes = false
	a := net.addNode(id.New(0x1111000000000000, 1), cfg, nil)
	b := net.addNode(id.New(0x9999000000000000, 1), cfg, nil)
	a.Bootstrap()
	b.Bootstrap()
	a.measureDistance(b.Ref(), 3, func(time.Duration, bool) {})
	net.run(30 * time.Second)
	if _, ok := b.Table().RTT(a.Ref().ID); ok {
		t.Fatal("peer gained a measured entry despite symmetric probes off")
	}
}

func TestDistanceSessionMedian(t *testing.T) {
	// Distance sessions send DistProbeCount probes and use the median.
	net := newTestNet(t, 63)
	cfg := testConfig()
	cfg.DistProbeCount = 3
	cfg.DistProbeSpacing = 100 * time.Millisecond
	a := net.addNode(id.New(1, 1), cfg, nil)
	b := net.addNode(id.New(1<<60, 2), cfg, nil)
	a.Bootstrap()
	b.Bootstrap()
	var got time.Duration
	ok := false
	a.measureDistance(b.Ref(), 3, func(rtt time.Duration, success bool) {
		got, ok = rtt, success
	})
	net.run(10 * time.Second)
	if !ok {
		t.Fatal("distance session failed")
	}
	if got != 2*net.delay {
		t.Fatalf("measured RTT %v, want %v", got, 2*net.delay)
	}
}

func TestDistanceSessionFailsForDeadTarget(t *testing.T) {
	net := newTestNet(t, 64)
	cfg := testConfig()
	a := net.addNode(id.New(1, 1), cfg, nil)
	dead := net.addNode(id.New(2, 2), cfg, nil)
	a.Bootstrap()
	dead.Fail()
	called := false
	okResult := true
	a.measureDistance(dead.Ref(), 3, func(_ time.Duration, success bool) {
		called, okResult = true, success
	})
	net.run(time.Minute)
	if !called {
		t.Fatal("session never concluded")
	}
	if okResult {
		t.Fatal("session to a dead node reported success")
	}
}

func TestDistanceSessionCoalesces(t *testing.T) {
	net := newTestNet(t, 65)
	cfg := testConfig()
	a := net.addNode(id.New(1, 1), cfg, nil)
	b := net.addNode(id.New(2, 2), cfg, nil)
	a.Bootstrap()
	b.Bootstrap()
	calls := 0
	probesBefore := net.sent[CatDistance]
	for i := 0; i < 5; i++ {
		a.measureDistance(b.Ref(), 3, func(time.Duration, bool) { calls++ })
	}
	net.run(10 * time.Second)
	if calls != 5 {
		t.Fatalf("callbacks = %d, want 5 (coalesced session, all callers served)", calls)
	}
	// One session: 3 probes + 3 replies + 1 symmetric report.
	probes := net.sent[CatDistance] - probesBefore
	if probes > 8 {
		t.Fatalf("concurrent requests were not coalesced: %d distance messages", probes)
	}
}

func TestPassiveRepairFillsSlot(t *testing.T) {
	// A node routes through an empty slot; the next hop answers the
	// repair request and the slot gets filled (after a distance probe).
	net := newTestNet(t, 66)
	cfg := testConfig()
	cfg.PNS = true
	nodes := buildOverlayObs(t, net, 14, cfg, nil)
	// Find a node with an empty slot that some other node could fill.
	rng := rand.New(rand.NewSource(67))
	var fixed bool
	for trial := 0; trial < 200 && !fixed; trial++ {
		src := nodes[rng.Intn(len(nodes))]
		key := id.Random(rng)
		row, col, ok := src.Table().Slot(key)
		if !ok {
			continue
		}
		if _, used := src.Table().Get(row, col); used {
			continue
		}
		// Does anyone else have a matching node? (If so, repair can work.)
		src.Lookup(key, nil)
		net.run(30 * time.Second)
		if _, used := src.Table().Get(row, col); used {
			fixed = true
		}
	}
	if !fixed {
		t.Skip("no repairable empty slot encountered (small overlay)")
	}
}

func TestPeriodicMaintenanceRequestsRows(t *testing.T) {
	net := newTestNet(t, 68)
	cfg := testConfig()
	cfg.PNS = true
	cfg.RTMaintenance = 2 * time.Minute
	buildOverlayObs(t, net, 10, cfg, nil)
	before := net.sent[CatRTProbe]
	net.run(5 * time.Minute)
	// RowRequest/RowReply are accounted as CatRTProbe; at least one
	// maintenance round must have fired.
	if net.sent[CatRTProbe] == before {
		t.Fatal("no routing-table maintenance traffic observed")
	}
}
