package pastry

import (
	"math"
	"testing"
	"time"

	"mspastry/internal/id"
)

func TestPFaultyProperties(t *testing.T) {
	// Pf(T, mu) is 0 at T=0, increases with T, and approaches 1.
	mu := 1.0 / 8280 // Gnutella: one failure per mean session of 2.3h
	if got := pFaulty(0, mu); got != 0 {
		t.Fatalf("Pf(0) = %v", got)
	}
	prev := 0.0
	for _, T := range []float64{1, 10, 100, 1000, 10000, 1e6} {
		p := pFaulty(T, mu)
		if p <= prev {
			t.Fatalf("Pf not increasing at T=%v: %v <= %v", T, p, prev)
		}
		if p < 0 || p > 1 {
			t.Fatalf("Pf out of range: %v", p)
		}
		prev = p
	}
	if got := pFaulty(1e9, mu); got < 0.99 {
		t.Fatalf("Pf(huge) = %v, want ~1", got)
	}
	// Small-x expansion: Pf ~ T*mu/2.
	small := pFaulty(10, mu)
	approx := 10 * mu / 2
	if math.Abs(small-approx)/approx > 0.01 {
		t.Fatalf("small-x Pf = %v, want ~%v", small, approx)
	}
}

func TestExpectedHops(t *testing.T) {
	// (2^b-1)/2^b * log_2^b(N): for b=4, N=65536 -> 15/16*4 = 3.75.
	if got := expectedHops(65536, 4); math.Abs(got-3.75) > 1e-9 {
		t.Fatalf("hops(65536,4) = %v, want 3.75", got)
	}
	// For b=1, N=1024 -> 1/2*10 = 5.
	if got := expectedHops(1024, 1); math.Abs(got-5) > 1e-9 {
		t.Fatalf("hops(1024,1) = %v, want 5", got)
	}
	if got := expectedHops(1, 4); got != 1 {
		t.Fatalf("hops floor = %v, want 1", got)
	}
}

func TestRawLossRateMonotone(t *testing.T) {
	mu := 1.2e-4
	prev := -1.0
	for _, trt := range []float64{9, 30, 60, 120, 300, 600, 1800} {
		lr := rawLossRate(30, trt, 3, mu, 2.57, 2)
		if lr <= prev {
			t.Fatalf("Lr not increasing at Trt=%v", trt)
		}
		prev = lr
	}
}

func TestSolveTrtHitsTarget(t *testing.T) {
	// Gnutella-like regime: mu = 1/2.3h, N=2000, b=4.
	mu := 1.0 / (2.3 * 3600)
	hops := expectedHops(2000, 4)
	trt := solveTrt(0.05, 30, 3, mu, hops, 2, 9, 3600)
	got := rawLossRate(30, trt, 3, mu, hops, 2)
	if math.Abs(got-0.05) > 0.002 {
		t.Fatalf("solved Trt=%vs gives Lr=%v, want 0.05", trt, got)
	}
	// The paper's regime puts Trt in the hundreds of seconds here.
	if trt < 100 || trt > 1500 {
		t.Fatalf("Trt = %vs outside plausible range", trt)
	}
}

func TestSolveTrtTighterTargetNeedsFasterProbing(t *testing.T) {
	mu := 1.0 / (2.3 * 3600)
	hops := expectedHops(2000, 4)
	t5 := solveTrt(0.05, 30, 3, mu, hops, 2, 9, 3600)
	t1 := solveTrt(0.01, 30, 3, mu, hops, 2, 9, 3600)
	if t1 >= t5 {
		t.Fatalf("1%% target Trt (%v) should be below 5%% target Trt (%v)", t1, t5)
	}
	// The paper reports ~2.6x more control traffic from 5%->1%; probing
	// traffic scales as 1/Trt, so expect a substantial ratio.
	if ratio := t5 / t1; ratio < 2 {
		t.Fatalf("Trt ratio 5%%/1%% = %v, want > 2", ratio)
	}
}

func TestSolveTrtBounds(t *testing.T) {
	// Very low failure rate: even the max Trt meets the target.
	if got := solveTrt(0.05, 30, 3, 1e-9, 3, 2, 9, 3600); got != 3600 {
		t.Fatalf("low-mu Trt = %v, want max", got)
	}
	// Very high failure rate: clamp at the minimum.
	if got := solveTrt(0.05, 30, 3, 0.01, 3, 2, 9, 3600); got != 9 {
		t.Fatalf("high-mu Trt = %v, want min", got)
	}
}

func TestSolveTrtScalesInverselyWithMu(t *testing.T) {
	hops := 3.0
	a := solveTrt(0.05, 30, 3, 1e-4, hops, 2, 1, 1e6)
	b := solveTrt(0.05, 30, 3, 2e-4, hops, 2, 1, 1e6)
	// Doubling mu should roughly halve the tolerable detection period.
	ratio := a / b
	if ratio < 1.7 || ratio > 2.5 {
		t.Fatalf("Trt(mu)/Trt(2mu) = %v, want ~2", ratio)
	}
}

func TestEstimatorsOnNode(t *testing.T) {
	n := newTestNode(t, id.New(1<<60, 0))
	// Empty state: N estimate is ~1, mu is 0.
	if got := n.estimateN(); got != 1 {
		t.Fatalf("empty N estimate = %v", got)
	}
	if got := n.estimateMu(time.Hour); got != 0 {
		t.Fatalf("empty mu estimate = %v", got)
	}
	// Build a leaf set whose density implies N=1024: 8 members (l=8)
	// spanning 8/1024 of the ring.
	self := n.self.ID
	step := id.Max
	step.Hi >>= 10 // ~2^118 = ring/1024
	for i := 1; i <= 4; i++ {
		off := id.New(uint64(i)*step.Hi, 0)
		n.ls.Add(refID(self.Add(off)))
		n.ls.Add(refID(self.Sub(off)))
	}
	est := n.estimateN()
	if est < 700 || est > 1500 {
		t.Fatalf("N estimate = %v, want ~1024", est)
	}
}

func TestMuEstimateFromHistory(t *testing.T) {
	n := newTestNode(t, id.New(1<<60, 0))
	// Spread nodes across distinct routing slots (vary the first digit
	// and the second) and count how many the table actually holds.
	for i := uint64(0); i < 24; i++ {
		x := id.New(i<<60|(i%4)<<56, i)
		n.rt.Add(NodeRef{ID: x, Addr: x.String()[:10]})
	}
	m := n.monitoredNodes()
	if m < 10 {
		t.Fatalf("monitored = %d, want a reasonable population", m)
	}
	// Observe 15 failures uniformly over 1000s (history K=16 incl. join
	// marker at t=0 keeps all of them).
	for i := 1; i <= 15; i++ {
		n.recordFailure(time.Duration(i) * 66 * time.Second)
	}
	mu := n.estimateMu(1000 * time.Second)
	want := 15.0 / (float64(m) * 990) // full history: span first..last
	if math.Abs(mu-want)/want > 0.05 {
		t.Fatalf("mu = %v, want ~%v (m=%d)", mu, want, m)
	}
}

func TestRetuneAdoptsMedianOfHints(t *testing.T) {
	n := newTestNode(t, id.New(1<<60, 0))
	// Make the local estimate land at max (no failures observed).
	for i := uint64(1); i <= 5; i++ {
		ref := NodeRef{ID: id.New(i<<40, i), Addr: string(rune('a' + i))}
		n.rt.Add(ref)
		n.setTrtHint(n.peers.Obtain(ref.ID, ref.Addr, 0), time.Duration(i)*100*time.Second)
	}
	n.retune(time.Hour)
	// Values: local=maxTrt, hints 100..500s -> median of 6 values is
	// between 300 and 400s.
	if n.trtCurrent < 300*time.Second || n.trtCurrent > 400*time.Second {
		t.Fatalf("median Trt = %v, want in [300s,400s]", n.trtCurrent)
	}
}
