package pastry

import (
	"sort"
	"testing"
	"time"

	"mspastry/internal/id"
)

// ringRepaired reports whether the live nodes form one consistent ring:
// every node active, leaf sets complete, and both ring neighbours
// matching the global sorted order.
func ringRepaired(nodes []*Node) bool {
	live := make([]*Node, 0, len(nodes))
	for _, n := range nodes {
		if n.Alive() {
			live = append(live, n)
		}
	}
	sort.Slice(live, func(i, j int) bool {
		return live[i].Ref().ID.Cmp(live[j].Ref().ID) < 0
	})
	k := len(live)
	for i, n := range live {
		if !n.Active() || !n.Leaf().Complete() {
			return false
		}
		right, okR := n.Leaf().RightNeighbour()
		left, okL := n.Leaf().LeftNeighbour()
		if !okR || !okL ||
			right.ID != live[(i+1)%k].Ref().ID ||
			left.ID != live[(i-1+k)%k].Ref().ID {
			return false
		}
	}
	return true
}

// TestPartitionRemerge drops every cross-side message long enough for
// both halves to purge each other completely, then heals the network and
// checks that the reconnect cache re-merges the overlay into one ring.
func TestPartitionRemerge(t *testing.T) {
	net := newTestNet(t, 7)
	nodes := buildOverlay(t, net, 16, testConfig())

	sideA := make(map[string]bool)
	for i, n := range nodes {
		if i < len(nodes)/2 {
			sideA[n.Ref().Addr] = true
		}
	}
	net.drop = func(from, to NodeRef, _ Message) bool {
		return sideA[from.Addr] != sideA[to.Addr]
	}
	// Far beyond the purge horizon (a few probe timeouts plus heartbeat
	// rounds): by now each side has marked every cross-side peer faulty
	// and removed it from all routing state.
	net.run(5 * time.Minute)
	if ringRepaired(nodes) {
		t.Fatalf("overlay still consistent mid-partition")
	}
	crossLinks := 0
	for _, n := range nodes {
		for _, m := range n.Leaf().Members() {
			if sideA[n.Ref().Addr] != sideA[m.Addr] {
				crossLinks++
			}
		}
	}
	if crossLinks > 0 {
		t.Fatalf("%d cross-partition leaf links survived the split; test needs a longer partition", crossLinks)
	}

	net.drop = nil
	deadline := net.sim.Now() + 20*time.Minute
	for net.sim.Now() < deadline && !ringRepaired(nodes) {
		net.run(30 * time.Second)
	}
	if !ringRepaired(nodes) {
		t.Fatalf("overlay never re-merged after heal")
	}
}

// TestPartitionNoRemergeWithoutCache pins down why the reconnect cache
// exists: with it disabled, the same partition is permanent.
func TestPartitionNoRemergeWithoutCache(t *testing.T) {
	net := newTestNet(t, 7)
	cfg := testConfig()
	cfg.ReconnectInterval = 0
	nodes := buildOverlay(t, net, 16, cfg)

	sideA := make(map[string]bool)
	for i, n := range nodes {
		if i < len(nodes)/2 {
			sideA[n.Ref().Addr] = true
		}
	}
	net.drop = func(from, to NodeRef, _ Message) bool {
		return sideA[from.Addr] != sideA[to.Addr]
	}
	net.run(5 * time.Minute)
	net.drop = nil
	net.run(20 * time.Minute)
	if ringRepaired(nodes) {
		t.Fatalf("overlay re-merged without the reconnect cache; the cache is no longer load-bearing")
	}
}

// TestReconnectCacheExpires checks the post-mortem traffic bound: records
// for a genuinely crashed peer are retried at most ReconnectRetries times
// and then dropped, leaving the graveyard empty.
func TestReconnectCacheExpires(t *testing.T) {
	net := newTestNet(t, 3)
	nodes := buildOverlay(t, net, 8, testConfig())

	dead := nodes[len(nodes)-1]
	dead.Fail()
	// Long enough for detection plus ReconnectRetries probes at
	// ReconnectInterval. Leaf repair replaces the dead node quickly; the
	// graveyard keeps pinging it until the retry budget runs out.
	cfg := nodes[0].cfg
	horizon := 2*time.Minute + time.Duration(cfg.ReconnectRetries+2)*cfg.ReconnectInterval
	net.run(horizon)
	for _, n := range nodes[:len(nodes)-1] {
		if rec := n.graveFor(dead.Ref().ID); rec != nil {
			t.Fatalf("node %v still holds a reconnect record for the dead node (tries=%d)",
				n.Ref().ID, rec.tries)
		}
	}
}

// TestReconnectRecordLiftedOnContact checks that direct contact from a
// previously purged peer clears its reconnect record.
func TestReconnectRecordLiftedOnContact(t *testing.T) {
	net := newTestNet(t, 3)
	node := net.addNode(id.Random(net.sim.Rand()), testConfig(), nil)
	peer := NodeRef{ID: id.Random(net.sim.Rand()), Addr: "peer"}
	node.rememberFailed(peer)
	if node.graveFor(peer.ID) == nil {
		t.Fatalf("rememberFailed did not record the peer")
	}
	node.noteContact(peer, 0)
	if node.graveFor(peer.ID) != nil {
		t.Fatalf("noteContact left the reconnect record in place")
	}
}
