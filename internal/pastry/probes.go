package pastry

import (
	"sort"
	"time"

	"mspastry/internal/id"
)

// probeLeaf starts (or upgrades to) a leaf-set probe of ref, per Figure 2's
// probei: no-op if the node is already being probed with a leaf probe or
// has been marked faulty.
var probeCauseHook func(cause string)

func noteProbeCause(cause string) {
	if probeCauseHook != nil {
		probeCauseHook(cause)
	}
}

func (n *Node) probeLeaf(ref NodeRef) { n.probeLeafAnnounce(ref, false) }

// probeLeafAnnounce starts a leaf probe; announce marks it as first-hand
// failure suspicion (its timeout is announced to the leaf set).
func (n *Node) probeLeafAnnounce(ref NodeRef, announce bool) {
	if ref.ID == n.self.ID || ref.IsZero() {
		return
	}
	if _, bad := n.failed[ref.ID]; bad {
		return
	}
	if ps, ok := n.probing[ref.ID]; ok {
		if announce {
			ps.announce = true
		}
		if !ps.isLeaf {
			// Upgrade an in-flight liveness ping to a leaf probe so the
			// reply carries leaf-set state.
			ps.isLeaf = true
			n.sendProbeMsg(ps)
		}
		return
	}
	ps := &probeState{ref: ref, isLeaf: true, announce: announce}
	n.probing[ref.ID] = ps
	n.sendProbeMsg(ps)
	n.armProbeTimer(ps)
}

// probeLiveness starts a routing-table liveness probe of ref.
func (n *Node) probeLiveness(ref NodeRef) {
	if ref.ID == n.self.ID || ref.IsZero() {
		return
	}
	if _, bad := n.failed[ref.ID]; bad {
		return
	}
	if _, ok := n.probing[ref.ID]; ok {
		return
	}
	ps := &probeState{ref: ref}
	n.probing[ref.ID] = ps
	n.sendProbeMsg(ps)
	n.armProbeTimer(ps)
}

func (n *Node) sendProbeMsg(ps *probeState) {
	if ps.isLeaf {
		n.send(ps.ref, &LSProbe{
			From:     n.self,
			Leaves:   n.ls.Members(),
			Failed:   n.failedList(),
			NeedNear: !n.ls.Complete(),
			TrtHint:  n.trtLocal,
		})
		return
	}
	if ps.reconnect {
		n.counters.SentReconnectProbes++
	} else {
		n.counters.SentRTProbes++
	}
	n.send(ps.ref, &RTProbe{From: n.self, TrtHint: n.trtLocal})
}

func (n *Node) armProbeTimer(ps *probeState) {
	ps.timer = n.schedule(n.cfg.To, func() { n.probeTimeout(ps) })
}

// failedList snapshots the failure records in identifier order. The order
// matters: receivers process the list sequentially and each confirm-probe
// mutates their leaf set, so a map-order list would make the repair
// cascade — and every byte count derived from it — vary between otherwise
// identical runs.
func (n *Node) failedList() []NodeRef {
	out := make([]NodeRef, 0, len(n.failed))
	for _, ref := range n.failed {
		out = append(out, ref)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID.Cmp(out[j].ID) < 0 })
	return out
}

// probeTimeout implements PROBE-TIMEOUT: retry a few times with a large
// timeout (minimising false positives), then mark the node faulty.
func (n *Node) probeTimeout(ps *probeState) {
	cur, ok := n.probing[ps.ref.ID]
	if !ok || cur != ps {
		return
	}
	if ps.retries < n.cfg.MaxProbeRetries {
		ps.retries++
		// Probe retries draw on the peer's retry budget: under overload a
		// storm of simultaneous suspicions would otherwise multiply every
		// timeout into MaxProbeRetries extra packets. A suppressed resend
		// keeps the timer machinery running, so the verdict arrives on the
		// same schedule either way — the peer just is not re-pinged.
		if n.retryAllowed(ps.ref) {
			n.sendProbeMsg(ps)
		}
		n.armProbeTimer(ps)
		return
	}
	if ps.reconnect {
		// Still unreachable: restore the failure record without
		// re-counting the failure (it was counted when first marked
		// faulty) and without an announcement.
		n.failed[ps.ref.ID] = ps.ref
		n.doneProbing(ps.ref.ID)
		return
	}
	n.markFaulty(ps.ref, ps.announce)
	n.doneProbing(ps.ref.ID)
}

// markFaulty removes a node from all routing state, records the failure for
// the failure-rate estimator, and — when the node was a leaf-set member —
// announces the failure to the rest of the leaf set (whose probe replies in
// turn supply repair candidates).
func (n *Node) markFaulty(ref NodeRef, announce bool) {
	wasLeaf := n.ls.Contains(ref.ID)
	n.ls.Remove(ref.ID)
	n.rt.Remove(ref.ID)
	n.failed[ref.ID] = ref
	n.rememberFailed(ref)
	delete(n.excluded, ref.ID)
	n.clearSlot(ref.ID, n.slotHint)
	// The reconnect cache owns the peer now; breaker and budget state
	// would only shadow it.
	n.dropBreaker(ref.ID)
	n.recordFailure(n.env.Now())
	if announce && wasLeaf && n.active {
		if n.sobs != nil {
			n.sobs.LeafSetRepair(n, "announce")
		}
		for _, m := range n.ls.Members() {
			noteProbeCause("announce")
			n.probeLeaf(m)
		}
	}
}

// doneProbing implements Figure 2's done-probing: when the last outstanding
// probe completes, either become active (leaf set complete) or continue
// leaf-set repair.
func (n *Node) doneProbing(x id.ID) {
	ps, ok := n.probing[x]
	if !ok {
		// A reply for a probe that is not outstanding — duplicated or
		// stale — is not a completion event. Without this guard, each
		// such reply re-runs the repair logic below and can launch a
		// fresh probe wave; under network-level message duplication the
		// waves multiply into an exponential probe storm.
		return
	}
	if ps.timer != nil {
		ps.timer.Cancel()
	}
	delete(n.probing, x)
	if len(n.probing) > 0 {
		return
	}
	if n.ls.Complete() {
		if !n.active {
			n.activate()
		} else {
			for idx := range n.failed {
				delete(n.failed, idx)
			}
			n.releaseHeld()
		}
		return
	}
	n.repairLeafSet()
}

// repairLeafSet continues leaf-set repair: probe outwards through the
// farthest member on each deficient side; if a side is completely empty,
// fall back to the generalised repair via the routing table.
func (n *Node) repairLeafSet() {
	half := n.ls.Half()
	progressed := false
	if len(n.ls.Left()) < half {
		if lm, ok := n.ls.Leftmost(); ok {
			progressed = n.repairProbe(lm, "repair-left") || progressed
		} else if cand, ok := n.closestKnown(true); ok {
			progressed = n.repairProbe(cand, "repair-left-empty") || progressed
		}
	}
	if len(n.ls.Right()) < half {
		if rm, ok := n.ls.Rightmost(); ok {
			progressed = n.repairProbe(rm, "repair-right") || progressed
		} else if cand, ok := n.closestKnown(false); ok {
			progressed = n.repairProbe(cand, "repair-right-empty") || progressed
		}
	}
	if progressed || n.repairTimer != nil {
		return
	}
	// Nothing left to probe. If the node is still joining, its seed may
	// have died mid-join; retry after a backoff through the seed source.
	if !n.active {
		n.scheduleJoinRetry()
	}
}

// repairProbe launches a repair probe unless the same target was probed
// less than one probe timeout ago. Without this pacing a stuck repair —
// the target's reply supplies no acceptable new candidate, so the leaf
// set stays deficient — re-probes the same farthest member the moment
// each reply arrives, a self-sustaining loop at reply-RTT rate that
// floods the network (observed under churn plus message duplication).
// Paced-out probes arm a single retry timer that re-enters repair once
// the pacing window has passed, so a genuinely stuck node keeps trying
// at a bounded one-probe-per-To rate until new information arrives.
func (n *Node) repairProbe(ref NodeRef, cause string) bool {
	now := n.env.Now()
	s := n.suppressOf(n.peers.Obtain(ref.ID, ref.Addr, now))
	if s.lastRepair != 0 && now-s.lastRepair < n.cfg.To {
		n.armRepairRetry(n.cfg.To - (now - s.lastRepair))
		return false
	}
	s.lastRepair = now
	noteProbeCause(cause)
	if n.sobs != nil {
		n.sobs.LeafSetRepair(n, cause)
	}
	n.probeLeaf(ref)
	return true
}

func (n *Node) armRepairRetry(d time.Duration) {
	if n.repairTimer != nil {
		return
	}
	n.repairTimer = n.schedule(d, func() {
		n.repairTimer = nil
		if len(n.probing) == 0 && !n.ls.Complete() {
			n.repairLeafSet()
		}
	})
}

// closestKnown finds the nearest known node on the requested side among
// routing-table entries and leaf members — the generalised repair that
// recovers even when one side of the leaf set is completely empty.
func (n *Node) closestKnown(leftSide bool) (NodeRef, bool) {
	var best NodeRef
	found := false
	consider := func(ref NodeRef) {
		if ref.ID == n.self.ID {
			return
		}
		if _, bad := n.failed[ref.ID]; bad {
			return
		}
		if !found {
			best, found = ref, true
			return
		}
		var d, bd id.ID
		if leftSide {
			d = ref.ID.Clockwise(n.self.ID)
			bd = best.ID.Clockwise(n.self.ID)
		} else {
			d = n.self.ID.Clockwise(ref.ID)
			bd = n.self.ID.Clockwise(best.ID)
		}
		if d.Cmp(bd) < 0 {
			best = ref
		}
	}
	for _, e := range n.rt.Entries() {
		consider(e)
	}
	for _, e := range n.ls.Members() {
		consider(e)
	}
	return best, found
}

// handleLSProbe implements RECEIVE(LS-PROBE) from Figure 2.
func (n *Node) handleLSProbe(p *LSProbe) {
	n.processLeafInfo(p.From, p.Leaves, p.Failed)
	reply := &LSProbeReply{
		From:    n.self,
		Leaves:  n.ls.Members(),
		Failed:  n.failedList(),
		TrtHint: n.trtLocal,
	}
	// Only repairing nodes get the nearest-known candidate list (the
	// generalised repair of the paper): sending it on every probe would
	// fan out into needless candidate probing.
	if p.NeedNear {
		reply.Near = n.nearestKnown(p.From.ID, n.cfg.L+1)
	}
	n.send(p.From, reply)
}

// handleLSProbeReply implements RECEIVE(LS-PROBE-REPLY). A reply proves
// the peer is alive — the exclusion lifts — but deliberately does not
// touch its circuit breaker: probes ride the liveness lane, so an
// overloaded peer answers them while still shedding routed traffic (see
// breaker.go).
func (n *Node) handleLSProbeReply(p *LSProbeReply) {
	delete(n.excluded, p.From.ID)
	n.processLeafInfo(p.From, append(p.Leaves, p.Near...), p.Failed)
	n.doneProbing(p.From.ID)
}

// processLeafInfo is the common body of LS-PROBE and LS-PROBE-REPLY
// handling (Figure 2): insert the direct sender; re-probe members the
// sender claims have failed (to recover from false positives); remove them
// meanwhile; and probe any new leaf-set candidates before inserting them.
func (n *Node) processLeafInfo(from NodeRef, leaves, failed []NodeRef) {
	delete(n.failed, from.ID)
	n.ls.Add(from)
	n.rt.Add(from)
	// Nodes the sender believes faulty: if they are in our leaf set, probe
	// them to confirm, and remove them until they prove alive.
	for _, f := range failed {
		if f.ID == n.self.ID {
			continue
		}
		if n.ls.Contains(f.ID) {
			n.ls.Remove(f.ID)
			noteProbeCause("confirm-failed")
			n.probeLeaf(f)
		}
	}
	// Candidate members from the sender's leaf set: probe before insertion
	// (a node never enters the leaf set without direct contact).
	for _, cand := range leaves {
		if cand.ID == n.self.ID {
			continue
		}
		if _, bad := n.failed[cand.ID]; bad {
			continue
		}
		if n.ls.Contains(cand.ID) {
			continue
		}
		if n.wouldExtendLeafSet(cand) && n.markCandidateProbe(cand) {
			noteProbeCause("candidate")
			n.probeLeaf(cand)
		}
	}
}

// wouldExtendLeafSet reports whether cand would enter the leaf set if it
// proved alive, bounding probe traffic to useful candidates.
func (n *Node) wouldExtendLeafSet(cand NodeRef) bool {
	half := n.ls.Half()
	left, right := n.ls.Left(), n.ls.Right()
	if len(left) < half || len(right) < half {
		return true
	}
	farLeft := left[len(left)-1]
	if cand.ID.Clockwise(n.self.ID).Cmp(farLeft.ID.Clockwise(n.self.ID)) < 0 {
		return true
	}
	farRight := right[len(right)-1]
	return n.self.ID.Clockwise(cand.ID).Cmp(n.self.ID.Clockwise(farRight.ID)) < 0
}

// nearestKnown returns up to k known nodes closest (in ring distance) to
// the target identifier, drawn from the routing table and leaf set. It
// implements the reply side of generalised leaf-set repair.
func (n *Node) nearestKnown(target id.ID, k int) []NodeRef {
	seen := map[id.ID]bool{n.self.ID: true, target: true}
	var all []NodeRef
	for _, e := range n.rt.Entries() {
		if !seen[e.ID] {
			seen[e.ID] = true
			all = append(all, e)
		}
	}
	for _, e := range n.ls.Members() {
		if !seen[e.ID] {
			seen[e.ID] = true
			all = append(all, e)
		}
	}
	// Selection sort of the k closest is fine at leaf-set scale.
	if k > len(all) {
		k = len(all)
	}
	for i := 0; i < k; i++ {
		minIdx := i
		for j := i + 1; j < len(all); j++ {
			if id.CloserToKey(target, all[j].ID, all[minIdx].ID) {
				minIdx = j
			}
		}
		all[i], all[minIdx] = all[minIdx], all[i]
	}
	return all[:k]
}

// handleRTProbeReply completes a liveness probe. Like leaf-set probe
// replies, it clears the exclusion but not the circuit breaker: liveness
// and serviceability are separate questions under overload.
func (n *Node) handleRTProbeReply(p *RTProbeReply) {
	delete(n.excluded, p.From.ID)
	now := n.env.Now()
	n.peers.Obtain(p.From.ID, p.From.Addr, now).LastLiveness = now
	n.doneProbing(p.From.ID)
}

// suspect triggers failure detection for a node (SUSPECT-FAULTY in the
// paper): leaf-set members get a leaf probe; routing-table entries a ping.
func (n *Node) suspect(ref NodeRef) {
	if n.ls.Contains(ref.ID) {
		noteProbeCause("suspect")
		n.probeLeafAnnounce(ref, true)
		return
	}
	n.probeLiveness(ref)
}

// sendHeartbeats sends the periodic liveness heartbeat. With structured
// heartbeats (the paper's optimisation) only the left ring neighbour is
// heartbeated, making leaf-set maintenance cost independent of l; the
// all-pairs mode is the ablation baseline. Any traffic already sent to the
// target within Tls suppresses the heartbeat when suppression is on.
func (n *Node) sendHeartbeats(now time.Duration) {
	targets := n.heartbeatTargets()
	for _, t := range targets {
		rec := n.peers.Obtain(t.ID, t.Addr, now)
		if now-rec.LastHeartbeat < n.cfg.Tls {
			continue
		}
		if n.cfg.Suppression && now-rec.LastSent < n.cfg.Tls {
			n.counters.SuppressedProbes++
			rec.LastHeartbeat = rec.LastSent
			continue
		}
		rec.LastHeartbeat = now
		n.counters.SentHeartbeats++
		n.send(t, &Heartbeat{From: n.self, TrtHint: n.trtLocal})
	}
}

func (n *Node) heartbeatTargets() []NodeRef {
	if n.cfg.StructuredHeartbeats {
		if left, ok := n.ls.LeftNeighbour(); ok {
			return []NodeRef{left}
		}
		return nil
	}
	return n.ls.Members()
}

// checkRightNeighbour suspects the right neighbour when its heartbeat is
// overdue (structured mode), or any member in the all-pairs ablation.
func (n *Node) checkRightNeighbour(now time.Duration) {
	deadline := n.cfg.Tls + n.cfg.To
	if n.cfg.StructuredHeartbeats {
		if right, ok := n.ls.RightNeighbour(); ok {
			if n.silentFor(right.ID, now) > deadline {
				n.suspect(right)
			}
		}
		return
	}
	for _, m := range n.ls.Members() {
		if n.silentFor(m.ID, now) > deadline {
			n.suspect(m)
		}
	}
}

// silentFor returns how long a peer has been silent, counting from the
// moment we first knew it if it never spoke.
func (n *Node) silentFor(x id.ID, now time.Duration) time.Duration {
	rec := n.peers.Lookup(x)
	if rec == nil || rec.LastRecv == 0 {
		// Never heard directly: leaf members always contacted us at least
		// once (insertion discipline), so this is unreachable in practice;
		// treat as fresh to avoid spurious suspicion.
		n.peers.Obtain(x, "", now).LastRecv = now
		return 0
	}
	return now - rec.LastRecv
}

// scanRoutingTable sends liveness probes to routing state whose last probe
// (or, with suppression, any traffic) is older than the current probing
// period Trt. Leaf-set members are included as a slow backstop: fast leaf
// failure detection comes from the heartbeat chain and announcements, but
// a dead node on a node's *left* side produces no heartbeat signal towards
// it, and if the detector's announcement was lost (for example during a
// massive correlated failure) the ghost would otherwise persist forever.
// For members that do generate traffic, suppression makes this free.
func (n *Node) scanRoutingTable(now time.Duration) {
	trt := n.trtCurrent
	scanned := make(map[id.ID]bool, n.rt.Count())
	targets := n.rt.Entries()
	for _, m := range n.ls.Members() {
		if !n.rt.Contains(m.ID) {
			targets = append(targets, m)
		}
	}
	for _, e := range targets {
		if scanned[e.ID] {
			continue
		}
		scanned[e.ID] = true
		rec := n.peers.Obtain(e.ID, e.Addr, now)
		last := rec.LastLiveness
		if last == 0 {
			// First sight: start the probing clock now.
			rec.LastLiveness = now
			continue
		}
		if now-last < trt {
			continue
		}
		if n.cfg.Suppression {
			if lr := rec.LastRecv; lr != 0 && now-lr < trt {
				n.counters.SuppressedProbes++
				rec.LastLiveness = lr
				continue
			}
		}
		rec.LastLiveness = now
		n.probeLiveness(e)
	}
}
