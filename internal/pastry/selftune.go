package pastry

import (
	"math"
	"time"

	"mspastry/internal/peer"
)

// This file implements the self-tuning of the routing-table probing period
// (paper §4.1). The raw loss rate — the probability that a message meets a
// faulty node along its route in the absence of acks and retransmissions —
// is
//
//	Lr = 1 - (1-Pf(Tls+(r+1)To, mu)) * (1-Pf(Trt+(r+1)To, mu))^(h-1)
//
// where Pf(T, mu) = 1 - (1 - e^(-T*mu)) / (T*mu) is the probability of
// forwarding to a faulty node when faults take at most T to detect and
// nodes fail at rate mu, and h = (2^b-1)/2^b * log_2^b(N) is the expected
// number of overlay hops. Each node estimates N from the density of its
// leaf set and mu from its recent failure history, solves for the Trt that
// hits the target Lr, and adopts the median of the estimates advertised by
// its routing-state peers.

// pFaulty is Pf(T, mu): the probability that a next hop chosen uniformly
// among nodes failing at rate mu is already dead, when failures take at
// most T seconds to detect.
func pFaulty(T, mu float64) float64 {
	x := T * mu
	if x <= 0 {
		return 0
	}
	if x > 700 {
		return 1
	}
	return 1 - (1-math.Exp(-x))/x
}

// rawLossRate computes Lr for the given parameters. tls, trt and to are in
// seconds; mu in failures per node per second; hops is the expected route
// length (>= 1; the last hop uses the leaf set).
func rawLossRate(tls, trt, to, mu, hops float64, retries int) float64 {
	detect := float64(retries+1) * to
	pLeaf := pFaulty(tls+detect, mu)
	if hops <= 1 {
		return pLeaf
	}
	pRT := pFaulty(trt+detect, mu)
	return 1 - (1-pLeaf)*math.Pow(1-pRT, hops-1)
}

// expectedHops returns the paper's expected route length
// (2^b-1)/2^b * log_2^b(N), floored at 1.
func expectedHops(n float64, b int) float64 {
	if n < 2 {
		return 1
	}
	base := float64(int(1) << b)
	h := (base - 1) / base * (math.Log(n) / math.Log(base))
	if h < 1 {
		return 1
	}
	return h
}

// solveTrt finds the largest Trt (seconds) whose predicted raw loss rate
// stays at or below target. Monotonicity: Lr grows with Trt, so bisection
// applies. Returns maxTrt when even the maximum satisfies the target, and
// the lower bound when no Trt can reach it.
func solveTrt(target, tls, to, mu, hops float64, retries int, minTrtSec, maxTrtSec float64) float64 {
	if rawLossRate(tls, maxTrtSec, to, mu, hops, retries) <= target {
		return maxTrtSec
	}
	if rawLossRate(tls, minTrtSec, to, mu, hops, retries) >= target {
		return minTrtSec
	}
	lo, hi := minTrtSec, maxTrtSec
	for i := 0; i < 60 && hi-lo > 0.01; i++ {
		mid := (lo + hi) / 2
		if rawLossRate(tls, mid, to, mu, hops, retries) <= target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// recordFailure appends a failure observation to the bounded history used
// by the failure-rate estimator. The node's own join time seeds the
// history so young nodes do not produce wild estimates.
func (n *Node) recordFailure(at time.Duration) {
	if len(n.failureHist) == 0 {
		n.failureHist = append(n.failureHist, n.joinStart)
	}
	n.failureHist = append(n.failureHist, at)
	if len(n.failureHist) > n.cfg.FailureHistoryK {
		n.failureHist = n.failureHist[len(n.failureHist)-n.cfg.FailureHistoryK:]
	}
}

// estimateN estimates the overlay size from leaf-set density: the leaf set
// holds Size() nodes in SpanFraction() of the ring.
func (n *Node) estimateN() float64 {
	span := n.ls.SpanFraction()
	size := float64(n.ls.Size())
	if span <= 0 || size == 0 {
		return size + 1
	}
	est := size / span
	if est < size+1 {
		est = size + 1
	}
	return est
}

// estimateMu estimates the per-node failure rate from the failure history:
// k failures among M monitored nodes over the history's time span. With a
// short history the current time acts as a virtual last failure, as in the
// paper.
func (n *Node) estimateMu(now time.Duration) float64 {
	m := n.monitoredNodes()
	if m == 0 {
		return 0
	}
	hist := n.failureHist
	if len(hist) == 0 {
		hist = []time.Duration{n.joinStart}
	}
	var k float64
	var span time.Duration
	if len(hist) >= n.cfg.FailureHistoryK {
		k = float64(len(hist) - 1)
		span = hist[len(hist)-1] - hist[0]
	} else {
		k = float64(len(hist))
		span = now - hist[0]
	}
	if span <= 0 {
		return 0
	}
	return k / (float64(m) * span.Seconds())
}

// monitoredNodes counts the unique nodes in the routing state.
func (n *Node) monitoredNodes() int {
	unique := make(map[string]struct{}, n.rt.Count()+n.ls.Size())
	for _, e := range n.rt.Entries() {
		unique[e.Addr] = struct{}{}
	}
	for _, e := range n.ls.Members() {
		unique[e.Addr] = struct{}{}
	}
	return len(unique)
}

// retune recomputes the local Trt estimate and adopts the median of the
// local value and the peers' advertised values, bounded below by
// (retries+1)*To.
func (n *Node) retune(now time.Duration) {
	mu := n.estimateMu(now)
	est := n.estimateN()
	hops := expectedHops(est, n.cfg.B)
	minSec := n.cfg.MinTrt().Seconds()
	maxSec := maxTrt.Seconds()
	var local float64
	if mu <= 0 {
		local = maxSec
	} else {
		local = solveTrt(n.cfg.TargetRawLoss, n.cfg.Tls.Seconds(), n.cfg.To.Seconds(),
			mu, hops, n.cfg.MaxProbeRetries, minSec, maxSec)
	}
	n.trtLocal = time.Duration(local * float64(time.Second))
	vals := make([]time.Duration, 0, n.peers.SlotCount(n.slotHint)+1)
	vals = append(vals, n.trtLocal)
	n.peers.Each(func(rec *peer.Record) {
		if h, _ := rec.Get(n.slotHint).(*trtHint); h != nil {
			vals = append(vals, h.d)
		}
	})
	n.trtCurrent = clampDuration(medianDuration(vals), n.cfg.MinTrt(), maxTrt)
	if n.sobs != nil {
		n.sobs.TrtTuned(n, n.trtCurrent)
	}
}
