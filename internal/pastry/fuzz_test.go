package pastry

import (
	"reflect"
	"testing"
	"time"

	"mspastry/internal/id"
)

// FuzzDecodeMessage asserts the message decoder is total — arbitrary peer
// bytes either parse or error, never panic or over-allocate — and that
// accepted messages survive an encode/decode round trip exactly.
func FuzzDecodeMessage(f *testing.F) {
	from := NodeRef{ID: id.New(1, 2), Addr: "127.0.0.1:9000"}
	to := NodeRef{ID: id.New(3, 4), Addr: "127.0.0.1:9001"}
	seeds := []Message{
		&Heartbeat{From: from, TrtHint: 30 * time.Second},
		&Ack{Xfer: 7, From: from, TrtHint: time.Second},
		&LSProbe{From: from, Leaves: []NodeRef{to}, Failed: []NodeRef{from}, NeedNear: true},
		&RTProbe{From: from},
		&JoinReply{Rows: []NodeRef{to}, Leaves: []NodeRef{from}},
		&AppDirect{From: from, Payload: []byte("payload")},
	}
	for _, m := range seeds {
		f.Add(EncodeMessage(m))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMessage(data)
		if err != nil {
			return
		}
		back := AppendMessage(nil, m)
		m2, err := DecodeMessage(back)
		if err != nil {
			t.Fatalf("re-encoding of accepted %x does not decode: %v", data, err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("round trip changed message for %x: %#v != %#v", data, m, m2)
		}
		if m.Category() != m2.Category() {
			t.Fatalf("category changed across round trip for %x", data)
		}
	})
}
