package pastry

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"time"

	"mspastry/internal/id"
)

// Wire format: a 1-byte message tag followed by the message fields in a
// fixed order. Integers are unsigned varints, durations are varint
// nanoseconds, node references are 16 raw identifier bytes plus a
// length-prefixed address, and slices carry a varint element count. The
// message format itself is versionless; versioning lives one layer down,
// in the internal/wire frame header that every transported message is
// wrapped in (see DESIGN.md "Wire format & batching").

const (
	tagLookupEnvelope byte = iota + 1
	tagAck
	tagLSProbe
	tagLSProbeReply
	tagHeartbeat
	tagRTProbe
	tagRTProbeReply
	tagJoinReply
	tagDistProbe
	tagDistProbeReply
	tagDistReport
	tagRowRequest
	tagRowReply
	tagRowAnnounce
	tagRepairRequest
	tagRepairReply
	tagNNStateRequest
	tagNNStateReply
	tagAppDirect
	tagRootReport
)

// maxWireSlice bounds decoded slice lengths to keep a malformed or
// malicious packet from causing huge allocations.
const maxWireSlice = 4096

// EncodeMessage serialises a message into a fresh buffer. Hot paths
// should prefer AppendMessage with a pooled or reused buffer.
func EncodeMessage(m Message) []byte {
	return AppendMessage(make([]byte, 0, 256), m)
}

// AppendMessage serialises a message onto buf and returns the extended
// slice, allocating only when buf's capacity is exhausted. It panics on
// unknown message types (a programming error).
func AppendMessage(buf []byte, m Message) []byte {
	switch msg := m.(type) {
	case *Envelope:
		buf = append(buf, tagLookupEnvelope)
		buf = binary.AppendUvarint(buf, msg.Xfer)
		buf = appendBool(buf, msg.NeedAck)
		buf = appendBool(buf, msg.Retx)
		buf = appendRef(buf, msg.From)
		buf = appendDuration(buf, msg.TrtHint)
		buf = appendBool(buf, msg.Lookup != nil)
		if msg.Lookup != nil {
			buf = appendLookup(buf, msg.Lookup)
		}
		buf = appendBool(buf, msg.Join != nil)
		if msg.Join != nil {
			buf = appendJoin(buf, msg.Join)
		}
	case *Ack:
		buf = append(buf, tagAck)
		buf = binary.AppendUvarint(buf, msg.Xfer)
		buf = appendRef(buf, msg.From)
		buf = appendDuration(buf, msg.TrtHint)
	case *LSProbe:
		buf = append(buf, tagLSProbe)
		buf = appendRef(buf, msg.From)
		buf = appendRefs(buf, msg.Leaves)
		buf = appendRefs(buf, msg.Failed)
		buf = appendBool(buf, msg.NeedNear)
		buf = appendDuration(buf, msg.TrtHint)
	case *LSProbeReply:
		buf = append(buf, tagLSProbeReply)
		buf = appendRef(buf, msg.From)
		buf = appendRefs(buf, msg.Leaves)
		buf = appendRefs(buf, msg.Failed)
		buf = appendRefs(buf, msg.Near)
		buf = appendDuration(buf, msg.TrtHint)
	case *Heartbeat:
		buf = append(buf, tagHeartbeat)
		buf = appendRef(buf, msg.From)
		buf = appendDuration(buf, msg.TrtHint)
	case *RTProbe:
		buf = append(buf, tagRTProbe)
		buf = appendRef(buf, msg.From)
		buf = appendDuration(buf, msg.TrtHint)
	case *RTProbeReply:
		buf = append(buf, tagRTProbeReply)
		buf = appendRef(buf, msg.From)
		buf = appendDuration(buf, msg.TrtHint)
	case *JoinReply:
		buf = append(buf, tagJoinReply)
		buf = appendRefs(buf, msg.Rows)
		buf = appendRefs(buf, msg.Leaves)
	case *DistProbe:
		buf = append(buf, tagDistProbe)
		buf = appendRef(buf, msg.From)
		buf = binary.AppendUvarint(buf, msg.Seq)
	case *DistProbeReply:
		buf = append(buf, tagDistProbeReply)
		buf = appendRef(buf, msg.From)
		buf = binary.AppendUvarint(buf, msg.Seq)
	case *DistReport:
		buf = append(buf, tagDistReport)
		buf = appendRef(buf, msg.From)
		buf = appendDuration(buf, msg.RTT)
	case *RowRequest:
		buf = append(buf, tagRowRequest)
		buf = appendRef(buf, msg.From)
		buf = binary.AppendUvarint(buf, uint64(msg.Row))
	case *RowReply:
		buf = append(buf, tagRowReply)
		buf = appendRef(buf, msg.From)
		buf = binary.AppendUvarint(buf, uint64(msg.Row))
		buf = appendRefs(buf, msg.Entries)
	case *RowAnnounce:
		buf = append(buf, tagRowAnnounce)
		buf = appendRef(buf, msg.From)
		buf = binary.AppendUvarint(buf, uint64(msg.Row))
		buf = appendRefs(buf, msg.Entries)
	case *RepairRequest:
		buf = append(buf, tagRepairRequest)
		buf = appendRef(buf, msg.From)
		buf = binary.AppendUvarint(buf, uint64(msg.Row))
		buf = binary.AppendUvarint(buf, uint64(msg.Col))
	case *RepairReply:
		buf = append(buf, tagRepairReply)
		buf = appendRef(buf, msg.From)
		buf = binary.AppendUvarint(buf, uint64(msg.Row))
		buf = binary.AppendUvarint(buf, uint64(msg.Col))
		buf = appendRefs(buf, msg.Entries)
	case *NNStateRequest:
		buf = append(buf, tagNNStateRequest)
		buf = appendRef(buf, msg.From)
	case *NNStateReply:
		buf = append(buf, tagNNStateReply)
		buf = appendRef(buf, msg.From)
		buf = appendRefs(buf, msg.Leaves)
		buf = appendRefs(buf, msg.Entries)
	case *AppDirect:
		buf = append(buf, tagAppDirect)
		buf = appendRef(buf, msg.From)
		buf = binary.AppendUvarint(buf, uint64(len(msg.Payload)))
		buf = append(buf, msg.Payload...)
	case *RootReport:
		buf = append(buf, tagRootReport)
		buf = appendRef(buf, msg.From)
		buf = binary.AppendUvarint(buf, msg.Seq)
		buf = append(buf, msg.Key.Bytes()...)
		buf = appendRefs(buf, msg.Leaves)
		buf = appendDuration(buf, msg.TrtHint)
	default:
		panic(fmt.Sprintf("pastry: cannot encode %T", m))
	}
	return buf
}

// MessageWireSize returns len(AppendMessage(nil, m)) — the encoded size
// of a message — without encoding anything. The simulator charges every
// send its single-frame size through this function, so it sits on the
// hottest path in the process: the size is computed arithmetically,
// mirroring AppendMessage field for field (TestMessageWireSizeMatchesEncoding
// pins the equivalence).
func MessageWireSize(m Message) int {
	switch msg := m.(type) {
	case *Envelope:
		n := 1 + uvarintLen(msg.Xfer) + 2 + refSize(msg.From) +
			durationLen(msg.TrtHint) + 2
		if msg.Lookup != nil {
			n += lookupSize(msg.Lookup)
		}
		if msg.Join != nil {
			n += joinSize(msg.Join)
		}
		return n
	case *Ack:
		return 1 + uvarintLen(msg.Xfer) + refSize(msg.From) + durationLen(msg.TrtHint)
	case *LSProbe:
		return 1 + refSize(msg.From) + refsSize(msg.Leaves) + refsSize(msg.Failed) +
			1 + durationLen(msg.TrtHint)
	case *LSProbeReply:
		return 1 + refSize(msg.From) + refsSize(msg.Leaves) + refsSize(msg.Failed) +
			refsSize(msg.Near) + durationLen(msg.TrtHint)
	case *Heartbeat:
		return 1 + refSize(msg.From) + durationLen(msg.TrtHint)
	case *RTProbe:
		return 1 + refSize(msg.From) + durationLen(msg.TrtHint)
	case *RTProbeReply:
		return 1 + refSize(msg.From) + durationLen(msg.TrtHint)
	case *JoinReply:
		return 1 + refsSize(msg.Rows) + refsSize(msg.Leaves)
	case *DistProbe:
		return 1 + refSize(msg.From) + uvarintLen(msg.Seq)
	case *DistProbeReply:
		return 1 + refSize(msg.From) + uvarintLen(msg.Seq)
	case *DistReport:
		return 1 + refSize(msg.From) + durationLen(msg.RTT)
	case *RowRequest:
		return 1 + refSize(msg.From) + uvarintLen(uint64(msg.Row))
	case *RowReply:
		return 1 + refSize(msg.From) + uvarintLen(uint64(msg.Row)) + refsSize(msg.Entries)
	case *RowAnnounce:
		return 1 + refSize(msg.From) + uvarintLen(uint64(msg.Row)) + refsSize(msg.Entries)
	case *RepairRequest:
		return 1 + refSize(msg.From) + uvarintLen(uint64(msg.Row)) + uvarintLen(uint64(msg.Col))
	case *RepairReply:
		return 1 + refSize(msg.From) + uvarintLen(uint64(msg.Row)) +
			uvarintLen(uint64(msg.Col)) + refsSize(msg.Entries)
	case *NNStateRequest:
		return 1 + refSize(msg.From)
	case *NNStateReply:
		return 1 + refSize(msg.From) + refsSize(msg.Leaves) + refsSize(msg.Entries)
	case *AppDirect:
		return 1 + refSize(msg.From) + uvarintLen(uint64(len(msg.Payload))) + len(msg.Payload)
	case *RootReport:
		return 1 + refSize(msg.From) + uvarintLen(msg.Seq) + 16 +
			refsSize(msg.Leaves) + durationLen(msg.TrtHint)
	default:
		panic(fmt.Sprintf("pastry: cannot size %T", m))
	}
}

// uvarintLen is the encoded length of binary.AppendUvarint(nil, v).
func uvarintLen(v uint64) int { return (bits.Len64(v|1) + 6) / 7 }

// varintLen is the encoded length of binary.AppendVarint(nil, v)
// (zig-zag followed by uvarint).
func varintLen(v int64) int { return uvarintLen(uint64(v)<<1 ^ uint64(v>>63)) }

func durationLen(d time.Duration) int { return varintLen(int64(d)) }

func refSize(r NodeRef) int { return 16 + uvarintLen(uint64(len(r.Addr))) + len(r.Addr) }

func refsSize(refs []NodeRef) int {
	n := uvarintLen(uint64(len(refs)))
	for _, r := range refs {
		n += refSize(r)
	}
	return n
}

func lookupSize(lk *Lookup) int {
	return 16 + uvarintLen(lk.Seq) + uvarintLen(lk.TraceID) + refSize(lk.Origin) +
		durationLen(lk.Issued) + uvarintLen(uint64(lk.Hops)) + 2 +
		uvarintLen(uint64(len(lk.Payload))) + len(lk.Payload)
}

func joinSize(jr *JoinRequest) int {
	return refSize(jr.Joiner) + refsSize(jr.Rows) + uvarintLen(uint64(jr.Hops))
}

// DecodeMessage parses a wire message.
func DecodeMessage(buf []byte) (Message, error) {
	if len(buf) == 0 {
		return nil, fmt.Errorf("pastry: empty message")
	}
	d := &decoder{buf: buf[1:]}
	var m Message
	switch buf[0] {
	case tagLookupEnvelope:
		env := &Envelope{}
		env.Xfer = d.uvarint()
		env.NeedAck = d.bool()
		env.Retx = d.bool()
		env.From = d.ref()
		env.TrtHint = d.duration()
		if d.bool() {
			env.Lookup = d.lookup()
		}
		if d.bool() {
			env.Join = d.join()
		}
		m = env
	case tagAck:
		m = &Ack{Xfer: d.uvarint(), From: d.ref(), TrtHint: d.duration()}
	case tagLSProbe:
		m = &LSProbe{From: d.ref(), Leaves: d.refs(), Failed: d.refs(), NeedNear: d.bool(), TrtHint: d.duration()}
	case tagLSProbeReply:
		m = &LSProbeReply{From: d.ref(), Leaves: d.refs(), Failed: d.refs(), Near: d.refs(), TrtHint: d.duration()}
	case tagHeartbeat:
		m = &Heartbeat{From: d.ref(), TrtHint: d.duration()}
	case tagRTProbe:
		m = &RTProbe{From: d.ref(), TrtHint: d.duration()}
	case tagRTProbeReply:
		m = &RTProbeReply{From: d.ref(), TrtHint: d.duration()}
	case tagJoinReply:
		m = &JoinReply{Rows: d.refs(), Leaves: d.refs()}
	case tagDistProbe:
		m = &DistProbe{From: d.ref(), Seq: d.uvarint()}
	case tagDistProbeReply:
		m = &DistProbeReply{From: d.ref(), Seq: d.uvarint()}
	case tagDistReport:
		m = &DistReport{From: d.ref(), RTT: d.duration()}
	case tagRowRequest:
		m = &RowRequest{From: d.ref(), Row: d.int()}
	case tagRowReply:
		m = &RowReply{From: d.ref(), Row: d.int(), Entries: d.refs()}
	case tagRowAnnounce:
		m = &RowAnnounce{From: d.ref(), Row: d.int(), Entries: d.refs()}
	case tagRepairRequest:
		m = &RepairRequest{From: d.ref(), Row: d.int(), Col: d.int()}
	case tagRepairReply:
		m = &RepairReply{From: d.ref(), Row: d.int(), Col: d.int(), Entries: d.refs()}
	case tagNNStateRequest:
		m = &NNStateRequest{From: d.ref()}
	case tagNNStateReply:
		m = &NNStateReply{From: d.ref(), Leaves: d.refs(), Entries: d.refs()}
	case tagAppDirect:
		ad := &AppDirect{From: d.ref()}
		plen := d.uvarint()
		if plen > 1<<20 {
			d.fail("payload too long")
			break
		}
		if plen > 0 {
			ad.Payload = append([]byte(nil), d.take(int(plen))...)
		}
		m = ad
	case tagRootReport:
		rr := &RootReport{From: d.ref(), Seq: d.uvarint()}
		if raw := d.take(16); raw != nil {
			rr.Key = id.FromBytes(raw)
		}
		rr.Leaves = d.refs()
		rr.TrtHint = d.duration()
		m = rr
	default:
		return nil, fmt.Errorf("pastry: unknown message tag %d", buf[0])
	}
	if d.err != nil {
		return nil, fmt.Errorf("pastry: decode tag %d: %w", buf[0], d.err)
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("pastry: %d trailing bytes after tag %d", len(d.buf), buf[0])
	}
	return m, nil
}

func appendBool(buf []byte, v bool) []byte {
	if v {
		return append(buf, 1)
	}
	return append(buf, 0)
}

func appendRef(buf []byte, r NodeRef) []byte {
	buf = append(buf, r.ID.Bytes()...)
	buf = binary.AppendUvarint(buf, uint64(len(r.Addr)))
	return append(buf, r.Addr...)
}

func appendRefs(buf []byte, refs []NodeRef) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(refs)))
	for _, r := range refs {
		buf = appendRef(buf, r)
	}
	return buf
}

func appendDuration(buf []byte, d time.Duration) []byte {
	return binary.AppendVarint(buf, int64(d))
}

func appendLookup(buf []byte, lk *Lookup) []byte {
	buf = append(buf, lk.Key.Bytes()...)
	buf = binary.AppendUvarint(buf, lk.Seq)
	buf = binary.AppendUvarint(buf, lk.TraceID)
	buf = appendRef(buf, lk.Origin)
	buf = appendDuration(buf, lk.Issued)
	buf = binary.AppendUvarint(buf, uint64(lk.Hops))
	buf = appendBool(buf, lk.NoAck)
	buf = appendBool(buf, lk.WantReport)
	buf = binary.AppendUvarint(buf, uint64(len(lk.Payload)))
	return append(buf, lk.Payload...)
}

func appendJoin(buf []byte, jr *JoinRequest) []byte {
	buf = appendRef(buf, jr.Joiner)
	buf = appendRefs(buf, jr.Rows)
	return binary.AppendUvarint(buf, uint64(jr.Hops))
}

type decoder struct {
	buf []byte
	err error
}

func (d *decoder) fail(msg string) {
	if d.err == nil {
		d.err = fmt.Errorf("%s", msg)
	}
}

func (d *decoder) take(n int) []byte {
	if d.err != nil || len(d.buf) < n {
		d.fail("short buffer")
		return nil
	}
	out := d.buf[:n]
	d.buf = d.buf[n:]
	return out
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) bool() bool {
	b := d.take(1)
	return len(b) == 1 && b[0] != 0
}

func (d *decoder) int() int { return int(d.uvarint()) }

func (d *decoder) duration() time.Duration { return time.Duration(d.varint()) }

func (d *decoder) ref() NodeRef {
	raw := d.take(16)
	if raw == nil {
		return NodeRef{}
	}
	x := id.FromBytes(raw)
	alen := d.uvarint()
	if alen > maxWireSlice {
		d.fail("address too long")
		return NodeRef{}
	}
	addr := d.take(int(alen))
	return NodeRef{ID: x, Addr: string(addr)}
}

func (d *decoder) refs() []NodeRef {
	n := d.uvarint()
	if n > maxWireSlice {
		d.fail("slice too long")
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]NodeRef, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		out = append(out, d.ref())
	}
	return out
}

func (d *decoder) lookup() *Lookup {
	raw := d.take(16)
	if raw == nil {
		return nil
	}
	lk := &Lookup{Key: id.FromBytes(raw)}
	lk.Seq = d.uvarint()
	lk.TraceID = d.uvarint()
	lk.Origin = d.ref()
	lk.Issued = d.duration()
	lk.Hops = d.int()
	lk.NoAck = d.bool()
	lk.WantReport = d.bool()
	plen := d.uvarint()
	if plen > 1<<20 {
		d.fail("payload too long")
		return nil
	}
	if plen > 0 {
		lk.Payload = append([]byte(nil), d.take(int(plen))...)
	}
	return lk
}

func (d *decoder) join() *JoinRequest {
	jr := &JoinRequest{Joiner: d.ref(), Rows: d.refs()}
	jr.Hops = d.int()
	return jr
}
