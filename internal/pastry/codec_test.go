package pastry

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"mspastry/internal/id"
)

func randRef(rng *rand.Rand) NodeRef {
	return NodeRef{ID: id.Random(rng), Addr: "127.0.0.1:12345"}
}

func randRefs(rng *rand.Rand, n int) []NodeRef {
	if n == 0 {
		return nil
	}
	out := make([]NodeRef, n)
	for i := range out {
		out[i] = randRef(rng)
	}
	return out
}

func sampleMessages(rng *rand.Rand) []Message {
	return []Message{
		&Envelope{Xfer: rng.Uint64(), NeedAck: true, From: randRef(rng), TrtHint: time.Minute,
			Lookup: &Lookup{Key: id.Random(rng), Seq: 7, Origin: randRef(rng), Issued: 3 * time.Second, Hops: 2, Payload: []byte("hello")}},
		&Envelope{Xfer: 1, Retx: true, From: randRef(rng),
			Join: &JoinRequest{Joiner: randRef(rng), Rows: randRefs(rng, 5), Hops: 3}},
		&Envelope{Xfer: 2, From: randRef(rng), Lookup: &Lookup{Key: id.Random(rng), Origin: randRef(rng), NoAck: true}},
		&Ack{Xfer: 42, From: randRef(rng), TrtHint: 90 * time.Second},
		&LSProbe{From: randRef(rng), Leaves: randRefs(rng, 8), Failed: randRefs(rng, 2), NeedNear: true, TrtHint: time.Second},
		&LSProbe{From: randRef(rng)},
		&LSProbeReply{From: randRef(rng), Leaves: randRefs(rng, 16), Failed: nil, Near: randRefs(rng, 33), TrtHint: 0},
		&Heartbeat{From: randRef(rng), TrtHint: 5 * time.Minute},
		&RTProbe{From: randRef(rng)},
		&RTProbeReply{From: randRef(rng), TrtHint: time.Hour},
		&JoinReply{Rows: randRefs(rng, 40), Leaves: randRefs(rng, 32)},
		&DistProbe{From: randRef(rng), Seq: 99},
		&DistProbeReply{From: randRef(rng), Seq: 99},
		&DistReport{From: randRef(rng), RTT: 83 * time.Millisecond},
		&RowRequest{From: randRef(rng), Row: 3},
		&RowReply{From: randRef(rng), Row: 3, Entries: randRefs(rng, 15)},
		&RowAnnounce{From: randRef(rng), Row: 0, Entries: randRefs(rng, 15)},
		&RepairRequest{From: randRef(rng), Row: 2, Col: 11},
		&RepairReply{From: randRef(rng), Row: 2, Col: 11, Entries: randRefs(rng, 4)},
		&NNStateRequest{From: randRef(rng)},
		&NNStateReply{From: randRef(rng), Leaves: randRefs(rng, 10), Entries: randRefs(rng, 20)},
		&AppDirect{From: randRef(rng), Payload: []byte("response body")},
		&AppDirect{From: randRef(rng)},
	}
}

func TestCodecRoundTripAll(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, m := range sampleMessages(rng) {
		buf := EncodeMessage(m)
		got, err := DecodeMessage(buf)
		if err != nil {
			t.Fatalf("%T: decode: %v", m, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Fatalf("%T round trip mismatch:\n  in:  %#v\n  out: %#v", m, m, got)
		}
	}
}

func TestCodecDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, m := range sampleMessages(rng) {
		a := EncodeMessage(m)
		b := EncodeMessage(m)
		if string(a) != string(b) {
			t.Fatalf("%T: non-deterministic encoding", m)
		}
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0},    // tag 0 invalid
		{0xff}, // unknown tag
		{tagAck},
		{tagLSProbe, 1, 2, 3},
	}
	for _, c := range cases {
		if _, err := DecodeMessage(c); err == nil {
			t.Fatalf("garbage %v accepted", c)
		}
	}
}

func TestCodecRejectsTrailingBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	buf := EncodeMessage(&Heartbeat{From: randRef(rng)})
	buf = append(buf, 0xaa)
	if _, err := DecodeMessage(buf); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestCodecRejectsOversizedSlices(t *testing.T) {
	// Hand-craft an LSProbe claiming 2^40 leaves.
	rng := rand.New(rand.NewSource(4))
	buf := []byte{tagLSProbe}
	buf = appendRef(buf, randRef(rng))
	buf = append(buf, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01) // huge uvarint
	if _, err := DecodeMessage(buf); err == nil {
		t.Fatal("oversized slice accepted")
	}
}

func TestCodecFuzzNoPanics(t *testing.T) {
	// Decoding arbitrary bytes must never panic; it may error.
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("decode panicked on %v: %v", data, r)
			}
		}()
		_, _ = DecodeMessage(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecTruncationNoPanics(t *testing.T) {
	// Every prefix of every valid message must decode cleanly or error,
	// never panic.
	rng := rand.New(rand.NewSource(5))
	for _, m := range sampleMessages(rng) {
		buf := EncodeMessage(m)
		for cut := 0; cut < len(buf); cut++ {
			if _, err := DecodeMessage(buf[:cut]); err == nil && cut < len(buf) {
				// A strict prefix that decodes without error would be a
				// framing ambiguity.
				t.Fatalf("%T: prefix of %d/%d bytes decoded cleanly", m, cut, len(buf))
			}
		}
	}
}

func BenchmarkCodecEncodeLookupEnvelope(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	env := &Envelope{Xfer: 9, NeedAck: true, From: randRef(rng),
		Lookup: &Lookup{Key: id.Random(rng), Seq: 7, Origin: randRef(rng), Payload: make([]byte, 64)}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EncodeMessage(env)
	}
}

func BenchmarkCodecDecodeLookupEnvelope(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	buf := EncodeMessage(&Envelope{Xfer: 9, NeedAck: true, From: randRef(rng),
		Lookup: &Lookup{Key: id.Random(rng), Seq: 7, Origin: randRef(rng), Payload: make([]byte, 64)}})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeMessage(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// TestMessageWireSizeMatchesEncoding pins the arithmetic size computation
// to the real encoder for every message type, including varint boundary
// values (0, 127, 128, max) and negative durations.
func TestMessageWireSizeMatchesEncoding(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	msgs := sampleMessages(rng)
	msgs = append(msgs,
		&RootReport{From: randRef(rng), Seq: 77, Key: id.Random(rng),
			Leaves: randRefs(rng, 9), TrtHint: 45 * time.Second},
		&RootReport{From: randRef(rng)},
		&Ack{Xfer: 0, From: NodeRef{ID: id.Random(rng)}, TrtHint: -time.Second},
		&Ack{Xfer: 127, From: randRef(rng)},
		&Ack{Xfer: 128, From: randRef(rng)},
		&Ack{Xfer: ^uint64(0), From: randRef(rng), TrtHint: time.Duration(^uint64(0) >> 1)},
		&Envelope{Xfer: 300, From: randRef(rng), TrtHint: -time.Hour,
			Lookup: &Lookup{Key: id.Random(rng), Seq: ^uint64(0), TraceID: 1 << 50,
				Origin: randRef(rng), Issued: -time.Minute, Hops: 200,
				WantReport: true, Payload: make([]byte, 300)}},
	)
	for _, m := range msgs {
		if got, want := MessageWireSize(m), len(AppendMessage(nil, m)); got != want {
			t.Errorf("MessageWireSize(%T) = %d, want %d", m, got, want)
		}
	}
}
