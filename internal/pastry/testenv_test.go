package pastry

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"mspastry/internal/eventsim"
	"mspastry/internal/id"
)

// testNet is a minimal in-package network for protocol unit tests: uniform
// delay, optional per-message drop hook, full traffic log.
type testNet struct {
	t     *testing.T
	sim   *eventsim.Simulator
	nodes map[string]*Node
	delay time.Duration
	// delayFn, if set, overrides the uniform delay per node pair.
	delayFn func(from, to NodeRef) time.Duration
	// drop decides whether to lose a message (nil = deliver all).
	drop func(from NodeRef, to NodeRef, m Message) bool
	sent map[Category]int
}

func newTestNet(t *testing.T, seed int64) *testNet {
	t.Helper()
	return &testNet{
		t:     t,
		sim:   eventsim.New(seed),
		nodes: make(map[string]*Node),
		delay: 10 * time.Millisecond,
		sent:  make(map[Category]int),
	}
}

type testEnv struct {
	net  *testNet
	addr string
	self NodeRef
}

func (e *testEnv) Now() time.Duration { return e.net.sim.Now() }

func (e *testEnv) Rand() *rand.Rand { return e.net.sim.Rand() }

func (e *testEnv) Schedule(d time.Duration, fn func()) Timer {
	return e.net.sim.After(d, fn)
}

func (e *testEnv) Send(to NodeRef, m Message) {
	net := e.net
	net.sent[m.Category()]++
	if net.drop != nil && net.drop(e.self, to, m) {
		return
	}
	d := net.delay
	if net.delayFn != nil {
		d = net.delayFn(e.self, to)
	}
	net.sim.After(d, func() {
		if dst, ok := net.nodes[to.Addr]; ok && dst.Alive() && dst.Ref().ID == to.ID {
			dst.Receive(m)
		}
	})
}

// addNode creates a node with the given identifier on the test network.
func (net *testNet) addNode(x id.ID, cfg Config, obs Observer) *Node {
	addr := fmt.Sprintf("t%d", len(net.nodes))
	self := NodeRef{ID: x, Addr: addr}
	env := &testEnv{net: net, addr: addr, self: self}
	n, err := NewNode(self, cfg, env, obs)
	if err != nil {
		net.t.Fatalf("NewNode: %v", err)
	}
	net.nodes[addr] = n
	return n
}

// run advances the simulation by d.
func (net *testNet) run(d time.Duration) {
	net.sim.RunUntil(net.sim.Now() + d)
}

// testConfig returns a config suitable for small fast tests: no PNS (joins
// go straight through the seed), small leaf sets.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.L = 8
	cfg.PNS = false
	return cfg
}

// newTestNode builds a single standalone node for estimator unit tests.
func newTestNode(t *testing.T, x id.ID) *Node {
	t.Helper()
	net := newTestNet(t, 1)
	return net.addNode(x, testConfig(), nil)
}

// buildOverlay bootstraps n nodes with evenly spread random ids and waits
// for all of them to activate. Returns the nodes in join order.
func buildOverlay(t *testing.T, net *testNet, n int, cfg Config) []*Node {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	nodes := make([]*Node, 0, n)
	first := net.addNode(id.Random(rng), cfg, nil)
	first.Bootstrap()
	nodes = append(nodes, first)
	for i := 1; i < n; i++ {
		node := net.addNode(id.Random(rng), cfg, nil)
		seed := nodes[net.sim.Rand().Intn(len(nodes))]
		node.Join(seed.Ref())
		nodes = append(nodes, node)
		net.run(10 * time.Second)
	}
	net.run(time.Minute)
	for i, node := range nodes {
		if !node.Active() {
			t.Fatalf("node %d (%v) never activated", i, node.Ref().ID)
		}
	}
	return nodes
}

// trueRoot returns the live active node whose id is closest to key.
func trueRoot(nodes []*Node, key id.ID) *Node {
	var best *Node
	for _, n := range nodes {
		if !n.Alive() || !n.Active() {
			continue
		}
		if best == nil || id.CloserToKey(key, n.Ref().ID, best.Ref().ID) {
			best = n
		}
	}
	return best
}

// deliveryRecorder captures Delivered/Dropped events.
type deliveryRecorder struct {
	delivered map[uint64]NodeRef // seq -> delivering node
	dropped   map[uint64]DropReason
	activated int
}

func newRecorder() *deliveryRecorder {
	return &deliveryRecorder{
		delivered: make(map[uint64]NodeRef),
		dropped:   make(map[uint64]DropReason),
	}
}

func (r *deliveryRecorder) Activated(*Node, time.Duration) { r.activated++ }

func (r *deliveryRecorder) Delivered(n *Node, lk *Lookup) {
	r.delivered[lk.Seq] = n.Ref()
}

func (r *deliveryRecorder) LookupDropped(n *Node, lk *Lookup, reason DropReason) {
	r.dropped[lk.Seq] = reason
}
