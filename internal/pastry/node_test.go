package pastry

import (
	"math/rand"
	"testing"
	"time"

	"mspastry/internal/id"
)

func TestBootstrapSingleton(t *testing.T) {
	net := newTestNet(t, 1)
	rec := newRecorder()
	n := net.addNode(id.New(1, 2), testConfig(), rec)
	n.Bootstrap()
	if !n.Active() {
		t.Fatal("bootstrap node should be active immediately")
	}
	// A singleton delivers its own lookups.
	seq, ok := n.Lookup(id.New(9, 9), nil)
	if !ok {
		t.Fatal("lookup refused")
	}
	net.run(time.Second)
	if got := rec.delivered[seq]; got.ID != n.Ref().ID {
		t.Fatalf("lookup delivered at %v, want self", got)
	}
}

func TestTwoNodeJoin(t *testing.T) {
	net := newTestNet(t, 2)
	a := net.addNode(id.New(0, 100), testConfig(), nil)
	b := net.addNode(id.New(1<<63, 100), testConfig(), nil)
	a.Bootstrap()
	b.Join(a.Ref())
	net.run(10 * time.Second)
	if !b.Active() {
		t.Fatal("joiner did not activate")
	}
	if !a.Leaf().Contains(b.Ref().ID) {
		t.Fatal("bootstrap node did not learn the joiner")
	}
	if !b.Leaf().Contains(a.Ref().ID) {
		t.Fatal("joiner did not learn the bootstrap node")
	}
}

func TestOverlayRingConsistency(t *testing.T) {
	net := newTestNet(t, 3)
	nodes := buildOverlay(t, net, 24, testConfig())
	// Every node's immediate neighbours must match the global membership.
	ids := make([]id.ID, len(nodes))
	for i, n := range nodes {
		ids[i] = n.Ref().ID
	}
	for _, n := range nodes {
		self := n.Ref().ID
		var wantRight id.ID
		first := true
		for _, other := range ids {
			if other == self {
				continue
			}
			if first || self.Clockwise(other).Cmp(self.Clockwise(wantRight)) < 0 {
				wantRight = other
				first = false
			}
		}
		right, ok := n.Leaf().RightNeighbour()
		if !ok || right.ID != wantRight {
			t.Fatalf("node %v right neighbour = %v, want %v", self, right.ID, wantRight)
		}
	}
}

func TestLookupsReachTrueRoot(t *testing.T) {
	net := newTestNet(t, 4)
	rec := newRecorder()
	cfg := testConfig()
	nodes := buildOverlayObs(t, net, 20, cfg, rec)
	rng := rand.New(rand.NewSource(5))
	type issue struct {
		seq  uint64
		want id.ID
		from int
	}
	var issues []issue
	for i := 0; i < 100; i++ {
		key := id.Random(rng)
		src := nodes[rng.Intn(len(nodes))]
		want := trueRoot(nodes, key).Ref().ID
		seq, ok := src.Lookup(key, nil)
		if !ok {
			t.Fatal("lookup refused")
		}
		issues = append(issues, issue{seq: seq, want: want, from: rng.Intn(len(nodes))})
		net.run(time.Second)
	}
	net.run(10 * time.Second)
	// Sequence numbers are per-origin; with churn-free overlays every
	// delivery must land at the true root. Since several origins share
	// seq values we only check totals and roots by seq uniqueness per
	// origin — here every origin issues distinct seqs, so collisions can
	// occur across origins. Count deliveries instead.
	if len(rec.delivered) == 0 {
		t.Fatal("no lookups delivered")
	}
	if len(rec.dropped) != 0 {
		t.Fatalf("drops in a failure-free overlay: %v", rec.dropped)
	}
}

// buildOverlayObs is buildOverlay with an observer attached to every node.
func buildOverlayObs(t *testing.T, net *testNet, n int, cfg Config, obs Observer) []*Node {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	nodes := make([]*Node, 0, n)
	first := net.addNode(id.Random(rng), cfg, obs)
	first.Bootstrap()
	nodes = append(nodes, first)
	for i := 1; i < n; i++ {
		node := net.addNode(id.Random(rng), cfg, obs)
		node.Join(nodes[net.sim.Rand().Intn(len(nodes))].Ref())
		nodes = append(nodes, node)
		net.run(10 * time.Second)
	}
	net.run(time.Minute)
	for i, node := range nodes {
		if !node.Active() {
			t.Fatalf("node %d never activated", i)
		}
	}
	return nodes
}

func TestLookupDeliveredAtCorrectRootPerKey(t *testing.T) {
	net := newTestNet(t, 6)
	cfg := testConfig()
	rec := newRecorder()
	nodes := buildOverlayObs(t, net, 16, cfg, rec)
	rng := rand.New(rand.NewSource(6))
	src := nodes[3]
	for i := 0; i < 50; i++ {
		key := id.Random(rng)
		want := trueRoot(nodes, key).Ref()
		seq, _ := src.Lookup(key, nil)
		net.run(5 * time.Second)
		got, ok := rec.delivered[seq]
		if !ok {
			t.Fatalf("lookup %d not delivered", seq)
		}
		if got.ID != want.ID {
			t.Fatalf("lookup for %v delivered at %v, want %v", key, got.ID, want.ID)
		}
	}
}

func TestFailureDetectionRepairsLeafSets(t *testing.T) {
	net := newTestNet(t, 7)
	cfg := testConfig()
	nodes := buildOverlay(t, net, 16, cfg)
	victim := nodes[7]
	victim.Fail()
	// Heartbeat period 30s + probe timeouts (3 retries x 3s) + slack.
	net.run(3 * time.Minute)
	for i, n := range nodes {
		if i == 7 {
			continue
		}
		if n.Leaf().Contains(victim.Ref().ID) {
			t.Fatalf("node %d still has failed node in leaf set", i)
		}
	}
	// Leaf sets must be complete again (repair pulled in replacements).
	for i, n := range nodes {
		if i == 7 {
			continue
		}
		if !n.Leaf().Complete() {
			t.Fatalf("node %d leaf set not repaired", i)
		}
	}
}

func TestLookupSurvivesRootFailureViaAcks(t *testing.T) {
	net := newTestNet(t, 8)
	cfg := testConfig()
	rec := newRecorder()
	nodes := buildOverlayObs(t, net, 16, cfg, rec)
	// Fail a node and immediately look up a key it owned; per-hop acks
	// must reroute to the new root without waiting for active probing.
	victim := nodes[5]
	key := victim.Ref().ID // victim is the root for its own id
	victim.Fail()
	src := nodes[0]
	seq, _ := src.Lookup(key, nil)
	net.run(30 * time.Second)
	got, ok := rec.delivered[seq]
	if !ok {
		t.Fatalf("lookup lost after root failure (drops: %v)", rec.dropped)
	}
	want := trueRoot(nodes, key).Ref().ID
	if got.ID != want {
		t.Fatalf("delivered at %v, want new root %v", got.ID, want)
	}
}

func TestPerHopAckRetransmitOnLoss(t *testing.T) {
	net := newTestNet(t, 9)
	cfg := testConfig()
	rec := newRecorder()
	nodes := buildOverlayObs(t, net, 12, cfg, rec)
	// Drop the first 3 lookup envelopes outright; retransmissions must
	// still deliver the message.
	drops := 0
	net.drop = func(from, to NodeRef, m Message) bool {
		if env, ok := m.(*Envelope); ok && env.Lookup != nil && drops < 3 {
			drops++
			return true
		}
		return false
	}
	src := nodes[2]
	key := id.New(0xdead, 0xbeef)
	seq, _ := src.Lookup(key, nil)
	net.run(time.Minute)
	if _, ok := rec.delivered[seq]; !ok {
		t.Fatalf("lookup lost despite per-hop acks (dropped=%v)", rec.dropped[seq])
	}
	if drops == 0 {
		t.Fatal("test did not exercise loss")
	}
}

func TestNoAckLookupLostOnLoss(t *testing.T) {
	net := newTestNet(t, 10)
	cfg := testConfig()
	cfg.PerHopAcks = false
	rec := newRecorder()
	nodes := buildOverlayObs(t, net, 12, cfg, rec)
	// Drop exactly one lookup envelope: without acks it must vanish.
	dropped := false
	net.drop = func(from, to NodeRef, m Message) bool {
		if env, ok := m.(*Envelope); ok && env.Lookup != nil && !dropped {
			dropped = true
			return true
		}
		return false
	}
	// Find a source whose lookup will take at least one hop.
	src := nodes[0]
	var key id.ID
	rng := rand.New(rand.NewSource(11))
	for {
		key = id.Random(rng)
		if trueRoot(nodes, key).Ref().ID != src.Ref().ID {
			break
		}
	}
	seq, _ := src.Lookup(key, nil)
	net.run(time.Minute)
	if !dropped {
		t.Skip("lookup resolved locally; loss not exercised")
	}
	if _, ok := rec.delivered[seq]; ok {
		t.Fatal("lookup delivered despite loss and no acks")
	}
}

func TestFalsePositiveRecovery(t *testing.T) {
	net := newTestNet(t, 12)
	cfg := testConfig()
	nodes := buildOverlay(t, net, 10, cfg)
	// Pick b and its true left neighbour a: a is the node that expects
	// b's heartbeats, so dropping the directed link b->a makes a falsely
	// mark b faulty while everyone else (including b) stays healthy.
	b := nodes[1]
	var a *Node
	for _, n := range nodes {
		if n == b {
			continue
		}
		if right, ok := n.Leaf().RightNeighbour(); ok && right.ID == b.Ref().ID {
			a = n
			break
		}
	}
	if a == nil {
		t.Fatal("no left neighbour found for b")
	}
	partitioned := true
	net.drop = func(from, to NodeRef, m Message) bool {
		return partitioned && from.ID == b.Ref().ID && to.ID == a.Ref().ID
	}
	net.run(2 * time.Minute)
	if a.Leaf().Contains(b.Ref().ID) {
		t.Fatal("silent neighbour not removed (false positive not induced)")
	}
	partitioned = false
	net.run(2 * time.Minute)
	if !a.Leaf().Contains(b.Ref().ID) {
		t.Fatal("false positive not recovered: b should be back in a's leaf set")
	}
}

func TestInactiveNodeNeverDelivers(t *testing.T) {
	net := newTestNet(t, 13)
	rec := newRecorder()
	cfg := testConfig()
	n := net.addNode(id.New(5, 5), cfg, rec)
	// Not bootstrapped, not joined: lookups must be held, not delivered.
	seq, ok := n.Lookup(id.New(5, 6), nil)
	if !ok {
		t.Fatal("lookup refused")
	}
	net.run(time.Minute)
	if _, delivered := rec.delivered[seq]; delivered {
		t.Fatal("inactive node delivered a lookup")
	}
	// Once bootstrapped, the held lookup is released and delivered.
	n.Bootstrap()
	net.run(time.Second)
	if _, delivered := rec.delivered[seq]; !delivered {
		t.Fatal("held lookup not released on activation")
	}
}

func TestJoinRetryAfterSeedFailure(t *testing.T) {
	net := newTestNet(t, 14)
	cfg := testConfig()
	nodes := buildOverlay(t, net, 8, cfg)
	seed := nodes[3]
	joiner := net.addNode(id.New(0x42, 0x42), cfg, nil)
	joiner.SetSeedSource(func() (NodeRef, bool) { return nodes[0].Ref(), true })
	seed.Fail()
	joiner.Join(seed.Ref())
	net.run(5 * time.Minute)
	if !joiner.Active() {
		t.Fatal("join never completed after seed failure")
	}
}

func TestLookupTTLDrop(t *testing.T) {
	net := newTestNet(t, 15)
	cfg := testConfig()
	cfg.LookupTTL = 1
	rec := newRecorder()
	nodes := buildOverlayObs(t, net, 16, cfg, rec)
	rng := rand.New(rand.NewSource(16))
	// With TTL 1, multi-hop lookups must be dropped with DropTTL.
	sawTTLDrop := false
	for i := 0; i < 30 && !sawTTLDrop; i++ {
		src := nodes[rng.Intn(len(nodes))]
		src.Lookup(id.Random(rng), nil)
		net.run(5 * time.Second)
		for _, reason := range rec.dropped {
			if reason == DropTTL {
				sawTTLDrop = true
			}
		}
	}
	if !sawTTLDrop {
		t.Fatal("no TTL drops observed with TTL=1")
	}
}

func TestChurnManyJoinsAndFailures(t *testing.T) {
	if testing.Short() {
		t.Skip("churn soak test")
	}
	net := newTestNet(t, 17)
	cfg := testConfig()
	rec := newRecorder()
	nodes := buildOverlayObs(t, net, 20, cfg, rec)
	rng := rand.New(rand.NewSource(18))
	alive := append([]*Node(nil), nodes...)
	// Alternate failures and joins under light lookup load.
	for round := 0; round < 10; round++ {
		victim := alive[rng.Intn(len(alive))]
		victim.Fail()
		for i, n := range alive {
			if n == victim {
				alive = append(alive[:i], alive[i+1:]...)
				break
			}
		}
		j := net.addNode(id.Random(rng), cfg, rec)
		j.SetSeedSource(func() (NodeRef, bool) {
			return alive[rng.Intn(len(alive))].Ref(), true
		})
		j.Join(alive[rng.Intn(len(alive))].Ref())
		alive = append(alive, j)
		for i := 0; i < 5; i++ {
			alive[rng.Intn(len(alive))].Lookup(id.Random(rng), nil)
		}
		net.run(2 * time.Minute)
	}
	net.run(5 * time.Minute)
	for i, n := range alive {
		if !n.Active() {
			t.Fatalf("node %d not active after churn", i)
		}
		if !n.Leaf().Complete() {
			t.Fatalf("node %d leaf set incomplete after churn", i)
		}
	}
}

func TestSuppressionReducesProbes(t *testing.T) {
	run := func(suppress bool) int {
		net := newTestNet(t, 19)
		cfg := testConfig()
		cfg.Suppression = suppress
		cfg.SelfTune = false
		cfg.FixedTrt = 60 * time.Second
		nodes := buildOverlay(t, net, 12, cfg)
		rng := rand.New(rand.NewSource(20))
		// Heavy lookup traffic for 10 minutes.
		for i := 0; i < 200; i++ {
			nodes[rng.Intn(len(nodes))].Lookup(id.Random(rng), nil)
			net.run(3 * time.Second)
		}
		total := 0
		for _, n := range nodes {
			total += int(n.Stats().SentRTProbes) + int(n.Stats().SentHeartbeats)
		}
		return total
	}
	with := run(true)
	without := run(false)
	if with >= without {
		t.Fatalf("suppression did not reduce probe traffic: %d vs %d", with, without)
	}
}
