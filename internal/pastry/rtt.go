package pastry

import (
	"sort"
	"time"
)

// rttEstimator tracks smoothed round-trip time and variance per peer, in
// the style of TCP (Karn & Partridge / Jacobson), but computes the
// retransmission timeout more aggressively than TCP: MSPastry can afford
// early retransmissions because Pastry offers several alternative next hops
// for a key, so a false timeout costs little (paper §3.2).
type rttEstimator struct {
	srtt   time.Duration
	rttvar time.Duration
	init   bool
}

// observe folds one RTT sample in. Callers must apply Karn's rule: never
// feed samples from retransmitted packets.
func (e *rttEstimator) observe(sample time.Duration) {
	if !e.init {
		e.srtt = sample
		e.rttvar = sample / 2
		e.init = true
		return
	}
	// Standard EWMA constants (alpha=1/8, beta=1/4).
	dev := e.srtt - sample
	if dev < 0 {
		dev = -dev
	}
	e.rttvar += (dev - e.rttvar) / 4
	e.srtt += (sample - e.srtt) / 8
}

// rto returns the aggressive retransmission timeout: srtt + 2*rttvar
// (TCP uses 4*rttvar), clamped to [min, max]. Before any sample it returns
// the fallback value.
func (e *rttEstimator) rto(fallback, min, max time.Duration) time.Duration {
	if !e.init {
		return clampDuration(fallback, min, max)
	}
	return clampDuration(e.srtt+2*e.rttvar, min, max)
}

func clampDuration(d, min, max time.Duration) time.Duration {
	if d < min {
		return min
	}
	if d > max {
		return max
	}
	return d
}

// medianDuration returns the median of ds (average of the two middle
// values for even lengths). It returns 0 for an empty slice.
func medianDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}
