package pastry

import (
	"sort"

	"mspastry/internal/id"
	"mspastry/internal/secure"
)

// Secure routing (Byzantine-routing defenses).
//
// MSPastry's crash-fault machinery is blind to malicious peers: a node
// that acknowledges a lookup hop and then drops the message, or routes
// it into a ring of colluders, looks perfectly healthy to per-hop acks
// and liveness probes. The defense, following the secure-routing line of
// work (Castro et al.; "Our Brothers' Keepers"), has three parts:
//
//  1. Every secure lookup asks the root for a completion report
//     (RootReport) carrying the root's leaf set.
//  2. The origin runs the routing failure test on each report
//     (internal/secure): node identifiers are uniform, so an honest
//     root's neighbourhood is about as dense as the origin's own; a
//     colluder-forged neighbourhood, drawn from only the f·N malicious
//     nodes, is ~1/f times sparser and fails the density check.
//  3. A failed test — or no report at all within SecureReplyTimeout —
//     re-issues the lookup over SecureFanout neighbour-diverse first
//     hops. The reports vote: the first passing report closes the
//     lookup, and any failed reporter whose root claim is strictly
//     farther from the key than the accepted root is confirmed bad and
//     fed to the exclusion/breaker machinery (breaker.go distrust).
//
// All state is origin-local: a secureSession per outstanding lookup,
// keyed by the origin's sequence number, plus the density estimator.

// secureSession tracks one secure lookup at its origin from issue until
// a report is accepted or every redundant round is exhausted.
type secureSession struct {
	lk     *Lookup
	rounds int
	// firstHops records first hops already used by redundant rounds, so
	// successive rounds spread over fresh neighbours.
	firstHops map[id.ID]bool
	// reported dedupes reports per responder (redundant copies can reach
	// the same root more than once).
	reported map[id.ID]bool
	// suspects are reporters whose reports failed the test; they are
	// distrusted if a strictly closer root is later accepted.
	suspects []NodeRef
	timer    Timer
}

// startSecureSession registers the lookup for report tracking and arms
// the reply timeout.
func (n *Node) startSecureSession(lk *Lookup) {
	ss := &secureSession{
		lk:        lk,
		firstHops: make(map[id.ID]bool),
		reported:  make(map[id.ID]bool),
	}
	n.secureSess[lk.Seq] = ss
	n.armSecureTimer(ss)
}

func (n *Node) armSecureTimer(ss *secureSession) {
	if ss.timer != nil {
		ss.timer.Cancel()
	}
	seq := ss.lk.Seq
	ss.timer = n.schedule(n.cfg.SecureReplyTimeout, func() { n.secureTimeout(seq) })
}

// handleRootReport evaluates one root completion report against the
// local density estimate.
func (n *Node) handleRootReport(rr *RootReport) {
	ss, ok := n.secureSess[rr.Seq]
	if !ok || ss.lk.Key != rr.Key {
		// Closed session, stale sequence number, or a forgery for a
		// lookup this node never issued.
		return
	}
	if ss.reported[rr.From.ID] {
		return
	}
	ss.reported[rr.From.ID] = true
	n.counters.SecureReports++
	v := secure.Check(secure.Report{
		Key:    rr.Key,
		Root:   rr.From.ID,
		Leaves: refIDs(rr.Leaves),
	}, n.localDensity(), secure.Config{
		DensityRatio:  n.cfg.SecureDensityRatio,
		DistanceRatio: n.cfg.SecureDistanceRatio,
		// A plausible root's leaf set is about as full as our own; half
		// tolerates transient repair without admitting colluder-only sets.
		MinLeaves: (len(n.ls.Members()) + 1) / 2,
	})
	if n.secObs != nil {
		n.secObs.SecureVerdict(n, v.String())
	}
	if !v.Suspicious() {
		n.counters.SecureTestPass++
		ids := append(refIDs(rr.Leaves), rr.From.ID)
		if g, ok := secure.MeanGap(ids); ok {
			n.density.Observe(g)
		}
		n.acceptReport(ss, rr.From)
		return
	}
	n.counters.SecureTestFail++
	ss.suspects = append(ss.suspects, rr.From)
	// React to the first suspicion immediately instead of waiting out the
	// timer; later suspicions wait for the current round's timeout so a
	// burst of forged reports cannot burn every round at once.
	if ss.rounds == 0 {
		n.redundantRound(ss)
	}
}

// acceptReport closes the session on a passing report and settles the
// vote: every suspect whose root claim lost to a strictly closer
// accepted root provably lied (identifiers are certified — it could not
// have been the root while a closer live node existed) and is
// distrusted. Requiring both a failed test and a lost vote keeps a
// single statistical misfire from punishing an honest node.
func (n *Node) acceptReport(ss *secureSession, winner NodeRef) {
	for _, s := range ss.suspects {
		if s.ID != winner.ID && id.CloserToKey(ss.lk.Key, winner.ID, s.ID) {
			n.distrust(s)
		}
	}
	n.closeSecureSession(ss)
}

// secureSelfDelivered resolves a session whose origin turned out to be
// the key's root itself: nothing to test.
func (n *Node) secureSelfDelivered(seq uint64) {
	if ss, ok := n.secureSess[seq]; ok {
		n.closeSecureSession(ss)
	}
}

func (n *Node) closeSecureSession(ss *secureSession) {
	if ss.timer != nil {
		ss.timer.Cancel()
		ss.timer = nil
	}
	delete(n.secureSess, ss.lk.Seq)
}

// secureTimeout fires when no acceptable report arrived within the
// reply timeout: issue another diverse round, or give up after
// SecureMaxRounds (the copies already in flight can still deliver — the
// origin just stops spending redundancy on the lookup).
func (n *Node) secureTimeout(seq uint64) {
	ss, ok := n.secureSess[seq]
	if !ok {
		return
	}
	if ss.rounds < n.cfg.SecureMaxRounds {
		n.redundantRound(ss)
		return
	}
	n.counters.SecureGiveUps++
	n.closeSecureSession(ss)
}

// redundantRound re-issues the lookup over up to SecureFanout diverse
// first hops. Each copy restarts its hop count (it is a fresh path, not
// a continuation) and keeps the same sequence and trace identifiers, so
// the metrics pipeline deduplicates deliveries and the reports land in
// this session.
func (n *Node) redundantRound(ss *secureSession) {
	ss.rounds++
	n.counters.SecureRedundantRounds++
	hops := n.diverseFirstHops(ss.lk.Key, ss.firstHops)
	for _, h := range hops {
		ss.firstHops[h.ID] = true
		cp := *ss.lk
		cp.Hops = 0
		n.counters.SecureRedundantSends++
		n.sendHop(&cp, nil, cp.Key, h, nil, !cp.NoAck)
	}
	if n.secObs != nil {
		n.secObs.SecureRedundant(n, len(hops))
	}
	// Re-arm even when no fresh hop was available: copies already in
	// flight may still produce a report, and the timer owns give-up.
	n.armSecureTimer(ss)
}

// diverseFirstHops selects up to SecureFanout distinct first hops for a
// redundant round: every known peer (leaf set + routing table) not yet
// used for this lookup and not currently excluded, ordered closest to
// the key, with at most one pick per top-level identifier digit —
// neighbour diversity — so one captured region of the id space cannot
// swallow the whole round. Remaining slots fill closest-first when
// diversity runs short.
func (n *Node) diverseFirstHops(key id.ID, used map[id.ID]bool) []NodeRef {
	excl := n.isExcluded(nil)
	seen := make(map[id.ID]bool)
	var cands []NodeRef
	for _, r := range append(n.ls.Members(), n.rt.Entries()...) {
		if r.ID == n.self.ID || seen[r.ID] || used[r.ID] || excl(r.ID) {
			continue
		}
		seen[r.ID] = true
		cands = append(cands, r)
	}
	sort.Slice(cands, func(i, j int) bool {
		return id.CloserToKey(key, cands[i].ID, cands[j].ID)
	})
	want := n.cfg.SecureFanout
	picks := make([]NodeRef, 0, want)
	picked := make(map[id.ID]bool)
	usedDigit := make(map[int]bool)
	for _, c := range cands {
		if len(picks) >= want {
			break
		}
		d := c.ID.Digit(0, n.cfg.B)
		if usedDigit[d] {
			continue
		}
		usedDigit[d] = true
		picked[c.ID] = true
		picks = append(picks, c)
	}
	for _, c := range cands {
		if len(picks) >= want {
			break
		}
		if !picked[c.ID] {
			picked[c.ID] = true
			picks = append(picks, c)
		}
	}
	return picks
}

// localDensity is the origin's current id-space density estimate: its
// own leaf-set gap blended with the history of accepted lookup reports.
func (n *Node) localDensity() float64 {
	members := n.ls.Members()
	ids := make([]id.ID, 0, len(members)+1)
	ids = append(ids, n.self.ID)
	for _, m := range members {
		ids = append(ids, m.ID)
	}
	leafGap, ok := secure.MeanGap(ids)
	if !ok {
		leafGap = 0
	}
	return n.density.Blend(leafGap)
}

func refIDs(refs []NodeRef) []id.ID {
	out := make([]id.ID, len(refs))
	for i, r := range refs {
		out[i] = r.ID
	}
	return out
}
