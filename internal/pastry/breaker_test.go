package pastry

import (
	"math/rand"
	"testing"
	"time"

	"mspastry/internal/id"
	"mspastry/internal/overload"
)

// stressedPeer builds a two-node overlay and then silences the second
// node's Envelope reception: it still answers probes and heartbeats (it
// is alive, just shedding routed traffic), but never acks a hop — the
// shape of an overloaded peer. It returns the two nodes and counters of
// first-transmission and retransmission envelopes addressed to the
// victim, live-updated by the drop hook.
func stressedPeer(t *testing.T, net *testNet, cfg Config, obs Observer) (src, victim *Node, first, retx *int) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	src = net.addNode(id.Random(rng), cfg, obs)
	src.Bootstrap()
	victim = net.addNode(id.Random(rng), cfg, obs)
	victim.Join(src.Ref())
	net.run(time.Minute)
	if !src.Active() || !victim.Active() {
		t.Fatal("overlay did not activate")
	}
	first, retx = new(int), new(int)
	vaddr := victim.Ref().Addr
	net.drop = func(from, to NodeRef, m Message) bool {
		if to.Addr != vaddr {
			return false
		}
		env, ok := m.(*Envelope)
		if !ok {
			return false // probes, acks, heartbeats still flow
		}
		if env.Retx {
			*retx++
		} else {
			*first++
		}
		return true
	}
	return src, victim, first, retx
}

// TestRetryBudgetCapsRetransmissions pins the acceptance property: the
// retransmission volume a stressed peer sees from one sender is capped
// by the retry budget (burst + rate·elapsed), instead of every held
// lookup contributing its own exponential-backoff storm.
func TestRetryBudgetCapsRetransmissions(t *testing.T) {
	run := func(rate float64, burst int) (first, retx int) {
		net := newTestNet(t, 7)
		cfg := testConfig()
		cfg.BreakerThreshold = 0 // isolate the budget from the breaker
		cfg.RetryBudgetRate = rate
		cfg.RetryBudgetBurst = burst
		src, victim, firstN, retxN := stressedPeer(t, net, cfg, nil)
		for i := 0; i < 60; i++ {
			src.Lookup(victim.Ref().ID, nil)
			net.run(time.Second)
		}
		return *firstN, *retxN
	}

	_, retxOff := run(0, 0)  // budget disabled
	_, retxOn := run(0.5, 2) // 2 burst + 0.5/s over 60s => <= 32 charged sends
	const cap = 2 + 30 + 3   // burst + rate*60s + slack
	if retxOn == 0 {
		t.Fatal("budget suppressed every retransmission; expected a trickle")
	}
	if retxOn > cap {
		t.Fatalf("budgeted retransmissions to stressed peer = %d, want <= %d", retxOn, cap)
	}
	if retxOff < 4*retxOn {
		t.Fatalf("budget made no difference: off=%d on=%d", retxOff, retxOn)
	}
}

// TestBreakerOpensAndRecovers drives the circuit breaker through the
// node machinery end to end: consecutive missed acks open it, probe
// replies from the still-alive peer do NOT close it, trial traffic
// failures reopen it with backoff, and once the peer recovers a real
// acked hop closes it and delivery resumes.
func TestBreakerOpensAndRecovers(t *testing.T) {
	net := newTestNet(t, 9)
	rec := newRecorder()
	cfg := testConfig()
	cfg.RetryBudgetRate = 0 // isolate the breaker from the budget
	cfg.BreakerThreshold = 3
	cfg.BreakerCooldown = 500 * time.Millisecond
	cfg.BreakerMaxCooldown = 2 * time.Second
	src, victim, _, _ := stressedPeer(t, net, cfg, rec)

	for i := 0; i < 10; i++ {
		src.Lookup(victim.Ref().ID, nil)
		net.run(time.Second)
	}
	st := src.Stats()
	if st.BreakerOpens == 0 {
		t.Fatal("breaker never opened against a peer that stopped acking")
	}
	if st.BreakerReopens == 0 {
		t.Fatal("trial failures never reopened the breaker")
	}
	if st.BreakerCloses != 0 {
		t.Fatalf("breaker closed %d times while the peer was shedding all envelopes (probe replies must not close it)", st.BreakerCloses)
	}
	if !victim.Alive() || !victim.Active() {
		t.Fatal("victim should still be alive: it answers probes")
	}
	sum := src.Breakers()
	if sum.Open+sum.HalfOpen == 0 {
		t.Fatalf("no tripped breaker in summary: %+v", sum)
	}

	// The peer recovers: envelopes flow again. The next trial closes the
	// breaker and lookups reach the victim again.
	net.drop = nil
	var recoveredSeq uint64
	deadline := 20
	for i := 0; i < deadline; i++ {
		seq, ok := src.Lookup(victim.Ref().ID, nil)
		if !ok {
			t.Fatal("Lookup refused")
		}
		recoveredSeq = seq
		net.run(time.Second)
		if ref, ok := rec.delivered[seq]; ok && ref.ID == victim.Ref().ID {
			break
		}
	}
	if ref, ok := rec.delivered[recoveredSeq]; !ok || ref.ID != victim.Ref().ID {
		t.Fatalf("delivery never resumed after recovery: delivered=%v", rec.delivered[recoveredSeq])
	}
	if src.Stats().BreakerCloses == 0 {
		t.Fatal("recovered peer's acked hop did not close the breaker")
	}
	if s := src.Breakers(); s.Open != 0 {
		t.Fatalf("breaker still open after recovery: %+v", s)
	}
	_ = overload.BreakerClosed
}
