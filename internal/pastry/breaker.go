package pastry

import (
	"time"

	"mspastry/internal/id"
	"mspastry/internal/overload"
	"mspastry/internal/peer"
)

// Per-peer circuit breakers and retry budgets (overload protection).
//
// Both the failure and the success signal are per-hop acks: a missed
// ack (hopTimeout) is a strike, an ack closes the breaker. Acks are the
// only signal that tracks whether a peer is actually servicing routed
// traffic — an overloaded node still answers lightweight probes
// promptly (liveness traffic rides the highest-priority lane precisely
// so that overload does not look like death), so probe replies MUST NOT
// close a breaker: that would reopen the floodgates onto a peer that is
// alive but drowning, and the breaker would flap on every
// timeout/probe-reply pair.
//
// BreakerThreshold consecutive misses open the breaker: the peer is
// excluded from next-hop selection immediately (fast-fail), so lookups
// re-route around it instead of burning a retransmission timeout per
// message. When the cooldown expires the breaker goes half-open (lazily,
// at the next routing decision that considers the peer) and regular
// traffic is admitted again as the trial: an ack closes the breaker, a
// missed ack reopens it with a doubled cooldown, up to BreakerMaxCooldown.
// The regular failure detector keeps running independently — probes
// still flow while the breaker is open — so a genuinely dead peer is
// still marked faulty and handed to the reconnect cache through the
// usual machinery; marking faulty clears the breaker record.
//
// The retry budget is a per-peer token bucket charged only for repeat
// sends to the same peer: backed-off per-hop retransmissions and probe
// retries. First transmissions and re-routes to other peers are free, so
// exhausting a peer's budget redirects pressure rather than losing work.

// breakerDenies reports whether the peer's circuit is open, so regular
// traffic must route around it. An open breaker whose cooldown has
// expired transitions to half-open here — admitting this very routing
// decision as the recovery trial.
func (n *Node) breakerDenies(x id.ID) bool {
	if n.cfg.BreakerThreshold <= 0 || n.peers.SlotCount(n.slotOverload) == 0 {
		return false
	}
	st := n.overloadFor(x)
	if st == nil || st.breaker == nil {
		return false
	}
	if st.breaker.Ready(n.env.Now()) {
		st.breaker.HalfOpen()
	}
	return st.breaker.Denies()
}

// breakerFailure records a missed per-hop ack against the peer.
func (n *Node) breakerFailure(ref NodeRef) {
	if n.cfg.BreakerThreshold <= 0 {
		return
	}
	st := n.overloadOf(n.peers.Obtain(ref.ID, ref.Addr, n.env.Now()))
	b := st.breaker
	if b == nil {
		b = &overload.Breaker{
			Threshold:   n.cfg.BreakerThreshold,
			Cooldown:    n.cfg.BreakerCooldown,
			MaxCooldown: n.cfg.BreakerMaxCooldown,
		}
		st.breaker = b
	}
	wasHalfOpen := b.State() == overload.BreakerHalfOpen
	if b.Failure(n.env.Now()) {
		if wasHalfOpen {
			n.counters.BreakerReopens++
		} else {
			n.counters.BreakerOpens++
		}
	}
}

// breakerSuccess records direct evidence the peer is servicing routed
// traffic — a per-hop ack, and only that (see the package comment on
// why probe replies do not qualify). sentAt is when the acked hop was
// transmitted: the breaker discards acks for hops sent before it last
// opened, so straggling pre-storm acks cannot close it.
func (n *Node) breakerSuccess(x id.ID, sentAt time.Duration) {
	if n.peers.SlotCount(n.slotOverload) == 0 {
		return
	}
	st := n.overloadFor(x)
	if st == nil || st.breaker == nil {
		return
	}
	if st.breaker.Success(sentAt) {
		n.counters.BreakerCloses++
	}
}

// dropBreaker discards the peer's breaker and budget state; called when
// the peer is marked faulty (the reconnect cache owns it from there) and
// from eviction paths.
func (n *Node) dropBreaker(x id.ID) {
	n.clearSlot(x, n.slotOverload)
}

// retryAllowed charges one token from the peer's retry budget, reporting
// whether the repeat send may proceed. With budgets disabled it always
// allows.
func (n *Node) retryAllowed(ref NodeRef) bool {
	if n.cfg.RetryBudgetRate <= 0 {
		return true
	}
	now := n.env.Now()
	st := n.overloadOf(n.peers.Obtain(ref.ID, ref.Addr, now))
	if st.budget == nil {
		st.budget = overload.NewTokenBucket(n.cfg.RetryBudgetRate, float64(n.cfg.RetryBudgetBurst), now)
	}
	if !st.budget.Take(now) {
		n.counters.RetryBudgetExhausted++
		return false
	}
	return true
}

// inRoutingState reports whether the peer can currently be chosen as a
// next hop: it is in the leaf set or the routing table.
func (n *Node) inRoutingState(x id.ID) bool {
	return n.ls.Contains(x) || n.rt.Contains(x)
}

// distrust feeds a peer confirmed bad by the secure-routing vote (its
// root claim lost to a strictly closer accepted root) into the routing-
// exclusion machinery: the peer is excluded from next-hop selection and
// its circuit breaker is force-opened, so recovery follows the ordinary
// cooldown/half-open path rather than being permanent — the failure test
// is statistical, and an honest peer caught by a rare false vote must be
// able to come back.
func (n *Node) distrust(ref NodeRef) {
	if ref.ID == n.self.ID {
		return
	}
	if _, dead := n.failed[ref.ID]; dead {
		return
	}
	n.counters.SecureDistrusted++
	n.excluded[ref.ID] = true
	// Hand the exclusion record to the regular probe machinery so it has
	// an owner: a probe reply lifts it (the breaker keeps denying through
	// its cooldown), a probe timeout marks the peer faulty outright.
	n.suspect(ref)
	if n.cfg.BreakerThreshold <= 0 {
		return
	}
	st := n.overloadOf(n.peers.Obtain(ref.ID, ref.Addr, n.env.Now()))
	b := st.breaker
	if b == nil {
		b = &overload.Breaker{
			Threshold:   n.cfg.BreakerThreshold,
			Cooldown:    n.cfg.BreakerCooldown,
			MaxCooldown: n.cfg.BreakerMaxCooldown,
		}
		st.breaker = b
	}
	wasOpen := b.Denies()
	b.Trip(n.env.Now())
	if !wasOpen {
		n.counters.BreakerOpens++
	}
}

// BreakerSummary counts this node's peer circuit breakers by state.
type BreakerSummary struct {
	Open     int `json:"open"`
	HalfOpen int `json:"half_open"`
	Tripping int `json:"tripping"` // closed but with recorded strikes
}

// Breakers returns a snapshot of breaker states for status reporting.
func (n *Node) Breakers() BreakerSummary {
	var s BreakerSummary
	n.peers.Each(func(rec *peer.Record) {
		st, _ := rec.Get(n.slotOverload).(*overloadState)
		if st == nil || st.breaker == nil {
			return
		}
		switch st.breaker.State() {
		case overload.BreakerOpen:
			s.Open++
		case overload.BreakerHalfOpen:
			s.HalfOpen++
		default:
			s.Tripping++
		}
	})
	return s
}

// LoadSampler is an optional Env extension: transports that bound their
// inbound work (the simulator's service-capacity model, the UDP
// transport's inbound lane queue) report current occupancy in [0,1], so
// protocol layers above (the DHT's anti-entropy scheduler) can defer
// deferrable work under load.
type LoadSampler interface {
	LoadFactor() float64
}

// LoadFactor reports the transport's current inbound load in [0,1]; 0
// when the Env does not implement LoadSampler or nothing is queued.
func (n *Node) LoadFactor() float64 {
	if ls, ok := n.env.(LoadSampler); ok {
		return ls.LoadFactor()
	}
	return 0
}
