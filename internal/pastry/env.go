package pastry

import (
	"math/rand"
	"time"
)

// Timer is a cancellable scheduled callback.
type Timer interface {
	Cancel()
}

// Env supplies a node with everything that differs between the simulator
// and a real deployment: a clock, timers, randomness and a transport. All
// Env callbacks into a node must be serialised (the simulator is
// single-threaded; the UDP transport runs one loop per node).
type Env interface {
	// Now returns the current time (virtual or wall-clock).
	Now() time.Duration
	// Rand returns the node's random source.
	Rand() *rand.Rand
	// Send transmits a message to another node. Delivery is unreliable
	// and unordered, like UDP.
	Send(to NodeRef, m Message)
	// Schedule runs fn after d. The returned timer can be cancelled.
	Schedule(d time.Duration, fn func()) Timer
}

// DropReason explains why a lookup was dropped by the overlay.
type DropReason int

const (
	// DropTTL means the lookup exceeded its hop budget.
	DropTTL DropReason = iota + 1
	// DropRetries means per-hop retransmission gave up.
	DropRetries
	// DropBuffer means a node failed or overflowed while holding the
	// message (for example, it was buffered during a join).
	DropBuffer
)

func (d DropReason) String() string {
	switch d {
	case DropTTL:
		return "ttl"
	case DropRetries:
		return "retries"
	case DropBuffer:
		return "buffer"
	default:
		return "unknown"
	}
}

// Observer receives protocol-level events for metrics collection. Methods
// are called synchronously from within protocol processing and must not
// call back into the node.
type Observer interface {
	// Activated fires when the node completes its join and becomes active.
	Activated(n *Node, joinLatency time.Duration)
	// Delivered fires when the node delivers a lookup as the root.
	Delivered(n *Node, lk *Lookup)
	// LookupDropped fires when a node drops a lookup.
	LookupDropped(n *Node, lk *Lookup, reason DropReason)
}

// HopCause classifies why a lookup hop transmission happened.
type HopCause int

const (
	// HopForward is the first transmission of a hop.
	HopForward HopCause = iota
	// HopReroute is a retransmission to an alternative next hop after a
	// missed per-hop ack.
	HopReroute
	// HopBackoff is a backed-off retransmission to the same next hop
	// (no alternative existed, typically because the key's root itself is
	// the suspected node).
	HopBackoff
)

func (c HopCause) String() string {
	switch c {
	case HopForward:
		return "forward"
	case HopReroute:
		return "reroute"
	case HopBackoff:
		return "backoff"
	default:
		return "unknown"
	}
}

// TraceObserver is an optional Observer extension receiving per-lookup
// causal events: issue and every forwarding transmission. Together with
// Delivered/LookupDropped these reconstruct the full route path of a
// lookup from its TraceID. The node detects the extension once, at
// construction.
type TraceObserver interface {
	// LookupIssued fires at the origin when a lookup enters the overlay
	// (before any routing).
	LookupIssued(n *Node, lk *Lookup)
	// LookupHop fires each time a node transmits a lookup one hop further.
	LookupHop(n *Node, lk *Lookup, to NodeRef, cause HopCause)
}

// StatsObserver is an optional Observer extension receiving protocol
// measurements that the plain Observer does not carry: per-category sent
// traffic, per-hop ack RTT samples, self-tuned probing-period updates and
// leaf-set repair activity.
type StatsObserver interface {
	// MessageSent fires for every message the node transmits; retx marks
	// per-hop retransmissions.
	MessageSent(n *Node, cat Category, retx bool)
	// AckRTT fires with each first-transmission per-hop ack round trip
	// (Karn's rule: retransmitted hops contribute no sample).
	AckRTT(n *Node, to NodeRef, rtt time.Duration)
	// TrtTuned fires when self-tuning recomputes the routing-table
	// probing period.
	TrtTuned(n *Node, trt time.Duration)
	// LeafSetRepair fires when the node launches leaf-set repair probes;
	// cause distinguishes repair directions and failure announcements.
	LeafSetRepair(n *Node, cause string)
}

// SecureObserver is an optional Observer extension receiving
// secure-routing events: routing-failure-test verdicts and the fan-out
// of redundant diverse-path rounds. The node detects the extension once,
// at construction.
type SecureObserver interface {
	// SecureVerdict fires with the failure test's verdict ("pass",
	// "sparse", "far-root", "closer-member") for each root report
	// evaluated at this origin.
	SecureVerdict(n *Node, verdict string)
	// SecureRedundant fires when a redundant diverse-path round is
	// issued, with the number of first-hop copies it sent.
	SecureRedundant(n *Node, fanout int)
}

// App is an application running on an overlay node (for example the
// Squirrel web cache or Scribe multicast). All callbacks run in the node's
// serialised context.
type App interface {
	// Deliver is invoked when a lookup reaches this node as its root.
	Deliver(lk *Lookup)
	// Forward is invoked before the node forwards a lookup one hop
	// further. Returning false consumes the message (Scribe uses this to
	// terminate subscribe messages at tree nodes).
	Forward(lk *Lookup) bool
	// Direct is invoked for point-to-point application messages.
	Direct(from NodeRef, payload []byte)
}

// NopObserver ignores all events.
type NopObserver struct{}

// Activated implements Observer.
func (NopObserver) Activated(*Node, time.Duration) {}

// Delivered implements Observer.
func (NopObserver) Delivered(*Node, *Lookup) {}

// LookupDropped implements Observer.
func (NopObserver) LookupDropped(*Node, *Lookup, DropReason) {}
