package pastry

import (
	"fmt"
	"time"

	"mspastry/internal/id"
	"mspastry/internal/peer"
	"mspastry/internal/secure"
)

// Node is one MSPastry overlay node. It is driven entirely by its Env:
// incoming messages arrive through Receive, and time-based behaviour runs
// off timers the node schedules. All methods must be called from the Env's
// serialised context.
type Node struct {
	cfg Config
	env Env
	obs Observer
	// tobs, sobs and secObs cache the observer's optional telemetry
	// extensions (detected once at construction; nil when not implemented).
	tobs   TraceObserver
	sobs   StatsObserver
	secObs SecureObserver
	self   NodeRef

	ls *LeafSet
	rt *RoutingTable

	alive  bool
	active bool

	joinStart  time.Duration
	joinSeed   NodeRef
	seedSource func() (NodeRef, bool)

	// peers is the unified per-peer state registry: liveness timestamps,
	// RTT estimators, self-tuning hints, probe-suppression memory,
	// overload protection and the reconnect graveyard all live in one
	// record per peer, with a single sweep (sweepPeers) driving their
	// lifecycle. The slot handles index each subsystem's state; see
	// peers.go for the slot value types and pruning rules.
	peers        *peer.Registry
	slotHint     peer.Slot
	slotSuppress peer.Slot
	slotOverload peer.Slot
	slotGrave    peer.Slot
	slotRTT      peer.Slot

	// probing tracks outstanding liveness probes (leaf-set and routing
	// table); failed holds nodes marked faulty; excluded holds nodes
	// temporarily routed around after a missed per-hop ack.
	probing  map[id.ID]*probeState
	failed   map[id.ID]NodeRef
	excluded map[id.ID]bool

	// secureSess tracks this origin's secure lookups awaiting a root
	// report; density is the id-space density estimate the routing
	// failure test compares reports against. See secure.go.
	secureSess map[uint64]*secureSession
	density    secure.Estimator

	lastReconnect time.Duration

	repairTimer Timer

	// Per-hop ack state.
	pending  map[uint64]*pendingHop
	nextXfer uint64

	// Self-tuning state.
	failureHist []time.Duration
	trtLocal    time.Duration
	trtCurrent  time.Duration

	// Distance measurement sessions, keyed by target.
	distSessions map[id.ID]*distSession
	nextDistSeq  uint64
	distSeqs     map[uint64]*distSession

	lastMaintenance time.Duration

	// nn tracks the nearest-neighbour search during a join.
	nn *nnState

	// Messages held while the node cannot deliver (joining, or a leaf-set
	// side is empty).
	holdBuffer []*Lookup

	nextLookupSeq uint64

	tickTimer Timer

	app App

	counters Counters
}

// Counters exposes protocol-internal tallies used by the evaluation.
type Counters struct {
	// SuppressedProbes counts routing-table probes and heartbeats that
	// application traffic made unnecessary.
	SuppressedProbes uint64
	// SentRTProbes counts routing-table liveness probes actually sent.
	SentRTProbes uint64
	// SentReconnectProbes counts reconnect-cache pings to peers
	// previously marked faulty (tallied separately from SentRTProbes:
	// the reconnect cache is orthogonal to the ActiveProbing ablation).
	SentReconnectProbes uint64
	// SentHeartbeats counts heartbeats actually sent.
	SentHeartbeats uint64
	// Retransmits counts per-hop retransmissions.
	Retransmits uint64
	// FalsePositives counts nodes marked faulty that later proved alive
	// (they contacted us after being marked).
	FalsePositives uint64
	// DeliveredLookups counts lookups delivered by this node as root.
	DeliveredLookups uint64
	// RetryBudgetExhausted counts repeat sends suppressed because the
	// destination peer's retry budget ran dry.
	RetryBudgetExhausted uint64
	// BreakerOpens counts circuit breakers tripped by consecutive missed
	// acks; BreakerReopens counts failed half-open recovery trials;
	// BreakerCloses counts recoveries (breakers closed by a success).
	BreakerOpens, BreakerReopens, BreakerCloses uint64
	// SecureReports counts root completion reports received for this
	// origin's secure lookups; SecureTestPass/SecureTestFail count the
	// routing failure test's verdicts on them.
	SecureReports, SecureTestPass, SecureTestFail uint64
	// SecureRedundantRounds counts redundant diverse-path rounds issued
	// (on a failed test or report timeout); SecureRedundantSends counts
	// the individual first-hop copies those rounds sent.
	SecureRedundantRounds, SecureRedundantSends uint64
	// SecureDistrusted counts peers confirmed bad by cross-path voting
	// and fed into the exclusion/breaker machinery.
	SecureDistrusted uint64
	// SecureGiveUps counts secure lookups that exhausted every redundant
	// round without an accepted root report.
	SecureGiveUps uint64
}

type probeState struct {
	ref     NodeRef
	isLeaf  bool // leaf-set probe (LSProbe) vs routing-table ping
	retries int
	timer   Timer
	// announce marks probes started by first-hand failure suspicion
	// (missed heartbeat or missed per-hop ack): if such a probe times
	// out, the failure is announced to the rest of the leaf set.
	// Confirmation and repair probes never re-announce — otherwise one
	// failure would cascade into l^2 probe traffic.
	announce bool
	// reconnect marks reconnect-cache probes: a timeout restores the
	// failure record without re-counting the failure or announcing.
	reconnect bool
}

type pendingHop struct {
	lookup   *Lookup
	join     *JoinRequest
	key      id.ID
	to       NodeRef
	attempts int
	// tried holds next hops already attempted for this message.
	tried   *triedSet
	timer   Timer
	sentAt  time.Duration
	retx    bool
	needAck bool
}

// NewNode creates a node with the given identity. The node is inert until
// Bootstrap or Join is called.
func NewNode(self NodeRef, cfg Config, env Env, obs Observer) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if obs == nil {
		obs = NopObserver{}
	}
	n := &Node{
		cfg:          cfg,
		env:          env,
		obs:          obs,
		self:         self,
		ls:           NewLeafSet(self.ID, cfg.L),
		rt:           NewRoutingTable(self.ID, cfg.B),
		alive:        true,
		probing:      make(map[id.ID]*probeState),
		failed:       make(map[id.ID]NodeRef),
		excluded:     make(map[id.ID]bool),
		pending:      make(map[uint64]*pendingHop),
		distSessions: make(map[id.ID]*distSession),
		distSeqs:     make(map[uint64]*distSession),
		secureSess:   make(map[uint64]*secureSession),
	}
	n.initPeers()
	n.tobs, _ = obs.(TraceObserver)
	n.sobs, _ = obs.(StatsObserver)
	n.secObs, _ = obs.(SecureObserver)
	n.trtCurrent = n.initialTrt()
	n.trtLocal = n.trtCurrent
	return n, nil
}

func (n *Node) initialTrt() time.Duration {
	if !n.cfg.SelfTune {
		return n.cfg.FixedTrt
	}
	return clampDuration(60*time.Second, n.cfg.MinTrt(), maxTrt)
}

// Ref returns the node's identity.
func (n *Node) Ref() NodeRef { return n.self }

// Now returns the node's current clock reading (virtual time in the
// simulator, monotonic wall time over a real transport). Exposed for
// observers, which have no Env of their own.
func (n *Node) Now() time.Duration { return n.env.Now() }

// Active reports whether the node has completed its join.
func (n *Node) Active() bool { return n.active }

// Alive reports whether the node has not crashed.
func (n *Node) Alive() bool { return n.alive }

// Leaf returns the node's leaf set (read-only access for tests/metrics).
func (n *Node) Leaf() *LeafSet { return n.ls }

// Table returns the node's routing table (read-only access).
func (n *Node) Table() *RoutingTable { return n.rt }

// Trt returns the current routing-table probing period.
func (n *Node) Trt() time.Duration { return n.trtCurrent }

// Stats returns a snapshot of the node's internal counters.
func (n *Node) Stats() Counters { return n.counters }

// Config returns the node's configuration.
func (n *Node) Config() Config { return n.cfg }

// SetApp installs the application layer. Must be called before the node
// joins the overlay.
func (n *Node) SetApp(app App) { n.app = app }

// SendDirect sends a point-to-point application message to another node
// (outside overlay routing), delivered to the peer's App.Direct.
func (n *Node) SendDirect(to NodeRef, payload []byte) {
	if !n.alive {
		return
	}
	n.send(to, &AppDirect{From: n.self, Payload: payload})
}

// SetSeedSource installs a callback used to obtain a fresh seed when a
// join stalls (for example because the original seed crashed mid-join).
func (n *Node) SetSeedSource(f func() (NodeRef, bool)) { n.seedSource = f }

// Bootstrap makes this node the first member of a new overlay: it becomes
// active immediately with empty routing state.
func (n *Node) Bootstrap() {
	if !n.alive || n.active {
		return
	}
	n.joinStart = n.env.Now()
	n.activate()
}

// Join starts the join protocol through the given seed node. With PNS
// enabled the node first runs the nearest-neighbour algorithm to find a
// nearby seed, then routes a join request to its own identifier.
func (n *Node) Join(seed NodeRef) {
	if !n.alive || n.active {
		return
	}
	n.joinStart = n.env.Now()
	n.joinSeed = seed
	if n.cfg.PNS {
		n.startNearestNeighbour(seed)
		return
	}
	n.sendJoinRequest(seed)
}

// Fail crashes the node: it stops responding to messages and timers. This
// models the fail-stop departures injected by the churn traces.
func (n *Node) Fail() {
	n.alive = false
	n.active = false
	if n.tickTimer != nil {
		n.tickTimer.Cancel()
		n.tickTimer = nil
	}
	if n.repairTimer != nil {
		n.repairTimer.Cancel()
		n.repairTimer = nil
	}
	for _, ps := range n.probing {
		if ps.timer != nil {
			ps.timer.Cancel()
		}
	}
	for _, ph := range n.pending {
		if ph.timer != nil {
			ph.timer.Cancel()
		}
	}
	for _, ds := range n.distSessions {
		if ds.timer != nil {
			ds.timer.Cancel()
		}
	}
	for _, ss := range n.secureSess {
		if ss.timer != nil {
			ss.timer.Cancel()
		}
	}
}

// Lookup routes an application lookup to the root of key. It returns the
// sequence number identifying the lookup at this origin. Lookups can be
// issued before activation; they are held and routed once active.
func (n *Node) Lookup(key id.ID, payload []byte) (uint64, bool) {
	if !n.alive {
		return 0, false
	}
	n.nextLookupSeq++
	lk := &Lookup{
		Key:     key,
		Seq:     n.nextLookupSeq,
		Origin:  n.self,
		Issued:  n.env.Now(),
		NoAck:   !n.cfg.PerHopAcks,
		Payload: payload,
	}
	lk.TraceID = deriveTraceID(n.self, lk.Seq, lk.Issued)
	if n.cfg.SecureRouting {
		lk.WantReport = true
		n.startSecureSession(lk)
	}
	if n.tobs != nil {
		n.tobs.LookupIssued(n, lk)
	}
	// Route asynchronously so the caller observes the sequence number
	// before any delivery callback can fire (the origin may itself be the
	// key's root, in which case routing delivers immediately).
	n.schedule(0, func() { n.routeLookup(lk, nil) })
	return lk.Seq, true
}

// LookupSecure issues a lookup that is redundant from the start: besides
// the normal route, a diverse-path round goes out immediately rather
// than only after a failed test or timeout. The DHT uses it for writes,
// where a captured lookup silently strands the data on the wrong node.
// Falls back to a plain Lookup when secure routing is off.
func (n *Node) LookupSecure(key id.ID, payload []byte) (uint64, bool) {
	seq, ok := n.Lookup(key, payload)
	if !ok || !n.cfg.SecureRouting {
		return seq, ok
	}
	n.schedule(0, func() {
		if ss, live := n.secureSess[seq]; live {
			n.redundantRound(ss)
		}
	})
	return seq, true
}

// Receive processes one incoming message. The sender is identified by the
// message's From field; receipt of any message refreshes the sender's
// liveness.
func (n *Node) Receive(m Message) {
	if !n.alive {
		return
	}
	switch msg := m.(type) {
	case *Envelope:
		n.noteContact(msg.From, msg.TrtHint)
		n.handleEnvelope(msg)
	case *Ack:
		n.noteContact(msg.From, msg.TrtHint)
		n.handleAck(msg)
	case *LSProbe:
		n.noteContact(msg.From, msg.TrtHint)
		n.handleLSProbe(msg)
	case *LSProbeReply:
		n.noteContact(msg.From, msg.TrtHint)
		n.handleLSProbeReply(msg)
	case *Heartbeat:
		n.noteContact(msg.From, msg.TrtHint)
	case *RTProbe:
		n.noteContact(msg.From, msg.TrtHint)
		n.send(msg.From, &RTProbeReply{From: n.self, TrtHint: n.trtLocal})
	case *RTProbeReply:
		n.noteContact(msg.From, msg.TrtHint)
		n.handleRTProbeReply(msg)
	case *JoinReply:
		n.handleJoinReply(msg)
	case *DistProbe:
		n.noteContact(msg.From, 0)
		n.send(msg.From, &DistProbeReply{From: n.self, Seq: msg.Seq})
	case *DistProbeReply:
		n.noteContact(msg.From, 0)
		n.handleDistProbeReply(msg)
	case *DistReport:
		n.noteContact(msg.From, 0)
		n.handleDistReport(msg)
	case *RowRequest:
		n.noteContact(msg.From, 0)
		n.send(msg.From, &RowReply{From: n.self, Row: msg.Row, Entries: n.rt.Row(msg.Row)})
	case *RowReply:
		n.noteContact(msg.From, 0)
		n.handleRowEntries(append(msg.Entries, msg.From), false)
	case *RowAnnounce:
		// A join announcement: always measure the newcomer itself; the
		// other row entries only fill gaps (periodic maintenance handles
		// slot improvement).
		n.noteContact(msg.From, 0)
		n.handleRowEntries([]NodeRef{msg.From}, false)
		n.handleRowEntries(msg.Entries, true)
	case *RepairRequest:
		n.noteContact(msg.From, 0)
		n.handleRepairRequest(msg)
	case *RepairReply:
		n.noteContact(msg.From, 0)
		n.handleRowEntries(msg.Entries, true)
	case *NNStateRequest:
		n.noteContact(msg.From, 0)
		n.send(msg.From, &NNStateReply{From: n.self, Leaves: n.ls.Members(), Entries: n.rt.Entries()})
	case *NNStateReply:
		n.noteContact(msg.From, 0)
		n.handleNNStateReply(msg)
	case *AppDirect:
		n.noteContact(msg.From, 0)
		if n.app != nil {
			n.app.Direct(msg.From, msg.Payload)
		}
	case *RootReport:
		n.noteContact(msg.From, msg.TrtHint)
		n.handleRootReport(msg)
	default:
		panic(fmt.Sprintf("pastry: unknown message %T", m))
	}
}

// noteContact records that a message was received directly from the peer.
// Direct contact is what authorises inserting a node into routing state
// (the paper's anti-propagation rule for dead nodes), refreshes failure
// detection (probe suppression) and carries self-tuning hints.
func (n *Node) noteContact(from NodeRef, hint time.Duration) {
	if from.IsZero() || from.ID == n.self.ID {
		return
	}
	now := n.env.Now()
	rec := n.peers.Obtain(from.ID, from.Addr, now)
	rec.LastRecv = now
	if _, wasFailed := n.failed[from.ID]; wasFailed {
		// A node we marked faulty is alive after all: false positive.
		delete(n.failed, from.ID)
		n.counters.FalsePositives++
	}
	n.forgetFailed(from)
	// Opportunistic routing-table fill: we heard from the node directly.
	n.rt.Add(from)
	// A direct sender that belongs in our leaf set but is missing from it
	// (for example after a false positive was announced and repaired
	// around) is probed so the leaf set re-admits it. Direct contact
	// satisfies the insertion discipline; probing, rather than inserting
	// outright, also exchanges leaf-set state.
	if n.active && !n.ls.Contains(from.ID) && n.wouldExtendLeafSet(from) &&
		n.markCandidateProbe(from) {
		noteProbeCause("direct-contact")
		n.probeLeaf(from)
	}
	if hint > 0 {
		n.setTrtHint(rec, hint)
	}
}

// markCandidateProbe records a leaf-candidate probe attempt and reports
// whether the candidate is due (not probed within the heartbeat period).
func (n *Node) markCandidateProbe(ref NodeRef) bool {
	now := n.env.Now()
	s := n.suppressOf(n.peers.Obtain(ref.ID, ref.Addr, now))
	if s.lsCandidate != 0 && now-s.lsCandidate < n.cfg.Tls {
		return false
	}
	s.lsCandidate = now
	return true
}

// send transmits a message and records the contact for suppression.
func (n *Node) send(to NodeRef, m Message) {
	if to.ID != n.self.ID {
		now := n.env.Now()
		n.peers.Obtain(to.ID, to.Addr, now).LastSent = now
	}
	if n.sobs != nil {
		env, isEnv := m.(*Envelope)
		n.sobs.MessageSent(n, m.Category(), isEnv && env.Retx)
	}
	n.env.Send(to, m)
}

// deriveTraceID computes the lookup trace identifier: FNV-1a over the
// origin's identity, sequence number and issue time. Deterministic — no
// random draw — so enabling tracing does not shift a simulation's seeded
// random streams.
func deriveTraceID(origin NodeRef, seq uint64, issued time.Duration) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	for _, b := range origin.ID.Bytes() {
		mix(b)
	}
	for i := 0; i < len(origin.Addr); i++ {
		mix(origin.Addr[i])
	}
	for i := 0; i < 8; i++ {
		mix(byte(seq >> (8 * i)))
	}
	v := uint64(issued)
	for i := 0; i < 8; i++ {
		mix(byte(v >> (8 * i)))
	}
	if h == 0 {
		h = 1 // zero means "untraced"
	}
	return h
}

// schedule wraps Env.Schedule with a liveness guard so callbacks never run
// on a crashed node.
func (n *Node) schedule(d time.Duration, fn func()) Timer {
	return n.env.Schedule(d, func() {
		if n.alive {
			fn()
		}
	})
}

// activate marks the node active, replays held messages and starts the
// periodic maintenance tick.
func (n *Node) activate() {
	n.active = true
	for idx := range n.failed {
		delete(n.failed, idx)
	}
	n.obs.Activated(n, n.env.Now()-n.joinStart)
	n.lastMaintenance = n.env.Now()
	n.startTick()
	n.announceRows()
	n.releaseHeld()
}

func (n *Node) startTick() {
	if n.tickTimer != nil {
		return
	}
	var tick func()
	tick = func() {
		n.tickTimer = n.schedule(n.cfg.TickInterval, tick)
		n.onTick()
	}
	// Desynchronise ticks across nodes.
	first := time.Duration(n.env.Rand().Int63n(int64(n.cfg.TickInterval)))
	n.tickTimer = n.schedule(first, tick)
}

// onTick runs the periodic maintenance: heartbeats, right-neighbour
// failure suspicion, routing-table liveness probing, self-tuning and
// periodic routing-table maintenance.
func (n *Node) onTick() {
	if !n.active {
		return
	}
	now := n.env.Now()
	n.sendHeartbeats(now)
	n.checkRightNeighbour(now)
	if n.cfg.ActiveProbing {
		n.scanRoutingTable(now)
	}
	if n.cfg.SelfTune {
		n.retune(now)
	}
	if n.cfg.PNS && n.cfg.RTMaintenance > 0 && now-n.lastMaintenance >= n.cfg.RTMaintenance {
		n.lastMaintenance = now
		n.periodicMaintenance()
	}
	if n.cfg.ReconnectInterval > 0 && now-n.lastReconnect >= n.cfg.ReconnectInterval {
		n.lastReconnect = now
		n.retryReconnect(now)
	}
	n.sweepPeers()
}

// holdLookup buffers a lookup the node cannot deliver or route yet.
func (n *Node) holdLookup(lk *Lookup) {
	const maxHeld = 256
	if len(n.holdBuffer) >= maxHeld {
		n.obs.LookupDropped(n, lk, DropBuffer)
		return
	}
	n.holdBuffer = append(n.holdBuffer, lk)
}

// releaseHeld re-routes messages buffered while the node was unable to
// deliver. Routing state may have changed, so they go through the full
// route function again.
func (n *Node) releaseHeld() {
	if len(n.holdBuffer) == 0 {
		return
	}
	held := n.holdBuffer
	n.holdBuffer = nil
	for _, lk := range held {
		n.routeLookup(lk, nil)
	}
}
