package pastry

import (
	"testing"
	"time"

	"mspastry/internal/id"
	"mspastry/internal/overload"
)

// secureTestConfig returns a small-test config with secure routing on.
func secureTestConfig() Config {
	cfg := testConfig()
	cfg.SecureRouting = true
	return cfg
}

// TestSecureLookupHonestPath checks the no-adversary fast path: a secure
// lookup delivers normally, the root's completion report passes the
// failure test, the session closes without redundant rounds, and no one
// is distrusted.
func TestSecureLookupHonestPath(t *testing.T) {
	net := newTestNet(t, 1)
	nodes := buildOverlay(t, net, 8, secureTestConfig())
	origin := nodes[0]
	key := nodes[5].Ref().ID
	root := trueRoot(nodes, key)

	seq, ok := origin.LookupSecure(key, nil)
	if !ok {
		t.Fatal("lookup refused")
	}
	net.run(30 * time.Second)

	c := origin.Stats()
	if c.SecureReports == 0 || c.SecureTestPass == 0 {
		t.Fatalf("no passing report: %+v", c)
	}
	if c.SecureTestFail != 0 || c.SecureDistrusted != 0 || c.SecureGiveUps != 0 {
		t.Fatalf("honest path raised suspicion: %+v", c)
	}
	if _, live := origin.secureSess[seq]; live {
		t.Fatal("session not closed after accepted report")
	}
	if root.Stats().DeliveredLookups == 0 {
		t.Fatalf("true root %v never delivered", root.Ref().ID)
	}
}

// TestSecureLookupForgedReport injects a forged sparse completion report
// ahead of the honest one: the failure test must flag it, trigger an
// immediate redundant round, and — once the honest report wins the vote —
// distrust the forger (exclusion plus tripped breaker).
func TestSecureLookupForgedReport(t *testing.T) {
	net := newTestNet(t, 1)
	nodes := buildOverlay(t, net, 8, secureTestConfig())
	origin := nodes[0]
	key := nodes[5].Ref().ID

	seq, ok := origin.LookupSecure(key, nil)
	if !ok {
		t.Fatal("lookup refused")
	}
	// Forge a report from a far-away "colluder" with a two-node leaf set
	// before the honest root's report can arrive.
	colluder := NodeRef{ID: key.Distance(id.Half), Addr: "t-colluder"}
	origin.Receive(&RootReport{
		From: colluder,
		Seq:  seq,
		Key:  key,
		Leaves: []NodeRef{
			{ID: id.New(1, 1), Addr: "t-x"},
			{ID: id.New(2, 2), Addr: "t-y"},
		},
	})
	c := origin.Stats()
	if c.SecureTestFail != 1 {
		t.Fatalf("forged report not flagged: %+v", c)
	}
	if c.SecureRedundantRounds != 1 || c.SecureRedundantSends == 0 {
		t.Fatalf("first suspicion did not trigger a redundant round: %+v", c)
	}

	net.run(30 * time.Second)
	c = origin.Stats()
	if c.SecureTestPass == 0 {
		t.Fatalf("honest report never accepted: %+v", c)
	}
	if c.SecureDistrusted != 1 {
		t.Fatalf("forger not distrusted after losing the vote: %+v", c)
	}
	if _, live := origin.secureSess[seq]; live {
		t.Fatal("session not closed")
	}
}

// TestSecureLookupGivesUpAfterMaxRounds starves the origin of reports
// entirely (every RootReport is dropped in flight): the session must
// spend exactly SecureMaxRounds redundant rounds and then close with a
// give-up, leaving no timer or session state behind.
func TestSecureLookupGivesUpAfterMaxRounds(t *testing.T) {
	net := newTestNet(t, 1)
	net.drop = func(from, to NodeRef, m Message) bool {
		_, isReport := m.(*RootReport)
		return isReport
	}
	nodes := buildOverlay(t, net, 8, secureTestConfig())
	origin := nodes[0]

	seq, ok := origin.LookupSecure(id.Random(net.sim.Rand()), nil)
	if !ok {
		t.Fatal("lookup refused")
	}
	net.run(2 * time.Minute)

	c := origin.Stats()
	if want := uint64(origin.cfg.SecureMaxRounds); c.SecureRedundantRounds != want {
		t.Fatalf("redundant rounds = %d, want %d", c.SecureRedundantRounds, want)
	}
	if c.SecureGiveUps != 1 {
		t.Fatalf("give-ups = %d, want 1", c.SecureGiveUps)
	}
	if _, live := origin.secureSess[seq]; live {
		t.Fatal("session not closed after give-up")
	}
}

// TestPruneOverloadStateEvictsDeparted pins the membership eviction:
// breaker and retry-budget state survives the registry sweep only while
// the peer is still in the leaf set or routing table — state about
// anyone else can never influence a next-hop decision and would
// otherwise accumulate without bound under churn.
func TestPruneOverloadStateEvictsDeparted(t *testing.T) {
	net := newTestNet(t, 1)
	nodes := buildOverlay(t, net, 4, testConfig())
	n := nodes[0]
	member := nodes[1].Ref()
	if !n.inRoutingState(member.ID) {
		t.Fatalf("%v not in node 0's routing state", member.ID)
	}
	stranger := id.New(0xdead, 0xbeef)
	if n.inRoutingState(stranger) {
		t.Fatal("stranger unexpectedly in routing state")
	}
	now := net.sim.Now()

	for _, x := range []id.ID{member.ID, stranger} {
		st := n.overloadOf(n.peers.Obtain(x, "", now))
		b := &overload.Breaker{Threshold: n.cfg.BreakerThreshold,
			Cooldown: n.cfg.BreakerCooldown, MaxCooldown: n.cfg.BreakerMaxCooldown}
		b.Trip(now)
		st.breaker = b
		tb := overload.NewTokenBucket(0.001, 4, now)
		tb.Take(now)
		st.budget = tb
	}

	n.sweepPeers()

	if st := n.overloadFor(member.ID); st == nil || st.breaker == nil || st.budget == nil {
		t.Fatal("active records for a routing-state member were evicted")
	}
	if st := n.overloadFor(stranger); st != nil {
		t.Fatal("records for a departed peer survived pruning")
	}
}

// TestDiverseFirstHops checks the redundancy fan-out selection: no
// duplicates, never self, respects the used set, and caps at
// SecureFanout.
func TestDiverseFirstHops(t *testing.T) {
	net := newTestNet(t, 1)
	nodes := buildOverlay(t, net, 10, secureTestConfig())
	n := nodes[0]
	key := id.Random(net.sim.Rand())

	used := make(map[id.ID]bool)
	first := n.diverseFirstHops(key, used)
	if len(first) == 0 || len(first) > n.cfg.SecureFanout {
		t.Fatalf("round 1 picked %d hops, want 1..%d", len(first), n.cfg.SecureFanout)
	}
	seen := make(map[id.ID]bool)
	for _, h := range first {
		if h.ID == n.Ref().ID {
			t.Fatal("picked self as first hop")
		}
		if seen[h.ID] {
			t.Fatalf("duplicate pick %v", h.ID)
		}
		seen[h.ID] = true
		used[h.ID] = true
	}
	for _, h := range n.diverseFirstHops(key, used) {
		if used[h.ID] {
			t.Fatalf("round 2 reused first hop %v", h.ID)
		}
	}
}
