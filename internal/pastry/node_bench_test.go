package pastry

import (
	"math/rand"
	"testing"
	"time"

	"mspastry/internal/eventsim"
	"mspastry/internal/id"
)

// benchNode builds a node with a realistic amount of routing state.
func benchNode(b *testing.B, peers int) (*testNet, *Node, []NodeRef) {
	b.Helper()
	net := &testNet{
		sim:   eventsim.New(1),
		nodes: make(map[string]*Node),
		delay: time.Millisecond,
		sent:  make(map[Category]int),
	}
	rng := rand.New(rand.NewSource(1))
	self := id.Random(rng)
	env := &testEnv{net: net, addr: "b0", self: NodeRef{ID: self, Addr: "b0"}}
	cfg := DefaultConfig()
	n, err := NewNode(env.self, cfg, env, nil)
	if err != nil {
		b.Fatal(err)
	}
	net.nodes["b0"] = n
	n.Bootstrap()
	var refs []NodeRef
	for i := 0; i < peers; i++ {
		ref := NodeRef{ID: id.Random(rng), Addr: "peer"}
		refs = append(refs, ref)
		n.rt.AddWithRTT(ref, time.Duration(rng.Intn(100))*time.Millisecond)
		n.ls.Add(ref)
	}
	return net, n, refs
}

func BenchmarkNodeNextHop(b *testing.B) {
	_, n, _ := benchNode(b, 2000)
	rng := rand.New(rand.NewSource(2))
	keys := make([]id.ID, 1024)
	for i := range keys {
		keys[i] = id.Random(rng)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.nextHop(keys[i%len(keys)], nil)
	}
}

func BenchmarkNodeReceiveLookupEnvelope(b *testing.B) {
	_, n, refs := benchNode(b, 2000)
	rng := rand.New(rand.NewSource(3))
	envs := make([]*Envelope, 256)
	for i := range envs {
		envs[i] = &Envelope{
			Xfer:    uint64(i),
			NeedAck: true,
			From:    refs[rng.Intn(len(refs))],
			Lookup: &Lookup{
				Key:    id.Random(rng),
				Seq:    uint64(i),
				Origin: refs[rng.Intn(len(refs))],
			},
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := envs[i%len(envs)]
		lk := *e.Lookup
		env := *e
		env.Lookup = &lk
		n.Receive(&env)
	}
}

func BenchmarkNodeHandleLSProbe(b *testing.B) {
	_, n, refs := benchNode(b, 64)
	rng := rand.New(rand.NewSource(4))
	probes := make([]*LSProbe, 64)
	for i := range probes {
		leaves := make([]NodeRef, 16)
		for j := range leaves {
			leaves[j] = refs[rng.Intn(len(refs))]
		}
		probes[i] = &LSProbe{From: refs[rng.Intn(len(refs))], Leaves: leaves}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Receive(probes[i%len(probes)])
	}
}

func BenchmarkLeafSetAdd(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	self := id.Random(rng)
	refs := make([]NodeRef, 4096)
	for i := range refs {
		refs[i] = NodeRef{ID: id.Random(rng), Addr: "x"}
	}
	ls := NewLeafSet(self, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ls.Add(refs[i%len(refs)])
	}
}

func BenchmarkSolveTrt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		solveTrt(0.05, 30, 3, 1.2e-4, 2.57, 2, 9, 3600)
	}
}

// BenchmarkLeafSetMembers measures the deduplicated member enumeration
// that routing fallback, delivery guards, probing and the dht sweeps all
// call — one of the hottest read paths in the node.
func BenchmarkLeafSetMembers(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	self := id.Random(rng)
	ls := NewLeafSet(self, 32)
	for i := 0; i < 4096; i++ {
		ls.Add(NodeRef{ID: id.Random(rng), Addr: "x"})
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += len(ls.Members())
	}
	_ = sink
}

// BenchmarkMessageWireSize measures the per-send size accounting the
// simulated network charges every message (netmodel Send, no coalescing).
func BenchmarkMessageWireSize(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	leaves := make([]NodeRef, 16)
	for i := range leaves {
		leaves[i] = NodeRef{ID: id.Random(rng), Addr: "12345"}
	}
	msgs := []Message{
		&Ack{Xfer: 12345, From: leaves[0], TrtHint: 30 * time.Second},
		&Heartbeat{From: leaves[1], TrtHint: 30 * time.Second},
		&Envelope{
			Xfer: 9, NeedAck: true, From: leaves[2], TrtHint: 30 * time.Second,
			Lookup: &Lookup{Key: id.Random(rng), Seq: 77, Origin: leaves[3]},
		},
		&LSProbe{From: leaves[4], Leaves: leaves, TrtHint: 30 * time.Second},
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += MessageWireSize(msgs[i%len(msgs)])
	}
	_ = sink
}
