package pastry

import (
	"fmt"
	"time"
)

// Config holds the MSPastry protocol parameters. DefaultConfig returns the
// paper's base configuration; the boolean switches exist to run the paper's
// ablation experiments (per-hop acks, active probing, self-tuning, probe
// suppression, symmetric probing, structured heartbeats).
type Config struct {
	// B is the number of bits per identifier digit (paper default 4, so
	// identifiers are base 16).
	B int
	// L is the leaf set size; L/2 neighbours on each side (paper: 32).
	L int

	// Tls is the leaf-set heartbeat period (paper: 30 s).
	Tls time.Duration
	// To is the probe timeout (paper: 3 s, the TCP SYN timeout).
	To time.Duration
	// MaxProbeRetries is the number of probe retries before a node is
	// marked faulty (paper: 2).
	MaxProbeRetries int

	// PerHopAcks enables per-hop acknowledgements with aggressive
	// retransmission for lookup traffic.
	PerHopAcks bool
	// MaxRouteAttempts bounds how many times one hop of a routed message
	// is retransmitted (to alternative next hops) before being dropped.
	MaxRouteAttempts int
	// MinRTO and MaxRTO clamp the per-hop retransmission timeout.
	MinRTO, MaxRTO time.Duration
	// HoldOnSuspect prevents a node from delivering a lookup while a
	// closer node is suspected-but-unconfirmed (excluded after a missed
	// ack): the message is held or retransmitted with backoff until the
	// suspect's probe resolves. This is the consistency/latency trade-off
	// the paper discusses for the last hop; disabling it lowers delay
	// slightly but admits incorrect deliveries under link loss.
	HoldOnSuspect bool

	// ActiveProbing enables liveness probing of routing-table entries.
	ActiveProbing bool
	// SelfTune enables self-tuning of the routing-table probing period to
	// hit TargetRawLoss; when disabled, FixedTrt is used.
	SelfTune bool
	// TargetRawLoss is the raw loss-rate target Lr (paper: 5%).
	TargetRawLoss float64
	// FixedTrt is the routing-table probing period when SelfTune is off.
	FixedTrt time.Duration
	// FailureHistoryK is the size of the failure history used to estimate
	// the failure rate.
	FailureHistoryK int

	// Suppression replaces failure-detection traffic with any message
	// traffic observed between a pair of nodes.
	Suppression bool
	// StructuredHeartbeats sends a single heartbeat to the left ring
	// neighbour instead of to every leaf-set member (paper §4.1). The
	// all-pairs variant exists as an ablation baseline.
	StructuredHeartbeats bool

	// PNS enables proximity neighbour selection (nearest-neighbour join
	// seeding, distance probing, constrained gossiping).
	PNS bool
	// DistProbeCount and DistProbeSpacing configure distance measurement
	// (paper: median of 3 probes spaced 1 s).
	DistProbeCount   int
	DistProbeSpacing time.Duration
	// SymmetricProbes enables the symmetric distance-probe optimisation.
	SymmetricProbes bool
	// RTMaintenance is the periodic routing-table maintenance interval
	// (paper: 20 minutes).
	RTMaintenance time.Duration

	// ReconnectInterval is how often a node re-probes one peer from its
	// reconnect cache — peers it marked faulty and purged from routing
	// state. Crash-failed peers cost a bounded number of extra pings;
	// peers that were merely unreachable (a network partition) answer
	// once the network heals, which is how the overlay re-merges: without
	// the cache, a partition outlasting the probing period is permanent,
	// because both sides purge each other completely and no message ever
	// crosses the cut again. 0 disables the cache.
	ReconnectInterval time.Duration
	// ReconnectRetries caps the probes per cached peer before its record
	// is dropped for good, bounding post-mortem traffic per failure.
	ReconnectRetries int
	// ReconnectCacheSize bounds the cache; the most-retried record is
	// evicted first.
	ReconnectCacheSize int

	// TickInterval is the internal maintenance timer granularity.
	TickInterval time.Duration
	// LookupTTL bounds the number of overlay hops (routing loops are
	// impossible in a consistent state; the TTL guards churn races).
	LookupTTL int

	// RetryBudgetRate caps retransmission and probe-retry traffic per
	// peer with a token bucket refilling at this many tokens per second.
	// A struggling peer then triggers re-routing around it instead of an
	// exponential retransmission storm (first transmissions and re-routes
	// to other peers are never budgeted — only repeat sends to the same
	// peer are). 0 disables retry budgets.
	RetryBudgetRate float64
	// RetryBudgetBurst is the bucket depth: how many budgeted sends to
	// one peer may happen back to back before the rate limit bites.
	RetryBudgetBurst int

	// BreakerThreshold is the number of consecutive per-hop ack failures
	// after which a peer's circuit breaker opens: the peer is fast-failed
	// and routed around until a recovery probe succeeds. 0 disables
	// circuit breakers.
	BreakerThreshold int
	// BreakerCooldown is how long an opened breaker waits before probing
	// the peer (half-open); each failed recovery probe doubles the wait
	// up to BreakerMaxCooldown.
	BreakerCooldown time.Duration
	// BreakerMaxCooldown caps the doubling backoff between recovery
	// probes.
	BreakerMaxCooldown time.Duration

	// SecureRouting enables the Byzantine-routing defenses: lookups ask
	// the root for a completion report, the report's leaf-set density is
	// checked against the locally observed id-space density (the routing
	// failure test), and suspected misroutes are re-issued over multiple
	// neighbour-diverse first hops whose reports vote on the true root.
	// Off by default: the honest-world baseline pays no report traffic.
	SecureRouting bool
	// SecureFanout is how many diverse first hops a redundant round uses.
	SecureFanout int
	// SecureMaxRounds bounds redundant rounds per lookup.
	SecureMaxRounds int
	// SecureReplyTimeout is how long the origin waits for a plausible
	// root report before (re-)issuing a redundant round.
	SecureReplyTimeout time.Duration
	// SecureDensityRatio is the failure test's suspicion threshold: a
	// reported neighbourhood sparser than this multiple of the local
	// density estimate is flagged (γ in internal/secure).
	SecureDensityRatio float64
	// SecureDistanceRatio flags roots farther than this multiple of the
	// local mean inter-node gap from the key (δ in internal/secure).
	SecureDistanceRatio float64

	// PeerStrangerTTL bounds how long per-peer state survives for a peer
	// that was never admitted into routing state (leaf set, routing table
	// or an active probe): senders that never make it in cannot leak
	// liveness or RTT state indefinitely. PeerAdmittedTTL is the idle
	// lifetime for once-admitted peers, preserving RTT estimates and
	// reconnect memory across transient membership gaps. Zero values take
	// the registry defaults (1 minute / 10 minutes).
	PeerStrangerTTL time.Duration
	PeerAdmittedTTL time.Duration
}

// DefaultConfig returns the paper's base configuration: b=4, l=32,
// Tls=30s, per-hop acks, routing-table probing self-tuned to a 5% raw loss
// rate, probe suppression and symmetric distance probes.
func DefaultConfig() Config {
	return Config{
		B:                    4,
		L:                    32,
		Tls:                  30 * time.Second,
		To:                   3 * time.Second,
		MaxProbeRetries:      2,
		PerHopAcks:           true,
		MaxRouteAttempts:     8,
		HoldOnSuspect:        true,
		MinRTO:               10 * time.Millisecond,
		MaxRTO:               3 * time.Second,
		ActiveProbing:        true,
		SelfTune:             true,
		TargetRawLoss:        0.05,
		FixedTrt:             60 * time.Second,
		FailureHistoryK:      16,
		Suppression:          true,
		StructuredHeartbeats: true,
		PNS:                  true,
		DistProbeCount:       3,
		DistProbeSpacing:     time.Second,
		SymmetricProbes:      true,
		RTMaintenance:        20 * time.Minute,
		ReconnectInterval:    30 * time.Second,
		ReconnectRetries:     20,
		ReconnectCacheSize:   32,
		TickInterval:         15 * time.Second,
		LookupTTL:            64,
		RetryBudgetRate:      2,
		RetryBudgetBurst:     8,
		BreakerThreshold:     3,
		BreakerCooldown:      3 * time.Second,
		BreakerMaxCooldown:   time.Minute,
		SecureFanout:         4,
		SecureMaxRounds:      3,
		SecureReplyTimeout:   5 * time.Second,
		SecureDensityRatio:   4,
		SecureDistanceRatio:  8,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.B < 1 || c.B > 8:
		return fmt.Errorf("pastry: B=%d outside [1,8]", c.B)
	case c.L < 2 || c.L%2 != 0:
		return fmt.Errorf("pastry: L=%d must be even and >= 2", c.L)
	case c.Tls <= 0 || c.To <= 0:
		return fmt.Errorf("pastry: Tls and To must be positive")
	case c.MaxProbeRetries < 0:
		return fmt.Errorf("pastry: MaxProbeRetries negative")
	case c.SelfTune && (c.TargetRawLoss <= 0 || c.TargetRawLoss >= 1):
		return fmt.Errorf("pastry: TargetRawLoss=%v outside (0,1)", c.TargetRawLoss)
	case !c.SelfTune && c.ActiveProbing && c.FixedTrt <= 0:
		return fmt.Errorf("pastry: FixedTrt must be positive without self-tuning")
	case c.DistProbeCount < 1:
		return fmt.Errorf("pastry: DistProbeCount must be >= 1")
	case c.MaxRouteAttempts < 1:
		return fmt.Errorf("pastry: MaxRouteAttempts must be >= 1")
	case c.ReconnectInterval < 0:
		return fmt.Errorf("pastry: ReconnectInterval negative")
	case c.ReconnectInterval > 0 && (c.ReconnectRetries < 1 || c.ReconnectCacheSize < 1):
		return fmt.Errorf("pastry: reconnect cache needs positive retries and size")
	case c.TickInterval <= 0:
		return fmt.Errorf("pastry: TickInterval must be positive")
	case c.LookupTTL < 1:
		return fmt.Errorf("pastry: LookupTTL must be >= 1")
	case c.RetryBudgetRate < 0:
		return fmt.Errorf("pastry: RetryBudgetRate negative")
	case c.RetryBudgetRate > 0 && c.RetryBudgetBurst < 1:
		return fmt.Errorf("pastry: RetryBudgetBurst must be >= 1 with a retry budget")
	case c.BreakerThreshold < 0:
		return fmt.Errorf("pastry: BreakerThreshold negative")
	case c.BreakerThreshold > 0 && c.BreakerCooldown <= 0:
		return fmt.Errorf("pastry: BreakerCooldown must be positive with breakers enabled")
	case c.BreakerThreshold > 0 && c.BreakerMaxCooldown < c.BreakerCooldown:
		return fmt.Errorf("pastry: BreakerMaxCooldown below BreakerCooldown")
	case c.SecureRouting && c.SecureFanout < 2:
		return fmt.Errorf("pastry: SecureFanout=%d must be >= 2 with secure routing", c.SecureFanout)
	case c.SecureRouting && c.SecureMaxRounds < 1:
		return fmt.Errorf("pastry: SecureMaxRounds must be >= 1 with secure routing")
	case c.SecureRouting && c.SecureReplyTimeout <= 0:
		return fmt.Errorf("pastry: SecureReplyTimeout must be positive with secure routing")
	case c.SecureRouting && (c.SecureDensityRatio <= 1 || c.SecureDistanceRatio <= 1):
		return fmt.Errorf("pastry: secure-routing ratios must exceed 1")
	case c.PeerStrangerTTL < 0 || c.PeerAdmittedTTL < 0:
		return fmt.Errorf("pastry: peer lifecycle TTLs must not be negative")
	}
	return nil
}

// MinTrt is the lower bound on the routing-table probing period:
// (retries+1) probe timeouts, as in the paper.
func (c Config) MinTrt() time.Duration {
	return time.Duration(c.MaxProbeRetries+1) * c.To
}
