package pastry

import (
	"time"

	"mspastry/internal/id"
	"mspastry/internal/overload"
	"mspastry/internal/peer"
)

// Per-peer state slots on the unified peer registry (see internal/peer).
//
// Every piece of per-peer protocol state the node keeps — self-tuning
// hints, probe-suppression memory, overload protection, the reconnect
// graveyard, RTT estimators — hangs off one peer.Record in n.peers,
// under the slot handles registered here. Each prunable slot's PruneFunc
// states exactly how long its state stays meaningful; the single sweep
// at the end of every maintenance tick (sweepPeers) applies them all and
// evicts fully drained records, broadcasting the eviction to transports
// and upper layers. No per-peer state survives eviction from routing
// state: that is the registry's invariant, pinned by the cross-layer
// leak-detector test in the harness.

// trtHint is the peer's advertised routing-table probing period, fed to
// the self-tuning median. A pointer so hot-path updates mutate in place
// instead of boxing a fresh value per message.
type trtHint struct{ d time.Duration }

// suppressState is probe-suppression memory: when the peer was last
// distance-probed, last probed as a leaf-set candidate, and last sent a
// leaf-set repair probe. Zero means "never" — the simulation clock is
// strictly positive whenever these are written.
type suppressState struct {
	distProbed  time.Duration
	lsCandidate time.Duration
	lastRepair  time.Duration
}

// overloadState is the peer's overload protection: circuit breaker and
// retry-budget token bucket (either may be nil).
type overloadState struct {
	breaker *overload.Breaker
	budget  *overload.TokenBucket
}

// initPeers creates the registry and registers the component slots.
// Registration order is pruning order within a record (immaterial here:
// no pruner reads another slot).
func (n *Node) initPeers() {
	n.peers = peer.New(peer.Config{
		StrangerTTL: n.cfg.PeerStrangerTTL,
		AdmittedTTL: n.cfg.PeerAdmittedTTL,
	})
	n.slotHint = n.peers.NewSlot("trt-hint", n.pruneHint)
	n.slotSuppress = n.peers.NewSlot("suppress", n.pruneSuppress)
	n.slotOverload = n.peers.NewSlot("overload", n.pruneOverload)
	n.slotGrave = n.peers.NewSlot("graveyard", pruneKeep)
	n.slotRTT = n.peers.NewRetainedSlot("rtt")
}

// sweepPeers runs the registry's prune pass; called once per maintenance
// tick. Membership for lifecycle purposes is the full routing state plus
// peers under an outstanding probe (a probe target must not be evicted
// mid-probe).
func (n *Node) sweepPeers() {
	n.peers.Sweep(n.env.Now(), n.peerIsMember)
}

// PeerMember reports whether x currently counts as routing-state
// membership for the registry lifecycle: leaf set, routing table, or an
// outstanding probe. Exposed for the cross-layer leak detector.
func (n *Node) PeerMember(x id.ID) bool { return n.peerIsMember(x) }

func (n *Node) peerIsMember(x id.ID) bool {
	if _, ok := n.probing[x]; ok {
		return true
	}
	return n.inRoutingState(x)
}

// pruneHint drops self-tuning hints from peers no longer in the leaf set
// or routing table, so the median reflects live peers. Deliberately
// narrower than peerIsMember: a peer under probe but out of routing
// state must not keep voting.
func (n *Node) pruneHint(x id.ID, v any, _ time.Duration, _ bool) any {
	if !n.inRoutingState(x) {
		return nil
	}
	return v
}

// pruneSuppress expires each suppression timestamp at twice its pacing
// window — after that a re-probe would be due anyway, so the memory
// carries no information.
func (n *Node) pruneSuppress(_ id.ID, v any, now time.Duration, _ bool) any {
	s := v.(*suppressState)
	if s.distProbed != 0 && now-s.distProbed > 2*n.cfg.RTMaintenance {
		s.distProbed = 0
	}
	if s.lsCandidate != 0 && now-s.lsCandidate > 2*n.cfg.Tls {
		s.lsCandidate = 0
	}
	if s.lastRepair != 0 && now-s.lastRepair > 2*n.cfg.To {
		s.lastRepair = 0
	}
	if s.distProbed == 0 && s.lsCandidate == 0 && s.lastRepair == 0 {
		return nil
	}
	return v
}

// pruneOverload drops idle overload-protection state so the slot tracks
// only peers under active suspicion: full (fully refilled) budget
// buckets, closed breakers with no strikes, and half-open breakers no
// traffic has tried for a full maximum cooldown carry no information.
// State for peers outside the leaf set and routing table goes too —
// routing only ever picks next hops from those two structures.
func (n *Node) pruneOverload(x id.ID, v any, now time.Duration, _ bool) any {
	st := v.(*overloadState)
	if st.budget != nil && (st.budget.Full(now) || !n.inRoutingState(x)) {
		st.budget = nil
	}
	if b := st.breaker; b != nil &&
		((b.State() == overload.BreakerClosed && b.Failures() == 0) || b.Stale(now) || !n.inRoutingState(x)) {
		st.breaker = nil
	}
	if st.budget == nil && st.breaker == nil {
		return nil
	}
	return v
}

// pruneKeep retains the slot value until it is cleared explicitly — the
// reconnect graveyard manages its own expiry (retryReconnect).
func pruneKeep(_ id.ID, v any, _ time.Duration, _ bool) any { return v }

// setTrtHint records the peer's advertised probing period.
func (n *Node) setTrtHint(rec *peer.Record, d time.Duration) {
	if h, _ := rec.Get(n.slotHint).(*trtHint); h != nil {
		h.d = d
		return
	}
	n.peers.Put(rec, n.slotHint, &trtHint{d: d})
}

// suppressOf returns the record's suppression memory, creating it when
// absent (every caller writes a field right after checking it).
func (n *Node) suppressOf(rec *peer.Record) *suppressState {
	if s, _ := rec.Get(n.slotSuppress).(*suppressState); s != nil {
		return s
	}
	s := &suppressState{}
	n.peers.Put(rec, n.slotSuppress, s)
	return s
}

// overloadOf returns the record's overload state, creating it when
// absent.
func (n *Node) overloadOf(rec *peer.Record) *overloadState {
	if st, _ := rec.Get(n.slotOverload).(*overloadState); st != nil {
		return st
	}
	st := &overloadState{}
	n.peers.Put(rec, n.slotOverload, st)
	return st
}

// overloadFor is the read-only lookup: nil when the peer has no record
// or no overload state.
func (n *Node) overloadFor(x id.ID) *overloadState {
	rec := n.peers.Lookup(x)
	if rec == nil {
		return nil
	}
	st, _ := rec.Get(n.slotOverload).(*overloadState)
	return st
}

// clearSlot empties the peer's slot if it holds a value.
func (n *Node) clearSlot(x id.ID, s peer.Slot) {
	if rec := n.peers.Lookup(x); rec != nil && rec.Get(s) != nil {
		n.peers.Put(rec, s, nil)
	}
}

// Peers returns the node's per-peer state registry. Transports and upper
// layers subscribe to eviction broadcasts here; telemetry and tests read
// cardinality.
func (n *Node) Peers() *peer.Registry { return n.peers }

// PeerStats snapshots the registry's cardinality and prune economics for
// status reporting. Kept out of Counters on purpose: the evaluation's
// counter set is frozen by the canonical report format.
func (n *Node) PeerStats() peer.Stats { return n.peers.Stats() }
