package pastry

import (
	"mspastry/internal/id"
)

// LeafSet holds the l/2 closest nodes on each side of the local node in
// identifier space. The two sides are maintained independently; in overlays
// with fewer than l nodes the sides overlap (the set "wraps" around the
// ring), which is how a node detects that it knows the entire ring.
//
// Leaf sets are the basis of MSPastry's consistency guarantee, so callers
// must respect the insertion discipline from the paper: a node is only
// added after a message was received directly from it (or during join
// initialisation, before the local node is active).
type LeafSet struct {
	self id.ID
	half int
	// left is sorted by counter-clockwise distance from self (closest
	// first); right is sorted by clockwise distance (closest first).
	left, right []NodeRef
	// members caches the deduplicated union of both sides. Routing
	// fallback, delivery guards, probing and the dht sweeps all enumerate
	// the membership far more often than it changes, so the union is
	// rebuilt lazily after a mutation instead of on every read. nil means
	// stale; rebuilds always allocate a fresh slice so previously returned
	// snapshots stay immutable.
	members []NodeRef
}

// NewLeafSet creates an empty leaf set for a node with the given id and
// total size l (l/2 per side).
func NewLeafSet(self id.ID, l int) *LeafSet {
	return &LeafSet{self: self, half: l / 2}
}

// Half returns the per-side capacity l/2.
func (ls *LeafSet) Half() int { return ls.half }

// Add inserts a node into whichever sides it belongs to and reports whether
// the leaf set changed. Adding self is a no-op.
func (ls *LeafSet) Add(ref NodeRef) bool {
	if ref.ID == ls.self || ref.IsZero() {
		return false
	}
	changed := insertSorted(&ls.right, ref, ls.half, func(a, b NodeRef) bool {
		return ls.self.Clockwise(a.ID).Cmp(ls.self.Clockwise(b.ID)) < 0
	})
	if insertSorted(&ls.left, ref, ls.half, func(a, b NodeRef) bool {
		return a.ID.Clockwise(ls.self).Cmp(b.ID.Clockwise(ls.self)) < 0
	}) {
		changed = true
	}
	if changed {
		ls.members = nil
	}
	return changed
}

func insertSorted(side *[]NodeRef, ref NodeRef, capn int, less func(a, b NodeRef) bool) bool {
	s := *side
	for _, e := range s {
		if e.ID == ref.ID {
			return false
		}
	}
	pos := len(s)
	for i, e := range s {
		if less(ref, e) {
			pos = i
			break
		}
	}
	if pos >= capn {
		return false
	}
	s = append(s, NodeRef{})
	copy(s[pos+1:], s[pos:])
	s[pos] = ref
	if len(s) > capn {
		s = s[:capn]
	}
	*side = s
	return true
}

// Remove deletes a node from both sides and reports whether it was present.
func (ls *LeafSet) Remove(x id.ID) bool {
	removed := removeID(&ls.left, x)
	if removeID(&ls.right, x) {
		removed = true
	}
	if removed {
		ls.members = nil
	}
	return removed
}

func removeID(side *[]NodeRef, x id.ID) bool {
	s := *side
	for i, e := range s {
		if e.ID == x {
			*side = append(s[:i], s[i+1:]...)
			return true
		}
	}
	return false
}

// RemoveAll removes every node in refs.
func (ls *LeafSet) RemoveAll(refs []NodeRef) {
	for _, r := range refs {
		ls.Remove(r.ID)
	}
}

// Contains reports whether x is in the leaf set.
func (ls *LeafSet) Contains(x id.ID) bool {
	for _, e := range ls.left {
		if e.ID == x {
			return true
		}
	}
	for _, e := range ls.right {
		if e.ID == x {
			return true
		}
	}
	return false
}

// Left returns the left side, closest neighbour first. The returned slice
// must not be modified.
func (ls *LeafSet) Left() []NodeRef { return ls.left }

// Right returns the right side, closest neighbour first. The returned
// slice must not be modified.
func (ls *LeafSet) Right() []NodeRef { return ls.right }

// LeftNeighbour returns the closest node on the left, if any.
func (ls *LeafSet) LeftNeighbour() (NodeRef, bool) {
	if len(ls.left) == 0 {
		return NodeRef{}, false
	}
	return ls.left[0], true
}

// RightNeighbour returns the closest node on the right, if any.
func (ls *LeafSet) RightNeighbour() (NodeRef, bool) {
	if len(ls.right) == 0 {
		return NodeRef{}, false
	}
	return ls.right[0], true
}

// Leftmost returns the farthest node on the left side, if any.
func (ls *LeafSet) Leftmost() (NodeRef, bool) {
	if len(ls.left) == 0 {
		return NodeRef{}, false
	}
	return ls.left[len(ls.left)-1], true
}

// Rightmost returns the farthest node on the right side, if any.
func (ls *LeafSet) Rightmost() (NodeRef, bool) {
	if len(ls.right) == 0 {
		return NodeRef{}, false
	}
	return ls.right[len(ls.right)-1], true
}

// Empty reports whether both sides are empty (a singleton overlay).
func (ls *LeafSet) Empty() bool { return len(ls.left) == 0 && len(ls.right) == 0 }

// Wrapped reports whether the two sides overlap, meaning the leaf set
// covers the entire ring (the overlay has at most l+1 nodes).
func (ls *LeafSet) Wrapped() bool {
	if len(ls.left) == 0 || len(ls.right) == 0 {
		return false
	}
	farLeft := ls.left[len(ls.left)-1].ID
	for _, e := range ls.right {
		if e.ID == farLeft {
			return true
		}
	}
	farRight := ls.right[len(ls.right)-1].ID
	for _, e := range ls.left {
		if e.ID == farRight {
			return true
		}
	}
	return false
}

// Complete reports whether the leaf set is complete: both sides full, or
// the set wraps around the whole ring. A node only becomes active once its
// leaf set is complete and all members acknowledged it (paper, Figure 2).
func (ls *LeafSet) Complete() bool {
	if len(ls.left) == ls.half && len(ls.right) == ls.half {
		return true
	}
	return ls.Wrapped()
}

// InRange reports whether key k falls inside the identifier arc covered by
// the leaf set (from the leftmost member clockwise to the rightmost). With
// an empty leaf set every key is in range (singleton ring).
func (ls *LeafSet) InRange(k id.ID) bool {
	if ls.Empty() || ls.Wrapped() {
		return true
	}
	lm, okL := ls.Leftmost()
	rm, okR := ls.Rightmost()
	if !okL || !okR {
		// One side empty: treat the local node as the missing bound.
		if !okL {
			return id.Between(ls.self, rm.ID, k)
		}
		return id.Between(lm.ID, ls.self, k)
	}
	return id.Between(lm.ID, rm.ID, k)
}

// Closest returns the leaf-set member (or the local node) whose identifier
// is closest to k. The boolean is false when the result is the local node.
func (ls *LeafSet) Closest(k id.ID, excluded func(id.ID) bool) (NodeRef, bool) {
	best := NodeRef{ID: ls.self}
	found := false
	consider := func(ref NodeRef) {
		if excluded != nil && excluded(ref.ID) {
			return
		}
		if id.CloserToKey(k, ref.ID, best.ID) {
			best = ref
			found = true
		}
	}
	for _, e := range ls.left {
		consider(e)
	}
	for _, e := range ls.right {
		consider(e)
	}
	if !found {
		return NodeRef{ID: ls.self}, false
	}
	// The local node may still be the closest overall.
	if id.CloserToKey(k, ls.self, best.ID) || ls.self == best.ID {
		return NodeRef{ID: ls.self}, false
	}
	return best, true
}

// Members returns all distinct leaf-set members, left side first. The
// returned slice is a shared snapshot: callers must not modify it, and its
// capacity is clipped so appending to it cannot either.
func (ls *LeafSet) Members() []NodeRef {
	if ls.members == nil {
		out := make([]NodeRef, 0, len(ls.left)+len(ls.right))
		out = append(out, ls.left...)
		// Both sides are small (≤ l/2 each), so a linear dedup scan beats
		// a map allocation.
	rightSide:
		for _, e := range ls.right {
			for _, l := range ls.left {
				if l.ID == e.ID {
					continue rightSide
				}
			}
			out = append(out, e)
		}
		ls.members = out[:len(out):len(out)]
	}
	return ls.members
}

// Size returns the number of distinct members.
func (ls *LeafSet) Size() int { return len(ls.Members()) }

// SpanFraction returns the fraction of the identifier ring covered by the
// leaf set (from leftmost to rightmost through self). Used to estimate the
// overlay size N from leaf-set density. A wrapped leaf set covers the
// whole ring, so its fraction is 1 (making the density estimate equal to
// the member count, which is then the true overlay size).
func (ls *LeafSet) SpanFraction() float64 {
	lm, okL := ls.Leftmost()
	rm, okR := ls.Rightmost()
	if !okL || !okR {
		return 0
	}
	if ls.Wrapped() {
		return 1
	}
	span := lm.ID.Clockwise(rm.ID)
	return idToFloat(span) / idRingSize
}

const idRingSize = 3.402823669209385e38 // 2^128

func idToFloat(x id.ID) float64 {
	return float64(x.Hi)*18446744073709551616.0 + float64(x.Lo)
}
