package pastry

import (
	"testing"
	"time"

	"mspastry/internal/id"
)

func TestHeartbeatGoesToLeftNeighbourOnly(t *testing.T) {
	net := newTestNet(t, 101)
	cfg := testConfig()
	cfg.Suppression = false // count raw heartbeats
	nodes := buildOverlay(t, net, 6, cfg)
	// Count heartbeats per (sender, receiver) pair.
	type pair struct{ from, to id.ID }
	counts := map[pair]int{}
	net.drop = func(from, to NodeRef, m Message) bool {
		if _, ok := m.(*Heartbeat); ok {
			counts[pair{from.ID, to.ID}]++
		}
		return false
	}
	net.run(5 * time.Minute)
	// Every sender should heartbeat exactly one target: its left
	// neighbour.
	senders := map[id.ID]map[id.ID]bool{}
	for p := range counts {
		if senders[p.from] == nil {
			senders[p.from] = map[id.ID]bool{}
		}
		senders[p.from][p.to] = true
	}
	for _, n := range nodes {
		targets := senders[n.Ref().ID]
		if len(targets) != 1 {
			t.Fatalf("node %v heartbeats %d targets, want 1", n.Ref().ID, len(targets))
		}
		left, _ := n.Leaf().LeftNeighbour()
		if !targets[left.ID] {
			t.Fatalf("node %v heartbeats someone other than its left neighbour", n.Ref().ID)
		}
	}
}

func TestHeartbeatRateMatchesTls(t *testing.T) {
	net := newTestNet(t, 102)
	cfg := testConfig()
	cfg.Suppression = false
	nodes := buildOverlay(t, net, 6, cfg)
	before := net.sent[CatLeafSet]
	hbBefore := uint64(0)
	for _, n := range nodes {
		hbBefore += n.Stats().SentHeartbeats
	}
	const window = 10 * time.Minute
	net.run(window)
	hbAfter := uint64(0)
	for _, n := range nodes {
		hbAfter += n.Stats().SentHeartbeats
	}
	_ = before
	sent := hbAfter - hbBefore
	// 6 nodes x (10min / 30s) = 120 heartbeats, +/- tick granularity.
	want := uint64(len(nodes)) * uint64(window/cfg.Tls)
	if sent < want*7/10 || sent > want*13/10 {
		t.Fatalf("heartbeats = %d over %v, want ~%d", sent, window, want)
	}
}

func TestSuppressionSkipsHeartbeatUnderTraffic(t *testing.T) {
	net := newTestNet(t, 103)
	cfg := testConfig()
	cfg.Suppression = true
	nodes := buildOverlay(t, net, 6, cfg)
	// Constant lookup chatter between neighbours suppresses heartbeats.
	var stop bool
	var chatter func()
	chatter = func() {
		if stop {
			return
		}
		for _, n := range nodes {
			if left, ok := n.Leaf().LeftNeighbour(); ok {
				// Any direct message counts; send a dist probe.
				n.measureDistance(left, 1, func(time.Duration, bool) {})
			}
		}
		net.sim.After(5*time.Second, chatter)
	}
	net.sim.After(0, chatter)
	hbBefore := uint64(0)
	supBefore := uint64(0)
	for _, n := range nodes {
		hbBefore += n.Stats().SentHeartbeats
		supBefore += n.Stats().SuppressedProbes
	}
	net.run(10 * time.Minute)
	stop = true
	hbAfter, supAfter := uint64(0), uint64(0)
	for _, n := range nodes {
		hbAfter += n.Stats().SentHeartbeats
		supAfter += n.Stats().SuppressedProbes
	}
	if supAfter == supBefore {
		t.Fatal("no suppression recorded despite constant traffic")
	}
	sent := hbAfter - hbBefore
	want := uint64(6) * uint64(10*time.Minute/cfg.Tls)
	if sent > want/2 {
		t.Fatalf("heartbeats barely suppressed: %d of ~%d", sent, want)
	}
}

func TestFailureDetectionLatencyWithinBound(t *testing.T) {
	// The paper's formula assumes a leaf failure is detected within
	// Tls + (retries+1)*To by the left neighbour. Measure it.
	net := newTestNet(t, 104)
	cfg := testConfig()
	nodes := buildOverlay(t, net, 8, cfg)
	net.run(time.Minute)
	victim := nodes[3]
	// Find the detector: the node whose right neighbour is the victim.
	var detector *Node
	for _, n := range nodes {
		if r, ok := n.Leaf().RightNeighbour(); ok && r.ID == victim.Ref().ID {
			detector = n
			break
		}
	}
	if detector == nil {
		t.Fatal("no detector found")
	}
	victim.Fail()
	failedAt := net.sim.Now()
	// Poll until the detector drops the victim.
	bound := cfg.Tls + time.Duration(cfg.MaxProbeRetries+1)*cfg.To + 2*cfg.TickInterval
	for net.sim.Now() < failedAt+2*bound {
		net.run(time.Second)
		if !detector.Leaf().Contains(victim.Ref().ID) {
			detected := net.sim.Now() - failedAt
			t.Logf("detected in %v (bound %v)", detected, bound)
			if detected > bound {
				t.Fatalf("detection took %v, bound is %v", detected, bound)
			}
			return
		}
	}
	t.Fatal("failure never detected")
}

func TestAllPairsHeartbeatsCostScalesWithL(t *testing.T) {
	// The ablation baseline: all-pairs heartbeat cost grows with l while
	// structured cost does not (the justification for Figure 7-left).
	run := func(structured bool, l int) uint64 {
		net := newTestNet(t, 105)
		cfg := testConfig()
		cfg.L = l
		cfg.StructuredHeartbeats = structured
		cfg.Suppression = false
		nodes := buildOverlay(t, net, 20, cfg)
		before := uint64(0)
		for _, n := range nodes {
			before += n.Stats().SentHeartbeats
		}
		net.run(10 * time.Minute)
		after := uint64(0)
		for _, n := range nodes {
			after += n.Stats().SentHeartbeats
		}
		return after - before
	}
	structSmall, structBig := run(true, 4), run(true, 16)
	apSmall, apBig := run(false, 4), run(false, 16)
	t.Logf("structured: l=4 %d, l=16 %d; all-pairs: l=4 %d, l=16 %d",
		structSmall, structBig, apSmall, apBig)
	// Structured: ~constant in l. All-pairs: grows.
	if structBig > structSmall*3/2 {
		t.Fatalf("structured heartbeats grew with l: %d -> %d", structSmall, structBig)
	}
	if apBig < apSmall*2 {
		t.Fatalf("all-pairs heartbeats did not grow with l: %d -> %d", apSmall, apBig)
	}
}
