package pastry

import (
	"time"
)

// distSession measures the round-trip delay to one target by sending a
// sequence of probes spaced by a fixed interval and taking the median of
// the returned values (paper §4.2). The nearest-neighbour phase uses a
// single sample to reduce join latency.
type distSession struct {
	target  NodeRef
	want    int
	samples []time.Duration
	sentAt  map[uint64]time.Duration
	timer   Timer
	done    []func(rtt time.Duration, ok bool)
}

// measureDistance starts (or joins) a distance measurement to target with
// the given sample count; done is invoked exactly once with the median RTT
// or ok=false when no probe was answered.
func (n *Node) measureDistance(target NodeRef, samples int, done func(rtt time.Duration, ok bool)) {
	if target.ID == n.self.ID {
		done(0, false)
		return
	}
	if ds, ok := n.distSessions[target.ID]; ok {
		ds.done = append(ds.done, done)
		return
	}
	ds := &distSession{
		target: target,
		want:   samples,
		sentAt: make(map[uint64]time.Duration, samples),
		done:   []func(time.Duration, bool){done},
	}
	n.distSessions[target.ID] = ds
	n.sendDistProbe(ds)
	for i := 1; i < samples; i++ {
		i := i
		n.schedule(time.Duration(i)*n.cfg.DistProbeSpacing, func() {
			if n.distSessions[ds.target.ID] == ds {
				n.sendDistProbe(ds)
			}
		})
	}
	deadline := time.Duration(samples)*n.cfg.DistProbeSpacing + 2*n.cfg.To
	ds.timer = n.schedule(deadline, func() { n.finishDistSession(ds) })
}

func (n *Node) sendDistProbe(ds *distSession) {
	n.nextDistSeq++
	seq := n.nextDistSeq
	ds.sentAt[seq] = n.env.Now()
	n.distSeqs[seq] = ds
	n.send(ds.target, &DistProbe{From: n.self, Seq: seq})
}

// handleDistProbeReply folds a probe echo into its session; the session
// completes as soon as every sample arrived.
func (n *Node) handleDistProbeReply(msg *DistProbeReply) {
	ds, ok := n.distSeqs[msg.Seq]
	if !ok {
		return
	}
	delete(n.distSeqs, msg.Seq)
	sent, ok := ds.sentAt[msg.Seq]
	if !ok {
		return
	}
	delete(ds.sentAt, msg.Seq)
	ds.samples = append(ds.samples, n.env.Now()-sent)
	if len(ds.samples) >= ds.want {
		n.finishDistSession(ds)
	}
}

// finishDistSession concludes a measurement, reporting the median of the
// collected samples and (when enabled) sending the symmetric distance
// report so the target can reuse the measurement.
func (n *Node) finishDistSession(ds *distSession) {
	if n.distSessions[ds.target.ID] != ds {
		return
	}
	delete(n.distSessions, ds.target.ID)
	if ds.timer != nil {
		ds.timer.Cancel()
	}
	for seq := range ds.sentAt {
		delete(n.distSeqs, seq)
	}
	if len(ds.samples) == 0 {
		for _, f := range ds.done {
			f(0, false)
		}
		return
	}
	rtt := medianDuration(ds.samples)
	if n.cfg.SymmetricProbes {
		n.send(ds.target, &DistReport{From: n.self, RTT: rtt})
	}
	for _, f := range ds.done {
		f(rtt, true)
	}
}

// handleDistReport applies a symmetric distance report: the peer measured
// the round-trip delay between us, so we can consider it for our routing
// table without probing (round-trip delay is symmetric).
func (n *Node) handleDistReport(msg *DistReport) {
	n.rt.AddWithRTT(msg.From, msg.RTT)
}

// handleRowEntries processes routing-table rows received through gossip
// (join announcements, periodic maintenance replies, passive repair): probe
// the distance to entries not in the table and keep them if closer. The
// distance probe also establishes direct contact, satisfying the rule that
// repair never inserts a node without hearing from it. With fillOnly set,
// only candidates for empty or unmeasured slots are probed.
func (n *Node) handleRowEntries(entries []NodeRef, fillOnly bool) {
	now := n.env.Now()
	for _, e := range entries {
		e := e
		if e.ID == n.self.ID || e.IsZero() {
			continue
		}
		if _, bad := n.failed[e.ID]; bad {
			continue
		}
		if n.rt.Contains(e.ID) {
			continue
		}
		if !n.slotWorthProbing(e, fillOnly) {
			continue
		}
		// Skip candidates measured recently: a candidate that did not
		// make it into the table last round is still farther this round,
		// so re-probing it every maintenance period is pure overhead.
		s := n.suppressOf(n.peers.Obtain(e.ID, e.Addr, now))
		if s.distProbed != 0 && now-s.distProbed < n.cfg.RTMaintenance {
			continue
		}
		s.distProbed = now
		n.measureDistance(e, n.cfg.DistProbeCount, func(rtt time.Duration, ok bool) {
			if ok {
				n.rt.AddWithRTT(e, rtt)
			}
		})
	}
}

// slotWorthProbing reports whether measuring cand could improve the table.
// In fillOnly mode a candidate only qualifies when its slot is empty or
// held by an unmeasured occupant; otherwise any slot not already held by
// cand qualifies, since proximity neighbour selection replaces occupants
// with closer candidates.
func (n *Node) slotWorthProbing(cand NodeRef, fillOnly bool) bool {
	row, col, ok := n.rt.Slot(cand.ID)
	if !ok {
		return false
	}
	occ, used := n.rt.Get(row, col)
	if !used {
		return true
	}
	if occ.ID == cand.ID {
		return false
	}
	if !fillOnly {
		return true
	}
	_, measured := n.rt.RTT(occ.ID)
	return !measured
}

// periodicMaintenance implements the 20-minute routing-table maintenance:
// for each row, ask a random entry for its corresponding row, then probe
// and keep closer entries (constrained gossiping, paper §2).
func (n *Node) periodicMaintenance() {
	rng := n.env.Rand()
	for r := 0; r < n.rt.NumRows(); r++ {
		row := n.rt.Row(r)
		if len(row) == 0 {
			continue
		}
		target := row[rng.Intn(len(row))]
		n.send(target, &RowRequest{From: n.self, Row: r})
	}
}
