package pastry

import (
	"math/rand"
	"testing"
	"time"

	"mspastry/internal/id"
)

func TestConcurrentAdjacentJoins(t *testing.T) {
	// The classic consistency hazard: two nodes with adjacent identifiers
	// join at the same instant through different seeds. Both must end up
	// active with each other in their leaf sets (the paper's argument:
	// members add a joiner before replying, so a later joiner learns
	// about the earlier one during its own probing).
	net := newTestNet(t, 81)
	cfg := testConfig()
	nodes := buildOverlay(t, net, 12, cfg)
	rec := newRecorder()
	base := id.New(0x4242424242424242, 0)
	j1 := net.addNode(base.Add(id.New(0, 1)), cfg, rec)
	j2 := net.addNode(base.Add(id.New(0, 2)), cfg, rec)
	j1.Join(nodes[0].Ref())
	j2.Join(nodes[5].Ref())
	net.run(2 * time.Minute)
	if !j1.Active() || !j2.Active() {
		t.Fatalf("concurrent joiners not active: %v %v", j1.Active(), j2.Active())
	}
	if !j1.Leaf().Contains(j2.Ref().ID) {
		t.Fatal("j1 does not know its adjacent concurrent joiner")
	}
	if !j2.Leaf().Contains(j1.Ref().ID) {
		t.Fatal("j2 does not know its adjacent concurrent joiner")
	}
	// And lookups for keys between them are delivered consistently.
	probe := net.addNode(id.Random(rand.New(rand.NewSource(82))), cfg, rec)
	probe.SetSeedSource(func() (NodeRef, bool) { return nodes[0].Ref(), true })
	probe.Join(nodes[0].Ref())
	net.run(time.Minute)
	key := base.Add(id.New(0, 1)) // exactly j1's id
	seq, _ := probe.Lookup(key, nil)
	net.run(10 * time.Second)
	if got := rec.delivered[seq]; got.ID != j1.Ref().ID {
		t.Fatalf("lookup for j1's id delivered at %v", got.ID)
	}
}

func TestManySimultaneousJoins(t *testing.T) {
	// A join storm: 15 nodes join a 5-node overlay in the same second.
	net := newTestNet(t, 83)
	cfg := testConfig()
	nodes := buildOverlay(t, net, 5, cfg)
	rng := rand.New(rand.NewSource(84))
	var joiners []*Node
	for i := 0; i < 15; i++ {
		j := net.addNode(id.Random(rng), cfg, nil)
		j.SetSeedSource(func() (NodeRef, bool) { return nodes[rng.Intn(len(nodes))].Ref(), true })
		j.Join(nodes[rng.Intn(len(nodes))].Ref())
		joiners = append(joiners, j)
	}
	net.run(5 * time.Minute)
	for i, j := range joiners {
		if !j.Active() {
			t.Fatalf("joiner %d not active after join storm", i)
		}
	}
	// The ring must be globally consistent after the storm.
	all := append(append([]*Node(nil), nodes...), joiners...)
	assertRingConsistent(t, all)
}

// assertRingConsistent checks every node's immediate neighbours against
// global membership.
func assertRingConsistent(t *testing.T, nodes []*Node) {
	t.Helper()
	for _, n := range nodes {
		if !n.Alive() {
			continue
		}
		self := n.Ref().ID
		var wantRight id.ID
		first := true
		for _, other := range nodes {
			if !other.Alive() || other.Ref().ID == self {
				continue
			}
			o := other.Ref().ID
			if first || self.Clockwise(o).Cmp(self.Clockwise(wantRight)) < 0 {
				wantRight, first = o, false
			}
		}
		right, ok := n.Leaf().RightNeighbour()
		if !ok || right.ID != wantRight {
			t.Fatalf("node %v right neighbour = %v, want %v", self, right.ID, wantRight)
		}
	}
}

func TestJoinWithPNSUsesNearestSeed(t *testing.T) {
	// With PNS, the joiner runs the nearest-neighbour algorithm before
	// sending its join request; the overlay must still form correctly on
	// a clustered delay space.
	net := newTestNet(t, 85)
	net.delayFn = clusteredDelay(3)
	cfg := testConfig()
	cfg.PNS = true
	rng := rand.New(rand.NewSource(85))
	var nodes []*Node
	first := net.addNode(id.Random(rng), cfg, nil)
	first.Bootstrap()
	nodes = append(nodes, first)
	for i := 1; i < 12; i++ {
		j := net.addNode(id.Random(rng), cfg, nil)
		j.Join(nodes[net.sim.Rand().Intn(len(nodes))].Ref())
		nodes = append(nodes, j)
		net.run(20 * time.Second)
	}
	net.run(time.Minute)
	for i, n := range nodes {
		if !n.Active() {
			t.Fatalf("PNS joiner %d never activated", i)
		}
	}
	assertRingConsistent(t, nodes)
}

func TestJoinerRowsPropagate(t *testing.T) {
	// The join reply carries routing rows collected along the route; the
	// joiner's table must be non-trivially populated immediately after
	// activation.
	net := newTestNet(t, 86)
	cfg := testConfig()
	nodes := buildOverlay(t, net, 20, cfg)
	j := net.addNode(id.Random(rand.New(rand.NewSource(87))), cfg, nil)
	j.Join(nodes[3].Ref())
	net.run(time.Minute)
	if !j.Active() {
		t.Fatal("joiner not active")
	}
	if j.Table().Count() < 3 {
		t.Fatalf("joiner routing table nearly empty: %d entries", j.Table().Count())
	}
}

func TestRejoinAfterFailureWithNewIdentity(t *testing.T) {
	// An endpoint that crashes and returns with a fresh id must join
	// cleanly, and the old identity must vanish from all leaf sets.
	net := newTestNet(t, 88)
	cfg := testConfig()
	nodes := buildOverlay(t, net, 10, cfg)
	victim := nodes[4]
	oldID := victim.Ref().ID
	victim.Fail()
	reborn := net.addNode(id.Random(rand.New(rand.NewSource(89))), cfg, nil)
	reborn.SetSeedSource(func() (NodeRef, bool) { return nodes[0].Ref(), true })
	reborn.Join(nodes[0].Ref())
	net.run(3 * time.Minute)
	if !reborn.Active() {
		t.Fatal("rejoined node not active")
	}
	for i, n := range nodes {
		if i == 4 || !n.Alive() {
			continue
		}
		if n.Leaf().Contains(oldID) {
			t.Fatalf("node %d still lists the dead identity", i)
		}
		if !n.Leaf().Complete() {
			t.Fatalf("node %d leaf set incomplete after rejoin", i)
		}
	}
}

func TestJoinStormDuringFailures(t *testing.T) {
	// Joins and failures interleaved in the same instants.
	net := newTestNet(t, 90)
	cfg := testConfig()
	nodes := buildOverlay(t, net, 16, cfg)
	rng := rand.New(rand.NewSource(91))
	alive := append([]*Node(nil), nodes...)
	for wave := 0; wave < 3; wave++ {
		for k := 0; k < 3; k++ {
			v := alive[rng.Intn(len(alive))]
			v.Fail()
			for i, n := range alive {
				if n == v {
					alive = append(alive[:i], alive[i+1:]...)
					break
				}
			}
			j := net.addNode(id.Random(rng), cfg, nil)
			j.SetSeedSource(func() (NodeRef, bool) {
				return alive[rng.Intn(len(alive))].Ref(), true
			})
			j.Join(alive[rng.Intn(len(alive))].Ref())
			alive = append(alive, j)
		}
		net.run(4 * time.Minute)
	}
	net.run(4 * time.Minute)
	for i, n := range alive {
		if !n.Active() {
			t.Fatalf("node %d not active after interleaved churn", i)
		}
	}
	assertRingConsistent(t, alive)
}
