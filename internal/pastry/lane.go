package pastry

import "mspastry/internal/overload"

// LaneOf classifies a message into an overload-protection priority lane.
// The classification lives here (not in package overload) because it
// needs the concrete message types; both transports use it to route
// inbound work through their bounded lane queues.
//
// Liveness traffic — per-hop acks, heartbeats, leaf-set and
// routing-table probes and their replies — outranks everything: shedding
// it turns overload into false positives, and the resulting repair storm
// is exactly the collapse the shedding exists to prevent. Routing
// control (joins, repair, rows, nearest-neighbour and distance
// exchanges) comes next, then routed lookups, and bulk application
// transfer (replication values, anti-entropy payloads) is shed first.
func LaneOf(m Message) overload.Lane {
	switch msg := m.(type) {
	case *Ack, *Heartbeat, *LSProbe, *LSProbeReply, *RTProbe, *RTProbeReply:
		return overload.LaneLiveness
	case *Envelope:
		if msg.Lookup != nil {
			return overload.LaneLookup
		}
		return overload.LaneControl
	case *Lookup:
		return overload.LaneLookup
	case *RootReport:
		// Completion reports finish lookups, so they ride the lookup lane:
		// shedding them would fail the secure path under the same load
		// that sheds the lookups themselves, never earlier.
		return overload.LaneLookup
	case *AppDirect:
		return overload.LaneBulk
	default:
		// Join traffic, repair, rows, distance and nearest-neighbour
		// exchanges: routing control.
		return overload.LaneControl
	}
}
