package pastry

import (
	"fmt"
	"testing"
	"time"

	"mspastry/internal/id"
)

// TestStrangerRecordsExpire pins the fix for the unbounded-stranger
// leak: a sender that never makes it into routing state used to leave
// immortal lastRecv/lastSent entries behind. The registry now
// short-expires never-admitted records (StrangerTTL), and strangers the
// failure detector gives up on are expelled outright, so a burst of
// contact from peers that never join leaves no trace once their
// suppression memory drains.
func TestStrangerRecordsExpire(t *testing.T) {
	net := newTestNet(t, 11)
	cfg := testConfig()
	// No reconnect cache: a failed stranger is expelled immediately
	// instead of parking in the graveyard for ReconnectRetries probes.
	cfg.ReconnectInterval = 0
	cfg.PeerStrangerTTL = 30 * time.Second
	nodes := buildOverlay(t, net, 8, cfg)
	n := nodes[0]
	base := n.Peers().Len()

	var strangers []NodeRef
	for i := 0; i < 24; i++ {
		ref := NodeRef{ID: id.Random(net.sim.Rand()), Addr: fmt.Sprintf("stranger%d", i)}
		strangers = append(strangers, ref)
		n.noteContact(ref, 0)
	}
	if n.Peers().Len() <= base {
		t.Fatalf("stranger contact created no records (len %d, base %d)", n.Peers().Len(), base)
	}

	// Probes to the fake addresses vanish (the test net drops sends to
	// unknown addrs), so none of the strangers is ever admitted. The
	// longest thing keeping a record alive is leaf-candidate suppression
	// memory (drains at 2*Tls); after that the stranger TTL is long past
	// and the next sweep must evict every record.
	net.run(2*cfg.Tls + cfg.PeerStrangerTTL + 3*cfg.TickInterval)
	for _, ref := range strangers {
		if rec := n.Peers().Lookup(ref.ID); rec != nil {
			t.Errorf("stranger %v still has a record (admitted=%v)", ref.ID, rec.Admitted())
		}
	}
	st := n.Peers().Stats()
	if st.EvictedStrangers+st.Expelled == 0 {
		t.Fatalf("no stranger evictions recorded: %+v", st)
	}
}
