package pastry

import (
	"math/rand"
	"testing"
	"time"

	"mspastry/internal/id"
)

// routeTestNode builds a standalone node with hand-crafted routing state.
func routeTestNode(t *testing.T, self id.ID, leaves, table []NodeRef) *Node {
	t.Helper()
	net := newTestNet(t, 1)
	n := net.addNode(self, testConfig(), nil)
	for _, l := range leaves {
		n.ls.Add(l)
	}
	for _, e := range table {
		n.rt.Add(e)
	}
	return n
}

func TestNextHopDeliversInLeafRange(t *testing.T) {
	self := id.New(0, 1000)
	n := routeTestNode(t, self,
		[]NodeRef{ref(900), ref(950), ref(1050), ref(1100)}, nil)
	// Key closest to self within leaf range: delivered here.
	_, isSelf, _ := n.nextHop(id.New(0, 1010), nil)
	if !isSelf {
		t.Fatal("key closest to self not delivered locally")
	}
	// Key closest to 1050: forwarded there.
	next, isSelf, _ := n.nextHop(id.New(0, 1049), nil)
	if isSelf || next.ID.Lo != 1050 {
		t.Fatalf("next = %v (self=%v), want 1050", next.ID, isSelf)
	}
}

// fullLeafSet returns l members tightly clustered around self so the leaf
// set has full sides and does not wrap (its range stays tiny).
func fullLeafSet(self id.ID, l int) []NodeRef {
	var out []NodeRef
	for i := uint64(1); i <= uint64(l/2); i++ {
		out = append(out, refID(self.Add(id.New(0, i))))
		out = append(out, refID(self.Sub(id.New(0, i))))
	}
	return out
}

func TestNextHopUsesRoutingTableOutsideRange(t *testing.T) {
	self := id.New(0, 1<<32) // all leading digits zero
	hop := refID(id.New(0x7000000000000000, 1))
	n := routeTestNode(t, self, fullLeafSet(self, 8), []NodeRef{hop})
	key := id.New(0x7abc000000000000, 5)
	next, isSelf, emptySlot := n.nextHop(key, nil)
	if isSelf || next.ID != hop.ID {
		t.Fatalf("next = %v, want routing-table entry", next)
	}
	if emptySlot {
		t.Fatal("slot was not empty")
	}
}

func TestNextHopFallsBackOnEmptySlot(t *testing.T) {
	self := id.New(0, 1<<32)
	// The key's slot (row 0, column 7) is empty, but a node with first
	// digit 6 is strictly closer to the key than self and shares the
	// (empty) prefix of length 0 — Pastry's routing-around rule must pick
	// it and flag the empty slot for passive repair.
	fallback := refID(id.New(0x6000000000000000, 9))
	n := routeTestNode(t, self, fullLeafSet(self, 8), []NodeRef{fallback})
	key := id.New(0x7abc000000000000, 5)
	next, isSelf, emptySlot := n.nextHop(key, nil)
	if isSelf || next.ID != fallback.ID {
		t.Fatalf("next = %v, want fallback %v", next.ID, fallback.ID)
	}
	if !emptySlot {
		t.Fatal("empty-slot flag not raised (passive repair would not trigger)")
	}
}

func TestNextHopExcludedEverywhereDeliversSelf(t *testing.T) {
	self := id.New(0, 1000)
	other := ref(1100)
	n := routeTestNode(t, self, []NodeRef{other}, nil)
	tried := newTriedSet(other.ID)
	_, isSelf, _ := n.nextHop(id.New(0, 1099), tried)
	if !isSelf {
		t.Fatal("with every candidate excluded the node is the terminal")
	}
}

func TestNextHopStrictlyApproachesKey(t *testing.T) {
	// Property: for any key, the chosen next hop (when not self) is
	// strictly closer to the key than the local node, OR shares at least
	// as long a prefix — the invariant that makes routing loop-free.
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 300; trial++ {
		self := id.Random(rng)
		var leaves, table []NodeRef
		for i := 0; i < 8; i++ {
			leaves = append(leaves, refID(id.Random(rng)))
		}
		for i := 0; i < 30; i++ {
			table = append(table, refID(id.Random(rng)))
		}
		n := routeTestNode(t, self, leaves, table)
		key := id.Random(rng)
		next, isSelf, _ := n.nextHop(key, nil)
		if isSelf {
			continue
		}
		selfPrefix := id.CommonPrefixLen(key, self, 4)
		nextPrefix := id.CommonPrefixLen(key, next.ID, 4)
		closer := id.CloserToKey(key, next.ID, self)
		if nextPrefix < selfPrefix && !closer {
			t.Fatalf("hop regressed: key=%v self=%v next=%v (prefix %d->%d, closer=%v)",
				key, self, next.ID, selfPrefix, nextPrefix, closer)
		}
		if nextPrefix == selfPrefix && !closer {
			t.Fatalf("same-prefix hop not closer: key=%v self=%v next=%v", key, self, next.ID)
		}
	}
}

func TestRoutingTerminatesFromEveryNode(t *testing.T) {
	// Build a consistent overlay, then simulate routing *statically* from
	// every node for random keys using each node's actual state: the walk
	// must terminate within the hop bound and end at the true root.
	net := newTestNet(t, 45)
	nodes := buildOverlay(t, net, 30, testConfig())
	byID := make(map[id.ID]*Node, len(nodes))
	for _, n := range nodes {
		byID[n.Ref().ID] = n
	}
	rng := rand.New(rand.NewSource(46))
	for trial := 0; trial < 200; trial++ {
		key := id.Random(rng)
		cur := nodes[rng.Intn(len(nodes))]
		hops := 0
		for {
			next, isSelf, _ := cur.nextHop(key, nil)
			if isSelf {
				break
			}
			hops++
			if hops > 20 {
				t.Fatalf("routing did not terminate for key %v", key)
			}
			nxt, ok := byID[next.ID]
			if !ok {
				t.Fatalf("route left the overlay: %v", next.ID)
			}
			cur = nxt
		}
		want := trueRoot(nodes, key)
		if cur.Ref().ID != want.Ref().ID {
			t.Fatalf("static route ended at %v, want %v", cur.Ref().ID, want.Ref().ID)
		}
	}
}

func TestAckCompletesPendingHop(t *testing.T) {
	net := newTestNet(t, 47)
	nodes := buildOverlay(t, net, 8, testConfig())
	src := nodes[0]
	pendingBefore := len(src.pending)
	// Issue a lookup that must leave the node.
	var key id.ID
	rng := rand.New(rand.NewSource(48))
	for {
		key = id.Random(rng)
		if trueRoot(nodes, key) != src {
			break
		}
	}
	src.Lookup(key, nil)
	net.run(50 * time.Millisecond) // lookup scheduled + sent, ack not yet back
	if len(src.pending) == pendingBefore {
		t.Skip("lookup resolved locally")
	}
	net.run(10 * time.Second)
	if len(src.pending) != pendingBefore {
		t.Fatalf("pending hops not cleaned up: %d", len(src.pending))
	}
}

func TestRTOEstimatorConverges(t *testing.T) {
	var est rttEstimator
	for i := 0; i < 50; i++ {
		est.observe(20 * time.Millisecond)
	}
	rto := est.rto(time.Second, time.Millisecond, 3*time.Second)
	// Stable samples: rto -> srtt + 2*rttvar, with rttvar decaying to 0.
	if rto < 20*time.Millisecond || rto > 40*time.Millisecond {
		t.Fatalf("converged RTO = %v, want ~20-40ms", rto)
	}
	// A spike raises the variance term.
	est.observe(200 * time.Millisecond)
	spiked := est.rto(time.Second, time.Millisecond, 3*time.Second)
	if spiked <= rto {
		t.Fatal("RTO did not react to a latency spike")
	}
}

func TestRTOClamped(t *testing.T) {
	var est rttEstimator
	if got := est.rto(10*time.Second, time.Millisecond, 3*time.Second); got != 3*time.Second {
		t.Fatalf("fallback not clamped: %v", got)
	}
	est.observe(time.Nanosecond)
	if got := est.rto(time.Second, 50*time.Millisecond, 3*time.Second); got != 50*time.Millisecond {
		t.Fatalf("min clamp failed: %v", got)
	}
}

func TestMedianDuration(t *testing.T) {
	if got := medianDuration(nil); got != 0 {
		t.Fatalf("empty median = %v", got)
	}
	if got := medianDuration([]time.Duration{3, 1, 2}); got != 2 {
		t.Fatalf("odd median = %v", got)
	}
	if got := medianDuration([]time.Duration{4, 1, 3, 2}); got != 2 { // (2+3)/2 = 2 (integer div)
		t.Fatalf("even median = %v", got)
	}
}

func TestHoldOnSuspectBlocksDelivery(t *testing.T) {
	net := newTestNet(t, 49)
	rec := newRecorder()
	cfg := testConfig()
	nodes := buildOverlayObs(t, net, 10, cfg, rec)
	// Pick a node and a key whose root is its direct neighbour; exclude
	// the root manually and check the node holds rather than delivers.
	n := nodes[0]
	right, ok := n.Leaf().RightNeighbour()
	if !ok {
		t.Fatal("no right neighbour")
	}
	key := right.ID // the neighbour is the root of its own id
	n.excluded[right.ID] = true
	lk := &Lookup{Key: key, Seq: 999, Origin: n.Ref(), Issued: net.sim.Now()}
	n.receiveRootLookup(lk)
	if _, delivered := rec.delivered[uint64(999)]; delivered {
		t.Fatal("delivered while a closer node was merely suspected")
	}
	if len(n.holdBuffer) == 0 {
		t.Fatal("lookup was not held")
	}
	// Clearing the suspicion and releasing must route it to the root.
	delete(n.excluded, right.ID)
	n.releaseHeld()
	net.run(5 * time.Second)
	if got := rec.delivered[uint64(999)]; got.ID != right.ID {
		t.Fatalf("released lookup delivered at %v, want %v", got.ID, right.ID)
	}
}

func TestHoldOnSuspectDisabledDeliversImmediately(t *testing.T) {
	net := newTestNet(t, 50)
	rec := newRecorder()
	cfg := testConfig()
	cfg.HoldOnSuspect = false
	nodes := buildOverlayObs(t, net, 10, cfg, rec)
	n := nodes[0]
	right, ok := n.Leaf().RightNeighbour()
	if !ok {
		t.Fatal("no right neighbour")
	}
	n.excluded[right.ID] = true
	lk := &Lookup{Key: right.ID, Seq: 998, Origin: n.Ref(), Issued: net.sim.Now()}
	n.receiveRootLookup(lk)
	if got, delivered := rec.delivered[uint64(998)]; !delivered || got.ID != n.Ref().ID {
		t.Fatal("with the rule disabled the node should deliver locally (the ablation behaviour)")
	}
}
