package pastry

import (
	"time"

	"mspastry/internal/id"
)

// joinRetryAfter is the backoff before a stalled join is restarted.
const joinRetryAfter = 30 * time.Second

// sendJoinRequest routes a join request to this node's own identifier via
// the seed. Join requests always use per-hop acks: a lost join is costly.
func (n *Node) sendJoinRequest(seed NodeRef) {
	jr := &JoinRequest{Joiner: n.self}
	n.nextXfer++
	xfer := n.nextXfer
	ph := &pendingHop{
		join:    jr,
		key:     n.self.ID,
		to:      seed,
		tried:   newTriedSet(seed.ID),
		sentAt:  n.env.Now(),
		needAck: true,
	}
	n.pending[xfer] = ph
	ph.timer = n.schedule(n.rtoFor(seed), func() { n.hopTimeout(xfer) })
	n.send(seed, &Envelope{Xfer: xfer, NeedAck: true, From: n.self, Join: jr})
	n.armJoinWatchdog()
}

// armJoinWatchdog restarts the join if the node has not activated within
// the retry window (for example, the seed crashed mid-join).
func (n *Node) armJoinWatchdog() {
	start := n.joinStart
	n.schedule(joinRetryAfter, func() {
		if n.active || n.joinStart != start {
			return
		}
		n.scheduleJoinRetry()
	})
}

// scheduleJoinRetry restarts the join protocol with a fresh seed.
func (n *Node) scheduleJoinRetry() {
	seed := n.joinSeed
	if n.seedSource != nil {
		if s, ok := n.seedSource(); ok {
			seed = s
		}
	}
	if seed.IsZero() || seed.ID == n.self.ID {
		return
	}
	// Reset join-local state but keep measured distances.
	n.joinStart = n.env.Now()
	n.joinSeed = seed
	for x, ps := range n.probing {
		if ps.timer != nil {
			ps.timer.Cancel()
		}
		delete(n.probing, x)
	}
	for x := range n.failed {
		delete(n.failed, x)
	}
	n.sendJoinRequest(seed)
}

// handleJoinReply initialises routing state from the accumulated rows and
// the root's leaf set, then probes every leaf-set member; the node becomes
// active only when all of them have confirmed (Figure 2).
func (n *Node) handleJoinReply(jr *JoinReply) {
	if n.active {
		return
	}
	for _, ref := range jr.Rows {
		n.rt.Add(ref)
	}
	for _, ref := range jr.Leaves {
		n.rt.Add(ref)
		n.ls.Add(ref)
	}
	members := n.ls.Members()
	if len(members) == 0 {
		// The root is alone (two-node overlay): the reply sender is our
		// entire neighbourhood, but we cannot see it here since JoinReply
		// has no From — rows contain the route's nodes, probe those.
		for _, ref := range jr.Rows {
			n.ls.Add(ref)
		}
		members = n.ls.Members()
	}
	if len(members) == 0 {
		n.scheduleJoinRetry()
		return
	}
	for _, m := range members {
		noteProbeCause("join-init")
		n.probeLeaf(m)
	}
}

// announceRows implements the join announcement of constrained gossiping:
// a freshly activated node sends the r-th row of its routing table to each
// node in that row, which both announces the newcomer and spreads
// information about previous joiners (paper §2).
func (n *Node) announceRows() {
	if !n.cfg.PNS {
		return
	}
	for r := 0; r < n.rt.NumRows(); r++ {
		row := n.rt.Row(r)
		for _, target := range row {
			n.send(target, &RowAnnounce{From: n.self, Row: r, Entries: row})
		}
	}
}

// startNearestNeighbour begins the nearest-neighbour algorithm of Castro
// et al.: starting from a random seed, repeatedly fetch the current
// candidate's leaf set and routing table, measure distance to each entry
// with a single probe, and move to any strictly closer node; when no
// improvement remains, use the final node to seed the join.
func (n *Node) startNearestNeighbour(seed NodeRef) {
	n.nn = &nnState{current: seed, budget: 12}
	n.send(seed, &NNStateRequest{From: n.self})
	state := n.nn
	state.timer = n.schedule(4*n.cfg.To, func() { n.nnGiveUp(state) })
}

// nnState tracks the nearest-neighbour search during a join.
type nnState struct {
	current   NodeRef
	currentD  time.Duration
	measured  bool
	pendingN  int
	bestCand  NodeRef
	bestD     time.Duration
	haveCand  bool
	budget    int
	timer     Timer
	completed bool
}

// nnGiveUp abandons the search and joins through the best node seen.
func (n *Node) nnGiveUp(state *nnState) {
	if state.completed || n.nn != state {
		return
	}
	n.nnFinish(state)
}

func (n *Node) nnFinish(state *nnState) {
	state.completed = true
	if state.timer != nil {
		state.timer.Cancel()
	}
	n.nn = nil
	n.sendJoinRequest(state.current)
}

// handleNNStateReply processes the candidate's state: probe distance (one
// sample, per the paper's join-latency optimisation) to every entry we
// have not measured, tracking the closest.
func (n *Node) handleNNStateReply(msg *NNStateReply) {
	state := n.nn
	if state == nil || state.completed || n.active {
		return
	}
	cands := append(append([]NodeRef(nil), msg.Leaves...), msg.Entries...)
	cands = append(cands, msg.From)
	seen := map[id.ID]bool{n.self.ID: true}
	probeTargets := make([]NodeRef, 0, len(cands))
	for _, c := range cands {
		if seen[c.ID] {
			continue
		}
		seen[c.ID] = true
		probeTargets = append(probeTargets, c)
	}
	const maxPerRound = 24
	if len(probeTargets) > maxPerRound {
		probeTargets = probeTargets[:maxPerRound]
	}
	state.pendingN = len(probeTargets)
	if state.pendingN == 0 {
		n.nnFinish(state)
		return
	}
	for _, target := range probeTargets {
		target := target
		n.measureDistance(target, 1, func(rtt time.Duration, ok bool) {
			n.nnSample(state, target, rtt, ok)
		})
	}
}

// nnSample folds in one distance measurement for the search round; when
// the round completes, either move to a closer node or finish.
func (n *Node) nnSample(state *nnState, target NodeRef, rtt time.Duration, ok bool) {
	if state.completed || n.nn != state {
		return
	}
	state.pendingN--
	if ok {
		if target.ID == state.current.ID {
			state.currentD = rtt
			state.measured = true
		}
		if !state.haveCand || rtt < state.bestD {
			state.bestCand, state.bestD, state.haveCand = target, rtt, true
		}
	}
	if state.pendingN > 0 {
		return
	}
	state.budget--
	improved := state.haveCand && state.bestCand.ID != state.current.ID &&
		(!state.measured || state.bestD < state.currentD)
	if !improved || state.budget <= 0 {
		if state.haveCand && (!state.measured || state.bestD < state.currentD) {
			state.current = state.bestCand
		}
		n.nnFinish(state)
		return
	}
	state.current = state.bestCand
	state.currentD = state.bestD
	state.measured = true
	state.haveCand = false
	n.send(state.current, &NNStateRequest{From: n.self})
	if state.timer != nil {
		state.timer.Cancel()
	}
	state.timer = n.schedule(4*n.cfg.To, func() { n.nnGiveUp(state) })
}
