package pastry

import (
	"time"

	"mspastry/internal/id"
)

// RoutingTable is Pastry's prefix-routing matrix: row r, column c holds a
// node whose identifier shares the first r digits with the local node and
// has digit c in position r. Entries carry the measured round-trip delay
// when known, so proximity neighbour selection can keep the closest
// candidate per slot.
type RoutingTable struct {
	self  id.ID
	b     int
	rows  [][]rtEntry
	count int
}

type rtEntry struct {
	ref    NodeRef
	rtt    time.Duration
	hasRTT bool
	used   bool
}

// NewRoutingTable creates an empty routing table for the given local id and
// digit width b.
func NewRoutingTable(self id.ID, b int) *RoutingTable {
	rows := make([][]rtEntry, id.NumDigits(b))
	cols := 1 << b
	for i := range rows {
		rows[i] = make([]rtEntry, cols)
	}
	return &RoutingTable{self: self, b: b, rows: rows}
}

// Slot returns the (row, column) a node occupies in this table, or ok=false
// for the local node itself.
func (rt *RoutingTable) Slot(x id.ID) (row, col int, ok bool) {
	r := id.CommonPrefixLen(rt.self, x, rt.b)
	if r >= len(rt.rows) {
		return 0, 0, false
	}
	return r, x.Digit(r, rt.b), true
}

// Get returns the entry at (row, col) if present.
func (rt *RoutingTable) Get(row, col int) (NodeRef, bool) {
	e := rt.rows[row][col]
	return e.ref, e.used
}

// Contains reports whether x occupies its slot in the table.
func (rt *RoutingTable) Contains(x id.ID) bool {
	row, col, ok := rt.Slot(x)
	if !ok {
		return false
	}
	e := rt.rows[row][col]
	return e.used && e.ref.ID == x
}

// RTT returns the measured round-trip delay for a node in the table.
func (rt *RoutingTable) RTT(x id.ID) (time.Duration, bool) {
	row, col, ok := rt.Slot(x)
	if !ok {
		return 0, false
	}
	e := rt.rows[row][col]
	if !e.used || e.ref.ID != x || !e.hasRTT {
		return 0, false
	}
	return e.rtt, true
}

// Add inserts a node with unknown distance. It only fills an empty slot
// (proximity neighbour selection never evicts a measured entry for an
// unmeasured one) and reports whether the table changed.
func (rt *RoutingTable) Add(ref NodeRef) bool {
	if ref.IsZero() || ref.ID == rt.self {
		return false
	}
	row, col, ok := rt.Slot(ref.ID)
	if !ok {
		return false
	}
	e := &rt.rows[row][col]
	if e.used {
		return false
	}
	*e = rtEntry{ref: ref, used: true}
	rt.count++
	return true
}

// AddWithRTT inserts a node with a measured round-trip delay, replacing the
// current occupant if the new node is strictly closer (or the occupant's
// distance is unknown). Reports whether the table changed.
func (rt *RoutingTable) AddWithRTT(ref NodeRef, rtt time.Duration) bool {
	if ref.IsZero() || ref.ID == rt.self {
		return false
	}
	row, col, ok := rt.Slot(ref.ID)
	if !ok {
		return false
	}
	e := &rt.rows[row][col]
	switch {
	case !e.used:
		rt.count++
	case e.ref.ID == ref.ID:
		e.rtt, e.hasRTT = rtt, true
		return false
	case e.hasRTT && e.rtt <= rtt:
		return false
	}
	*e = rtEntry{ref: ref, rtt: rtt, hasRTT: true, used: true}
	return true
}

// Remove deletes x from the table if present.
func (rt *RoutingTable) Remove(x id.ID) bool {
	row, col, ok := rt.Slot(x)
	if !ok {
		return false
	}
	e := &rt.rows[row][col]
	if !e.used || e.ref.ID != x {
		return false
	}
	*e = rtEntry{}
	rt.count--
	return true
}

// Row returns the non-empty entries of row r.
func (rt *RoutingTable) Row(r int) []NodeRef {
	if r < 0 || r >= len(rt.rows) {
		return nil
	}
	var out []NodeRef
	for _, e := range rt.rows[r] {
		if e.used {
			out = append(out, e.ref)
		}
	}
	return out
}

// NumRows returns the number of rows (identifier digits).
func (rt *RoutingTable) NumRows() int { return len(rt.rows) }

// Count returns the number of occupied slots.
func (rt *RoutingTable) Count() int { return rt.count }

// Entries returns every node in the table.
func (rt *RoutingTable) Entries() []NodeRef {
	out := make([]NodeRef, 0, rt.count)
	for _, row := range rt.rows {
		for _, e := range row {
			if e.used {
				out = append(out, e.ref)
			}
		}
	}
	return out
}

// RowsUpTo returns all entries in rows 0..maxRow inclusive, used when
// answering join requests (a node on the join route contributes the rows
// that match the joiner's prefix).
func (rt *RoutingTable) RowsUpTo(maxRow int) []NodeRef {
	if maxRow >= len(rt.rows) {
		maxRow = len(rt.rows) - 1
	}
	var out []NodeRef
	for r := 0; r <= maxRow; r++ {
		for _, e := range rt.rows[r] {
			if e.used {
				out = append(out, e.ref)
			}
		}
	}
	return out
}

// BestForKey returns the routing-table entry for the next hop of key k: the
// slot (r, c) where r is the shared prefix length of k and the local id and
// c is k's r-th digit. ok is false when that slot is empty or excluded.
func (rt *RoutingTable) BestForKey(k id.ID, excluded func(id.ID) bool) (NodeRef, bool) {
	r := id.CommonPrefixLen(rt.self, k, rt.b)
	if r >= len(rt.rows) {
		return NodeRef{}, false
	}
	e := rt.rows[r][k.Digit(r, rt.b)]
	if !e.used {
		return NodeRef{}, false
	}
	if excluded != nil && excluded(e.ref.ID) {
		return NodeRef{}, false
	}
	return e.ref, true
}

// AnyCloser scans the table for any node that is strictly closer to k than
// the local node and shares a prefix with k of at least length r — the
// fault-tolerant fallback of Pastry's route function.
func (rt *RoutingTable) AnyCloser(k id.ID, r int, excluded func(id.ID) bool) (NodeRef, bool) {
	for row := len(rt.rows) - 1; row >= 0; row-- {
		for _, e := range rt.rows[row] {
			if !e.used {
				continue
			}
			if excluded != nil && excluded(e.ref.ID) {
				continue
			}
			if id.CommonPrefixLen(k, e.ref.ID, rt.b) >= r && id.CloserToKey(k, e.ref.ID, rt.self) {
				return e.ref, true
			}
		}
	}
	return NodeRef{}, false
}
