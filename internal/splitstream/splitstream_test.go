package splitstream

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"mspastry/internal/eventsim"
	"mspastry/internal/id"
	"mspastry/internal/netmodel"
	"mspastry/internal/pastry"
	"mspastry/internal/scribe"
	"mspastry/internal/topology"
)

func TestSplitReassemble(t *testing.T) {
	f := func(payload []byte, kRaw uint8) bool {
		k := int(kRaw%8) + 1
		blocks := split(payload, k)
		var out []byte
		for _, b := range blocks {
			out = append(out, b...)
		}
		return bytes.Equal(out, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestParityRecoversAnySingleBlock(t *testing.T) {
	f := func(payload []byte, kRaw, missRaw uint8) bool {
		k := int(kRaw%6) + 2
		blocks := split(payload, k)
		parity := xorBlocks(blocks)
		missing := int(missRaw) % k
		rec := append([]byte(nil), parity...)
		for i, b := range blocks {
			if i != missing {
				xorInto(rec, b)
			}
		}
		want := blocks[missing]
		return bytes.Equal(rec[:len(want)], want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockCodecRoundTrip(t *testing.T) {
	seq, stripe, origLen, block, ok := decodeBlock(encodeBlock(42, 3, 100, []byte("chunk")))
	if !ok || seq != 42 || stripe != 3 || origLen != 100 || string(block) != "chunk" {
		t.Fatal("block codec round trip failed")
	}
	if _, _, _, _, ok := decodeBlock(nil); ok {
		t.Fatal("empty block accepted")
	}
}

func TestStripeGroupsSpreadRoots(t *testing.T) {
	groups := StripeGroups("movie", 4)
	if len(groups) != 5 {
		t.Fatalf("groups = %d, want 5", len(groups))
	}
	seen := map[int]bool{}
	for _, g := range groups {
		d := g.Digit(0, 4)
		if seen[d] {
			t.Fatalf("stripe roots share first digit %x", d)
		}
		seen[d] = true
	}
	// Deterministic per name.
	again := StripeGroups("movie", 4)
	for i := range groups {
		if groups[i] != again[i] {
			t.Fatal("group ids not deterministic")
		}
	}
}

// cluster builds an overlay with a Scribe engine per node.
type cluster struct {
	sim     *eventsim.Simulator
	nw      *netmodel.Network
	engines []*scribe.Scribe
}

func newCluster(t *testing.T, n int, seed int64) *cluster {
	t.Helper()
	sim := eventsim.New(seed)
	topo := topology.CorpNet(topology.CorpNetConfig{Hubs: 6, EdgeRouters: 30}, rand.New(rand.NewSource(seed)))
	nw := netmodel.New(sim, topo, 0)
	c := &cluster{sim: sim, nw: nw}
	cfg := pastry.DefaultConfig()
	cfg.L = 8
	cfg.PNS = false
	first := topo.Attach(n, sim.Rand())
	var seedRef pastry.NodeRef
	for i := 0; i < n; i++ {
		ep := nw.NewEndpoint(first + i)
		ref := pastry.NodeRef{ID: id.Random(sim.Rand()), Addr: ep.Addr()}
		node, err := pastry.NewNode(ref, cfg, ep, nil)
		if err != nil {
			t.Fatal(err)
		}
		ep.Bind(node)
		c.engines = append(c.engines, scribe.New(node, ep, scribe.DefaultConfig()))
		if i == 0 {
			node.Bootstrap()
			seedRef = ref
		} else {
			node.Join(seedRef)
		}
		sim.RunUntil(sim.Now() + 5*time.Second)
	}
	sim.RunUntil(sim.Now() + time.Minute)
	return c
}

func (c *cluster) settle(d time.Duration) { c.sim.RunUntil(c.sim.Now() + d) }

func TestStreamDelivery(t *testing.T) {
	c := newCluster(t, 16, 1)
	cfg := DefaultConfig()
	type rx struct {
		seq     uint64
		payload []byte
	}
	received := map[int][]rx{}
	for i := 4; i < 12; i++ {
		i := i
		Join(c.engines[i], cfg, "film", func(seq uint64, payload []byte) {
			received[i] = append(received[i], rx{seq, append([]byte(nil), payload...)})
		})
	}
	c.settle(15 * time.Second)
	pub := NewPublisher(c.engines[0], cfg, "film")
	var frames [][]byte
	for f := 0; f < 10; f++ {
		frame := bytes.Repeat([]byte{byte('A' + f)}, 100+f*7)
		frames = append(frames, frame)
		pub.Publish(frame)
		c.settle(5 * time.Second)
	}
	c.settle(15 * time.Second)
	for i := 4; i < 12; i++ {
		if len(received[i]) != len(frames) {
			t.Fatalf("subscriber %d received %d/%d frames", i, len(received[i]), len(frames))
		}
		for j, r := range received[i] {
			if !bytes.Equal(r.payload, frames[j]) {
				t.Fatalf("subscriber %d frame %d corrupted", i, j)
			}
		}
	}
}

func TestStreamSurvivesOneStripeLoss(t *testing.T) {
	// Drop every multicast block of stripe 2 on the wire: the parity
	// stripe must cover the gap for every subscriber.
	c := newCluster(t, 14, 2)
	cfg := DefaultConfig()
	groups := StripeGroups("robust", cfg.DataStripes)
	deadStripe := groups[2]
	c.nw.OnSend(func(from *netmodel.Endpoint, to pastry.NodeRef, m pastry.Message, singleBytes int) {})
	// Intercept at the scribe payload level: suppress publishes to the
	// dead stripe group by dropping the stripe's blocks in the handler —
	// simplest faithful approach: publish only to the other stripes.
	got := map[int]int{}
	recovered := map[int]uint64{}
	var chans []*Channel
	for i := 3; i < 11; i++ {
		i := i
		ch := Join(c.engines[i], cfg, "robust", func(seq uint64, payload []byte) { got[i]++ })
		chans = append(chans, ch)
		_ = recovered
	}
	c.settle(15 * time.Second)
	pub := NewPublisher(c.engines[0], cfg, "robust")
	for f := 0; f < 6; f++ {
		// Publish manually, skipping the dead stripe (as if its tree were
		// severed at the root).
		payload := bytes.Repeat([]byte{byte(f + 1)}, 64)
		pub.nextSeq++
		seq := pub.nextSeq
		blocks := split(payload, pub.k)
		parity := xorBlocks(blocks)
		for i, b := range blocks {
			if groups[i] == deadStripe {
				continue
			}
			c.engines[0].Publish(pub.groups[i], encodeBlock(seq, i, len(payload), b))
		}
		c.engines[0].Publish(pub.groups[pub.k], encodeBlock(seq, pub.k, len(payload), parity))
		c.settle(5 * time.Second)
	}
	c.settle(15 * time.Second)
	for i := 3; i < 11; i++ {
		if got[i] != 6 {
			t.Fatalf("subscriber %d reconstructed %d/6 frames with a dead stripe", i, got[i])
		}
	}
	var totalRecovered uint64
	for _, ch := range chans {
		totalRecovered += ch.Recovered
	}
	if totalRecovered == 0 {
		t.Fatal("no frame used parity recovery — test exercised nothing")
	}
}

func TestLeaveStopsStream(t *testing.T) {
	c := newCluster(t, 10, 3)
	cfg := DefaultConfig()
	got := 0
	ch := Join(c.engines[2], cfg, "quit", func(uint64, []byte) { got++ })
	c.settle(10 * time.Second)
	pub := NewPublisher(c.engines[0], cfg, "quit")
	pub.Publish([]byte("one"))
	c.settle(10 * time.Second)
	ch.Leave()
	c.settle(2 * time.Second)
	pub.Publish([]byte("two"))
	c.settle(10 * time.Second)
	if got != 1 {
		t.Fatalf("received %d frames, want 1 (after leave)", got)
	}
}
