// Package splitstream implements striped high-bandwidth multicast over
// Scribe trees, in the style of SplitStream (Castro et al., SOSP 2003) —
// the application the paper's authors ran as a video broadcast on 108
// desktops over MSPastry.
//
// A channel is divided into k data stripes plus one parity stripe; each
// stripe is its own Scribe group, so the stripes travel down independently
// rooted multicast trees (stripe group identifiers differ in their first
// digit, which in Pastry places their roots — and therefore their trees —
// in different parts of the overlay). A published message is split into k
// blocks, one per data stripe, with the parity stripe carrying their XOR:
// a receiver reconstructs the message from any k of the k+1 stripes, so
// the loss of one whole tree (an interior node failure before the soft
// state heals) does not interrupt the stream.
package splitstream

import (
	"encoding/binary"
	"fmt"

	"mspastry/internal/id"
	"mspastry/internal/scribe"
)

// Config sets the stripe count.
type Config struct {
	// DataStripes is k, the number of data stripes (the parity stripe is
	// added on top).
	DataStripes int
}

// DefaultConfig uses 4 data stripes + 1 parity stripe.
func DefaultConfig() Config { return Config{DataStripes: 4} }

// Channel is one striped multicast channel on a node.
type Channel struct {
	engine  *scribe.Scribe
	name    string
	k       int
	groups  []id.ID
	handler func(seq uint64, payload []byte)

	// partial assemblies by sequence number.
	partial map[uint64]*assembly

	// Delivered counts reconstructed messages; Recovered counts those
	// that needed the parity stripe.
	Delivered uint64
	Recovered uint64
}

type assembly struct {
	blocks    [][]byte // k data blocks (nil = missing)
	parity    []byte
	have      int
	hasParity bool
	done      bool
	origLen   int
}

// StripeGroups returns the k+1 Scribe group identifiers for a channel
// name: stripe i's group id has its first identifier digit forced to i,
// spreading the tree roots across the ring as SplitStream prescribes.
func StripeGroups(name string, k int) []id.ID {
	base := id.FromKey("splitstream:" + name)
	groups := make([]id.ID, k+1)
	for i := range groups {
		g := base
		// Force the top 4 bits (the first base-16 digit) to the stripe
		// index so roots land in different parts of the identifier space.
		g.Hi = (g.Hi & (^uint64(0) >> 4)) | (uint64(i%16) << 60)
		groups[i] = g
	}
	return groups
}

// Join subscribes the node to all stripes of the named channel; handler
// receives each reconstructed message exactly once, in arrival order.
func Join(engine *scribe.Scribe, cfg Config, name string, handler func(seq uint64, payload []byte)) *Channel {
	if cfg.DataStripes < 1 {
		cfg.DataStripes = 1
	}
	c := &Channel{
		engine:  engine,
		name:    name,
		k:       cfg.DataStripes,
		groups:  StripeGroups(name, cfg.DataStripes),
		handler: handler,
		partial: make(map[uint64]*assembly),
	}
	for i, g := range c.groups {
		stripe := i
		engine.Subscribe(g, func(_ id.ID, payload []byte) { c.onStripe(stripe, payload) })
	}
	return c
}

// Leave unsubscribes from all stripes.
func (c *Channel) Leave() {
	for _, g := range c.groups {
		c.engine.Unsubscribe(g)
	}
}

// Publisher publishes striped messages to a channel. Publishers do not
// need to be subscribers.
type Publisher struct {
	engine  *scribe.Scribe
	k       int
	groups  []id.ID
	nextSeq uint64
}

// NewPublisher creates a publisher for the named channel.
func NewPublisher(engine *scribe.Scribe, cfg Config, name string) *Publisher {
	if cfg.DataStripes < 1 {
		cfg.DataStripes = 1
	}
	return &Publisher{
		engine: engine,
		k:      cfg.DataStripes,
		groups: StripeGroups(name, cfg.DataStripes),
	}
}

// Publish splits payload into k blocks plus parity and sends one block per
// stripe tree. It returns the message's sequence number.
func (p *Publisher) Publish(payload []byte) uint64 {
	p.nextSeq++
	seq := p.nextSeq
	blocks := split(payload, p.k)
	parity := xorBlocks(blocks)
	for i, b := range blocks {
		p.engine.Publish(p.groups[i], encodeBlock(seq, i, len(payload), b))
	}
	p.engine.Publish(p.groups[p.k], encodeBlock(seq, p.k, len(payload), parity))
	return seq
}

// onStripe folds one received block into its assembly and delivers when
// reconstruction is possible.
func (c *Channel) onStripe(stripe int, payload []byte) {
	seq, idx, origLen, block, ok := decodeBlock(payload)
	if !ok || idx != stripe {
		return
	}
	a := c.partial[seq]
	if a == nil {
		a = &assembly{blocks: make([][]byte, c.k), origLen: origLen}
		c.partial[seq] = a
	}
	if a.done {
		return
	}
	if idx == c.k {
		if !a.hasParity {
			a.hasParity = true
			a.parity = block
		}
	} else if a.blocks[idx] == nil {
		a.blocks[idx] = block
		a.have++
	}
	c.tryDeliver(seq, a)
	c.gc(seq)
}

func (c *Channel) tryDeliver(seq uint64, a *assembly) {
	recovered := false
	switch {
	case a.have == c.k:
		// All data blocks present.
	case a.have == c.k-1 && a.hasParity:
		// Reconstruct the single missing block from parity.
		missing := -1
		for i, b := range a.blocks {
			if b == nil {
				missing = i
				break
			}
		}
		rec := append([]byte(nil), a.parity...)
		for i, b := range a.blocks {
			if i != missing {
				xorInto(rec, b)
			}
		}
		// Trim to the missing block's true length.
		lens := blockLengths(a.origLen, c.k)
		if lens[missing] > len(rec) {
			return // malformed
		}
		a.blocks[missing] = rec[:lens[missing]]
		a.have++
		recovered = true
	default:
		return
	}
	a.done = true
	out := make([]byte, 0, a.origLen)
	for _, b := range a.blocks {
		out = append(out, b...)
	}
	if len(out) != a.origLen {
		return // malformed
	}
	c.Delivered++
	if recovered {
		c.Recovered++
	}
	c.handler(seq, out)
}

// gc bounds the partial-assembly map: completed or ancient assemblies are
// discarded once enough newer ones exist.
func (c *Channel) gc(latest uint64) {
	const keep = 64
	if len(c.partial) <= keep {
		return
	}
	for seq := range c.partial {
		if seq+keep < latest {
			delete(c.partial, seq)
		}
	}
}

// split divides payload into k nearly-equal blocks (the first blocks are
// one byte longer when the length is not divisible by k).
func split(payload []byte, k int) [][]byte {
	lens := blockLengths(len(payload), k)
	out := make([][]byte, k)
	off := 0
	for i, l := range lens {
		out[i] = payload[off : off+l]
		off += l
	}
	return out
}

func blockLengths(total, k int) []int {
	base := total / k
	rem := total % k
	out := make([]int, k)
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}

// xorBlocks XORs all blocks into a buffer sized to the largest block.
func xorBlocks(blocks [][]byte) []byte {
	maxLen := 0
	for _, b := range blocks {
		if len(b) > maxLen {
			maxLen = len(b)
		}
	}
	out := make([]byte, maxLen)
	for _, b := range blocks {
		xorInto(out, b)
	}
	return out
}

func xorInto(dst, src []byte) {
	for i := range src {
		dst[i] ^= src[i]
	}
}

// Block wire format: seq uvarint, stripe uvarint, original length uvarint,
// then the block bytes.
func encodeBlock(seq uint64, stripe, origLen int, block []byte) []byte {
	buf := make([]byte, 0, 24+len(block))
	buf = binary.AppendUvarint(buf, seq)
	buf = binary.AppendUvarint(buf, uint64(stripe))
	buf = binary.AppendUvarint(buf, uint64(origLen))
	return append(buf, block...)
}

func decodeBlock(buf []byte) (seq uint64, stripe, origLen int, block []byte, ok bool) {
	s, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, 0, 0, nil, false
	}
	buf = buf[n:]
	st, n := binary.Uvarint(buf)
	if n <= 0 || st > 1<<16 {
		return 0, 0, 0, nil, false
	}
	buf = buf[n:]
	ol, n := binary.Uvarint(buf)
	if n <= 0 || ol > 1<<24 {
		return 0, 0, 0, nil, false
	}
	return s, int(st), int(ol), buf[n:], true
}

// String describes the channel.
func (c *Channel) String() string {
	return fmt.Sprintf("splitstream %q: %d+1 stripes, %d delivered (%d via parity)",
		c.name, c.k, c.Delivered, c.Recovered)
}
