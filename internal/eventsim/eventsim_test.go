package eventsim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestRunsEventsInTimeOrder(t *testing.T) {
	s := New(1)
	var order []int
	s.At(3*time.Second, func() { order = append(order, 3) })
	s.At(1*time.Second, func() { order = append(order, 1) })
	s.At(2*time.Second, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 3*time.Second {
		t.Fatalf("clock = %v, want 3s", s.Now())
	}
}

func TestEqualTimesFireInScheduleOrder(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Second, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated at %d: %v", i, order)
		}
	}
}

func TestAfterUsesCurrentTime(t *testing.T) {
	s := New(1)
	var fired time.Duration
	s.At(5*time.Second, func() {
		s.After(2*time.Second, func() { fired = s.Now() })
	})
	s.Run()
	if fired != 7*time.Second {
		t.Fatalf("After fired at %v, want 7s", fired)
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	s := New(1)
	fired := false
	e := s.At(time.Second, func() { fired = true })
	e.Cancel()
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !e.Canceled() {
		t.Fatal("Canceled() should be true")
	}
}

func TestCancelFromEarlierEvent(t *testing.T) {
	s := New(1)
	fired := false
	later := s.At(2*time.Second, func() { fired = true })
	s.At(1*time.Second, func() { later.Cancel() })
	s.Run()
	if fired {
		t.Fatal("event cancelled mid-run still fired")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New(1)
	s.At(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		s.At(0, func() {})
	})
	s.Run()
}

func TestRunUntilLeavesLaterEventsPending(t *testing.T) {
	s := New(1)
	var fired []time.Duration
	for _, d := range []time.Duration{1, 2, 3, 4} {
		d := d * time.Second
		s.At(d, func() { fired = append(fired, d) })
	}
	s.RunUntil(2500 * time.Millisecond)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want 2 events", fired)
	}
	if s.Now() != 2500*time.Millisecond {
		t.Fatalf("clock = %v, want 2.5s", s.Now())
	}
	s.Run()
	if len(fired) != 4 {
		t.Fatalf("remaining events lost: %v", fired)
	}
}

func TestStopHaltsRun(t *testing.T) {
	s := New(1)
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(time.Duration(i)*time.Second, func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Fatalf("executed %d events after Stop, want 3", count)
	}
	s.Run()
	if count != 10 {
		t.Fatalf("Run after Stop should resume: count=%d", count)
	}
}

func TestDeterministicWithSameSeed(t *testing.T) {
	run := func(seed int64) []time.Duration {
		s := New(seed)
		var fired []time.Duration
		var schedule func()
		n := 0
		schedule = func() {
			fired = append(fired, s.Now())
			if n++; n < 50 {
				s.After(time.Duration(s.Rand().Intn(1000))*time.Millisecond, schedule)
			}
		}
		s.At(0, schedule)
		s.Run()
		return fired
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules (suspicious)")
	}
}

func TestOnAdvanceSeesMonotoneTimes(t *testing.T) {
	s := New(1)
	var ticks []time.Duration
	s.OnAdvance(func(now time.Duration) { ticks = append(ticks, now) })
	for i := 1; i <= 5; i++ {
		s.At(time.Duration(i)*time.Second, func() {})
		s.At(time.Duration(i)*time.Second, func() {}) // same-time pair: one advance
	}
	s.Run()
	if len(ticks) != 5 {
		t.Fatalf("advance ticks = %v, want 5", ticks)
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i] <= ticks[i-1] {
			t.Fatalf("non-monotone advance: %v", ticks)
		}
	}
}

func TestStepsCountsOnlyFiredEvents(t *testing.T) {
	s := New(1)
	e := s.At(time.Second, func() {})
	s.At(2*time.Second, func() {})
	e.Cancel()
	s.Run()
	if s.Steps() != 1 {
		t.Fatalf("Steps = %d, want 1", s.Steps())
	}
}

func TestHeapPropertyRandomOrder(t *testing.T) {
	// Property: for any multiset of schedule times, execution order is the
	// sorted order (stable by insertion for duplicates).
	f := func(raw []uint16) bool {
		s := New(1)
		var fired []time.Duration
		for _, v := range raw {
			d := time.Duration(v) * time.Millisecond
			s.At(d, func() { fired = append(fired, d) })
		}
		s.Run()
		if len(fired) != len(raw) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Fatal(err)
	}
}

func TestPendingReflectsQueue(t *testing.T) {
	s := New(1)
	if s.Pending() != 0 {
		t.Fatal("fresh simulator has pending events")
	}
	s.At(time.Second, func() {})
	s.At(2*time.Second, func() {})
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", s.Pending())
	}
	s.Step()
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", s.Pending())
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	for n := 0; n < b.N; n++ {
		s := New(int64(n))
		count := 0
		var reschedule func()
		reschedule = func() {
			count++
			if count < 100000 {
				s.After(time.Duration(s.Rand().Intn(100))*time.Millisecond, reschedule)
			}
		}
		for i := 0; i < 64; i++ {
			s.At(0, reschedule)
		}
		s.Run()
	}
}
