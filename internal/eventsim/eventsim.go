// Package eventsim provides a deterministic discrete-event simulation
// engine: a virtual clock, a priority queue of scheduled callbacks and a
// seeded random source. The MSPastry evaluation in the paper runs on a
// "simple packet-level discrete event simulator"; this is ours.
//
// All state transitions in a simulation happen inside event callbacks, which
// the engine executes one at a time in (time, schedule-order) order, so
// simulations are single-threaded and reproducible for a given seed.
package eventsim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Event is a scheduled callback. It can be cancelled before it fires.
type Event struct {
	when     time.Duration
	seq      uint64
	fn       func()
	index    int // position in the heap, -1 once removed
	canceled bool
}

// When returns the virtual time at which the event is (or was) scheduled.
func (e *Event) When() time.Duration { return e.when }

// Cancel prevents the event from firing. Cancelling an event that already
// fired or was already cancelled is a no-op.
func (e *Event) Cancel() { e.canceled = true }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// Simulator is a discrete-event scheduler with a virtual clock.
// The zero value is not usable; construct with New.
type Simulator struct {
	now       time.Duration
	events    eventHeap
	seq       uint64
	rng       *rand.Rand
	steps     uint64
	stopped   bool
	onAdvance func(time.Duration)
}

// New creates a simulator whose clock starts at 0 and whose random source is
// seeded with seed, so runs are reproducible.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// Rand returns the simulation's random source. All randomness in a
// simulation must come from here to keep runs reproducible.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Steps returns the number of events executed so far.
func (s *Simulator) Steps() uint64 { return s.steps }

// Pending returns the number of events scheduled and not yet fired
// (including cancelled events that have not been reaped yet).
func (s *Simulator) Pending() int { return len(s.events) }

// OnAdvance registers a callback invoked whenever the virtual clock moves
// forward, with the new time. Metric collectors use it to close windows.
func (s *Simulator) OnAdvance(fn func(time.Duration)) { s.onAdvance = fn }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// (before Now) panics: that is always a logic error in a simulation.
func (s *Simulator) At(t time.Duration, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("eventsim: scheduling at %v before now %v", t, s.now))
	}
	e := &Event{when: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, e)
	return e
}

// After schedules fn to run d after the current virtual time.
func (s *Simulator) After(d time.Duration, fn func()) *Event {
	return s.At(s.now+d, fn)
}

// Stop makes the current Run/RunUntil call return after the current event's
// callback completes.
func (s *Simulator) Stop() { s.stopped = true }

// Step executes the next event, advancing the clock to its time. It returns
// false when no events remain.
func (s *Simulator) Step() bool {
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(*Event)
		if e.canceled {
			continue
		}
		if e.when > s.now {
			s.now = e.when
			if s.onAdvance != nil {
				s.onAdvance(s.now)
			}
		}
		s.steps++
		e.fn()
		return true
	}
	return false
}

// Run executes events until none remain or Stop is called.
func (s *Simulator) Run() {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
}

// RunUntil executes events with scheduled time <= t, then advances the clock
// to exactly t. Events scheduled after t remain pending.
func (s *Simulator) RunUntil(t time.Duration) {
	s.stopped = false
	for !s.stopped {
		e := s.peek()
		if e == nil || e.when > t {
			break
		}
		s.Step()
	}
	if s.now < t {
		s.now = t
		if s.onAdvance != nil {
			s.onAdvance(s.now)
		}
	}
}

func (s *Simulator) peek() *Event {
	for len(s.events) > 0 {
		if e := s.events[0]; !e.canceled {
			return e
		}
		heap.Pop(&s.events)
	}
	return nil
}

// eventHeap orders events by (when, seq) so that events at equal times fire
// in scheduling order, keeping runs deterministic.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}
