package scribe

import (
	"math/rand"
	"testing"
	"time"

	"mspastry/internal/eventsim"
	"mspastry/internal/id"
	"mspastry/internal/netmodel"
	"mspastry/internal/pastry"
	"mspastry/internal/topology"
)

type simCluster struct {
	sim     *eventsim.Simulator
	nw      *netmodel.Network
	engines []*Scribe
}

func newCluster(t *testing.T, n int, seed int64) *simCluster {
	t.Helper()
	sim := eventsim.New(seed)
	topo := topology.CorpNet(topology.CorpNetConfig{Hubs: 6, EdgeRouters: 30}, rand.New(rand.NewSource(seed)))
	nw := netmodel.New(sim, topo, 0)
	c := &simCluster{sim: sim, nw: nw}
	cfg := pastry.DefaultConfig()
	cfg.L = 8
	cfg.PNS = false
	first := topo.Attach(n, sim.Rand())
	var seedRef pastry.NodeRef
	for i := 0; i < n; i++ {
		ep := nw.NewEndpoint(first + i)
		ref := pastry.NodeRef{ID: id.Random(sim.Rand()), Addr: ep.Addr()}
		node, err := pastry.NewNode(ref, cfg, ep, nil)
		if err != nil {
			t.Fatal(err)
		}
		ep.Bind(node)
		c.engines = append(c.engines, New(node, ep, DefaultConfig()))
		if i == 0 {
			node.Bootstrap()
			seedRef = ref
		} else {
			node.Join(seedRef)
		}
		sim.RunUntil(sim.Now() + 5*time.Second)
	}
	sim.RunUntil(sim.Now() + time.Minute)
	for i, e := range c.engines {
		if !e.Node().Active() {
			t.Fatalf("node %d not active", i)
		}
	}
	return c
}

func (c *simCluster) settle(d time.Duration) { c.sim.RunUntil(c.sim.Now() + d) }

func TestMulticastReachesAllSubscribers(t *testing.T) {
	c := newCluster(t, 16, 1)
	group := id.New(0xabcd, 0x1234)
	received := make(map[int]int)
	for i := 4; i < 12; i++ {
		i := i
		c.engines[i].Subscribe(group, func(_ id.ID, payload []byte) {
			if string(payload) != "news" {
				t.Fatalf("wrong payload %q", payload)
			}
			received[i]++
		})
	}
	c.settle(10 * time.Second) // let the tree build
	c.engines[0].Publish(group, []byte("news"))
	c.settle(10 * time.Second)
	for i := 4; i < 12; i++ {
		if received[i] != 1 {
			t.Fatalf("subscriber %d received %d copies, want 1", i, received[i])
		}
	}
}

func TestNonSubscribersReceiveNothing(t *testing.T) {
	c := newCluster(t, 12, 2)
	group := id.New(0x9999, 0)
	gotOutside := 0
	c.engines[3].Subscribe(group, func(id.ID, []byte) {})
	c.engines[5].Subscribe(id.New(0x8888, 0), func(id.ID, []byte) { gotOutside++ })
	c.settle(10 * time.Second)
	c.engines[0].Publish(group, []byte("x"))
	c.settle(10 * time.Second)
	if gotOutside != 0 {
		t.Fatal("message leaked to a different group")
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	c := newCluster(t, 12, 3)
	group := id.New(0x7777, 0)
	got := 0
	c.engines[2].Subscribe(group, func(id.ID, []byte) { got++ })
	c.settle(5 * time.Second)
	c.engines[0].Publish(group, []byte("a"))
	c.settle(5 * time.Second)
	c.engines[2].Unsubscribe(group)
	c.settle(time.Second)
	c.engines[0].Publish(group, []byte("b"))
	c.settle(5 * time.Second)
	if got != 1 {
		t.Fatalf("received %d messages, want 1 (after unsubscribe)", got)
	}
}

func TestTreeSurvivesInteriorFailure(t *testing.T) {
	c := newCluster(t, 20, 4)
	group := id.New(0x4242, 0x4242)
	subs := []int{2, 5, 8, 11, 14, 17}
	counts := make(map[int]int)
	for _, i := range subs {
		i := i
		c.engines[i].Subscribe(group, func(id.ID, []byte) { counts[i]++ })
	}
	c.settle(10 * time.Second)
	// Fail the rendezvous root of the group: the worst interior failure.
	rootIdx := 0
	for j := range c.engines {
		if id.CloserToKey(group, c.engines[j].Node().Ref().ID, c.engines[rootIdx].Node().Ref().ID) {
			rootIdx = j
		}
	}
	if ep, ok := c.nw.Endpoint(c.engines[rootIdx].Node().Ref().Addr); ok {
		ep.Fail()
	}
	// Wait for overlay repair plus a soft-state refresh cycle.
	c.settle(3 * time.Minute)
	pub := 0
	if pub == rootIdx {
		pub = 1
	}
	c.engines[pub].Publish(group, []byte("after-failure"))
	c.settle(15 * time.Second)
	for _, i := range subs {
		if i == rootIdx {
			continue
		}
		if counts[i] == 0 {
			t.Fatalf("subscriber %d lost multicast after root failure", i)
		}
	}
}

func TestDuplicateSuppression(t *testing.T) {
	s := &Scribe{seen: make(map[uint64]bool), seenRing: make([]uint64, 4)}
	if !s.markSeen(1) || s.markSeen(1) {
		t.Fatal("duplicate not suppressed")
	}
	// Ring capacity 4: after 4 more nonces, nonce 1 is forgotten.
	for n := uint64(2); n <= 5; n++ {
		if !s.markSeen(n) {
			t.Fatalf("fresh nonce %d rejected", n)
		}
	}
	if !s.markSeen(1) {
		t.Fatal("evicted nonce should be accepted again")
	}
}

func TestSubscribeCodec(t *testing.T) {
	ref := pastry.NodeRef{ID: id.New(5, 6), Addr: "1.2.3.4:99"}
	group := id.New(7, 8)
	g, ch, ok := decodeSubscribe(encodeSubscribe(group, ref))
	if !ok || g != group || ch != ref {
		t.Fatal("subscribe round trip failed")
	}
	if _, _, ok := decodeSubscribe([]byte{kindSubscribe, 1, 2}); ok {
		t.Fatal("short subscribe accepted")
	}
	gp, payload, ok := decodePublish(encodePublish(group, []byte("pl")))
	if !ok || gp != group || string(payload) != "pl" {
		t.Fatal("publish round trip failed")
	}
	gm, nonce, body, ok := decodeMulticast(encodeMulticast(group, 77, []byte("mc")))
	if !ok || gm != group || nonce != 77 || string(body) != "mc" {
		t.Fatal("multicast round trip failed")
	}
}

func TestPublishWithNoSubscribersIsHarmless(t *testing.T) {
	c := newCluster(t, 8, 5)
	c.engines[0].Publish(id.New(0xeeee, 0), []byte("void"))
	c.settle(10 * time.Second)
	for i, e := range c.engines {
		if e.Delivered != 0 {
			t.Fatalf("node %d delivered a message without subscribers", i)
		}
	}
}
