// Package scribe implements application-level multicast in the style of
// Scribe (Castro, Druschel, Kermarrec, Rowstron, IEEE JSAC 2002), one of
// the overlay applications the paper names as a consumer of consistent
// routing: routing inconsistencies make group members lose multicast
// messages, so Scribe is a natural client of MSPastry.
//
// A group is identified by a key; the key's root node is the group's
// rendezvous point. Subscriptions are routed towards the root and build a
// reverse-path tree: every node a subscribe message passes through becomes
// a forwarder and records the previous hop as a child. Published messages
// are routed to the root and disseminated down the tree with direct
// messages. Tree state is soft: subscribers refresh periodically and
// forwarders expire silent children, so the tree heals around failures.
package scribe

import (
	"encoding/binary"
	"time"

	"mspastry/internal/id"
	"mspastry/internal/pastry"
)

// Handler consumes multicast messages delivered to a local subscription.
type Handler func(group id.ID, payload []byte)

// Config tunes the soft-state timers.
type Config struct {
	// RefreshInterval is how often subscriptions are re-sent towards the
	// group root.
	RefreshInterval time.Duration
	// ChildTTL is how long a child entry survives without a refresh.
	ChildTTL time.Duration
}

// DefaultConfig returns the default soft-state timers.
func DefaultConfig() Config {
	return Config{RefreshInterval: 30 * time.Second, ChildTTL: 75 * time.Second}
}

// Scribe is the multicast engine on one overlay node. It implements
// pastry.App. All methods must be called from the node's Env context.
type Scribe struct {
	node *pastry.Node
	env  pastry.Env
	cfg  Config

	groups map[id.ID]*groupState

	nextNonce uint64
	seen      map[uint64]bool
	seenRing  []uint64
	seenNext  int

	// Delivered counts multicast payloads handed to local handlers.
	Delivered uint64
	// Forwarded counts multicast payloads relayed to children.
	Forwarded uint64
}

type groupState struct {
	subscribed bool
	handler    Handler
	children   map[id.ID]childEntry
	refresh    pastry.Timer
}

type childEntry struct {
	ref  pastry.NodeRef
	seen time.Duration
}

// New attaches a Scribe engine to node, registering it as the node's
// application layer. env must be the node's environment (for timers).
func New(node *pastry.Node, env pastry.Env, cfg Config) *Scribe {
	s := &Scribe{
		node:     node,
		env:      env,
		cfg:      cfg,
		groups:   make(map[id.ID]*groupState),
		seen:     make(map[uint64]bool),
		seenRing: make([]uint64, 1024),
	}
	node.SetApp(s)
	return s
}

// Node returns the underlying overlay node.
func (s *Scribe) Node() *pastry.Node { return s.node }

// Subscribe joins a multicast group. The handler receives every message
// published to the group while the subscription holds.
func (s *Scribe) Subscribe(group id.ID, h Handler) {
	g := s.group(group)
	g.subscribed = true
	g.handler = h
	s.sendSubscribe(group)
	s.armRefresh(group, g)
}

// Unsubscribe cancels the local subscription. The node keeps forwarding
// for the group while it has live children; the forwarder state expires
// with them.
func (s *Scribe) Unsubscribe(group id.ID) {
	g, ok := s.groups[group]
	if !ok {
		return
	}
	g.subscribed = false
	g.handler = nil
	if g.refresh != nil {
		g.refresh.Cancel()
		g.refresh = nil
	}
	s.maybeDropGroup(group, g)
}

// Publish sends payload to every subscriber of group. The message is
// routed to the group's rendezvous root, which disseminates it down the
// tree.
func (s *Scribe) Publish(group id.ID, payload []byte) {
	s.node.Lookup(group, encodePublish(group, payload))
}

// Children reports the node's current child count for a group (testing and
// diagnostics).
func (s *Scribe) Children(group id.ID) int {
	if g, ok := s.groups[group]; ok {
		return len(g.children)
	}
	return 0
}

func (s *Scribe) group(group id.ID) *groupState {
	g, ok := s.groups[group]
	if !ok {
		g = &groupState{children: make(map[id.ID]childEntry)}
		s.groups[group] = g
	}
	return g
}

func (s *Scribe) sendSubscribe(group id.ID) {
	s.node.Lookup(group, encodeSubscribe(group, s.node.Ref()))
}

// armRefresh keeps the soft state alive: subscribers and forwarders with
// live children periodically re-subscribe towards the root (repairing the
// tree around failed interior nodes) and expire silent children.
func (s *Scribe) armRefresh(group id.ID, g *groupState) {
	if g.refresh != nil {
		g.refresh.Cancel()
	}
	g.refresh = s.env.Schedule(s.cfg.RefreshInterval, func() {
		cur, ok := s.groups[group]
		if !ok {
			return
		}
		s.expireChildren(group, cur)
		cur, ok = s.groups[group]
		if !ok {
			return
		}
		if cur.subscribed || len(cur.children) > 0 {
			s.sendSubscribe(group)
			s.armRefresh(group, cur)
		}
	})
}

func (s *Scribe) expireChildren(group id.ID, g *groupState) {
	now := s.env.Now()
	for x, c := range g.children {
		if now-c.seen > s.cfg.ChildTTL {
			delete(g.children, x)
		}
	}
	s.maybeDropGroup(group, g)
}

func (s *Scribe) maybeDropGroup(group id.ID, g *groupState) {
	if !g.subscribed && len(g.children) == 0 {
		if g.refresh != nil {
			g.refresh.Cancel()
		}
		delete(s.groups, group)
	}
}

// Forward implements pastry.App: intercept subscribe messages to build the
// reverse-path tree. A node that is already part of the tree absorbs the
// subscription; otherwise it records the child and subscribes onwards
// itself, re-writing the child to itself.
func (s *Scribe) Forward(lk *pastry.Lookup) bool {
	group, child, ok := decodeSubscribe(lk.Payload)
	if !ok {
		return true // not a subscribe: forward normally
	}
	if child.ID == s.node.Ref().ID {
		// Our own outgoing (re-)subscription: pass it along unchanged.
		return true
	}
	g := s.group(group)
	wasForwarder := g.subscribed || len(g.children) > 0
	g.children[child.ID] = childEntry{ref: child, seen: s.env.Now()}
	if g.refresh == nil {
		s.armRefresh(group, g)
	}
	if wasForwarder {
		// Already on the tree: absorb; our own periodic refresh keeps the
		// path above alive.
		return false
	}
	// New forwarder: propagate a subscription with ourselves as child.
	lk.Payload = encodeSubscribe(group, s.node.Ref())
	return true
}

// Deliver implements pastry.App: the node is the group's rendezvous root
// (or the final destination of a subscribe).
func (s *Scribe) Deliver(lk *pastry.Lookup) {
	if group, child, ok := decodeSubscribe(lk.Payload); ok {
		g := s.group(group)
		if child.ID != s.node.Ref().ID {
			g.children[child.ID] = childEntry{ref: child, seen: s.env.Now()}
			if g.refresh == nil {
				s.armRefresh(group, g)
			}
		}
		return
	}
	if group, payload, ok := decodePublish(lk.Payload); ok {
		s.nextNonce++
		nonce := uint64(s.node.Ref().ID.Lo)<<32 ^ s.nextNonce
		s.disseminate(group, nonce, payload, pastry.NodeRef{})
		return
	}
}

// Direct implements pastry.App: multicast dissemination from our parent.
func (s *Scribe) Direct(from pastry.NodeRef, payload []byte) {
	group, nonce, body, ok := decodeMulticast(payload)
	if !ok {
		return
	}
	s.disseminate(group, nonce, body, from)
}

// markSeen records a multicast nonce, returning false if it was already
// seen (duplicate suppression keeps transient tree cycles from looping).
func (s *Scribe) markSeen(nonce uint64) bool {
	if s.seen[nonce] {
		return false
	}
	delete(s.seen, s.seenRing[s.seenNext])
	s.seenRing[s.seenNext] = nonce
	s.seenNext = (s.seenNext + 1) % len(s.seenRing)
	s.seen[nonce] = true
	return true
}

// disseminate delivers a multicast payload locally (if subscribed) and
// relays it to all children except the one it came from.
func (s *Scribe) disseminate(group id.ID, nonce uint64, payload []byte, from pastry.NodeRef) {
	if !s.markSeen(nonce) {
		return
	}
	g, ok := s.groups[group]
	if !ok {
		return
	}
	if g.subscribed && g.handler != nil {
		s.Delivered++
		g.handler(group, payload)
	}
	msg := encodeMulticast(group, nonce, payload)
	for _, c := range g.children {
		if c.ref.ID == from.ID {
			continue
		}
		s.Forwarded++
		s.node.SendDirect(c.ref, msg)
	}
}

// Wire formats: 1-byte kind, group id, then kind-specific fields.
const (
	kindSubscribe byte = iota + 1
	kindPublish
	kindMulticast
)

func encodeSubscribe(group id.ID, child pastry.NodeRef) []byte {
	buf := make([]byte, 0, 64)
	buf = append(buf, kindSubscribe)
	buf = append(buf, group.Bytes()...)
	buf = append(buf, child.ID.Bytes()...)
	buf = binary.AppendUvarint(buf, uint64(len(child.Addr)))
	return append(buf, child.Addr...)
}

func decodeSubscribe(buf []byte) (group id.ID, child pastry.NodeRef, ok bool) {
	if len(buf) < 1+16+16+1 || buf[0] != kindSubscribe {
		return id.ID{}, pastry.NodeRef{}, false
	}
	group = id.FromBytes(buf[1:17])
	child.ID = id.FromBytes(buf[17:33])
	alen, n := binary.Uvarint(buf[33:])
	if n <= 0 || int(alen) != len(buf)-33-n {
		return id.ID{}, pastry.NodeRef{}, false
	}
	child.Addr = string(buf[33+n:])
	return group, child, true
}

func encodePublish(group id.ID, payload []byte) []byte {
	buf := make([]byte, 0, 32+len(payload))
	buf = append(buf, kindPublish)
	buf = append(buf, group.Bytes()...)
	return append(buf, payload...)
}

func decodePublish(buf []byte) (group id.ID, payload []byte, ok bool) {
	if len(buf) < 17 || buf[0] != kindPublish {
		return id.ID{}, nil, false
	}
	return id.FromBytes(buf[1:17]), buf[17:], true
}

func encodeMulticast(group id.ID, nonce uint64, payload []byte) []byte {
	buf := make([]byte, 0, 40+len(payload))
	buf = append(buf, kindMulticast)
	buf = append(buf, group.Bytes()...)
	buf = binary.AppendUvarint(buf, nonce)
	return append(buf, payload...)
}

func decodeMulticast(buf []byte) (group id.ID, nonce uint64, payload []byte, ok bool) {
	if len(buf) < 18 || buf[0] != kindMulticast {
		return id.ID{}, 0, nil, false
	}
	v, n := binary.Uvarint(buf[17:])
	if n <= 0 {
		return id.ID{}, 0, nil, false
	}
	return id.FromBytes(buf[1:17]), v, buf[17+n:], true
}
