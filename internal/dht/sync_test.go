package dht

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"mspastry/internal/id"
	"mspastry/internal/store"
)

func TestDeleteTombstones(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SweepInterval = 20 * time.Second
	c := newCluster(t, 12, 11, cfg)
	key := id.New(0xdead, 0xbeef)
	c.stores[1].Put(key, []byte("doomed"), func(error) {})
	c.settle(15 * time.Second)

	delErr := error(fmt.Errorf("not called"))
	c.stores[4].Delete(key, func(err error) { delErr = err })
	c.settle(15 * time.Second)
	if delErr != nil {
		t.Fatalf("delete: %v", delErr)
	}
	var getErr error
	c.stores[7].Get(key, func(_ []byte, e error) { getErr = e })
	c.settle(15 * time.Second)
	if getErr != ErrNotFound {
		t.Fatalf("get after delete: %v, want ErrNotFound", getErr)
	}

	// Several sweep cycles later the deletion must still hold everywhere:
	// anti-entropy propagates the tombstone instead of resurrecting the
	// value from a replica that missed the delete.
	c.settle(2 * time.Minute)
	for i, s := range c.stores {
		if s.HasLocal(key) {
			t.Fatalf("store %d still holds a live copy after delete", i)
		}
	}
	getErr = nil
	c.stores[2].Get(key, func(_ []byte, e error) { getErr = e })
	c.settle(15 * time.Second)
	if getErr != ErrNotFound {
		t.Fatalf("get long after delete: %v, want ErrNotFound", getErr)
	}
	// Deleting a missing key is an acked no-op.
	delErr = fmt.Errorf("not called")
	c.stores[3].Delete(id.New(0x404, 0x404), func(err error) { delErr = err })
	c.settle(15 * time.Second)
	if delErr != nil {
		t.Fatalf("delete of missing key: %v", delErr)
	}
}

// TestSyncTransfersOnlyDivergent is the anti-entropy contract: when two
// replicas diverge on d of n keys, reconciliation moves at most d values,
// not n, and steady-state sweeps move none at all.
func TestSyncTransfersOnlyDivergent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SweepInterval = 20 * time.Second
	c := newCluster(t, 2, 21, cfg)
	rng := rand.New(rand.NewSource(21))
	var keys []id.ID
	for i := 0; i < 40; i++ {
		key := id.Random(rng)
		keys = append(keys, key)
		c.stores[i%2].Put(key, []byte(fmt.Sprintf("v%d", i)), func(error) {})
		c.settle(2 * time.Second)
	}
	c.settle(time.Minute)
	for i := 0; i < 2; i++ {
		if got := c.stores[i].LocalObjects(); got != 40 {
			t.Fatalf("store %d holds %d objects, want 40", i, got)
		}
	}
	repaired := func() uint64 {
		return c.stores[0].Counters().SyncKeysRepaired + c.stores[1].Counters().SyncKeysRepaired
	}
	values := func() uint64 {
		var n uint64
		for _, s := range c.stores {
			cs := s.Counters()
			n += cs.ReplicasPushed + cs.SyncKeysRepaired
		}
		return n
	}

	// Steady state moves no values at all: only root digests cross the
	// wire.
	base := values()
	c.settle(time.Minute)
	if moved := values() - base; moved != 0 {
		t.Fatalf("steady-state sweeps moved %d values", moved)
	}

	// Diverge 6 of the 40 keys on node 0 only, behind the DHT's back.
	const divergent = 6
	repairedBefore := repaired()
	for i := 0; i < divergent; i++ {
		cur, ok := c.stores[0].Backend().Get(keys[i])
		if !ok {
			t.Fatalf("key %d missing from store 0", i)
		}
		c.stores[0].Backend().Apply(store.Object{
			Key: keys[i], Version: cur.Version + 1, Origin: 1,
			Value: []byte("diverged"),
		})
	}
	c.settle(time.Minute)
	moved := repaired() - repairedBefore
	if moved == 0 {
		t.Fatal("divergence never repaired")
	}
	if moved > divergent {
		t.Fatalf("moved %d values for %d divergent keys", moved, divergent)
	}
	for i := 0; i < divergent; i++ {
		o, ok := c.stores[1].Backend().Get(keys[i])
		if !ok || string(o.Value) != "diverged" {
			t.Fatalf("key %d not converged on store 1: %q (ok=%v)", i, o.Value, ok)
		}
	}
	// And the system returns to a clean steady state.
	repairedBefore = repaired()
	c.settle(time.Minute)
	if again := repaired() - repairedBefore; again != 0 {
		t.Fatalf("%d repairs after convergence", again)
	}
}

// TestPartitionHealConvergence partitions a cluster, updates objects on
// one side, heals, and requires the stale side to converge to the updated
// values through anti-entropy.
func TestPartitionHealConvergence(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SweepInterval = 20 * time.Second
	c := newCluster(t, 10, 31, cfg)
	rng := rand.New(rand.NewSource(31))
	var keys []id.ID
	for i := 0; i < 30; i++ {
		key := id.Random(rng)
		keys = append(keys, key)
		c.stores[i%10].Put(key, []byte("old"), func(error) {})
		c.settle(2 * time.Second)
	}
	c.settle(30 * time.Second)

	// Split the first five nodes from the rest, briefly enough that the
	// overlay re-merges after the heal.
	sideA := make(map[string]bool)
	for _, s := range c.stores[:5] {
		sideA[s.Node().Ref().Addr] = true
	}
	c.nw.Faults().SetPartition(func(addr string) bool { return sideA[addr] })

	// Update every key from inside side A; only keys whose root is
	// reachable there will ack.
	updated := make(map[int]bool)
	for i, key := range keys {
		i := i
		c.stores[0].Put(key, []byte("new"), func(err error) {
			if err == nil {
				updated[i] = true
			}
		})
	}
	c.settle(90 * time.Second)
	if len(updated) == 0 {
		t.Fatal("no update succeeded inside the partition")
	}
	c.nw.Faults().SetPartition(nil)
	// Overlay re-merge plus several anti-entropy sweeps.
	c.settle(5 * time.Minute)

	// Every successfully updated key must read "new" from the side that
	// never saw the write.
	for i := range updated {
		var got []byte
		var err error
		c.stores[7].Get(keys[i], func(v []byte, e error) { got, err = v, e })
		c.settle(20 * time.Second)
		if err != nil {
			t.Fatalf("get key %d after heal: %v", i, err)
		}
		if string(got) != "new" {
			t.Fatalf("key %d not converged after heal: %q", i, got)
		}
	}
}
