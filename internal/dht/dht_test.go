package dht

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"mspastry/internal/eventsim"
	"mspastry/internal/id"
	"mspastry/internal/netmodel"
	"mspastry/internal/pastry"
	"mspastry/internal/store"
	"mspastry/internal/topology"
)

type simCluster struct {
	sim    *eventsim.Simulator
	nw     *netmodel.Network
	stores []*Store
}

func newCluster(t *testing.T, n int, seed int64, cfg Config) *simCluster {
	t.Helper()
	sim := eventsim.New(seed)
	topo := topology.CorpNet(topology.CorpNetConfig{Hubs: 6, EdgeRouters: 30}, rand.New(rand.NewSource(seed)))
	nw := netmodel.New(sim, topo, 0)
	c := &simCluster{sim: sim, nw: nw}
	pcfg := pastry.DefaultConfig()
	pcfg.L = 8
	pcfg.PNS = false
	first := topo.Attach(n, sim.Rand())
	var seedRef pastry.NodeRef
	for i := 0; i < n; i++ {
		ep := nw.NewEndpoint(first + i)
		ref := pastry.NodeRef{ID: id.Random(sim.Rand()), Addr: ep.Addr()}
		node, err := pastry.NewNode(ref, pcfg, ep, nil)
		if err != nil {
			t.Fatal(err)
		}
		ep.Bind(node)
		c.stores = append(c.stores, New(node, ep, cfg))
		if i == 0 {
			node.Bootstrap()
			seedRef = ref
		} else {
			node.Join(seedRef)
		}
		sim.RunUntil(sim.Now() + 5*time.Second)
	}
	sim.RunUntil(sim.Now() + time.Minute)
	for i, s := range c.stores {
		if !s.Node().Active() {
			t.Fatalf("node %d not active", i)
		}
	}
	return c
}

func (c *simCluster) settle(d time.Duration) { c.sim.RunUntil(c.sim.Now() + d) }

func TestPutGetRoundTrip(t *testing.T) {
	c := newCluster(t, 12, 1, DefaultConfig())
	key := id.New(0xfeed, 0xbeef)
	putErr := error(fmt.Errorf("not called"))
	c.stores[2].Put(key, []byte("hello"), func(err error) { putErr = err })
	c.settle(15 * time.Second)
	if putErr != nil {
		t.Fatalf("put: %v", putErr)
	}
	var got []byte
	var getErr error
	c.stores[9].Get(key, func(v []byte, err error) { got, getErr = v, err })
	c.settle(15 * time.Second)
	if getErr != nil {
		t.Fatalf("get: %v", getErr)
	}
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
}

func TestGetMissingKey(t *testing.T) {
	c := newCluster(t, 10, 2, DefaultConfig())
	var err error
	called := false
	c.stores[1].Get(id.New(0x404, 0x404), func(_ []byte, e error) { called, err = true, e })
	c.settle(15 * time.Second)
	if !called {
		t.Fatal("callback never invoked")
	}
	if err != ErrNotFound {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestReplicationFactorHolds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReplicationFactor = 3
	c := newCluster(t, 14, 3, cfg)
	key := id.New(0xabc, 0xdef)
	c.stores[0].Put(key, []byte("replicated"), func(error) {})
	c.settle(10 * time.Second)
	holders := 0
	for _, s := range c.stores {
		if s.HasLocal(key) {
			holders++
		}
	}
	if holders != cfg.ReplicationFactor {
		t.Fatalf("replica count = %d, want %d", holders, cfg.ReplicationFactor)
	}
}

func TestObjectSurvivesRootFailure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReplicationFactor = 3
	c := newCluster(t, 14, 4, cfg)
	key := id.New(0x1234, 0x5678)
	c.stores[0].Put(key, []byte("durable"), func(error) {})
	c.settle(10 * time.Second)

	// Fail the root (the store holding the object whose node is closest).
	var root *Store
	for _, s := range c.stores {
		if !s.HasLocal(key) {
			continue
		}
		if root == nil || id.CloserToKey(key, s.Node().Ref().ID, root.Node().Ref().ID) {
			root = s
		}
	}
	if root == nil {
		t.Fatal("no holder found")
	}
	if ep, ok := c.nw.Endpoint(root.Node().Ref().Addr); ok {
		ep.Fail()
	}
	// Wait for overlay repair plus a sweep cycle.
	c.settle(3 * time.Minute)

	var got []byte
	var err error
	done := false
	c.stores[5].Get(key, func(v []byte, e error) { got, err, done = v, e, true })
	c.settle(30 * time.Second)
	if !done {
		t.Fatal("get never completed after root failure")
	}
	if err != nil {
		t.Fatalf("get after root failure: %v", err)
	}
	if string(got) != "durable" {
		t.Fatalf("got %q", got)
	}
}

func TestSweepRestoresReplicasAfterFailure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReplicationFactor = 3
	cfg.SweepInterval = 20 * time.Second
	c := newCluster(t, 14, 5, cfg)
	key := id.New(0x777, 0x888)
	c.stores[0].Put(key, []byte("x"), func(error) {})
	c.settle(10 * time.Second)
	// Fail one (non-root) replica holder.
	var victim *Store
	var root *Store
	for _, s := range c.stores {
		if !s.HasLocal(key) {
			continue
		}
		if root == nil || id.CloserToKey(key, s.Node().Ref().ID, root.Node().Ref().ID) {
			root = s
		}
	}
	for _, s := range c.stores {
		if s.HasLocal(key) && s != root {
			victim = s
			break
		}
	}
	if victim == nil {
		t.Fatal("no replica found")
	}
	if ep, ok := c.nw.Endpoint(victim.Node().Ref().Addr); ok {
		ep.Fail()
	}
	// Overlay repair + sweep: a fresh node must take over the replica.
	c.settle(3 * time.Minute)
	holders := 0
	for _, s := range c.stores {
		if s.Node().Alive() && s.HasLocal(key) {
			holders++
		}
	}
	if holders < cfg.ReplicationFactor {
		t.Fatalf("replicas not restored: %d < %d", holders, cfg.ReplicationFactor)
	}
}

func TestEndToEndRetrySurvivesLoss(t *testing.T) {
	// 10% link loss: per-hop acks handle most of it, and the end-to-end
	// retry absorbs lost responses.
	sim := eventsim.New(7)
	topo := topology.CorpNet(topology.CorpNetConfig{Hubs: 6, EdgeRouters: 30}, rand.New(rand.NewSource(7)))
	nw := netmodel.New(sim, topo, 0.10)
	pcfg := pastry.DefaultConfig()
	pcfg.L = 8
	pcfg.PNS = false
	cfg := DefaultConfig()
	cfg.RequestTimeout = 5 * time.Second
	var stores []*Store
	first := topo.Attach(10, sim.Rand())
	var seedRef pastry.NodeRef
	for i := 0; i < 10; i++ {
		ep := nw.NewEndpoint(first + i)
		ref := pastry.NodeRef{ID: id.Random(sim.Rand()), Addr: ep.Addr()}
		node, err := pastry.NewNode(ref, pcfg, ep, nil)
		if err != nil {
			t.Fatal(err)
		}
		ep.Bind(node)
		stores = append(stores, New(node, ep, cfg))
		if i == 0 {
			node.Bootstrap()
			seedRef = ref
		} else {
			node.Join(seedRef)
		}
		sim.RunUntil(sim.Now() + 5*time.Second)
	}
	sim.RunUntil(sim.Now() + 2*time.Minute)

	okPuts := 0
	for i := 0; i < 30; i++ {
		key := id.Random(sim.Rand())
		stores[i%10].Put(key, []byte("v"), func(err error) {
			if err == nil {
				okPuts++
			}
		})
		sim.RunUntil(sim.Now() + 10*time.Second)
	}
	sim.RunUntil(sim.Now() + time.Minute)
	if okPuts < 28 {
		t.Fatalf("only %d/30 puts succeeded under 10%% loss", okPuts)
	}
}

func TestCodecRoundTrips(t *testing.T) {
	k, r, v, ok := decodeRequest(encodePut(42, []byte("val")))
	if !ok || k != kindPut || r != 42 || string(v) != "val" {
		t.Fatal("put codec")
	}
	k, r, v, ok = decodeRequest(encodeGet(7))
	if !ok || k != kindGet || r != 7 || len(v) != 0 {
		t.Fatal("get codec")
	}
	if r, ok := decodePutAck(encodePutAck(9)); !ok || r != 9 {
		t.Fatal("putack codec")
	}
	rid, found, val, ok := decodeGetResp(encodeGetResp(5, true, []byte("x")))
	if !ok || rid != 5 || !found || string(val) != "x" {
		t.Fatal("getresp codec")
	}
	k, r, v, ok = decodeRequest(encodeDelete(11))
	if !ok || k != kindDelete || r != 11 || len(v) != 0 {
		t.Fatal("delete codec")
	}
	if r, ok := decodeDeleteAck(encodeDeleteAck(13)); !ok || r != 13 {
		t.Fatal("deleteack codec")
	}
	obj := store.Object{Key: id.New(1, 2), Version: 4, Origin: 9, Value: []byte("y")}
	got, ok := decodeReplicate(encodeReplicate(obj))
	if !ok || got.Key != obj.Key || got.Version != 4 || got.Origin != 9 ||
		got.Tombstone || string(got.Value) != "y" {
		t.Fatal("replicate codec")
	}
	// Garbage rejection.
	if _, _, _, ok := decodeRequest([]byte{0xff, 1}); ok {
		t.Fatal("garbage request accepted")
	}
	if _, ok := decodeReplicate([]byte{kindReplicate, 1}); ok {
		t.Fatal("short replicate accepted")
	}
}

func TestSyncCodecRoundTrips(t *testing.T) {
	lo, hi := id.New(1, 1), id.New(9, 9)
	var root store.Digest
	root[0], root[15] = 0xaa, 0xbb
	sid, glo, ghi, groot, ok := decodeSyncRoot(encodeSyncRoot(77, lo, hi, root))
	if !ok || sid != 77 || glo != lo || ghi != hi || groot != root {
		t.Fatal("syncroot codec")
	}
	if sid, ok := decodeSyncRootOK(encodeSyncRootOK(42)); !ok || sid != 42 {
		t.Fatal("syncrootok codec")
	}
	var buckets [store.RangeBuckets]store.Digest
	buckets[3][0], buckets[63][15] = 1, 2
	sid, gb, ok := decodeSyncBuckets(encodeSyncBuckets(5, &buckets))
	if !ok || sid != 5 || gb != buckets {
		t.Fatal("syncbuckets codec")
	}
	sums := []store.Summary{
		store.Object{Key: id.New(2, 2), Version: 1, Origin: 3, Value: []byte("a")}.Summarize(),
		store.Object{Key: id.New(3, 3), Version: 7, Origin: 1, Tombstone: true}.Summarize(),
	}
	klo, khi, bitmap, gsums, ok := decodeSyncKeys(encodeSyncKeys(lo, hi, 0xf0f0, sums))
	if !ok || klo != lo || khi != hi || bitmap != 0xf0f0 || len(gsums) != 2 {
		t.Fatal("synckeys codec")
	}
	for i := range sums {
		if gsums[i] != sums[i] {
			t.Fatalf("summary %d: %+v != %+v", i, gsums[i], sums[i])
		}
	}
	keys := []id.ID{id.New(4, 4), id.New(5, 5)}
	gkeys, ok := decodeSyncPull(encodeSyncPull(keys))
	if !ok || len(gkeys) != 2 || gkeys[0] != keys[0] || gkeys[1] != keys[1] {
		t.Fatal("syncpull codec")
	}
	offer := sums[1]
	goffer, ok := decodeHandoffOffer(encodeHandoffOffer(offer))
	if !ok || goffer != offer {
		t.Fatal("handoffoffer codec")
	}
	key := id.New(6, 6)
	if gk, ok := decodeHandoffKey(kindHandoffWant, encodeHandoffKey(kindHandoffWant, key)); !ok || gk != key {
		t.Fatal("handoffwant codec")
	}
	// Kind confusion and truncation are rejected.
	if _, ok := decodeHandoffKey(kindHandoffHave, encodeHandoffKey(kindHandoffWant, key)); ok {
		t.Fatal("want accepted as have")
	}
	for _, msg := range [][]byte{
		encodeSyncRoot(1, lo, hi, root), encodeSyncBuckets(1, &buckets),
		encodeSyncKeys(lo, hi, 1, sums), encodeSyncPull(keys),
		encodeHandoffOffer(offer),
	} {
		short := msg[:len(msg)-1]
		switch msg[0] {
		case kindSyncRoot:
			if _, _, _, _, ok := decodeSyncRoot(short); ok {
				t.Fatal("truncated syncroot accepted")
			}
		case kindSyncBuckets:
			if _, _, ok := decodeSyncBuckets(short); ok {
				t.Fatal("truncated syncbuckets accepted")
			}
		case kindSyncKeys:
			if _, _, _, _, ok := decodeSyncKeys(short); ok {
				t.Fatal("truncated synckeys accepted")
			}
		case kindSyncPull:
			if _, ok := decodeSyncPull(short); ok {
				t.Fatal("truncated syncpull accepted")
			}
		case kindHandoffOffer:
			if _, ok := decodeHandoffOffer(short); ok {
				t.Fatal("truncated offer accepted")
			}
		}
	}
}
