package dht

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"mspastry/internal/eventsim"
	"mspastry/internal/id"
	"mspastry/internal/netmodel"
	"mspastry/internal/pastry"
	"mspastry/internal/topology"
)

type simCluster struct {
	sim    *eventsim.Simulator
	nw     *netmodel.Network
	stores []*Store
}

func newCluster(t *testing.T, n int, seed int64, cfg Config) *simCluster {
	t.Helper()
	sim := eventsim.New(seed)
	topo := topology.CorpNet(topology.CorpNetConfig{Hubs: 6, EdgeRouters: 30}, rand.New(rand.NewSource(seed)))
	nw := netmodel.New(sim, topo, 0)
	c := &simCluster{sim: sim, nw: nw}
	pcfg := pastry.DefaultConfig()
	pcfg.L = 8
	pcfg.PNS = false
	first := topo.Attach(n, sim.Rand())
	var seedRef pastry.NodeRef
	for i := 0; i < n; i++ {
		ep := nw.NewEndpoint(first + i)
		ref := pastry.NodeRef{ID: id.Random(sim.Rand()), Addr: ep.Addr()}
		node, err := pastry.NewNode(ref, pcfg, ep, nil)
		if err != nil {
			t.Fatal(err)
		}
		ep.Bind(node)
		c.stores = append(c.stores, New(node, ep, cfg))
		if i == 0 {
			node.Bootstrap()
			seedRef = ref
		} else {
			node.Join(seedRef)
		}
		sim.RunUntil(sim.Now() + 5*time.Second)
	}
	sim.RunUntil(sim.Now() + time.Minute)
	for i, s := range c.stores {
		if !s.Node().Active() {
			t.Fatalf("node %d not active", i)
		}
	}
	return c
}

func (c *simCluster) settle(d time.Duration) { c.sim.RunUntil(c.sim.Now() + d) }

func TestPutGetRoundTrip(t *testing.T) {
	c := newCluster(t, 12, 1, DefaultConfig())
	key := id.New(0xfeed, 0xbeef)
	putErr := error(fmt.Errorf("not called"))
	c.stores[2].Put(key, []byte("hello"), func(err error) { putErr = err })
	c.settle(15 * time.Second)
	if putErr != nil {
		t.Fatalf("put: %v", putErr)
	}
	var got []byte
	var getErr error
	c.stores[9].Get(key, func(v []byte, err error) { got, getErr = v, err })
	c.settle(15 * time.Second)
	if getErr != nil {
		t.Fatalf("get: %v", getErr)
	}
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
}

func TestGetMissingKey(t *testing.T) {
	c := newCluster(t, 10, 2, DefaultConfig())
	var err error
	called := false
	c.stores[1].Get(id.New(0x404, 0x404), func(_ []byte, e error) { called, err = true, e })
	c.settle(15 * time.Second)
	if !called {
		t.Fatal("callback never invoked")
	}
	if err != ErrNotFound {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestReplicationFactorHolds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReplicationFactor = 3
	c := newCluster(t, 14, 3, cfg)
	key := id.New(0xabc, 0xdef)
	c.stores[0].Put(key, []byte("replicated"), func(error) {})
	c.settle(10 * time.Second)
	holders := 0
	for _, s := range c.stores {
		if s.HasLocal(key) {
			holders++
		}
	}
	if holders != cfg.ReplicationFactor {
		t.Fatalf("replica count = %d, want %d", holders, cfg.ReplicationFactor)
	}
}

func TestObjectSurvivesRootFailure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReplicationFactor = 3
	c := newCluster(t, 14, 4, cfg)
	key := id.New(0x1234, 0x5678)
	c.stores[0].Put(key, []byte("durable"), func(error) {})
	c.settle(10 * time.Second)

	// Fail the root (the store holding the object whose node is closest).
	var root *Store
	for _, s := range c.stores {
		if !s.HasLocal(key) {
			continue
		}
		if root == nil || id.CloserToKey(key, s.Node().Ref().ID, root.Node().Ref().ID) {
			root = s
		}
	}
	if root == nil {
		t.Fatal("no holder found")
	}
	if ep, ok := c.nw.Endpoint(root.Node().Ref().Addr); ok {
		ep.Fail()
	}
	// Wait for overlay repair plus a sweep cycle.
	c.settle(3 * time.Minute)

	var got []byte
	var err error
	done := false
	c.stores[5].Get(key, func(v []byte, e error) { got, err, done = v, e, true })
	c.settle(30 * time.Second)
	if !done {
		t.Fatal("get never completed after root failure")
	}
	if err != nil {
		t.Fatalf("get after root failure: %v", err)
	}
	if string(got) != "durable" {
		t.Fatalf("got %q", got)
	}
}

func TestSweepRestoresReplicasAfterFailure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReplicationFactor = 3
	cfg.SweepInterval = 20 * time.Second
	c := newCluster(t, 14, 5, cfg)
	key := id.New(0x777, 0x888)
	c.stores[0].Put(key, []byte("x"), func(error) {})
	c.settle(10 * time.Second)
	// Fail one (non-root) replica holder.
	var victim *Store
	var root *Store
	for _, s := range c.stores {
		if !s.HasLocal(key) {
			continue
		}
		if root == nil || id.CloserToKey(key, s.Node().Ref().ID, root.Node().Ref().ID) {
			root = s
		}
	}
	for _, s := range c.stores {
		if s.HasLocal(key) && s != root {
			victim = s
			break
		}
	}
	if victim == nil {
		t.Fatal("no replica found")
	}
	if ep, ok := c.nw.Endpoint(victim.Node().Ref().Addr); ok {
		ep.Fail()
	}
	// Overlay repair + sweep: a fresh node must take over the replica.
	c.settle(3 * time.Minute)
	holders := 0
	for _, s := range c.stores {
		if s.Node().Alive() && s.HasLocal(key) {
			holders++
		}
	}
	if holders < cfg.ReplicationFactor {
		t.Fatalf("replicas not restored: %d < %d", holders, cfg.ReplicationFactor)
	}
}

func TestEndToEndRetrySurvivesLoss(t *testing.T) {
	// 10% link loss: per-hop acks handle most of it, and the end-to-end
	// retry absorbs lost responses.
	sim := eventsim.New(7)
	topo := topology.CorpNet(topology.CorpNetConfig{Hubs: 6, EdgeRouters: 30}, rand.New(rand.NewSource(7)))
	nw := netmodel.New(sim, topo, 0.10)
	pcfg := pastry.DefaultConfig()
	pcfg.L = 8
	pcfg.PNS = false
	cfg := DefaultConfig()
	cfg.RequestTimeout = 5 * time.Second
	var stores []*Store
	first := topo.Attach(10, sim.Rand())
	var seedRef pastry.NodeRef
	for i := 0; i < 10; i++ {
		ep := nw.NewEndpoint(first + i)
		ref := pastry.NodeRef{ID: id.Random(sim.Rand()), Addr: ep.Addr()}
		node, err := pastry.NewNode(ref, pcfg, ep, nil)
		if err != nil {
			t.Fatal(err)
		}
		ep.Bind(node)
		stores = append(stores, New(node, ep, cfg))
		if i == 0 {
			node.Bootstrap()
			seedRef = ref
		} else {
			node.Join(seedRef)
		}
		sim.RunUntil(sim.Now() + 5*time.Second)
	}
	sim.RunUntil(sim.Now() + 2*time.Minute)

	okPuts := 0
	for i := 0; i < 30; i++ {
		key := id.Random(sim.Rand())
		stores[i%10].Put(key, []byte("v"), func(err error) {
			if err == nil {
				okPuts++
			}
		})
		sim.RunUntil(sim.Now() + 10*time.Second)
	}
	sim.RunUntil(sim.Now() + time.Minute)
	if okPuts < 28 {
		t.Fatalf("only %d/30 puts succeeded under 10%% loss", okPuts)
	}
}

func TestCodecRoundTrips(t *testing.T) {
	k, r, v, ok := decodeRequest(encodePut(42, []byte("val")))
	if !ok || k != kindPut || r != 42 || string(v) != "val" {
		t.Fatal("put codec")
	}
	k, r, v, ok = decodeRequest(encodeGet(7))
	if !ok || k != kindGet || r != 7 || len(v) != 0 {
		t.Fatal("get codec")
	}
	if r, ok := decodePutAck(encodePutAck(9)); !ok || r != 9 {
		t.Fatal("putack codec")
	}
	rid, found, val, ok := decodeGetResp(encodeGetResp(5, true, []byte("x")))
	if !ok || rid != 5 || !found || string(val) != "x" {
		t.Fatal("getresp codec")
	}
	key := id.New(1, 2)
	gk, gv, ok := decodeReplicate(encodeReplicate(key, []byte("y")))
	if !ok || gk != key || string(gv) != "y" {
		t.Fatal("replicate codec")
	}
	// Garbage rejection.
	if _, _, _, ok := decodeRequest([]byte{0xff, 1}); ok {
		t.Fatal("garbage request accepted")
	}
	if _, _, ok := decodeReplicate([]byte{kindReplicate, 1}); ok {
		t.Fatal("short replicate accepted")
	}
}
