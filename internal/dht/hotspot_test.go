package dht

import (
	"testing"
	"time"

	"mspastry/internal/hotspot"
	"mspastry/internal/id"
	"mspastry/internal/netmodel"
	"mspastry/internal/pastry"
)

func cachingConfig(sweep time.Duration) Config {
	cfg := DefaultConfig()
	cfg.CacheEntries = 64
	cfg.SweepInterval = sweep
	return cfg
}

// sumCacheCounters totals the hotspot counters across the cluster.
func sumCacheCounters(c *simCluster) Counters {
	var sum Counters
	for _, s := range c.stores {
		cc := s.Counters()
		sum.CacheHitsLocal += cc.CacheHitsLocal
		sum.CacheHitsRemote += cc.CacheHitsRemote
		sum.CacheServes += cc.CacheServes
		sum.CacheDeposits += cc.CacheDeposits
		sum.CacheInvalidations += cc.CacheInvalidations
		sum.CacheStaleRejected += cc.CacheStaleRejected
		sum.CachePurged += cc.CachePurged
	}
	return sum
}

func TestHotspotCachingEndToEnd(t *testing.T) {
	c := newCluster(t, 12, 7, cachingConfig(60*time.Second))
	key := id.New(0xca5e, 0x1d)

	var putErr error
	c.stores[2].Put(key, []byte("v1"), func(err error) { putErr = err })
	c.settle(15 * time.Second)
	if putErr != nil {
		t.Fatalf("put: %v", putErr)
	}

	// Repeated reads of one key from every node: the second read at each
	// node must come from its own cache, filled by the authoritative
	// reply to the first.
	for round := 0; round < 2; round++ {
		for i := range c.stores {
			var got []byte
			var err error
			c.stores[i].Get(key, func(v []byte, e error) { got, err = v, e })
			c.settle(12 * time.Second)
			if err != nil {
				t.Fatalf("round %d node %d: get: %v", round, i, err)
			}
			if string(got) != "v1" {
				t.Fatalf("round %d node %d: got %q", round, i, got)
			}
		}
	}
	if sum := sumCacheCounters(c); sum.CacheHitsLocal == 0 {
		t.Errorf("no local cache hits after repeat reads: %+v", sum)
	}

	// A write supersedes the cached version everywhere that matters:
	// fresh reads see it immediately, and once a sweep interval passes
	// every plain read does too (the staleness bound).
	c.stores[2].Put(key, []byte("v2"), func(err error) { putErr = err })
	c.settle(15 * time.Second)
	if putErr != nil {
		t.Fatalf("second put: %v", putErr)
	}
	var fresh []byte
	var freshErr error
	c.stores[9].GetFresh(key, func(v []byte, e error) { fresh, freshErr = v, e })
	c.settle(12 * time.Second)
	if freshErr != nil || string(fresh) != "v2" {
		t.Fatalf("fresh read after write: got %q err %v", fresh, freshErr)
	}
	c.settle(90 * time.Second) // > SweepInterval: every cached v1 is out of TTL
	for i := range c.stores {
		var got []byte
		var err error
		c.stores[i].Get(key, func(v []byte, e error) { got, err = v, e })
		c.settle(12 * time.Second)
		if err != nil || string(got) != "v2" {
			t.Fatalf("node %d read after sweep bound: got %q err %v", i, got, err)
		}
	}
}

// TestHotspotStaleCachedReplyRejected pins the monotonic read floor: a
// cached reply carrying a version below one this client already read is
// refused, counted, and the operation retried authoritatively.
func TestHotspotStaleCachedReplyRejected(t *testing.T) {
	c := newCluster(t, 12, 3, cachingConfig(60*time.Second))
	key := id.New(0xf100, 0x0d)
	reader := c.stores[5]

	var putErr error
	c.stores[1].Put(key, []byte("v1"), func(err error) { putErr = err })
	c.settle(15 * time.Second)
	c.stores[1].Put(key, []byte("v2"), func(err error) { putErr = err })
	c.settle(15 * time.Second)
	if putErr != nil {
		t.Fatalf("put: %v", putErr)
	}
	var warm []byte
	reader.Get(key, func(v []byte, e error) { warm = v })
	c.settle(12 * time.Second)
	if string(warm) != "v2" {
		t.Fatalf("warm read got %q", warm)
	}
	floor, ok := reader.hot.floors[key]
	if !ok || floor.version < 2 {
		t.Fatalf("read floor not raised: %+v ok=%v", floor, ok)
	}

	// Force the next read onto the network, then inject a cached reply
	// one version below the reader's floor before the real one arrives.
	reader.hot.cache.Delete(key)
	var got []byte
	var err error
	called := false
	reader.Get(key, func(v []byte, e error) { got, err, called = v, e, true })
	reqID := reader.nextReq
	op, live := reader.pending[reqID]
	if !live || op.kind != kindGet {
		t.Fatalf("no pending get op for reqID %d", reqID)
	}
	reader.onCachedReply(hotspot.EncodeCachedReply(
		reqID, true, true, floor.version-1, floor.origin, [16]byte{}, []byte("v1")))
	if called {
		t.Fatal("stale cached reply completed the operation")
	}
	if n := reader.Counters().CacheStaleRejected; n != 1 {
		t.Fatalf("CacheStaleRejected = %d, want 1", n)
	}
	if !op.fresh {
		t.Fatal("rejected operation was not switched to a fresh (cache-bypassing) retry")
	}
	c.settle(12 * time.Second)
	if !called || err != nil || string(got) != "v2" {
		t.Fatalf("authoritative retry: called=%v got %q err %v", called, got, err)
	}
}

// TestHotspotPruneDepositState pins the per-peer state bound: the peer
// registry's eviction broadcast drops the evicted peer's deposit
// records, so a crash that ultimately evicts a peer takes its deposit
// state with it.
func TestHotspotPruneDepositState(t *testing.T) {
	c := newCluster(t, 12, 5, cachingConfig(60*time.Second))
	s := c.stores[3]
	peers := s.Node().Leaf().Left()
	if len(peers) == 0 {
		peers = s.Node().Leaf().Right()
	}
	if len(peers) == 0 {
		t.Fatal("no leaf-set peers")
	}
	real := peers[0]
	fake := pastry.NodeRef{ID: id.New(0xdead, 0xbeef), Addr: "10.99.99.99:1"}
	key1, key2 := id.New(1, 2), id.New(3, 4)
	s.hot.deposits[key1] = []pastry.NodeRef{real, fake}
	s.hot.deposits[key2] = []pastry.NodeRef{fake}
	s.hot.depositOrder = append(s.hot.depositOrder, key1, key2)

	s.Node().Peers().Expel(fake.ID, fake.Addr)
	if got := s.hot.deposits[key1]; len(got) != 1 || got[0].ID != real.ID {
		t.Fatalf("key1 targets after eviction broadcast: %v", got)
	}
	if _, stillThere := s.hot.deposits[key2]; stillThere {
		t.Fatal("key2 (only evicted targets) survived the eviction broadcast")
	}

	// Crash the real peer; once failure detection evicts it from this
	// node's routing state, its final registry eviction must drop its
	// deposit record too.
	for _, other := range c.stores {
		if other.Node().Ref().ID == real.ID {
			other.env.(*netmodel.Endpoint).Fail()
		}
	}
	deadline := c.sim.Now() + 5*time.Minute
	for c.sim.Now() < deadline &&
		(s.Node().Leaf().Contains(real.ID) || s.Node().Table().Contains(real.ID)) {
		c.settle(10 * time.Second)
	}
	if s.Node().Leaf().Contains(real.ID) || s.Node().Table().Contains(real.ID) {
		t.Fatal("crashed peer never left routing state")
	}
	s.Node().Peers().Expel(real.ID, real.Addr)
	if _, stillThere := s.hot.deposits[key1]; stillThere {
		t.Fatal("deposit record for crashed peer survived its eviction")
	}
}

// TestHotspotCacheAcrossPartitionHeal exercises the cache through a
// network partition: a cached copy keeps serving locally while its key's
// root is unreachable (inside the staleness bound), and after the heal a
// write propagates so fresh reads — and, past one sweep interval, all
// reads — see it.
func TestHotspotCacheAcrossPartitionHeal(t *testing.T) {
	sweep := 90 * time.Second
	c := newCluster(t, 12, 11, cachingConfig(sweep))
	key := id.New(0x9a57, 0x11)
	reader := c.stores[7]

	var putErr error
	c.stores[2].Put(key, []byte("v1"), func(err error) { putErr = err })
	c.settle(15 * time.Second)
	if putErr != nil {
		t.Fatalf("put: %v", putErr)
	}
	var warm []byte
	reader.Get(key, func(v []byte, e error) { warm = v })
	c.settle(12 * time.Second)
	if string(warm) != "v1" {
		t.Fatalf("warm read got %q", warm)
	}

	// Split the cluster down the middle for 30 seconds.
	sideA := make(map[string]bool)
	for i, s := range c.stores {
		if i < len(c.stores)/2 {
			sideA[s.Node().Ref().Addr] = true
		}
	}
	c.nw.Faults().PartitionAt(c.sim.Now(), 30*time.Second, func(addr string) bool { return sideA[addr] })
	c.settle(5 * time.Second)

	// The reader's local copy is inside the TTL: the read is served from
	// cache without touching the (possibly unreachable) root.
	hitsBefore := reader.Counters().CacheHitsLocal
	var during []byte
	var duringErr error
	reader.Get(key, func(v []byte, e error) { during, duringErr = v, e })
	c.settle(5 * time.Second)
	if duringErr != nil || string(during) != "v1" {
		t.Fatalf("read during partition: got %q err %v", during, duringErr)
	}
	if reader.Counters().CacheHitsLocal != hitsBefore+1 {
		t.Fatalf("read during partition was not a local cache hit")
	}

	// Heal, write, and verify convergence: fresh reads see the new value
	// immediately, plain reads at the latest after one sweep interval.
	c.settle(60 * time.Second)
	c.stores[2].Put(key, []byte("v2"), func(err error) { putErr = err })
	c.settle(15 * time.Second)
	if putErr != nil {
		t.Fatalf("post-heal put: %v", putErr)
	}
	var fresh []byte
	var freshErr error
	reader.GetFresh(key, func(v []byte, e error) { fresh, freshErr = v, e })
	c.settle(12 * time.Second)
	if freshErr != nil || string(fresh) != "v2" {
		t.Fatalf("fresh read after heal: got %q err %v", fresh, freshErr)
	}
	c.settle(sweep + 30*time.Second)
	var got []byte
	var err error
	reader.Get(key, func(v []byte, e error) { got, err = v, e })
	c.settle(12 * time.Second)
	if err != nil || string(got) != "v2" {
		t.Fatalf("plain read past the staleness bound: got %q err %v", got, err)
	}
}
