package dht

import (
	"sort"

	"mspastry/internal/id"
	"mspastry/internal/pastry"
	"mspastry/internal/store"
)

// Merkle anti-entropy replaces the old sweep behaviour of re-pushing every
// value to every replica every 30 seconds. Each sweep, a node groups its
// stored keys by replica neighbour and runs one exchange per neighbour:
//
//	initiator                         responder
//	SyncRoot(sid, arc, root)  ──►
//	                          ◄──  SyncRootOK(sid)            (in sync)
//	                          ◄──  SyncBuckets(sid, digests)  (divergent)
//	SyncKeys(arc, set, sums)  ──►
//	                          ◄──  Replicate(obj)…   responder's newer keys
//	                          ◄──  SyncPull(keys)    responder's stale keys
//	Replicate(obj)…           ──►
//
// In the common steady state the exchange is one ~50-byte message each
// way; values move only for keys that actually diverge. The responder is
// stateless — every message it answers carries the arc bounds and bucket
// set it needs — so only the initiator tracks rounds, which expire on a
// timer if the responder dies mid-exchange.
//
// The arc [lo, hi] is the minimal clockwise range covering the keys the
// initiator shares with this neighbour. Both sides digest the same
// explicit arc, so divergent leaf-set views cost only extra control
// traffic, never wrong state.

// syncRound is the initiator-side state of one exchange, keyed by a
// locally unique sid.
type syncRound struct {
	target pastry.NodeRef
	digest store.RangeDigest
	timer  pastry.Timer
}

// startSync opens an anti-entropy exchange with target covering keys.
func (s *Store) startSync(target pastry.NodeRef, keys []id.ID) {
	lo, hi, ok := store.MinimalArc(keys)
	if !ok {
		return
	}
	rd := store.SummarizeRange(s.backend, lo, hi)
	s.nextSync++
	sid := s.nextSync
	round := &syncRound{target: target, digest: rd}
	// Expire abandoned rounds (responder died mid-exchange) so the round
	// map cannot grow without bound.
	round.timer = s.env.Schedule(2*s.cfg.RequestTimeout, func() {
		delete(s.syncRounds, sid)
	})
	s.syncRounds[sid] = round
	s.counters.SyncRounds++
	s.sendControl(target, encodeSyncRoot(sid, lo, hi, rd.Root()))
}

// sendControl sends a sync/handoff control message, charging its size to
// the digest and total maintenance byte counters.
func (s *Store) sendControl(to pastry.NodeRef, payload []byte) {
	s.counters.DigestBytes += uint64(len(payload))
	s.counters.MaintBytes += uint64(len(payload))
	s.node.SendDirect(to, payload)
}

// sendRepair sends one divergent object's value.
func (s *Store) sendRepair(to pastry.NodeRef, o store.Object) {
	payload := encodeReplicate(o)
	s.counters.SyncKeysRepaired++
	s.counters.MaintBytes += uint64(len(payload))
	s.node.SendDirect(to, payload)
}

// onSyncRoot (responder): digest the same arc and answer OK or buckets.
func (s *Store) onSyncRoot(from pastry.NodeRef, payload []byte) {
	sid, lo, hi, root, ok := decodeSyncRoot(payload)
	if !ok {
		return
	}
	mine := store.SummarizeRange(s.backend, lo, hi)
	if mine.Root() == root {
		s.sendControl(from, encodeSyncRootOK(sid))
		return
	}
	s.sendControl(from, encodeSyncBuckets(sid, &mine.Buckets))
}

// onSyncRootOK (initiator): the replicas agree; close the round.
func (s *Store) onSyncRootOK(payload []byte) {
	sid, ok := decodeSyncRootOK(payload)
	if !ok {
		return
	}
	if round, live := s.syncRounds[sid]; live {
		delete(s.syncRounds, sid)
		round.timer.Cancel()
		s.counters.SyncClean++
	}
}

// onSyncBuckets (initiator): diff the bucket layers and send per-key
// summaries for the divergent buckets.
func (s *Store) onSyncBuckets(payload []byte) {
	sid, buckets, ok := decodeSyncBuckets(payload)
	if !ok {
		return
	}
	round, live := s.syncRounds[sid]
	if !live {
		return
	}
	delete(s.syncRounds, sid)
	round.timer.Cancel()
	theirs := store.RangeDigest{Lo: round.digest.Lo, Hi: round.digest.Hi, Buckets: buckets}
	diff := round.digest.DiffBuckets(&theirs)
	if len(diff) == 0 {
		// The roots differed but the buckets agree: our state moved
		// between the two messages. The next sweep retries.
		return
	}
	var bitmap uint64
	for _, b := range diff {
		bitmap |= 1 << uint(b)
	}
	var sums []store.Summary
	s.backend.Range(func(o store.Object) bool {
		if id.InRangeCW(round.digest.Lo, round.digest.Hi, o.Key) &&
			bitmap&(1<<uint(store.BucketOf(o.Key))) != 0 {
			sums = append(sums, o.Summarize())
		}
		return true
	})
	sort.Slice(sums, func(i, j int) bool { return sums[i].Key.Less(sums[j].Key) })
	s.sendControl(round.target, encodeSyncKeys(round.digest.Lo, round.digest.Hi, bitmap, sums))
}

// onSyncKeys (responder): compare the initiator's summaries against local
// state. Keys where our copy is newer — or that the initiator does not
// hold at all — are pushed back; keys where the initiator's copy is newer
// are pulled, but only if this node still believes the key is its to hold,
// so a sync can never widen a key's replica set.
func (s *Store) onSyncKeys(from pastry.NodeRef, payload []byte) {
	lo, hi, bitmap, sums, ok := decodeSyncKeys(payload)
	if !ok {
		return
	}
	members := s.node.Leaf().Members()
	k := s.cfg.ReplicationFactor
	listed := make(map[id.ID]bool, len(sums))
	var pulls []id.ID
	for _, sum := range sums {
		listed[sum.Key] = true
		local, have := s.backend.Get(sum.Key)
		switch {
		case !have || sum.Supersedes(local):
			if s.rankForKey(sum.Key, members) < k {
				pulls = append(pulls, sum.Key)
			}
		case local.Digest() != sum.Dig:
			// Differing copies order totally, so ours is the newer one.
			s.sendRepair(from, local)
		}
	}
	// Keys we hold in the divergent buckets that the initiator did not
	// list: it has no copy at all.
	s.backend.Range(func(o store.Object) bool {
		if id.InRangeCW(lo, hi, o.Key) &&
			bitmap&(1<<uint(store.BucketOf(o.Key))) != 0 && !listed[o.Key] {
			s.sendRepair(from, o)
		}
		return true
	})
	if len(pulls) > 0 {
		s.sendControl(from, encodeSyncPull(pulls))
	}
}

// onSyncPull (initiator): ship the requested values.
func (s *Store) onSyncPull(from pastry.NodeRef, payload []byte) {
	keys, ok := decodeSyncPull(payload)
	if !ok {
		return
	}
	for _, key := range keys {
		if o, have := s.backend.Get(key); have {
			s.sendRepair(from, o)
		}
	}
}

// offerHandoff starts a digest-first responsibility handoff: send the
// object's summary to the current root and keep the value until the root
// answers. The old behaviour — push the full value unsolicited and delete
// immediately — both wasted bandwidth when the root already had the object
// and risked losing the last copy if the push was dropped.
func (s *Store) offerHandoff(o store.Object, members []pastry.NodeRef) {
	root, ok := s.closestMember(o.Key, members)
	if !ok {
		return
	}
	s.counters.HandoffOffers++
	s.sendControl(root, encodeHandoffOffer(o.Summarize()))
}

// onHandoffOffer (root side): ask for the value only if the offered copy
// supersedes ours or we have none.
func (s *Store) onHandoffOffer(from pastry.NodeRef, payload []byte) {
	sum, ok := decodeHandoffOffer(payload)
	if !ok {
		return
	}
	local, have := s.backend.Get(sum.Key)
	if !have || sum.Supersedes(local) {
		s.sendControl(from, encodeHandoffKey(kindHandoffWant, sum.Key))
		return
	}
	s.sendControl(from, encodeHandoffKey(kindHandoffHave, sum.Key))
}

// onHandoffWant (offerer side): the root needs our copy; send it, then
// drop local responsibility.
func (s *Store) onHandoffWant(from pastry.NodeRef, payload []byte) {
	key, ok := decodeHandoffKey(kindHandoffWant, payload)
	if !ok {
		return
	}
	o, have := s.backend.Get(key)
	if !have {
		return
	}
	wire := encodeReplicate(o)
	s.counters.ReplicasPushed++
	s.counters.MaintBytes += uint64(len(wire))
	s.node.SendDirect(from, wire)
	s.dropIfForeign(key)
}

// onHandoffHave (offerer side): the root is already current; just drop.
func (s *Store) onHandoffHave(payload []byte) {
	key, ok := decodeHandoffKey(kindHandoffHave, payload)
	if !ok {
		return
	}
	s.dropIfForeign(key)
}

// dropIfForeign drops the local copy of key only if this node is still far
// outside the responsible set — the leaf set may have shifted since the
// offer went out, and a node that became responsible again must keep its
// copy.
func (s *Store) dropIfForeign(key id.ID) {
	if s.rankForKey(key, s.node.Leaf().Members()) >= 2*s.cfg.ReplicationFactor {
		s.backend.Drop(key)
		s.counters.SweepHandoffs++
	}
}
