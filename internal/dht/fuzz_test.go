package dht

import (
	"testing"

	"mspastry/internal/id"
	"mspastry/internal/store"
)

// The DHT decoders face bytes from arbitrary peers; each fuzz target
// asserts a decoder never panics and that accepted inputs re-encode to the
// same wire image (the codecs are canonical).

func FuzzDecodeRequest(f *testing.F) {
	f.Add(encodePut(42, []byte("value")))
	f.Add(encodeGet(7))
	f.Add(encodeDelete(9))
	f.Add([]byte{})
	f.Add([]byte{kindPut})
	f.Fuzz(func(t *testing.T, data []byte) {
		kind, reqID, value, ok := decodeRequest(data)
		if !ok {
			return
		}
		var back []byte
		switch kind {
		case kindPut:
			back = encodePut(reqID, value)
		case kindGet:
			back = encodeGet(reqID)
		case kindDelete:
			back = encodeDelete(reqID)
		default:
			t.Fatalf("decoder accepted unknown kind %d", kind)
		}
		if kind != kindPut && len(value) != 0 {
			t.Fatalf("%d decoded a value from %x", kind, data)
		}
		// Value-level roundtrip (uvarints admit non-minimal encodings, so
		// the wire image itself need not be identical).
		k2, r2, v2, ok2 := decodeRequest(back)
		if !ok2 || k2 != kind || r2 != reqID || string(v2) != string(value) {
			t.Fatalf("request roundtrip mismatch for %x", data)
		}
	})
}

func FuzzDecodeGetResp(f *testing.F) {
	f.Add(encodeGetResp(5, true, []byte("x")))
	f.Add(encodeGetResp(0, false, nil))
	f.Add([]byte{kindGetResp, 2, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		reqID, found, value, ok := decodeGetResp(data)
		if !ok {
			return
		}
		back := encodeGetResp(reqID, found, value)
		r2, f2, v2, ok2 := decodeGetResp(back)
		if !ok2 || r2 != reqID || f2 != found || string(v2) != string(value) {
			t.Fatalf("getresp roundtrip mismatch for %x", data)
		}
	})
}

func FuzzDecodeReplicate(f *testing.F) {
	f.Add(encodeReplicate(store.Object{Key: id.New(1, 2), Version: 3, Origin: 4, Value: []byte("v")}))
	f.Add(encodeReplicate(store.Object{Key: id.New(5, 6), Version: 1, Tombstone: true}))
	f.Add([]byte{kindReplicate})
	f.Fuzz(func(t *testing.T, data []byte) {
		o, ok := decodeReplicate(data)
		if !ok {
			return
		}
		if o.Version == 0 {
			t.Fatal("replicate decoder accepted version 0")
		}
		back, ok2 := decodeReplicate(encodeReplicate(o))
		if !ok2 || back.Key != o.Key || back.Version != o.Version ||
			back.Origin != o.Origin || back.Tombstone != o.Tombstone ||
			string(back.Value) != string(o.Value) {
			t.Fatalf("replicate roundtrip mismatch for %x", data)
		}
	})
}

func FuzzDecodeSyncKeys(f *testing.F) {
	sums := []store.Summary{
		store.Object{Key: id.New(2, 2), Version: 1, Origin: 3, Value: []byte("a")}.Summarize(),
		store.Object{Key: id.New(3, 3), Version: 7, Origin: 1, Tombstone: true}.Summarize(),
	}
	f.Add(encodeSyncKeys(id.New(1, 1), id.New(9, 9), 0xff00, sums))
	f.Add(encodeSyncKeys(id.ID{}, id.ID{}, 0, nil))
	f.Add([]byte{kindSyncKeys})
	f.Fuzz(func(t *testing.T, data []byte) {
		lo, hi, bitmap, got, ok := decodeSyncKeys(data)
		if !ok {
			return
		}
		l2, h2, b2, s2, ok2 := decodeSyncKeys(encodeSyncKeys(lo, hi, bitmap, got))
		if !ok2 || l2 != lo || h2 != hi || b2 != bitmap || len(s2) != len(got) {
			t.Fatalf("synckeys roundtrip mismatch for %x", data)
		}
		for i := range got {
			if s2[i] != got[i] {
				t.Fatalf("synckeys summary %d mismatch for %x", i, data)
			}
		}
	})
}

func FuzzDecodeSyncRoot(f *testing.F) {
	var root store.Digest
	root[0] = 0xaa
	f.Add(encodeSyncRoot(1, id.New(1, 1), id.New(2, 2), root))
	f.Add([]byte{kindSyncRoot, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		sid, lo, hi, r, ok := decodeSyncRoot(data)
		if !ok {
			return
		}
		s2, l2, h2, r2, ok2 := decodeSyncRoot(encodeSyncRoot(sid, lo, hi, r))
		if !ok2 || s2 != sid || l2 != lo || h2 != hi || r2 != r {
			t.Fatalf("syncroot roundtrip mismatch for %x", data)
		}
	})
}
