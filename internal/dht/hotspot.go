package dht

import (
	"mspastry/internal/hotspot"
	"mspastry/internal/id"
	"mspastry/internal/pastry"
	"mspastry/internal/store"
)

// Hotspot mitigation: popularity-aware path caching. Gets are routed as
// hotspot.KindGetVia lookups that accumulate caching hops (the route's
// first and penultimate node); the root answers with a versioned
// KindCachedReply and, once the key's popularity-sketch estimate crosses
// Config.CacheHotThreshold, deposits the entry on those hops. Later
// lookups for the key short-circuit from any hop holding a fresh copy,
// so a zipf hotspot's traffic is absorbed near its origins instead of
// all landing on the key's root.
//
// Staleness is bounded by one sweep interval: writes invalidate by
// version supersession (the root notifies recorded deposit targets, and
// replica pushes invalidate the local cache), caching hops refuse to
// serve entries older than Config.SweepInterval, and the sweep purges
// anything that slipped past as a backstop. Per-client read floors
// additionally give monotonic reads: a cached reply below a version the
// client already observed is rejected and refetched authoritatively.

// defaultHotThreshold is the sketch estimate at which the root starts
// depositing a key's replies on its caching hops.
const defaultHotThreshold = 4

const (
	// maxDepositKeys bounds the root's memory of where it deposited
	// entries; maxDepositTargets bounds the per-key target list.
	maxDepositKeys    = 1024
	maxDepositTargets = 4
	// maxFloorKeys bounds the per-key monotonic read floors a client
	// remembers.
	maxFloorKeys = 4096
)

// versionFloor is the highest version vector a client has observed for
// a key.
type versionFloor struct {
	version, origin uint64
}

// hotState is the per-node hotspot machinery, nil unless
// Config.CacheEntries > 0.
type hotState struct {
	cache     *hotspot.Cache
	threshold uint32

	// deposits remembers which peers this node (as a root) deposited
	// each key on, so writes can invalidate them; depositOrder is the
	// FIFO eviction queue (it may briefly hold keys already dropped by
	// invalidation — those pop harmlessly).
	deposits     map[id.ID][]pastry.NodeRef
	depositOrder []id.ID

	// floors is this node's (as a client) monotonic read floor per key;
	// floorOrder is its FIFO eviction queue.
	floors     map[id.ID]versionFloor
	floorOrder []id.ID
}

func newHotState(cfg Config) *hotState {
	thr := cfg.CacheHotThreshold
	if thr <= 0 {
		thr = defaultHotThreshold
	}
	return &hotState{
		cache: hotspot.New(hotspot.Config{
			Capacity:  cfg.CacheEntries,
			Shards:    4,
			Admission: true,
		}),
		threshold: uint32(thr),
		deposits:  make(map[id.ID][]pastry.NodeRef),
		floors:    make(map[id.ID]versionFloor),
	}
}

// recordDeposit remembers that key was deposited on ref, bounding both
// the key set and the per-key target list.
func (h *hotState) recordDeposit(key id.ID, ref pastry.NodeRef) {
	targets, tracked := h.deposits[key]
	if !tracked {
		for len(h.deposits) >= maxDepositKeys && len(h.depositOrder) > 0 {
			old := h.depositOrder[0]
			h.depositOrder = h.depositOrder[1:]
			delete(h.deposits, old)
		}
		h.depositOrder = append(h.depositOrder, key)
	}
	for i, t := range targets {
		if t.ID == ref.ID {
			targets[i] = ref
			return
		}
	}
	if len(targets) >= maxDepositTargets {
		copy(targets, targets[1:])
		targets[len(targets)-1] = ref
		return
	}
	h.deposits[key] = append(targets, ref)
}

// belowFloor reports whether (version, origin) is strictly older than a
// version this client already read for key.
func (h *hotState) belowFloor(key id.ID, version, origin uint64) bool {
	f, ok := h.floors[key]
	return ok && hotspot.Newer(f.version, f.origin, version, origin)
}

// raiseFloor records that the client observed (version, origin) for key.
func (h *hotState) raiseFloor(key id.ID, version, origin uint64) {
	if f, tracked := h.floors[key]; tracked {
		if hotspot.Newer(version, origin, f.version, f.origin) {
			h.floors[key] = versionFloor{version, origin}
		}
		return
	}
	if len(h.floorOrder) >= maxFloorKeys {
		old := h.floorOrder[0]
		h.floorOrder = h.floorOrder[1:]
		delete(h.floors, old)
	}
	h.floors[key] = versionFloor{version, origin}
	h.floorOrder = append(h.floorOrder, key)
}

// CacheStats returns the hotspot cache's counters (zero value when
// caching is disabled).
func (s *Store) CacheStats() hotspot.Stats {
	if s.hot == nil {
		return hotspot.Stats{}
	}
	return s.hot.cache.Stats()
}

// hotspotForward is the Forward hook for KindGetVia lookups: serve from
// the local cache if a fresh copy is held (consuming the lookup), else
// record this node as a caching hop and let it route on.
func (s *Store) hotspotForward(lk *pastry.Lookup) bool {
	self := s.node.Ref()
	if lk.Origin.ID == self.ID {
		return true // origin's own first routing step: nothing cached upstream
	}
	reqID, vias, ok := hotspot.DecodeGetVia(lk.Payload)
	if !ok {
		return true
	}
	if e, hit := s.hot.cache.Get(lk.Key); hit {
		if s.env.Now()-e.StoredAt <= s.cfg.SweepInterval {
			s.counters.CacheServes++
			s.node.SendDirect(lk.Origin,
				hotspot.EncodeCachedReply(reqID, true, true, e.Version, e.Origin, e.Dig, e.Value))
			return false
		}
		s.hot.cache.Delete(lk.Key) // expired: forward and refill from the root
	}
	me := hotspot.Via{ID: self.ID, Addr: self.Addr}
	for _, v := range vias {
		if v.ID == me.ID {
			return true // already recorded (held or rerouted lookup)
		}
	}
	if len(vias) < hotspot.MaxVia {
		// Slot 0 is the route's first hop...
		vias = append(vias, me)
	} else {
		// ...and slot 1, overwritten at every later hop, ends up the
		// penultimate one.
		vias[hotspot.MaxVia-1] = me
	}
	// Replace the payload rather than mutating it: the transport may
	// alias the same backing array across in-flight copies.
	lk.Payload = hotspot.EncodeGetVia(reqID, vias)
	return true
}

// deliverGetVia answers a KindGetVia lookup at the key's root and
// deposits hot entries on the route's caching hops. It runs even when
// this node has caching disabled, so mixed clusters interoperate.
func (s *Store) deliverGetVia(lk *pastry.Lookup) {
	reqID, vias, ok := hotspot.DecodeGetVia(lk.Payload)
	if !ok {
		return
	}
	o, found := s.backend.Get(lk.Key)
	found = found && !o.Tombstone
	if !found {
		o = store.Object{}
	}
	var dig store.Digest
	if found {
		dig = o.Digest()
	}
	s.reply(lk.Origin, hotspot.EncodeCachedReply(reqID, found, false, o.Version, o.Origin, dig, o.Value))
	if found && s.hot != nil {
		s.maybeDeposit(lk.Key, o, dig, vias, lk.Origin)
	}
}

// maybeDeposit pushes the object onto the lookup's recorded caching
// hops once the key's popularity estimate crosses the hot threshold.
func (s *Store) maybeDeposit(key id.ID, o store.Object, dig store.Digest, vias []hotspot.Via, origin pastry.NodeRef) {
	s.hot.cache.Touch(key)
	if s.hot.cache.Estimate(key) < s.hot.threshold {
		return
	}
	var payload []byte
	self := s.node.Ref().ID
	for _, v := range vias {
		if v.ID.IsZero() || v.ID == self || v.ID == origin.ID {
			continue
		}
		if payload == nil {
			payload = hotspot.EncodeDeposit(hotspot.Entry{
				Key: key, Version: o.Version, Origin: o.Origin, Dig: dig, Value: o.Value,
			})
		}
		ref := pastry.NodeRef{ID: v.ID, Addr: v.Addr}
		s.counters.CacheDeposits++
		s.node.SendDirect(ref, payload)
		s.hot.recordDeposit(key, ref)
	}
}

// onCachedReply completes a pending Get from a KindCachedReply, caching
// the value locally and enforcing the monotonic read floor: a cached
// reply below a version this client already read is refused and the
// operation retried authoritatively.
func (s *Store) onCachedReply(payload []byte) {
	reqID, found, fromCache, version, origin, dig, value, ok := hotspot.DecodeCachedReply(payload)
	if !ok {
		return
	}
	op, live := s.pending[reqID]
	if !live || op.kind != kindGet {
		return
	}
	if s.hot != nil {
		if found {
			if fromCache && s.hot.belowFloor(op.key, version, origin) {
				s.counters.CacheStaleRejected++
				if op.timer != nil {
					op.timer.Cancel()
				}
				op.fresh = true
				s.sendOp(reqID, op)
				return
			}
			s.hot.raiseFloor(op.key, version, origin)
			if fromCache {
				// Serve hearsay, never re-cache it: a value relayed by
				// another cache left its root up to a sweep interval ago,
				// and stamping it with a fresh StoredAt here would chain
				// that age across hops without bound. Only root-sourced
				// data (authoritative replies, deposits) enters caches,
				// which is what keeps every entry's staleness inside one
				// sweep interval plus delivery.
				s.counters.CacheHitsRemote++
			} else {
				s.hot.cache.Put(hotspot.Entry{
					Key: op.key, Version: version, Origin: origin, Dig: dig,
					Value: append([]byte(nil), value...), StoredAt: s.env.Now(),
				})
			}
		} else if !fromCache {
			// The root says the key is gone; drop any cached copy.
			s.hot.cache.Delete(op.key)
		}
	}
	if found {
		s.finish(reqID, value, nil)
	} else {
		s.finish(reqID, nil, ErrNotFound)
	}
}

// onDeposit caches an entry pushed by a key's root, subject to
// frequency admission.
func (s *Store) onDeposit(payload []byte) {
	if s.hot == nil {
		return
	}
	e, ok := hotspot.DecodeDeposit(payload)
	if !ok {
		return
	}
	e.StoredAt = s.env.Now()
	s.hot.cache.Put(e)
}

// onInvalidate drops a cached entry superseded by a newer write.
func (s *Store) onInvalidate(payload []byte) {
	if s.hot == nil {
		return
	}
	key, version, origin, ok := hotspot.DecodeInvalidate(payload)
	if !ok {
		return
	}
	s.hot.cache.InvalidateUnder(key, version, origin)
}

// invalidateCached runs at the root after applying a write: drop any
// local cached copy the new object supersedes and notify the peers the
// old value was deposited on.
func (s *Store) invalidateCached(o store.Object) {
	if s.hot == nil {
		return
	}
	s.hot.cache.InvalidateUnder(o.Key, o.Version, o.Origin)
	targets, ok := s.hot.deposits[o.Key]
	if !ok {
		return
	}
	delete(s.hot.deposits, o.Key)
	payload := hotspot.EncodeInvalidate(o.Key, o.Version, o.Origin)
	for _, t := range targets {
		s.counters.CacheInvalidations++
		s.node.SendDirect(t, payload)
	}
}

// purgeHotspot is the per-sweep backstop: evict every cached entry
// older than one sweep interval. Per-peer deposit state needs no sweep
// pass of its own — the peer registry's eviction broadcast (subscribed
// in New) drops a peer's deposit records the moment the node evicts it.
func (s *Store) purgeHotspot() {
	if s.hot == nil {
		return
	}
	cutoff := s.env.Now() - s.cfg.SweepInterval
	s.counters.CachePurged += uint64(s.hot.cache.PurgeOlderThan(cutoff))
}

// dropDepositTarget removes x from every key's deposit target list: an
// evicted peer can no longer be chosen as a caching hop, so invalidating
// it is pointless and remembering it forever leaks. Runs from the peer
// registry's eviction broadcast.
func (s *Store) dropDepositTarget(x id.ID) {
	for key, targets := range s.hot.deposits {
		kept := targets[:0]
		for _, t := range targets {
			if t.ID != x {
				kept = append(kept, t)
			}
		}
		if len(kept) == 0 {
			delete(s.hot.deposits, key)
		} else {
			s.hot.deposits[key] = kept
		}
	}
}
