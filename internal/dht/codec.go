package dht

import (
	"encoding/binary"

	"mspastry/internal/id"
	"mspastry/internal/store"
)

// Wire formats: every message starts with a 1-byte kind. Put/Get/Delete
// requests travel through the overlay as lookup payloads and are answered
// with a direct ack; everything from kindReplicate down travels only on
// direct links between replicas. All decoders are total: arbitrary bytes
// either parse or return ok=false, never panic.
//
// Encoders come in two layers, mirroring pastry's AppendMessage: appendX
// writes a message onto a caller-supplied buffer (callers with a scratch
// buffer amortise allocation), and encodeX wraps it with a right-sized
// fresh slice for callers that retain the payload.
const (
	kindPut byte = iota + 1
	kindGet
	kindPutAck
	kindGetResp
	kindReplicate
	kindDelete
	kindDeleteAck
	// Anti-entropy, in exchange order: the initiator opens with the root
	// digest of an arc; the responder answers "OK" or its bucket layer; the
	// initiator sends per-key summaries for divergent buckets; the
	// responder pulls the keys it is missing. Values move as kindReplicate.
	kindSyncRoot
	kindSyncRootOK
	kindSyncBuckets
	kindSyncKeys
	kindSyncPull
	// Handoff: a node far outside a key's replica set offers the object's
	// summary to the root, which answers Want (send the value) or Have
	// (already current) — either way the offerer may then drop its copy.
	kindHandoffOffer
	kindHandoffWant
	kindHandoffHave
)

// --- Client requests (lookup payloads) ---

func appendPut(dst []byte, reqID uint64, value []byte) []byte {
	dst = append(dst, kindPut)
	dst = binary.AppendUvarint(dst, reqID)
	return append(dst, value...)
}

func encodePut(reqID uint64, value []byte) []byte {
	return appendPut(make([]byte, 0, 16+len(value)), reqID, value)
}

// appendReqID covers the kind-plus-request-id family: Get and Delete
// requests and every end-to-end ack.
func appendReqID(dst []byte, kind byte, reqID uint64) []byte {
	dst = append(dst, kind)
	return binary.AppendUvarint(dst, reqID)
}

func encodeGet(reqID uint64) []byte {
	return appendReqID(make([]byte, 0, 16), kindGet, reqID)
}

func encodeDelete(reqID uint64) []byte {
	return appendReqID(make([]byte, 0, 16), kindDelete, reqID)
}

func decodeRequest(buf []byte) (kind byte, reqID uint64, value []byte, ok bool) {
	if len(buf) < 2 || (buf[0] != kindPut && buf[0] != kindGet && buf[0] != kindDelete) {
		return 0, 0, nil, false
	}
	v, n := binary.Uvarint(buf[1:])
	if n <= 0 {
		return 0, 0, nil, false
	}
	rest := buf[1+n:]
	if buf[0] != kindPut && len(rest) != 0 {
		return 0, 0, nil, false // only puts carry a value
	}
	return buf[0], v, rest, true
}

// --- End-to-end acks ---

func encodePutAck(reqID uint64) []byte {
	return appendReqID(make([]byte, 0, 16), kindPutAck, reqID)
}

func decodePutAck(buf []byte) (uint64, bool) {
	return decodeAck(kindPutAck, buf)
}

func encodeDeleteAck(reqID uint64) []byte {
	return appendReqID(make([]byte, 0, 16), kindDeleteAck, reqID)
}

func decodeDeleteAck(buf []byte) (uint64, bool) {
	return decodeAck(kindDeleteAck, buf)
}

func decodeAck(kind byte, buf []byte) (uint64, bool) {
	if len(buf) < 2 || buf[0] != kind {
		return 0, false
	}
	v, n := binary.Uvarint(buf[1:])
	return v, n > 0
}

func appendGetResp(dst []byte, reqID uint64, found bool, value []byte) []byte {
	dst = append(dst, kindGetResp)
	if found {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = binary.AppendUvarint(dst, reqID)
	return append(dst, value...)
}

func encodeGetResp(reqID uint64, found bool, value []byte) []byte {
	return appendGetResp(make([]byte, 0, 16+len(value)), reqID, found, value)
}

func decodeGetResp(buf []byte) (reqID uint64, found bool, value []byte, ok bool) {
	if len(buf) < 3 || buf[0] != kindGetResp {
		return 0, false, nil, false
	}
	found = buf[1] != 0
	v, n := binary.Uvarint(buf[2:])
	if n <= 0 {
		return 0, false, nil, false
	}
	return v, found, buf[2+n:], true
}

// --- Replica value transfer ---

// appendReplicate carries one full versioned object; it is the only sync
// or replication message that moves values.
func appendReplicate(dst []byte, o store.Object) []byte {
	return store.EncodeObject(append(dst, kindReplicate), o)
}

func encodeReplicate(o store.Object) []byte {
	return appendReplicate(make([]byte, 0, 40+len(o.Value)), o)
}

func decodeReplicate(buf []byte) (store.Object, bool) {
	if len(buf) < 1 || buf[0] != kindReplicate {
		return store.Object{}, false
	}
	return store.DecodeObject(buf[1:])
}

// --- Anti-entropy control messages ---

// kindSyncRoot: sid uvarint | lo 16 | hi 16 | root 16. sid identifies the
// initiator's round; lo/hi carry the arc so both sides digest the same
// key domain regardless of their leaf-set views.
func appendSyncRoot(dst []byte, sid uint64, lo, hi id.ID, root store.Digest) []byte {
	dst = append(dst, kindSyncRoot)
	dst = binary.AppendUvarint(dst, sid)
	dst = append(dst, lo.Bytes()...)
	dst = append(dst, hi.Bytes()...)
	return append(dst, root[:]...)
}

func encodeSyncRoot(sid uint64, lo, hi id.ID, root store.Digest) []byte {
	return appendSyncRoot(make([]byte, 0, 64), sid, lo, hi, root)
}

func decodeSyncRoot(buf []byte) (sid uint64, lo, hi id.ID, root store.Digest, ok bool) {
	if len(buf) < 2 || buf[0] != kindSyncRoot {
		return 0, id.ID{}, id.ID{}, store.Digest{}, false
	}
	v, n := binary.Uvarint(buf[1:])
	rest := buf[1+max(n, 0):]
	if n <= 0 || len(rest) != 32+store.DigestLen {
		return 0, id.ID{}, id.ID{}, store.Digest{}, false
	}
	lo = id.FromBytes(rest[0:16])
	hi = id.FromBytes(rest[16:32])
	copy(root[:], rest[32:])
	return v, lo, hi, root, true
}

// kindSyncRootOK: sid uvarint. The responder's arc digest matched.
func encodeSyncRootOK(sid uint64) []byte {
	return appendReqID(make([]byte, 0, 16), kindSyncRootOK, sid)
}

func decodeSyncRootOK(buf []byte) (uint64, bool) {
	return decodeAck(kindSyncRootOK, buf)
}

// kindSyncBuckets: sid uvarint | RangeBuckets × 16-byte bucket digests.
func appendSyncBuckets(dst []byte, sid uint64, buckets *[store.RangeBuckets]store.Digest) []byte {
	dst = append(dst, kindSyncBuckets)
	dst = binary.AppendUvarint(dst, sid)
	for i := range buckets {
		dst = append(dst, buckets[i][:]...)
	}
	return dst
}

func encodeSyncBuckets(sid uint64, buckets *[store.RangeBuckets]store.Digest) []byte {
	return appendSyncBuckets(make([]byte, 0, 16+store.RangeBuckets*store.DigestLen), sid, buckets)
}

func decodeSyncBuckets(buf []byte) (sid uint64, buckets [store.RangeBuckets]store.Digest, ok bool) {
	if len(buf) < 2 || buf[0] != kindSyncBuckets {
		return 0, buckets, false
	}
	v, n := binary.Uvarint(buf[1:])
	rest := buf[1+max(n, 0):]
	if n <= 0 || len(rest) != store.RangeBuckets*store.DigestLen {
		return 0, buckets, false
	}
	for i := range buckets {
		copy(buckets[i][:], rest[i*store.DigestLen:])
	}
	return v, buckets, true
}

// kindSyncKeys: lo 16 | hi 16 | bucket bitmap u64 BE | count uvarint |
// count × summary. Carries the initiator's per-key summaries for the
// divergent buckets. It repeats the arc and bucket set instead of the sid
// so the responder needs no round state to answer.
func appendSyncKeys(dst []byte, lo, hi id.ID, bitmap uint64, sums []store.Summary) []byte {
	dst = append(dst, kindSyncKeys)
	dst = append(dst, lo.Bytes()...)
	dst = append(dst, hi.Bytes()...)
	dst = binary.BigEndian.AppendUint64(dst, bitmap)
	dst = binary.AppendUvarint(dst, uint64(len(sums)))
	for _, sum := range sums {
		dst = appendSummary(dst, sum)
	}
	return dst
}

func encodeSyncKeys(lo, hi id.ID, bitmap uint64, sums []store.Summary) []byte {
	return appendSyncKeys(make([]byte, 0, 48+len(sums)*56), lo, hi, bitmap, sums)
}

func decodeSyncKeys(buf []byte) (lo, hi id.ID, bitmap uint64, sums []store.Summary, ok bool) {
	if len(buf) < 42 || buf[0] != kindSyncKeys {
		return id.ID{}, id.ID{}, 0, nil, false
	}
	lo = id.FromBytes(buf[1:17])
	hi = id.FromBytes(buf[17:33])
	bitmap = binary.BigEndian.Uint64(buf[33:41])
	rest := buf[41:]
	count, n := binary.Uvarint(rest)
	if n <= 0 || count > uint64(len(rest)) { // each summary is ≥ 35 bytes
		return id.ID{}, id.ID{}, 0, nil, false
	}
	rest = rest[n:]
	sums = make([]store.Summary, 0, count)
	for i := uint64(0); i < count; i++ {
		sum, tail, ok2 := cutSummary(rest)
		if !ok2 {
			return id.ID{}, id.ID{}, 0, nil, false
		}
		sums = append(sums, sum)
		rest = tail
	}
	if len(rest) != 0 {
		return id.ID{}, id.ID{}, 0, nil, false
	}
	return lo, hi, bitmap, sums, true
}

// kindSyncPull: count uvarint | count × 16-byte keys the responder wants.
func appendSyncPull(dst []byte, keys []id.ID) []byte {
	dst = append(dst, kindSyncPull)
	dst = binary.AppendUvarint(dst, uint64(len(keys)))
	for _, k := range keys {
		dst = append(dst, k.Bytes()...)
	}
	return dst
}

func encodeSyncPull(keys []id.ID) []byte {
	return appendSyncPull(make([]byte, 0, 16+len(keys)*16), keys)
}

func decodeSyncPull(buf []byte) ([]id.ID, bool) {
	if len(buf) < 2 || buf[0] != kindSyncPull {
		return nil, false
	}
	count, n := binary.Uvarint(buf[1:])
	rest := buf[1+max(n, 0):]
	if n <= 0 || uint64(len(rest)) != count*16 || count > uint64(len(rest)) {
		return nil, false
	}
	keys := make([]id.ID, 0, count)
	for i := uint64(0); i < count; i++ {
		keys = append(keys, id.FromBytes(rest[i*16:i*16+16]))
	}
	return keys, true
}

// --- Handoff messages ---

// kindHandoffOffer: one summary — the object a foreign node wants to shed.
func encodeHandoffOffer(sum store.Summary) []byte {
	return appendSummary(append(make([]byte, 0, 64), kindHandoffOffer), sum)
}

func decodeHandoffOffer(buf []byte) (store.Summary, bool) {
	if len(buf) < 2 || buf[0] != kindHandoffOffer {
		return store.Summary{}, false
	}
	sum, rest, ok := cutSummary(buf[1:])
	if !ok || len(rest) != 0 {
		return store.Summary{}, false
	}
	return sum, true
}

// kindHandoffWant / kindHandoffHave: the bare 16-byte key.
func encodeHandoffKey(kind byte, key id.ID) []byte {
	return append(append(make([]byte, 0, 17), kind), key.Bytes()...)
}

func decodeHandoffKey(kind byte, buf []byte) (id.ID, bool) {
	if len(buf) != 17 || buf[0] != kind {
		return id.ID{}, false
	}
	return id.FromBytes(buf[1:17]), true
}

// --- Key summary entries ---

// Summary wire layout: key 16 | flags 1 | version uvarint | origin uvarint
// | digest 16.
func appendSummary(dst []byte, sum store.Summary) []byte {
	dst = append(dst, sum.Key.Bytes()...)
	flags := byte(0)
	if sum.Tombstone {
		flags = 1
	}
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, sum.Version)
	dst = binary.AppendUvarint(dst, sum.Origin)
	return append(dst, sum.Dig[:]...)
}

// cutSummary parses one summary off the front of buf and returns the tail.
func cutSummary(buf []byte) (store.Summary, []byte, bool) {
	if len(buf) < 17 || buf[16]&^1 != 0 {
		return store.Summary{}, nil, false
	}
	sum := store.Summary{Key: id.FromBytes(buf[0:16]), Tombstone: buf[16] == 1}
	rest := buf[17:]
	v, n := binary.Uvarint(rest)
	if n <= 0 || v == 0 { // summaries describe written objects; version ≥ 1
		return store.Summary{}, nil, false
	}
	sum.Version = v
	rest = rest[n:]
	v, n = binary.Uvarint(rest)
	if n <= 0 {
		return store.Summary{}, nil, false
	}
	sum.Origin = v
	rest = rest[n:]
	if len(rest) < store.DigestLen {
		return store.Summary{}, nil, false
	}
	copy(sum.Dig[:], rest[:store.DigestLen])
	return sum, rest[store.DigestLen:], true
}
