// Package dht implements a replicated key-value store over MSPastry, in
// the style of the archival stores the paper cites as overlay applications
// (PAST, CFS). An object lives on its key's root node and is replicated to
// the k-1 nodes closest to the key; replication is maintained as soft
// state against churn, so objects survive root failures.
//
// Objects are versioned (see package store): the root assigns a per-key
// monotonic version to every write, deletes are tombstones that propagate
// like writes, and replicas merge under a total order, so the replica set
// converges regardless of message ordering. Replication maintenance is
// Merkle anti-entropy: each sweep the responsible nodes exchange range
// digests with their replica neighbours and transfer only the keys that
// actually diverge, instead of re-pushing every value every sweep.
//
// The store demonstrates the paper's remark that "applications that
// require guaranteed delivery can use end-to-end acks and
// retransmissions": every Put, Get and Delete is acknowledged end-to-end
// by the responsible node and retried by the requester until it succeeds
// or the retry budget is exhausted.
package dht

import (
	"errors"
	"sort"
	"time"

	"mspastry/internal/hotspot"
	"mspastry/internal/id"
	"mspastry/internal/pastry"
	"mspastry/internal/store"
)

// Config tunes the store.
type Config struct {
	// ReplicationFactor k is the number of nodes holding each object
	// (the root plus k-1 leaf-set neighbours).
	ReplicationFactor int
	// SweepInterval is how often each node re-checks responsibility for
	// its stored objects and reconciles replicas.
	SweepInterval time.Duration
	// RequestTimeout is the end-to-end ack timeout for Put/Get/Delete.
	RequestTimeout time.Duration
	// MaxRetries bounds end-to-end retransmissions.
	MaxRetries int
	// Backend supplies object storage. nil means a fresh in-memory
	// backend; live nodes pass a disk-backed store to survive restarts.
	Backend store.Backend
	// FullPushSweep reverts sweeps to unconditional full-value replica
	// pushes instead of Merkle anti-entropy. Kept as the bandwidth
	// baseline for experiments; production should leave it off.
	FullPushSweep bool
	// SyncLoadThreshold defers a sweep when the transport's inbound load
	// factor (pastry.LoadSampler) is at or above this value: anti-entropy
	// is deferrable soft-state maintenance, and running it while the node
	// is already saturated only deepens the overload. Zero disables the
	// gate; the deferred sweep re-arms at the usual interval.
	SyncLoadThreshold float64
	// SecureWrites routes Put and Delete with always-on redundant
	// diverse-path lookups (pastry.Node.LookupSecure): writes land on
	// whatever node answers as root, so a misrouted write silently
	// strands the object with a colluder, while a misrouted read just
	// fails and retries. Requires pastry.Config.SecureRouting.
	SecureWrites bool
	// CacheEntries enables hotspot path caching (see hotspot.go) and
	// bounds the cache's entry count. Zero disables the subsystem
	// entirely: Gets use the plain wire encoding and behave exactly as
	// before.
	CacheEntries int
	// CacheHotThreshold is the popularity-sketch estimate at which a
	// root starts depositing a key's replies on its route's caching
	// hops. Zero means the default (4).
	CacheHotThreshold int
}

// DefaultConfig returns k=3 replication with 30-second anti-entropy
// sweeps.
func DefaultConfig() Config {
	return Config{
		ReplicationFactor: 3,
		SweepInterval:     30 * time.Second,
		RequestTimeout:    10 * time.Second,
		MaxRetries:        4,
	}
}

// ErrTimeout reports an operation whose retries were exhausted.
var ErrTimeout = errors.New("dht: request timed out")

// ErrNotFound reports a Get for a key no responsible node holds.
var ErrNotFound = errors.New("dht: key not found")

// Store is one DHT node. It implements pastry.App; all methods must run in
// the node's Env context.
type Store struct {
	node    *pastry.Node
	env     pastry.Env
	cfg     Config
	backend store.Backend
	// origin stamps this node's identity into the versions it assigns.
	origin uint64

	nextReq uint64
	pending map[uint64]*pendingOp

	nextSync   uint64
	syncRounds map[uint64]*syncRound

	// hot is the hotspot path-caching state, nil when disabled.
	hot *hotState

	counters Counters
}

// Counters tallies the store's activity and outcomes for telemetry.
type Counters struct {
	// Puts, Gets and Deletes count operations started; the outcome fields
	// count how they finished.
	Puts, Gets, Deletes         uint64
	PutOK, PutFail              uint64
	GetOK, GetNotFound, GetFail uint64
	DeleteOK, DeleteFail        uint64
	Retries                     uint64
	// ReplicasPushed counts full-value pushes (write-time replication,
	// full-push sweeps, accepted handoffs); ReplicasApplied counts
	// incoming values that actually changed local state.
	ReplicasPushed, ReplicasApplied uint64
	// Sweeps counts replica responsibility sweeps; SweepHandoffs counts
	// objects dropped after handing responsibility to the current root.
	Sweeps, SweepHandoffs uint64
	// SweepsDeferred counts sweeps skipped because the transport's inbound
	// load was at or above Config.SyncLoadThreshold.
	SweepsDeferred uint64
	// HandoffOffers counts digest-first handoff offers sent.
	HandoffOffers uint64
	// SyncRounds counts anti-entropy exchanges started; SyncClean counts
	// rounds where the root digests matched (no transfer at all);
	// SyncKeysRepaired counts divergent objects sent as repairs.
	SyncRounds, SyncClean, SyncKeysRepaired uint64
	// DigestBytes is the wire volume of sync/handoff control traffic
	// (digests, summaries, pulls); MaintBytes is all maintenance bytes
	// sent by sweeps — control plus repair values — and is the number the
	// anti-entropy experiment compares across modes.
	DigestBytes, MaintBytes uint64
	// Hotspot path caching. CacheHitsLocal counts Gets answered from
	// this node's own cache without entering the overlay; CacheHitsRemote
	// counts Gets answered by a caching hop short-circuiting the route;
	// CacheServes counts lookups this node answered from its cache on
	// behalf of others. CacheDeposits / CacheInvalidations count entries
	// pushed to and revoked from caching hops as a root. CachePurged is
	// the sweep backstop's evictions; CacheStaleRejected counts cached
	// replies refused for violating a client's monotonic read floor.
	CacheHitsLocal, CacheHitsRemote, CacheServes   uint64
	CacheDeposits, CacheInvalidations, CachePurged uint64
	CacheStaleRejected                             uint64
}

// Counters returns a snapshot of the store's tallies.
func (s *Store) Counters() Counters { return s.counters }

// pendingOp is one in-flight client operation; kind is the request's wire
// kind (kindPut, kindGet or kindDelete).
type pendingOp struct {
	kind    byte
	key     id.ID
	value   []byte
	retries int
	// fresh forces a Get to bypass all caching (client asked for it, or
	// a cached reply violated the monotonic read floor).
	fresh   bool
	timer   pastry.Timer
	doneErr func(error)
	doneGet func([]byte, error)
}

// New attaches a store to node, registering it as the application layer,
// and starts the replication sweep.
func New(node *pastry.Node, env pastry.Env, cfg Config) *Store {
	if cfg.ReplicationFactor < 1 {
		cfg.ReplicationFactor = 1
	}
	backend := cfg.Backend
	if backend == nil {
		backend = store.NewMemory()
	}
	s := &Store{
		node:       node,
		env:        env,
		cfg:        cfg,
		backend:    backend,
		origin:     node.Ref().ID.Hi,
		pending:    make(map[uint64]*pendingOp),
		syncRounds: make(map[uint64]*syncRound),
	}
	if cfg.CacheEntries > 0 {
		s.hot = newHotState(cfg)
		// Deposit records are per-peer state: the node's peer registry
		// broadcasts every final eviction, and dropping the evicted
		// peer's records there keeps the maps bounded under churn
		// without a prune pass of their own.
		node.Peers().OnEvict(func(x id.ID, _ string) { s.dropDepositTarget(x) })
	}
	node.SetApp(s)
	s.armSweep()
	return s
}

// Node returns the underlying overlay node.
func (s *Store) Node() *pastry.Node { return s.node }

// Backend exposes the object storage, for status reporting and for tests
// that need to diverge replica state directly. Callers must respect the
// store's execution context.
func (s *Store) Backend() store.Backend { return s.backend }

// StoreStats returns the backend's storage statistics.
func (s *Store) StoreStats() store.Stats { return s.backend.Stats() }

// Close releases the backend (flushing a disk-backed WAL). Call on process
// shutdown; the overlay node is stopped separately.
func (s *Store) Close() error { return s.backend.Close() }

// LocalObjects returns how many live objects this node currently stores.
func (s *Store) LocalObjects() int { return s.backend.Len() }

// HasLocal reports whether the node holds a live replica of key.
func (s *Store) HasLocal(key id.ID) bool {
	o, ok := s.backend.Get(key)
	return ok && !o.Tombstone
}

// Put stores value under key with end-to-end acknowledgement; done is
// called exactly once.
func (s *Store) Put(key id.ID, value []byte, done func(error)) {
	s.counters.Puts++
	s.nextReq++
	op := &pendingOp{kind: kindPut, key: key, value: value, doneErr: done}
	s.pending[s.nextReq] = op
	s.sendOp(s.nextReq, op)
}

// Get fetches the value under key with end-to-end acknowledgement; done is
// called exactly once. With hotspot caching enabled the read may be
// answered from this node's cache or a caching hop, bounded-stale by at
// most one sweep interval and never older than a version this node has
// already read.
func (s *Store) Get(key id.ID, done func([]byte, error)) {
	s.get(key, false, done)
}

// GetFresh fetches the value under key bypassing all hotspot caches:
// the read is served by the key's root, as if caching were disabled.
func (s *Store) GetFresh(key id.ID, done func([]byte, error)) {
	s.get(key, true, done)
}

func (s *Store) get(key id.ID, fresh bool, done func([]byte, error)) {
	s.counters.Gets++
	if !fresh && s.hot != nil {
		if e, ok := s.hot.cache.Get(key); ok {
			if s.env.Now()-e.StoredAt <= s.cfg.SweepInterval &&
				!s.hot.belowFloor(key, e.Version, e.Origin) {
				s.counters.CacheHitsLocal++
				s.counters.GetOK++
				s.hot.raiseFloor(key, e.Version, e.Origin)
				value := e.Value
				s.env.Schedule(0, func() { done(value, nil) })
				return
			}
			s.hot.cache.Delete(key) // expired or below the read floor
		}
	}
	s.nextReq++
	op := &pendingOp{kind: kindGet, key: key, fresh: fresh, doneGet: done}
	s.pending[s.nextReq] = op
	s.sendOp(s.nextReq, op)
}

// Delete removes key with end-to-end acknowledgement; done is called
// exactly once. The root writes a tombstone that replicates like any
// other write, so the deletion propagates instead of being resurrected by
// stale replicas.
func (s *Store) Delete(key id.ID, done func(error)) {
	s.counters.Deletes++
	s.nextReq++
	op := &pendingOp{kind: kindDelete, key: key, doneErr: done}
	s.pending[s.nextReq] = op
	s.sendOp(s.nextReq, op)
}

func (s *Store) sendOp(reqID uint64, op *pendingOp) {
	var payload []byte
	switch op.kind {
	case kindPut:
		payload = encodePut(reqID, op.value)
	case kindGet:
		if s.hot != nil && !op.fresh {
			// Cache-aware read: accumulate caching hops along the route so
			// the root knows where to deposit hot replies.
			payload = hotspot.EncodeGetVia(reqID, nil)
		} else {
			payload = encodeGet(reqID)
		}
	case kindDelete:
		payload = encodeDelete(reqID)
	}
	send := s.node.Lookup
	if s.cfg.SecureWrites && op.kind != kindGet {
		send = s.node.LookupSecure
	}
	if _, ok := send(op.key, payload); !ok {
		s.finish(reqID, nil, errors.New("dht: node is down"))
		return
	}
	op.timer = s.env.Schedule(s.cfg.RequestTimeout, func() { s.opTimeout(reqID) })
}

func (s *Store) opTimeout(reqID uint64) {
	op, ok := s.pending[reqID]
	if !ok {
		return
	}
	if op.retries >= s.cfg.MaxRetries {
		s.finish(reqID, nil, ErrTimeout)
		return
	}
	op.retries++
	s.counters.Retries++
	s.sendOp(reqID, op)
}

func (s *Store) finish(reqID uint64, value []byte, err error) {
	op, ok := s.pending[reqID]
	if !ok {
		return
	}
	delete(s.pending, reqID)
	if op.timer != nil {
		op.timer.Cancel()
	}
	switch op.kind {
	case kindPut:
		if err != nil {
			s.counters.PutFail++
		} else {
			s.counters.PutOK++
		}
		op.doneErr(err)
	case kindDelete:
		if err != nil {
			s.counters.DeleteFail++
		} else {
			s.counters.DeleteOK++
		}
		op.doneErr(err)
	case kindGet:
		switch {
		case err == nil:
			s.counters.GetOK++
		case errors.Is(err, ErrNotFound):
			s.counters.GetNotFound++
		default:
			s.counters.GetFail++
		}
		op.doneGet(value, err)
	}
}

// Deliver implements pastry.App: the node is the root for the requested
// key and assigns versions.
func (s *Store) Deliver(lk *pastry.Lookup) {
	if len(lk.Payload) > 0 && lk.Payload[0] == hotspot.KindGetVia {
		s.deliverGetVia(lk)
		return
	}
	kind, reqID, value, ok := decodeRequest(lk.Payload)
	if !ok {
		return
	}
	switch kind {
	case kindPut:
		cur, _ := s.backend.Get(lk.Key)
		obj := store.Object{Key: lk.Key, Version: cur.Version + 1,
			Origin: s.origin, Value: value}
		if _, err := s.backend.Apply(obj); err != nil {
			return // durable write failed: no ack, the client retries
		}
		s.replicate(obj)
		s.invalidateCached(obj)
		s.reply(lk.Origin, encodePutAck(reqID))
	case kindDelete:
		// Write the tombstone even for a key we have never seen: a replica
		// may still hold a value the root lost, and the tombstone stops
		// anti-entropy from resurrecting it.
		cur, _ := s.backend.Get(lk.Key)
		if !cur.Tombstone {
			tomb := store.Object{Key: lk.Key, Version: cur.Version + 1,
				Origin: s.origin, Tombstone: true}
			if _, err := s.backend.Apply(tomb); err != nil {
				return
			}
			s.replicate(tomb)
			s.invalidateCached(tomb)
		}
		s.reply(lk.Origin, encodeDeleteAck(reqID))
	case kindGet:
		o, found := s.backend.Get(lk.Key)
		found = found && !o.Tombstone
		s.reply(lk.Origin, encodeGetResp(reqID, found, o.Value))
	}
}

func (s *Store) reply(to pastry.NodeRef, payload []byte) {
	if to.ID == s.node.Ref().ID {
		s.handleResponse(payload)
		return
	}
	s.node.SendDirect(to, payload)
}

// Forward implements pastry.App: cache-aware Gets may be served from
// this node's hotspot cache mid-route (consuming the lookup) or record
// this node as a caching hop; everything else routes untouched.
func (s *Store) Forward(lk *pastry.Lookup) bool {
	if s.hot == nil || len(lk.Payload) == 0 || lk.Payload[0] != hotspot.KindGetVia {
		return true
	}
	return s.hotspotForward(lk)
}

// Direct implements pastry.App: end-to-end responses, replica pushes, and
// the anti-entropy/handoff protocol.
func (s *Store) Direct(from pastry.NodeRef, payload []byte) {
	if len(payload) == 0 {
		return
	}
	switch payload[0] {
	case kindReplicate:
		if o, ok := decodeReplicate(payload); ok {
			if applied, _ := s.backend.Apply(o); applied {
				s.counters.ReplicasApplied++
				if s.hot != nil {
					// A replica push or repair superseding a cached read
					// invalidates it (anti-entropy as invalidation backstop).
					s.hot.cache.InvalidateUnder(o.Key, o.Version, o.Origin)
				}
			}
		}
	case hotspot.KindDeposit:
		s.onDeposit(payload)
	case hotspot.KindInvalidate:
		s.onInvalidate(payload)
	case kindSyncRoot:
		s.onSyncRoot(from, payload)
	case kindSyncRootOK:
		s.onSyncRootOK(payload)
	case kindSyncBuckets:
		s.onSyncBuckets(payload)
	case kindSyncKeys:
		s.onSyncKeys(from, payload)
	case kindSyncPull:
		s.onSyncPull(from, payload)
	case kindHandoffOffer:
		s.onHandoffOffer(from, payload)
	case kindHandoffWant:
		s.onHandoffWant(from, payload)
	case kindHandoffHave:
		s.onHandoffHave(payload)
	default:
		s.handleResponse(payload)
	}
}

func (s *Store) handleResponse(payload []byte) {
	switch payload[0] {
	case hotspot.KindCachedReply:
		s.onCachedReply(payload)
	case kindPutAck:
		if reqID, ok := decodePutAck(payload); ok {
			s.finish(reqID, nil, nil)
		}
	case kindDeleteAck:
		if reqID, ok := decodeDeleteAck(payload); ok {
			s.finish(reqID, nil, nil)
		}
	case kindGetResp:
		reqID, found, value, ok := decodeGetResp(payload)
		if !ok {
			return
		}
		if found {
			s.finish(reqID, value, nil)
		} else {
			s.finish(reqID, nil, ErrNotFound)
		}
	}
}

// replicate pushes an object to the k-1 leaf-set members closest to its
// key (write-time replication; not charged as maintenance traffic).
func (s *Store) replicate(o store.Object) {
	payload := encodeReplicate(o)
	for _, m := range s.replicaTargets(o.Key) {
		s.counters.ReplicasPushed++
		s.node.SendDirect(m, payload)
	}
}

// replicaTargets returns the k-1 leaf members closest to key.
func (s *Store) replicaTargets(key id.ID) []pastry.NodeRef {
	// Copy: Members() returns a shared snapshot and the selection sort
	// below reorders in place.
	members := append([]pastry.NodeRef(nil), s.node.Leaf().Members()...)
	// Selection sort of the k-1 closest; leaf sets are small.
	want := s.cfg.ReplicationFactor - 1
	if want > len(members) {
		want = len(members)
	}
	for i := 0; i < want; i++ {
		best := i
		for j := i + 1; j < len(members); j++ {
			if id.CloserToKey(key, members[j].ID, members[best].ID) {
				best = j
			}
		}
		members[i], members[best] = members[best], members[i]
	}
	return members[:want]
}

// armSweep starts the periodic responsibility sweep.
func (s *Store) armSweep() {
	s.env.Schedule(s.cfg.SweepInterval, func() {
		if !s.node.Alive() {
			return
		}
		s.purgeHotspot()
		s.sweep()
		s.armSweep()
	})
}

// sweep re-establishes the replication invariant after churn. For every
// stored key the node ranks itself against its leaf set: within the
// replica set (rank < k) it reconciles with the other replicas — by
// Merkle anti-entropy normally, or by unconditional re-push in
// FullPushSweep mode (roots only, the pre-anti-entropy behaviour); far
// outside it (rank ≥ 2k, with hysteresis) it offers the object to the
// current root and drops its copy once answered.
func (s *Store) sweep() {
	if !s.node.Active() {
		return
	}
	if s.cfg.SyncLoadThreshold > 0 && s.node.LoadFactor() >= s.cfg.SyncLoadThreshold {
		s.counters.SweepsDeferred++
		return
	}
	s.counters.Sweeps++
	members := s.node.Leaf().Members()
	k := s.cfg.ReplicationFactor

	// Collect first: handoffs mutate the backend, and Range must not
	// observe mutation.
	type ranked struct {
		obj  store.Object
		rank int
	}
	var local []ranked
	s.backend.Range(func(o store.Object) bool {
		local = append(local, ranked{o, s.rankForKey(o.Key, members)})
		return true
	})
	// Stable order keeps simulated runs reproducible for a given seed.
	sort.Slice(local, func(i, j int) bool { return local[i].obj.Key.Less(local[j].obj.Key) })

	groups := make(map[string][]id.ID) // replica addr → keys shared with it
	targets := make(map[string]pastry.NodeRef)
	for _, ro := range local {
		switch {
		case ro.rank >= 2*k:
			s.offerHandoff(ro.obj, members)
		case s.cfg.FullPushSweep:
			if ro.rank == 0 {
				s.pushFull(ro.obj)
			}
		case ro.rank < k:
			for _, m := range s.replicaTargets(ro.obj.Key) {
				groups[m.Addr] = append(groups[m.Addr], ro.obj.Key)
				targets[m.Addr] = m
			}
		}
	}
	addrs := make([]string, 0, len(groups))
	for addr := range groups {
		addrs = append(addrs, addr)
	}
	sort.Strings(addrs)
	for _, addr := range addrs {
		s.startSync(targets[addr], groups[addr])
	}
}

// pushFull is the FullPushSweep baseline: re-send the whole value to every
// replica target, divergent or not.
func (s *Store) pushFull(o store.Object) {
	payload := encodeReplicate(o)
	for _, m := range s.replicaTargets(o.Key) {
		s.counters.ReplicasPushed++
		s.counters.MaintBytes += uint64(len(payload))
		s.node.SendDirect(m, payload)
	}
}

// rankForKey returns this node's rank (0 = closest) among itself and its
// leaf members for the key.
func (s *Store) rankForKey(key id.ID, members []pastry.NodeRef) int {
	rank := 0
	for _, m := range members {
		if id.CloserToKey(key, m.ID, s.node.Ref().ID) {
			rank++
		}
	}
	return rank
}

func (s *Store) closestMember(key id.ID, members []pastry.NodeRef) (pastry.NodeRef, bool) {
	if len(members) == 0 {
		return pastry.NodeRef{}, false
	}
	best := members[0]
	for _, m := range members[1:] {
		if id.CloserToKey(key, m.ID, best.ID) {
			best = m
		}
	}
	return best, true
}
