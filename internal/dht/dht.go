// Package dht implements a replicated key-value store over MSPastry, in
// the style of the archival stores the paper cites as overlay applications
// (PAST, CFS). An object lives on its key's root node and is replicated to
// the k-1 nodes closest to the key; replication is maintained as soft
// state against churn, so objects survive root failures.
//
// The store demonstrates the paper's remark that "applications that
// require guaranteed delivery can use end-to-end acks and
// retransmissions": every Put and Get is acknowledged end-to-end by the
// responsible node and retried by the requester until it succeeds or the
// retry budget is exhausted.
package dht

import (
	"encoding/binary"
	"errors"
	"time"

	"mspastry/internal/id"
	"mspastry/internal/pastry"
)

// Config tunes the store.
type Config struct {
	// ReplicationFactor k is the number of nodes holding each object
	// (the root plus k-1 leaf-set neighbours).
	ReplicationFactor int
	// SweepInterval is how often each node re-checks responsibility for
	// its stored objects and re-pushes replicas.
	SweepInterval time.Duration
	// RequestTimeout is the end-to-end ack timeout for Put/Get.
	RequestTimeout time.Duration
	// MaxRetries bounds end-to-end retransmissions.
	MaxRetries int
}

// DefaultConfig returns k=3 replication with 30-second sweeps.
func DefaultConfig() Config {
	return Config{
		ReplicationFactor: 3,
		SweepInterval:     30 * time.Second,
		RequestTimeout:    10 * time.Second,
		MaxRetries:        4,
	}
}

// ErrTimeout reports an operation whose retries were exhausted.
var ErrTimeout = errors.New("dht: request timed out")

// ErrNotFound reports a Get for a key no responsible node holds.
var ErrNotFound = errors.New("dht: key not found")

// Store is one DHT node. It implements pastry.App; all methods must run in
// the node's Env context.
type Store struct {
	node *pastry.Node
	env  pastry.Env
	cfg  Config

	objects map[id.ID][]byte

	nextReq uint64
	pending map[uint64]*pendingOp

	counters Counters
}

// Counters tallies the store's activity and outcomes for telemetry.
type Counters struct {
	// Puts and Gets count operations started; the outcome fields count
	// how they finished.
	Puts, Gets                  uint64
	PutOK, PutFail              uint64
	GetOK, GetNotFound, GetFail uint64
	Retries                     uint64
	ReplicasPushed              uint64
	// Sweeps counts replica responsibility sweeps; SweepHandoffs counts
	// objects handed to the current root and dropped by a sweep.
	Sweeps, SweepHandoffs uint64
}

// Counters returns a snapshot of the store's tallies.
func (s *Store) Counters() Counters { return s.counters }

type pendingOp struct {
	key     id.ID
	isPut   bool
	value   []byte
	retries int
	timer   pastry.Timer
	donePut func(error)
	doneGet func([]byte, error)
}

// New attaches a store to node, registering it as the application layer,
// and starts the replication sweep.
func New(node *pastry.Node, env pastry.Env, cfg Config) *Store {
	if cfg.ReplicationFactor < 1 {
		cfg.ReplicationFactor = 1
	}
	s := &Store{
		node:    node,
		env:     env,
		cfg:     cfg,
		objects: make(map[id.ID][]byte),
		pending: make(map[uint64]*pendingOp),
	}
	node.SetApp(s)
	s.armSweep()
	return s
}

// Node returns the underlying overlay node.
func (s *Store) Node() *pastry.Node { return s.node }

// LocalObjects returns how many objects this node currently stores.
func (s *Store) LocalObjects() int { return len(s.objects) }

// HasLocal reports whether the node holds a replica of key.
func (s *Store) HasLocal(key id.ID) bool {
	_, ok := s.objects[key]
	return ok
}

// Put stores value under key with end-to-end acknowledgement; done is
// called exactly once.
func (s *Store) Put(key id.ID, value []byte, done func(error)) {
	s.counters.Puts++
	s.nextReq++
	op := &pendingOp{key: key, isPut: true, value: value, donePut: done}
	s.pending[s.nextReq] = op
	s.sendOp(s.nextReq, op)
}

// Get fetches the value under key with end-to-end acknowledgement; done is
// called exactly once.
func (s *Store) Get(key id.ID, done func([]byte, error)) {
	s.counters.Gets++
	s.nextReq++
	op := &pendingOp{key: key, doneGet: done}
	s.pending[s.nextReq] = op
	s.sendOp(s.nextReq, op)
}

func (s *Store) sendOp(reqID uint64, op *pendingOp) {
	var payload []byte
	if op.isPut {
		payload = encodePut(reqID, op.value)
	} else {
		payload = encodeGet(reqID)
	}
	if _, ok := s.node.Lookup(op.key, payload); !ok {
		s.finish(reqID, nil, errors.New("dht: node is down"))
		return
	}
	op.timer = s.env.Schedule(s.cfg.RequestTimeout, func() { s.opTimeout(reqID) })
}

func (s *Store) opTimeout(reqID uint64) {
	op, ok := s.pending[reqID]
	if !ok {
		return
	}
	if op.retries >= s.cfg.MaxRetries {
		s.finish(reqID, nil, ErrTimeout)
		return
	}
	op.retries++
	s.counters.Retries++
	s.sendOp(reqID, op)
}

func (s *Store) finish(reqID uint64, value []byte, err error) {
	op, ok := s.pending[reqID]
	if !ok {
		return
	}
	delete(s.pending, reqID)
	if op.timer != nil {
		op.timer.Cancel()
	}
	if op.isPut {
		if err != nil {
			s.counters.PutFail++
		} else {
			s.counters.PutOK++
		}
		op.donePut(err)
		return
	}
	switch {
	case err == nil:
		s.counters.GetOK++
	case errors.Is(err, ErrNotFound):
		s.counters.GetNotFound++
	default:
		s.counters.GetFail++
	}
	op.doneGet(value, err)
}

// Deliver implements pastry.App: the node is the root for the requested
// key.
func (s *Store) Deliver(lk *pastry.Lookup) {
	kind, reqID, value, ok := decodeRequest(lk.Payload)
	if !ok {
		return
	}
	switch kind {
	case kindPut:
		s.objects[lk.Key] = value
		s.replicate(lk.Key, value)
		s.reply(lk.Origin, reqID, encodePutAck(reqID))
	case kindGet:
		stored, found := s.objects[lk.Key]
		s.reply(lk.Origin, reqID, encodeGetResp(reqID, found, stored))
	}
}

func (s *Store) reply(to pastry.NodeRef, reqID uint64, payload []byte) {
	if to.ID == s.node.Ref().ID {
		s.handleResponse(payload)
		return
	}
	s.node.SendDirect(to, payload)
}

// Forward implements pastry.App: the store does not intercept routing.
func (s *Store) Forward(*pastry.Lookup) bool { return true }

// Direct implements pastry.App: end-to-end responses and replica pushes.
func (s *Store) Direct(from pastry.NodeRef, payload []byte) {
	if len(payload) == 0 {
		return
	}
	if payload[0] == kindReplicate {
		key, value, ok := decodeReplicate(payload)
		if ok {
			s.objects[key] = value
		}
		return
	}
	s.handleResponse(payload)
}

func (s *Store) handleResponse(payload []byte) {
	switch payload[0] {
	case kindPutAck:
		reqID, ok := decodePutAck(payload)
		if ok {
			s.finish(reqID, nil, nil)
		}
	case kindGetResp:
		reqID, found, value, ok := decodeGetResp(payload)
		if !ok {
			return
		}
		if found {
			s.finish(reqID, value, nil)
		} else {
			s.finish(reqID, nil, ErrNotFound)
		}
	}
}

// replicate pushes an object to the k-1 leaf-set members closest to key.
func (s *Store) replicate(key id.ID, value []byte) {
	for _, m := range s.replicaTargets(key) {
		s.counters.ReplicasPushed++
		s.node.SendDirect(m, encodeReplicate(key, value))
	}
}

// replicaTargets returns the k-1 leaf members closest to key.
func (s *Store) replicaTargets(key id.ID) []pastry.NodeRef {
	members := s.node.Leaf().Members()
	// Selection sort of the k-1 closest; leaf sets are small.
	want := s.cfg.ReplicationFactor - 1
	if want > len(members) {
		want = len(members)
	}
	for i := 0; i < want; i++ {
		best := i
		for j := i + 1; j < len(members); j++ {
			if id.CloserToKey(key, members[j].ID, members[best].ID) {
				best = j
			}
		}
		members[i], members[best] = members[best], members[i]
	}
	return members[:want]
}

// armSweep starts the periodic responsibility sweep.
func (s *Store) armSweep() {
	s.env.Schedule(s.cfg.SweepInterval, func() {
		if !s.node.Alive() {
			return
		}
		s.sweep()
		s.armSweep()
	})
}

// sweep re-establishes the replication invariant after churn: if this node
// believes it is the root of a stored key, it re-pushes replicas (new
// neighbours may have joined); if it is no longer among the responsible
// nodes, it drops the object (with hysteresis: 2k closest).
func (s *Store) sweep() {
	if !s.node.Active() {
		return
	}
	s.counters.Sweeps++
	members := s.node.Leaf().Members()
	for key, value := range s.objects {
		rank := s.rankForKey(key, members)
		switch {
		case rank == 0:
			// We are the root (in our view): ensure replicas exist.
			s.replicate(key, value)
		case rank >= 2*s.cfg.ReplicationFactor:
			// Far outside the responsible set: hand the object to the
			// current root (in case it never saw it) and drop it.
			if root, ok := s.closestMember(key, members); ok {
				s.node.SendDirect(root, encodeReplicate(key, value))
			}
			s.counters.SweepHandoffs++
			delete(s.objects, key)
		}
	}
}

// rankForKey returns this node's rank (0 = closest) among itself and its
// leaf members for the key.
func (s *Store) rankForKey(key id.ID, members []pastry.NodeRef) int {
	rank := 0
	for _, m := range members {
		if id.CloserToKey(key, m.ID, s.node.Ref().ID) {
			rank++
		}
	}
	return rank
}

func (s *Store) closestMember(key id.ID, members []pastry.NodeRef) (pastry.NodeRef, bool) {
	if len(members) == 0 {
		return pastry.NodeRef{}, false
	}
	best := members[0]
	for _, m := range members[1:] {
		if id.CloserToKey(key, m.ID, best.ID) {
			best = m
		}
	}
	return best, true
}

// Wire formats: 1-byte kind, then fields.
const (
	kindPut byte = iota + 1
	kindGet
	kindPutAck
	kindGetResp
	kindReplicate
)

func encodePut(reqID uint64, value []byte) []byte {
	buf := append(make([]byte, 0, 16+len(value)), kindPut)
	buf = binary.AppendUvarint(buf, reqID)
	return append(buf, value...)
}

func encodeGet(reqID uint64) []byte {
	buf := append(make([]byte, 0, 16), kindGet)
	return binary.AppendUvarint(buf, reqID)
}

func decodeRequest(buf []byte) (kind byte, reqID uint64, value []byte, ok bool) {
	if len(buf) < 2 || (buf[0] != kindPut && buf[0] != kindGet) {
		return 0, 0, nil, false
	}
	v, n := binary.Uvarint(buf[1:])
	if n <= 0 {
		return 0, 0, nil, false
	}
	return buf[0], v, buf[1+n:], true
}

func encodePutAck(reqID uint64) []byte {
	buf := append(make([]byte, 0, 16), kindPutAck)
	return binary.AppendUvarint(buf, reqID)
}

func decodePutAck(buf []byte) (uint64, bool) {
	if len(buf) < 2 || buf[0] != kindPutAck {
		return 0, false
	}
	v, n := binary.Uvarint(buf[1:])
	return v, n > 0
}

func encodeGetResp(reqID uint64, found bool, value []byte) []byte {
	buf := append(make([]byte, 0, 16+len(value)), kindGetResp)
	if found {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.AppendUvarint(buf, reqID)
	return append(buf, value...)
}

func decodeGetResp(buf []byte) (reqID uint64, found bool, value []byte, ok bool) {
	if len(buf) < 3 || buf[0] != kindGetResp {
		return 0, false, nil, false
	}
	found = buf[1] != 0
	v, n := binary.Uvarint(buf[2:])
	if n <= 0 {
		return 0, false, nil, false
	}
	return v, found, buf[2+n:], true
}

func encodeReplicate(key id.ID, value []byte) []byte {
	buf := append(make([]byte, 0, 32+len(value)), kindReplicate)
	buf = append(buf, key.Bytes()...)
	return append(buf, value...)
}

func decodeReplicate(buf []byte) (key id.ID, value []byte, ok bool) {
	if len(buf) < 17 || buf[0] != kindReplicate {
		return id.ID{}, nil, false
	}
	return id.FromBytes(buf[1:17]), buf[17:], true
}
