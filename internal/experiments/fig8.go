package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"mspastry/internal/eventsim"
	"mspastry/internal/id"
	"mspastry/internal/netmodel"
	"mspastry/internal/pastry"
	"mspastry/internal/squirrel"
	"mspastry/internal/topology"
	"mspastry/internal/trace"
	"mspastry/internal/transport"
)

// Fig8Window is one point of the Figure 8 series: total traffic (control,
// lookup and application messages) per second per node.
type Fig8Window struct {
	Start           time.Duration
	TotalPerNodeSec float64
	Active          float64
	Requests        int
}

// Fig8Result is the Squirrel traffic series of Figure 8: total traffic per
// node over a six-day deployment with 52 machines, with the weekday/
// weekend pattern visible.
type Fig8Result struct {
	Windows []Fig8Window
	// OriginFetches and Requests summarise cache effectiveness.
	OriginFetches int
	Requests      int
}

// Fig8Config parameterises the Squirrel workload replay.
type Fig8Config struct {
	Machines int
	Days     int
	// PeakRequestRate is web requests per second per active machine at
	// the workday peak.
	PeakRequestRate float64
	// Catalog is the number of distinct URLs browsed.
	Catalog int
	Window  time.Duration
	Seed    int64
}

// DefaultFig8Config matches the paper's deployment: 52 machines, 6 days
// (4 weekdays and a weekend).
func DefaultFig8Config() Fig8Config {
	return Fig8Config{
		Machines:        52,
		Days:            6,
		PeakRequestRate: 0.02,
		Catalog:         400,
		Window:          2 * time.Hour,
		Seed:            1,
	}
}

// Fig8Squirrel replays a synthetic Squirrel workload — web requests with a
// strong daily pattern and quieter weekends, machines leaving at night —
// through the simulator and reports total traffic per node per window.
func Fig8Squirrel(cfg Fig8Config) Fig8Result {
	sim := eventsim.New(cfg.Seed)
	topo := topology.CorpNet(topology.DefaultCorpNet(), rand.New(rand.NewSource(cfg.Seed)))
	nw := netmodel.New(sim, topo, 0)

	duration := time.Duration(cfg.Days) * 24 * time.Hour
	// Machine availability: office machines stay up ~20h at a time and
	// are mostly on (the Squirrel deployment machines were desktops).
	churn := trace.Generate(trace.Config{
		Name: "squirrel", Duration: duration,
		Population: cfg.Machines, OnlineFraction: 0.85,
		MeanSession: 20 * time.Hour, Diurnal: 0.3, Weekly: 0.3,
		Seed: cfg.Seed,
	})

	pcfg := pastry.DefaultConfig()
	pcfg.L = 16

	nwin := int(duration/cfg.Window) + 1
	msgs := make([]int, nwin)
	reqs := make([]int, nwin)
	nodeSec := make([]float64, nwin)
	win := func() int {
		i := int(sim.Now() / cfg.Window)
		if i >= nwin {
			i = nwin - 1
		}
		return i
	}
	nw.OnSend(func(from *netmodel.Endpoint, to pastry.NodeRef, m pastry.Message, singleBytes int) {
		msgs[win()]++
	})

	res := Fig8Result{}
	origin := squirrel.OriginFunc(func(url string) ([]byte, error) {
		res.OriginFetches++
		return []byte("obj:" + url), nil
	})

	eps := make([]*netmodel.Endpoint, cfg.Machines)
	proxies := make([]*squirrel.Proxy, cfg.Machines)
	first := topo.Attach(cfg.Machines, sim.Rand())
	for i := range eps {
		eps[i] = nw.NewEndpoint(first + i)
	}
	var bootstrapped bool
	alive := make([]int, 0, cfg.Machines)
	start := func(slot int) {
		ep := eps[slot]
		ref := pastry.NodeRef{ID: id.Random(sim.Rand()), Addr: ep.Addr()}
		node, err := pastry.NewNode(ref, pcfg, ep, nil)
		if err != nil {
			panic(err)
		}
		ep.Bind(node)
		proxies[slot] = squirrel.New(node, origin, squirrel.DefaultConfig())
		node.SetSeedSource(func() (pastry.NodeRef, bool) {
			for _, s := range alive {
				if s != slot && proxies[s] != nil && proxies[s].Node().Active() {
					return proxies[s].Node().Ref(), true
				}
			}
			return pastry.NodeRef{}, false
		})
		if !bootstrapped {
			bootstrapped = true
			node.Bootstrap()
		} else {
			seeded := false
			for _, s := range alive {
				if proxies[s] != nil && proxies[s].Node().Active() {
					node.Join(proxies[s].Node().Ref())
					seeded = true
					break
				}
			}
			if !seeded {
				node.Bootstrap()
			}
		}
		alive = append(alive, slot)
	}
	stop := func(slot int) {
		eps[slot].Fail()
		for i, s := range alive {
			if s == slot {
				alive = append(alive[:i], alive[i+1:]...)
				break
			}
		}
	}

	// Warm start.
	for _, slot := range churn.Initial {
		slot := slot
		sim.At(time.Duration(sim.Rand().Int63n(int64(10*time.Minute))), func() { start(slot) })
	}
	const ramp = 15 * time.Minute
	for _, ev := range churn.Events {
		ev := ev
		at := ramp + ev.At
		switch ev.Kind {
		case trace.Join:
			sim.At(at, func() {
				if !eps[ev.Node].Up() {
					start(ev.Node)
				}
			})
		case trace.Leave:
			sim.At(at, func() {
				if eps[ev.Node].Up() {
					stop(ev.Node)
				}
			})
		}
	}

	// Web workload: per-tick Poisson thinned by the diurnal/weekly curve.
	catalog := make([]string, cfg.Catalog)
	for i := range catalog {
		catalog[i] = fmt.Sprintf("http://corp.example/doc-%04d", i)
	}
	zipf := rand.NewZipf(sim.Rand(), 1.1, 2.0, uint64(cfg.Catalog-1))
	var tick func()
	const step = 30 * time.Second
	tick = func() {
		now := sim.Now()
		if now >= duration {
			return
		}
		intensity := workdayIntensity(now)
		mean := cfg.PeakRequestRate * intensity * step.Seconds()
		for _, slot := range alive {
			p := proxies[slot]
			if p == nil || !p.Node().Alive() || !p.Node().Active() {
				continue
			}
			n := poissonDraw(sim.Rand(), mean)
			for k := 0; k < n; k++ {
				w := win()
				reqs[w]++
				res.Requests++
				p.Get(catalog[int(zipf.Uint64())], func([]byte, squirrel.Outcome) {})
			}
		}
		// Integrate node-seconds.
		nodeSec[win()] += float64(len(alive)) * step.Seconds()
		sim.After(step, tick)
	}
	sim.At(ramp, tick)

	sim.RunUntil(duration)

	for i := 0; i < nwin; i++ {
		w := Fig8Window{Start: time.Duration(i) * cfg.Window, Requests: reqs[i]}
		if nodeSec[i] > 0 {
			w.TotalPerNodeSec = float64(msgs[i]) / nodeSec[i]
			w.Active = nodeSec[i] / cfg.Window.Seconds()
		}
		res.Windows = append(res.Windows, w)
	}
	return res
}

// workdayIntensity models office web browsing: strong daytime peak on
// weekdays (days 0-3 and 6 of the paper's trace week), low weekends.
func workdayIntensity(t time.Duration) float64 {
	day := int(t.Hours()) / 24
	hour := t.Hours() - float64(day)*24
	daytime := 0.05
	if hour >= 8 && hour <= 18 {
		daytime = 1.0
	} else if hour > 18 && hour < 22 {
		daytime = 0.3
	}
	// Days 4 and 5 are the weekend.
	if day%7 == 4 || day%7 == 5 {
		daytime *= 0.15
	}
	return daytime
}

// poissonDraw samples a Poisson variate with Knuth's method (the means
// here are well below 10, where it is exact and fast).
func poissonDraw(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	limit := math.Exp(-mean)
	l := 1.0
	for i := 0; i < 1000; i++ {
		l *= rng.Float64()
		if l < limit {
			return i
		}
	}
	return 1000
}

// Fig8Validation runs the same compressed Squirrel workload twice — once
// in the discrete-event simulator and once over real UDP sockets on the
// loopback interface — and returns total messages per node from each, the
// paper's simulator-validation claim ("the simulation results are very
// similar to the statistics obtained from the real deployment").
type Fig8ValidationResult struct {
	SimMessages  uint64
	LiveMessages uint64
	Nodes        int
	Duration     time.Duration
}

// Ratio returns live/sim message counts (1.0 = perfect agreement).
func (r Fig8ValidationResult) Ratio() float64 {
	if r.SimMessages == 0 {
		return 0
	}
	return float64(r.LiveMessages) / float64(r.SimMessages)
}

// Fig8Validation executes the validation with n nodes for the given wall
// duration.
func Fig8Validation(n int, duration time.Duration, seed int64) (Fig8ValidationResult, error) {
	cfg := pastry.DefaultConfig()
	cfg.L = 8
	cfg.Tls = 2 * time.Second
	cfg.To = time.Second
	cfg.TickInterval = time.Second
	cfg.DistProbeSpacing = 200 * time.Millisecond
	cfg.RTMaintenance = 20 * time.Second

	requestEvery := 500 * time.Millisecond

	// --- simulator run ---
	var simMsgs uint64
	{
		sim := eventsim.New(seed)
		topo := topology.CorpNet(topology.CorpNetConfig{Hubs: 4, EdgeRouters: 12}, rand.New(rand.NewSource(seed)))
		nw := netmodel.New(sim, topo, 0)
		nw.OnSend(func(*netmodel.Endpoint, pastry.NodeRef, pastry.Message, int) { simMsgs++ })
		origin := squirrel.OriginFunc(func(url string) ([]byte, error) { return []byte(url), nil })
		first := topo.Attach(n, sim.Rand())
		proxies := make([]*squirrel.Proxy, n)
		var seedRef pastry.NodeRef
		for i := 0; i < n; i++ {
			ep := nw.NewEndpoint(first + i)
			ref := pastry.NodeRef{ID: id.Random(sim.Rand()), Addr: ep.Addr()}
			node, err := pastry.NewNode(ref, cfg, ep, nil)
			if err != nil {
				return Fig8ValidationResult{}, err
			}
			ep.Bind(node)
			proxies[i] = squirrel.New(node, origin, squirrel.DefaultConfig())
			if i == 0 {
				node.Bootstrap()
				seedRef = ref
			} else {
				node.Join(seedRef)
			}
			sim.RunUntil(sim.Now() + time.Second)
		}
		reqRng := rand.New(rand.NewSource(seed + 7))
		end := sim.Now() + duration
		for sim.Now() < end {
			p := proxies[reqRng.Intn(n)]
			if p.Node().Alive() && p.Node().Active() {
				p.Get(fmt.Sprintf("http://val.example/%d", reqRng.Intn(50)), func([]byte, squirrel.Outcome) {})
			}
			sim.RunUntil(sim.Now() + requestEvery)
		}
	}

	// --- live UDP run with the same shape ---
	var liveMsgs uint64
	{
		origin := squirrel.OriginFunc(func(url string) ([]byte, error) { return []byte(url), nil })
		transports := make([]*transport.UDP, 0, n)
		defer func() {
			for _, tr := range transports {
				_ = tr.Close()
			}
		}()
		proxies := make([]*squirrel.Proxy, n)
		var seedRef pastry.NodeRef
		for i := 0; i < n; i++ {
			tr, err := transport.Listen("127.0.0.1:0", seed+int64(i))
			if err != nil {
				return Fig8ValidationResult{}, err
			}
			transports = append(transports, tr)
			if _, err := tr.CreateNode(id.ID{}, cfg, nil); err != nil {
				return Fig8ValidationResult{}, err
			}
			i := i
			tr.DoSync(func(nd *pastry.Node) {
				proxies[i] = squirrel.New(nd, origin, squirrel.DefaultConfig())
			})
			if i == 0 {
				tr.DoSync(func(nd *pastry.Node) { nd.Bootstrap(); seedRef = nd.Ref() })
			} else {
				tr.DoSync(func(nd *pastry.Node) { nd.Join(seedRef) })
			}
			time.Sleep(time.Second)
		}
		reqRng := rand.New(rand.NewSource(seed + 7))
		deadline := time.Now().Add(duration)
		for time.Now().Before(deadline) {
			i := reqRng.Intn(n)
			url := fmt.Sprintf("http://val.example/%d", reqRng.Intn(50))
			transports[i].Do(func(nd *pastry.Node) {
				if nd.Alive() && nd.Active() {
					proxies[i].Get(url, func([]byte, squirrel.Outcome) {})
				}
			})
			time.Sleep(requestEvery)
		}
		for _, tr := range transports {
			sent, _ := tr.Counters()
			liveMsgs += sent
		}
	}
	return Fig8ValidationResult{
		SimMessages:  simMsgs,
		LiveMessages: liveMsgs,
		Nodes:        n,
		Duration:     duration,
	}, nil
}
