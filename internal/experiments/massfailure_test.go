package experiments

import (
	"testing"
	"time"
)

func TestMassFailureRecovery(t *testing.T) {
	cfg := DefaultMassFailureConfig()
	cfg.Nodes = 60
	cfg.Deadline = 20 * time.Minute
	r := MassFailure(cfg)
	t.Logf("killed %d/%d; recovered=%v in %v with %d leaf msgs",
		r.Killed, r.Nodes, r.Recovered, r.RecoveryTime, r.ProbeMessages)
	if !r.Recovered {
		t.Fatal("overlay did not heal from a 50% correlated failure")
	}
	if r.RecoveryTime > 10*time.Minute {
		t.Fatalf("recovery took %v", r.RecoveryTime)
	}
}

func TestMassFailureRecoveryLarger(t *testing.T) {
	if testing.Short() {
		t.Skip("larger soak")
	}
	cfg := DefaultMassFailureConfig() // 120 nodes, 50% killed
	cfg.Deadline = 20 * time.Minute
	r := MassFailure(cfg)
	t.Logf("killed %d/%d; recovered=%v in %v", r.Killed, r.Nodes, r.Recovered, r.RecoveryTime)
	if !r.Recovered {
		t.Fatal("120-node overlay did not heal from a 50% correlated failure")
	}
}
