package experiments

import (
	"testing"
	"time"

	"mspastry/internal/overload"
)

// TestOverloadDegradesGracefully pins the headline overload claim: at 5×
// the base application load — past the service model's comfortable
// region — lookup success stays within 80% of the 1× baseline, and the
// liveness lane is never shed (the failure detector keeps its traffic
// under overload, so the overlay degrades instead of collapsing).
func TestOverloadDegradesGracefully(t *testing.T) {
	if testing.Short() {
		t.Skip("two 24-minute simulated overload runs")
	}
	s := Quick()
	cfg := DefaultOverloadConfig(s)
	cfg.Nodes = 40
	cfg.Duration = 24 * time.Minute
	cfg.Multiples = []float64{1, 5}
	r := Overload(cfg)

	base, loaded := r.Points[0], r.Points[1]
	t.Logf("1x: success=%.4f sheds=%v | 5x: success=%.4f sheds=%v budgetHit=%d brkOpens=%d",
		base.SuccessRate, base.Res.ShedByLane,
		loaded.SuccessRate, loaded.Res.ShedByLane,
		loaded.Res.Counters.RetryBudgetExhausted, loaded.Res.Counters.BreakerOpens)

	if ratio := r.DegradationRatio(1, 5); ratio < 0.8 {
		t.Fatalf("success at 5x degraded to %.2f of baseline (want >= 0.80)", ratio)
	}
	if got := loaded.Res.ShedByLane[overload.LaneLiveness]; got != 0 {
		t.Fatalf("liveness lane shed %d messages under overload; must be 0", got)
	}
}
