package experiments

import (
	"time"

	"mspastry/internal/trace"
)

// Fig3Result is the node-failure-rate time series of the paper's Figure 3,
// one series per trace.
type Fig3Result struct {
	Series map[string][]trace.WindowStat
}

// Fig3FailureRates reproduces Figure 3: node failures per node per second
// over time for the Gnutella, OverNet and Microsoft traces, averaged over
// 10-minute windows (1 hour for Microsoft).
func Fig3FailureRates(s Scale) Fig3Result {
	return Fig3Result{Series: map[string][]trace.WindowStat{
		"gnutella":  s.gnutella().Windows(10 * time.Minute),
		"overnet":   s.overnet().Windows(10 * time.Minute),
		"microsoft": s.microsoft().Windows(time.Hour),
	}}
}

// MeanRate returns the average failure rate of a series.
func (r Fig3Result) MeanRate(name string) float64 {
	ws := r.Series[name]
	var sum float64
	var n int
	for _, w := range ws {
		if w.Active > 0 {
			sum += w.FailureRate
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// PeakToTrough returns max/min of the positive failure rates, a measure of
// the daily/weekly pattern the figure shows.
func (r Fig3Result) PeakToTrough(name string) float64 {
	ws := r.Series[name]
	lo, hi := 0.0, 0.0
	for _, w := range ws {
		if w.FailureRate <= 0 {
			continue
		}
		if lo == 0 || w.FailureRate < lo {
			lo = w.FailureRate
		}
		if w.FailureRate > hi {
			hi = w.FailureRate
		}
	}
	if lo == 0 {
		return 0
	}
	return hi / lo
}

// Rows summarises the three series for printing.
func (r Fig3Result) Rows() []Row {
	var rows []Row
	for _, name := range []string{"gnutella", "overnet", "microsoft"} {
		rows = append(rows, Row{Label: name, Values: map[string]float64{
			"meanRate":     r.MeanRate(name),
			"peakToTrough": r.PeakToTrough(name),
		}})
	}
	return rows
}
