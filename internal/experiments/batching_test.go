package experiments

import (
	"math"
	"testing"
	"time"
)

// The acceptance bar for the wire-layer coalescing change: on a seeded
// reduced-scale run of the aggressive-failure-detection workload, the
// coalescing windows remove at least a quarter of control datagrams while
// leaving lookup success and routing unchanged (batching repackages
// messages, it must not alter what the protocol does).
//
// The two arms share seed and workload but consume the simulator's random
// stream differently (the coalescer path schedules extra flush events), so
// per-lookup outcomes are compared as rates with tight tolerances rather
// than count-for-count.
func TestBatchingReducesControlDatagrams(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated A/B run")
	}
	s := Quick()
	s.PoissonNodes = 60
	s.PoissonDuration = 30 * time.Minute
	s.MaxDuration = 30 * time.Minute
	s.SetupRamp = 2 * time.Minute

	r := Batching(s, 30*time.Millisecond, 2500*time.Millisecond)
	off, on := r.Off.Totals, r.On.Totals

	if got := r.ControlDatagramReduction(); got < 0.25 {
		t.Errorf("coalescing removed only %.1f%% of control datagrams, want >= 25%%\noff=%.3f/n/s on=%.3f/n/s",
			got*100, off.ControlDatagramsPerNodeSec, on.ControlDatagramsPerNodeSec)
	}

	// Unchanged lookup success: same delivery rate and raw loss, to within
	// half a percent.
	rate := func(delivered, issued int) float64 {
		if issued == 0 {
			return 0
		}
		return float64(delivered) / float64(issued)
	}
	if d := math.Abs(rate(on.Delivered, on.Issued) - rate(off.Delivered, off.Issued)); d > 0.005 {
		t.Errorf("lookup success changed by %.3f: off %d/%d, on %d/%d",
			d, off.Delivered, off.Issued, on.Delivered, on.Issued)
	}
	if d := math.Abs(on.LossRate - off.LossRate); d > 0.005 {
		t.Errorf("loss rate changed: off=%.4f on=%.4f", off.LossRate, on.LossRate)
	}
	// Unchanged routing: hops may wiggle only within noise (delivery timing
	// shifts by at most the window; routes are decided before the wire
	// layer sees the message).
	if d := math.Abs(on.MeanHops - off.MeanHops); d > 0.05 {
		t.Errorf("hops changed: off=%.3f on=%.3f", off.MeanHops, on.MeanHops)
	}

	// Coalescing must actually batch: bytes saved and fewer total datagrams.
	if on.CoalescedSavedBytes == 0 {
		t.Error("no bytes saved by coalescing")
	}
	if on.DatagramsPerNodeSec >= off.DatagramsPerNodeSec {
		t.Errorf("total datagrams did not drop: off=%.3f on=%.3f",
			off.DatagramsPerNodeSec, on.DatagramsPerNodeSec)
	}
}
