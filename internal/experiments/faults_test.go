package experiments

import (
	"reflect"
	"testing"
	"time"
)

func TestPartitionHealShape(t *testing.T) {
	s := tiny()
	r := PartitionHeal(s, 90*time.Second)
	if !r.Recovery.Repaired {
		t.Fatal("overlay did not repair after the partition healed")
	}
	if ttr := r.Recovery.TimeToRepair(); ttr <= 0 || ttr > partitionTail {
		t.Fatalf("time-to-repair = %v, want finite and within the tail", ttr)
	}
	ph := r.Result.Phases
	t.Logf("phases: before=%+v during=%+v after=%+v ttr=%v",
		ph.Before, ph.During, ph.After, r.Recovery.TimeToRepair())
	if ph.During.Issued == 0 || ph.After.Issued == 0 {
		t.Fatalf("phase accounting incomplete: %+v", ph)
	}
	// The dependability headline: once the partition heals and the ring
	// repairs, no lookup may be delivered at a wrong root.
	if ph.After.Incorrect != 0 {
		t.Fatalf("%d incorrect deliveries after the heal", ph.After.Incorrect)
	}
	// The split must actually bite: each side serves the other side's keys
	// at its own closest node (split-brain), so cross-cut lookups are
	// misdelivered or lost while the partition lasts.
	if ph.During.Incorrect == 0 && ph.During.Lost == 0 {
		t.Fatal("the partition left no trace on lookups issued during it")
	}
}

func TestPartitionHealDeterministic(t *testing.T) {
	s := tiny()
	a := PartitionHeal(s, time.Minute)
	b := PartitionHeal(s, time.Minute)
	if !reflect.DeepEqual(a.Rows(), b.Rows()) {
		t.Fatalf("same seed produced different rows:\n%v\nvs\n%v", a.Rows(), b.Rows())
	}
	if a.Recovery != b.Recovery {
		t.Fatalf("recovery diverged: %+v vs %+v", a.Recovery, b.Recovery)
	}
}

func TestJitterFalsePositivesGap(t *testing.T) {
	if testing.Short() {
		t.Skip("half-hour spike sweep soak")
	}
	s := tiny()
	spike := time.Second
	r := JitterFalsePositives(s, []time.Duration{spike})
	hold := r.Hold[spike].Totals
	naive := r.Naive[spike].Totals
	gap := r.GapOrders(spike)
	t.Logf("hold: issued=%d incorrect=%d (%.3g); naive: issued=%d incorrect=%d (%.3g); gap=%.2f orders",
		hold.Issued, hold.Incorrect, hold.IncorrectRate,
		naive.Issued, naive.Incorrect, naive.IncorrectRate, gap)
	if naive.Incorrect == 0 {
		t.Fatal("delay spikes caused no incorrect deliveries under naive delivery")
	}
	// The paper's consistency claim: hold-on-suspect keeps incorrect
	// deliveries at least three orders of magnitude below naive delivery.
	if gap < 3 {
		t.Fatalf("gap = %.2f orders, want >= 3", gap)
	}
	if hold.IncorrectRate > 1e-3 {
		t.Fatalf("hold-on-suspect incorrect rate %.3g too high", hold.IncorrectRate)
	}
}
