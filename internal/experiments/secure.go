package experiments

import (
	"fmt"
	"time"

	"mspastry/internal/harness"
	"mspastry/internal/netmodel"
	"mspastry/internal/trace"
)

// SecureConfig parameterises the Byzantine-routing experiment: a static
// overlay (no churn, no network loss — the adversary is the only fault)
// is swept over growing malicious fractions, with secure routing off and
// on at each point, so the two curves separate the attack's damage from
// the defense's recovery.
type SecureConfig struct {
	// Nodes is the overlay population (all active at time zero).
	Nodes int
	// Duration is the measured run length.
	Duration time.Duration
	// LookupRate is application lookups per second per node. Above the
	// paper's 0.01/s so each point accumulates enough lookups to resolve
	// success-rate differences of a percent.
	LookupRate float64
	// Fracs are the malicious fractions to sweep (e.g. 0, 0.05, 0.1,
	// 0.2, 0.3).
	Fracs []float64
	// Behaviors selects the attacks; zero means netmodel.AdvAll.
	Behaviors netmodel.Behavior
	// TopoDiv divides the topology size, as in Scale.
	TopoDiv int
	// SetupRamp and Seed mirror the harness fields.
	SetupRamp time.Duration
	Seed      int64
}

// DefaultSecureConfig returns a configuration scaled from s.
func DefaultSecureConfig(s Scale) SecureConfig {
	nodes := maxInt(30, s.PoissonNodes/5)
	dur := s.PoissonDuration / 2
	if dur < 20*time.Minute {
		dur = 20 * time.Minute
	}
	if s.MaxDuration > 0 && dur > s.MaxDuration {
		dur = s.MaxDuration
	}
	return SecureConfig{
		Nodes:      nodes,
		Duration:   dur,
		LookupRate: 0.05,
		Fracs:      []float64{0, 0.05, 0.1, 0.2, 0.3},
		TopoDiv:    s.TopoDiv,
		SetupRamp:  s.SetupRamp,
		Seed:       s.Seed,
	}
}

// SecurePoint is the outcome at one (malicious fraction, defense) point.
type SecurePoint struct {
	Frac float64
	// Defended reports whether secure routing was on.
	Defended bool
	// SuccessRate is the fraction of issued lookups delivered (1 − loss).
	SuccessRate float64
	Res         harness.Result
}

// SecureResult is the sweep across malicious fractions.
type SecureResult struct {
	Config SecureConfig
	Points []SecurePoint
}

// Secure runs the sweep: two harness runs (defenses off, defenses on)
// per malicious fraction over the same trace, topology shape and seed.
func Secure(cfg SecureConfig) SecureResult {
	res := SecureResult{Config: cfg}
	tr := secureTrace(cfg)
	for _, frac := range cfg.Fracs {
		for _, defended := range []bool{false, true} {
			topo, err := harness.BuildTopology("gatech", maxInt(1, cfg.TopoDiv), cfg.Seed)
			if err != nil {
				panic(err)
			}
			hc := harness.DefaultConfig(topo, tr)
			hc.Pastry.L = 16
			hc.Pastry.SecureRouting = defended
			hc.LookupRate = cfg.LookupRate
			hc.MaliciousFraction = frac
			hc.MaliciousBehaviors = cfg.Behaviors
			hc.SetupRamp = cfg.SetupRamp
			hc.Seed = cfg.Seed
			r := harness.Run(hc)
			res.Points = append(res.Points, SecurePoint{
				Frac:        frac,
				Defended:    defended,
				SuccessRate: 1 - r.Totals.LossRate,
				Res:         r,
			})
		}
	}
	return res
}

// secureTrace builds the static trace: everyone active, no churn. Churn
// under attack is a separate question; this experiment isolates the
// adversary.
func secureTrace(cfg SecureConfig) *trace.Trace {
	tr := &trace.Trace{
		Name:     "secure-static",
		Duration: cfg.Duration,
		Nodes:    cfg.Nodes,
	}
	for i := 0; i < cfg.Nodes; i++ {
		tr.Initial = append(tr.Initial, i)
	}
	return tr
}

// point finds the sweep point at (frac, defended), nil if absent.
func (r SecureResult) point(frac float64, defended bool) *SecurePoint {
	for i := range r.Points {
		if r.Points[i].Frac == frac && r.Points[i].Defended == defended {
			return &r.Points[i]
		}
	}
	return nil
}

// SuccessAt returns the success rate at (frac, defended), 0 if the point
// was not swept.
func (r SecureResult) SuccessAt(frac float64, defended bool) float64 {
	if p := r.point(frac, defended); p != nil {
		return p.SuccessRate
	}
	return 0
}

// RestorationRatio is the headline defense number: defended success at
// frac over defended success with no adversary (1.0 = full recovery).
// Zero if either point is missing.
func (r SecureResult) RestorationRatio(frac float64) float64 {
	base := r.point(0, true)
	at := r.point(frac, true)
	if base == nil || at == nil || base.SuccessRate == 0 {
		return 0
	}
	return at.SuccessRate / base.SuccessRate
}

// FalsePositiveRate is the routing failure test's false-positive rate
// with no adversary: failed tests over evaluated reports at the defended
// f=0 point. The paper's dependability argument rests on this being ~0.
func (r SecureResult) FalsePositiveRate() float64 {
	p := r.point(0, true)
	if p == nil {
		return 0
	}
	total := p.Res.Counters.SecureTestPass + p.Res.Counters.SecureTestFail
	if total == 0 {
		return 0
	}
	return float64(p.Res.Counters.SecureTestFail) / float64(total)
}

// SecureCols returns the column set for Rows.
func SecureCols() []string {
	return []string{"success", "reports", "testFail", "rounds", "sends", "distrust", "claims", "forged", "advDrops"}
}

// Rows renders one row per sweep point.
func (r SecureResult) Rows() []Row {
	var rows []Row
	for _, p := range r.Points {
		mode := "off"
		if p.Defended {
			mode = "on"
		}
		rows = append(rows, Row{
			Label: fmt.Sprintf("f=%.2f %s", p.Frac, mode),
			Values: map[string]float64{
				"success":  p.SuccessRate,
				"reports":  float64(p.Res.Counters.SecureReports),
				"testFail": float64(p.Res.Counters.SecureTestFail),
				"rounds":   float64(p.Res.Counters.SecureRedundantRounds),
				"sends":    float64(p.Res.Counters.SecureRedundantSends),
				"distrust": float64(p.Res.Counters.SecureDistrusted),
				"claims":   float64(p.Res.Adversary.RootClaims),
				"forged":   float64(p.Res.Adversary.ReportsForged),
				"advDrops": float64(p.Res.DropsByCause[netmodel.DropAdversary]),
			},
		})
	}
	return rows
}
