package experiments

import (
	"fmt"

	"mspastry/internal/harness"
)

// Fig6Result reproduces Figure 6: RDP, control traffic, lookup loss rate
// and incorrect delivery rate as the uniform network message loss rate
// varies from 0% to 5%. Paper shape: per-hop acks keep the lookup loss
// rate in the 1e-5 regime even at 5% link loss; incorrect deliveries stay
// zero up to ~1% and reach only ~1.6e-5 at 5%; RDP and control traffic
// increase slightly.
type Fig6Result struct {
	LossRates []float64
	Results   map[float64]harness.Result
}

// NetworkLossRates is the paper's sweep.
var networkLossRates = []float64{0, 0.01, 0.02, 0.03, 0.04, 0.05}

// Fig6NetworkLoss runs the sweep on the Gnutella trace over GATech.
func Fig6NetworkLoss(s Scale) Fig6Result {
	out := Fig6Result{Results: make(map[float64]harness.Result)}
	for _, loss := range networkLossRates {
		out.LossRates = append(out.LossRates, loss)
		cfg := s.baseConfig("gatech", s.gnutella())
		cfg.NetworkLoss = loss
		out.Results[loss] = harness.Run(cfg)
	}
	return out
}

// Rows renders the sweep.
func (r Fig6Result) Rows() []Row {
	var rows []Row
	for _, loss := range r.LossRates {
		rows = append(rows, totalsRow(fmt.Sprintf("netloss=%.0f%%", loss*100), r.Results[loss]))
	}
	return rows
}
