package experiments

import (
	"testing"
	"time"

	"mspastry/internal/harness"
)

// tiny returns the smallest scale that still exhibits the paper's
// qualitative behaviours, for shape-assertion tests.
func tiny() Scale {
	return Scale{
		TopoDiv:         8,
		TraceDiv:        48,
		MaxDuration:     40 * time.Minute,
		PoissonNodes:    80,
		PoissonDuration: 40 * time.Minute,
		SetupRamp:       3 * time.Minute,
		Seed:            1,
	}
}

func TestFig3Shapes(t *testing.T) {
	r := Fig3FailureRates(tiny())
	// Microsoft's failure rate is an order of magnitude below Gnutella's.
	gn, ms := r.MeanRate("gnutella"), r.MeanRate("microsoft")
	if gn < 5*ms {
		t.Fatalf("gnutella %.3g not well above microsoft %.3g", gn, ms)
	}
	if len(r.Rows()) != 3 {
		t.Fatal("missing trace rows")
	}
}

func TestAblationShape(t *testing.T) {
	s := tiny()
	r := AblationProbingAcks(s)
	neither := r.Results["neither"].Totals.LossRate
	both := r.Results["both"].Totals.LossRate
	acks := r.Results["acks-only"].Totals.LossRate
	t.Logf("loss: neither=%.3g acks=%.3g both=%.3g", neither, acks, both)
	// The paper's headline: without both mechanisms a large fraction of
	// lookups is lost; with per-hop acks loss collapses.
	if neither < 10*both+0.005 {
		t.Fatalf("ablation shape lost: neither=%.3g both=%.3g", neither, both)
	}
	if both > 0.01 {
		t.Fatalf("loss with both mechanisms = %.3g, want <1%%", both)
	}
	if acks > 0.01 {
		t.Fatalf("loss with acks only = %.3g, want <1%%", acks)
	}
}

func TestSelfTuningTracksTarget(t *testing.T) {
	s := tiny()
	// Faster churn makes the raw loss measurable in a short run.
	r := SelfTuning(s)
	l5 := r.Results[0.05].Totals.LossRate
	l1 := r.Results[0.01].Totals.LossRate
	t.Logf("raw loss at 5%% target: %.3g; at 1%% target: %.3g", l5, l1)
	// Tighter target must yield lower raw loss; the 5% target should land
	// within a small factor of 5% (paper measured 5.3%).
	if l1 >= l5 && l5 > 0 {
		t.Fatalf("1%% target (%.3g) not below 5%% target (%.3g)", l1, l5)
	}
	if l5 > 0.15 {
		t.Fatalf("raw loss %.3g far above the 5%% target", l5)
	}
	c5 := r.Results[0.05].Totals.ControlPerNodeSec
	c1 := r.Results[0.01].Totals.ControlPerNodeSec
	if c1 <= c5 {
		t.Fatalf("tighter target should cost more control traffic: %.3g vs %.3g", c1, c5)
	}
}

func TestSuppressionGrowsWithTraffic(t *testing.T) {
	r := Suppression(tiny())
	idle, busy := r.SuppressedFraction[0], r.SuppressedFraction[1]
	t.Logf("suppressed fraction: idle=%.2f busy=%.2f", idle, busy)
	if busy <= idle {
		t.Fatalf("suppression did not grow with lookup traffic: %.2f vs %.2f", busy, idle)
	}
	// The paper reports >70% of probes suppressed at 1 lookup/s/node.
	if busy < 0.5 {
		t.Fatalf("suppressed fraction at 1 lookup/s = %.2f, want > 0.5", busy)
	}
}

func TestStructuredHeartbeatsCheaper(t *testing.T) {
	r := HeartbeatAblation(tiny())
	st := r.Structured.Totals.ControlPerNodeSec
	ap := r.AllPairs.Totals.ControlPerNodeSec
	t.Logf("control: structured=%.3f all-pairs=%.3f", st, ap)
	if st >= ap {
		t.Fatalf("structured heartbeats (%.3f) not cheaper than all-pairs (%.3f)", st, ap)
	}
}

func TestSessionTimeControlShape(t *testing.T) {
	// Shorter sessions (more churn) must cost more control traffic
	// (Figure 5 centre). Compare two points to keep the test fast.
	s := tiny()
	short := harness.Run(s.baseConfig("gatech", s.poisson(15*time.Minute)))
	long := harness.Run(s.baseConfig("gatech", s.poisson(240*time.Minute)))
	t.Logf("control: 15m=%.3f 240m=%.3f; Trt: 15m=%v 240m=%v",
		short.Totals.ControlPerNodeSec, long.Totals.ControlPerNodeSec,
		short.TrtMedian, long.TrtMedian)
	if short.Totals.ControlPerNodeSec <= long.Totals.ControlPerNodeSec {
		t.Fatal("control traffic did not grow with churn")
	}
	// Self-tuning must probe faster when churn is higher.
	if short.TrtMedian >= long.TrtMedian {
		t.Fatalf("self-tuned Trt did not shrink with churn: %v vs %v",
			short.TrtMedian, long.TrtMedian)
	}
}

func TestNetworkLossShape(t *testing.T) {
	s := tiny()
	clean := harness.Run(s.baseConfig("gatech", s.gnutella()))
	cfg := s.baseConfig("gatech", s.gnutella())
	cfg.NetworkLoss = 0.05
	lossy := harness.Run(cfg)
	t.Logf("clean: %v", clean.Totals)
	t.Logf("lossy: %v", lossy.Totals)
	if clean.Totals.IncorrectRate != 0 {
		t.Fatal("incorrect deliveries without link loss (paper: zero)")
	}
	// Per-hop acks keep lookup loss tiny even at 5% link loss.
	if lossy.Totals.LossRate > 0.01 {
		t.Fatalf("lookup loss %.3g at 5%% link loss, want <1%%", lossy.Totals.LossRate)
	}
	if lossy.Totals.RDP < clean.Totals.RDP {
		t.Log("note: lossy RDP below clean RDP (noise at this scale)")
	}
}

func TestFig8WeekPattern(t *testing.T) {
	cfg := DefaultFig8Config()
	cfg.Days = 2
	cfg.Machines = 30
	r := Fig8Squirrel(cfg)
	if r.Requests == 0 {
		t.Fatal("no web requests replayed")
	}
	// Daytime windows must carry clearly more traffic than night windows.
	var day, night float64
	var dayN, nightN int
	for _, w := range r.Windows {
		hour := w.Start.Hours() - float64(int(w.Start.Hours())/24*24)
		switch {
		case hour >= 10 && hour < 16:
			day += w.TotalPerNodeSec
			dayN++
		case hour >= 0 && hour < 6:
			night += w.TotalPerNodeSec
			nightN++
		}
	}
	if dayN == 0 || nightN == 0 {
		t.Fatal("window classification failed")
	}
	day /= float64(dayN)
	night /= float64(nightN)
	t.Logf("traffic: day=%.4f night=%.4f msgs/node/s", day, night)
	if day <= night {
		t.Fatal("no daily traffic pattern in the Squirrel replay")
	}
	// The cache must dedupe: origin fetches well below requests.
	if r.OriginFetches*2 > r.Requests {
		t.Fatalf("cache ineffective: %d fetches for %d requests", r.OriginFetches, r.Requests)
	}
}

func TestFig5JoinLatencyRegime(t *testing.T) {
	s := tiny()
	r := Fig5JoinLatency(s)
	p50 := r.Percentile(30*time.Minute, 0.5)
	p99 := r.Percentile(30*time.Minute, 0.99)
	t.Logf("join latency: p50=%v p99=%v", p50, p99)
	// Paper Figure 5 right: joins complete within tens of seconds.
	if p50 <= 0 || p50 > 40*time.Second {
		t.Fatalf("median join latency %v outside the paper's regime", p50)
	}
	if p99 > 3*time.Minute {
		t.Fatalf("p99 join latency %v implausible", p99)
	}
}

func TestFig8ValidationAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("live UDP validation")
	}
	r, err := Fig8Validation(6, 8*time.Second, 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("sim=%d live=%d ratio=%.2f", r.SimMessages, r.LiveMessages, r.Ratio())
	if r.Ratio() < 0.6 || r.Ratio() > 1.6 {
		t.Fatalf("simulator and deployment disagree: ratio %.2f", r.Ratio())
	}
}
