package experiments

import (
	"testing"
	"time"
)

// TestHotspotCachingRelievesRoot pins the tentpole acceptance criteria
// at reduced scale: under a zipf(1.0) read workload the hot key's root
// runs its bounded service queue near saturation with caching off, and
// path caching must cut that endpoint's mean load factor at least 2x
// without losing lookups — while every completed read stays inside the
// one-sweep staleness bound and per-reader monotonicity holds exactly.
func TestHotspotCachingRelievesRoot(t *testing.T) {
	cfg := HotspotConfig{
		Nodes:       32,
		Keys:        32,
		ZipfS:       1.0,
		GetRate:     4,
		PutInterval: 20 * time.Second,
		Duration:    150 * time.Second,
		CacheSize:   128,
		Seed:        1,
	}
	res := Hotspot(Scale{Seed: 1}, cfg)

	if r := res.Relief(); r < 2 {
		t.Errorf("hot root relief %.2fx, want >= 2x (off %.3f on %.3f at endpoint %d)",
			r, res.HotLoad(res.OffStable), res.HotLoad(res.OnStable), res.HotIndex)
	}
	if on, off := res.OnStable.Success(), res.OffStable.Success(); on < off-0.02 {
		t.Errorf("stable lookup success regressed with caching: off %.3f on %.3f", off, on)
	}
	if on, off := res.OnChurn.Success(), res.OffChurn.Success(); on < off-0.02 {
		t.Errorf("churn lookup success regressed with caching: off %.3f on %.3f", off, on)
	}
	if res.OnStable.HitsLocal+res.OnStable.HitsRemote+res.OnStable.Serves == 0 {
		t.Error("caching-on run produced no cache activity")
	}
	if res.OnStable.Deposits == 0 {
		t.Error("caching-on run deposited no entries on route hops")
	}
	// In a stable network the subsystem's staleness claim is exact: no
	// read may return a value superseded more than a sweep interval
	// (plus delivery grace) before it was issued, cached or not.
	for _, mode := range []struct {
		name string
		run  HotspotRun
	}{
		{"off/stable", res.OffStable}, {"on/stable", res.OnStable},
	} {
		if mode.run.StaleBeyondBound != 0 {
			t.Errorf("%s: %d reads returned values staler than the sweep bound",
				mode.name, mode.run.StaleBeyondBound)
		}
	}
	// Monotonicity: the caching-on stable run must be exactly clean —
	// the version-floor machinery refuses cached replies below a version
	// the reader already saw. The caching-off baseline is only guarded
	// loosely: under saturation a false suspicion can reroute a lookup
	// to a replication-lagged replica, and that weak consistency
	// predates this subsystem.
	if n := res.OnStable.MonotonicViolations; n != 0 {
		t.Errorf("on/stable: %d sequential reads went backwards for a reader", n)
	}
	if n, lim := res.OffStable.MonotonicViolations, res.OffStable.Gets/200; n > lim {
		t.Errorf("off/stable: %d of %d sequential reads went backwards, want <= %d",
			n, res.OffStable.Gets, lim)
	}
	// Under churn the base DHT can lose an acked write outright (root
	// crashes before replicating it), which the audit counts as stale
	// until the key's next rewrite. That is durability loss predating
	// this subsystem, not cache staleness; the guard here is that
	// caching does not amplify it — the chained-hearsay bug this test
	// originally caught turned ~10% of reads stale.
	for _, mode := range []struct {
		name string
		run  HotspotRun
	}{
		{"off/churn", res.OffChurn}, {"on/churn", res.OnChurn},
	} {
		if lim := mode.run.Gets / 100; mode.run.StaleBeyondBound > lim {
			t.Errorf("%s: %d of %d reads staler than the sweep bound, want <= %d",
				mode.name, mode.run.StaleBeyondBound, mode.run.Gets, lim)
		}
		if lim := mode.run.Gets / 200; mode.run.MonotonicViolations > lim {
			t.Errorf("%s: %d of %d sequential reads went backwards, want <= %d",
				mode.name, mode.run.MonotonicViolations, mode.run.Gets, lim)
		}
	}
	for _, mode := range []struct {
		name string
		run  HotspotRun
	}{
		{"off/stable", res.OffStable}, {"on/stable", res.OnStable},
		{"off/churn", res.OffChurn}, {"on/churn", res.OnChurn},
	} {
		if mode.run.Gets == 0 {
			t.Errorf("%s: no reads issued", mode.name)
		}
	}
	// The caching-off runs must not touch any cache machinery: off is
	// the bit-identical baseline.
	if n := res.OffStable.HitsLocal + res.OffStable.HitsRemote + res.OffStable.Serves +
		res.OffStable.Deposits + res.OffStable.Invalidations; n != 0 {
		t.Errorf("caching-off run recorded %d cache events", n)
	}
}
