package experiments

import "testing"

// TestAntiEntropyReducesMaintenanceBytes runs the sweep-bandwidth
// comparison at a reduced shape (the bench runs the full 100-node,
// 1,000-object version) and asserts the acceptance bar: Merkle
// anti-entropy spends at least 5x fewer maintenance bytes than the
// full-push baseline, under churn, while still doing real repair work.
func TestAntiEntropyReducesMaintenanceBytes(t *testing.T) {
	res := AntiEntropy(Scale{Seed: 1}, 24, 240)

	if res.Baseline.MaintBytes == 0 {
		t.Fatal("baseline run recorded no maintenance traffic")
	}
	if res.AntiEntropy.MaintBytes == 0 {
		t.Fatal("anti-entropy run recorded no maintenance traffic")
	}
	if res.AntiEntropy.SyncRounds == 0 {
		t.Error("no anti-entropy rounds ran")
	}
	if res.AntiEntropy.SyncClean == 0 {
		t.Error("no round found replicas already converged")
	}
	if got := res.Reduction(); got < 5 {
		t.Errorf("maintenance reduction = %.1fx, want >= 5x\nbaseline: %+v\nanti-entropy: %+v",
			got, res.Baseline, res.AntiEntropy)
	}
}
