package experiments

import (
	"fmt"
	"time"

	"mspastry/internal/harness"
	"mspastry/internal/netmodel"
	"mspastry/internal/overload"
	"mspastry/internal/trace"
)

// OverloadConfig parameterises the overload / graceful-degradation
// experiment: a fixed overlay with bounded per-node service capacity is
// driven at growing multiples of a base lookup rate, with a correlated
// churn burst mid-run (the worst case: repair traffic competing with
// application load on saturated queues).
type OverloadConfig struct {
	// Nodes is the overlay population (all active at time zero).
	Nodes int
	// Duration is the measured run length.
	Duration time.Duration
	// BaseLookupRate is the 1× application load in lookups per second
	// per node. It is deliberately far above the paper's 0.01/s so the
	// load multiples actually stress the service model.
	BaseLookupRate float64
	// Multiples are the load factors to sweep (e.g. 1, 2, 5, 10).
	Multiples []float64
	// Service is the per-node capacity model applied to every endpoint.
	Service netmodel.ServiceModel
	// BurstFraction of the population crashes halfway through the run
	// and rejoins two minutes later.
	BurstFraction float64
	// TopoDiv divides the topology size, as in Scale.
	TopoDiv int
	// SetupRamp and Seed mirror the harness fields.
	SetupRamp time.Duration
	Seed      int64
}

// DefaultOverloadConfig returns a configuration scaled from s: capacity
// is set so the 1× load runs comfortably, ~5× approaches saturation and
// ~10× is firmly past it.
func DefaultOverloadConfig(s Scale) OverloadConfig {
	nodes := maxInt(30, s.PoissonNodes/5)
	dur := s.PoissonDuration / 2
	if dur < 20*time.Minute {
		dur = 20 * time.Minute
	}
	if s.MaxDuration > 0 && dur > s.MaxDuration {
		dur = s.MaxDuration
	}
	return OverloadConfig{
		Nodes:          nodes,
		Duration:       dur,
		BaseLookupRate: 1.0,
		Multiples:      []float64{1, 2, 5, 10},
		Service:        netmodel.ServiceModel{QueueLimit: 32, Rate: 50},
		BurstFraction:  0.2,
		TopoDiv:        s.TopoDiv,
		SetupRamp:      s.SetupRamp,
		Seed:           s.Seed,
	}
}

// OverloadPoint is the outcome at one load multiple.
type OverloadPoint struct {
	Multiple float64
	// SuccessRate is the fraction of issued lookups delivered (1 − loss).
	SuccessRate float64
	Res         harness.Result
}

// OverloadResult is the sweep across load multiples.
type OverloadResult struct {
	Config OverloadConfig
	Points []OverloadPoint
}

// Overload runs the sweep: one harness run per load multiple over the
// same trace, topology shape and seed, with the service-capacity model
// bounding every node's receive path.
func Overload(cfg OverloadConfig) OverloadResult {
	res := OverloadResult{Config: cfg}
	tr := overloadTrace(cfg)
	for _, mult := range cfg.Multiples {
		topo, err := harness.BuildTopology("gatech", maxInt(1, cfg.TopoDiv), cfg.Seed)
		if err != nil {
			panic(err)
		}
		hc := harness.DefaultConfig(topo, tr)
		hc.Pastry.L = 16
		// The default 10ms RTO floor is tuned for an unloaded network
		// where delay is pure propagation. With bounded service capacity
		// the RTO floor must exceed the worst-case *round-trip* queueing
		// delay — the hop waits in the peer's inbound queue and its ack
		// waits in ours, so up to 2 × QueueLimit/Rate — or a hop through
		// a backlogged peer times out while its message (or ack) is
		// still waiting in line: the duplicates re-fill the queues,
		// which re-times-out the next hops — a self-sustaining storm
		// that collapses the overlay at a few percent utilisation (and,
		// by Karn's rule, the RTT estimator never sees the late acks
		// that would teach it better). With a queue-tolerant floor a
		// timeout again means what the protocol assumes: the message
		// was shed or the peer is dead. Here 2 × 32/50 = 1.28s.
		hc.Pastry.MinRTO = 1500 * time.Millisecond
		// The default retry budget (2/s per peer) is sized for one sender.
		// Here every node in the overlay can converge on the same hot
		// peer, so the per-sender rate must keep the aggregate
		// (Nodes × rate) below the peer's service capacity, or the
		// retransmissions alone re-saturate it.
		hc.Pastry.RetryBudgetRate = 0.2
		hc.Pastry.RetryBudgetBurst = 2
		hc.LookupRate = cfg.BaseLookupRate * mult
		hc.Service = cfg.Service
		hc.SetupRamp = cfg.SetupRamp
		hc.Seed = cfg.Seed
		r := harness.Run(hc)
		res.Points = append(res.Points, OverloadPoint{
			Multiple:    mult,
			SuccessRate: 1 - r.Totals.LossRate,
			Res:         r,
		})
	}
	return res
}

// overloadTrace builds the burst trace: everyone starts active, a
// BurstFraction crashes at the midpoint and rejoins two minutes later.
func overloadTrace(cfg OverloadConfig) *trace.Trace {
	tr := &trace.Trace{
		Name:     "overload-burst",
		Duration: cfg.Duration,
		Nodes:    cfg.Nodes,
	}
	for i := 0; i < cfg.Nodes; i++ {
		tr.Initial = append(tr.Initial, i)
	}
	burstAt := cfg.Duration / 2
	k := int(float64(cfg.Nodes) * cfg.BurstFraction)
	for i := 0; i < k; i++ {
		tr.Events = append(tr.Events, trace.Event{At: burstAt, Node: i, Kind: trace.Leave})
	}
	rejoin := burstAt + 2*time.Minute
	if rejoin < cfg.Duration {
		for i := 0; i < k; i++ {
			tr.Events = append(tr.Events, trace.Event{At: rejoin, Node: i, Kind: trace.Join})
		}
	}
	return tr
}

// DegradationRatio returns success(at)/success(baseline), the headline
// graceful-degradation number (1.0 = no degradation). Zero if either
// point is missing.
func (r OverloadResult) DegradationRatio(baseline, at float64) float64 {
	var base, loaded *OverloadPoint
	for i := range r.Points {
		switch r.Points[i].Multiple {
		case baseline:
			base = &r.Points[i]
		case at:
			loaded = &r.Points[i]
		}
	}
	if base == nil || loaded == nil || base.SuccessRate == 0 {
		return 0
	}
	return loaded.SuccessRate / base.SuccessRate
}

// OverloadCols returns the column set for Rows.
func OverloadCols() []string {
	return []string{"success", "loss", "shedLive", "shedCtrl", "shedLkup", "shedBulk", "retx", "budgetHit", "brkOpen"}
}

// Rows renders one row per load multiple.
func (r OverloadResult) Rows() []Row {
	var rows []Row
	for _, p := range r.Points {
		rows = append(rows, Row{
			Label: fmtMultiple(p.Multiple),
			Values: map[string]float64{
				"success":   p.SuccessRate,
				"loss":      p.Res.Totals.LossRate,
				"shedLive":  float64(p.Res.ShedByLane[overload.LaneLiveness]),
				"shedCtrl":  float64(p.Res.ShedByLane[overload.LaneControl]),
				"shedLkup":  float64(p.Res.ShedByLane[overload.LaneLookup]),
				"shedBulk":  float64(p.Res.ShedByLane[overload.LaneBulk]),
				"retx":      float64(p.Res.Counters.Retransmits),
				"budgetHit": float64(p.Res.Counters.RetryBudgetExhausted),
				"brkOpen":   float64(p.Res.Counters.BreakerOpens),
			},
		})
	}
	return rows
}

func fmtMultiple(m float64) string { return fmt.Sprintf("load x%g", m) }
