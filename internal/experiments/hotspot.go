package experiments

import (
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"time"

	"mspastry/internal/dht"
	"mspastry/internal/eventsim"
	"mspastry/internal/id"
	"mspastry/internal/netmodel"
	"mspastry/internal/pastry"
	"mspastry/internal/topology"
)

// The hotspot experiment quantifies the path-caching tentpole: under a
// zipf(s≈1) read workload, a handful of key roots absorb most of the
// lookup traffic, and PR 5's overload machinery can only shed it. With
// hotspot caching on, replies to hot keys are deposited on the route's
// first and penultimate hops and subsequent lookups short-circuit
// there, so the hot root's load factor and the cluster's shed count
// drop while lookup success holds. The experiment runs the same seeded
// cluster four times — caching off/on, each with and without churn —
// with identical workload schedules, and additionally audits every
// completed read against the subsystem's staleness bound (no read may
// return a write superseded more than one sweep interval plus delivery
// grace before the read was issued) and monotonicity (no reader ever
// observes a version older than one it already read).

// hotspotSweep is the anti-entropy sweep interval, which is also the
// cache TTL backstop and therefore the staleness bound under test.
// Short, so the bound is tight and several purge cycles fit in the run.
const hotspotSweep = 15 * time.Second

// hotspotGrace covers end-to-end delivery latency (propagation plus
// bounded-queue delay) when auditing the staleness bound: a write acked
// more than sweep+grace before a read was issued must be visible.
const hotspotGrace = 2 * time.Second

// HotspotConfig shapes the experiment.
type HotspotConfig struct {
	Nodes       int           // cluster size
	Keys        int           // popular key set size
	ZipfS       float64       // zipf exponent over the key set
	GetRate     float64       // reads per second per node
	PutInterval time.Duration // per-key rewrite period (staggered)
	Duration    time.Duration // measurement window
	CacheSize   int           // per-node cache entries in the "on" runs
	Seed        int64
}

// DefaultHotspotConfig derives the bench shape (about 100 nodes at the
// default scale) from s.
func DefaultHotspotConfig(s Scale) HotspotConfig {
	return HotspotConfig{
		Nodes:       maxInt(40, s.PoissonNodes*2/5),
		Keys:        64,
		ZipfS:       1.0,
		GetRate:     2,
		PutInterval: 30 * time.Second,
		Duration:    6 * time.Minute,
		CacheSize:   256,
		Seed:        s.Seed,
	}
}

// HotspotRun is one mode's outcome.
type HotspotRun struct {
	Gets, GetOK, GetNotFound, GetFail uint64
	Retries                           uint64

	HitsLocal, HitsRemote, Serves uint64
	Deposits, Invalidations       uint64
	Purged, StaleRejected         uint64
	Shed                          uint64
	StaleBeyondBound              uint64 // reads older than sweep+grace: must be 0
	MonotonicViolations           uint64 // reads below the reader's floor: must be 0
	Loads                         []float64
	Peaks                         []float64
}

// Success is completed-OK reads over issued reads.
func (r HotspotRun) Success() float64 {
	if r.Gets == 0 {
		return 0
	}
	return float64(r.GetOK) / float64(r.Gets)
}

// HotspotResult holds all four runs.
type HotspotResult struct {
	Nodes, Keys int
	ZipfS       float64
	Window      time.Duration
	// HotIndex is the endpoint with the highest mean load factor in the
	// caching-off stable run: the hot key's root.
	HotIndex int

	OffStable, OnStable HotspotRun
	OffChurn, OnChurn   HotspotRun
}

// HotLoad returns run's mean load factor at the hot endpoint.
func (r HotspotResult) HotLoad(run HotspotRun) float64 {
	if r.HotIndex >= len(run.Loads) {
		return 0
	}
	return run.Loads[r.HotIndex]
}

// Relief is the headline ratio: the hot root's mean load factor with
// caching off over caching on, in the stable runs (the acceptance bar
// is >= 2x).
func (r HotspotResult) Relief() float64 {
	on := r.HotLoad(r.OnStable)
	if on == 0 {
		return 0
	}
	return r.HotLoad(r.OffStable) / on
}

// Hotspot runs the four-way comparison. A zero cfg field takes the
// DefaultHotspotConfig value.
func Hotspot(s Scale, cfg HotspotConfig) HotspotResult {
	def := DefaultHotspotConfig(s)
	if cfg.Nodes == 0 {
		cfg.Nodes = def.Nodes
	}
	if cfg.Keys == 0 {
		cfg.Keys = def.Keys
	}
	if cfg.ZipfS == 0 {
		cfg.ZipfS = def.ZipfS
	}
	if cfg.GetRate == 0 {
		cfg.GetRate = def.GetRate
	}
	if cfg.PutInterval == 0 {
		cfg.PutInterval = def.PutInterval
	}
	if cfg.Duration == 0 {
		cfg.Duration = def.Duration
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = def.CacheSize
	}
	if cfg.Seed == 0 {
		cfg.Seed = s.Seed
	}
	res := HotspotResult{Nodes: cfg.Nodes, Keys: cfg.Keys, ZipfS: cfg.ZipfS, Window: cfg.Duration}
	res.OffStable = hotspotRun(cfg, false, false)
	res.OnStable = hotspotRun(cfg, true, false)
	res.OffChurn = hotspotRun(cfg, false, true)
	res.OnChurn = hotspotRun(cfg, true, true)
	// The hot endpoint is wherever the uncached stable run piled up.
	for i, l := range res.OffStable.Loads {
		if l > res.OffStable.Loads[res.HotIndex] {
			res.HotIndex = i
		}
	}
	return res
}

// hotspotValue encodes a key's write counter into a 64-byte PAST-style
// body; hotspotCounter gets it back.
func hotspotValue(keyIdx, counter uint32) []byte {
	v := make([]byte, 64)
	binary.BigEndian.PutUint32(v[0:4], keyIdx)
	binary.BigEndian.PutUint32(v[4:8], counter)
	return v
}

func hotspotCounter(v []byte) (uint32, bool) {
	if len(v) < 8 {
		return 0, false
	}
	return binary.BigEndian.Uint32(v[4:8]), true
}

// hotspotRun builds a seeded cluster under the bounded service-capacity
// model and drives the zipf read workload plus a staggered rewrite
// schedule over it. All randomness (zipf ranks, requester selection)
// comes from dedicated streams scheduled at deterministic times, so
// every mode sees the identical workload.
func hotspotRun(cfg HotspotConfig, caching, churn bool) HotspotRun {
	sim := eventsim.New(cfg.Seed)
	topo := topology.CorpNet(topology.CorpNetConfig{Hubs: 6, EdgeRouters: 30},
		rand.New(rand.NewSource(cfg.Seed)))
	nw := netmodel.New(sim, topo, 0)
	// The same bounded capacity the overload experiment saturates: the
	// hot root's relief must show up as a load-factor drop, not vanish
	// into an infinite queue.
	nw.SetServiceModel(netmodel.ServiceModel{QueueLimit: 32, Rate: 50})

	pcfg := pastry.DefaultConfig()
	pcfg.L = 8
	pcfg.PNS = false
	// Under queueing delay the default MinRTO misreads backlog as loss
	// and the retransmit storm collapses the run (see overload.go): a
	// full queue adds up to QueueLimit/Rate = 640ms each way.
	pcfg.MinRTO = 1500 * time.Millisecond
	pcfg.RetryBudgetRate = 0.2
	pcfg.RetryBudgetBurst = 2

	dcfg := dht.DefaultConfig()
	dcfg.SweepInterval = hotspotSweep
	if caching {
		dcfg.CacheEntries = cfg.CacheSize
	}

	first := topo.Attach(cfg.Nodes, sim.Rand())
	stores := make([]*dht.Store, 0, cfg.Nodes)
	eps := make([]*netmodel.Endpoint, 0, cfg.Nodes)
	var seedRef pastry.NodeRef
	for i := 0; i < cfg.Nodes; i++ {
		ep := nw.NewEndpoint(first + i)
		ref := pastry.NodeRef{ID: id.Random(sim.Rand()), Addr: ep.Addr()}
		node, err := pastry.NewNode(ref, pcfg, ep, nil)
		if err != nil {
			panic(err)
		}
		ep.Bind(node)
		stores = append(stores, dht.New(node, ep, dcfg))
		eps = append(eps, ep)
		if i == 0 {
			node.Bootstrap()
			seedRef = ref
		} else {
			node.Join(seedRef)
		}
		sim.RunUntil(sim.Now() + 2*time.Second)
	}
	sim.RunUntil(sim.Now() + time.Minute)

	// The popular key set, from its own stream so it matches across
	// modes and mirrors the harness zipf discipline.
	keyRand := rand.New(rand.NewSource(cfg.Seed ^ 0x5a1bfc0de))
	keys := make([]id.ID, cfg.Keys)
	for i := range keys {
		keys[i] = id.Random(keyRand)
	}
	// Zipf(s) cumulative weights over ranks 0..Keys-1.
	cum := make([]float64, cfg.Keys)
	total := 0.0
	for i := range cum {
		total += 1 / math.Pow(float64(i+1), cfg.ZipfS)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}

	// Prefill every key (counter 1) and let replication settle.
	counters := make([]uint32, cfg.Keys)
	type ackRec struct {
		counter uint32
		at      time.Duration
	}
	ackLog := make([][]ackRec, cfg.Keys)
	writer := func(k int) int { return (k*7 + 3) % cfg.Nodes }
	putKey := func(k int) {
		if !stores[writer(k)].Node().Alive() {
			return
		}
		counters[k]++
		c := counters[k]
		kk := k
		stores[writer(k)].Put(keys[k], hotspotValue(uint32(k), c), func(err error) {
			if err == nil {
				ackLog[kk] = append(ackLog[kk], ackRec{counter: c, at: sim.Now()})
			}
		})
	}
	for k := range keys {
		putKey(k)
		if k%8 == 7 {
			sim.RunUntil(sim.Now() + time.Second)
		}
	}
	sim.RunUntil(sim.Now() + 30*time.Second + 2*hotspotSweep)

	var run HotspotRun
	start := sim.Now()
	end := start + cfg.Duration

	// Staggered rewrites: each key every PutInterval, spread evenly.
	var rewrite func(k int)
	rewrite = func(k int) {
		if sim.Now() >= end {
			return
		}
		putKey(k)
		sim.After(cfg.PutInterval, func() { rewrite(k) })
	}
	for k := range keys {
		kk := k
		sim.After(time.Duration(k+1)*cfg.PutInterval/time.Duration(cfg.Keys),
			func() { rewrite(kk) })
	}

	// The zipf read workload: one global arrival process at the
	// aggregate rate, requester and rank drawn from a dedicated stream.
	// lastRead tracks each reader's floor per key for the monotonic
	// audit; ackLog gives the staleness bound.
	wl := rand.New(rand.NewSource(cfg.Seed ^ 0x40753a9))
	rankOf := func(u float64) int {
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	// Monotonic reads are a session guarantee over *sequential* reads:
	// two overlapping in-flight reads may legitimately complete out of
	// order. A completed read only raises the reader's floor, and only a
	// read issued after the floor-setting read completed can violate it.
	type readFloor struct {
		counter     uint32
		completedAt time.Duration
	}
	lastRead := make([]map[int]readFloor, cfg.Nodes)
	for i := range lastRead {
		lastRead[i] = make(map[int]readFloor)
	}
	boundAt := func(k int, issued time.Duration) uint32 {
		bound := uint32(0)
		for _, a := range ackLog[k] {
			if a.at+hotspotSweep+hotspotGrace <= issued {
				bound = a.counter
			} else {
				break
			}
		}
		return bound
	}
	gap := time.Duration(float64(time.Second) / (cfg.GetRate * float64(cfg.Nodes)))
	var readLoop func()
	readLoop = func() {
		if sim.Now() >= end {
			return
		}
		n := wl.Intn(cfg.Nodes)
		k := rankOf(wl.Float64())
		if stores[n].Node().Alive() {
			run.Gets++
			issued := sim.Now()
			stores[n].Get(keys[k], func(v []byte, err error) {
				switch {
				case err == nil:
					run.GetOK++
					c, ok := hotspotCounter(v)
					if !ok {
						return
					}
					if c < boundAt(k, issued) {
						run.StaleBeyondBound++
					}
					fl := lastRead[n][k]
					if c < fl.counter && issued > fl.completedAt {
						run.MonotonicViolations++
					}
					if c >= fl.counter {
						lastRead[n][k] = readFloor{counter: c, completedAt: sim.Now()}
					}
				case errors.Is(err, dht.ErrNotFound):
					run.GetNotFound++
				default:
					run.GetFail++
				}
			})
		}
		sim.After(gap, readLoop)
	}
	sim.After(gap, readLoop)

	// Load sampling at a fixed cadence (no randomness: identical event
	// schedule in every mode).
	run.Loads = make([]float64, cfg.Nodes)
	run.Peaks = make([]float64, cfg.Nodes)
	samples := 0
	var sample func()
	sample = func() {
		if sim.Now() >= end {
			return
		}
		samples++
		for i, ep := range eps {
			lf := ep.LoadFactor()
			run.Loads[i] += lf
			if lf > run.Peaks[i] {
				run.Peaks[i] = lf
			}
		}
		sim.After(500*time.Millisecond, sample)
	}
	sim.After(500*time.Millisecond, sample)

	// Churn: crash 10% of the population mid-run, one sweep apart,
	// never the seed node and with the same victims in every mode.
	if churn {
		crashes := maxInt(1, cfg.Nodes/10)
		victim := 1
		at := start + cfg.Duration/3
		for i := 0; i < crashes; i++ {
			victim = (victim + 7) % cfg.Nodes
			if victim == 0 {
				victim = 1
			}
			v := victim
			sim.After(at-sim.Now()+time.Duration(i)*hotspotSweep, func() { eps[v].Fail() })
		}
	}

	before := sumHotspotCounters(stores)
	shedBefore := sumShed(nw)
	sim.RunUntil(end)
	// Let in-flight reads finish so success accounting is not truncated
	// at the window edge (no new reads are issued past end).
	sim.RunUntil(end + 30*time.Second)

	delta := sumHotspotCounters(stores)
	run.Retries = delta.Retries - before.Retries
	run.HitsLocal = delta.CacheHitsLocal - before.CacheHitsLocal
	run.HitsRemote = delta.CacheHitsRemote - before.CacheHitsRemote
	run.Serves = delta.CacheServes - before.CacheServes
	run.Deposits = delta.CacheDeposits - before.CacheDeposits
	run.Invalidations = delta.CacheInvalidations - before.CacheInvalidations
	run.Purged = delta.CachePurged - before.CachePurged
	run.StaleRejected = delta.CacheStaleRejected - before.CacheStaleRejected
	run.Shed = sumShed(nw) - shedBefore
	for i := range run.Loads {
		if samples > 0 {
			run.Loads[i] /= float64(samples)
		}
	}
	return run
}

func sumHotspotCounters(stores []*dht.Store) dht.Counters {
	var sum dht.Counters
	for _, s := range stores {
		c := s.Counters()
		sum.Retries += c.Retries
		sum.CacheHitsLocal += c.CacheHitsLocal
		sum.CacheHitsRemote += c.CacheHitsRemote
		sum.CacheServes += c.CacheServes
		sum.CacheDeposits += c.CacheDeposits
		sum.CacheInvalidations += c.CacheInvalidations
		sum.CachePurged += c.CachePurged
		sum.CacheStaleRejected += c.CacheStaleRejected
	}
	return sum
}

func sumShed(nw *netmodel.Network) uint64 {
	var total uint64
	for _, n := range nw.ShedByLane {
		total += n
	}
	return total
}

// HotspotCols returns the column set for Rows.
func HotspotCols() []string {
	return []string{"ok%", "hotLoad", "hotPeak", "shed", "hitsL", "hitsR", "served", "depos", "inval", "stale>b", "relief"}
}

// Rows renders one row per mode; the relief ratio rides on the
// stable caching-on row.
func (r HotspotResult) Rows() []Row {
	row := func(label string, run HotspotRun) Row {
		return Row{Label: label, Values: map[string]float64{
			"ok%":     run.Success() * 100,
			"hotLoad": r.HotLoad(run),
			"hotPeak": r.hotPeak(run),
			"shed":    float64(run.Shed),
			"hitsL":   float64(run.HitsLocal),
			"hitsR":   float64(run.HitsRemote),
			"served":  float64(run.Serves),
			"depos":   float64(run.Deposits),
			"inval":   float64(run.Invalidations),
			"stale>b": float64(run.StaleBeyondBound),
		}}
	}
	off := row("off/stable", r.OffStable)
	on := row("on/stable", r.OnStable)
	on.Values["relief"] = r.Relief()
	offC := row("off/churn", r.OffChurn)
	onC := row("on/churn", r.OnChurn)
	return []Row{off, on, offC, onC}
}

func (r HotspotResult) hotPeak(run HotspotRun) float64 {
	if r.HotIndex >= len(run.Peaks) {
		return 0
	}
	return run.Peaks[r.HotIndex]
}
