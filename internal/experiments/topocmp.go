package experiments

import (
	"mspastry/internal/harness"
)

// TopoCmpResult holds the §5.3 "Network topology" comparison: RDP, loss
// and control traffic for CorpNet, GATech and Mercator under the Gnutella
// trace. Paper values: RDP 1.45 / 1.80 / 2.12, control traffic
// 0.239 / 0.245 / 0.256 msg/s/node, loss below 1.6e-5 everywhere.
type TopoCmpResult struct {
	Results map[string]harness.Result
}

// TopologyComparison runs the Gnutella trace on the three topologies.
func TopologyComparison(s Scale) TopoCmpResult {
	out := TopoCmpResult{Results: make(map[string]harness.Result, 3)}
	for _, name := range []string{"corpnet", "gatech", "mercator"} {
		cfg := s.baseConfig(name, s.gnutella())
		out.Results[name] = harness.Run(cfg)
	}
	return out
}

// Rows renders the comparison.
func (r TopoCmpResult) Rows() []Row {
	var rows []Row
	for _, name := range []string{"corpnet", "gatech", "mercator"} {
		rows = append(rows, totalsRow(name, r.Results[name]))
	}
	return rows
}

// RDPOrderingHolds reports whether the paper's topology ordering
// (CorpNet < GATech < Mercator) is reproduced.
func (r TopoCmpResult) RDPOrderingHolds() bool {
	return r.Results["corpnet"].Totals.RDP < r.Results["gatech"].Totals.RDP &&
		r.Results["gatech"].Totals.RDP < r.Results["mercator"].Totals.RDP
}
