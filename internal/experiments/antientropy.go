package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"mspastry/internal/dht"
	"mspastry/internal/eventsim"
	"mspastry/internal/id"
	"mspastry/internal/netmodel"
	"mspastry/internal/pastry"
	"mspastry/internal/topology"
)

// The anti-entropy experiment quantifies the tentpole claim of the
// storage subsystem: replacing the unconditional full-value sweep push
// with Merkle digest reconciliation cuts steady-state maintenance
// bandwidth by an order of magnitude, because in the common case (the
// replicas agree) a sweep costs one root-digest exchange per replica
// pair instead of one value push per object. The experiment runs the
// same seeded cluster twice — FullPushSweep on and off — with an
// identical put workload and an identical crash schedule, and compares
// the maintenance bytes each mode sends over the measurement window.
//
// The crash schedule matters: anti-entropy must still move the values a
// new replica is missing, so churn is where the two modes are closest.
// The reduction ratio reported is therefore a lower bound on the
// steady-state saving.

// antiEntropySweep is the sweep interval used by both modes. Shorter
// than the production default so a few minutes of simulated time cover
// several reconciliation cycles.
const antiEntropySweep = 20 * time.Second

// AntiEntropyRun is the counter delta one mode accumulated across all
// live nodes during the measurement window.
type AntiEntropyRun struct {
	MaintBytes   uint64 // all sweep maintenance traffic (control + values)
	DigestBytes  uint64 // digest/summary/pull control portion
	SyncRounds   uint64 // anti-entropy exchanges started
	SyncClean    uint64 // exchanges where root digests matched
	KeysRepaired uint64 // divergent objects shipped as repairs
	FullPushes   uint64 // unconditional full-value pushes
}

// AntiEntropyResult holds both modes plus the workload shape.
type AntiEntropyResult struct {
	Nodes, Objects int
	Window         time.Duration
	Baseline       AntiEntropyRun // FullPushSweep = true
	AntiEntropy    AntiEntropyRun // Merkle reconciliation
}

// Reduction is baseline maintenance bytes over anti-entropy maintenance
// bytes — the headline ratio (higher is better; the acceptance bar for
// this subsystem is >= 5x under churn).
func (r AntiEntropyResult) Reduction() float64 {
	if r.AntiEntropy.MaintBytes == 0 {
		return 0
	}
	return float64(r.Baseline.MaintBytes) / float64(r.AntiEntropy.MaintBytes)
}

// AntiEntropy runs the comparison. nodes/objects default to the bench
// shape (100 nodes, 1,000 objects) when zero; the test suite passes a
// reduced shape. Only s.Seed is taken from the scale: the experiment
// drives its own cluster because the harness has no application layer.
func AntiEntropy(s Scale, nodes, objects int) AntiEntropyResult {
	if nodes == 0 {
		nodes = 100
	}
	if objects == 0 {
		objects = 1000
	}
	res := AntiEntropyResult{Nodes: nodes, Objects: objects}
	res.Baseline, res.Window = antiEntropyRun(s.Seed, nodes, objects, true)
	res.AntiEntropy, _ = antiEntropyRun(s.Seed, nodes, objects, false)
	return res
}

// antiEntropyRun builds a seeded cluster, stores the objects, then
// measures the maintenance-byte delta over a churn window in the given
// sweep mode. Both modes see byte-identical workloads and crash the
// same nodes at the same times.
func antiEntropyRun(seed int64, nodes, objects int, fullPush bool) (AntiEntropyRun, time.Duration) {
	sim := eventsim.New(seed)
	topo := topology.CorpNet(topology.CorpNetConfig{Hubs: 6, EdgeRouters: 30}, rand.New(rand.NewSource(seed)))
	nw := netmodel.New(sim, topo, 0)

	pcfg := pastry.DefaultConfig()
	pcfg.L = 8
	pcfg.PNS = false
	dcfg := dht.DefaultConfig()
	dcfg.SweepInterval = antiEntropySweep
	dcfg.FullPushSweep = fullPush

	first := topo.Attach(nodes, sim.Rand())
	stores := make([]*dht.Store, 0, nodes)
	eps := make([]*netmodel.Endpoint, 0, nodes)
	var seedRef pastry.NodeRef
	for i := 0; i < nodes; i++ {
		ep := nw.NewEndpoint(first + i)
		ref := pastry.NodeRef{ID: id.Random(sim.Rand()), Addr: ep.Addr()}
		node, err := pastry.NewNode(ref, pcfg, ep, nil)
		if err != nil {
			panic(err)
		}
		ep.Bind(node)
		stores = append(stores, dht.New(node, ep, dcfg))
		eps = append(eps, ep)
		if i == 0 {
			node.Bootstrap()
			seedRef = ref
		} else {
			node.Join(seedRef)
		}
		sim.RunUntil(sim.Now() + 2*time.Second)
	}
	sim.RunUntil(sim.Now() + time.Minute)

	// Store the corpus from rotating writers; the 64-byte payload is the
	// PAST-style document body whose repeated re-push the baseline pays
	// for. Batched puts with short settles keep simulated time (and
	// therefore sweep count) identical across modes.
	payload := make([]byte, 64)
	for i := 0; i < objects; i++ {
		key := id.FromKey(fmt.Sprintf("ae-object-%d", i))
		copy(payload, fmt.Sprintf("object %d body", i))
		stores[i%nodes].Put(key, append([]byte(nil), payload...), func(error) {})
		if i%8 == 7 {
			sim.RunUntil(sim.Now() + time.Second)
		}
	}
	// Drain retries and replication, then let two sweeps run so handoffs
	// settle before measurement starts.
	sim.RunUntil(sim.Now() + time.Minute + 2*antiEntropySweep)

	before := sumCounters(stores)
	start := sim.Now()

	// Churn: crash 10% of the population (at least one node), spread one
	// sweep interval apart, then leave three quiet sweeps at the end so
	// repair traffic lands inside the window.
	crashes := maxInt(1, nodes/10)
	victim := 1 // never the seed node; deterministic stride across the ring
	for i := 0; i < crashes; i++ {
		victim = (victim + 7) % nodes
		if victim == 0 {
			victim = 1
		}
		eps[victim].Fail()
		sim.RunUntil(sim.Now() + antiEntropySweep)
	}
	sim.RunUntil(sim.Now() + 3*antiEntropySweep)

	delta := sumCounters(stores)
	window := sim.Now() - start
	return AntiEntropyRun{
		MaintBytes:   delta.MaintBytes - before.MaintBytes,
		DigestBytes:  delta.DigestBytes - before.DigestBytes,
		SyncRounds:   delta.SyncRounds - before.SyncRounds,
		SyncClean:    delta.SyncClean - before.SyncClean,
		KeysRepaired: delta.SyncKeysRepaired - before.SyncKeysRepaired,
		FullPushes:   delta.ReplicasPushed - before.ReplicasPushed,
	}, window
}

// sumCounters totals the sweep-relevant counters across all stores.
// Crashed nodes are included: their counters freeze at the crash (the
// sweep checks Alive and the network stops delivery), so the frozen
// value cancels out of any before/after delta. Skipping them would make
// the delta underflow instead.
func sumCounters(stores []*dht.Store) dht.Counters {
	var sum dht.Counters
	for _, s := range stores {
		c := s.Counters()
		sum.MaintBytes += c.MaintBytes
		sum.DigestBytes += c.DigestBytes
		sum.SyncRounds += c.SyncRounds
		sum.SyncClean += c.SyncClean
		sum.SyncKeysRepaired += c.SyncKeysRepaired
		sum.ReplicasPushed += c.ReplicasPushed
	}
	return sum
}

// AntiEntropyCols returns the column set for Rows.
func AntiEntropyCols() []string {
	return []string{"maintKB", "digestKB", "rounds", "clean", "repaired", "pushes", "reduction"}
}

// Rows renders one row per mode; the reduction ratio rides on the
// anti-entropy row.
func (r AntiEntropyResult) Rows() []Row {
	row := func(label string, run AntiEntropyRun) Row {
		return Row{Label: label, Values: map[string]float64{
			"maintKB":  float64(run.MaintBytes) / 1024,
			"digestKB": float64(run.DigestBytes) / 1024,
			"rounds":   float64(run.SyncRounds),
			"clean":    float64(run.SyncClean),
			"repaired": float64(run.KeysRepaired),
			"pushes":   float64(run.FullPushes),
		}}
	}
	base := row("full-push", r.Baseline)
	sync := row("anti-entropy", r.AntiEntropy)
	sync.Values["reduction"] = r.Reduction()
	return []Row{base, sync}
}
