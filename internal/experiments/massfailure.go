package experiments

import (
	"math/rand"
	"sort"
	"time"

	"mspastry/internal/eventsim"
	"mspastry/internal/id"
	"mspastry/internal/netmodel"
	"mspastry/internal/pastry"
	"mspastry/internal/topology"
)

// MassFailureResult measures recovery from a massive correlated failure —
// the scenario behind the paper's generalised leaf-set repair: "it
// converges in O(log N) iterations even when a large fraction of overlay
// nodes fails simultaneously" (§3.1).
type MassFailureResult struct {
	Nodes  int
	Killed int
	// RecoveryTime is the virtual time from the failure instant until
	// every survivor's leaf set is complete and every survivor's ring
	// neighbours match the ground truth.
	RecoveryTime time.Duration
	// Recovered reports whether the overlay healed within the deadline.
	Recovered bool
	// ProbeMessages counts leaf-set messages sent during recovery.
	ProbeMessages int
}

// MassFailureConfig parameterises the experiment.
type MassFailureConfig struct {
	Nodes        int
	KillFraction float64
	Deadline     time.Duration
	Seed         int64
}

// DefaultMassFailureConfig kills half of a 120-node overlay.
func DefaultMassFailureConfig() MassFailureConfig {
	return MassFailureConfig{Nodes: 120, KillFraction: 0.5, Deadline: 15 * time.Minute, Seed: 1}
}

// MassFailure builds a stable overlay, kills a fraction of it in one
// instant, and measures how long the survivors take to restore a globally
// consistent ring.
func MassFailure(cfg MassFailureConfig) MassFailureResult {
	res, _, _ := massFailureCore(cfg)
	return res
}

func massFailureCore(cfg MassFailureConfig) (MassFailureResult, []*pastry.Node, *eventsim.Simulator) {
	sim := eventsim.New(cfg.Seed)
	topo := topology.CorpNet(topology.DefaultCorpNet(), rand.New(rand.NewSource(cfg.Seed)))
	nw := netmodel.New(sim, topo, 0)

	pcfg := pastry.DefaultConfig()
	pcfg.L = 16
	pcfg.PNS = false

	leafMsgs := 0
	counting := false
	nw.OnSend(func(_ *netmodel.Endpoint, _ pastry.NodeRef, m pastry.Message, _ int) {
		if counting && m.Category() == pastry.CatLeafSet {
			leafMsgs++
		}
	})

	first := topo.Attach(cfg.Nodes, sim.Rand())
	var nodes []*pastry.Node
	var eps []*netmodel.Endpoint
	var seed pastry.NodeRef
	for i := 0; i < cfg.Nodes; i++ {
		ep := nw.NewEndpoint(first + i)
		ref := pastry.NodeRef{ID: id.Random(sim.Rand()), Addr: ep.Addr()}
		node, err := pastry.NewNode(ref, pcfg, ep, nil)
		if err != nil {
			panic(err)
		}
		ep.Bind(node)
		if i == 0 {
			node.Bootstrap()
			seed = ref
		} else {
			node.Join(seed)
		}
		nodes = append(nodes, node)
		eps = append(eps, ep)
		sim.RunUntil(sim.Now() + 2*time.Second)
	}
	sim.RunUntil(sim.Now() + 5*time.Minute) // settle

	// Kill a random fraction in one instant.
	perm := rand.New(rand.NewSource(cfg.Seed + 1)).Perm(cfg.Nodes)
	kill := int(float64(cfg.Nodes) * cfg.KillFraction)
	dead := make(map[int]bool, kill)
	for _, idx := range perm[:kill] {
		if idx == 0 && kill < cfg.Nodes {
			continue // keep at least the bootstrap node deterministic
		}
		eps[idx].Fail()
		dead[idx] = true
		if len(dead) >= kill {
			break
		}
	}
	counting = true
	failAt := sim.Now()

	res := MassFailureResult{Nodes: cfg.Nodes, Killed: len(dead)}
	var survivors []*pastry.Node
	for i, n := range nodes {
		if !dead[i] {
			survivors = append(survivors, n)
		}
	}

	// Step the simulation and poll for global ring consistency.
	deadline := failAt + cfg.Deadline
	for sim.Now() < deadline {
		sim.RunUntil(sim.Now() + 10*time.Second)
		if ringConsistent(survivors) {
			res.Recovered = true
			res.RecoveryTime = sim.Now() - failAt
			break
		}
	}
	res.ProbeMessages = leafMsgs
	return res, survivors, sim
}

// ringConsistent checks that every survivor's leaf set is complete and its
// ring neighbours match the ground truth among survivors.
func ringConsistent(nodes []*pastry.Node) bool {
	ids := make([]id.ID, 0, len(nodes))
	for _, n := range nodes {
		if !n.Active() {
			return false
		}
		ids = append(ids, n.Ref().ID)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Cmp(ids[j]) < 0 })
	pos := make(map[id.ID]int, len(ids))
	for i, x := range ids {
		pos[x] = i
	}
	for _, n := range nodes {
		if !n.Leaf().Complete() {
			return false
		}
		i := pos[n.Ref().ID]
		wantRight := ids[(i+1)%len(ids)]
		wantLeft := ids[(i-1+len(ids))%len(ids)]
		right, okR := n.Leaf().RightNeighbour()
		left, okL := n.Leaf().LeftNeighbour()
		if !okR || !okL || right.ID != wantRight || left.ID != wantLeft {
			return false
		}
	}
	return true
}
