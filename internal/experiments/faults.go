package experiments

import (
	"fmt"
	"math"
	"time"

	"mspastry/internal/harness"
	"mspastry/internal/netmodel"
	"mspastry/internal/stats"
	"mspastry/internal/trace"
)

// stableTrace returns a churn-free trace — n nodes active for the whole
// run — so fault-injection effects are not confounded with churn.
func stableTrace(n int, d time.Duration) *trace.Trace {
	tr := &trace.Trace{Name: "stable", Duration: d, Nodes: n}
	for i := 0; i < n; i++ {
		tr.Initial = append(tr.Initial, i)
	}
	return tr
}

// PartitionHealResult measures dependability across a network partition:
// the overlay is split 50/50 for PartitionFor, then the partition heals
// and the harness tracks how long the ring takes to repair. Lookups are
// bucketed into before/during/after phases so consistency can be judged
// per phase — the paper's dependability claim translates to zero
// incorrect deliveries once the overlay has repaired.
type PartitionHealResult struct {
	PartitionFor time.Duration
	Result       harness.Result
	// Recovery is the heal-to-repair record for the partition.
	Recovery stats.RecoveryStat
}

// partitionWarm is how long the overlay runs undisturbed before the
// split; partitionTail leaves room for repair and post-heal measurement.
// Re-merge rides on the few cross-partition links that survive the
// split's failure detection, so repair takes minutes at a few hundred
// nodes; partitions much longer than the state-purge horizon (a few
// probe timeouts) never re-merge at all — each side purges the other
// completely and the split is permanent, which the harness reports as
// repaired=false with the "during" phase extending to the end of the run.
const (
	partitionWarm = 5 * time.Minute
	partitionTail = 15 * time.Minute
)

// PartitionHeal splits a stable overlay 50/50 for partitionFor, heals it,
// and measures per-phase lookup consistency plus time-to-repair.
func PartitionHeal(s Scale, partitionFor time.Duration) PartitionHealResult {
	tr := stableTrace(s.PoissonNodes, partitionWarm+partitionFor+partitionTail)
	cfg := s.baseConfig("corpnet", tr)
	cfg.LookupRate = 0.05
	cfg.Faults = new(harness.FaultScript).Partition(partitionWarm, partitionFor, 0.5)
	res := harness.Run(cfg)
	out := PartitionHealResult{PartitionFor: partitionFor, Result: res}
	if len(res.Recovery) > 0 {
		out.Recovery = res.Recovery[0]
	}
	return out
}

// PhaseCols returns the column set for per-phase rows.
func PhaseCols() []string {
	return []string{"issued", "delivered", "incorrect", "lost", "incRate", "lossRate"}
}

func phaseRow(label string, p stats.PhaseCount) Row {
	return Row{Label: label, Values: map[string]float64{
		"issued":    float64(p.Issued),
		"delivered": float64(p.Delivered),
		"incorrect": float64(p.Incorrect),
		"lost":      float64(p.Lost),
		"incRate":   p.IncorrectRate(),
		"lossRate":  p.LossRate(),
	}}
}

// Rows renders the three phases plus a recovery summary row.
func (r PartitionHealResult) Rows() []Row {
	ph := r.Result.Phases
	repaired := 0.0
	if r.Recovery.Repaired {
		repaired = 1
	}
	return []Row{
		phaseRow("before", ph.Before),
		phaseRow("during-partition", ph.During),
		phaseRow("after-heal", ph.After),
		{Label: "recovery", Values: map[string]float64{
			"issued":    repaired,
			"delivered": r.Recovery.TimeToRepair().Seconds(),
			"incorrect": float64(r.Result.DropsByCause[netmodel.DropPartition]),
		}},
	}
}

// JitterFPResult reproduces the delay-spike false-positive sweep: delay
// spikes larger than the per-hop retransmission timeout make live nodes
// look dead, and without the §3.2 hold-on-suspect rule the lookup is
// delivered at the next-best node — incorrectly. With the rule, delivery
// is held until the suspicion resolves, keeping incorrect deliveries
// orders of magnitude below the naive variant at the cost of latency.
type JitterFPResult struct {
	Spikes []time.Duration
	// Hold and Naive map spike magnitude to the run with and without the
	// hold-on-suspect rule.
	Hold, Naive map[time.Duration]harness.Result
}

// jitterFPScript covers the measurement period with periodic spike
// windows: spikeOn out of every spikePeriod, starting after a warm-up.
const (
	jitterFPWarm  = 2 * time.Minute
	jitterFPRun   = 28 * time.Minute
	jitterSpikeOn = 30 * time.Second
	jitterPeriod  = 90 * time.Second
)

func jitterFPScript(spike time.Duration) *harness.FaultScript {
	s := new(harness.FaultScript)
	for at := jitterFPWarm; at+jitterSpikeOn <= jitterFPRun-time.Minute; at += jitterPeriod {
		s.DelaySpike(at, jitterSpikeOn, spike)
	}
	return s
}

// jitterFPNodes caps the sweep's population: the hold-on-suspect
// retransmission storm during a spike grows superlinearly with the
// population, and the false-positive mechanism under test is per-hop, not
// population-dependent, so a few dozen nodes reproduce the shape at a
// tiny fraction of the cost.
func jitterFPNodes(s Scale) int {
	n := s.PoissonNodes / 2
	if n > 48 {
		n = 48
	}
	return maxInt(16, n)
}

// JitterFalsePositives sweeps delay-spike magnitudes, running each twice:
// with the hold-on-suspect rule (the paper's consistency mechanism) and
// with naive immediate delivery.
func JitterFalsePositives(s Scale, spikes []time.Duration) JitterFPResult {
	if len(spikes) == 0 {
		spikes = []time.Duration{100 * time.Millisecond, 300 * time.Millisecond, time.Second}
	}
	out := JitterFPResult{
		Spikes: spikes,
		Hold:   make(map[time.Duration]harness.Result),
		Naive:  make(map[time.Duration]harness.Result),
	}
	for _, spike := range spikes {
		run := func(hold bool) harness.Result {
			tr := stableTrace(jitterFPNodes(s), jitterFPRun)
			cfg := s.baseConfig("corpnet", tr)
			cfg.LookupRate = 0.2
			cfg.Pastry.HoldOnSuspect = hold
			cfg.Faults = jitterFPScript(spike)
			return harness.Run(cfg)
		}
		out.Hold[spike] = run(true)
		out.Naive[spike] = run(false)
	}
	return out
}

// GapOrders returns log10 of the naive incorrect-delivery rate over the
// hold-on-suspect rate at the given spike. When the hold variant observed
// no incorrect delivery at all, its rate is floored at the measurement
// resolution (one incorrect lookup), so the gap is a lower bound.
func (r JitterFPResult) GapOrders(spike time.Duration) float64 {
	hold, naive := r.Hold[spike], r.Naive[spike]
	nRate := naive.Totals.IncorrectRate
	hRate := hold.Totals.IncorrectRate
	if hRate == 0 && hold.Totals.Issued > 0 {
		hRate = 1 / float64(hold.Totals.Issued)
	}
	if nRate == 0 || hRate == 0 {
		return 0
	}
	return math.Log10(nRate / hRate)
}

// Rows renders the sweep: one row per spike and variant, with the gap (in
// orders of magnitude) attached to the naive row.
func (r JitterFPResult) Rows() []Row {
	var rows []Row
	for _, spike := range r.Spikes {
		hold := totalsRow(fmt.Sprintf("spike=%v/hold", spike), r.Hold[spike])
		naive := totalsRow(fmt.Sprintf("spike=%v/naive", spike), r.Naive[spike])
		naive.Values["gapOrders"] = r.GapOrders(spike)
		hold.Values["retxPeak"] = r.Hold[spike].Totals.PeakRetxPerNodeSec
		naive.Values["retxPeak"] = r.Naive[spike].Totals.PeakRetxPerNodeSec
		rows = append(rows, hold, naive)
	}
	return rows
}
