package experiments

import (
	"fmt"
	"time"

	"mspastry/internal/harness"
	"mspastry/internal/stats"
)

// Fig5SessionSweep reproduces Figure 5 (left and centre): RDP and control
// traffic for the Poisson traces with session times of 5, 15, 30, 60, 120
// and 600 minutes. Paper shape: control traffic rises steeply as sessions
// shrink (~22x from 600 to 15 minutes, dipping again at 5 because nodes
// die before activating); RDP stays roughly flat down to one-hour sessions
// and rises sharply at 5 minutes.
type Fig5SessionSweep struct {
	Sessions []time.Duration
	Results  map[time.Duration]harness.Result
}

// SessionTimes is the paper's sweep.
var sessionTimes = []time.Duration{
	5 * time.Minute, 15 * time.Minute, 30 * time.Minute,
	60 * time.Minute, 120 * time.Minute, 600 * time.Minute,
}

// SessionTimes returns the paper's session-time sweep.
func SessionTimes() []time.Duration {
	return append([]time.Duration(nil), sessionTimes...)
}

// Fig5SessionTimes runs the sweep.
func Fig5SessionTimes(s Scale) Fig5SessionSweep {
	out := Fig5SessionSweep{Results: make(map[time.Duration]harness.Result)}
	for _, session := range sessionTimes {
		out.Sessions = append(out.Sessions, session)
		cfg := s.baseConfig("gatech", s.poisson(session))
		out.Results[session] = harness.Run(cfg)
	}
	return out
}

// Rows renders the sweep.
func (r Fig5SessionSweep) Rows() []Row {
	var rows []Row
	for _, session := range r.Sessions {
		row := totalsRow(fmt.Sprintf("session=%v", session), r.Results[session])
		rows = append(rows, row)
	}
	return rows
}

// ControlRatio returns control traffic at session a over session b.
func (r Fig5SessionSweep) ControlRatio(a, b time.Duration) float64 {
	rb := r.Results[b].Totals.ControlPerNodeSec
	if rb == 0 {
		return 0
	}
	return r.Results[a].Totals.ControlPerNodeSec / rb
}

// Fig5JoinCDF reproduces Figure 5 (right): the cumulative distribution of
// join latency for the 5-minute and 30-minute Poisson traces. The paper
// shows nodes joining within tens of seconds.
type Fig5JoinCDF struct {
	CDFs map[time.Duration][]stats.CDFPoint
}

// Fig5JoinLatency runs the two join-latency traces.
func Fig5JoinLatency(s Scale) Fig5JoinCDF {
	out := Fig5JoinCDF{CDFs: make(map[time.Duration][]stats.CDFPoint, 2)}
	for _, session := range []time.Duration{5 * time.Minute, 30 * time.Minute} {
		cfg := s.baseConfig("gatech", s.poisson(session))
		res := harness.Run(cfg)
		out.CDFs[session] = res.JoinCDF
	}
	return out
}

// Percentile returns the join latency at the given cumulative fraction.
func (r Fig5JoinCDF) Percentile(session time.Duration, p float64) time.Duration {
	cdf := r.CDFs[session]
	for _, pt := range cdf {
		if pt.Fraction >= p {
			return pt.Latency
		}
	}
	if len(cdf) == 0 {
		return 0
	}
	return cdf[len(cdf)-1].Latency
}
