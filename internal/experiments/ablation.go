package experiments

import (
	"fmt"

	"mspastry/internal/harness"
)

// AblationResult reproduces the §5.3 "Active probing and per-hop acks"
// experiment: the 2x2 matrix of {active probing, per-hop acks}. Paper
// numbers: 32% of lookups lost with neither mechanism; 2.8e-5 with acks
// only; 1.6e-5 with both; active probing alone cannot reach the 1e-5
// regime. Acks-only also raises RDP (+17% at 0.01 lookups/s, +61% at
// 0.001) because failures are only discovered by traffic.
type AblationResult struct {
	Labels  []string
	Results map[string]harness.Result
}

// AblationProbingAcks runs the 2x2 matrix on the Gnutella trace.
func AblationProbingAcks(s Scale) AblationResult {
	out := AblationResult{Results: make(map[string]harness.Result)}
	variants := []struct {
		label         string
		probing, acks bool
	}{
		{"neither", false, false},
		{"acks-only", false, true},
		{"probing-only", true, false},
		{"both", true, true},
	}
	for _, v := range variants {
		cfg := s.baseConfig("gatech", s.gnutella())
		cfg.Pastry.ActiveProbing = v.probing
		cfg.Pastry.PerHopAcks = v.acks
		out.Labels = append(out.Labels, v.label)
		out.Results[v.label] = harness.Run(cfg)
	}
	return out
}

// Rows renders the matrix.
func (r AblationResult) Rows() []Row {
	var rows []Row
	for _, label := range r.Labels {
		rows = append(rows, totalsRow(label, r.Results[label]))
	}
	return rows
}

// AckRDPPenalty reruns the acks-only vs both comparison at a given lookup
// rate, returning the acks-only RDP divided by the both-mechanisms RDP
// (the paper's +17%/+61% delay penalty observation).
func AckRDPPenalty(s Scale, lookupRate float64) float64 {
	run := func(probing bool) harness.Result {
		cfg := s.baseConfig("gatech", s.gnutella())
		cfg.Pastry.ActiveProbing = probing
		cfg.LookupRate = lookupRate
		return harness.Run(cfg)
	}
	both := run(true)
	acksOnly := run(false)
	if both.Totals.RDP == 0 {
		return 0
	}
	return acksOnly.Totals.RDP / both.Totals.RDP
}

// SelfTuningResult reproduces the self-tuning validation: without per-hop
// acks, tuning the probing period to a target raw loss rate Lr should
// achieve a measured loss rate close to the target (paper: 5.3% measured
// at a 5% target, 1.2% at 1%), and the tighter target should cost a
// multiple of the control traffic (paper: 2.6x from 5% to 1%).
type SelfTuningResult struct {
	Targets []float64
	Results map[float64]harness.Result
}

// SelfTuning runs targets of 5% and 1% with per-hop acks disabled, so the
// raw loss rate is directly observable as the lookup loss rate.
func SelfTuning(s Scale) SelfTuningResult {
	out := SelfTuningResult{Results: make(map[float64]harness.Result)}
	for _, target := range []float64{0.05, 0.01} {
		cfg := s.baseConfig("gatech", s.gnutella())
		cfg.Pastry.PerHopAcks = false
		cfg.Pastry.TargetRawLoss = target
		out.Targets = append(out.Targets, target)
		out.Results[target] = harness.Run(cfg)
	}
	return out
}

// Rows renders the targets.
func (r SelfTuningResult) Rows() []Row {
	var rows []Row
	for _, target := range r.Targets {
		row := totalsRow(fmt.Sprintf("targetLr=%.0f%%", target*100), r.Results[target])
		row.Values["target"] = target
		rows = append(rows, row)
	}
	return rows
}

// SuppressionResult reproduces the probe-suppression observation: raising
// application traffic from 0 to 1 lookup/s/node suppresses over 70% of the
// active probes (paper §5.3 last paragraph).
type SuppressionResult struct {
	Rates   []float64
	Results map[float64]harness.Result
	// SuppressedFraction is suppressed/(suppressed+sent) probes at each
	// lookup rate.
	SuppressedFraction map[float64]float64
}

// Suppression runs lookup rates of 0, 0.01 and 1 per second per node.
func Suppression(s Scale) SuppressionResult {
	out := SuppressionResult{
		Results:            make(map[float64]harness.Result),
		SuppressedFraction: make(map[float64]float64),
	}
	for _, rate := range []float64{0, 0.01, 1} {
		cfg := s.baseConfig("gatech", s.gnutella())
		cfg.LookupRate = rate
		res := harness.Run(cfg)
		out.Rates = append(out.Rates, rate)
		out.Results[rate] = res
		total := float64(res.Counters.SuppressedProbes + res.Counters.SentRTProbes + res.Counters.SentHeartbeats)
		if total > 0 {
			out.SuppressedFraction[rate] = float64(res.Counters.SuppressedProbes) / total
		}
	}
	return out
}

// Rows renders the suppression sweep.
func (r SuppressionResult) Rows() []Row {
	var rows []Row
	for _, rate := range r.Rates {
		row := totalsRow(fmt.Sprintf("lookups=%g/s", rate), r.Results[rate])
		row.Values["suppressed"] = r.SuppressedFraction[rate]
		rows = append(rows, row)
	}
	return rows
}

// ConsistencyRuleResult compares delivery consistency under link loss
// with and without the hold-on-suspect rule (the paper's remark that
// consistency can be improved "at the expense of latency" by not routing
// around a suspected root). With the rule, incorrect deliveries stay at
// the paper's 1e-5 scale even at 5% link loss; without it they jump by
// orders of magnitude.
type ConsistencyRuleResult struct {
	WithRule, WithoutRule harness.Result
}

// ConsistencyRule runs the Gnutella trace at 5% link loss both ways.
func ConsistencyRule(s Scale) ConsistencyRuleResult {
	run := func(hold bool) harness.Result {
		cfg := s.baseConfig("gatech", s.gnutella())
		cfg.NetworkLoss = 0.05
		cfg.Pastry.HoldOnSuspect = hold
		return harness.Run(cfg)
	}
	return ConsistencyRuleResult{WithRule: run(true), WithoutRule: run(false)}
}

// Rows renders the comparison.
func (r ConsistencyRuleResult) Rows() []Row {
	return []Row{
		totalsRow("hold-on-suspect", r.WithRule),
		totalsRow("deliver-immediately", r.WithoutRule),
	}
}

// StructuredHeartbeatAblation compares the paper's single-heartbeat-to-
// left-neighbour design against naive all-pairs leaf-set heartbeats (the
// design choice that makes Figure 7-left flat in l).
type StructuredHeartbeatAblation struct {
	Structured, AllPairs harness.Result
}

// HeartbeatAblation runs both designs at l=32.
func HeartbeatAblation(s Scale) StructuredHeartbeatAblation {
	run := func(structured bool) harness.Result {
		cfg := s.baseConfig("gatech", s.gnutella())
		cfg.Pastry.StructuredHeartbeats = structured
		return harness.Run(cfg)
	}
	return StructuredHeartbeatAblation{Structured: run(true), AllPairs: run(false)}
}

// Rows renders the comparison.
func (r StructuredHeartbeatAblation) Rows() []Row {
	return []Row{
		totalsRow("structured-hb", r.Structured),
		totalsRow("all-pairs-hb", r.AllPairs),
	}
}
