package experiments

import (
	"time"

	"mspastry/internal/harness"
)

// BatchingResult is the control-message coalescing A/B: the same seeded
// workload run with coalescing off (one message per datagram, the paper's
// wire behaviour) and with coalescing windows set. Batching is a pure
// wire-layer change — the protocol sends the same messages either way — so
// routing quality (loss, hops, RDP) must be unchanged while the datagram
// count drops: acks, heartbeats and probe replies to the same peer share
// frames.
//
// The workload models aggressive failure detection: Tls lowered from the
// paper's 30s to 1s, the regime the paper's dependability analysis targets
// (detection latency is bounded by Tls+To, so fast detection forces a
// short Tls) and the one where liveness traffic dominates control load.
// Consecutive heartbeats to the same ring neighbour then arrive within the
// long window and share frames — the paper's ack/heartbeat suppression
// rule extended from "any traffic substitutes for a probe" to "liveness
// traffic rides along with whatever else is going to that peer".
type BatchingResult struct {
	Window time.Duration
	Long   time.Duration
	Off    harness.Result
	On     harness.Result
}

// BatchingTls is the heartbeat period of the aggressive-failure-detection
// workload the batching A/B runs under.
const BatchingTls = time.Second

// Batching runs the A/B on the Poisson trace with the given base and
// delay-tolerant coalescing windows. long must stay below the probe
// timeout To: a heartbeat held longer than To arrives after the
// receiver's Tls+To suspicion deadline and triggers spurious repair.
func Batching(s Scale, window, long time.Duration) BatchingResult {
	run := func(w, l time.Duration) harness.Result {
		cfg := s.baseConfig("gatech", s.poisson(30*time.Minute))
		cfg.Pastry.Tls = BatchingTls
		// The maintenance tick bounds how often heartbeats can go out; it
		// must be finer than Tls for the 1s heartbeat period to be real.
		cfg.Pastry.TickInterval = BatchingTls / 2
		cfg.CoalesceWindow = w
		cfg.CoalesceLongWindow = l
		return harness.Run(cfg)
	}
	return BatchingResult{Window: window, Long: long, Off: run(0, 0), On: run(window, long)}
}

// ControlDatagramReduction is the fraction of control datagrams per node
// per second removed by coalescing (0.25 = 25% fewer datagrams).
func (r BatchingResult) ControlDatagramReduction() float64 {
	if r.Off.Totals.ControlDatagramsPerNodeSec == 0 {
		return 0
	}
	return 1 - r.On.Totals.ControlDatagramsPerNodeSec/r.Off.Totals.ControlDatagramsPerNodeSec
}

// Rows renders the A/B with the datagram economy columns.
func (r BatchingResult) Rows() []Row {
	row := func(label string, res harness.Result) Row {
		out := totalsRow(label, res)
		out.Values["datagrams"] = res.Totals.DatagramsPerNodeSec
		out.Values["ctrlDgrams"] = res.Totals.ControlDatagramsPerNodeSec
		out.Values["ctrlBytes"] = res.Totals.ControlBytesPerNodeSec
		out.Values["savedB"] = float64(res.Totals.CoalescedSavedBytes)
		return out
	}
	return []Row{row("coalesce-off", r.Off), row("coalesce-on", r.On)}
}
