package experiments

import (
	"testing"
	"time"
)

// TestSecureRoutingRestoresSuccess pins the headline secure-routing
// claims: with defenses off a 10% Byzantine population (dropping,
// misrouting, ack-forging, table-poisoning colluders) visibly degrades
// lookup success; with defenses on, success at f=0.1 recovers to at
// least 99% of the no-adversary baseline; and the routing failure test
// produces (almost) no false positives on an honest overlay — the
// precondition of the paper's dependability argument.
func TestSecureRoutingRestoresSuccess(t *testing.T) {
	if testing.Short() {
		t.Skip("four 20-minute simulated adversary runs")
	}
	s := Quick()
	cfg := DefaultSecureConfig(s)
	cfg.Nodes = 40
	cfg.Duration = 20 * time.Minute
	cfg.Fracs = []float64{0, 0.1}
	r := Secure(cfg)

	offBase := r.SuccessAt(0, false)
	offAdv := r.SuccessAt(0.1, false)
	onBase := r.SuccessAt(0, true)
	onAdv := r.SuccessAt(0.1, true)
	adv := r.point(0.1, true)
	t.Logf("off: f=0 %.4f f=0.1 %.4f | on: f=0 %.4f f=0.1 %.4f", offBase, offAdv, onBase, onAdv)
	t.Logf("defended f=0.1: reports=%d fail=%d rounds=%d sends=%d distrust=%d giveups=%d claims=%d forged=%d",
		adv.Res.Counters.SecureReports, adv.Res.Counters.SecureTestFail,
		adv.Res.Counters.SecureRedundantRounds, adv.Res.Counters.SecureRedundantSends,
		adv.Res.Counters.SecureDistrusted, adv.Res.Counters.SecureGiveUps,
		adv.Res.Adversary.RootClaims, adv.Res.Adversary.ReportsForged)

	if offAdv > offBase-0.03 {
		t.Fatalf("undefended success under f=0.1 is %.4f, expected a visible drop from %.4f", offAdv, offBase)
	}
	if ratio := r.RestorationRatio(0.1); ratio < 0.99 {
		t.Fatalf("defended success at f=0.1 is %.4f of baseline (want >= 0.99)", ratio)
	}
	if fp := r.FalsePositiveRate(); fp > 0.001 {
		t.Fatalf("routing failure test false-positive rate %.5f on honest overlay (want ~0)", fp)
	}
}
