package experiments

import (
	"fmt"

	"mspastry/internal/harness"
)

// Fig7LeafSetResult reproduces Figure 7 (left and centre): control traffic
// and RDP as the leaf set size l varies from 8 to 64. Paper shape: thanks
// to structured heartbeats, control traffic grows only slightly with l
// (+7% from l=16 to l=32), while larger leaf sets shorten routes and
// reduce RDP.
type Fig7LeafSetResult struct {
	Ls      []int
	Results map[int]harness.Result
}

var leafSetSizes = []int{8, 16, 24, 32, 48, 64}

// Fig7LeafSet runs the l sweep on the Gnutella trace.
func Fig7LeafSet(s Scale) Fig7LeafSetResult {
	out := Fig7LeafSetResult{Results: make(map[int]harness.Result)}
	for _, l := range leafSetSizes {
		out.Ls = append(out.Ls, l)
		cfg := s.baseConfig("gatech", s.gnutella())
		cfg.Pastry.L = l
		out.Results[l] = harness.Run(cfg)
	}
	return out
}

// Rows renders the sweep.
func (r Fig7LeafSetResult) Rows() []Row {
	var rows []Row
	for _, l := range r.Ls {
		rows = append(rows, totalsRow(fmt.Sprintf("l=%d", l), r.Results[l]))
	}
	return rows
}

// Fig7DigitsResult reproduces Figure 7 (right): RDP as b varies from 1 to
// 5 digit bits. Paper shape: RDP grows markedly as b shrinks because the
// expected hop count (2^b-1)/2^b*log_2^b(N) grows; control traffic falls
// only slightly because per-hop acks and probing grow with the hop count.
type Fig7DigitsResult struct {
	Bs      []int
	Results map[int]harness.Result
}

var digitBits = []int{1, 2, 3, 4, 5}

// Fig7Digits runs the b sweep on the Gnutella trace.
func Fig7Digits(s Scale) Fig7DigitsResult {
	out := Fig7DigitsResult{Results: make(map[int]harness.Result)}
	for _, b := range digitBits {
		out.Bs = append(out.Bs, b)
		cfg := s.baseConfig("gatech", s.gnutella())
		cfg.Pastry.B = b
		out.Results[b] = harness.Run(cfg)
	}
	return out
}

// Rows renders the sweep.
func (r Fig7DigitsResult) Rows() []Row {
	var rows []Row
	for _, b := range r.Bs {
		rows = append(rows, totalsRow(fmt.Sprintf("b=%d", b), r.Results[b]))
	}
	return rows
}
