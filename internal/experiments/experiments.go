// Package experiments defines one runnable experiment per table/figure of
// the paper's evaluation (§5). Each experiment builds its workload through
// the harness, runs it, and returns the rows or series the paper plots.
// The benchmark suite (bench_test.go) runs them at reduced scale; the
// mspastry-bench command runs them at configurable scale.
//
// The paper's absolute numbers came from the authors' testbed and full
// 2,000-20,000 node populations; we reproduce the *shape* (orderings,
// ratios, crossovers), not the absolute values. EXPERIMENTS.md records
// both.
package experiments

import (
	"fmt"
	"io"
	"time"

	"mspastry/internal/harness"
	"mspastry/internal/trace"
)

// Scale controls how much the experiments are shrunk relative to the
// paper's setup.
type Scale struct {
	// TopoDiv divides the topology size (1 = paper size).
	TopoDiv int
	// TraceDiv divides trace populations (1 = paper size).
	TraceDiv int
	// MaxDuration caps trace length (0 = full length).
	MaxDuration time.Duration
	// PoissonNodes is the average population for the artificial traces
	// (paper: 10,000).
	PoissonNodes int
	// PoissonDuration is the artificial traces' length.
	PoissonDuration time.Duration
	// SetupRamp spreads the warm-start joins.
	SetupRamp time.Duration
	// Seed drives all randomness.
	Seed int64
}

// Quick returns a scale suitable for CI benchmarks: a couple of hundred
// nodes, about an hour of simulated time per run.
func Quick() Scale {
	return Scale{
		TopoDiv:         8,
		TraceDiv:        16,
		MaxDuration:     90 * time.Minute,
		PoissonNodes:    200,
		PoissonDuration: time.Hour,
		SetupRamp:       5 * time.Minute,
		Seed:            1,
	}
}

// Full returns the paper-scale configuration. Running it takes hours of
// CPU time; use mspastry-bench with explicit flags.
func Full() Scale {
	return Scale{
		TopoDiv:         1,
		TraceDiv:        1,
		PoissonNodes:    10000,
		PoissonDuration: 12 * time.Hour,
		SetupRamp:       20 * time.Minute,
		Seed:            1,
	}
}

func (s Scale) gnutella() *trace.Trace {
	return trace.Generate(trace.Gnutella().Scaled(s.TraceDiv, s.MaxDuration))
}

func (s Scale) overnet() *trace.Trace {
	// OverNet is already small (1,468 nodes); shrink it less.
	return trace.Generate(trace.OverNet().Scaled(maxInt(1, s.TraceDiv/4), s.MaxDuration))
}

func (s Scale) microsoft() *trace.Trace {
	// Microsoft is the biggest trace (20,000 nodes); shrink it more.
	return trace.Generate(trace.Microsoft().Scaled(s.TraceDiv*6, s.MaxDuration))
}

func (s Scale) poisson(session time.Duration) *trace.Trace {
	return trace.Generate(trace.Poisson(session, s.PoissonNodes, s.PoissonDuration))
}

// baseConfig returns the paper's base experiment configuration at this
// scale: b=4, l=32, per-hop acks, self-tuning to Lr=5%, 0.01 lookups/s.
func (s Scale) baseConfig(topoName string, tr *trace.Trace) harness.Config {
	topo, err := harness.BuildTopology(topoName, s.TopoDiv, s.Seed)
	if err != nil {
		panic(err)
	}
	cfg := harness.DefaultConfig(topo, tr)
	cfg.SetupRamp = s.SetupRamp
	cfg.Seed = s.Seed
	return cfg
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Row is one printable result row.
type Row struct {
	Label  string
	Values map[string]float64
}

// PrintRows renders rows as an aligned table.
func PrintRows(w io.Writer, title string, cols []string, rows []Row) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
	fmt.Fprintf(w, "%-26s", "label")
	for _, c := range cols {
		fmt.Fprintf(w, " %13s", c)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-26s", r.Label)
		for _, c := range cols {
			fmt.Fprintf(w, " %13.6g", r.Values[c])
		}
		fmt.Fprintln(w)
	}
}

// TotalsCols is the standard column set for totals rows.
var totalsCols = []string{"active", "loss", "incorrect", "rdp", "hops", "ctrl", "trtSec"}

// TotalsCols returns a copy of the standard column names.
func TotalsCols() []string { return append([]string(nil), totalsCols...) }

// totalsRow converts harness totals into a Row.
func totalsRow(label string, res harness.Result) Row {
	return Row{Label: label, Values: map[string]float64{
		"active":    res.Totals.MeanActive,
		"loss":      res.Totals.LossRate,
		"incorrect": res.Totals.IncorrectRate,
		"rdp":       res.Totals.RDP,
		"hops":      res.Totals.MeanHops,
		"ctrl":      res.Totals.ControlPerNodeSec,
		"trtSec":    res.TrtMedian.Seconds(),
	}}
}
