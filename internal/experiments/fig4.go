package experiments

import (
	"time"

	"mspastry/internal/harness"
	"mspastry/internal/pastry"
	"mspastry/internal/stats"
	"mspastry/internal/trace"
)

// Fig4Result reproduces Figure 4: RDP and control traffic over normalized
// time for the three real-world traces, plus the control-traffic breakdown
// by message type for the Gnutella trace (the right-hand graph).
type Fig4Result struct {
	Windows map[string][]stats.WindowStat
	Totals  map[string]harness.Result
}

// Fig4Traces runs the three traces with the base configuration.
func Fig4Traces(s Scale) Fig4Result {
	out := Fig4Result{
		Windows: make(map[string][]stats.WindowStat, 3),
		Totals:  make(map[string]harness.Result, 3),
	}
	run := func(name string, tr *trace.Trace) {
		cfg := s.baseConfig("gatech", tr)
		if name == "microsoft" {
			cfg.Window = time.Hour
		}
		res := harness.Run(cfg)
		out.Windows[name] = res.Windows
		out.Totals[name] = res
	}
	run("gnutella", s.gnutella())
	run("overnet", s.overnet())
	run("microsoft", s.microsoft())
	return out
}

// Rows summarises per-trace totals.
func (r Fig4Result) Rows() []Row {
	var rows []Row
	for _, name := range []string{"gnutella", "overnet", "microsoft"} {
		rows = append(rows, totalsRow(name, r.Totals[name]))
	}
	return rows
}

// BreakdownRows renders the Gnutella control-traffic breakdown by message
// category (the paper's Figure 4 right).
func (r Fig4Result) BreakdownRows() []Row {
	res := r.Totals["gnutella"]
	var rows []Row
	for _, cat := range []pastry.Category{
		pastry.CatDistance, pastry.CatLeafSet, pastry.CatRTProbe, pastry.CatAck, pastry.CatJoin,
	} {
		rows = append(rows, Row{Label: cat.String(), Values: map[string]float64{
			"msgsPerNodeSec": res.Totals.ByCategory[cat],
		}})
	}
	return rows
}

// RDPFlatness returns max/min of per-window RDP for a trace — self-tuning
// keeps it near 1 despite the daily churn waves.
func (r Fig4Result) RDPFlatness(name string) float64 {
	lo, hi := 0.0, 0.0
	for _, w := range r.Windows[name] {
		if w.RDP <= 0 {
			continue
		}
		if lo == 0 || w.RDP < lo {
			lo = w.RDP
		}
		if w.RDP > hi {
			hi = w.RDP
		}
	}
	if lo == 0 {
		return 0
	}
	return hi / lo
}
